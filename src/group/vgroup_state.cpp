#include "group/vgroup_state.h"

#include <algorithm>

namespace atum::group {

bool GroupView::has_member(NodeId n) const {
  return std::find(members.begin(), members.end(), n) != members.end();
}

void GroupView::encode(ByteWriter& w) const {
  w.u64(id);
  w.vec(members, [](ByteWriter& bw, NodeId n) { bw.u64(n); });
}

GroupView GroupView::decode(ByteReader& r) {
  GroupView v;
  v.id = r.u64();
  v.members = r.vec<NodeId>([](ByteReader& br) { return br.u64(); });
  return v;
}

VGroupState::VGroupState(GroupId id, std::vector<NodeId> members, std::size_t cycles)
    : id_(id), members_(std::move(members)), neighbors_(cycles) {
  std::sort(members_.begin(), members_.end());
}

bool VGroupState::has_member(NodeId n) const {
  return std::find(members_.begin(), members_.end(), n) != members_.end();
}

void VGroupState::set_members(std::vector<NodeId> members) {
  members_ = std::move(members);
  std::sort(members_.begin(), members_.end());
}

void VGroupState::refresh_neighbor(const GroupView& view) {
  for (CycleNeighbors& cn : neighbors_) {
    if (cn.successor.id == view.id) cn.successor = view;
    if (cn.predecessor.id == view.id) cn.predecessor = view;
  }
}

std::vector<overlay::NeighborRef> VGroupState::neighbor_refs() const {
  std::vector<overlay::NeighborRef> out;
  for (std::size_t c = 0; c < neighbors_.size(); ++c) {
    const CycleNeighbors& cn = neighbors_[c];
    if (cn.successor.known() && cn.successor.id != id_) {
      out.push_back(overlay::NeighborRef{cn.successor.id, c, 0});
    }
    if (cn.predecessor.known() && cn.predecessor.id != id_ &&
        cn.predecessor.id != cn.successor.id) {
      out.push_back(overlay::NeighborRef{cn.predecessor.id, c, 1});
    }
  }
  return out;
}

std::optional<GroupView> VGroupState::find_group(GroupId g) const {
  if (g == id_) return GroupView{id_, members_};
  for (const CycleNeighbors& cn : neighbors_) {
    if (cn.successor.id == g) return cn.successor;
    if (cn.predecessor.id == g) return cn.predecessor;
  }
  return std::nullopt;
}

std::vector<GroupView> VGroupState::known_groups() const {
  std::vector<GroupView> out;
  out.push_back(GroupView{id_, members_});
  for (const CycleNeighbors& cn : neighbors_) {
    for (const GroupView* v : {&cn.successor, &cn.predecessor}) {
      if (!v->known()) continue;
      bool seen = false;
      for (const GroupView& e : out) seen |= (e.id == v->id);
      if (!seen) out.push_back(*v);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Operation encodings
// ---------------------------------------------------------------------------

Bytes BroadcastOp::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(OpKind::kBroadcast));
  w.u64(bcast.origin);
  w.u64(bcast.seq);
  w.bytes(payload.data(), payload.size());
  return w.take();
}

Bytes SuspectOp::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(OpKind::kSuspect));
  w.u64(suspect);
  return w.take();
}

Bytes StartWalkOp::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(OpKind::kStartWalk));
  w.u8(purpose);
  w.u64(nonce);
  w.bytes(payload);
  return w.take();
}

DecodedOp decode_op(const net::Payload& wire) {
  ByteReader r(wire);
  DecodedOp op{};
  auto kind = r.u8();
  switch (static_cast<OpKind>(kind)) {
    case OpKind::kBroadcast:
      op.kind = OpKind::kBroadcast;
      op.broadcast.bcast.origin = r.u64();
      op.broadcast.bcast.seq = r.u64();
      op.broadcast.payload = wire.slice(r.bytes_view());
      break;
    case OpKind::kSuspect:
      op.kind = OpKind::kSuspect;
      op.suspect.suspect = r.u64();
      break;
    case OpKind::kStartWalk:
      op.kind = OpKind::kStartWalk;
      op.walk.purpose = r.u8();
      op.walk.nonce = r.u64();
      op.walk.payload = r.bytes();
      break;
    default:
      throw SerdeError("unknown vgroup op kind");
  }
  r.expect_done();
  return op;
}

}  // namespace atum::group
