// Vgroup-granularity cluster simulator.
//
// The paper's growth (Fig 6), churn (Fig 7) and exchange-suppression
// (Fig 13) experiments exercise thousands of concurrent membership
// operations on EC2. Running every one of those through per-node SMR
// message exchanges is infeasible on one machine, so this model simulates
// the system at the granularity the protocols operate on — whole vgroups —
// while keeping the *cost structure* of the real protocols:
//
//   * every membership change occupies its vgroup for one agreement
//     (Dolev-Strong slot: (f+2) rounds; PBFT: ~4 network RTTs) plus a
//     state-transfer term that grows with the number of cycles hc;
//   * random walks take rwl hops of one round / one RTT each;
//   * after every join/leave the vgroup shuffles: one walk per member, and
//     an exchange that is SUPPRESSED when the selected partner is already
//     busy with another operation (the §7 flexibility/robustness tension);
//   * splits and merges follow gmax/gmin exactly as §3.3 describes, with
//     H-graph edge repair.
//
// The node-level protocol implementation lives in core/atum.h; this
// simulator reproduces its dynamics at scale (8k+ vgroups) and is validated
// against it in the integration tests.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "overlay/hgraph.h"
#include "sim/simulator.h"
#include "smr/reconfig.h"

namespace atum::group {

struct ClusterSimConfig {
  std::size_t hc = 5;        // H-graph cycles
  std::size_t rwl = 10;      // random-walk length
  std::size_t gmin = 7;      // merge threshold
  std::size_t gmax = 14;     // split threshold
  smr::EngineKind kind = smr::EngineKind::kSync;
  DurationMicros round_duration = seconds(1.0);  // sync round
  DurationMicros net_rtt = millis(2);            // async cost basis
  // Fraction of joining nodes that are Byzantine (placement tracking only;
  // faulty nodes do not disrupt the simulated protocols).
  double byzantine_fraction = 0.0;
  bool shuffle_enabled = true;
  std::uint64_t seed = 0xc1a5c1a5ULL;
};

// lint: adhoc-counter-ok(vgroup-granularity model, not wired to a node-level AtumSystem registry)
struct ClusterSimStats {
  std::uint64_t joins_requested = 0;
  std::uint64_t joins_completed = 0;
  std::uint64_t leaves_requested = 0;
  std::uint64_t leaves_completed = 0;
  std::uint64_t exchanges_attempted = 0;
  std::uint64_t exchanges_completed = 0;
  std::uint64_t exchanges_suppressed = 0;
  std::uint64_t splits = 0;
  std::uint64_t merges = 0;
  std::uint64_t walks = 0;
  std::uint64_t walk_hops = 0;
};

class ClusterSim {
 public:
  ClusterSim(sim::Simulator& sim, ClusterSimConfig config);

  // Creates the system with a single one-node vgroup (§3.3.1).
  void bootstrap(NodeId first_node);

  // Drives one join/leave through the simulated protocol. Completion is
  // asynchronous; completion callbacks are optional.
  void request_join(NodeId node, std::function<void()> done = nullptr);
  void request_leave(NodeId node, std::function<void()> done = nullptr);

  // Marks a node Byzantine for placement statistics.
  void mark_byzantine(NodeId node, bool byz = true);

  std::size_t node_count() const { return node_group_.size(); }
  std::size_t group_count() const { return groups_.size(); }
  std::optional<GroupId> group_of(NodeId n) const;
  std::vector<NodeId> members_of(GroupId g) const;
  bool is_busy(GroupId g) const;
  std::size_t queued_ops() const;

  const overlay::HGraph& graph() const { return graph_; }
  const ClusterSimStats& stats() const { return stats_; }
  const ClusterSimConfig& config() const { return config_; }
  sim::Simulator& simulator() { return sim_; }

  // Fault-placement summary: for each group, the number of Byzantine
  // members and the fault threshold of the configured engine.
  struct GroupRobustness {
    GroupId group;
    std::size_t size;
    std::size_t byzantine;
    std::size_t threshold;
    bool robust() const { return byzantine <= threshold; }
  };
  std::vector<GroupRobustness> robustness_report() const;

  // Consistency invariants (tests): node<->group maps agree, H-graph
  // vertices match live groups, sizes within bounds once stable.
  bool check_invariants(std::string* why = nullptr) const;

  // Protocol cost model (exposed for benches/tests).
  DurationMicros agreement_latency(std::size_t group_size) const;
  DurationMicros hop_latency() const;

 private:
  struct Group {
    std::set<NodeId> members;
    bool busy = false;
    std::deque<std::function<void()>> pending;  // ops waiting for the group
  };

  GroupId mint_group_id() { return next_group_id_++; }
  Group& group(GroupId g);
  const Group* find(GroupId g) const;

  // Occupies `g` for `duration`, then runs `body` and releases the group
  // (starting its next queued op).
  void occupy(GroupId g, DurationMicros duration, std::function<void()> body);
  // As occupy, but the group STAYS busy after `body`; the body must arrange
  // for release() (used to chain an agreement into a shuffle window).
  void occupy_held(GroupId g, DurationMicros duration, std::function<void()> body);
  // Runs `op` as soon as `g` is free.
  void when_free(GroupId g, std::function<void()> op);
  void release(GroupId g);
  void pump(GroupId g);

  // Picks the endpoint of an rwl-hop walk starting at `from` and calls
  // `done` with it after the simulated walk latency.
  void run_walk(GroupId from, std::function<void(GroupId)> done);

  void join_via_contact(NodeId node, GroupId contact, std::function<void()> done);
  void admit(NodeId node, GroupId target, std::function<void()> done);
  void depart(NodeId node, GroupId g, std::function<void()> done);
  // Pre-condition: the caller already holds `g` busy; releases it when all
  // exchange attempts have resolved.
  void shuffle_held(GroupId g, std::function<void()> done);
  void maybe_resize(GroupId g, std::function<void()> done);
  void split(GroupId g, std::function<void()> done);
  void merge(GroupId g, std::function<void()> done);

  sim::Simulator& sim_;
  ClusterSimConfig config_;
  Rng rng_;
  overlay::HGraph graph_;
  std::map<GroupId, Group> groups_;
  std::unordered_map<NodeId, GroupId> node_group_;
  std::set<NodeId> byzantine_;
  GroupId next_group_id_ = 0;
  ClusterSimStats stats_;
};

}  // namespace atum::group
