// The replicated state of one volatile group, as held by each member.
//
// Everything in here is deterministic state updated by SMR-ordered
// operations or by accepted group messages, so all correct members of a
// vgroup hold identical copies (§3.3.2: "The state replicated at each node
// includes information needed to participate in all protocols, e.g.,
// neighboring vgroup compositions, state of ongoing random walks, or
// pending join or leave operations.").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/serde.h"
#include "common/types.h"
#include "net/message.h"
#include "overlay/gossip.h"

namespace atum::group {

// A vgroup and its composition, as known to a peer.
struct GroupView {
  GroupId id = kInvalidGroup;
  std::vector<NodeId> members;

  bool known() const { return id != kInvalidGroup; }
  bool has_member(NodeId n) const;
  void encode(ByteWriter& w) const;
  static GroupView decode(ByteReader& r);
};

// Successor and predecessor views on one H-graph cycle.
struct CycleNeighbors {
  GroupView successor;
  GroupView predecessor;
};

class VGroupState {
 public:
  VGroupState() = default;
  VGroupState(GroupId id, std::vector<NodeId> members, std::size_t cycles);

  GroupId id() const { return id_; }
  const std::vector<NodeId>& members() const { return members_; }
  std::size_t size() const { return members_.size(); }
  std::size_t cycle_count() const { return neighbors_.size(); }
  bool has_member(NodeId n) const;

  void set_members(std::vector<NodeId> members);

  const CycleNeighbors& cycle(std::size_t c) const { return neighbors_.at(c); }
  void set_successor(std::size_t c, GroupView v) { neighbors_.at(c).successor = std::move(v); }
  void set_predecessor(std::size_t c, GroupView v) { neighbors_.at(c).predecessor = std::move(v); }

  // Updates whichever neighbor slots currently point at `view.id`
  // (composition refresh after the neighbor reconfigures).
  void refresh_neighbor(const GroupView& view);

  // The distinct neighbor references used by the gossip relay decision.
  std::vector<overlay::NeighborRef> neighbor_refs() const;

  // Looks up a neighboring group's composition (for group-message
  // acceptance); also matches this group itself.
  std::optional<GroupView> find_group(GroupId g) const;

  // All distinct groups this member must keep track of (self + neighbors).
  std::vector<GroupView> known_groups() const;

 private:
  GroupId id_ = kInvalidGroup;
  std::vector<NodeId> members_;
  std::vector<CycleNeighbors> neighbors_;
};

// ---------------------------------------------------------------------------
// SMR-ordered vgroup operations (the "app ops" of the vgroup's engine)
// ---------------------------------------------------------------------------

enum class OpKind : std::uint8_t {
  kBroadcast = 1,   // phase-1 Byzantine broadcast of an application message
  kSuspect = 2,     // heartbeat-based eviction vote (§5.1)
  kStartWalk = 3,   // group agreed to launch a random walk
};

// NOTE: the kBroadcast encoding (tag, origin, seq, length-prefixed payload)
// is byte-identical to the core layer's kGmGossip group-message frame by
// design: a decided broadcast op is relayed across the overlay verbatim,
// without re-encoding. atum.cpp static_asserts the tag equality and
// test_group pins the layout.
struct BroadcastOp {
  BroadcastId bcast;
  net::Payload payload;
  Bytes encode() const;
};

struct SuspectOp {
  NodeId suspect = kInvalidNode;
  Bytes encode() const;
};

struct StartWalkOp {
  std::uint8_t purpose = 0;
  std::uint64_t nonce = 0;
  Bytes payload;
  Bytes encode() const;
};

struct DecodedOp {
  OpKind kind;
  BroadcastOp broadcast;   // valid when kind == kBroadcast
  SuspectOp suspect;       // valid when kind == kSuspect
  StartWalkOp walk;        // valid when kind == kStartWalk
};

// Throws SerdeError on malformed input (treat origin as faulty). A decoded
// broadcast's payload is a refcounted slice of `wire` (no copy).
DecodedOp decode_op(const net::Payload& wire);

}  // namespace atum::group
