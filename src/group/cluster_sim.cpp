#include "group/cluster_sim.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace atum::group {

namespace {
template <typename Set>
NodeId nth_element_of(const Set& s, std::size_t idx) {
  auto it = s.begin();
  std::advance(it, static_cast<long>(idx));
  return *it;
}
}  // namespace

ClusterSim::ClusterSim(sim::Simulator& sim, ClusterSimConfig config)
    : sim_(sim), config_(config), rng_(config.seed), graph_(config.hc) {
  if (config_.gmin >= config_.gmax) {
    throw std::invalid_argument("ClusterSim: gmin must be below gmax");
  }
}

DurationMicros ClusterSim::agreement_latency(std::size_t group_size) const {
  // State transfer grows with the number of neighbor views kept (hc); §6.1.2
  // observes this cost is secondary to rwl.
  DurationMicros state_transfer =
      static_cast<DurationMicros>(config_.hc) * (config_.kind == smr::EngineKind::kSync
                                                     ? config_.round_duration / 50
                                                     : config_.net_rtt / 2);
  if (config_.kind == smr::EngineKind::kSync) {
    std::size_t f = group_size == 0 ? 0 : (group_size - 1) / 2;
    return static_cast<DurationMicros>(f + 2) * config_.round_duration + state_transfer;
  }
  // PBFT: request + three phases, a handful of RTTs.
  return 4 * config_.net_rtt + state_transfer;
}

DurationMicros ClusterSim::hop_latency() const {
  // A walk hop is one group message processed by the next group: one round
  // in the synchronous system, about one RTT in the asynchronous one.
  return config_.kind == smr::EngineKind::kSync ? config_.round_duration : config_.net_rtt;
}

ClusterSim::Group& ClusterSim::group(GroupId g) {
  auto it = groups_.find(g);
  if (it == groups_.end()) throw std::logic_error("ClusterSim: unknown group");
  return it->second;
}

const ClusterSim::Group* ClusterSim::find(GroupId g) const {
  auto it = groups_.find(g);
  return it == groups_.end() ? nullptr : &it->second;
}

bool ClusterSim::is_busy(GroupId g) const {
  const Group* grp = find(g);
  return grp != nullptr && grp->busy;
}

std::size_t ClusterSim::queued_ops() const {
  std::size_t n = 0;
  for (const auto& [g, grp] : groups_) n += grp.pending.size();
  return n;
}

std::optional<GroupId> ClusterSim::group_of(NodeId n) const {
  auto it = node_group_.find(n);
  if (it == node_group_.end()) return std::nullopt;
  return it->second;
}

std::vector<NodeId> ClusterSim::members_of(GroupId g) const {
  const Group* grp = find(g);
  if (grp == nullptr) return {};
  return {grp->members.begin(), grp->members.end()};
}

void ClusterSim::mark_byzantine(NodeId node, bool byz) {
  if (byz) {
    byzantine_.insert(node);
  } else {
    byzantine_.erase(node);
  }
}

void ClusterSim::bootstrap(NodeId first_node) {
  if (!groups_.empty()) throw std::logic_error("ClusterSim: already bootstrapped");
  GroupId g = mint_group_id();
  groups_[g].members.insert(first_node);
  node_group_[first_node] = g;
  graph_.add_first(g);
}

void ClusterSim::when_free(GroupId g, std::function<void()> op) {
  Group* grp = groups_.contains(g) ? &group(g) : nullptr;
  if (grp == nullptr || !grp->busy) {
    op();
    return;
  }
  grp->pending.push_back(std::move(op));
}

void ClusterSim::occupy(GroupId g, DurationMicros duration, std::function<void()> body) {
  Group& grp = group(g);
  assert(!grp.busy);
  grp.busy = true;
  sim_.schedule_after(duration, [this, g, body = std::move(body)] {
    body();
    release(g);
  });
}

void ClusterSim::occupy_held(GroupId g, DurationMicros duration, std::function<void()> body) {
  Group& grp = group(g);
  assert(!grp.busy);
  grp.busy = true;
  sim_.schedule_after(duration, std::move(body));
}

void ClusterSim::release(GroupId g) {
  auto it = groups_.find(g);
  if (it == groups_.end()) return;  // merged away while busy
  it->second.busy = false;
  pump(g);
}

void ClusterSim::pump(GroupId g) {
  auto it = groups_.find(g);
  if (it == groups_.end() || it->second.busy || it->second.pending.empty()) return;
  auto op = std::move(it->second.pending.front());
  it->second.pending.pop_front();
  // Break the call stack; after the op runs, keep draining unless it
  // occupied the group (ops may re-route to other groups without taking
  // this one). Re-check at execution time: a same-timestamp event may have
  // occupied the group between scheduling and running.
  sim_.schedule_after(0, [this, g, op = std::move(op)]() mutable {
    auto it2 = groups_.find(g);
    if (it2 != groups_.end() && it2->second.busy) {
      it2->second.pending.push_front(std::move(op));
      return;
    }
    op();
    pump(g);
  });
}

void ClusterSim::run_walk(GroupId from, std::function<void(GroupId)> done) {
  ++stats_.walks;
  stats_.walk_hops += config_.rwl;
  DurationMicros latency = static_cast<DurationMicros>(config_.rwl) * hop_latency();
  sim_.schedule_after(latency, [this, from, done = std::move(done)] {
    // Navigate the graph as it is when the walk completes; mid-walk
    // restructuring perturbs real walks the same way.
    GroupId cur = from;
    if (!graph_.contains(cur)) {
      auto verts = graph_.vertices();
      if (verts.empty()) return;  // system vanished; walk dies
      cur = verts[static_cast<std::size_t>(rng_.next_below(verts.size()))];
    }
    for (std::size_t s = 0; s < config_.rwl; ++s) {
      cur = graph_.random_neighbor(cur, rng_);
    }
    done(cur);
  });
}

void ClusterSim::request_join(NodeId node, std::function<void()> done) {
  ++stats_.joins_requested;
  if (groups_.empty()) throw std::logic_error("ClusterSim: bootstrap first");
  if (node_group_.contains(node)) throw std::invalid_argument("ClusterSim: node already joined");

  // The contact node's vgroup agrees on the join request (§3.3.2)...
  auto verts = graph_.vertices();
  GroupId contact = verts[static_cast<std::size_t>(rng_.next_below(verts.size()))];
  join_via_contact(node, contact, std::move(done));
}

void ClusterSim::join_via_contact(NodeId node, GroupId contact, std::function<void()> done) {
  if (!groups_.contains(contact)) {
    auto verts = graph_.vertices();
    if (verts.empty()) return;  // system vanished
    contact = verts[static_cast<std::size_t>(rng_.next_below(verts.size()))];
  }
  if (group(contact).busy) {
    when_free(contact, [this, node, contact, done = std::move(done)]() mutable {
      join_via_contact(node, contact, std::move(done));
    });
    return;
  }
  std::size_t c_size = group(contact).members.size();
  occupy(contact, agreement_latency(c_size),
         [this, contact, node, done = std::move(done)]() mutable {
           // ...then starts the placement walk.
           run_walk(contact, [this, node, done = std::move(done)](GroupId target) mutable {
             admit(node, target, std::move(done));
           });
         });
}

void ClusterSim::admit(NodeId node, GroupId target, std::function<void()> done) {
  if (!groups_.contains(target)) {
    // The selected group merged away while the walk returned; any correct
    // implementation re-runs the walk. Re-route to a random live group.
    auto verts = graph_.vertices();
    if (verts.empty()) return;
    target = verts[static_cast<std::size_t>(rng_.next_below(verts.size()))];
  }
  if (group(target).busy) {
    when_free(target, [this, target, node, done = std::move(done)]() mutable {
      admit(node, target, std::move(done));  // re-validates and re-routes
    });
    return;
  }
  {
    std::size_t size = group(target).members.size();
    occupy_held(target, agreement_latency(size + 1),
                [this, target, node, done = std::move(done)] {
                  group(target).members.insert(node);
                  node_group_[node] = target;
                  ++stats_.joins_completed;
                  shuffle_held(target, [this, target, done] { maybe_resize(target, done); });
                });
  }
}

void ClusterSim::request_leave(NodeId node, std::function<void()> done) {
  ++stats_.leaves_requested;
  auto git = node_group_.find(node);
  if (git == node_group_.end()) throw std::invalid_argument("ClusterSim: unknown node leaving");
  depart(node, git->second, std::move(done));
}

// Re-resolves the node's group (exchanges may move it while queued) and
// occupies it for the departure agreement.
void ClusterSim::depart(NodeId node, GroupId, std::function<void()> done) {
  auto it = node_group_.find(node);
  if (it == node_group_.end()) {
    if (done) done();  // already gone (evicted or already departed)
    return;
  }
  GroupId g = it->second;
  if (group(g).busy) {
    when_free(g, [this, node, done = std::move(done)]() mutable {
      depart(node, kInvalidGroup, std::move(done));
    });
    return;
  }
  std::size_t size = group(g).members.size();
  occupy_held(g, agreement_latency(size), [this, g, node, done = std::move(done)] {
    group(g).members.erase(node);
    node_group_.erase(node);
    ++stats_.leaves_completed;
    bool will_merge = group(g).members.size() < config_.gmin && groups_.size() > 1;
    if (will_merge) {
      // §3.3.3: defer the shuffle until after merging.
      release(g);
      maybe_resize(g, done);
    } else {
      shuffle_held(g, [this, g, done] { maybe_resize(g, done); });
    }
  });
}

void ClusterSim::shuffle_held(GroupId g, std::function<void()> done) {
  if (!config_.shuffle_enabled || !groups_.contains(g)) {
    release(g);
    if (done) done();
    return;
  }
  Group& grp = group(g);
  assert(grp.busy);

  auto members = std::make_shared<std::vector<NodeId>>(grp.members.begin(), grp.members.end());
  auto remaining = std::make_shared<std::size_t>(members->size());
  if (members->empty()) {
    release(g);
    if (done) done();
    return;
  }
  // The walks run while the group continues normal operation; only the
  // pairwise exchange step occupies the two groups involved. An exchange
  // whose partner (or whose own group) is mid-operation at that moment is
  // suppressed — the paper's Figure 13 effect.
  release(g);
  auto finish = [done, remaining] {
    if (--(*remaining) > 0) return;
    if (done) done();
  };

  for (NodeId m : *members) {
    run_walk(g, [this, g, m, finish](GroupId partner) {
      // Exchanges of one shuffle are ops of the own group's SMR: they queue
      // locally. Only a busy PARTNER suppresses the exchange (§7).
      when_free(g, [this, g, m, partner, finish] {
        ++stats_.exchanges_attempted;
        if (partner == g || !groups_.contains(partner) || !groups_.contains(g) ||
            group(partner).busy) {
          ++stats_.exchanges_suppressed;
          finish();
          return;
        }
        Group& mine = group(g);
        Group& theirs = group(partner);
        if (!mine.members.contains(m) || theirs.members.empty()) {
          ++stats_.exchanges_suppressed;
          finish();
          return;
        }
        // Pairwise agreement: both groups reconfigure together.
        mine.busy = true;
        theirs.busy = true;
        DurationMicros latency = agreement_latency(
            std::max(mine.members.size(), theirs.members.size()));
        sim_.schedule_after(latency, [this, g, partner, m, finish] {
          bool ok = groups_.contains(g) && groups_.contains(partner);
          if (ok) {
            Group& a = group(g);
            Group& b = group(partner);
            if (a.members.contains(m) && !b.members.empty()) {
              NodeId s = nth_element_of(
                  b.members, static_cast<std::size_t>(rng_.next_below(b.members.size())));
              a.members.erase(m);
              b.members.erase(s);
              a.members.insert(s);
              b.members.insert(m);
              node_group_[m] = partner;
              node_group_[s] = g;
              ++stats_.exchanges_completed;
            } else {
              ++stats_.exchanges_suppressed;
            }
          } else {
            ++stats_.exchanges_suppressed;
          }
          release(g);
          release(partner);
          finish();
        });
      });
    });
  }
}

void ClusterSim::maybe_resize(GroupId g, std::function<void()> done) {
  if (!groups_.contains(g)) {
    if (done) done();
    return;
  }
  std::size_t size = group(g).members.size();
  if (size > config_.gmax) {
    split(g, done);
  } else if (size < config_.gmin && groups_.size() > 1) {
    merge(g, done);
  } else {
    if (done) done();
  }
}

void ClusterSim::split(GroupId g, std::function<void()> done) {
  when_free(g, [this, g, done]() mutable {
    if (!groups_.contains(g) || group(g).members.size() <= config_.gmax) {
      if (done) done();
      return;
    }
    // Agreement on the split + hc anchor walks run concurrently.
    DurationMicros duration =
        agreement_latency(group(g).members.size()) +
        static_cast<DurationMicros>(config_.rwl) * hop_latency();
    stats_.walks += config_.hc;
    stats_.walk_hops += config_.hc * config_.rwl;
    occupy(g, duration, [this, g, done] {
      Group& grp = group(g);
      if (grp.members.size() <= config_.gmax) {
        if (done) done();
        return;
      }
      // Random bisection (§3.3.2).
      std::vector<NodeId> all(grp.members.begin(), grp.members.end());
      rng_.shuffle(all);
      std::size_t half = all.size() / 2;
      GroupId e = mint_group_id();
      Group& fresh = groups_[e];
      for (std::size_t i = half; i < all.size(); ++i) {
        fresh.members.insert(all[i]);
        grp.members.erase(all[i]);
        node_group_[all[i]] = e;
      }
      // One walk per cycle selected an anchor; the anchor inserts E between
      // itself and its successor on that cycle. All anchors are chosen
      // before E enters the graph: a half-inserted vertex must not be a
      // relay for the remaining walks.
      std::vector<GroupId> anchors(config_.hc);
      for (std::size_t c = 0; c < config_.hc; ++c) {
        GroupId anchor = g;
        for (std::size_t s = 0; s < config_.rwl; ++s) {
          anchor = graph_.random_neighbor(anchor, rng_);
        }
        anchors[c] = anchor;
      }
      for (std::size_t c = 0; c < config_.hc; ++c) {
        graph_.insert_after(c, anchors[c], e);
      }
      ++stats_.splits;
      if (done) done();
    });
  });
}

void ClusterSim::merge(GroupId g, std::function<void()> done) {
  when_free(g, [this, g, done]() mutable {
    if (!groups_.contains(g) || group(g).members.size() >= config_.gmin ||
        groups_.size() <= 1) {
      if (done) done();
      return;
    }
    auto neighbors = graph_.neighbors(g);
    std::erase_if(neighbors, [&](GroupId n) { return !groups_.contains(n); });
    if (neighbors.empty()) {
      if (done) done();
      return;
    }
    // Hold g for the entire merge so no other operation mutates or targets
    // it while its members move (the real protocol's agreement in L does
    // the same).
    group(g).busy = true;
    GroupId m = neighbors[static_cast<std::size_t>(rng_.next_below(neighbors.size()))];
    when_free(m, [this, g, m, done]() mutable {
      if (!groups_.contains(m) || m == g) {
        // Partner vanished: abort this attempt and retry.
        release(g);
        merge(g, done);
        return;
      }
      std::size_t total = group(g).members.size() + group(m).members.size();
      occupy_held(m, agreement_latency(total), [this, g, m, done] {
        Group& loser = group(g);  // still present: g was held busy
        Group& winner = group(m);
        for (NodeId n : loser.members) {
          winner.members.insert(n);
          node_group_[n] = m;
        }
        // Requeue whatever was waiting on g to m (the real system's
        // retries would land there after the neighbor update).
        for (auto& op : loser.pending) winner.pending.push_back(std::move(op));
        // Close the gap on every cycle (§3.3.3) and retire the group.
        graph_.remove(g);
        groups_.erase(g);
        ++stats_.merges;
        // §3.3.3: M informs neighbors, shuffles, and splits if necessary.
        shuffle_held(m, [this, m, done] { maybe_resize(m, done); });
      });
    });
  });
}

std::vector<ClusterSim::GroupRobustness> ClusterSim::robustness_report() const {
  std::vector<GroupRobustness> out;
  for (const auto& [g, grp] : groups_) {
    GroupRobustness r;
    r.group = g;
    r.size = grp.members.size();
    r.byzantine = 0;
    for (NodeId n : grp.members) r.byzantine += byzantine_.contains(n);
    r.threshold = config_.kind == smr::EngineKind::kSync
                      ? smr::sync_max_faults(r.size)
                      : smr::async_max_faults(r.size);
    out.push_back(r);
  }
  return out;
}

bool ClusterSim::check_invariants(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  // Graph vertices == live groups.
  if (graph_.size() != groups_.size()) return fail("graph/groups size mismatch");
  for (const auto& [g, grp] : groups_) {
    if (!graph_.contains(g)) return fail("live group missing from graph");
    for (NodeId n : grp.members) {
      auto it = node_group_.find(n);
      if (it == node_group_.end() || it->second != g) {
        return fail("member map inconsistent");
      }
    }
  }
  std::size_t counted = 0;
  // lint: unordered-iter-ok(pure counting/containment check, order-free)
  for (const auto& [n, g] : node_group_) {
    const Group* grp = find(g);
    if (grp == nullptr || !grp->members.contains(n)) return fail("node map points nowhere");
    ++counted;
  }
  std::size_t total = 0;
  for (const auto& [g, grp] : groups_) total += grp.members.size();
  if (counted != total) return fail("membership count mismatch");
  if (!graph_.validate()) return fail("H-graph cycles corrupted");
  return true;
}

}  // namespace atum::group
