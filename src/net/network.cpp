#include "net/network.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/registry.h"

namespace atum::net {

namespace {
std::pair<NodeId, NodeId> link_key(NodeId a, NodeId b) {
  return {std::min(a, b), std::max(a, b)};
}
}  // namespace

NetworkConfig NetworkConfig::datacenter() { return NetworkConfig{}; }

void NetworkConfig::validate() const {
  auto positive_rate = [](double v) { return std::isfinite(v) && v > 0.0; };
  if (!positive_rate(egress_bytes_per_sec)) {
    throw std::invalid_argument("NetworkConfig: egress_bytes_per_sec must be finite and > 0");
  }
  if (!positive_rate(ingress_bytes_per_sec)) {
    throw std::invalid_argument("NetworkConfig: ingress_bytes_per_sec must be finite and > 0");
  }
  if (!(drop_probability >= 0.0 && drop_probability <= 1.0)) {  // rejects NaN too
    throw std::invalid_argument("NetworkConfig: drop_probability must be in [0,1]");
  }
  if (base_latency < 0) throw std::invalid_argument("NetworkConfig: negative base_latency");
  if (jitter_mean < 0) throw std::invalid_argument("NetworkConfig: negative jitter_mean");
  if (per_message_cpu < 0) throw std::invalid_argument("NetworkConfig: negative per_message_cpu");
  for (const auto& row : region_latency) {
    if (row.size() != region_latency.size()) {
      throw std::invalid_argument("NetworkConfig: region_latency must be square");
    }
    for (DurationMicros d : row) {
      if (d < 0) throw std::invalid_argument("NetworkConfig: negative region latency");
    }
  }
}

NetworkConfig NetworkConfig::wide_area() {
  NetworkConfig c;
  c.wan = true;
  c.jitter_mean = 2'000;
  // One-way latencies in ms between: eu-west, eu-central, us-east, us-west,
  // ap-tokyo, ap-singapore, ap-sydney, sa-east. Values follow public
  // inter-region RTT/2 measurements, rounded.
  const int ms[8][8] = {
      {1, 12, 40, 70, 110, 85, 140, 95},   // eu-west
      {12, 1, 45, 75, 115, 80, 145, 100},  // eu-central
      {40, 45, 1, 35, 75, 110, 100, 60},   // us-east
      {70, 75, 35, 1, 55, 85, 70, 90},     // us-west
      {110, 115, 75, 55, 1, 35, 55, 130},  // ap-tokyo
      {85, 80, 110, 85, 35, 1, 45, 160},   // ap-singapore
      {140, 145, 100, 70, 55, 45, 1, 160}, // ap-sydney
      {95, 100, 60, 90, 130, 160, 160, 1}, // sa-east
  };
  c.region_latency.assign(8, std::vector<DurationMicros>(8));
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j) c.region_latency[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = millis(ms[i][j]);
  return c;
}

SimNetwork::SimNetwork(sim::Simulator& sim, NetworkConfig config, std::uint64_t seed)
    : sim_(sim), config_(std::move(config)), rng_(seed) {
  config_.validate();
}

void SimNetwork::bind_metrics(obs::Registry& registry) {
  registry.probe("net.messages_sent", {}, [this] { return stats_.messages_sent; });
  registry.probe("net.messages_delivered", {}, [this] { return stats_.messages_delivered; });
  registry.probe("net.messages_dropped", {}, [this] { return stats_.messages_dropped; });
  registry.probe("net.messages_blocked", {}, [this] { return stats_.messages_blocked; });
  registry.probe("net.bytes_sent", {}, [this] { return stats_.bytes_sent; });
  registry.probe("net.flows", {}, [this] { return static_cast<std::uint64_t>(flows_.size()); });
}

void SimNetwork::attach(NodeId node, MessageHandler handler) {
  handlers_[node].fallback = std::move(handler);
}

void SimNetwork::attach(NodeId node, MsgType type, MessageHandler handler) {
  handlers_[node].by_type[static_cast<std::uint16_t>(type)] = std::move(handler);
}

void SimNetwork::detach(NodeId node) {
  auto it = handlers_.find(node);
  if (it == handlers_.end()) return;
  it->second.fallback = nullptr;
  if (it->second.empty()) handlers_.erase(it);
}

void SimNetwork::detach(NodeId node, MsgType type) {
  auto it = handlers_.find(node);
  if (it == handlers_.end()) return;
  it->second.by_type.erase(static_cast<std::uint16_t>(type));
  if (it->second.empty()) handlers_.erase(it);
}

const MessageHandler* SimNetwork::handler_for(NodeId node, MsgType type) const {
  auto it = handlers_.find(node);
  if (it == handlers_.end()) return nullptr;
  auto tit = it->second.by_type.find(static_cast<std::uint16_t>(type));
  if (tit != it->second.by_type.end()) return &tit->second;
  if (it->second.fallback) return &it->second.fallback;
  return nullptr;
}

std::size_t SimNetwork::region_of(NodeId node) const {
  return static_cast<std::size_t>(node % config_.region_latency.size());
}

DurationMicros SimNetwork::latency_between(NodeId from, NodeId to) {
  DurationMicros base;
  if (config_.wan && !config_.region_latency.empty()) {
    base = config_.region_latency[region_of(from)][region_of(to)];
  } else {
    base = config_.base_latency;
  }
  DurationMicros jitter = 0;
  if (config_.jitter_mean > 0) {
    double u = rng_.next_double();
    jitter = static_cast<DurationMicros>(
        -static_cast<double>(config_.jitter_mean) * std::log1p(-u));
  }
  return base + jitter;
}

bool SimNetwork::link_ok(NodeId from, NodeId to) const {
  if (isolated_.contains(from) || isolated_.contains(to)) return false;
  if (!partition_tag_.empty()) {
    auto tag = [this](NodeId n) -> std::uint32_t {
      auto it = partition_tag_.find(n);
      return it == partition_tag_.end() ? 0 : it->second;
    };
    if (tag(from) != tag(to)) return false;
  }
  return !blocked_links_.contains(link_key(from, to));
}

void SimNetwork::partition(const std::vector<std::vector<NodeId>>& sides) {
  partition_tag_.clear();
  std::uint32_t tag = 0;
  for (const auto& side : sides) {
    ++tag;
    for (NodeId n : side) partition_tag_[n] = tag;
  }
}

void SimNetwork::heal_partition() {
  partition_tag_.clear();
  sweep_flows();
}

void SimNetwork::set_link_fault(NodeId a, NodeId b, LinkFault fault) {
  if (fault.none()) {
    clear_link_fault(a, b);
  } else {
    link_faults_[link_key(a, b)] = fault;
  }
}

void SimNetwork::clear_link_fault(NodeId a, NodeId b) {
  link_faults_.erase(link_key(a, b));
}

void SimNetwork::set_node_fault(NodeId node, LinkFault fault) {
  if (fault.none()) {
    clear_node_fault(node);
  } else {
    node_faults_[node] = fault;
  }
}

void SimNetwork::clear_node_fault(NodeId node) { node_faults_.erase(node); }

void SimNetwork::clear_link_faults() {
  link_faults_.clear();
  node_faults_.clear();
  sweep_flows();
}

LinkFault SimNetwork::fault_between(NodeId from, NodeId to) const {
  if (link_faults_.empty() && node_faults_.empty()) return {};
  LinkFault out;
  double pass = 1.0;  // probability the message survives every fault
  auto fold = [&](const LinkFault& f) {
    pass *= 1.0 - f.drop;
    out.extra_latency += f.extra_latency;
  };
  if (auto it = link_faults_.find(link_key(from, to)); it != link_faults_.end()) {
    fold(it->second);
  }
  if (auto it = node_faults_.find(from); it != node_faults_.end()) fold(it->second);
  if (auto it = node_faults_.find(to); it != node_faults_.end()) fold(it->second);
  out.drop = 1.0 - pass;
  return out;
}

std::size_t SimNetwork::sweep_flows() {
  const TimeMicros now = sim_.now();
  // lint: unordered-iter-ok(erase predicate is per-entry, order-free)
  std::size_t evicted = std::erase_if(flows_, [now](const auto& kv) {
    return kv.second.egress_free <= now && kv.second.ingress_free <= now;
  });
  sends_since_flow_prune_ = 0;
  flow_sweep_allowance_ = flows_.size() + kMinFlowSweep;
  return evicted;
}

void SimNetwork::isolate(NodeId node, bool isolated) {
  if (isolated) {
    isolated_.insert(node);
  } else {
    isolated_.erase(node);
  }
}

void SimNetwork::block_link(NodeId a, NodeId b, bool blocked) {
  if (blocked) {
    blocked_links_.insert(link_key(a, b));
  } else {
    blocked_links_.erase(link_key(a, b));
  }
}

void SimNetwork::maybe_prune_flows() {
  // A flow whose serialization horizons are in the past is indistinguishable
  // from a fresh entry (depart/deliver clamp to now), so sweeping idle
  // entries is exact: flows_ stays proportional to the nodes with traffic
  // in flight instead of growing by one entry per node ever seen (unbounded
  // under million-node churn). The allowance is snapshotted at sweep time
  // (not compared against the live size, which can grow one-per-send and
  // outrun any counter), making the sweep O(1) amortized per message.
  if (++sends_since_flow_prune_ < flow_sweep_allowance_) return;
  sweep_flows();
}

void SimNetwork::send(Message msg) {
  ++stats_.messages_sent;
  stats_.bytes_sent += msg.wire_size();
  maybe_prune_flows();

  if (!link_ok(msg.from, msg.to) || !handlers_.contains(msg.to)) {
    ++stats_.messages_blocked;
    return;
  }
  const LinkFault fault = fault_between(msg.from, msg.to);
  if (config_.drop_probability > 0.0 && rng_.chance(config_.drop_probability)) {
    ++stats_.messages_dropped;
    return;
  }
  if (fault.drop > 0.0 && rng_.chance(fault.drop)) {
    ++stats_.messages_dropped;
    return;
  }

  const double size = static_cast<double>(msg.wire_size());
  const TimeMicros now = sim_.now();

  Flow& out = flows_[msg.from];
  auto egress_cost = static_cast<DurationMicros>(
      size / config_.egress_bytes_per_sec * kMicrosPerSecond);
  TimeMicros depart = std::max(now, out.egress_free);
  out.egress_free = depart + egress_cost;

  TimeMicros arrive = out.egress_free + latency_between(msg.from, msg.to);

  Flow& in = flows_[msg.to];
  auto ingress_cost = static_cast<DurationMicros>(
      size / config_.ingress_bytes_per_sec * kMicrosPerSecond);
  TimeMicros deliver = std::max(arrive, in.ingress_free) + ingress_cost + config_.per_message_cpu;
  in.ingress_free = deliver;
  // Injected fault latency is pure propagation: it delays delivery without
  // occupying the ingress horizon, so a cleared fault leaves no far-future
  // flow entries behind (they would be unsweepable until sim time caught
  // up with the inflated horizon).
  deliver += fault.extra_latency;

  sim_.schedule_at(deliver, [this, m = std::move(msg)]() {
    const MessageHandler* handler = handler_for(m.to, m.type);
    if (handler == nullptr || !link_ok(m.from, m.to)) {
      ++stats_.messages_blocked;
      return;
    }
    ++stats_.messages_delivered;
    (*handler)(m);
  });
}

}  // namespace atum::net
