// Simulated network: the substrate standing in for EC2's datacenter (Sync
// experiments) and the 8-region WAN (Async experiments).
//
// Model per message:
//   depart  = max(now, sender egress free)        (egress serialization)
//   arrive  = depart + size/egress_bw + latency(from,to)
//   deliver = max(arrive, receiver ingress free) + size/ingress_bw
// plus optional drop probability and link/node partitions. Latency is
// base + exponential jitter, or a region matrix in WAN mode.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/message.h"
#include "sim/simulator.h"

namespace atum::obs {
class Registry;
}  // namespace atum::obs

namespace atum::net {

struct NetworkConfig {
  // Intra-datacenter defaults (EC2 micro-ish): 0.25 ms base one-way latency.
  DurationMicros base_latency = 250;
  DurationMicros jitter_mean = 100;       // exponential jitter added per message
  double drop_probability = 0.0;          // applied before delivery
  double egress_bytes_per_sec = 12.5e6;   // ~100 Mbit/s
  double ingress_bytes_per_sec = 12.5e6;
  // Per-message processing cost at the receiver; models the micro
  // instance's limited CPU. 0 disables the model.
  DurationMicros per_message_cpu = 15;

  // WAN mode: nodes are assigned to regions round-robin; latency(from,to)
  // comes from the matrix (micros, one-way) instead of base_latency.
  bool wan = false;
  std::vector<std::vector<DurationMicros>> region_latency;

  static NetworkConfig datacenter();
  // 8 regions as in the paper: EU x2, US x2, Asia x2, Australia, S.America.
  static NetworkConfig wide_area();

  // Throws std::invalid_argument on non-physical parameters (zero/negative
  // or non-finite bandwidths, negative latencies, drop probability outside
  // [0,1], a non-square WAN latency matrix). SimNetwork validates its
  // config at construction, so a bad bandwidth fails fast instead of
  // silently producing inf/NaN delivery times.
  void validate() const;
};

// lint: adhoc-counter-ok(pre-registry struct; exposed via bind_metrics probes)
struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_blocked = 0;  // partitioned or unregistered target
  std::uint64_t bytes_sent = 0;
};

// Registered once per node/type at bind time, invoked per delivery. The
// per-message cost is one indirect call with no allocation — the hot-path
// allocation problem std::function caused lived in the per-EVENT closures,
// which sim::EventFn replaced. If a profile ever shows this dispatch, the
// EventFn treatment applies here too.
// lint: std-function-ok(bind-time registration; invoke is alloc-free)
using MessageHandler = std::function<void(const Message&)>;

// Injected link degradation (scenario fault primitives): `drop` is an extra
// loss probability and `extra_latency` an added path delay (a rerouted or
// congested WAN path). Injected latency is pure propagation — it delays the
// delivery event but does NOT occupy the receiver's ingress serialization
// horizon, so a degraded spell cannot park flow entries with far-future
// horizons that outlive the fault (see sweep_flows()).
struct LinkFault {
  double drop = 0.0;
  DurationMicros extra_latency = 0;
  bool none() const { return drop == 0.0 && extra_latency == 0; }
};

class SimNetwork {
 public:
  SimNetwork(sim::Simulator& sim, NetworkConfig config, std::uint64_t seed = 0x7e77e7ULL);

  // Registers (or replaces) a node's default receive handler.
  void attach(NodeId node, MessageHandler handler);
  // Registers a handler for one message type; takes precedence over the
  // default handler. Lets several protocol components share one node.
  void attach(NodeId node, MsgType type, MessageHandler handler);
  void detach(NodeId node);
  void detach(NodeId node, MsgType type);
  bool attached(NodeId node) const { return handlers_.contains(node); }

  // Queues a message for delivery. Never blocks; delivery (or drop) is
  // scheduled on the simulator.
  void send(Message msg);

  // Fault injection.
  void isolate(NodeId node, bool isolated);
  void block_link(NodeId a, NodeId b, bool blocked);  // bidirectional
  void set_drop_probability(double p) { config_.drop_probability = p; }

  // --- partitions (scenario engine) ---
  // Splits the network into components: nodes in sides[i] get tag i+1,
  // every other node keeps tag 0, and a message passes only between nodes
  // with equal tags. Replaces any previous partition. Messages already in
  // flight are re-checked at delivery time, so a partition starting now
  // also cuts them off.
  void partition(const std::vector<std::vector<NodeId>>& sides);
  // Removes the partition and sweeps the flow table exactly (a partition
  // stalls traffic, and with it the send-driven amortized sweep; healing
  // must not leave dead serialization entries behind — see flow_count()).
  void heal_partition();
  bool partitioned() const { return !partition_tag_.empty(); }

  // --- link degradation (scenario engine) ---
  // Overrides compose: the effective fault on (from,to) combines the
  // per-link override and both endpoints' node-level overrides (loss as
  // independent events, latency additively). Bidirectional, like
  // block_link.
  void set_link_fault(NodeId a, NodeId b, LinkFault fault);
  void clear_link_fault(NodeId a, NodeId b);
  // Applies to every link touching `node` (a degraded rack uplink).
  void set_node_fault(NodeId node, LinkFault fault);
  void clear_node_fault(NodeId node);
  // Clears all link and node faults, then sweeps the flow table (same
  // rationale as heal_partition).
  void clear_link_faults();

  // Exact, immediate sweep of idle flow entries (the amortized sweep rides
  // on send() and stalls when traffic does — partitions, quiescent drain
  // phases). Returns the number of entries evicted. Scenario metrics call
  // this before reading flow_count().
  std::size_t sweep_flows();

  const NetworkStats& stats() const { return stats_; }
  const NetworkConfig& config() const { return config_; }
  sim::Simulator& simulator() { return sim_; }

  // Registers the network's counters on `registry` as polled probes
  // (net.messages_sent, net.messages_delivered, net.messages_dropped,
  // net.messages_blocked, net.bytes_sent, net.flows): the send/deliver hot
  // path keeps its plain struct fields, the registry reads them only at
  // sample() time. The registry must outlive this network.
  void bind_metrics(obs::Registry& registry);

  // Per-node bandwidth-serialization entries currently tracked. Bounded by
  // the nodes with traffic in flight, not by every node ever seen (idle
  // entries are swept; see maybe_prune_flows).
  std::size_t flow_count() const { return flows_.size(); }

  DurationMicros latency_between(NodeId from, NodeId to);

 private:
  struct Flow {
    TimeMicros egress_free = 0;
    TimeMicros ingress_free = 0;
  };
  bool link_ok(NodeId from, NodeId to) const;
  std::size_t region_of(NodeId node) const;
  void maybe_prune_flows();
  LinkFault fault_between(NodeId from, NodeId to) const;

  struct NodeHandlers {
    MessageHandler fallback;
    std::unordered_map<std::uint16_t, MessageHandler> by_type;
    bool empty() const { return !fallback && by_type.empty(); }
  };
  const MessageHandler* handler_for(NodeId node, MsgType type) const;

  sim::Simulator& sim_;
  NetworkConfig config_;
  Rng rng_;
  // Full-width link key: NodeId is 64-bit, so packing two ids into one
  // 64-bit word would alias distinct links once ids exceed 2^32.
  using LinkKey = std::pair<NodeId, NodeId>;  // (min, max)
  struct LinkKeyHash {
    std::size_t operator()(const LinkKey& k) const noexcept {
      std::size_t h = std::hash<NodeId>{}(k.first);
      return h ^ (std::hash<NodeId>{}(k.second) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    }
  };

  static constexpr std::size_t kMinFlowSweep = 256;

  std::unordered_map<NodeId, NodeHandlers> handlers_;
  std::unordered_map<NodeId, Flow> flows_;
  std::uint64_t sends_since_flow_prune_ = 0;
  std::size_t flow_sweep_allowance_ = kMinFlowSweep;
  std::unordered_set<NodeId> isolated_;
  std::unordered_set<LinkKey, LinkKeyHash> blocked_links_;
  // Partition tags: absent = tag 0. Non-empty iff a partition is active.
  std::unordered_map<NodeId, std::uint32_t> partition_tag_;
  std::unordered_map<LinkKey, LinkFault, LinkKeyHash> link_faults_;
  std::unordered_map<NodeId, LinkFault> node_faults_;
  NetworkStats stats_;
};

// Narrow per-node view of the network: what protocol code holds. Keeps
// protocols implementation-agnostic (a socket-backed transport would
// implement the same surface). Each Transport remembers what it registered
// so that close() removes only its own handlers — several components
// (SMR engine, overlay, application) share one node.
class Transport {
 public:
  Transport(SimNetwork& net, NodeId self) : net_(&net), self_(self) {}
  Transport(const Transport& other) : net_(other.net_), self_(other.self_) {}
  Transport& operator=(const Transport& other) {
    net_ = other.net_;
    self_ = other.self_;
    return *this;  // registrations are not copied
  }
  Transport(Transport&&) = default;
  Transport& operator=(Transport&&) = default;

  NodeId self() const { return self_; }
  sim::Simulator& simulator() { return net_->simulator(); }

  // Accepts Bytes (frozen into a Payload here) or an existing Payload.
  // Fan-out loops should freeze once and pass the Payload so all
  // recipients share one buffer.
  void send(NodeId to, MsgType type, Payload payload) {
    net_->send(Message{self_, to, type, std::move(payload)});
  }
  // Registers the node's default handler (owned by this Transport).
  void listen(MessageHandler handler) {
    net_->attach(self_, std::move(handler));
    owns_fallback_ = true;
  }
  // Registers handlers for an explicit set of message types.
  void listen(std::initializer_list<MsgType> types, const MessageHandler& handler) {
    for (MsgType t : types) {
      net_->attach(self_, t, handler);
      owned_types_.push_back(t);
    }
  }
  void close() {
    if (owns_fallback_) {
      net_->detach(self_);
      owns_fallback_ = false;
    }
    for (MsgType t : owned_types_) net_->detach(self_, t);
    owned_types_.clear();
  }

  SimNetwork& network() { return *net_; }

 private:
  SimNetwork* net_;
  NodeId self_;
  bool owns_fallback_ = false;
  std::vector<MsgType> owned_types_;
};

}  // namespace atum::net
