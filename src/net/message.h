// Wire message envelope. `type` dispatches to the protocol handler; the
// payload is an opaque byte string produced by ByteWriter.
#pragma once

#include <cstdint>

#include "common/serde.h"
#include "common/types.h"

namespace atum::net {

// Message type tags. Grouped per layer; values are part of the wire format.
enum class MsgType : std::uint16_t {
  // SMR layer
  kDsBroadcast = 0x0100,      // Dolev-Strong value + signature chain
  kPbftRequest = 0x0200,
  kPbftPrePrepare = 0x0201,
  kPbftPrepare = 0x0202,
  kPbftCommit = 0x0203,
  kPbftViewChange = 0x0204,
  kPbftNewView = 0x0205,
  kPbftCheckpoint = 0x0206,
  kPbftStateFetch = 0x0207,
  kPbftStateReply = 0x0208,
  // Overlay layer
  kGroupMsgFull = 0x0300,     // full copy of a group message
  kGroupMsgDigest = 0x0301,   // digest-only copy (§5.1 optimization)
  // Group / core layer
  kHeartbeat = 0x0400,
  kJoinRequest = 0x0401,
  kJoinReply = 0x0402,
  // Applications
  kAppData = 0x0500,
  kChunkRequest = 0x0501,
  kChunkReply = 0x0502,
  kStreamPush = 0x0503,
  kStreamPull = 0x0504,
  kStreamChunk = 0x0505,
};

struct Message {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  MsgType type = MsgType::kAppData;
  Bytes payload;

  // Bytes on the wire: payload plus transport/auth framing (addresses,
  // type, length, MAC tag) — roughly a TCP+TLS-record overhead.
  static constexpr std::size_t kHeaderOverhead = 64;
  std::size_t wire_size() const { return payload.size() + kHeaderOverhead; }
};

}  // namespace atum::net
