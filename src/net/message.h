// Wire message envelope. `type` dispatches to the protocol handler; the
// payload is an opaque byte string produced by ByteWriter.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <utility>

#include "common/serde.h"
#include "common/types.h"
#include "crypto/sha256.h"

namespace atum::net {

// Message type tags. Grouped per layer; values are part of the wire format.
enum class MsgType : std::uint16_t {
  // SMR layer
  kDsBroadcast = 0x0100,      // Dolev-Strong value + signature chain
  kPbftRequest = 0x0200,
  kPbftPrePrepare = 0x0201,
  kPbftPrepare = 0x0202,
  kPbftCommit = 0x0203,
  kPbftViewChange = 0x0204,
  kPbftNewView = 0x0205,
  kPbftCheckpoint = 0x0206,
  kPbftStateFetch = 0x0207,
  kPbftStateReply = 0x0208,
  kSmrRemovalNotice = 0x0209, // new-epoch members -> reconfigured-out members
  // Overlay layer
  kGroupMsgFull = 0x0300,     // full copy of a group message
  kGroupMsgDigest = 0x0301,   // digest-only copy (§5.1 optimization)
  kGroupMsgEnvelope = 0x0302, // several full/digest frames coalesced per tick
  // Group / core layer
  kHeartbeat = 0x0400,
  kJoinRequest = 0x0401,
  kJoinReply = 0x0402,
  // Applications
  kAppData = 0x0500,
  kChunkRequest = 0x0501,
  kChunkReply = 0x0502,
  kStreamPush = 0x0503,
  kStreamPull = 0x0504,
  kStreamChunk = 0x0505,
};

// Immutable, reference-counted view of a message body.
//
// Ownership model (end-to-end, see ARCHITECTURE.md and README "Payload
// API"):
//  * The PRODUCER freezes bytes exactly once — constructing a Payload from
//    Bytes is the last copy/move that buffer will ever see. A vgroup
//    fan-out (g = 7..20 recipients per destination group, times several
//    neighbor groups per gossip relay) then shares that one buffer: copying
//    a Payload copies one shared_ptr plus a range.
//  * CONSUMERS decode without copying: slice() carves a sub-message (a
//    group-message body, a decided SMR op, a broadcast payload) out of a
//    received frame as a new Payload that shares the parent's buffer and
//    keeps it alive. A frame is therefore materialized once per node and
//    every layer above the transport works on views of it.
//  * LIFETIME: a slice pins the whole parent frame (frame_size() exposes
//    how much). That is the right trade for protocol frames (delivered
//    promptly, then dropped); code that archives a tiny slice of a huge
//    frame long-term should copy via to_bytes() instead — see AStream's
//    copy_out_threshold for the knob pattern.
//
// Digest cache: digest() returns the SHA-256 of the viewed range and
// memoizes it on the shared buffer control block, so every holder of the
// same frame — the vouching receiver, the gossip relay re-deriving the
// GroupMessageId, the digest-rank sender — reuses one computation. The
// memo is sound because the buffer is truly immutable: senders mutating
// their original Bytes after send() cannot affect in-flight messages, and
// receivers cannot corrupt the copy other receivers see. INVARIANT: digest
// validity is tied to that immutability — any future mutable-buffer
// variant of Payload must drop or re-key the memo.
class Payload {
 public:
  Payload() : data_(empty_buffer()) {}
  // Implicit: freezes the bytes (one copy/move — the last one this buffer
  // will ever see).
  // lint: hot-path-alloc-ok(frame control block: one refcounted allocation per adopted buffer)
  Payload(Bytes bytes) : data_(std::make_shared<Frame>(std::move(bytes))) {
    size_ = data_->bytes.size();
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const std::uint8_t* data() const { return data_->bytes.data() + offset_; }
  const std::uint8_t* begin() const { return data(); }
  const std::uint8_t* end() const { return data() + size_; }

  // Size of the whole backing frame this view pins (>= size(); equal iff
  // the view is the whole buffer). Lifetime introspection: long-lived
  // stores compare frame_size() against size() to decide whether keeping a
  // slice is cheap or whether to copy out, and tests use it to prove a
  // payload is a zero-copy slice of a larger frame.
  std::size_t frame_size() const { return data_->bytes.size(); }

  // A Payload restricted to `view`, sharing (and keeping alive) this
  // payload's buffer. `view` must lie inside this payload — the intended
  // use is passing a range obtained from ByteReader::bytes_view() on this
  // payload up the stack without copying.
  Payload slice(std::span<const std::uint8_t> view) const {
    if (!view.empty() && (view.data() < data() || view.data() + view.size() > end())) {
      throw std::out_of_range("Payload::slice: view outside buffer");
    }
    Payload out;
    out.data_ = data_;
    out.offset_ = view.empty() ? offset_
                               : offset_ + static_cast<std::size_t>(view.data() - data());
    out.size_ = view.size();
    return out;
  }

  // How many (offset, size) ranges the per-frame digest memo retains. Four
  // covers the protocols here with headroom: a batched SMR pre-prepare
  // hashes the whole ops region plus per-op sub-ranges, and a coalesced
  // gossip envelope carries several group-message bodies that each get
  // vouch-hashed — without one range's digest evicting the next before its
  // reuse (the PR-3 single-slot memo thrashed under exactly that pattern).
  static constexpr std::size_t kDigestMemoSlots = 4;

  // SHA-256 of the viewed bytes, computed at most once per (frame, range)
  // and memoized on the shared control block: every Payload sharing this
  // buffer — across sends, slices, relays, even across nodes in the
  // simulator — reuses the cached value. The memo is a tiny fixed-size set
  // of kDigestMemoSlots (offset, size, digest) entries with round-robin
  // replacement: a frame hashed over more distinct ranges than that simply
  // recomputes the oldest ones (linear scan of 4 entries is cheaper than
  // any map for this cardinality).
  //
  // Thread safety: the memo is guarded by a per-frame mutex, so concurrent
  // digest() calls on Payloads sharing one buffer are race-free (the
  // sharded simulator and the real transport both hash from worker
  // threads). The bytes themselves are immutable and need no lock. An
  // uncontended lock costs ~20 ns against a >1 µs hash, and the
  // single-threaded hot path stays allocation-free.
  crypto::Digest digest() const {
    Frame& f = *data_;
    std::lock_guard<std::mutex> lock(f.digest_mu);
    for (const Frame::DigestMemo& m : f.memo) {
      if (m.valid && m.offset == offset_ && m.size == size_) return m.digest;
    }
    Frame::DigestMemo& slot = f.memo[f.memo_next];
    f.memo_next = (f.memo_next + 1) % kDigestMemoSlots;
    slot.valid = true;
    slot.offset = offset_;
    slot.size = size_;
    slot.digest = crypto::sha256(data(), size_);
    return slot.digest;
  }

  // Deep copy, for the rare consumer that needs independent ownership
  // (e.g. a long-lived store that must not pin the parent frame).
  Bytes to_bytes() const { return Bytes(begin(), end()); }

  // How many Payload instances share this buffer (tests/benches: proves a
  // fan-out shared one allocation instead of copying).
  long use_count() const { return data_.use_count(); }

  // Content equality (also comparable against raw Bytes, e.g. in tests).
  friend bool operator==(const Payload& a, const Payload& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const Payload& a, const Bytes& b) {
    return a.size_ == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  // Control block: the frozen bytes plus the per-frame digest memo, which
  // caches the digests of up to kDigestMemoSlots (offset, size) ranges. The
  // memo fields are mutated through shared_ptr under digest_mu; the bytes
  // are const and lock-free to read.
  struct Frame {
    explicit Frame(Bytes b) : bytes(std::move(b)) {}
    const Bytes bytes;
    std::mutex digest_mu;
    struct DigestMemo {
      bool valid = false;
      std::size_t offset = 0;
      std::size_t size = 0;
      crypto::Digest digest{};
    };
    std::array<DigestMemo, kDigestMemoSlots> memo{};
    std::size_t memo_next = 0;  // round-robin replacement cursor
  };

  static const std::shared_ptr<Frame>& empty_buffer() {
    // lint: hot-path-alloc-ok(function-local static: allocated once per process, not per call)
    static const std::shared_ptr<Frame> kEmpty = std::make_shared<Frame>(Bytes{});
    return kEmpty;
  }

  std::shared_ptr<Frame> data_;
  std::size_t offset_ = 0;
  std::size_t size_ = 0;
};

struct Message {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  MsgType type = MsgType::kAppData;
  Payload payload;

  // Bytes on the wire: payload plus transport/auth framing (addresses,
  // type, length, MAC tag) — roughly a TCP+TLS-record overhead.
  static constexpr std::size_t kHeaderOverhead = 64;
  std::size_t wire_size() const { return payload.size() + kHeaderOverhead; }
};

}  // namespace atum::net
