// Wire message envelope. `type` dispatches to the protocol handler; the
// payload is an opaque byte string produced by ByteWriter.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "common/serde.h"
#include "common/types.h"

namespace atum::net {

// Message type tags. Grouped per layer; values are part of the wire format.
enum class MsgType : std::uint16_t {
  // SMR layer
  kDsBroadcast = 0x0100,      // Dolev-Strong value + signature chain
  kPbftRequest = 0x0200,
  kPbftPrePrepare = 0x0201,
  kPbftPrepare = 0x0202,
  kPbftCommit = 0x0203,
  kPbftViewChange = 0x0204,
  kPbftNewView = 0x0205,
  kPbftCheckpoint = 0x0206,
  kPbftStateFetch = 0x0207,
  kPbftStateReply = 0x0208,
  // Overlay layer
  kGroupMsgFull = 0x0300,     // full copy of a group message
  kGroupMsgDigest = 0x0301,   // digest-only copy (§5.1 optimization)
  // Group / core layer
  kHeartbeat = 0x0400,
  kJoinRequest = 0x0401,
  kJoinReply = 0x0402,
  // Applications
  kAppData = 0x0500,
  kChunkRequest = 0x0501,
  kChunkReply = 0x0502,
  kStreamPush = 0x0503,
  kStreamPull = 0x0504,
  kStreamChunk = 0x0505,
};

// Immutable, reference-counted message body.
//
// A vgroup fan-out sends one byte string to every member of the destination
// group (g = 7..20 recipients) and a gossip relay repeats that per overlay
// neighbor, so the same buffer used to be deep-copied dozens of times per
// broadcast. A Payload freezes the bytes once at construction; copying it
// afterwards copies one shared_ptr. The buffer is truly immutable — senders
// mutating their original Bytes after send() cannot affect in-flight
// messages, and receivers cannot corrupt the copy other receivers see.
class Payload {
 public:
  Payload() : data_(empty_buffer()) {}
  // Implicit: freezes the bytes (one copy/move — the last one this buffer
  // will ever see).
  Payload(Bytes bytes) : data_(std::make_shared<const Bytes>(std::move(bytes))) {}
  explicit Payload(std::shared_ptr<const Bytes> bytes)
      : data_(bytes ? std::move(bytes) : empty_buffer()) {}

  const Bytes& bytes() const { return *data_; }
  operator const Bytes&() const { return *data_; }  // drop-in for ByteReader & friends

  std::size_t size() const { return data_->size(); }
  bool empty() const { return data_->empty(); }
  const std::uint8_t* data() const { return data_->data(); }
  Bytes::const_iterator begin() const { return data_->begin(); }
  Bytes::const_iterator end() const { return data_->end(); }

  // How many Payload instances share this buffer (tests/benches: proves a
  // fan-out shared one allocation instead of copying).
  long use_count() const { return data_.use_count(); }

  friend bool operator==(const Payload& a, const Payload& b) { return *a.data_ == *b.data_; }

 private:
  static const std::shared_ptr<const Bytes>& empty_buffer() {
    static const std::shared_ptr<const Bytes> kEmpty = std::make_shared<const Bytes>();
    return kEmpty;
  }

  std::shared_ptr<const Bytes> data_;
};

struct Message {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  MsgType type = MsgType::kAppData;
  Payload payload;

  // Bytes on the wire: payload plus transport/auth framing (addresses,
  // type, length, MAC tag) — roughly a TCP+TLS-record overhead.
  static constexpr std::size_t kHeaderOverhead = 64;
  std::size_t wire_size() const { return payload.size() + kHeaderOverhead; }
};

}  // namespace atum::net
