// Wire message envelope. `type` dispatches to the protocol handler; the
// payload is an opaque byte string produced by ByteWriter.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>

#include "common/serde.h"
#include "common/types.h"

namespace atum::net {

// Message type tags. Grouped per layer; values are part of the wire format.
enum class MsgType : std::uint16_t {
  // SMR layer
  kDsBroadcast = 0x0100,      // Dolev-Strong value + signature chain
  kPbftRequest = 0x0200,
  kPbftPrePrepare = 0x0201,
  kPbftPrepare = 0x0202,
  kPbftCommit = 0x0203,
  kPbftViewChange = 0x0204,
  kPbftNewView = 0x0205,
  kPbftCheckpoint = 0x0206,
  kPbftStateFetch = 0x0207,
  kPbftStateReply = 0x0208,
  // Overlay layer
  kGroupMsgFull = 0x0300,     // full copy of a group message
  kGroupMsgDigest = 0x0301,   // digest-only copy (§5.1 optimization)
  // Group / core layer
  kHeartbeat = 0x0400,
  kJoinRequest = 0x0401,
  kJoinReply = 0x0402,
  // Applications
  kAppData = 0x0500,
  kChunkRequest = 0x0501,
  kChunkReply = 0x0502,
  kStreamPush = 0x0503,
  kStreamPull = 0x0504,
  kStreamChunk = 0x0505,
};

// Immutable, reference-counted view of a message body.
//
// Ownership model (end-to-end, see README "Payload API"):
//  * The PRODUCER freezes bytes exactly once — constructing a Payload from
//    Bytes is the last copy/move that buffer will ever see. A vgroup
//    fan-out (g = 7..20 recipients per destination group, times several
//    neighbor groups per gossip relay) then shares that one buffer: copying
//    a Payload copies one shared_ptr plus a range.
//  * CONSUMERS decode without copying: slice() carves a sub-message (a
//    group-message body, a decided SMR op, a broadcast payload) out of a
//    received frame as a new Payload that shares the parent's buffer and
//    keeps it alive. A frame is therefore materialized once per node and
//    every layer above the transport works on views of it.
//  * LIFETIME: a slice pins the whole parent buffer. That is the right
//    trade for protocol frames (delivered promptly, then dropped); code
//    that archives a tiny slice of a huge frame long-term should copy via
//    to_bytes() instead.
// The buffer is truly immutable — senders mutating their original Bytes
// after send() cannot affect in-flight messages, and receivers cannot
// corrupt the copy other receivers see.
class Payload {
 public:
  Payload() : data_(empty_buffer()) {}
  // Implicit: freezes the bytes (one copy/move — the last one this buffer
  // will ever see).
  Payload(Bytes bytes)
      : data_(std::make_shared<const Bytes>(std::move(bytes))), size_(data_->size()) {}
  explicit Payload(std::shared_ptr<const Bytes> bytes)
      : data_(bytes ? std::move(bytes) : empty_buffer()), size_(data_->size()) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const std::uint8_t* data() const { return data_->data() + offset_; }
  const std::uint8_t* begin() const { return data(); }
  const std::uint8_t* end() const { return data() + size_; }

  // A Payload restricted to `view`, sharing (and keeping alive) this
  // payload's buffer. `view` must lie inside this payload — the intended
  // use is passing a range obtained from ByteReader::bytes_view() on this
  // payload up the stack without copying.
  Payload slice(std::span<const std::uint8_t> view) const {
    if (!view.empty() && (view.data() < data() || view.data() + view.size() > end())) {
      throw std::out_of_range("Payload::slice: view outside buffer");
    }
    Payload out;
    out.data_ = data_;
    out.offset_ = view.empty() ? offset_
                               : offset_ + static_cast<std::size_t>(view.data() - data());
    out.size_ = view.size();
    return out;
  }

  // Deep copy, for the rare consumer that needs independent ownership.
  Bytes to_bytes() const { return Bytes(begin(), end()); }

  // How many Payload instances share this buffer (tests/benches: proves a
  // fan-out shared one allocation instead of copying).
  long use_count() const { return data_.use_count(); }

  // Content equality (also comparable against raw Bytes, e.g. in tests).
  friend bool operator==(const Payload& a, const Payload& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const Payload& a, const Bytes& b) {
    return a.size_ == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  static const std::shared_ptr<const Bytes>& empty_buffer() {
    static const std::shared_ptr<const Bytes> kEmpty = std::make_shared<const Bytes>();
    return kEmpty;
  }

  std::shared_ptr<const Bytes> data_;
  std::size_t offset_ = 0;
  std::size_t size_ = 0;
};

struct Message {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  MsgType type = MsgType::kAppData;
  Payload payload;

  // Bytes on the wire: payload plus transport/auth framing (addresses,
  // type, length, MAC tag) — roughly a TCP+TLS-record overhead.
  static constexpr std::size_t kHeaderOverhead = 64;
  std::size_t wire_size() const { return payload.size() + kHeaderOverhead; }
};

}  // namespace atum::net
