#include "overlay/gossip.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "obs/trace.h"

namespace atum::overlay {

ForwardFn forward_flood() {
  return [](const BroadcastId&, const net::Payload&, const NeighborRef&) { return true; };
}

ForwardFn forward_cycles(std::set<std::size_t> cycles) {
  return [cycles = std::move(cycles)](const BroadcastId&, const net::Payload&,
                                      const NeighborRef& n) { return cycles.contains(n.cycle); };
}

ForwardFn forward_random(double p, std::uint64_t seed) {
  // Deterministic in (broadcast, neighbor): every correct member of a
  // vgroup must make the same relay decision, or the receiving group could
  // fall short of the majority vouches a group message needs.
  auto mix = [](std::uint64_t x) {
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  };
  return [p, seed, mix](const BroadcastId& id, const net::Payload&, const NeighborRef& n) {
    std::uint64_t h = mix(seed);
    for (std::uint64_t v :
         {id.origin, id.seq, static_cast<std::uint64_t>(n.group),
          static_cast<std::uint64_t>(n.cycle), static_cast<std::uint64_t>(n.direction)}) {
      h = mix(h ^ mix(v + 0x9e3779b97f4a7c15ULL));
    }
    // Map the hash to [0,1) and compare against p.
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < p;
  };
}

ForwardFn forward_none() {
  return [](const BroadcastId&, const net::Payload&, const NeighborRef&) { return false; };
}

SendCoalescer::SendCoalescer(net::Transport transport, Rng& rng)
    : transport_(std::move(transport)), rng_(rng) {}

SendCoalescer::~SendCoalescer() { discard(); }

void SendCoalescer::enqueue(NodeId dest, net::MsgType type, net::Payload frame) {
  if (type != net::MsgType::kGroupMsgFull && type != net::MsgType::kGroupMsgDigest) {
    throw std::logic_error("SendCoalescer: only group-message frames coalesce");
  }
  ++frames_enqueued_;
  auto& pending = queue_[dest];
  // A relay fanning one broadcast out to overlapping neighbor groups
  // enqueues the same frozen frame for the same node once per group; a
  // receiver dedups vouches per sender anyway, so duplicates are pure
  // overhead. Buffer identity (not content) is the test: the fan-out paths
  // share one frozen Payload, so duplicates alias the same buffer.
  for (const auto& [t, f] : pending) {
    if (t == type && f.data() == frame.data() && f.size() == frame.size()) return;
  }
  pending.emplace_back(type, std::move(frame));
  if (flush_event_ == 0) {
    // schedule_after(0) fires after every event already scheduled for the
    // current instant, so the flush sees every frame this tick produces.
    flush_event_ = transport_.simulator().schedule_after(0, [this] {
      flush_event_ = 0;
      flush();
    });
  }
}

void SendCoalescer::flush() {
  if (flush_event_ != 0) {
    transport_.simulator().cancel(flush_event_);
    flush_event_ = 0;
  }
  if (queue_.empty()) return;
  // Drain into a vector (sorted by destination — deterministic set), then
  // randomize the send order across destinations (§5.1).
  std::vector<std::pair<NodeId, std::vector<std::pair<net::MsgType, net::Payload>>>> batch;
  batch.reserve(queue_.size());
  for (auto& [dest, frames] : queue_) batch.emplace_back(dest, std::move(frames));
  queue_.clear();
  rng_.shuffle(batch);
  for (auto& [dest, frames] : batch) {
    for (std::size_t i = 0; i < frames.size(); i += kMaxFramesPerEnvelope) {
      std::size_t end = std::min(i + kMaxFramesPerEnvelope, frames.size());
      if (end - i == 1) {
        // A lone frame travels as itself: zero coalescing overhead.
        transport_.send(dest, frames[i].first, std::move(frames[i].second));
        ++messages_sent_;
        continue;
      }
      ByteWriter w;
      w.varint(end - i);
      const bool tracing = tracer_ != nullptr && tracer_->enabled();
      for (std::size_t j = i; j < end; ++j) {
        w.u16(static_cast<std::uint16_t>(frames[j].first));
        w.bytes(frames[j].second.data(), frames[j].second.size());
        if (tracing && frames[j].second.size() >= 16) {
          // Group-message wire layout: u64 from_group, u64 seq, body. The
          // seq IS the broadcast's digest prefix, i.e. the trace key.
          ByteReader fr(frames[j].second);
          // lint: handler-serde-safety-ok(locally-built frame; the size()>=16 gate covers both u64 reads)
          fr.u64();  // from_group
          // lint: handler-serde-safety-ok(locally-built frame; the size()>=16 gate covers both u64 reads)
          tracer_->record(transport_.simulator().now(), transport_.self(),
                          obs::TracePoint::kCoalesce, fr.u64(), end - i);
        }
      }
      transport_.send(dest, net::MsgType::kGroupMsgEnvelope, w.take());
      ++messages_sent_;
      ++envelopes_sent_;
    }
  }
}

void SendCoalescer::discard() {
  if (flush_event_ != 0) {
    transport_.simulator().cancel(flush_event_);
    flush_event_ = 0;
  }
  queue_.clear();
}

std::size_t SendCoalescer::queued() const {
  std::size_t n = 0;
  for (const auto& [dest, frames] : queue_) n += frames.size();
  return n;
}

bool GossipState::first_sighting(const BroadcastId& id) { return seen_.insert(id).second; }

bool GossipState::seen(const BroadcastId& id) const { return seen_.contains(id); }

std::vector<NeighborRef> GossipState::relays(const BroadcastId& id, const net::Payload& payload,
                                             const std::vector<NeighborRef>& neighbors) const {
  std::vector<NeighborRef> out;
  for (const NeighborRef& n : neighbors) {
    // Deterministic delivery guarantee: the cycle-0 successor link is always
    // used, whatever the application callback says.
    bool mandatory = (n.cycle == 0 && n.direction == 0);
    if (mandatory || (forward_ && forward_(id, payload, n))) {
      out.push_back(n);
    }
  }
  return out;
}

}  // namespace atum::overlay
