#include "overlay/gossip.h"

#include <memory>

namespace atum::overlay {

ForwardFn forward_flood() {
  return [](const BroadcastId&, const net::Payload&, const NeighborRef&) { return true; };
}

ForwardFn forward_cycles(std::set<std::size_t> cycles) {
  return [cycles = std::move(cycles)](const BroadcastId&, const net::Payload&,
                                      const NeighborRef& n) { return cycles.contains(n.cycle); };
}

ForwardFn forward_random(double p, std::uint64_t seed) {
  // Deterministic in (broadcast, neighbor): every correct member of a
  // vgroup must make the same relay decision, or the receiving group could
  // fall short of the majority vouches a group message needs.
  auto mix = [](std::uint64_t x) {
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  };
  return [p, seed, mix](const BroadcastId& id, const net::Payload&, const NeighborRef& n) {
    std::uint64_t h = mix(seed);
    for (std::uint64_t v :
         {id.origin, id.seq, static_cast<std::uint64_t>(n.group),
          static_cast<std::uint64_t>(n.cycle), static_cast<std::uint64_t>(n.direction)}) {
      h = mix(h ^ mix(v + 0x9e3779b97f4a7c15ULL));
    }
    // Map the hash to [0,1) and compare against p.
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < p;
  };
}

ForwardFn forward_none() {
  return [](const BroadcastId&, const net::Payload&, const NeighborRef&) { return false; };
}

bool GossipState::first_sighting(const BroadcastId& id) { return seen_.insert(id).second; }

bool GossipState::seen(const BroadcastId& id) const { return seen_.contains(id); }

std::vector<NeighborRef> GossipState::relays(const BroadcastId& id, const net::Payload& payload,
                                             const std::vector<NeighborRef>& neighbors) const {
  std::vector<NeighborRef> out;
  for (const NeighborRef& n : neighbors) {
    // Deterministic delivery guarantee: the cycle-0 successor link is always
    // used, whatever the application callback says.
    bool mandatory = (n.cycle == 0 && n.direction == 0);
    if (mandatory || (forward_ && forward_(id, payload, n))) {
      out.push_back(n);
    }
  }
  return out;
}

}  // namespace atum::overlay
