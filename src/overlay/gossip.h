// Gossip dissemination among vgroups (§3.2, §3.3.4).
//
// Broadcast phase two: when a vgroup receives a broadcast for the first
// time it delivers the message and then consults the application-provided
// `forward` callback once per overlay neighbor to decide whether to relay.
// To turn gossip's probabilistic delivery into a deterministic guarantee,
// the engine always relays along a designated cycle (cycle 0, successor
// direction) in addition to whatever the callback chooses — the paper's
// "gossip at least with neighboring vgroups on a specific cycle".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/serde.h"
#include "common/types.h"
#include "net/message.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace atum::obs {
class Tracer;
}  // namespace atum::obs

namespace atum::overlay {

// A neighbor as seen by the forward callback: which group, reached over
// which cycle and direction (0 = successor, 1 = predecessor).
struct NeighborRef {
  GroupId group = kInvalidGroup;
  std::size_t cycle = 0;
  int direction = 0;
  friend bool operator==(const NeighborRef&, const NeighborRef&) = default;
};

// The application's §3.3.4 `forward(message, neighbor)` callback. The
// payload is a refcounted view of the broadcast body (shared with every
// other consumer of the frame — do not expect a private copy).
using ForwardFn = std::function<bool(const BroadcastId& id, const net::Payload& payload,
                                     const NeighborRef& neighbor)>;

// Built-in forwarding policies.
// Latency-optimal: relay to every neighbor on every cycle (flooding).
ForwardFn forward_flood();
// Throughput-oriented (AStream): relay only along the given cycles.
ForwardFn forward_cycles(std::set<std::size_t> cycles);
// Classic randomized gossip: relay to each neighbor with probability p.
ForwardFn forward_random(double p, std::uint64_t seed);
// Never relay (the unwise choice §3.3.4 warns about; used in tests).
ForwardFn forward_none();

// Per-node send coalescing for group-message frames (perf, riding on the
// simulator's event granularity). A gossip relay fans one broadcast out to
// several neighbor vgroups whose member sets overlap the same physical
// destinations, and one tick can decide several broadcasts; without
// coalescing each (frame, destination) pair is its own transport message
// and pays the fixed per-message costs (Message::kHeaderOverhead on the
// wire, per_message_cpu at the receiver). enqueue() instead parks frames
// per destination and a tick-end flush sends everything bound for one node
// as a single kGroupMsgEnvelope message — the fixed costs amortize across
// the coalesced frames exactly as the SMR batch amortizes quorum cost
// across ops.
//
// Determinism: the flush runs via schedule_after(0), which the simulator
// fires after every event already scheduled for the current instant, so
// the envelope contents depend only on what the tick produced, never on
// wall-clock interleaving. Destination flush order is randomized through
// the caller's seeded Rng — §5.1's randomized send order applied at the
// granularity that still matters once each destination gets at most one
// message per tick (desynchronizing which destination's envelope leaves
// the egress queue first across senders).
//
// Envelope wire format: varint frame_count, then per frame
// u16 inner_type (kGroupMsgFull | kGroupMsgDigest), bytes frame. The
// receiver decodes each inner frame as a zero-copy slice of the envelope
// payload (the widened Payload digest memo keeps the per-frame vouch
// digests of one envelope cached side by side).
class SendCoalescer {
 public:
  // Ceiling on frames per envelope: bounds decode cost per message and
  // keeps a single faulty tick from minting an arbitrarily large frame.
  static constexpr std::size_t kMaxFramesPerEnvelope = 32;

  // The Rng must outlive the coalescer (AtumNode passes its per-node rng).
  SendCoalescer(net::Transport transport, Rng& rng);
  ~SendCoalescer();
  SendCoalescer(const SendCoalescer&) = delete;
  SendCoalescer& operator=(const SendCoalescer&) = delete;

  // Queues a group-message frame for `dest`; `type` must be kGroupMsgFull
  // or kGroupMsgDigest. All frames queued for one destination within the
  // current simulator tick leave as one message. Enqueueing the same
  // frozen frame for the same destination twice (a relay whose neighbor
  // groups overlap) is suppressed: the receiver dedups vouches per sender,
  // so the duplicate could never contribute anything.
  void enqueue(NodeId dest, net::MsgType type, net::Payload frame);

  // Sends everything queued now (normally runs automatically at tick end;
  // exposed for tests and explicit drains).
  void flush();
  // Drops everything queued without sending and cancels the pending flush
  // (node shutdown).
  void discard();

  // --- stats (benchmarks / tests) ---
  std::uint64_t frames_enqueued() const { return frames_enqueued_; }
  // Transport messages actually sent (singles + envelopes).
  std::uint64_t messages_sent() const { return messages_sent_; }
  // Multi-frame envelopes among them.
  std::uint64_t envelopes_sent() const { return envelopes_sent_; }
  // Per-message fixed costs avoided: frames that shared an envelope or
  // were suppressed as duplicates instead of travelling alone.
  std::uint64_t messages_saved() const { return frames_enqueued_ - messages_sent_; }
  // Frames currently parked awaiting the tick-end flush.
  std::size_t queued() const;

  // Message-lifecycle tracing: frames that leave inside a multi-frame
  // envelope record a kCoalesce event keyed by the frame's group-message
  // seq (= the broadcast's digest prefix — see obs/trace.h). Null tracer
  // or a disabled one costs a single branch at flush.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  net::Transport transport_;
  Rng& rng_;
  // Keyed map so flush sees a deterministic destination set; the actual
  // send order is then shuffled through rng_ (seeded, reproducible).
  std::map<NodeId, std::vector<std::pair<net::MsgType, net::Payload>>> queue_;
  sim::EventId flush_event_ = 0;
  obs::Tracer* tracer_ = nullptr;
  // lint: adhoc-counter-ok(pre-registry stats; summed onto the registry by AtumSystem probes)
  std::uint64_t frames_enqueued_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t envelopes_sent_ = 0;
};

// Per-vgroup-member dedup and relay bookkeeping for broadcasts. Pure logic:
// the group/core layer feeds accepted group messages in and sends the
// relays this class decides on.
class GossipState {
 public:
  explicit GossipState(ForwardFn forward) : forward_(std::move(forward)) {}

  void set_forward(ForwardFn fn) { forward_ = std::move(fn); }

  // First sighting of a broadcast? (also records it)
  bool first_sighting(const BroadcastId& id);
  bool seen(const BroadcastId& id) const;

  // Relay decision for one broadcast across the group's neighbor set;
  // always includes the deterministic cycle-0 successor link.
  std::vector<NeighborRef> relays(const BroadcastId& id, const net::Payload& payload,
                                  const std::vector<NeighborRef>& neighbors) const;

  std::size_t seen_count() const { return seen_.size(); }

 private:
  ForwardFn forward_;
  std::unordered_set<BroadcastId> seen_;
};

}  // namespace atum::overlay
