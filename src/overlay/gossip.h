// Gossip dissemination among vgroups (§3.2, §3.3.4).
//
// Broadcast phase two: when a vgroup receives a broadcast for the first
// time it delivers the message and then consults the application-provided
// `forward` callback once per overlay neighbor to decide whether to relay.
// To turn gossip's probabilistic delivery into a deterministic guarantee,
// the engine always relays along a designated cycle (cycle 0, successor
// direction) in addition to whatever the callback chooses — the paper's
// "gossip at least with neighboring vgroups on a specific cycle".
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/serde.h"
#include "common/types.h"
#include "net/message.h"

namespace atum::overlay {

// A neighbor as seen by the forward callback: which group, reached over
// which cycle and direction (0 = successor, 1 = predecessor).
struct NeighborRef {
  GroupId group = kInvalidGroup;
  std::size_t cycle = 0;
  int direction = 0;
  friend bool operator==(const NeighborRef&, const NeighborRef&) = default;
};

// The application's §3.3.4 `forward(message, neighbor)` callback. The
// payload is a refcounted view of the broadcast body (shared with every
// other consumer of the frame — do not expect a private copy).
using ForwardFn = std::function<bool(const BroadcastId& id, const net::Payload& payload,
                                     const NeighborRef& neighbor)>;

// Built-in forwarding policies.
// Latency-optimal: relay to every neighbor on every cycle (flooding).
ForwardFn forward_flood();
// Throughput-oriented (AStream): relay only along the given cycles.
ForwardFn forward_cycles(std::set<std::size_t> cycles);
// Classic randomized gossip: relay to each neighbor with probability p.
ForwardFn forward_random(double p, std::uint64_t seed);
// Never relay (the unwise choice §3.3.4 warns about; used in tests).
ForwardFn forward_none();

// Per-vgroup-member dedup and relay bookkeeping for broadcasts. Pure logic:
// the group/core layer feeds accepted group messages in and sends the
// relays this class decides on.
class GossipState {
 public:
  explicit GossipState(ForwardFn forward) : forward_(std::move(forward)) {}

  void set_forward(ForwardFn fn) { forward_ = std::move(fn); }

  // First sighting of a broadcast? (also records it)
  bool first_sighting(const BroadcastId& id);
  bool seen(const BroadcastId& id) const;

  // Relay decision for one broadcast across the group's neighbor set;
  // always includes the deterministic cycle-0 successor link.
  std::vector<NeighborRef> relays(const BroadcastId& id, const net::Payload& payload,
                                  const std::vector<NeighborRef>& neighbors) const;

  std::size_t seen_count() const { return seen_.size(); }

 private:
  ForwardFn forward_;
  std::unordered_set<BroadcastId> seen_;
};

}  // namespace atum::overlay
