// Group messages (§3.1, Figure 3): the reliable communication primitive for
// pairs of vgroups. A group message from vgroup A to vgroup B is sent by
// every correct node of A to every node of B; a node of B accepts it once a
// majority of A's members vouch for the same content, which makes the
// primitive correct whenever A is robust.
//
// Two practical mechanisms from §5.1 are implemented:
//  * digest optimization — only a majority of A's members transmit the full
//    payload, the rest send its SHA-256 digest; any majority contains a
//    correct node, so at least one full copy always arrives;
//  * randomized send order — each sender permutes the destination list to
//    avoid the synchronized bursts that cause incast throughput collapse.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "crypto/sha256.h"
#include "net/network.h"

namespace atum::overlay {

struct GroupMessageId {
  GroupId from_group = kInvalidGroup;
  std::uint64_t seq = 0;
  friend auto operator<=>(const GroupMessageId&, const GroupMessageId&) = default;
};

// One group message encoded on behalf of the local node, ready to fan out.
// `senders` is the sorted membership of the local vgroup (must include
// `self`); the first floor(g/2)+1 ranks transmit the full payload, the rest
// its digest. The wire frame is encoded and frozen exactly once — sending
// it to any number of destination groups and members shares one buffer
// (gossip relays the same broadcast to several neighbor vgroups).
class PreparedGroupMessage {
 public:
  PreparedGroupMessage(const std::vector<NodeId>& senders, NodeId self, GroupMessageId id,
                       const Bytes& payload);

  // Sends to every member of `destination`, in randomized order (§5.1:
  // avoid the synchronized bursts that cause incast throughput collapse).
  void send_to(net::Transport& transport, const std::vector<NodeId>& destination,
               Rng& rng) const;

 private:
  net::Payload wire_;
  net::MsgType type_;
};

// Convenience wrapper: prepare + send to one destination group.
void send_group_message(net::Transport& transport, const std::vector<NodeId>& senders,
                        GroupMessageId id, const std::vector<NodeId>& destination,
                        const Bytes& payload, Rng& rng);

// Per-node acceptance logic. Collects vouches until a majority of the
// sending group agrees on one digest and a full payload with that digest
// has arrived, then delivers exactly once.
class GroupMessageReceiver {
 public:
  using DeliverFn =
      std::function<void(const GroupMessageId& id, NodeId relay, const Bytes& payload)>;
  // Resolves the size of a sending vgroup; acceptance needs the true size,
  // not a size claimed on the wire by a possibly-Byzantine sender. Return
  // nullopt for unknown groups (their messages stay buffered).
  using GroupSizeFn = std::function<std::optional<std::size_t>(GroupId)>;
  // Membership check: is `node` a member of `group`? Vouches from
  // non-members are ignored.
  using MembershipFn = std::function<bool(GroupId, NodeId)>;

  GroupMessageReceiver(net::Transport transport, DeliverFn deliver);
  ~GroupMessageReceiver();
  GroupMessageReceiver(const GroupMessageReceiver&) = delete;
  GroupMessageReceiver& operator=(const GroupMessageReceiver&) = delete;

  void set_group_size_fn(GroupSizeFn fn) { group_size_ = std::move(fn); }
  void set_membership_fn(MembershipFn fn) { membership_ = std::move(fn); }

  // Re-evaluates buffered messages (e.g. after learning a group's
  // composition through a neighbor update).
  void reevaluate();

  std::size_t pending_count() const { return pending_.size(); }

 private:
  struct Pending {
    // digest -> distinct vouching senders
    std::map<crypto::Digest, std::vector<NodeId>> vouches;
    // digest -> (full payload, first relay that provided it)
    std::map<crypto::Digest, std::pair<Bytes, NodeId>> payloads;
    bool delivered = false;
  };

  void on_message(const net::Message& msg);
  void try_deliver(const GroupMessageId& id, Pending& p);

  net::Transport transport_;
  DeliverFn deliver_;
  GroupSizeFn group_size_;
  MembershipFn membership_;
  std::map<GroupMessageId, Pending> pending_;
};

}  // namespace atum::overlay
