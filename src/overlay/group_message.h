// Group messages (§3.1, Figure 3): the reliable communication primitive for
// pairs of vgroups. A group message from vgroup A to vgroup B is sent by
// every correct node of A to every node of B; a node of B accepts it once a
// majority of A's members vouch for the same content, which makes the
// primitive correct whenever A is robust.
//
// Two practical mechanisms from §5.1 are implemented:
//  * digest optimization — only a majority of A's members transmit the full
//    payload, the rest send its SHA-256 digest; any majority contains a
//    correct node, so at least one full copy always arrives;
//  * randomized send order — each sender permutes the destination list to
//    avoid the synchronized bursts that cause incast throughput collapse.
//
// Payload ownership (zero-copy path): the sender encodes + freezes the wire
// frame exactly once per node (PreparedGroupMessage) and every destination
// member shares that buffer. The receiver decodes the body as a refcounted
// slice of the arriving frame (net::Payload::slice) — it is buffered in
// Pending and handed to DeliverFn without ever being copied, so a node
// materializes no bytes on the receive path at all.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "crypto/sha256.h"
#include "net/network.h"

namespace atum::obs {
class Tracer;
}  // namespace atum::obs

namespace atum::overlay {

class SendCoalescer;  // gossip.h

struct GroupMessageId {
  GroupId from_group = kInvalidGroup;
  std::uint64_t seq = 0;
  friend auto operator<=>(const GroupMessageId&, const GroupMessageId&) = default;
};

// One group message encoded on behalf of the local node, ready to fan out.
// `senders` is the sorted membership of the local vgroup (must include
// `self`); the first floor(g/2)+1 ranks transmit the full payload, the rest
// its digest. The wire frame is encoded and frozen exactly once — sending
// it to any number of destination groups and members shares one buffer
// (gossip relays the same broadcast to several neighbor vgroups).
class PreparedGroupMessage {
 public:
  PreparedGroupMessage(const std::vector<NodeId>& senders, NodeId self, GroupMessageId id,
                       const net::Payload& payload);

  // Sends to every member of `destination`, in randomized order (§5.1:
  // avoid the synchronized bursts that cause incast throughput collapse).
  void send_to(net::Transport& transport, const std::vector<NodeId>& destination,
               Rng& rng) const;

  // Same fan-out routed through the per-node SendCoalescer: this frame and
  // every other frame bound for the same destination in the current tick
  // leave as one envelope. No per-member shuffle here — coalescing caps
  // the sender at one message per (destination, tick) and the coalescer
  // randomizes the destination order at flush.
  void send_to(SendCoalescer& coalescer, const std::vector<NodeId>& destination) const;

 private:
  net::Payload wire_;
  net::MsgType type_;
};

// Convenience wrapper: prepare + send to one destination group.
void send_group_message(net::Transport& transport, const std::vector<NodeId>& senders,
                        GroupMessageId id, const std::vector<NodeId>& destination,
                        const net::Payload& payload, Rng& rng);

// Per-node acceptance logic. Collects vouches until a majority of the
// sending group agrees on one digest and a full payload with that digest
// has arrived, then delivers exactly once.
class GroupMessageReceiver {
 public:
  // The delivered payload is a refcounted slice of the relay's wire frame
  // (zero-copy); keep it as a Payload or slice it further, don't copy.
  using DeliverFn =
      std::function<void(const GroupMessageId& id, NodeId relay, net::Payload payload)>;
  // Resolves the size of a sending vgroup; acceptance needs the true size,
  // not a size claimed on the wire by a possibly-Byzantine sender. Return
  // nullopt for unknown groups (their messages stay buffered).
  using GroupSizeFn = std::function<std::optional<std::size_t>(GroupId)>;
  // Membership check: is `node` a member of `group`? Vouches from
  // non-members are ignored.
  using MembershipFn = std::function<bool(GroupId, NodeId)>;

  GroupMessageReceiver(net::Transport transport, DeliverFn deliver);
  ~GroupMessageReceiver();
  GroupMessageReceiver(const GroupMessageReceiver&) = delete;
  GroupMessageReceiver& operator=(const GroupMessageReceiver&) = delete;

  void set_group_size_fn(GroupSizeFn fn) { group_size_ = std::move(fn); }
  void set_membership_fn(MembershipFn fn) { membership_ = std::move(fn); }
  // Message-lifecycle tracing: a kVouch event is recorded once per
  // delivery (key = id.seq = the broadcast digest prefix, a = voucher
  // count) at the instant majority vouching completes.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // Every pending_ entry expires one epoch of simulated time after its
  // last activity (creation, or delivery), then gets garbage-collected:
  //  * delivered entries stay behind as tombstones so straggler duplicates
  //    are not re-delivered — but not forever;
  //  * undelivered entries (digest-only floods from a Byzantine member,
  //    below-majority content, unknown sender groups) are buffering that
  //    timed out — without an expiry one faulty node minting fresh ids
  //    grows the map without bound.
  // Behind the tombstones sits a compact rolling delivered-id set (two
  // generations rotated every 8 TTLs): a duplicate arriving after its
  // tombstone was collected is still dropped for at least 8 more TTLs —
  // it would otherwise re-deliver and re-gossip, and for broadcasts the
  // id's seq is the payload digest prefix, so the set IS a digest set.
  // The set holds plain 16-byte ids (no payloads), bounded by the delivery
  // rate over two rotation windows.
  void set_tombstone_ttl(DurationMicros ttl) { tombstone_ttl_ = ttl; }

  // Re-evaluates buffered messages (e.g. after learning a group's
  // composition through a neighbor update).
  void reevaluate();

  // Buffered undelivered messages + not-yet-collected tombstones.
  std::size_t pending_count() const { return pending_.size(); }
  // Delivered ids currently remembered by the rolling dedup set (both
  // generations); tests pin its bound under sustained delivery.
  std::size_t delivered_dedup_count() const {
    return delivered_recent_.size() + delivered_prev_.size();
  }

 private:
  struct Pending {
    // digest -> distinct vouching senders
    std::map<crypto::Digest, std::vector<NodeId>> vouches;
    // digest -> (full payload slice, first relay that provided it)
    std::map<crypto::Digest, std::pair<net::Payload, NodeId>> payloads;
    bool delivered = false;
    // GC deadline; pushed forward on delivery so tombstones get a full
    // epoch of dedup from the moment they deliver.
    TimeMicros expires_at = 0;
  };

  void on_message(const net::Message& msg);
  // One group-message frame: either a whole kGroupMsgFull/kGroupMsgDigest
  // message body or one inner frame of a coalesced envelope (`wire` is a
  // zero-copy slice of the envelope in that case).
  void on_frame(NodeId from, bool is_full, const net::Payload& wire);
  void try_deliver(const GroupMessageId& id, Pending& p);
  void gc_tombstones();
  // Rotates the two delivered-id generations every 8 TTLs: an id stays
  // dedup-covered for at least one full rotation period after delivery.
  void maybe_rotate_delivered();
  bool recently_delivered(const GroupMessageId& id) const {
    return delivered_recent_.contains(id) || delivered_prev_.contains(id);
  }

  net::Transport transport_;
  DeliverFn deliver_;
  GroupSizeFn group_size_;
  MembershipFn membership_;
  obs::Tracer* tracer_ = nullptr;
  std::map<GroupMessageId, Pending> pending_;
  DurationMicros tombstone_ttl_ = 60 * kMicrosPerSecond;
  // Candidate GC deadlines in arrival order (an id appears once at
  // creation and once more if delivered — the entry's own expires_at is
  // authoritative); swept lazily on message arrival, O(1) amortized.
  std::deque<std::pair<TimeMicros, GroupMessageId>> gc_queue_;
  // Rolling delivered-id dedup (see set_tombstone_ttl): recent holds ids
  // delivered in the current rotation window, prev the window before.
  std::set<GroupMessageId> delivered_recent_;
  std::set<GroupMessageId> delivered_prev_;
  TimeMicros delivered_rotate_at_ = 0;
};

}  // namespace atum::overlay
