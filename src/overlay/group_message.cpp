#include "overlay/group_message.h"

#include <algorithm>

#include "obs/trace.h"
#include "overlay/gossip.h"

namespace atum::overlay {

namespace {

Bytes encode_full(GroupMessageId id, const net::Payload& payload) {
  ByteWriter w;
  w.u64(id.from_group);
  w.u64(id.seq);
  w.bytes(payload.data(), payload.size());
  return w.take();
}

Bytes encode_digest(GroupMessageId id, const crypto::Digest& d) {
  ByteWriter w;
  w.u64(id.from_group);
  w.u64(id.seq);
  w.raw(d.data(), d.size());
  return w.take();
}

}  // namespace

PreparedGroupMessage::PreparedGroupMessage(const std::vector<NodeId>& senders, NodeId self,
                                           GroupMessageId id, const net::Payload& payload) {
  // Rank of the local node among the (sorted) senders decides full vs digest.
  auto it = std::find(senders.begin(), senders.end(), self);
  std::size_t rank = static_cast<std::size_t>(it - senders.begin());
  std::size_t full_count = senders.size() / 2 + 1;  // any majority has a correct node
  bool send_full = rank < full_count;

  // Freeze the encoded frame once; every recipient shares the same buffer.
  // payload.digest() memoizes on the payload's control block: a gossip
  // relay hashing the frame it just received (and whose receiver already
  // hashed it to vouch) reuses that digest instead of recomputing.
  wire_ = net::Payload(send_full ? encode_full(id, payload)
                                 : encode_digest(id, payload.digest()));
  type_ = send_full ? net::MsgType::kGroupMsgFull : net::MsgType::kGroupMsgDigest;
}

void PreparedGroupMessage::send_to(net::Transport& transport,
                                   const std::vector<NodeId>& destination, Rng& rng) const {
  std::vector<NodeId> order = destination;
  rng.shuffle(order);
  for (NodeId d : order) {
    transport.send(d, type_, wire_);
  }
}

void PreparedGroupMessage::send_to(SendCoalescer& coalescer,
                                   const std::vector<NodeId>& destination) const {
  for (NodeId d : destination) {
    coalescer.enqueue(d, type_, wire_);
  }
}

void send_group_message(net::Transport& transport, const std::vector<NodeId>& senders,
                        GroupMessageId id, const std::vector<NodeId>& destination,
                        const net::Payload& payload, Rng& rng) {
  PreparedGroupMessage(senders, transport.self(), id, payload).send_to(transport, destination, rng);
}

GroupMessageReceiver::GroupMessageReceiver(net::Transport transport, DeliverFn deliver)
    : transport_(std::move(transport)), deliver_(std::move(deliver)) {
  transport_.listen({net::MsgType::kGroupMsgFull, net::MsgType::kGroupMsgDigest,
                     net::MsgType::kGroupMsgEnvelope},
                    [this](const net::Message& m) { on_message(m); });
}

GroupMessageReceiver::~GroupMessageReceiver() { transport_.close(); }

void GroupMessageReceiver::gc_tombstones() {
  const TimeMicros now = transport_.simulator().now();
  while (!gc_queue_.empty() && gc_queue_.front().first <= now) {
    auto it = pending_.find(gc_queue_.front().second);
    // The entry's own deadline is authoritative: delivery pushes it past
    // the creation-time queue entry, so a freshly delivered tombstone is
    // skipped here and collected by its second queue entry.
    if (it != pending_.end() && it->second.expires_at <= now) pending_.erase(it);
    gc_queue_.pop_front();
  }
}

void GroupMessageReceiver::maybe_rotate_delivered() {
  const TimeMicros now = transport_.simulator().now();
  if (delivered_rotate_at_ == 0) {
    delivered_rotate_at_ = now + 8 * tombstone_ttl_;
    return;
  }
  if (now < delivered_rotate_at_) return;
  delivered_prev_ = std::move(delivered_recent_);
  delivered_recent_.clear();
  delivered_rotate_at_ = now + 8 * tombstone_ttl_;
}

void GroupMessageReceiver::on_message(const net::Message& msg) {
  gc_tombstones();
  maybe_rotate_delivered();

  if (msg.type == net::MsgType::kGroupMsgEnvelope) {
    // Coalesced envelope: decode it fully before processing any inner
    // frame — a malformed tail means the sender is faulty and the whole
    // envelope is suspect. Inner frames are zero-copy slices of the
    // envelope payload; only full and digest frames may nest (envelopes
    // do not recurse).
    std::vector<std::pair<bool, net::Payload>> frames;
    try {
      ByteReader r(msg.payload);
      std::uint64_t count = r.varint();
      if (count == 0 || count > SendCoalescer::kMaxFramesPerEnvelope) return;
      frames.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        auto inner = static_cast<net::MsgType>(r.u16());
        if (inner != net::MsgType::kGroupMsgFull && inner != net::MsgType::kGroupMsgDigest) {
          return;
        }
        frames.emplace_back(inner == net::MsgType::kGroupMsgFull,
                            msg.payload.slice(r.bytes_view()));
      }
      r.expect_done();
    } catch (const SerdeError&) {
      return;  // malformed: faulty sender
    }
    for (const auto& [is_full, frame] : frames) on_frame(msg.from, is_full, frame);
    return;
  }

  on_frame(msg.from, msg.type == net::MsgType::kGroupMsgFull, msg.payload);
}

void GroupMessageReceiver::on_frame(NodeId from, bool is_full, const net::Payload& wire) {
  GroupMessageId id;
  crypto::Digest digest;
  net::Payload payload;
  try {
    ByteReader r(wire);
    id.from_group = r.u64();
    id.seq = r.u64();
    if (is_full) {
      // Zero-copy: the body is a refcounted slice of the arriving frame.
      // The vouch digest is memoized on that frame's control block, so a
      // frame fanned out to many receivers is hashed once system-wide and
      // a node relaying it onward reuses the digest too.
      payload = wire.slice(r.bytes_view());
      digest = payload.digest();
    } else {
      r.raw(digest.data(), digest.size());
    }
    r.expect_done();
  } catch (const SerdeError&) {
    return;  // malformed: faulty sender
  }

  if (membership_ && !membership_(id.from_group, from)) return;
  // Post-TTL duplicate: the tombstone is gone but the rolling delivered-id
  // set still remembers the delivery — drop it before it can mint a fresh
  // Pending entry and re-deliver.
  if (recently_delivered(id)) return;

  Pending& p = pending_[id];
  if (p.expires_at == 0) {
    // New entry: even if it never delivers (digest-only flood, content
    // short of majority, unknown sender group) it expires after an epoch.
    p.expires_at = transport_.simulator().now() + tombstone_ttl_;
    gc_queue_.emplace_back(p.expires_at, id);
  }
  if (p.delivered) return;

  auto& vouchers = p.vouches[digest];
  if (std::find(vouchers.begin(), vouchers.end(), from) == vouchers.end()) {
    vouchers.push_back(from);
  }
  if (is_full && !p.payloads.contains(digest)) {
    p.payloads[digest] = {std::move(payload), from};
  }
  try_deliver(id, p);
}

void GroupMessageReceiver::try_deliver(const GroupMessageId& id, Pending& p) {
  if (p.delivered) return;
  std::optional<std::size_t> size;
  if (group_size_) size = group_size_(id.from_group);
  if (!size) return;  // unknown sender group: keep buffering
  std::size_t majority = *size / 2 + 1;

  for (const auto& [digest, vouchers] : p.vouches) {
    if (vouchers.size() < majority) continue;
    auto pit = p.payloads.find(digest);
    if (pit == p.payloads.end()) continue;  // majority but no full copy yet
    p.delivered = true;
    // Keep the tombstone (for a full epoch from now) so duplicates are not
    // re-delivered; drop the buffered data now.
    net::Payload payload = std::move(pit->second.first);
    NodeId relay = pit->second.second;
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->record(transport_.simulator().now(), transport_.self(), obs::TracePoint::kVouch,
                      id.seq, vouchers.size(), id.from_group);
    }
    p.vouches.clear();
    p.payloads.clear();
    p.expires_at = transport_.simulator().now() + tombstone_ttl_;
    gc_queue_.emplace_back(p.expires_at, id);
    delivered_recent_.insert(id);  // outlives the tombstone (rolling dedup)
    deliver_(id, relay, std::move(payload));
    return;
  }
}

void GroupMessageReceiver::reevaluate() {
  for (auto& [id, p] : pending_) try_deliver(id, p);
}

}  // namespace atum::overlay
