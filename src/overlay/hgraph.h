// H-graph overlay [51]: a multigraph over vgroups composed of `hc` random
// Hamiltonian cycles (§3.2). Constant degree (2 per cycle), logarithmic
// diameter w.h.p., and a decentralized random structure suitable for
// random-walk sampling.
//
// This class is the overlay bookkeeping shared by the vgroup-level
// simulator and (as ground truth) by tests of the node-level protocols.
// Vertices are vgroup ids.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace atum::overlay {

class HGraph {
 public:
  explicit HGraph(std::size_t cycles);

  std::size_t cycle_count() const { return cycles_.size(); }
  std::size_t size() const { return cycles_.empty() ? 0 : cycles_[0].size(); }
  bool contains(GroupId g) const;
  std::vector<GroupId> vertices() const;

  // Inserts the first vertex; it is its own neighbor on every cycle
  // (bootstrap, §3.3.1).
  void add_first(GroupId g);

  // Inserts v after `anchor` on cycle `c` (the anchor is discovered by a
  // random walk during a split, §3.3.2).
  void insert_after(std::size_t cycle, GroupId anchor, GroupId v);

  // Inserts v at a uniformly random position on every cycle.
  void insert_random(GroupId v, Rng& rng);

  // Removes v; its predecessor and successor on each cycle become
  // neighbors, closing the gap (§3.3.3).
  void remove(GroupId v);

  GroupId successor(std::size_t cycle, GroupId v) const;
  GroupId predecessor(std::size_t cycle, GroupId v) const;

  // All distinct neighbors of v over all cycles (excluding v itself unless
  // the graph is a single vertex).
  std::vector<GroupId> neighbors(GroupId v) const;

  // Neighbors as (cycle, direction) incident links; a walk step picks one
  // uniformly. direction: 0 = successor, 1 = predecessor.
  struct Link {
    std::size_t cycle;
    int direction;
    GroupId target;
  };
  std::vector<Link> links(GroupId v) const;
  GroupId random_neighbor(GroupId v, Rng& rng) const;

  // Structural invariant: every cycle visits every vertex exactly once.
  bool validate() const;

 private:
  struct Ring {
    std::unordered_map<GroupId, GroupId> next;
    std::unordered_map<GroupId, GroupId> prev;
    std::size_t size() const { return next.size(); }
  };
  std::vector<Ring> cycles_;
};

}  // namespace atum::overlay
