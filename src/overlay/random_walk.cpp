#include "overlay/random_walk.h"

#include <stdexcept>

#include "common/stats.h"
#include "overlay/hgraph.h"

namespace atum::overlay {

std::size_t WalkState::pick_link(std::size_t link_count) const {
  if (link_count == 0) throw std::logic_error("WalkState::pick_link: no links");
  if (step >= randomness.size()) throw std::logic_error("WalkState::pick_link: walk exhausted");
  return static_cast<std::size_t>(randomness[step] % link_count);
}

Bytes WalkState::encode() const {
  ByteWriter w;
  w.u64(id.origin);
  w.u64(id.nonce);
  w.u8(static_cast<std::uint8_t>(purpose));
  w.u32(rwl);
  w.u32(step);
  w.vec(randomness, [](ByteWriter& bw, std::uint64_t v) { bw.u64(v); });
  w.bytes(payload);
  w.vec(path, [](ByteWriter& bw, GroupId g) { bw.u64(g); });
  return w.take();
}

WalkState WalkState::decode(const Bytes& wire) {
  ByteReader r(wire);
  WalkState s;
  s.id.origin = r.u64();
  s.id.nonce = r.u64();
  s.purpose = static_cast<WalkPurpose>(r.u8());
  s.rwl = r.u32();
  s.step = r.u32();
  if (s.rwl > 1024) throw SerdeError("walk length implausible");
  s.randomness = r.vec<std::uint64_t>([](ByteReader& br) { return br.u64(); });
  s.payload = r.bytes();
  s.path = r.vec<GroupId>([](ByteReader& br) { return br.u64(); });
  r.expect_done();
  if (s.randomness.size() != s.rwl) throw SerdeError("walk randomness size mismatch");
  if (s.step > s.rwl) throw SerdeError("walk step out of range");
  return s;
}

WalkState WalkState::start(WalkId id, WalkPurpose purpose, std::uint32_t rwl, Bytes payload,
                           Rng& rng) {
  WalkState s;
  s.id = id;
  s.purpose = purpose;
  s.rwl = rwl;
  s.payload = std::move(payload);
  s.randomness.reserve(rwl);
  for (std::uint32_t i = 0; i < rwl; ++i) s.randomness.push_back(rng.next_u64());
  s.path.push_back(id.origin);
  return s;
}

// --------------------------------------------------------------------------
// Certificates
// --------------------------------------------------------------------------

Bytes hop_cert_statement(const WalkId& id, std::uint32_t step, GroupId group,
                         GroupId next_group) {
  ByteWriter w;
  w.str("atum-walk-hop");
  w.u64(id.origin);
  w.u64(id.nonce);
  w.u32(step);
  w.u64(group);
  w.u64(next_group);
  return w.take();
}

crypto::Signature sign_hop(const WalkId& id, std::uint32_t step, GroupId group,
                           GroupId next_group, const crypto::SigningKey& key) {
  return key.sign(hop_cert_statement(id, step, group, next_group));
}

Bytes CertChain::encode() const {
  ByteWriter w;
  w.varint(hops.size());
  for (const HopCert& h : hops) {
    w.u64(h.group);
    w.u64(h.next_group);
    w.u32(h.step);
    w.varint(h.sigs.size());
    for (const auto& [node, sig] : h.sigs) {
      w.u64(node);
      w.raw(sig.data(), sig.size());
    }
  }
  return w.take();
}

CertChain CertChain::decode(const Bytes& wire) {
  ByteReader r(wire);
  CertChain c;
  std::uint64_t n = r.varint();
  if (n > 1024) throw SerdeError("certificate chain implausibly long");
  for (std::uint64_t i = 0; i < n; ++i) {
    HopCert h;
    h.group = r.u64();
    h.next_group = r.u64();
    h.step = r.u32();
    std::uint64_t m = r.varint();
    if (m > 4096) throw SerdeError("hop certificate implausibly large");
    for (std::uint64_t j = 0; j < m; ++j) {
      NodeId node = r.u64();
      crypto::Signature sig;
      r.raw(sig.data(), sig.size());
      h.sigs.emplace_back(node, sig);
    }
    c.hops.push_back(std::move(h));
  }
  r.expect_done();
  return c;
}

std::optional<GroupId> CertChain::verify(
    const WalkId& id, GroupId origin,
    const std::function<std::optional<std::vector<NodeId>>(GroupId)>& members_of,
    crypto::KeyStore& keys) const {
  if (hops.empty()) return std::nullopt;
  GroupId expected = origin;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const HopCert& h = hops[i];
    if (h.group != expected) return std::nullopt;
    if (h.step != i) return std::nullopt;
    auto members = members_of(h.group);
    if (!members) return std::nullopt;

    Bytes statement = hop_cert_statement(id, h.step, h.group, h.next_group);
    std::size_t valid = 0;
    std::vector<NodeId> seen;
    for (const auto& [node, sig] : h.sigs) {
      if (std::find(seen.begin(), seen.end(), node) != seen.end()) continue;
      if (std::find(members->begin(), members->end(), node) == members->end()) continue;
      if (!keys.verify(node, statement, sig)) continue;
      seen.push_back(node);
      ++valid;
    }
    if (valid < members->size() / 2 + 1) return std::nullopt;
    expected = h.next_group;
  }
  return expected;
}

std::size_t CertChain::verification_count() const {
  std::size_t n = 0;
  for (const HopCert& h : hops) n += h.sigs.size();
  return n;
}

// --------------------------------------------------------------------------
// Uniformity simulation (Figure 4)
// --------------------------------------------------------------------------

std::vector<std::uint64_t> simulate_walk_endpoints(std::size_t num_groups, std::size_t hc,
                                                   std::size_t rwl, std::size_t walks, Rng& rng) {
  if (num_groups == 0) throw std::invalid_argument("simulate_walk_endpoints: empty graph");
  HGraph graph(hc);
  for (GroupId g = 0; g < num_groups; ++g) {
    if (g == 0) {
      graph.add_first(0);
    } else {
      graph.insert_random(g, rng);
    }
  }
  // Flatten the adjacency once: the Figure 4 sweep runs millions of steps.
  const std::size_t degree = 2 * hc;
  std::vector<GroupId> adj(num_groups * degree);
  for (GroupId g = 0; g < num_groups; ++g) {
    auto links = graph.links(g);
    for (std::size_t i = 0; i < degree; ++i) {
      adj[static_cast<std::size_t>(g) * degree + i] = links[i].target;
    }
  }
  std::vector<std::uint64_t> counts(num_groups, 0);
  for (std::size_t w = 0; w < walks; ++w) {
    GroupId cur = 0;  // fixed origin: the joining vgroup's position
    for (std::size_t s = 0; s < rwl; ++s) {
      cur = adj[static_cast<std::size_t>(cur) * degree +
                static_cast<std::size_t>(rng.next_below(degree))];
    }
    ++counts[static_cast<std::size_t>(cur)];
  }
  return counts;
}

std::size_t optimal_walk_length(std::size_t num_groups, std::size_t hc, double confidence,
                                std::size_t walks_per_trial, std::size_t max_rwl, Rng& rng) {
  for (std::size_t rwl = 1; rwl <= max_rwl; ++rwl) {
    auto counts = simulate_walk_endpoints(num_groups, hc, rwl, walks_per_trial, rng);
    if (passes_uniformity_test(counts, confidence)) return rwl;
  }
  return max_rwl;
}

}  // namespace atum::overlay
