#include "overlay/hgraph.h"

#include <algorithm>
#include <stdexcept>

namespace atum::overlay {

HGraph::HGraph(std::size_t cycles) {
  if (cycles == 0) throw std::invalid_argument("HGraph: need at least one cycle");
  cycles_.resize(cycles);
}

bool HGraph::contains(GroupId g) const { return cycles_[0].next.contains(g); }

std::vector<GroupId> HGraph::vertices() const {
  std::vector<GroupId> out;
  out.reserve(size());
  // Sorted: callers index this vector with RNG draws (insert_random anchor
  // picks, ClusterSim's random group choices), so hash-table iteration
  // order would leak libstdc++'s bucket layout into protocol decisions —
  // deterministic on one stdlib, divergent across them.
  // lint: unordered-iter-ok(output is sorted below)
  for (const auto& [g, _] : cycles_[0].next) out.push_back(g);
  std::sort(out.begin(), out.end());
  return out;
}

void HGraph::add_first(GroupId g) {
  if (size() != 0) throw std::logic_error("HGraph::add_first on non-empty graph");
  for (Ring& ring : cycles_) {
    ring.next[g] = g;
    ring.prev[g] = g;
  }
}

void HGraph::insert_after(std::size_t cycle, GroupId anchor, GroupId v) {
  Ring& ring = cycles_.at(cycle);
  auto it = ring.next.find(anchor);
  if (it == ring.next.end()) throw std::invalid_argument("HGraph::insert_after: unknown anchor");
  if (ring.next.contains(v)) throw std::invalid_argument("HGraph::insert_after: duplicate vertex");
  GroupId after = it->second;
  ring.next[anchor] = v;
  ring.next[v] = after;
  ring.prev[after] = v;
  ring.prev[v] = anchor;
}

void HGraph::insert_random(GroupId v, Rng& rng) {
  if (size() == 0) {
    add_first(v);
    return;
  }
  // Independent anchor per cycle keeps the cycles independently random,
  // which the mixing properties of the H-graph rely on.
  std::vector<GroupId> verts = vertices();
  for (std::size_t c = 0; c < cycles_.size(); ++c) {
    GroupId anchor = verts[static_cast<std::size_t>(rng.next_below(verts.size()))];
    insert_after(c, anchor, v);
  }
}

void HGraph::remove(GroupId v) {
  if (!contains(v)) throw std::invalid_argument("HGraph::remove: unknown vertex");
  for (Ring& ring : cycles_) {
    GroupId p = ring.prev[v];
    GroupId n = ring.next[v];
    ring.next.erase(v);
    ring.prev.erase(v);
    if (p != v) {
      ring.next[p] = n;
      ring.prev[n] = p;
    }
  }
}

GroupId HGraph::successor(std::size_t cycle, GroupId v) const {
  const Ring& ring = cycles_.at(cycle);
  auto it = ring.next.find(v);
  if (it == ring.next.end()) throw std::invalid_argument("HGraph::successor: unknown vertex");
  return it->second;
}

GroupId HGraph::predecessor(std::size_t cycle, GroupId v) const {
  const Ring& ring = cycles_.at(cycle);
  auto it = ring.prev.find(v);
  if (it == ring.prev.end()) throw std::invalid_argument("HGraph::predecessor: unknown vertex");
  return it->second;
}

std::vector<GroupId> HGraph::neighbors(GroupId v) const {
  std::vector<GroupId> out;
  for (std::size_t c = 0; c < cycles_.size(); ++c) {
    GroupId s = successor(c, v);
    GroupId p = predecessor(c, v);
    for (GroupId cand : {s, p}) {
      if (cand == v) continue;
      bool seen = false;
      for (GroupId e : out) seen |= (e == cand);
      if (!seen) out.push_back(cand);
    }
  }
  return out;
}

std::vector<HGraph::Link> HGraph::links(GroupId v) const {
  std::vector<Link> out;
  out.reserve(cycles_.size() * 2);
  for (std::size_t c = 0; c < cycles_.size(); ++c) {
    out.push_back(Link{c, 0, successor(c, v)});
    out.push_back(Link{c, 1, predecessor(c, v)});
  }
  return out;
}

GroupId HGraph::random_neighbor(GroupId v, Rng& rng) const {
  auto ls = links(v);
  return ls[static_cast<std::size_t>(rng.next_below(ls.size()))].target;
}

bool HGraph::validate() const {
  std::size_t n = size();
  for (const Ring& ring : cycles_) {
    if (ring.size() != n || ring.prev.size() != n) return false;
    if (n == 0) continue;
    // Walk the ring: must return to start after exactly n hops. Any entry
    // works as the start of a full-cycle walk, so hash order is harmless.
    // lint: unordered-iter-ok(arbitrary start of a full-cycle validity walk)
    GroupId start = ring.next.begin()->first;
    GroupId cur = start;
    for (std::size_t i = 0; i < n; ++i) {
      auto it = ring.next.find(cur);
      if (it == ring.next.end()) return false;
      if (ring.prev.at(it->second) != cur) return false;  // back-pointer broken
      cur = it->second;
    }
    if (cur != start) return false;
  }
  return true;
}

}  // namespace atum::overlay
