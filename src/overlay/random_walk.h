// Random walks over the H-graph (§3.2, §5.1).
//
// A walk of length rwl hops vgroup-to-vgroup along uniformly chosen
// incident links and selects the vgroup it stops at — the uniform-sampling
// primitive behind shuffling, join placement, and split anchoring.
//
// Practicalities from §5.1 implemented here:
//  * Bulk RNG — all rwl random numbers are generated when the walk starts
//    and travel with it. Pre-computed per-vgroup pools are exploitable (a
//    Byzantine node can drain the pool to bias later draws), so numbers are
//    only minted once their purpose is fixed.
//  * Identity establishment — either a backward phase (the reply retraces
//    the walk's path) or certificate chains (each hop appends a signed
//    statement naming the next group); both are provided.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/serde.h"
#include "common/types.h"
#include "crypto/keys.h"

namespace atum::overlay {

struct WalkId {
  GroupId origin = kInvalidGroup;
  std::uint64_t nonce = 0;
  friend auto operator<=>(const WalkId&, const WalkId&) = default;
};

// What the walk was started for; interpreted by the group layer when the
// walk completes.
enum class WalkPurpose : std::uint8_t {
  kJoinPlacement = 0,   // find the vgroup that accommodates a joining node
  kShuffleExchange = 1, // find an exchange partner for one shuffled node
  kSplitAnchor = 2,     // find the insertion point for a new vgroup
  kSample = 3,          // generic sampling (tests, applications)
};

struct WalkState {
  WalkId id;
  WalkPurpose purpose = WalkPurpose::kSample;
  std::uint32_t rwl = 0;       // total hops to take
  std::uint32_t step = 0;      // hops taken
  std::vector<std::uint64_t> randomness;  // bulk RNG, one draw per hop
  Bytes payload;               // purpose-specific data (e.g. joiner identity)
  std::vector<GroupId> path;   // visited groups, origin first (backward phase)

  bool done() const { return step >= rwl; }
  // Picks the link index for the current hop out of `link_count` choices.
  std::size_t pick_link(std::size_t link_count) const;

  Bytes encode() const;
  static WalkState decode(const Bytes& wire);

  // Mints a fresh walk with bulk randomness drawn from `rng`.
  static WalkState start(WalkId id, WalkPurpose purpose, std::uint32_t rwl, Bytes payload,
                         Rng& rng);
};

// --------------------------------------------------------------------------
// Certificate chains (§5.1 alternative to the backward phase)
// --------------------------------------------------------------------------

// One hop's certificate: a majority of `group`'s members sign the statement
// "walk `id`, step `step`: we forwarded to `next_group`".
struct HopCert {
  GroupId group = kInvalidGroup;
  GroupId next_group = kInvalidGroup;
  std::uint32_t step = 0;
  std::vector<std::pair<NodeId, crypto::Signature>> sigs;
};

// The statement bytes each member signs.
Bytes hop_cert_statement(const WalkId& id, std::uint32_t step, GroupId group, GroupId next_group);

// Builds the local node's signature for a hop certificate.
crypto::Signature sign_hop(const WalkId& id, std::uint32_t step, GroupId group,
                           GroupId next_group, const crypto::SigningKey& key);

struct CertChain {
  std::vector<HopCert> hops;

  Bytes encode() const;
  static CertChain decode(const Bytes& wire);

  // Verifies the chain: hop 0 starts at `origin`, each hop's next_group
  // matches the following hop's group, and each certificate carries valid
  // signatures from a majority of that group's membership (resolved via
  // `members_of`). Returns the selected (final) group on success.
  std::optional<GroupId> verify(
      const WalkId& id, GroupId origin,
      const std::function<std::optional<std::vector<NodeId>>(GroupId)>& members_of,
      crypto::KeyStore& keys) const;

  // Cost model used by latency accounting: signature verifications needed.
  std::size_t verification_count() const;
};

// --------------------------------------------------------------------------
// Uniformity simulation (Figure 4)
// --------------------------------------------------------------------------

class HGraph;

// Runs `walks` walks of length rwl from a fixed origin vertex on a random
// H-graph with `num_groups` vertices and `hc` cycles; returns how often
// each vertex was selected.
std::vector<std::uint64_t> simulate_walk_endpoints(std::size_t num_groups, std::size_t hc,
                                                   std::size_t rwl, std::size_t walks, Rng& rng);

// The Figure 4 guideline: smallest rwl whose endpoint distribution is
// indistinguishable from uniform by a chi-square test at `confidence`.
// Returns max_rwl if none passes.
std::size_t optimal_walk_length(std::size_t num_groups, std::size_t hc, double confidence,
                                std::size_t walks_per_trial, std::size_t max_rwl, Rng& rng);

}  // namespace atum::overlay
