#include "crypto/hmac.h"

#include <cstring>

namespace atum::crypto {

Digest hmac_sha256(const Bytes& key, const std::uint8_t* msg, std::size_t len) {
  constexpr std::size_t kBlock = 64;
  std::uint8_t key_block[kBlock];
  std::memset(key_block, 0, kBlock);

  if (key.size() > kBlock) {
    Digest kd = sha256(key);
    std::memcpy(key_block, kd.data(), kd.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }

  std::uint8_t ipad[kBlock], opad[kBlock];
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad, kBlock);
  inner.update(msg, len);
  Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad, kBlock);
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finish();
}

Digest hmac_sha256(const Bytes& key, const Bytes& message) {
  return hmac_sha256(key, message.data(), message.size());
}

}  // namespace atum::crypto
