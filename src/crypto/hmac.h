// HMAC-SHA256 (RFC 2104). The MAC primitive behind inter-node message
// authentication and the simulated signature scheme in keys.h.
#pragma once

#include "common/serde.h"
#include "crypto/sha256.h"

namespace atum::crypto {

Digest hmac_sha256(const Bytes& key, const Bytes& message);
Digest hmac_sha256(const Bytes& key, const std::uint8_t* msg, std::size_t len);

}  // namespace atum::crypto
