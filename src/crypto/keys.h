// Node signing identities.
//
// The paper assumes public-key signatures and MACs with a computationally
// bounded adversary (§2). We implement the same *interface* a PKI-backed
// deployment would use, with HMAC-SHA256 tags as the signature algorithm:
// each node holds a private secret; verifiers resolve a node's key through
// the KeyStore, which models the PKI / key-distribution layer. Inside the
// simulation this is unforgeable (only the holder of the SigningKey object
// can produce a valid tag), which is exactly the property the BFT protocols
// rely on. Swapping in Ed25519 would change only this file.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/serde.h"
#include "common/types.h"
#include "crypto/sha256.h"

namespace atum::crypto {

using Signature = Digest;

class SigningKey {
 public:
  // Derives the node's secret deterministically from (seed, node); the seed
  // plays the role of the deployment's key-generation entropy.
  SigningKey(NodeId node, std::uint64_t seed);

  NodeId node() const { return node_; }
  Signature sign(const Bytes& message) const;
  Signature sign(const std::uint8_t* msg, std::size_t len) const;

 private:
  friend class KeyStore;
  NodeId node_;
  Bytes secret_;
};

// Registry mapping node ids to verification material. One KeyStore instance
// per simulated deployment; it stands in for certificate distribution.
class KeyStore {
 public:
  explicit KeyStore(std::uint64_t seed = 0xa70a70ULL) : seed_(seed) {}

  // Mints (or returns) the signing key for a node. In a real deployment the
  // private half would never leave the node; tests use this to sign as any
  // party, including Byzantine ones.
  const SigningKey& key_of(NodeId node);

  bool verify(NodeId signer, const Bytes& message, const Signature& sig);
  bool verify(NodeId signer, const std::uint8_t* msg, std::size_t len, const Signature& sig);

  // Models the CPU cost of one signature verification; used by latency
  // accounting for certificate chains (§5.1).
  static constexpr DurationMicros kVerifyCost = 150;
  static constexpr DurationMicros kSignCost = 80;

 private:
  std::uint64_t seed_;
  std::unordered_map<NodeId, std::unique_ptr<SigningKey>> keys_;
};

}  // namespace atum::crypto
