#include "crypto/keys.h"

#include "crypto/hmac.h"

namespace atum::crypto {

SigningKey::SigningKey(NodeId node, std::uint64_t seed) : node_(node) {
  ByteWriter w;
  w.str("atum-key-derivation");
  w.u64(seed);
  w.u64(node);
  Digest d = sha256(w.data());
  secret_.assign(d.begin(), d.end());
}

Signature SigningKey::sign(const Bytes& message) const {
  return hmac_sha256(secret_, message);
}

Signature SigningKey::sign(const std::uint8_t* msg, std::size_t len) const {
  return hmac_sha256(secret_, msg, len);
}

const SigningKey& KeyStore::key_of(NodeId node) {
  auto it = keys_.find(node);
  if (it == keys_.end()) {
    it = keys_.emplace(node, std::make_unique<SigningKey>(node, seed_)).first;
  }
  return *it->second;
}

bool KeyStore::verify(NodeId signer, const Bytes& message, const Signature& sig) {
  return key_of(signer).sign(message) == sig;
}

bool KeyStore::verify(NodeId signer, const std::uint8_t* msg, std::size_t len,
                      const Signature& sig) {
  return key_of(signer).sign(msg, len) == sig;
}

}  // namespace atum::crypto
