// SHA-256 (FIPS 180-4), implemented from scratch. Used for message digests
// (§5.1 digest optimization), AShare chunk integrity checks (§4.2.2), and
// as the compression core of HMAC signatures.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/serde.h"

namespace atum::crypto {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();
  void update(const std::uint8_t* data, std::size_t len);
  void update(const Bytes& data) { update(data.data(), data.size()); }
  void update(std::string_view s) {
    update(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }
  // Finalizes and returns the digest. The object must not be reused after.
  Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

Digest sha256(const Bytes& data);
Digest sha256(const std::uint8_t* data, std::size_t len);
Digest sha256(std::string_view data);

std::string to_hex(const Digest& d);

// Stable 64-bit fingerprint of a digest, for use as a map key / message id.
std::uint64_t digest_prefix64(const Digest& d);

}  // namespace atum::crypto
