// SHA-256 (FIPS 180-4), implemented from scratch. Used for message digests
// (§5.1 digest optimization), AShare chunk integrity checks (§4.2.2), and
// as the compression core of HMAC signatures.
//
// Hashing is the dominant per-message CPU cost on the group-message vouch
// path, so callers holding a net::Payload should prefer Payload::digest()
// over the free sha256() functions: it memoizes the digest on the frame's
// shared control block, making the at-most-one-hash-per-frame invariant
// hold across every receiver, relay, and voucher that shares the buffer.
// sha256_digest_count() below exists to let tests pin that invariant.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/serde.h"

namespace atum::crypto {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();
  void update(const std::uint8_t* data, std::size_t len);
  void update(const Bytes& data) { update(data.data(), data.size()); }
  void update(std::string_view s) {
    // Audited: char -> unsigned char pointer for a read-only pass; both are
    // byte types, explicitly exempt from strict aliasing ([basic.lval]/11).
    // lint: reinterpret-cast-ok(char->uint8_t read, aliasing-exempt byte types)
    update(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }
  // Finalizes and returns the digest. The object must not be reused after.
  Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

Digest sha256(const Bytes& data);
Digest sha256(const std::uint8_t* data, std::size_t len);
Digest sha256(std::string_view data);

// Instrumentation: how many SHA-256 digests this process has computed
// (every Sha256::finish() counts one; HMAC therefore counts two per tag).
// Tests snapshot it around an operation to prove a cache hit — e.g. that
// vouching for the same frame at N receivers hashed exactly once. Not a
// performance counter to branch on in protocol code.
std::uint64_t sha256_digest_count();

std::string to_hex(const Digest& d);

// Stable 64-bit fingerprint of a digest, for use as a map key / message id.
std::uint64_t digest_prefix64(const Digest& d);

}  // namespace atum::crypto
