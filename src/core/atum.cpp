#include "core/atum.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"
#include "overlay/hgraph.h"

namespace atum::core {

namespace {

// Group-message payload envelope kinds.
constexpr std::uint8_t kGmGossip = 1;
constexpr std::uint8_t kGmWalk = 2;
constexpr std::uint8_t kGmNeighborUpdate = 3;

// The decided BroadcastOp encoding (tag, origin, seq, payload) is byte-
// identical to the kGmGossip frame, so a broadcast is relayed across the
// overlay verbatim — no relaying node ever re-encodes the gossip frame.
static_assert(kGmGossip == static_cast<std::uint8_t>(group::OpKind::kBroadcast),
              "gossip frame must alias the broadcast op encoding");

// Direct-message phases.
constexpr std::uint8_t kJoinPhaseContact = 1;  // joiner -> contact node
constexpr std::uint8_t kJoinPhaseAddMe = 2;    // joiner -> contact vgroup
constexpr std::uint8_t kReplyPhaseContact = 1; // contact -> joiner (group view)
constexpr std::uint8_t kReplyPhaseState = 2;   // admitting group -> joiner

std::uint64_t join_nonce(NodeId joiner, std::uint64_t attempt) {
  ByteWriter w;
  w.str("atum-join");
  w.u64(joiner);
  w.u64(attempt);
  return crypto::digest_prefix64(crypto::sha256(w.data()));
}

}  // namespace

// ===========================================================================
// AtumSystem
// ===========================================================================

AtumSystem::AtumSystem(Params params, net::NetworkConfig net_config, std::uint64_t seed)
    : params_(params), net_(sim_, std::move(net_config), seed ^ 0x5a5aULL), keys_(seed),
      rng_(seed) {
  params_.validate();
  // One observability surface for the whole deployment (ISSUE 9): the
  // pre-existing ad-hoc counters stay on their hot paths and the registry
  // polls them as probes at sample() time. Sums over nodes_ are
  // order-independent, so the unordered map is safe to fold here.
  net_.bind_metrics(registry_);
  registry_.probe("sim.live_events", {}, [this] { return sim_.live_events(); });
  registry_.probe("sim.slot_count", {},
                  [this] { return static_cast<std::uint64_t>(sim_.slot_count()); });
  registry_.probe("sim.executed_events", {}, [this] { return sim_.executed_events(); });
  registry_.probe("crypto.sha256_digests", {}, [] { return crypto::sha256_digest_count(); });
  registry_.probe("atum.nodes_joined", {}, [this] {
    std::uint64_t n = 0;
    // lint: unordered-iter-ok(sum; order-independent)
    for (const auto& [id, node] : nodes_) n += node->joined() ? 1 : 0;
    return n;
  });
  registry_.probe("atum.broadcasts_delivered", {}, [this] {
    std::uint64_t n = 0;
    // lint: unordered-iter-ok(sum; order-independent)
    for (const auto& [id, node] : nodes_) n += node->delivered_count();
    return n;
  });
  registry_.probe("atum.coalescer.frames_enqueued", {}, [this] {
    std::uint64_t n = 0;
    // lint: unordered-iter-ok(sum; order-independent)
    for (const auto& [id, node] : nodes_) n += node->coalescer().frames_enqueued();
    return n;
  });
  registry_.probe("atum.coalescer.messages_sent", {}, [this] {
    std::uint64_t n = 0;
    // lint: unordered-iter-ok(sum; order-independent)
    for (const auto& [id, node] : nodes_) n += node->coalescer().messages_sent();
    return n;
  });
  registry_.probe("atum.coalescer.envelopes_sent", {}, [this] {
    std::uint64_t n = 0;
    // lint: unordered-iter-ok(sum; order-independent)
    for (const auto& [id, node] : nodes_) n += node->coalescer().envelopes_sent();
    return n;
  });
  registry_.probe("atum.groups", {},
                  [this] { return static_cast<std::uint64_t>(group_map().size()); });
}

AtumSystem::~AtumSystem() {
  // lint: unordered-iter-ok(teardown; stop() order is unobservable)
  for (auto& [id, node] : nodes_) node->stop();
}

AtumNode& AtumSystem::add_node(NodeId id, NodeBehavior behavior) {
  auto [it, inserted] = nodes_.try_emplace(id, nullptr);
  if (inserted) {
    it->second = std::make_unique<AtumNode>(*this, id, behavior);
  }
  return *it->second;
}

AtumNode& AtumSystem::node(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) throw std::invalid_argument("AtumSystem: unknown node");
  return *it->second;
}

void AtumSystem::remove_node(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  it->second->stop();
  nodes_.erase(it);
}

std::vector<NodeId> AtumSystem::node_ids() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  // lint: unordered-iter-ok(output is sorted below)
  for (const auto& [id, _] : nodes_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

void AtumSystem::deploy(const std::vector<NodeId>& ids) {
  if (ids.empty()) throw std::invalid_argument("AtumSystem::deploy: no nodes");
  std::size_t target = std::clamp<std::size_t>((params_.gmin + params_.gmax) / 2,
                                               std::size_t{1}, params_.gmax);
  // Partition into vgroups.
  std::vector<std::vector<NodeId>> groups;
  for (std::size_t i = 0; i < ids.size(); i += target) {
    std::size_t end = std::min(i + target, ids.size());
    groups.emplace_back(ids.begin() + static_cast<long>(i), ids.begin() + static_cast<long>(end));
  }
  // A too-small trailing group is folded into the previous one (deploy must
  // respect gmin just as the merge rule would).
  if (groups.size() > 1 && groups.back().size() < params_.gmin) {
    auto tail = std::move(groups.back());
    groups.pop_back();
    groups.back().insert(groups.back().end(), tail.begin(), tail.end());
  }

  std::vector<GroupId> gids;
  overlay::HGraph graph(params_.hc);
  for (std::size_t i = 0; i < groups.size(); ++i) {
    GroupId g = mint_group_id();
    gids.push_back(g);
    if (i == 0) {
      graph.add_first(g);
    } else {
      graph.insert_random(g, rng_);
    }
  }

  auto view_of = [&](GroupId g) {
    auto it = std::find(gids.begin(), gids.end(), g);
    std::size_t idx = static_cast<std::size_t>(it - gids.begin());
    group::GroupView v;
    v.id = g;
    v.members = groups[idx];
    std::sort(v.members.begin(), v.members.end());
    return v;
  };

  for (std::size_t i = 0; i < groups.size(); ++i) {
    group::VGroupState state(gids[i], groups[i], params_.hc);
    for (std::size_t c = 0; c < params_.hc; ++c) {
      state.set_successor(c, view_of(graph.successor(c, gids[i])));
      state.set_predecessor(c, view_of(graph.predecessor(c, gids[i])));
    }
    for (NodeId n : groups[i]) {
      add_node(n);  // no-op when the caller pre-registered behaviors
      node(n).start_with_state(state);
    }
  }
}

std::map<GroupId, std::vector<NodeId>> AtumSystem::group_map() const {
  std::map<GroupId, std::vector<NodeId>> out;
  // lint: unordered-iter-ok(keys land in a sorted map, members sorted below)
  for (const auto& [id, node] : nodes_) {
    if (node->joined()) out[node->group_id()].push_back(id);
  }
  for (auto& [g, members] : out) std::sort(members.begin(), members.end());
  return out;
}

// ===========================================================================
// AtumNode: lifecycle
// ===========================================================================

AtumNode::AtumNode(AtumSystem& system, NodeId id, NodeBehavior behavior)
    : sys_(system),
      id_(id),
      behavior_(behavior),
      transport_(system.network(), id),
      rng_(system.rng().next_u64() ^ id),
      coalescer_(transport_, rng_),
      gossip_(overlay::forward_flood()) {
  coalescer_.set_tracer(&system.tracer());
  transport_.listen({net::MsgType::kJoinRequest, net::MsgType::kJoinReply,
                     net::MsgType::kHeartbeat},
                    [this](const net::Message& m) { on_direct(m); });
}

AtumNode::~AtumNode() { stop(); }

void AtumNode::stop() {
  coalescer_.discard();
  heartbeat_timer_.reset();
  if (smr_) smr_->stop();
  smr_.reset();
  gm_rx_.reset();
  transport_.close();
  runtime_active_ = false;
}

void AtumNode::bootstrap() {
  group::VGroupState state(sys_.mint_group_id(), {id_}, sys_.params().hc);
  // The single vgroup is its own neighbor on every cycle (§3.3.1).
  group::GroupView self_view{state.id(), {id_}};
  for (std::size_t c = 0; c < sys_.params().hc; ++c) {
    state.set_successor(c, self_view);
    state.set_predecessor(c, self_view);
  }
  start_with_state(std::move(state));
}

void AtumNode::start_with_state(group::VGroupState state) {
  vg_ = std::move(state);
  join_wait_ = JoinWait{};
  setup_runtime();
}

void AtumNode::setup_runtime() {
  heartbeat_timer_.reset();
  if (smr_) smr_->stop();

  smr::EngineOptions opt;
  opt.kind = sys_.params().engine;
  opt.ds.round_duration = sys_.params().round_duration;
  opt.ds.verify_signatures = sys_.params().verify_signatures;
  opt.pbft.view_change_timeout = sys_.params().view_change_timeout;
  opt.pbft.verify_signatures = sys_.params().verify_signatures;
  opt.pbft.checkpoint_interval = sys_.params().checkpoint_interval;
  opt.pbft.metrics = &sys_.metrics();
  opt.pbft.tracer = &sys_.tracer();
  if (behavior_ != NodeBehavior::kCorrect) {
    // §6.1.3: faulty nodes do not participate in any protocol (the
    // evictor keeps heartbeating so it is not removed).
    opt.ds_fault = smr::DsFaultMode::kSilent;
    opt.pbft_fault = smr::PbftFaultMode::kSilent;
  }

  smr::GroupConfig cfg;
  cfg.members = vg_.members();
  // One-shot: a join snapshot's chain position applies to exactly the
  // runtime it admitted; bootstrap/deploy paths derive genesis instead.
  std::optional<smr::EpochState> resume = resume_epoch_;
  resume_epoch_.reset();
  smr_ = std::make_unique<smr::ReconfigurableSmr>(sys_.network(), id_, cfg, sys_.keys(), opt,
                                                  resume);
  smr_->set_decide_handler([this](std::uint64_t seq, NodeId origin, const net::Payload& op) {
    on_smr_decide(seq, origin, op);
  });
  smr_->set_config_handler([this](std::uint64_t epoch, const smr::GroupConfig& config) {
    on_config_change(epoch, config);
  });

  gm_rx_ = std::make_unique<overlay::GroupMessageReceiver>(
      net::Transport(sys_.network(), id_),
      [this](const overlay::GroupMessageId& id, NodeId relay, net::Payload payload) {
        on_group_message(id, relay, std::move(payload));
      });
  gm_rx_->set_group_size_fn([this](GroupId g) -> std::optional<std::size_t> {
    auto v = vg_.find_group(g);
    if (!v) return std::nullopt;
    return v->members.size();
  });
  gm_rx_->set_membership_fn([this](GroupId g, NodeId n) {
    auto v = vg_.find_group(g);
    return v && v->has_member(n);
  });
  gm_rx_->set_tracer(&sys_.tracer());

  if (behavior_ != NodeBehavior::kSilent) {
    heartbeat_timer_ = std::make_unique<sim::PeriodicTimer>(
        sys_.simulator(), sys_.params().heartbeat_period, [this] { heartbeat_tick(); });
  }
  last_seen_.clear();
  for (NodeId peer : vg_.members()) last_seen_[peer] = sys_.simulator().now();
  accusations_.clear();
  runtime_active_ = true;
}

// ===========================================================================
// §3.3 API
// ===========================================================================

void AtumNode::set_behavior(NodeBehavior behavior) {
  if (behavior == behavior_) return;
  behavior_ = behavior;
  if (!runtime_active_) return;
  if (smr_) {
    if (behavior_ == NodeBehavior::kCorrect) {
      smr_->set_fault(smr::DsFaultMode::kCorrect, smr::PbftFaultMode::kCorrect);
    } else {
      smr_->set_fault(smr::DsFaultMode::kSilent, smr::PbftFaultMode::kSilent);
    }
  }
  // Heartbeating follows the behavior: silent nodes fall quiet (and get
  // evicted), every other behavior keeps the timer (the evictor depends on
  // it to avoid eviction).
  if (behavior_ == NodeBehavior::kSilent) {
    heartbeat_timer_.reset();
  } else if (!heartbeat_timer_) {
    heartbeat_timer_ = std::make_unique<sim::PeriodicTimer>(
        sys_.simulator(), sys_.params().heartbeat_period, [this] { heartbeat_tick(); });
  }
}

void AtumNode::join(NodeId contact) {
  if (runtime_active_) throw std::logic_error("AtumNode::join: already joined");
  ByteWriter w;
  w.u8(kJoinPhaseContact);
  w.u64(id_);
  w.u64(++walk_nonce_);  // join attempt number
  transport_.send(contact, net::MsgType::kJoinRequest, w.take());
}

void AtumNode::leave() {
  if (!runtime_active_) return;
  std::vector<NodeId> rest;
  for (NodeId n : vg_.members()) {
    if (n != id_) rest.push_back(n);
  }
  if (rest.empty()) {
    stop();  // last node of the system simply shuts down
    return;
  }
  smr::GroupConfig cfg;
  cfg.members = rest;
  smr_->propose_reconfig(cfg);
}

void AtumNode::broadcast(Bytes payload) {
  if (!runtime_active_) throw std::logic_error("AtumNode::broadcast: not joined");
  group::BroadcastOp op;
  op.bcast = BroadcastId{id_, ++bcast_seq_};
  op.payload = std::move(payload);
  Bytes wire = op.encode();
  obs::Tracer& tr = sys_.tracer();
  if (tr.enabled()) {
    // The op encoding IS the gossip frame (static_assert above), so this
    // digest prefix is the key every later hop of the broadcast records.
    tr.record(sys_.simulator().now(), id_, obs::TracePoint::kSend,
              crypto::digest_prefix64(crypto::sha256(wire)), op.bcast.seq);
  }
  smr_->propose(std::move(wire));
}

// ===========================================================================
// SMR plumbing
// ===========================================================================

void AtumNode::on_smr_decide(std::uint64_t, NodeId origin, const net::Payload& wire) {
  group::DecodedOp op;
  try {
    op = group::decode_op(wire);
  } catch (const SerdeError&) {
    return;  // faulty origin proposed garbage
  }
  switch (op.kind) {
    case group::OpKind::kBroadcast: {
      if (op.broadcast.bcast.origin != origin) return;  // forged origin
      deliver_broadcast(op.broadcast.bcast, op.broadcast.payload, wire);
      // The decided op IS the gossip frame (see static_assert above):
      // relay the buffer we already hold instead of re-encoding it.
      relay_gossip(op.broadcast.bcast, op.broadcast.payload, wire);
      break;
    }
    case group::OpKind::kSuspect: {
      if (!vg_.has_member(origin) || !vg_.has_member(op.suspect.suspect)) return;
      if (op.suspect.suspect == origin) return;
      accusations_[op.suspect.suspect].insert(origin);
      evaluate_suspicions();
      break;
    }
    case group::OpKind::kStartWalk: {
      if (!walks_started_.insert(op.walk.nonce).second) return;  // dedup
      // Deterministic bulk RNG (§5.1): minted now, seeded by agreed state.
      ByteWriter seed_w;
      seed_w.str("atum-walk-rng");
      seed_w.u64(vg_.id());
      seed_w.u64(smr_ ? smr_->epoch() : 0);
      seed_w.u64(op.walk.nonce);
      Rng walk_rng(crypto::digest_prefix64(crypto::sha256(seed_w.data())));
      auto walk = overlay::WalkState::start(
          overlay::WalkId{vg_.id(), op.walk.nonce},
          static_cast<overlay::WalkPurpose>(op.walk.purpose),
          static_cast<std::uint32_t>(sys_.params().rwl), op.walk.payload, walk_rng);
      forward_walk(std::move(walk));
      break;
    }
  }
}

void AtumNode::on_config_change(std::uint64_t, const smr::GroupConfig& config) {
  if (!config.contains(id_)) {
    // Reconfigured out: leave/eviction completed for this node.
    stop();
    return;
  }
  std::vector<NodeId> old_members = vg_.members();
  vg_.set_members(config.members);

  // Membership bookkeeping.
  for (auto it = accusations_.begin(); it != accusations_.end();) {
    if (!vg_.has_member(it->first)) {
      it = accusations_.erase(it);
    } else {
      std::erase_if(it->second, [&](NodeId a) { return !vg_.has_member(a); });
      ++it;
    }
  }
  for (NodeId n : vg_.members()) last_seen_.try_emplace(n, sys_.simulator().now());

  // Tell neighbors about the new composition (§3.2).
  send_neighbor_updates();

  // Send the replicated state to newly admitted members (§3.3.2: "j
  // synchronizes its state with D").
  if (is_sender_behavior()) {
    // Snapshot and freeze once; every newly admitted member shares it.
    net::Payload reply;
    for (NodeId n : vg_.members()) {
      if (std::find(old_members.begin(), old_members.end(), n) != old_members.end()) continue;
      if (n == id_) continue;
      if (reply.empty()) {
        ByteWriter w;
        w.u8(kReplyPhaseState);
        w.bytes(snapshot_state());
        reply = net::Payload(w.take());
      }
      transport_.send(n, net::MsgType::kJoinReply, reply);
    }
  }
}

void AtumNode::evaluate_suspicions() {
  std::size_t f = sys_.params().engine == smr::EngineKind::kSync
                      ? smr::sync_max_faults(vg_.size())
                      : smr::async_max_faults(vg_.size());
  for (const auto& [suspect, accusers] : accusations_) {
    if (accusers.size() < f + 1) continue;
    std::vector<NodeId> rest;
    for (NodeId n : vg_.members()) {
      if (n != suspect) rest.push_back(n);
    }
    if (rest.empty() || !smr_) continue;
    smr::GroupConfig cfg;
    cfg.members = rest;
    smr_->propose_reconfig(cfg);
  }
}

// ===========================================================================
// Group messages & gossip
// ===========================================================================

std::optional<overlay::PreparedGroupMessage> AtumNode::prepare_group_payload(
    const net::Payload& payload) const {
  if (!is_sender_behavior()) return std::nullopt;  // Byzantine members do not contribute
  // digest() is memoized per frame: for a relayed gossip frame this reuses
  // the digest the vouch path already computed on arrival, and the
  // digest-rank senders inside PreparedGroupMessage reuse it again.
  overlay::GroupMessageId id{vg_.id(), crypto::digest_prefix64(payload.digest())};
  return overlay::PreparedGroupMessage(vg_.members(), id_, id, payload);
}

void AtumNode::send_group_payload(const group::GroupView& dest, const net::Payload& payload) {
  auto msg = prepare_group_payload(payload);
  if (msg) msg->send_to(coalescer_, dest.members);
}

void AtumNode::send_neighbor_updates() {
  ByteWriter w;
  w.u8(kGmNeighborUpdate);
  group::GroupView self{vg_.id(), vg_.members()};
  self.encode(w);
  // Encode + freeze once; every neighbor group shares the same frame.
  auto msg = prepare_group_payload(w.take());
  if (!msg) return;
  for (const group::GroupView& g : vg_.known_groups()) {
    if (g.id == vg_.id()) continue;
    msg->send_to(coalescer_, g.members);
  }
}

void AtumNode::on_group_message(const overlay::GroupMessageId& gm_id, NodeId,
                                net::Payload payload) {
  if (behavior_ == NodeBehavior::kSilent) return;
  try {
    ByteReader r(payload);
    std::uint8_t kind = r.u8();
    switch (kind) {
      case kGmGossip: {
        BroadcastId id{r.u64(), r.u64()};
        // The broadcast body is a slice of the received frame; the frame
        // itself is relayed verbatim. Neither is ever copied.
        net::Payload body = payload.slice(r.bytes_view());
        deliver_broadcast(id, body, payload);
        relay_gossip(id, body, payload);
        break;
      }
      case kGmWalk: {
        handle_walk(overlay::WalkState::decode(r.bytes()));
        break;
      }
      case kGmNeighborUpdate: {
        group::GroupView v = group::GroupView::decode(r);
        if (v.id == gm_id.from_group) {
          vg_.refresh_neighbor(v);
          if (gm_rx_) gm_rx_->reevaluate();
        }
        break;
      }
      default:
        break;
    }
  } catch (const SerdeError&) {
    // A majority of a robust vgroup never produces garbage; ignore.
  }
}

void AtumNode::deliver_broadcast(const BroadcastId& id, const net::Payload& payload,
                                 const net::Payload& frame) {
  if (!gossip_.first_sighting(id)) return;
  ++delivered_;
  obs::Tracer& tr = sys_.tracer();
  if (tr.enabled()) {
    // frame.digest() is memoized and shared with the vouch/relay paths.
    tr.record(sys_.simulator().now(), id_, obs::TracePoint::kDeliver,
              crypto::digest_prefix64(frame.digest()), id.origin);
  }
  if (behavior_ == NodeBehavior::kCorrect && deliver_) deliver_(id.origin, payload);
}

void AtumNode::relay_gossip(const BroadcastId& id, const net::Payload& payload,
                            const net::Payload& frame) {
  if (!is_sender_behavior()) return;
  std::vector<overlay::NeighborRef> relays = gossip_.relays(id, payload, vg_.neighbor_refs());
  if (relays.empty()) return;
  // One wire frame (wrapping the received gossip frame verbatim) + one
  // digest for the whole relay fan-out; every neighbor group and every
  // member within it shares the same frozen buffer.
  auto msg = prepare_group_payload(frame);
  if (!msg) return;
  // Overlapping neighbor member sets (several neighbor groups can contain
  // the same physical node) and multiple broadcasts decided in one tick
  // all coalesce per destination here.
  std::size_t fanned = 0;
  for (const overlay::NeighborRef& ref : relays) {
    auto view = vg_.find_group(ref.group);
    if (view) {
      msg->send_to(coalescer_, view->members);
      fanned += view->members.size();
    }
  }
  obs::Tracer& tr = sys_.tracer();
  if (tr.enabled() && fanned > 0) {
    tr.record(sys_.simulator().now(), id_, obs::TracePoint::kRelay,
              crypto::digest_prefix64(frame.digest()), fanned, relays.size());
  }
}

// ===========================================================================
// Walks
// ===========================================================================

void AtumNode::forward_walk(overlay::WalkState walk) {
  auto refs = vg_.neighbor_refs();
  if (refs.empty()) {
    // Degenerate overlay (single vgroup): the walk terminates here.
    walk.step = walk.rwl;
    handle_walk(std::move(walk));
    return;
  }
  if (walk.done()) {
    handle_walk(std::move(walk));
    return;
  }
  std::size_t idx = walk.pick_link(refs.size());
  auto view = vg_.find_group(refs[idx].group);
  if (!view) return;
  walk.step += 1;
  walk.path.push_back(vg_.id());

  ByteWriter w;
  w.u8(kGmWalk);
  w.bytes(walk.encode());
  send_group_payload(*view, w.take());
}

void AtumNode::handle_walk(overlay::WalkState walk) {
  if (!walk.done()) {
    forward_walk(std::move(walk));
    return;
  }
  switch (walk.purpose) {
    case overlay::WalkPurpose::kJoinPlacement: {
      ByteReader r(walk.payload);
      NodeId joiner = r.u64();
      if (vg_.has_member(joiner) || !smr_) return;
      std::vector<NodeId> next = vg_.members();
      next.push_back(joiner);
      smr::GroupConfig cfg;
      cfg.members = next;
      smr_->propose_reconfig(cfg);
      break;
    }
    default:
      break;  // sampling walks terminate here; purpose handled by callers
  }
}

// ===========================================================================
// Direct messages: join handshake & heartbeats
// ===========================================================================

Bytes AtumNode::snapshot_state() const {
  ByteWriter w;
  w.u64(vg_.id());
  w.vec(vg_.members(), [](ByteWriter& bw, NodeId n) { bw.u64(n); });
  w.varint(vg_.cycle_count());
  for (std::size_t c = 0; c < vg_.cycle_count(); ++c) {
    vg_.cycle(c).successor.encode(w);
    vg_.cycle(c).predecessor.encode(w);
  }
  // Config-history chain position: the snapshot is sent right after the
  // epoch that admitted the joiner switched in, so the joiner's engine tag
  // matches the incumbents' current instance.
  smr::EpochState es;
  if (smr_) {
    es.epoch = smr_->epoch();
    es.hash = smr_->epoch_hash();
  }
  w.u64(es.epoch);
  w.raw(es.hash.data(), es.hash.size());
  return w.take();
}

group::VGroupState AtumNode::decode_state(const Bytes& wire, std::size_t cycles,
                                          smr::EpochState& epoch_out) {
  ByteReader r(wire);
  GroupId id = r.u64();
  auto members = r.vec<NodeId>([](ByteReader& br) { return br.u64(); });
  std::uint64_t hc = r.varint();
  if (hc != cycles) throw SerdeError("snapshot cycle count mismatch");
  group::VGroupState state(id, members, cycles);
  for (std::size_t c = 0; c < cycles; ++c) {
    state.set_successor(c, group::GroupView::decode(r));
    state.set_predecessor(c, group::GroupView::decode(r));
  }
  epoch_out.epoch = r.u64();
  r.raw(epoch_out.hash.data(), epoch_out.hash.size());
  r.expect_done();
  return state;
}

void AtumNode::on_direct(const net::Message& msg) {
  if (behavior_ == NodeBehavior::kSilent) return;
  try {
    switch (msg.type) {
      case net::MsgType::kHeartbeat: {
        last_seen_[msg.from] = sys_.simulator().now();
        break;
      }
      case net::MsgType::kJoinRequest: {
        ByteReader r(msg.payload);
        std::uint8_t phase = r.u8();
        NodeId joiner = r.u64();
        std::uint64_t attempt = r.u64();
        if (joiner != msg.from || !runtime_active_) return;
        if (phase == kJoinPhaseContact) {
          // §3.3.2: the contact replies with the composition of its vgroup
          // (the only step where the joiner must trust a single node).
          if (behavior_ != NodeBehavior::kCorrect) return;
          ByteWriter w;
          w.u8(kReplyPhaseContact);
          group::GroupView view{vg_.id(), vg_.members()};
          view.encode(w);
          transport_.send(joiner, net::MsgType::kJoinReply, w.take());
        } else if (phase == kJoinPhaseAddMe) {
          // Every member proposes the walk launch; SMR dedups via nonce.
          if (!smr_ || vg_.has_member(joiner)) return;
          group::StartWalkOp op;
          op.purpose = static_cast<std::uint8_t>(overlay::WalkPurpose::kJoinPlacement);
          op.nonce = join_nonce(joiner, attempt);
          ByteWriter pw;
          pw.u64(joiner);
          op.payload = pw.take();
          smr_->propose(op.encode());
        }
        break;
      }
      case net::MsgType::kJoinReply: {
        ByteReader r(msg.payload);
        std::uint8_t phase = r.u8();
        if (phase == kReplyPhaseContact) {
          if (runtime_active_) return;
          group::GroupView view = group::GroupView::decode(r);
          // Ask every member of the contact vgroup to add us (§3.3.2).
          join_wait_.active = true;
          ByteWriter w;
          w.u8(kJoinPhaseAddMe);
          w.u64(id_);
          w.u64(walk_nonce_);
          net::Payload req(w.take());  // one buffer for the whole vgroup
          for (NodeId n : view.members) {
            transport_.send(n, net::MsgType::kJoinRequest, req);
          }
        } else if (phase == kReplyPhaseState) {
          if (runtime_active_ || !join_wait_.active) return;
          Bytes snapshot = r.bytes();
          smr::EpochState epoch;
          group::VGroupState state = decode_state(snapshot, sys_.params().hc, epoch);
          if (!state.has_member(id_) || !state.has_member(msg.from)) return;
          crypto::Digest d = crypto::sha256(snapshot);
          auto& votes = join_wait_.votes[d];
          if (std::find(votes.begin(), votes.end(), msg.from) == votes.end()) {
            votes.push_back(msg.from);
          }
          join_wait_.snapshots[d] = snapshot;
          // Accept once a majority of the PREVIOUS composition (everyone in
          // the view except ourselves) vouches for the identical state.
          std::size_t senders = state.size() > 1 ? state.size() - 1 : 1;
          std::size_t majority = senders / 2 + 1;
          if (votes.size() >= majority) {
            // The vouched snapshot carries the group's chain position; the
            // runtime below resumes the epoch chain there.
            resume_epoch_ = epoch;
            start_with_state(std::move(state));
          }
        }
        break;
      }
      default:
        break;
    }
  } catch (const SerdeError&) {
    // Malformed direct message: sender is faulty.
  }
}

void AtumNode::heartbeat_tick() {
  if (!runtime_active_) return;
  for (NodeId peer : vg_.members()) {
    if (peer == id_) continue;
    transport_.send(peer, net::MsgType::kHeartbeat, {});
  }
  if (behavior_ == NodeBehavior::kByzantineEvictor) {
    // §6.1.3: pretend not to receive heartbeats and periodically propose to
    // evict correct nodes. (The silent engine drops the proposal, and even
    // a delivered accusation never reaches the f+1 quorum.)
    for (NodeId peer : vg_.members()) {
      if (peer == id_ || !smr_) continue;
      group::SuspectOp op;
      op.suspect = peer;
      smr_->propose(op.encode());
    }
    return;
  }
  if (behavior_ != NodeBehavior::kCorrect) return;

  DurationMicros deadline = static_cast<DurationMicros>(sys_.params().heartbeat_miss_limit) *
                            sys_.params().heartbeat_period;
  for (NodeId peer : vg_.members()) {
    if (peer == id_) continue;
    auto it = last_seen_.find(peer);
    TimeMicros seen = it == last_seen_.end() ? 0 : it->second;
    if (sys_.simulator().now() - seen > deadline && smr_) {
      group::SuspectOp op;
      op.suspect = peer;
      smr_->propose(op.encode());
    }
  }
}

}  // namespace atum::core
