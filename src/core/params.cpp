#include "core/params.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace atum::core {

void Params::validate() const {
  if (hc < 1 || hc > 16) throw std::invalid_argument("Params: hc out of range [1,16]");
  if (rwl < 1 || rwl > 64) throw std::invalid_argument("Params: rwl out of range [1,64]");
  if (gmin < 1) throw std::invalid_argument("Params: gmin must be positive");
  if (gmin >= gmax) throw std::invalid_argument("Params: gmin must be below gmax");
  if (round_duration <= 0) throw std::invalid_argument("Params: round_duration must be positive");
  if (checkpoint_interval < 1) throw std::invalid_argument("Params: checkpoint_interval must be >= 1");
  if (heartbeat_period <= 0) throw std::invalid_argument("Params: heartbeat_period must be positive");
  if (heartbeat_miss_limit < 1) throw std::invalid_argument("Params: miss limit must be >= 1");
}

std::size_t target_group_size(std::size_t expected_nodes, std::size_t k) {
  double n = std::max<double>(2.0, static_cast<double>(expected_nodes));
  return std::max<std::size_t>(
      2, static_cast<std::size_t>(std::lround(static_cast<double>(k) * std::log2(n))));
}

std::size_t guideline_rwl(std::size_t num_vgroups, std::size_t hc) {
  if (num_vgroups <= 1) return 1;
  hc = std::max<std::size_t>(hc, 1);
  // Random 2hc-regular multigraphs mix in ~log(n)/log(2hc-1) steps; the
  // constant and the floor are fit to the paper's Figure 4 grid (e.g. 128
  // vgroups with hc=6 -> rwl=9).
  double n = static_cast<double>(num_vgroups);
  double degree = std::max(2.0, 2.0 * static_cast<double>(hc) - 1.0);
  double mixing = std::log(n) / std::log(degree);
  auto rwl = static_cast<std::size_t>(std::lround(4.0 + 2.6 * mixing));
  return std::clamp<std::size_t>(rwl, 4, 15);
}

Params Params::recommended(std::size_t expected_nodes, smr::EngineKind engine) {
  Params p;
  p.engine = engine;
  // Async tolerates fewer faults per group; the paper compensates with a
  // larger robustness parameter (k=7 in §6.1.3).
  std::size_t k = engine == smr::EngineKind::kSync ? 4 : 7;
  std::size_t g = target_group_size(expected_nodes, k);
  p.gmax = std::max<std::size_t>(4, g + g / 3);
  p.gmin = std::max<std::size_t>(2, p.gmax / 2);
  std::size_t groups = std::max<std::size_t>(1, expected_nodes / std::max<std::size_t>(1, g));
  p.hc = groups < 64 ? 4 : (groups < 1024 ? 5 : 6);
  p.rwl = guideline_rwl(groups, p.hc);
  p.validate();
  return p;
}

std::string to_string(const Params& p) {
  std::ostringstream os;
  os << "Params{hc=" << p.hc << ", rwl=" << p.rwl << ", gmax=" << p.gmax << ", gmin=" << p.gmin
     << ", engine=" << (p.engine == smr::EngineKind::kSync ? "sync" : "async")
     << ", round=" << to_seconds(p.round_duration) << "s}";
  return os.str();
}

}  // namespace atum::core
