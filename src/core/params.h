// System parameters (Table 1) and the configuration guideline (Figure 4).
#pragma once

#include <cstddef>
#include <string>

#include "common/types.h"
#include "smr/reconfig.h"

namespace atum::core {

// Table 1: the parameters an administrator sets at bootstrap. Only gmin and
// gmax steer the deployment (g and k exist to reason about robustness).
struct Params {
  std::size_t hc = 5;     // H-graph cycles, typical 2..12
  std::size_t rwl = 10;   // random walk length, typical 4..15
  std::size_t gmax = 14;  // max vgroup size, typical 8,14,20,...
  std::size_t gmin = 7;   // min vgroup size, default 0.5*gmax

  smr::EngineKind engine = smr::EngineKind::kSync;
  DurationMicros round_duration = seconds(1.0);          // sync rounds (§6: 1-1.5 s)
  DurationMicros view_change_timeout = seconds(2.0);     // async liveness timer
  // PBFT checkpoint cadence: every this-many executed seqs the replicas
  // exchange checkpoint digests; stability truncates the log and the
  // executed history (the per-epoch memory bound). Scenario presets shrink
  // it so short runs cross many boundaries.
  std::uint64_t checkpoint_interval = 64;
  DurationMicros heartbeat_period = seconds(60.0);       // §5.1: coarse, ~1/min
  std::size_t heartbeat_miss_limit = 3;                  // silence before suspicion
  bool verify_signatures = true;

  // Throws std::invalid_argument when inconsistent.
  void validate() const;

  // Derives a configuration for an expected system size following the
  // Figure 4 guideline and k*log2(N) sizing with the default k = 4 (§3.1).
  static Params recommended(std::size_t expected_nodes, smr::EngineKind engine);
};

// Figure 4 guideline: walk length needed for uniform sampling on an H-graph
// with `num_vgroups` vertices and `hc` cycles. Derived from the mixing time
// of 2hc-regular expanders and calibrated against the paper's plotted grid;
// bench_fig4_guideline regenerates the plot empirically via simulation.
std::size_t guideline_rwl(std::size_t num_vgroups, std::size_t hc);

// §3.1: vgroup size target g = k*log2(N).
std::size_t target_group_size(std::size_t expected_nodes, std::size_t k = 4);

std::string to_string(const Params& p);

}  // namespace atum::core
