// Atum: the group communication middleware (§3).
//
// AtumNode is the per-node runtime: it owns the node's replica of its
// vgroup's SMR engine, the group-message endpoint, the gossip relay state,
// and the heartbeat/eviction machinery, and it exposes the §3.3 API —
// bootstrap / join / leave / broadcast plus the deliver and forward
// callbacks.
//
// AtumSystem is the deployment context (simulator, network, key store,
// parameters) plus a harness for creating nodes and for instant deployment
// of an already-grown system ("start from checkpoint"), which is how the
// evaluation instantiates its 200-850 node systems before measuring.
//
// Protocol notes (fidelity vs the paper):
//  * join follows §3.3.2: the joiner contacts a member, the contact's
//    vgroup agrees on the request and launches a placement walk; the walk
//    hops vgroup-to-vgroup as group messages; the selected vgroup admits
//    the joiner through an SMR reconfiguration and sends it the replicated
//    state directly (the paper relays the composition through the contact
//    group; the direct reply is equivalent and saves one backward phase).
//  * walk randomness is derived deterministically from agreed group state
//    (group id, epoch, nonce); the paper's distributed bulk RNG [46] has
//    the same timing but stronger unpredictability. §5.1's key point —
//    numbers minted only once their purpose is fixed — is preserved.
//  * full-group shuffling, split and merge dynamics are modelled at vgroup
//    granularity in group::ClusterSim (see DESIGN.md); the node-level
//    runtime keeps vgroups static in size apart from join/leave/eviction.
//
// Payload ownership (README "Payload API"): broadcast() freezes the
// application bytes once; everything above the transport then works on
// refcounted net::Payload views — the decided op is sliced out of the SMR
// frame, delivered to DeliverFn as a view, and relayed across the overlay
// verbatim (the BroadcastOp encoding doubles as the gossip frame). A node
// materializes at most one new buffer per broadcast (its own outgoing
// group-message wire frame), however many groups and members it fans out
// to.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "core/params.h"
#include "crypto/keys.h"
#include "group/vgroup_state.h"
#include "net/network.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "overlay/gossip.h"
#include "overlay/group_message.h"
#include "overlay/random_walk.h"
#include "sim/simulator.h"
#include "smr/reconfig.h"

namespace atum::core {

class AtumNode;

// Fault behaviors used by the evaluation (§6.1.3).
enum class NodeBehavior {
  kCorrect,
  // Fully silent (Async experiments: "faulty nodes stay quiet").
  kSilent,
  // Sync experiments: keeps heartbeating so it is not evicted, otherwise
  // participates in nothing, and periodically proposes evicting correct
  // nodes from its vgroup.
  kByzantineEvictor,
};

class AtumSystem {
 public:
  AtumSystem(Params params, net::NetworkConfig net_config, std::uint64_t seed = 0xa70aULL);
  ~AtumSystem();
  AtumSystem(const AtumSystem&) = delete;
  AtumSystem& operator=(const AtumSystem&) = delete;

  sim::Simulator& simulator() { return sim_; }
  net::SimNetwork& network() { return net_; }
  crypto::KeyStore& keys() { return keys_; }
  const Params& params() const { return params_; }
  Rng& rng() { return rng_; }

  // The system-wide observability surface (ISSUE 9). The registry is
  // pre-wired at construction: network counters, simulator gauges, the
  // SHA-256 digest count, and aggregate per-node stats are registered as
  // polled probes, and every node's SMR engines share the smr.* cells.
  // The tracer is disabled by default (one branch per would-be event);
  // tracer().enable(...) turns on message-lifecycle recording.
  obs::Registry& metrics() { return registry_; }
  obs::Tracer& tracer() { return tracer_; }

  AtumNode& add_node(NodeId id, NodeBehavior behavior = NodeBehavior::kCorrect);
  AtumNode& node(NodeId id);
  bool has_node(NodeId id) const { return nodes_.contains(id); }
  void remove_node(NodeId id);
  std::vector<NodeId> node_ids() const;

  // Instant deployment: partitions `ids` into vgroups of size
  // ~(gmin+gmax)/2, builds the H-graph, and starts every runtime. Nodes
  // must have been added beforehand (or are added as kCorrect).
  void deploy(const std::vector<NodeId>& ids);

  // Ground truth derived from node views (verification/benching only).
  std::map<GroupId, std::vector<NodeId>> group_map() const;

  GroupId mint_group_id() { return next_group_id_++; }

 private:
  Params params_;
  sim::Simulator sim_;
  net::SimNetwork net_;
  crypto::KeyStore keys_;
  Rng rng_;
  obs::Registry registry_;
  obs::Tracer tracer_;
  std::unordered_map<NodeId, std::unique_ptr<AtumNode>> nodes_;
  GroupId next_group_id_ = 1;
};

class AtumNode {
 public:
  // deliver(message) callback (§3.3): origin identifies the broadcaster.
  // The payload is a refcounted view shared with the relay machinery (one
  // materialization per node, however large the fan-out); copy via
  // to_bytes() only if the application archives it past the callback.
  using DeliverFn = std::function<void(NodeId origin, const net::Payload& payload)>;

  AtumNode(AtumSystem& system, NodeId id, NodeBehavior behavior);
  ~AtumNode();
  AtumNode(const AtumNode&) = delete;
  AtumNode& operator=(const AtumNode&) = delete;

  NodeId id() const { return id_; }
  NodeBehavior behavior() const { return behavior_; }

  // Runtime behavior conversion (§6.1.3 applied mid-run; the scenario
  // engine's Byzantine-storm primitive). A correct node turned faulty goes
  // protocol-silent from its next action (its SMR replica flips to the
  // silent fault mode, the evictor keeps heartbeating and starts proposing
  // evictions, the silent variant stops heartbeating and will eventually
  // be evicted); a faulty node turned correct resumes full participation.
  void set_behavior(NodeBehavior behavior);

  // ----- §3.3 API -----
  // Creates a new Atum instance: a single vgroup containing only this node.
  void bootstrap();
  // Joins the system through a contact node (§3.3.2). Asynchronous: poll
  // joined() or run the simulator until it flips.
  void join(NodeId contact);
  // Announces departure; the vgroup reconfigures this node out.
  void leave();
  // Two-phase broadcast (§3.3.4): SMR broadcast in the own vgroup, then
  // gossip across the overlay.
  void broadcast(Bytes payload);

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  // The currently installed deliver callback (copy). Lets a harness chain a
  // metrics tap in front of an application handler: grab the handler, then
  // set_deliver a wrapper that calls both (see scenario::ScenarioDriver).
  DeliverFn deliver_handler() const { return deliver_; }
  void set_forward(overlay::ForwardFn fn) { gossip_.set_forward(std::move(fn)); }

  // ----- introspection -----
  bool joined() const { return runtime_active_; }
  GroupId group_id() const { return vg_.id(); }
  const group::VGroupState& vgroup() const { return vg_; }
  std::uint64_t delivered_count() const { return delivered_; }
  std::uint64_t smr_epoch() const { return smr_ ? smr_->epoch() : 0; }
  // Send-coalescing stats (benchmarks: how many per-message fixed costs
  // the envelope path saved at this node).
  const overlay::SendCoalescer& coalescer() const { return coalescer_; }

  // Used by AtumSystem::deploy and by a vgroup admitting this node.
  void start_with_state(group::VGroupState state);
  void stop();

 private:
  friend class AtumSystem;

  // --- wiring ---
  void setup_runtime();
  void on_smr_decide(std::uint64_t seq, NodeId origin, const net::Payload& op);
  void on_config_change(std::uint64_t epoch, const smr::GroupConfig& config);
  void on_group_message(const overlay::GroupMessageId& id, NodeId relay, net::Payload payload);
  void on_direct(const net::Message& msg);

  // --- protocol actions ---
  // `frame` is the gossip wire frame the broadcast arrived as (the decided
  // op's encoding on the SMR path) — its digest prefix is the trace key
  // joining this delivery to every other hop of the same broadcast.
  void deliver_broadcast(const BroadcastId& id, const net::Payload& payload,
                         const net::Payload& frame);
  // Relays `frame` (the received kGmGossip group-message body, or the
  // decided broadcast op whose encoding doubles as that frame) verbatim to
  // the chosen neighbor groups: a relaying node never re-encodes the
  // gossip frame, it only wraps it in its own group-message wire frame —
  // the node's single payload materialization.
  void relay_gossip(const BroadcastId& id, const net::Payload& payload,
                    const net::Payload& frame);
  void handle_walk(overlay::WalkState walk);
  void forward_walk(overlay::WalkState walk);
  // Encodes `payload` as a group message exactly once (nullopt for
  // non-sender behaviors); callers fan the result out to one or many
  // destination groups with zero further payload copies.
  std::optional<overlay::PreparedGroupMessage> prepare_group_payload(
      const net::Payload& payload) const;
  void send_group_payload(const group::GroupView& dest, const net::Payload& payload);
  void send_neighbor_updates();
  void heartbeat_tick();
  void evaluate_suspicions();
  Bytes snapshot_state() const;  // join reply payload
  // Decodes a join snapshot; fills `epoch_out` with the config-history
  // chain position the senders were at (threaded into the joiner's
  // ReconfigurableSmr so its instance tag matches the incumbents').
  static group::VGroupState decode_state(const Bytes& wire, std::size_t cycles,
                                         smr::EpochState& epoch_out);

  bool is_sender_behavior() const { return behavior_ == NodeBehavior::kCorrect; }

  AtumSystem& sys_;
  NodeId id_;
  NodeBehavior behavior_;
  net::Transport transport_;
  Rng rng_;
  // All group-message fan-outs route through here: frames bound for the
  // same physical destination within one tick leave as one envelope.
  overlay::SendCoalescer coalescer_;

  group::VGroupState vg_;
  std::unique_ptr<smr::ReconfigurableSmr> smr_;
  std::unique_ptr<overlay::GroupMessageReceiver> gm_rx_;
  std::unique_ptr<sim::PeriodicTimer> heartbeat_timer_;
  overlay::GossipState gossip_;
  DeliverFn deliver_;

  bool runtime_active_ = false;
  // Set from an accepted join snapshot, consumed by the next setup_runtime:
  // the fresh ReconfigurableSmr resumes the config-history hash chain at
  // the group's position instead of re-deriving genesis.
  std::optional<smr::EpochState> resume_epoch_;
  std::uint64_t bcast_seq_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t walk_nonce_ = 0;

  // Join handshake state (as the joiner).
  struct JoinWait {
    std::map<crypto::Digest, std::vector<NodeId>> votes;  // state digest -> voters
    std::map<crypto::Digest, Bytes> snapshots;
    bool active = false;
  } join_wait_;

  // Walk nonces already launched (dedup across members' duplicate ops).
  std::set<std::uint64_t> walks_started_;
  // Heartbeat bookkeeping.
  std::unordered_map<NodeId, TimeMicros> last_seen_;
  // suspect -> accusers whose SuspectOp was decided.
  std::map<NodeId, std::set<NodeId>> accusations_;
};

}  // namespace atum::core
