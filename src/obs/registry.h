// obs::Registry — the one deterministic metrics surface for the whole
// runtime (ISSUE 9 tentpole). Three cell kinds:
//
//   Counter   monotonically increasing u64 (atomic, relaxed — safe to
//             bump from the TSan-stressed threads without ordering cost)
//   Gauge     signed level that moves both ways (atomic i64)
//   Histogram log-linear bucketed value distribution (atomic buckets)
//
// plus Probes: registered std::function<u64()> polled only at sample()
// time. Probes migrate pre-existing hot counters (NetworkStats fields,
// sha256_digest_count, simulator live_events, per-node delivered counts)
// onto the registry without touching their hot paths — the cost of a
// probe is zero between samples.
//
// Determinism rules (enforced by tools/atum_lint.py wall-clock bans):
//  - no wall-clock anywhere in src/obs/: every Sample is stamped with the
//    caller-supplied sim-time, so same seed => byte-identical samples;
//  - iteration is sorted: cells live behind a std::map keyed by
//    (name, sorted label vector), so sample() emits a stable order
//    regardless of registration order;
//  - cell addresses are stable (deque storage): callers cache Counter*
//    once and bump it forever, no lock on the hot path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace atum::obs {

// Sorted key=value pairs distinguishing cells that share one name
// (e.g. msg_class=gossip vs msg_class=walk). Sorted at registration so
// {a=1,b=2} and {b=2,a=1} are the same cell and iteration is stable.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t by = 1) { v_.fetch_add(by, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t by) { v_.fetch_add(by, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Log-linear histogram: each power of two is split into kSubBuckets
// linear sub-buckets, so relative error is bounded at ~1/kSubBuckets
// across the full u64 range with a fixed ~256-slot footprint. Values
// 0..3 land in exact singleton buckets.
class Histogram {
 public:
  static constexpr std::uint32_t kSubBits = 2;  // 4 sub-buckets per octave
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBits;
  // Octaves [2^2, 2^64) * 4 sub-buckets + 4 exact small values.
  static constexpr std::size_t kBucketCount = kSubBuckets + (64 - kSubBits) * kSubBuckets;

  // Bucket index for a value; pure function of the value (exposed so the
  // unit suite can pin the edges).
  static std::size_t bucket_index(std::uint64_t v);
  // Smallest value mapping to bucket `idx` (inverse of bucket_index on
  // bucket lower edges).
  static std::uint64_t bucket_lower_bound(std::size_t idx);

  void record(std::uint64_t v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t idx) const {
    return buckets_[idx].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

enum class CellKind { kCounter, kGauge, kHistogram, kProbe };

// One cell's value at sample() time. Histograms flatten to (count, sum)
// plus the non-empty buckets as (lower_bound, count) pairs.
struct SampledCell {
  std::string name;
  Labels labels;
  CellKind kind = CellKind::kCounter;
  std::int64_t value = 0;  // counter/gauge/probe value; histogram count
  std::uint64_t sum = 0;   // histogram only
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;  // histogram only
};

// A full registry snapshot stamped with the sim-time it was taken at.
// Cells are sorted by (name, labels) — byte-determinism downstream
// (scenario time_series) relies on this order.
struct Sample {
  std::int64_t at = 0;  // sim-time micros supplied by the caller
  std::vector<SampledCell> cells;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Registration returns a stable pointer; repeated calls with the same
  // (name, labels) return the same cell. Registration takes a lock —
  // do it at setup, cache the pointer, bump lock-free afterwards.
  Counter& counter(std::string name, Labels labels = {});
  Gauge& gauge(std::string name, Labels labels = {});
  Histogram& histogram(std::string name, Labels labels = {});

  // Polled source: `fn` is invoked once per sample() and must be pure
  // reads. Re-registering a (name, labels) probe replaces the function.
  void probe(std::string name, Labels labels, std::function<std::uint64_t()> fn);

  // Snapshot every cell, sorted by (name, labels), stamped at `at`.
  Sample sample(std::int64_t at) const;

  // Convenience point read (0 if absent); counters/probes only need one
  // number, so scenario sampling reads by name instead of re-walking a
  // full Sample.
  std::uint64_t value(const std::string& name, const Labels& labels = {}) const;

  std::size_t cell_count() const;

 private:
  struct Key {
    std::string name;
    Labels labels;
    bool operator<(const Key& o) const {
      if (name != o.name) return name < o.name;
      return labels < o.labels;
    }
  };
  struct Entry {
    CellKind kind = CellKind::kCounter;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
    std::function<std::uint64_t()> probe;
  };

  static Labels sorted(Labels labels);

  mutable std::mutex mu_;  // guards the maps/deques, not cell updates
  std::map<Key, Entry> cells_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace atum::obs
