#include "obs/registry.h"

#include <algorithm>
#include <bit>

namespace atum::obs {

std::size_t Histogram::bucket_index(std::uint64_t v) {
  if (v < kSubBuckets) return static_cast<std::size_t>(v);  // 0..3 exact
  // Octave e = floor(log2 v) >= kSubBits; split into kSubBuckets linear
  // sub-buckets by the bits just below the leading one.
  const std::uint32_t e = static_cast<std::uint32_t>(std::bit_width(v)) - 1;
  const std::uint64_t sub = (v >> (e - kSubBits)) & (kSubBuckets - 1);
  return static_cast<std::size_t>((e - kSubBits + 1) * kSubBuckets + sub);
}

std::uint64_t Histogram::bucket_lower_bound(std::size_t idx) {
  if (idx < kSubBuckets) return idx;
  const std::uint64_t block = idx / kSubBuckets;  // >= 1
  const std::uint64_t sub = idx % kSubBuckets;
  const std::uint32_t e = static_cast<std::uint32_t>(block + kSubBits - 1);
  return (std::uint64_t{1} << e) + (sub << (e - kSubBits));
}

Labels Registry::sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

Counter& Registry::counter(std::string name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Key key{std::move(name), sorted(std::move(labels))};
  Entry& e = cells_[std::move(key)];
  if (e.counter == nullptr) {
    e.kind = CellKind::kCounter;
    e.counter = &counters_.emplace_back();
  }
  return *e.counter;
}

Gauge& Registry::gauge(std::string name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Key key{std::move(name), sorted(std::move(labels))};
  Entry& e = cells_[std::move(key)];
  if (e.gauge == nullptr) {
    e.kind = CellKind::kGauge;
    e.gauge = &gauges_.emplace_back();
  }
  return *e.gauge;
}

Histogram& Registry::histogram(std::string name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Key key{std::move(name), sorted(std::move(labels))};
  Entry& e = cells_[std::move(key)];
  if (e.histogram == nullptr) {
    e.kind = CellKind::kHistogram;
    e.histogram = &histograms_.emplace_back();
  }
  return *e.histogram;
}

void Registry::probe(std::string name, Labels labels, std::function<std::uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Key key{std::move(name), sorted(std::move(labels))};
  Entry& e = cells_[std::move(key)];
  e.kind = CellKind::kProbe;
  e.probe = std::move(fn);
}

Sample Registry::sample(std::int64_t at) const {
  std::lock_guard<std::mutex> lock(mu_);
  Sample s;
  s.at = at;
  s.cells.reserve(cells_.size());
  for (const auto& [key, entry] : cells_) {  // std::map — sorted, stable
    SampledCell cell;
    cell.name = key.name;
    cell.labels = key.labels;
    cell.kind = entry.kind;
    switch (entry.kind) {
      case CellKind::kCounter:
        cell.value = static_cast<std::int64_t>(entry.counter->value());
        break;
      case CellKind::kGauge:
        cell.value = entry.gauge->value();
        break;
      case CellKind::kProbe:
        cell.value = static_cast<std::int64_t>(entry.probe());
        break;
      case CellKind::kHistogram: {
        const Histogram& h = *entry.histogram;
        cell.value = static_cast<std::int64_t>(h.count());
        cell.sum = h.sum();
        for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
          const std::uint64_t n = h.bucket(i);
          if (n != 0) cell.buckets.emplace_back(Histogram::bucket_lower_bound(i), n);
        }
        break;
      }
    }
    s.cells.push_back(std::move(cell));
  }
  return s;
}

std::uint64_t Registry::value(const std::string& name, const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find(Key{name, sorted(labels)});
  if (it == cells_.end()) return 0;
  switch (it->second.kind) {
    case CellKind::kCounter:
      return it->second.counter->value();
    case CellKind::kGauge:
      return static_cast<std::uint64_t>(it->second.gauge->value());
    case CellKind::kProbe:
      return it->second.probe();
    case CellKind::kHistogram:
      return it->second.histogram->count();
  }
  return 0;
}

std::size_t Registry::cell_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_.size();
}

}  // namespace atum::obs
