#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "obs/registry.h"

namespace atum::obs {

const char* trace_point_name(TracePoint p) {
  switch (p) {
    case TracePoint::kSend: return "send";
    case TracePoint::kCoalesce: return "coalesce";
    case TracePoint::kRelay: return "relay";
    case TracePoint::kVouch: return "vouch";
    case TracePoint::kDeliver: return "deliver";
    case TracePoint::kPropose: return "propose";
    case TracePoint::kPrePrepare: return "pre_prepare";
    case TracePoint::kPrepare: return "prepare";
    case TracePoint::kCommit: return "commit";
    case TracePoint::kDecide: return "decide";
  }
  return "?";
}

void Tracer::enable(std::size_t ring_capacity, std::uint64_t key_sample) {
  ring_capacity_ = ring_capacity == 0 ? 1 : ring_capacity;
  key_sample_ = key_sample == 0 ? 1 : key_sample;
  rings_.clear();
  next_seq_ = 0;
  enabled_ = true;
}

void Tracer::record_slow(std::int64_t at, NodeId node, TracePoint point, std::uint64_t key,
                         std::uint64_t a, std::uint64_t b) {
  if (key_sample_ > 1 && key % key_sample_ != 0) return;
  Ring& ring = rings_[node];
  if (ring.buf.size() < ring_capacity_) {
    ring.buf.push_back(TraceEvent{at, next_seq_++, node, point, key, a, b});
    ++ring.total;
  } else {
    ring.buf[ring.total % ring_capacity_] = TraceEvent{at, next_seq_++, node, point, key, a, b};
    ++ring.total;
  }
}

std::size_t Tracer::retained() const {
  std::size_t n = 0;
  for (const auto& kv : rings_) n += kv.second.buf.size();
  return n;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(retained());
  for (const auto& kv : rings_) {
    out.insert(out.end(), kv.second.buf.begin(), kv.second.buf.end());
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& x, const TraceEvent& y) {
    if (x.at != y.at) return x.at < y.at;
    return x.seq < y.seq;
  });
  return out;
}

namespace {

void append(std::string& out, const char* fmt, ...) {
  char buf[192];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n), sizeof(buf) - 1));
}

void append_hist(std::string& out, const Histogram& h) {
  out += '[';
  bool first = true;
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    const std::uint64_t n = h.bucket(i);
    if (n == 0) continue;
    if (!first) out += ',';
    first = false;
    append(out, "[%" PRIu64 ",%" PRIu64 "]", Histogram::bucket_lower_bound(i), n);
  }
  out += ']';
}

}  // namespace

std::string Tracer::to_chrome_json() const {
  const std::vector<TraceEvent> events = snapshot();

  // Span extents and derived histograms, grouped per (key, node) /
  // per key. std::map keeps emission order deterministic.
  struct Extent {
    std::int64_t first = 0;
    std::int64_t last = 0;
  };
  std::map<std::pair<std::uint64_t, NodeId>, Extent> spans;
  std::map<std::uint64_t, std::uint64_t> relay_hops;  // key -> relay count
  Histogram fanout;
  for (const TraceEvent& e : events) {
    auto [it, fresh] = spans.try_emplace({e.key, e.node}, Extent{e.at, e.at});
    if (!fresh) {
      it->second.first = std::min(it->second.first, e.at);
      it->second.last = std::max(it->second.last, e.at);
    }
    if (e.point == TracePoint::kRelay) {
      ++relay_hops[e.key];
      fanout.record(e.a);
    }
  }
  Histogram hops;
  for (const auto& kv : relay_hops) hops.record(kv.second);

  std::string out;
  out.reserve(256 + events.size() * 160 + spans.size() * 160);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Process-name metadata for every node that recorded anything.
  for (const auto& [node, ring] : rings_) {
    if (ring.buf.empty()) continue;
    if (!first) out += ',';
    first = false;
    append(out,
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%" PRIu64
           ",\"args\":{\"name\":\"node %" PRIu64 "\"}}",
           node, node);
  }
  // One "X" complete span per (key, node): the window this node was
  // involved with this message. dur >= 1 so zero-width spans render.
  for (const auto& [kn, ext] : spans) {
    if (!first) out += ',';
    first = false;
    append(out,
           "{\"name\":\"key %016" PRIx64 "\",\"ph\":\"X\",\"ts\":%" PRId64 ",\"dur\":%" PRId64
           ",\"pid\":%" PRIu64 ",\"tid\":%" PRIu64 ",\"args\":{\"key\":\"%016" PRIx64 "\"}}",
           kn.first, ext.first, std::max<std::int64_t>(ext.last - ext.first, 1), kn.second,
           kn.second, kn.first);
  }
  // One instant per trace point, (ts, seq)-sorted.
  for (const TraceEvent& e : events) {
    if (!first) out += ',';
    first = false;
    append(out,
           "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%" PRId64 ",\"pid\":%" PRIu64 ",\"tid\":%" PRIu64
           ",\"s\":\"t\",\"args\":{\"key\":\"%016" PRIx64 "\",\"a\":%" PRIu64 ",\"b\":%" PRIu64
           "}}",
           trace_point_name(e.point), e.at, e.node, e.node, e.key, e.a, e.b);
  }
  out += "],\"atum_summary\":{";
  std::size_t distinct_keys = 0;
  std::uint64_t prev_key = 0;
  for (const auto& kv : spans) {
    if (distinct_keys == 0 || kv.first.first != prev_key) ++distinct_keys;
    prev_key = kv.first.first;
  }
  append(out, "\"events\":%zu,\"recorded\":%" PRIu64 ",\"keys\":%zu,", events.size(), next_seq_,
         distinct_keys);
  out += "\"hop_count\":";
  append_hist(out, hops);
  out += ",\"relay_fanout\":";
  append_hist(out, fanout);
  out += "}}";
  return out;
}

}  // namespace atum::obs
