// obs::Tracer — message-lifecycle tracing (ISSUE 9 tentpole part 2).
//
// Every traced event carries a 64-bit correlation key. For the broadcast
// path the key is the same value at every hop: a BroadcastOp's wire
// encoding IS the kGmGossip frame body relayed at every hop (static
// assert in core/atum.cpp), and prepare_group_payload derives
// GroupMessageId.seq = digest_prefix64(frame digest) — so
//   send → coalesce → relay → vouch → deliver
// all record digest_prefix64(sha256(frame)) and one key joins the full
// relay path across nodes. The SMR pipeline (propose → pre-prepare →
// prepare → commit → decide) keys on op/batch digests, a separate
// keyspace (ReconfigurableSmr wraps ops before PBFT sees them).
//
// Cost model: disabled (default) is one relaxed bool load and a branch —
// bench_micro pins it at ~0. Enabled, events go into bounded per-node
// ring buffers (oldest dropped), optionally key-sampled (keep keys with
// key % N == 0) so a 100k-message flood cannot grow memory unboundedly.
//
// Determinism: events are stamped with caller-supplied sim-time plus a
// global monotonic sequence number (single-threaded simulator => the
// sequence is reproducible), rings live in a std::map keyed by node, and
// the Chrome-trace exporter sorts by (ts, seq) — same seed => identical
// trace bytes. No wall-clock anywhere (linter-enforced).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace atum::obs {

enum class TracePoint : std::uint8_t {
  // Broadcast lifecycle (group-message keyspace).
  kSend = 0,      // origin proposes the broadcast op
  kCoalesce,      // frame absorbed into a same-tick envelope
  kRelay,         // node forwards the frame to gossip successors
  kVouch,         // digest-only copy confirmed by majority vouches
  kDeliver,       // app-level delivery
  // SMR pipeline (op/batch-digest keyspace).
  kPropose,       // op submitted to the replicated log
  kPrePrepare,    // primary assigns a sequence (batch digest)
  kPrepare,       // replica prepared (batch digest)
  kCommit,        // replica committed (batch digest)
  kDecide,        // op executed
};

const char* trace_point_name(TracePoint p);

struct TraceEvent {
  std::int64_t at = 0;       // sim-time micros
  std::uint64_t seq = 0;     // global record order (tie-break at equal ts)
  NodeId node = 0;
  TracePoint point = TracePoint::kSend;
  std::uint64_t key = 0;     // correlation key (digest prefix)
  std::uint64_t a = 0;       // point-specific detail (e.g. relay fan-out)
  std::uint64_t b = 0;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Enables recording with a per-node ring capacity. `key_sample` keeps
  // one key in N (keys with key % N == 0); 0 or 1 keeps every key.
  void enable(std::size_t ring_capacity = 4096, std::uint64_t key_sample = 1);
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  // True when `key` survives sampling — callers can skip computing
  // expensive details (digests) for keys that would be dropped anyway.
  bool keeps(std::uint64_t key) const {
    return enabled_ && (key_sample_ <= 1 || key % key_sample_ == 0);
  }

  void record(std::int64_t at, NodeId node, TracePoint point, std::uint64_t key,
              std::uint64_t a = 0, std::uint64_t b = 0) {
    if (!enabled_) return;
    record_slow(at, node, point, key, a, b);
  }

  // Total events recorded (post-sampling, pre-eviction) and currently
  // retained across all rings.
  std::uint64_t recorded() const { return next_seq_; }
  std::size_t retained() const;
  std::size_t ring_capacity() const { return ring_capacity_; }

  // All retained events merged and sorted by (at, seq).
  std::vector<TraceEvent> snapshot() const;

  // Chrome trace-event JSON (load in Perfetto / chrome://tracing):
  // per-(key, node) "X" spans covering first→last sighting, one instant
  // event per trace point, process-name metadata, and an `atum_summary`
  // object with derived hop-count and relay-fan-out histograms.
  std::string to_chrome_json() const;

 private:
  struct Ring {
    std::vector<TraceEvent> buf;
    std::uint64_t total = 0;  // lifetime writes; buf[total % cap] is next
  };

  void record_slow(std::int64_t at, NodeId node, TracePoint point, std::uint64_t key,
                   std::uint64_t a, std::uint64_t b);

  bool enabled_ = false;
  std::uint64_t key_sample_ = 1;
  std::size_t ring_capacity_ = 4096;
  std::uint64_t next_seq_ = 0;
  std::map<NodeId, Ring> rings_;  // sorted => deterministic snapshot order
};

}  // namespace atum::obs
