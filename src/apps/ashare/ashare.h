// AShare: file sharing on Atum (§4.2).
//
// Atum provides the messaging and membership layer; AShare adds:
//  * the fully replicated metadata index (soft state, §4.2 footnote 5),
//  * PUT / GET / DELETE / SEARCH with per-owner flat namespaces,
//  * randomized replication with the Figure 5 feedback loop — every node
//    replicates under-replicated files with probability (rho - c)/n until
//    rho replicas exist,
//  * integrity checks: files transfer in chunks, each verified against the
//    owner's SHA-256 digest; corrupt chunks are re-pulled from another
//    holder (§4.2.2),
//  * parallel chunked pull from all replica holders.
//
// Slice-ownership invariants (see net/message.h for the full contract):
//  * An in-flight Transfer buffers each arrived chunk as a net::Payload
//    slice of the kChunkReply frame it came in — the receive path copies
//    nothing, and the integrity check uses Payload::digest(), memoized on
//    that frame. A transfer therefore pins one reply frame per chunk
//    (~20 bytes of framing each) for its own — bounded — lifetime.
//  * GET reassembly into the contiguous result is the only copy a user GET
//    makes. Replication GETs additionally copy each piece out (to_bytes)
//    into chunks_, because the replica store lives for as long as the file
//    and long-lived stores must not pin transport frames.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "apps/ashare/metadata_index.h"
#include "core/atum.h"

namespace atum::ashare {

// lint: adhoc-counter-ok(per-request result record returned to the caller, not a metric)
struct GetStats {
  bool ok = false;
  DurationMicros elapsed = 0;
  std::size_t chunks_total = 0;
  std::size_t corrupt_chunks = 0;   // integrity-check failures re-pulled
  std::size_t holders_used = 0;
};

class AShareNode {
 public:
  using GetFn = std::function<void(Bytes content, const GetStats& stats)>;

  // rho: the replication target (§4.2.2); n_estimate: the system size used
  // by the randomized replication probability (rho - c) / n.
  AShareNode(core::AtumSystem& system, NodeId id, std::size_t rho, std::size_t n_estimate);
  ~AShareNode();
  AShareNode(const AShareNode&) = delete;
  AShareNode& operator=(const AShareNode&) = delete;

  NodeId id() const { return id_; }
  core::AtumNode& atum() { return atum_; }

  // Byzantine behavior for the §6.2 experiments: corrupts every chunk this
  // node serves (its stored replicas are rotten).
  void set_corrupt_replicas(bool corrupt) { corrupt_replicas_ = corrupt; }

  // ----- §4.2.1 interface -----
  // <PUT, u, f, c, d>: owner-only; content is chunked, digests broadcast.
  void put(const std::string& name, Bytes content, std::size_t chunk_count);
  // <DELETE, u, f>: owner-only; every node drops metadata and replicas.
  void del(const std::string& name);
  // <GET, u', f'>: parallel chunked pull from all holders with integrity
  // checks; completion via callback.
  void get(const FileKey& key, GetFn done);
  // <SEARCH, e>: local query on the replicated index.
  std::vector<FileMeta> search(const std::string& term) const { return index_.search(term); }

  const MetadataIndex& index() const { return index_; }
  bool has_replica(const FileKey& key) const { return chunks_.contains(key); }

  // Introspection for tests: visits every chunk already buffered by an
  // in-flight transfer. Used to pin the zero-copy invariant (each piece
  // aliases its kChunkReply arrival frame rather than owning a copy).
  void for_each_inflight_piece(const std::function<void(const net::Payload&)>& fn) const;

  // Pins a replica onto this node without the randomized path (benchmarks
  // deterministically constructing Fig 10/11 replica counts).
  void force_replicate(const FileKey& key, GetFn done = nullptr);

  // Disables the probabilistic background replication (Fig 9 measures bare
  // transfer latency).
  void set_auto_replication(bool on) { auto_replication_ = on; }

 private:
  struct Transfer {
    FileMeta meta;
    // Verified chunks, each a zero-copy slice of its arrival frame.
    std::vector<std::optional<net::Payload>> pieces;
    std::vector<NodeId> holders;          // pull order
    std::size_t next_holder = 0;
    std::map<std::size_t, std::size_t> attempts;  // chunk -> tries
    TimeMicros started = 0;
    GetStats stats;
    GetFn done;
    bool announce_replica = false;        // replication GET vs user GET
    std::uint64_t transfer_id = 0;
  };

  void on_deliver(NodeId origin, const net::Payload& payload);
  void on_transfer_message(const net::Message& msg);
  void replication_round(const FileKey& key);
  void start_get(const FileKey& key, GetFn done, bool announce);
  void request_chunk(std::uint64_t tid, std::size_t chunk);
  void finish_transfer(std::uint64_t tid);
  NodeId pick_holder(Transfer& t, std::size_t chunk);
  Bytes chunk_data(const FileKey& key, std::size_t idx) const;

  core::AtumSystem& sys_;
  NodeId id_;
  core::AtumNode& atum_;
  net::Transport transport_;
  Rng rng_;
  std::size_t rho_;
  std::size_t n_estimate_;
  bool corrupt_replicas_ = false;
  bool auto_replication_ = true;
  // Figure 5's "with certainty": periodically re-run the randomized
  // replication for files still below rho, so a round in which no node
  // nominated itself cannot stall the loop.
  std::unique_ptr<sim::PeriodicTimer> replication_timer_;

  MetadataIndex index_;
  // Full local replicas. Deliberately Bytes, not Payload: replicas outlive
  // any frame they arrived in, so they are copied out at store time.
  std::map<FileKey, std::vector<Bytes>> chunks_;
  std::map<std::uint64_t, Transfer> transfers_;
  std::uint64_t next_transfer_ = 1;
};

}  // namespace atum::ashare
