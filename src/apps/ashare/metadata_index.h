// The AShare metadata index (§4.2): the soft-state, fully replicated map of
// files to replica holders, sizes and chunk digests. The paper implements
// it on SQLite; this is the equivalent in-memory ordered key-value store
// with term search (owner/name substring), which is all AShare queries.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "crypto/sha256.h"

namespace atum::ashare {

// Files live in per-owner flat namespaces: identified by (owner, name).
struct FileKey {
  NodeId owner = kInvalidNode;
  std::string name;
  friend auto operator<=>(const FileKey&, const FileKey&) = default;
};

struct FileMeta {
  FileKey key;
  std::uint64_t size = 0;
  std::uint64_t chunk_size = 0;
  std::vector<crypto::Digest> chunk_digests;  // the PUT's `d` (§4.2.1)
  std::set<NodeId> holders;                   // nodes with a full replica

  std::size_t chunk_count() const { return chunk_digests.size(); }
  std::uint64_t chunk_bytes(std::size_t idx) const {
    if (idx + 1 < chunk_count()) return chunk_size;
    return size - chunk_size * (chunk_count() - 1);
  }
};

class MetadataIndex {
 public:
  // PUT: inserts (or replaces) a file's metadata; the owner is its first
  // holder. Returns false if the writer is not the namespace owner.
  bool put(const FileMeta& meta, NodeId writer);

  // DELETE: removes the entry. Owner-only.
  bool remove(const FileKey& key, NodeId writer);

  // Records that `holder` now stores a full replica.
  void add_holder(const FileKey& key, NodeId holder);
  void remove_holder_everywhere(NodeId holder);

  std::optional<FileMeta> lookup(const FileKey& key) const;
  std::size_t replica_count(const FileKey& key) const;

  // SEARCH: all files whose name contains `term` or whose owner matches a
  // numeric term (§4.2.1).
  std::vector<FileMeta> search(const std::string& term) const;

  std::size_t file_count() const { return files_.size(); }
  const std::map<FileKey, FileMeta>& all() const { return files_; }

 private:
  std::map<FileKey, FileMeta> files_;
};

}  // namespace atum::ashare
