#include "apps/ashare/ashare.h"

#include <algorithm>

namespace atum::ashare {

namespace {

// Broadcast payload tags.
constexpr std::uint8_t kMsgPut = 1;
constexpr std::uint8_t kMsgDelete = 2;
constexpr std::uint8_t kMsgReplica = 3;  // Figure 5: "x now stores f"

// Chunk transfer wire tags.
constexpr std::uint8_t kChunkOk = 1;
constexpr std::uint8_t kChunkMissing = 2;

void write_key(ByteWriter& w, const FileKey& key) {
  w.u64(key.owner);
  w.str(key.name);
}

FileKey read_key(ByteReader& r) {
  FileKey key;
  key.owner = r.u64();
  key.name = r.str();
  return key;
}

}  // namespace

AShareNode::AShareNode(core::AtumSystem& system, NodeId id, std::size_t rho,
                       std::size_t n_estimate)
    : sys_(system),
      id_(id),
      atum_(system.node(id)),
      transport_(system.network(), id),
      rng_(system.rng().next_u64() ^ (id * 31)),
      rho_(std::max<std::size_t>(rho, 1)),
      n_estimate_(std::max<std::size_t>(n_estimate, 1)) {
  atum_.set_deliver(
      [this](NodeId origin, const net::Payload& payload) { on_deliver(origin, payload); });
  transport_.listen({net::MsgType::kChunkRequest, net::MsgType::kChunkReply},
                    [this](const net::Message& m) { on_transfer_message(m); });
  replication_timer_ = std::make_unique<sim::PeriodicTimer>(
      sys_.simulator(), seconds(10.0), [this] {
        if (!auto_replication_) return;
        for (const auto& [key, meta] : index_.all()) {
          if (meta.holders.size() < rho_) replication_round(key);
        }
      });
}

AShareNode::~AShareNode() { transport_.close(); }

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

void AShareNode::put(const std::string& name, Bytes content, std::size_t chunk_count) {
  chunk_count = std::clamp<std::size_t>(chunk_count, 1, std::max<std::size_t>(content.size(), 1));
  FileKey key{id_, name};
  std::uint64_t chunk_size =
      (content.size() + chunk_count - 1) / chunk_count;  // last chunk may be short
  if (chunk_size == 0) chunk_size = 1;

  FileMeta meta;
  meta.key = key;
  meta.size = content.size();
  meta.chunk_size = chunk_size;
  std::vector<Bytes> pieces;
  for (std::size_t off = 0; off < content.size(); off += chunk_size) {
    std::size_t len = std::min<std::size_t>(chunk_size, content.size() - off);
    Bytes piece(content.begin() + static_cast<long>(off),
                content.begin() + static_cast<long>(off + len));
    meta.chunk_digests.push_back(crypto::sha256(piece));
    pieces.push_back(std::move(piece));
  }
  if (pieces.empty()) {  // empty file: one empty chunk
    meta.chunk_digests.push_back(crypto::sha256(Bytes{}));
    pieces.push_back({});
  }
  chunks_[key] = std::move(pieces);

  // §4.2.2: the owner broadcasts (u, f, d); everyone updates their index.
  ByteWriter w;
  w.u8(kMsgPut);
  write_key(w, key);
  w.u64(meta.size);
  w.u64(meta.chunk_size);
  w.varint(meta.chunk_digests.size());
  for (const auto& d : meta.chunk_digests) w.raw(d.data(), d.size());
  atum_.broadcast(w.take());

  index_.put(meta, id_);  // local effect is immediate
}

void AShareNode::del(const std::string& name) {
  FileKey key{id_, name};
  ByteWriter w;
  w.u8(kMsgDelete);
  write_key(w, key);
  atum_.broadcast(w.take());
  index_.remove(key, id_);
  chunks_.erase(key);
}

void AShareNode::get(const FileKey& key, GetFn done) {
  start_get(key, std::move(done), false);
}

void AShareNode::for_each_inflight_piece(
    const std::function<void(const net::Payload&)>& fn) const {
  for (const auto& [tid, t] : transfers_) {
    for (const auto& p : t.pieces) {
      if (p.has_value()) fn(*p);
    }
  }
}

void AShareNode::force_replicate(const FileKey& key, GetFn done) {
  start_get(key, std::move(done), true);
}

// ---------------------------------------------------------------------------
// Broadcast delivery: index maintenance + replication loop
// ---------------------------------------------------------------------------

void AShareNode::on_deliver(NodeId origin, const net::Payload& payload) {
  try {
    ByteReader r(payload);
    std::uint8_t tag = r.u8();
    switch (tag) {
      case kMsgPut: {
        FileMeta meta;
        meta.key = read_key(r);
        meta.size = r.u64();
        meta.chunk_size = r.u64();
        std::uint64_t n = r.varint();
        if (n > (1u << 20)) return;
        // Reject internally inconsistent metadata from a faulty owner: the
        // digest count must be exactly ceil(size / chunk_size). Without
        // this, a PUT advertising size = 2^60 over two tiny chunks makes a
        // later GET reserve 2^60 bytes on completion (bad_alloc kills the
        // node), and chunk_size = 0 divides by zero in chunk planning.
        if (meta.chunk_size == 0) return;
        // Overflow-proof ceil: size/cs + (size%cs != 0). The additive form
        // (size + cs - 1) wraps for adversarial 2^63-scale values. An empty
        // file is legitimately one empty chunk (see put()).
        const std::uint64_t expected_chunks =
            meta.size == 0 ? 1
                           : meta.size / meta.chunk_size +
                                 static_cast<std::uint64_t>(meta.size % meta.chunk_size != 0);
        if (n != expected_chunks) return;
        for (std::uint64_t i = 0; i < n; ++i) {
          crypto::Digest d;
          r.raw(d.data(), d.size());
          meta.chunk_digests.push_back(d);
        }
        if (!index_.put(meta, origin)) return;  // cross-namespace write
        if (auto_replication_) replication_round(meta.key);
        break;
      }
      case kMsgDelete: {
        FileKey key = read_key(r);
        if (index_.remove(key, origin)) {
          chunks_.erase(key);
        }
        break;
      }
      case kMsgReplica: {
        FileKey key = read_key(r);
        // Figure 5 feedback: record the new holder, then re-run the
        // randomized replication if the file is still under-replicated.
        index_.add_holder(key, origin);
        if (auto_replication_) replication_round(key);
        break;
      }
      default:
        break;
    }
  } catch (const SerdeError&) {
    // Malformed broadcast from a faulty node.
  }
}

void AShareNode::replication_round(const FileKey& key) {
  auto meta = index_.lookup(key);
  if (!meta || chunks_.contains(key)) return;
  std::size_t c = meta->holders.size();
  if (c >= rho_) return;  // loop deactivates at rho replicas
  double p = static_cast<double>(rho_ - c) / static_cast<double>(n_estimate_);
  if (!rng_.chance(p)) return;
  // Nominate ourselves: replicate via a normal GET, then announce.
  force_replicate(key);
}

// ---------------------------------------------------------------------------
// GET: parallel chunked pull with integrity checks
// ---------------------------------------------------------------------------

void AShareNode::start_get(const FileKey& key, GetFn done, bool announce) {
  auto meta = index_.lookup(key);
  if (!meta || meta->holders.empty()) {
    if (done) done({}, GetStats{});
    return;
  }
  std::uint64_t tid = next_transfer_++;
  Transfer& t = transfers_[tid];
  t.meta = *meta;
  t.pieces.assign(meta->chunk_count(), std::nullopt);
  t.holders.assign(meta->holders.begin(), meta->holders.end());
  std::erase(t.holders, id_);
  rng_.shuffle(t.holders);
  t.started = sys_.simulator().now();
  t.stats.chunks_total = meta->chunk_count();
  t.done = std::move(done);
  t.announce_replica = announce;
  t.transfer_id = tid;

  if (t.holders.empty()) {
    // Only we hold it (or we are the owner): nothing to transfer.
    transfers_.erase(tid);
    return;
  }
  t.stats.holders_used = t.holders.size();
  // §4.2.2 benefit (1): chunks pull in parallel from all holders.
  for (std::size_t c = 0; c < t.pieces.size(); ++c) request_chunk(tid, c);
}

NodeId AShareNode::pick_holder(Transfer& t, std::size_t chunk) {
  // Round-robin start offset spreads chunks over holders; retries move on
  // to the next holder (the §4.2.2 re-pull rule).
  std::size_t attempt = t.attempts[chunk]++;
  return t.holders[(chunk + attempt) % t.holders.size()];
}

void AShareNode::request_chunk(std::uint64_t tid, std::size_t chunk) {
  auto it = transfers_.find(tid);
  if (it == transfers_.end()) return;
  Transfer& t = it->second;
  if (t.attempts[chunk] > 4 * t.holders.size()) {
    // Give up: deliver failure.
    GetStats stats = t.stats;
    stats.ok = false;
    stats.elapsed = sys_.simulator().now() - t.started;
    GetFn done = std::move(t.done);
    transfers_.erase(tid);
    if (done) done({}, stats);
    return;
  }
  NodeId holder = pick_holder(t, chunk);
  ByteWriter w;
  w.u64(tid);
  write_key(w, t.meta.key);
  w.varint(chunk);
  transport_.send(holder, net::MsgType::kChunkRequest, w.take());
}

Bytes AShareNode::chunk_data(const FileKey& key, std::size_t idx) const {
  auto it = chunks_.find(key);
  if (it == chunks_.end() || idx >= it->second.size()) return {};
  Bytes data = it->second[idx];
  if (corrupt_replicas_ && !data.empty()) {
    data[0] ^= 0xFF;  // rot the replica (§6.2 Byzantine scenario)
  }
  return data;
}

void AShareNode::on_transfer_message(const net::Message& msg) {
  try {
    if (msg.type == net::MsgType::kChunkRequest) {
      ByteReader r(msg.payload);
      std::uint64_t tid = r.u64();
      FileKey key = read_key(r);
      std::size_t chunk = static_cast<std::size_t>(r.varint());

      ByteWriter w;
      w.u64(tid);
      write_key(w, key);
      w.varint(chunk);
      if (chunks_.contains(key) && chunk < chunks_[key].size()) {
        w.u8(kChunkOk);
        w.bytes(chunk_data(key, chunk));
      } else {
        w.u8(kChunkMissing);
      }
      transport_.send(msg.from, net::MsgType::kChunkReply, w.take());
      return;
    }

    // Chunk reply.
    ByteReader r(msg.payload);
    std::uint64_t tid = r.u64();
    FileKey key = read_key(r);
    std::size_t chunk = static_cast<std::size_t>(r.varint());
    std::uint8_t status = r.u8();

    auto it = transfers_.find(tid);
    if (it == transfers_.end() || !(it->second.meta.key == key)) return;
    Transfer& t = it->second;
    if (chunk >= t.pieces.size() || t.pieces[chunk].has_value()) return;

    bool valid = false;
    net::Payload data;
    if (status == kChunkOk) {
      // Zero-copy: the chunk stays a slice of the arriving reply frame.
      data = msg.payload.slice(r.bytes_view());
      // §4.2.2 integrity check against the owner's digest; memoized on the
      // frame, so nothing downstream ever re-hashes this chunk.
      valid = data.digest() == t.meta.chunk_digests[chunk];
    }
    if (!valid) {
      if (status == kChunkOk) ++t.stats.corrupt_chunks;
      request_chunk(tid, chunk);  // re-pull from another holder
      return;
    }
    t.pieces[chunk] = std::move(data);
    bool complete = std::all_of(t.pieces.begin(), t.pieces.end(),
                                [](const auto& p) { return p.has_value(); });
    if (complete) finish_transfer(tid);
  } catch (const SerdeError&) {
    // Garbage from a faulty peer.
  }
}

void AShareNode::finish_transfer(std::uint64_t tid) {
  auto it = transfers_.find(tid);
  if (it == transfers_.end()) return;
  Transfer t = std::move(it->second);
  transfers_.erase(it);

  // Reassembly is the only copy a GET makes: each piece is still a slice
  // of its arrival frame until this loop materializes the file. Reserve
  // what was actually received, not meta.size: the advertised size is
  // owner-controlled and a faulty owner can make it astronomically larger
  // than the bytes it serves.
  std::size_t received = 0;
  for (const auto& p : t.pieces) received += p->size();
  Bytes content;
  content.reserve(received);
  for (const auto& p : t.pieces) {
    content.insert(content.end(), p->begin(), p->end());
  }
  t.stats.ok = true;
  t.stats.elapsed = sys_.simulator().now() - t.started;

  if (t.announce_replica) {
    // We are now a holder: store the replica and run the Figure 5 loop by
    // announcing it system-wide. The store copies each piece out — replicas
    // live for as long as the file, and a long-lived store keeping frame
    // slices would pin every reply frame forever (net/message.h LIFETIME).
    std::vector<Bytes> stored;
    stored.reserve(t.pieces.size());
    for (const auto& p : t.pieces) stored.push_back(p->to_bytes());
    chunks_[t.meta.key] = std::move(stored);
    index_.add_holder(t.meta.key, id_);
    ByteWriter w;
    w.u8(kMsgReplica);
    write_key(w, t.meta.key);
    atum_.broadcast(w.take());
  }
  if (t.done) t.done(std::move(content), t.stats);
}

}  // namespace atum::ashare
