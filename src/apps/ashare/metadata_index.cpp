#include "apps/ashare/metadata_index.h"

namespace atum::ashare {

bool MetadataIndex::put(const FileMeta& meta, NodeId writer) {
  if (writer != meta.key.owner) return false;  // foreign namespaces are read-only
  FileMeta copy = meta;
  copy.holders.insert(meta.key.owner);  // the owner always holds a replica
  files_[meta.key] = std::move(copy);
  return true;
}

bool MetadataIndex::remove(const FileKey& key, NodeId writer) {
  if (writer != key.owner) return false;
  return files_.erase(key) > 0;
}

void MetadataIndex::add_holder(const FileKey& key, NodeId holder) {
  auto it = files_.find(key);
  if (it != files_.end()) it->second.holders.insert(holder);
}

void MetadataIndex::remove_holder_everywhere(NodeId holder) {
  for (auto& [key, meta] : files_) {
    if (key.owner != holder) meta.holders.erase(holder);
  }
}

std::optional<FileMeta> MetadataIndex::lookup(const FileKey& key) const {
  auto it = files_.find(key);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

std::size_t MetadataIndex::replica_count(const FileKey& key) const {
  auto it = files_.find(key);
  return it == files_.end() ? 0 : it->second.holders.size();
}

std::vector<FileMeta> MetadataIndex::search(const std::string& term) const {
  std::vector<FileMeta> out;
  for (const auto& [key, meta] : files_) {
    bool match = key.name.find(term) != std::string::npos;
    if (!match && !term.empty()) {
      match = std::to_string(key.owner) == term;
    }
    if (match) out.push_back(meta);
  }
  return out;
}

}  // namespace atum::ashare
