// ASub: topic-based publish/subscribe on Atum (§4.1).
//
// Topic-based pub/sub is essentially group communication: a topic IS a
// group. The four operations map one-to-one onto the Atum API —
//   create_topic -> bootstrap,  subscribe -> join,
//   unsubscribe  -> leave,      publish   -> broadcast —
// so ASub is the thin layer the paper describes, plus a tiny directory
// mapping topics to contact nodes (the out-of-band rendezvous every
// pub/sub deployment needs).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/atum.h"

namespace atum::asub {

// One topic = one Atum instance (its own vgroup overlay).
class Topic {
 public:
  // The event is a refcounted view shared with the relay machinery; copy
  // via to_bytes() to keep it past the callback.
  using EventFn = std::function<void(NodeId publisher, const net::Payload& event)>;

  Topic(std::string name, core::Params params, net::NetworkConfig net_config,
        std::uint64_t seed);

  const std::string& name() const { return name_; }
  core::AtumSystem& system() { return system_; }

  // create_topic: the creator bootstraps the topic's Atum instance and
  // becomes the first contact node.
  void create(NodeId creator);

  // subscribe: joins the topic's group via any current subscriber.
  void subscribe(NodeId subscriber);
  // unsubscribe: leaves the group.
  void unsubscribe(NodeId subscriber);
  // publish: broadcasts the event to all subscribers.
  void publish(NodeId publisher, Bytes event);

  void set_event_handler(NodeId subscriber, EventFn fn);

  bool is_subscribed(NodeId n);
  std::size_t subscriber_count() const;

  // Drives the simulation until pending operations settle (test/demo aid).
  void settle(DurationMicros duration);

 private:
  std::string name_;
  core::AtumSystem system_;
  std::optional<NodeId> contact_;
  std::map<NodeId, EventFn> handlers_;
};

// Directory of topics (one Atum instance each).
class ASubService {
 public:
  ASubService(core::Params params, net::NetworkConfig net_config, std::uint64_t seed = 0xa5b5ULL);

  Topic& create_topic(const std::string& name, NodeId creator);
  Topic& topic(const std::string& name);
  bool has_topic(const std::string& name) const { return topics_.contains(name); }
  std::size_t topic_count() const { return topics_.size(); }

 private:
  core::Params params_;
  net::NetworkConfig net_config_;
  std::uint64_t seed_;
  std::map<std::string, std::unique_ptr<Topic>> topics_;
};

}  // namespace atum::asub
