#include "apps/asub/asub.h"

#include <stdexcept>

namespace atum::asub {

Topic::Topic(std::string name, core::Params params, net::NetworkConfig net_config,
             std::uint64_t seed)
    : name_(std::move(name)), system_(params, std::move(net_config), seed) {}

void Topic::create(NodeId creator) {
  if (contact_) throw std::logic_error("Topic: already created");
  auto& node = system_.add_node(creator);
  node.set_deliver([this, creator](NodeId publisher, const net::Payload& event) {
    if (auto it = handlers_.find(creator); it != handlers_.end() && it->second) {
      it->second(publisher, event);
    }
  });
  node.bootstrap();
  contact_ = creator;
}

void Topic::subscribe(NodeId subscriber) {
  if (!contact_) throw std::logic_error("Topic: not created yet");
  auto& node = system_.add_node(subscriber);
  node.set_deliver([this, subscriber](NodeId publisher, const net::Payload& event) {
    if (auto it = handlers_.find(subscriber); it != handlers_.end() && it->second) {
      it->second(publisher, event);
    }
  });
  node.join(*contact_);
}

void Topic::unsubscribe(NodeId subscriber) { system_.node(subscriber).leave(); }

void Topic::publish(NodeId publisher, Bytes event) {
  system_.node(publisher).broadcast(std::move(event));
}

void Topic::set_event_handler(NodeId subscriber, EventFn fn) {
  handlers_[subscriber] = std::move(fn);
}

bool Topic::is_subscribed(NodeId n) {
  return system_.has_node(n) && system_.node(n).joined();
}

std::size_t Topic::subscriber_count() const {
  // Counted through the deployment's ground-truth view.
  std::size_t count = 0;
  for (const auto& [g, members] : const_cast<Topic*>(this)->system_.group_map()) {
    count += members.size();
  }
  return count;
}

void Topic::settle(DurationMicros duration) {
  system_.simulator().run_until(system_.simulator().now() + duration);
}

ASubService::ASubService(core::Params params, net::NetworkConfig net_config, std::uint64_t seed)
    : params_(params), net_config_(std::move(net_config)), seed_(seed) {}

Topic& ASubService::create_topic(const std::string& name, NodeId creator) {
  auto it = topics_.find(name);
  if (it != topics_.end()) throw std::invalid_argument("ASub: topic exists");
  auto t = std::make_unique<Topic>(name, params_, net_config_, seed_ ^ topics_.size());
  t->create(creator);
  return *topics_.emplace(name, std::move(t)).first->second;
}

Topic& ASubService::topic(const std::string& name) {
  auto it = topics_.find(name);
  if (it == topics_.end()) throw std::invalid_argument("ASub: unknown topic");
  return *it->second;
}

}  // namespace atum::asub
