// AStream: data streaming on Atum (§4.3).
//
// Two tiers:
//  1. Atum reliably disseminates per-chunk SHA-256 digests (small
//     authentication metadata). The application's `forward` callback tunes
//     this tier: flooding for latency, one or two H-graph cycles for
//     throughput (the Figure 12 Single/Double scenarios).
//  2. A lightweight multicast forest carries the actual stream data:
//     a deterministic function picks one H-graph cycle and a direction;
//     every node adopts f+1 random parents from its neighbor vgroup in
//     that direction (nodes neighboring the source adopt the source
//     itself), guaranteeing at least one correct parent. Shortcut parents
//     from the other neighbor vgroups bound the path length. Data moves
//     push-first-chunk, then pull: each node pulls successive chunks from
//     its first working parent and fails over on timeout or on a digest
//     mismatch.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/atum.h"

namespace atum::astream {

struct StreamConfig {
  std::uint64_t stream_id = 1;
  // Pull retry deadline before failing over to the next parent.
  DurationMicros pull_timeout = seconds(1.0);
  // Frame-pinning control for the long-lived chunk store (`verified_`).
  // A verified chunk is normally kept as a zero-copy slice of the
  // kStreamChunk frame it arrived in, which pins that whole frame for the
  // lifetime of the store — the documented Payload LIFETIME hazard, since
  // verified_ keeps every chunk of the stream. Chunks of size <=
  // copy_out_threshold are instead copied out (Payload::to_bytes) into an
  // owned buffer at store time, releasing the frame: small chunks are
  // cheap to copy and proportionally pin the most framing. Chunks above
  // the threshold stay slices (copying them is the cost the zero-copy
  // path exists to avoid; their ~20-byte framing overhead is negligible).
  // 0 (default) keeps today's pure zero-copy behavior; long-lived
  // deployments that archive streams should set it (e.g. to a few KiB).
  std::size_t copy_out_threshold = 0;
  // Bounded chunk store (ROADMAP: verified_ otherwise keeps every chunk of
  // the stream forever). When > 0, chunks more than store_window behind the
  // stream head — the furthest of this node's own delivery horizon and the
  // furthest chunk any child has pulled — are evicted from the store
  // (verified data, digests, unverified buffers and parked pulls alike),
  // never past the node's own in-order delivery horizon. A child lagging
  // more than the window behind finds its pull unanswerable here and fails
  // over to another parent (the §4.3 mechanism), exactly as if this parent
  // had crashed; pick a window comfortably above the pull pipeline depth.
  // 0 = unbounded (archive semantics).
  std::size_t store_window = 0;
};

class AStreamNode {
 public:
  // Called once per chunk, in order, after digest verification. The data is
  // a refcounted view of the verified chunk store (shared with pulls being
  // served); copy via to_bytes() to keep it past the callback.
  using ChunkFn = std::function<void(std::uint64_t seq, const net::Payload& data)>;

  AStreamNode(core::AtumSystem& system, NodeId id, StreamConfig config);
  ~AStreamNode();
  AStreamNode(const AStreamNode&) = delete;
  AStreamNode& operator=(const AStreamNode&) = delete;

  NodeId id() const { return id_; }

  // Byzantine behavior (§4.3): serves corrupted chunks to its children.
  void set_corrupt_chunks(bool corrupt) { corrupt_chunks_ = corrupt; }

  // Builds this node's parent set for a stream rooted at `source` from its
  // local overlay view, and registers with the chosen parents.
  void join_stream(NodeId source);

  // Source side: disseminate the next chunk (tier 1 digest broadcast +
  // tier 2 push of the first chunk / serving pulls).
  void stream_chunk(Bytes data);

  void set_chunk_handler(ChunkFn fn) { on_chunk_ = std::move(fn); }
  // Fires when a chunk's tier-1 digest arrives (instrumentation: isolates
  // second-tier latency = verified delivery - digest arrival).
  using DigestFn = std::function<void(std::uint64_t seq)>;
  void set_digest_handler(DigestFn fn) { on_digest_ = std::move(fn); }

  std::uint64_t chunks_delivered() const { return delivered_up_to_; }
  const std::vector<NodeId>& parents() const { return parents_; }
  std::size_t child_count() const { return children_.size(); }
  // Windowing introspection (store_window tests/benches).
  std::size_t store_size() const { return verified_.size(); }
  std::size_t digest_count() const { return digests_.size(); }
  std::uint64_t eviction_floor() const { return eviction_floor_; }

 private:
  void on_deliver(NodeId origin, const net::Payload& payload);  // tier-1 digests
  void on_stream_message(const net::Message& msg);
  void accept_chunk(std::uint64_t seq, net::Payload data, NodeId from);
  void try_verify_buffered();
  // Sends seq's frame to every child (when include_children) and to any
  // pulls that raced ahead of it, sharing one frozen buffer per fan-out.
  void fan_out_chunk(std::uint64_t seq, bool include_children);
  void pull_next();
  void arm_pull_timer(std::uint64_t seq);
  // Applies StreamConfig::store_window: advances eviction_floor_ and drops
  // every per-chunk structure at or below it.
  void maybe_evict_store();
  net::Payload outgoing_chunk(std::uint64_t seq) const;
  // stream_id + seq + chunk body, the frame pushed down the tree.
  Bytes encode_chunk_frame(std::uint64_t seq) const;

  core::AtumSystem& sys_;
  NodeId id_;
  core::AtumNode& atum_;
  net::Transport transport_;
  Rng rng_;
  StreamConfig config_;
  bool corrupt_chunks_ = false;

  NodeId source_ = kInvalidNode;
  std::vector<NodeId> parents_;          // f+1 from the tree vgroup + shortcuts
  std::size_t preferred_parent_ = 0;
  std::set<NodeId> children_;

  std::map<std::uint64_t, crypto::Digest> digests_;   // tier-1 metadata
  // Chunk stores hold refcounted views: a received chunk stays a slice of
  // the frame it arrived in (zero-copy receive path). HAZARD: verified_ is
  // a long-lived store — every retained slice pins its whole arrival frame
  // for the stream's lifetime. StreamConfig::copy_out_threshold bounds
  // this by copying small chunks out at store time; large chunks stay
  // slices because their framing overhead is proportionally tiny.
  std::map<std::uint64_t, net::Payload> verified_;    // chunk store (serves pulls)
  std::map<std::uint64_t, std::pair<net::Payload, NodeId>> unverified_;
  std::map<std::uint64_t, std::vector<NodeId>> pending_pulls_;  // seq -> waiting children
  std::uint64_t delivered_up_to_ = 0;    // all chunks <= this are delivered
  std::uint64_t source_seq_ = 0;
  // Furthest chunk any child pulled or was pushed; with delivered_up_to_
  // this defines the stream head the store_window trails behind.
  std::uint64_t furthest_child_pull_ = 0;
  std::uint64_t eviction_floor_ = 0;     // chunks <= this were evicted
  sim::EventId pull_timer_ = 0;
  ChunkFn on_chunk_;
  DigestFn on_digest_;
};

}  // namespace atum::astream
