#include "apps/astream/astream.h"

#include <algorithm>

namespace atum::astream {

namespace {

// Tier-1 broadcast tag.
constexpr std::uint8_t kMsgDigest = 0x51;

// Tier-2 wire tags (kStreamPush payload).
constexpr std::uint8_t kAdopt = 1;  // child -> parent registration

std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

AStreamNode::AStreamNode(core::AtumSystem& system, NodeId id, StreamConfig config)
    : sys_(system),
      id_(id),
      atum_(system.node(id)),
      transport_(system.network(), id),
      rng_(system.rng().next_u64() ^ (id * 77)),
      config_(config) {
  atum_.set_deliver(
      [this](NodeId origin, const net::Payload& payload) { on_deliver(origin, payload); });
  transport_.listen({net::MsgType::kStreamPush, net::MsgType::kStreamPull,
                     net::MsgType::kStreamChunk},
                    [this](const net::Message& m) { on_stream_message(m); });
}

AStreamNode::~AStreamNode() {
  sys_.simulator().cancel(pull_timer_);
  transport_.close();
}

// ---------------------------------------------------------------------------
// Forest construction (§4.3)
// ---------------------------------------------------------------------------

void AStreamNode::join_stream(NodeId source) {
  source_ = source;
  parents_.clear();
  if (id_ == source) return;  // the root has no parents

  const auto& vg = atum_.vgroup();
  // Deterministic cycle + direction that every node derives identically.
  std::size_t w = static_cast<std::size_t>(mix64(config_.stream_id) % vg.cycle_count());
  int d = static_cast<int>(mix64(config_.stream_id ^ 0xd1d1) % 2);

  // f+1 parents guarantee one correct parent when the vgroup is robust.
  std::size_t f = sys_.params().engine == smr::EngineKind::kSync
                      ? smr::sync_max_faults(vg.size())
                      : smr::async_max_faults(vg.size());

  const group::GroupView& tree_group =
      d == 0 ? vg.cycle(w).predecessor : vg.cycle(w).successor;
  // "The nodes which are neighbors with the source choose the source as
  // their single parent": both the source's own vgroup and the vgroup
  // adjacent to it on the chosen cycle connect directly to the root.
  if (vg.has_member(source) || tree_group.has_member(source)) {
    // Adjacent to the root: the source is the single parent (§4.3).
    parents_.push_back(source);
  } else {
    if (tree_group.known() && !tree_group.members.empty()) {
      std::vector<NodeId> pool = tree_group.members;
      rng_.shuffle(pool);
      for (std::size_t i = 0; i < pool.size() && parents_.size() < f + 1; ++i) {
        if (pool[i] != id_) parents_.push_back(pool[i]);
      }
    }
    // Shortcut parents from the other neighboring vgroups (§4.3), used when
    // the node is far from the source along the chosen cycle.
    for (const auto& ref : vg.neighbor_refs()) {
      if (ref.cycle == w) continue;
      auto view = vg.find_group(ref.group);
      if (!view || view->members.empty()) continue;
      NodeId pick = view->members[static_cast<std::size_t>(
          rng_.next_below(view->members.size()))];
      if (pick != id_ && pick != source &&
          std::find(parents_.begin(), parents_.end(), pick) == parents_.end()) {
        parents_.push_back(pick);
      }
    }
  }
  if (parents_.empty() && vg.size() > 1) {
    // Degenerate single-group overlay: any peer can serve as parent.
    for (NodeId n : vg.members()) {
      if (n != id_ && parents_.size() < f + 1) parents_.push_back(n);
    }
  }

  // Register with every parent so push can find us.
  ByteWriter w2;
  w2.u8(kAdopt);
  w2.u64(config_.stream_id);
  net::Payload adopt(w2.take());  // one buffer for all parents
  for (NodeId p : parents_) {
    transport_.send(p, net::MsgType::kStreamPush, adopt);
  }
}

// ---------------------------------------------------------------------------
// Source side
// ---------------------------------------------------------------------------

void AStreamNode::stream_chunk(Bytes data) {
  std::uint64_t seq = ++source_seq_;
  net::Payload chunk(std::move(data));  // frozen once, shared from here on
  crypto::Digest d = chunk.digest();    // memoized on the chunk's buffer
  digests_[seq] = d;
  verified_[seq] = std::move(chunk);
  delivered_up_to_ = seq;
  if (on_chunk_) on_chunk_(seq, verified_[seq]);  // the source delivers locally too

  // Tier 1: reliable digest dissemination through Atum.
  ByteWriter w;
  w.u8(kMsgDigest);
  w.u64(config_.stream_id);
  w.u64(seq);
  w.raw(d.data(), d.size());
  atum_.broadcast(w.take());

  // Tier 2: push the chunk down the tree; children pull what follows.
  fan_out_chunk(seq, /*include_children=*/true);
  maybe_evict_store();
}

net::Payload AStreamNode::outgoing_chunk(std::uint64_t seq) const {
  auto it = verified_.find(seq);
  if (it == verified_.end()) return {};
  if (corrupt_chunks_ && !it->second.empty()) {
    Bytes data = it->second.to_bytes();  // a corrupted copy, never the store
    data[0] ^= 0xFF;
    return net::Payload(std::move(data));
  }
  return it->second;  // share the stored chunk
}

Bytes AStreamNode::encode_chunk_frame(std::uint64_t seq) const {
  ByteWriter w;
  w.u64(config_.stream_id);
  w.u64(seq);
  net::Payload chunk = outgoing_chunk(seq);
  w.bytes(chunk.data(), chunk.size());
  return w.take();
}

void AStreamNode::fan_out_chunk(std::uint64_t seq, bool include_children) {
  auto it = pending_pulls_.find(seq);
  bool push = include_children && !children_.empty();
  if (!push && it == pending_pulls_.end()) return;
  // Encode + freeze the chunk frame once; the whole subtree fan-out (the
  // dissemination tree's hot path) shares one buffer.
  net::Payload frame(encode_chunk_frame(seq));
  if (push) {
    furthest_child_pull_ = std::max(furthest_child_pull_, seq);
    for (NodeId child : children_) {
      transport_.send(child, net::MsgType::kStreamChunk, frame);
    }
  }
  if (it != pending_pulls_.end()) {
    for (NodeId child : it->second) {
      transport_.send(child, net::MsgType::kStreamChunk, frame);
    }
    pending_pulls_.erase(it);
  }
}

// ---------------------------------------------------------------------------
// Tier 1: digests via Atum
// ---------------------------------------------------------------------------

void AStreamNode::on_deliver(NodeId, const net::Payload& payload) {
  try {
    ByteReader r(payload);
    if (r.u8() != kMsgDigest) return;
    std::uint64_t stream = r.u64();
    std::uint64_t seq = r.u64();
    crypto::Digest d;
    r.raw(d.data(), d.size());
    if (stream != config_.stream_id) return;
    digests_[seq] = d;
    if (on_digest_) on_digest_(seq);
    try_verify_buffered();
    // Knowing a chunk exists lets us pull it (§4.3: a node that fails to
    // obtain chunks after receiving the digests tries its parents).
    pull_next();
  } catch (const SerdeError&) {
  }
}

// ---------------------------------------------------------------------------
// Tier 2: push-pull data plane
// ---------------------------------------------------------------------------

void AStreamNode::on_stream_message(const net::Message& msg) {
  try {
    switch (msg.type) {
      case net::MsgType::kStreamPush: {  // adoption
        ByteReader r(msg.payload);
        if (r.u8() != kAdopt) return;
        if (r.u64() != config_.stream_id) return;
        children_.insert(msg.from);
        break;
      }
      case net::MsgType::kStreamPull: {
        ByteReader r(msg.payload);
        std::uint64_t stream = r.u64();
        std::uint64_t seq = r.u64();
        if (stream != config_.stream_id) return;
        // The pull horizon feeds store eviction, so it only advances as far
        // as this node can corroborate the stream has reached (its own
        // horizon, the source counter, the furthest tier-1 digest): a
        // Byzantine child pulling seq 2^60 must not evict the whole store.
        std::uint64_t known_head = std::max(delivered_up_to_, source_seq_);
        if (!digests_.empty()) known_head = std::max(known_head, digests_.rbegin()->first);
        furthest_child_pull_ = std::max(furthest_child_pull_, std::min(seq, known_head));
        // An evicted chunk is gone for good here: stay silent and let the
        // child's pull timeout fail it over to another parent (§4.3).
        if (config_.store_window > 0 && seq <= eviction_floor_) return;
        if (verified_.contains(seq)) {
          ByteWriter w;
          w.u64(config_.stream_id);
          w.u64(seq);
          net::Payload chunk = outgoing_chunk(seq);
          w.bytes(chunk.data(), chunk.size());
          transport_.send(msg.from, net::MsgType::kStreamChunk, w.take());
        } else {
          pending_pulls_[seq].push_back(msg.from);  // reply once it arrives
        }
        break;
      }
      case net::MsgType::kStreamChunk: {
        ByteReader r(msg.payload);
        std::uint64_t stream = r.u64();
        std::uint64_t seq = r.u64();
        // Zero-copy: the chunk stays a slice of the arriving frame.
        net::Payload data = msg.payload.slice(r.bytes_view());
        if (stream != config_.stream_id) return;
        accept_chunk(seq, std::move(data), msg.from);
        break;
      }
      default:
        break;
    }
  } catch (const SerdeError&) {
  }
}

void AStreamNode::accept_chunk(std::uint64_t seq, net::Payload data, NodeId from) {
  if (verified_.contains(seq)) return;
  unverified_[seq] = {std::move(data), from};
  try_verify_buffered();
}

void AStreamNode::try_verify_buffered() {
  bool progressed = false;
  for (auto it = unverified_.begin(); it != unverified_.end();) {
    auto dit = digests_.find(it->first);
    if (dit == digests_.end()) {
      ++it;
      continue;  // digest not yet delivered by tier 1
    }
    auto& [data, from] = it->second;
    // digest() is memoized on the arrival frame: when a parent pushed one
    // frozen frame to several children, the first child to verify pays the
    // hash and the rest reuse it.
    if (data.digest() != dit->second) {
      // Corrupt chunk: the §4.3 fail-over — demote this parent and re-pull.
      auto pit = std::find(parents_.begin(), parents_.end(), from);
      if (pit != parents_.end() && parents_.size() > 1) {
        preferred_parent_ = (static_cast<std::size_t>(pit - parents_.begin()) + 1)
                            % parents_.size();
      }
      std::uint64_t seq = it->first;
      it = unverified_.erase(it);
      if (!parents_.empty()) {
        ByteWriter w;
        w.u64(config_.stream_id);
        w.u64(seq);
        transport_.send(parents_[preferred_parent_], net::MsgType::kStreamPull, w.take());
      }
      continue;
    }
    // Verified: store, deliver in order, serve pending pulls, push chunk 1
    // (the push phase applies only to the first chunk of the stream).
    // Small chunks are copied out of their arrival frame at store time
    // (copy_out_threshold) so the long-lived store does not pin it.
    std::uint64_t seq = it->first;
    if (data.size() <= config_.copy_out_threshold && data.frame_size() > data.size()) {
      verified_[seq] = net::Payload(data.to_bytes());
    } else {
      verified_[seq] = std::move(data);
    }
    it = unverified_.erase(it);
    fan_out_chunk(seq, /*include_children=*/seq == 1);
    progressed = true;
  }
  while (verified_.contains(delivered_up_to_ + 1)) {
    ++delivered_up_to_;
    if (on_chunk_) on_chunk_(delivered_up_to_, verified_[delivered_up_to_]);
  }
  maybe_evict_store();
  if (progressed) pull_next();
}

void AStreamNode::maybe_evict_store() {
  if (config_.store_window == 0) return;
  const std::uint64_t head = std::max(delivered_up_to_, furthest_child_pull_);
  if (head <= config_.store_window) return;
  // Never evict past the node's own in-order delivery horizon: a fast
  // child's pulls must not discard chunks this node has yet to deliver
  // (and whose digests pull_next still needs).
  const std::uint64_t floor = std::min(head - config_.store_window, delivered_up_to_);
  if (floor <= eviction_floor_) return;
  eviction_floor_ = floor;
  auto sweep = [floor](auto& m) { m.erase(m.begin(), m.upper_bound(floor)); };
  sweep(verified_);
  sweep(digests_);
  sweep(unverified_);
  sweep(pending_pulls_);
}

void AStreamNode::pull_next() {
  if (id_ == source_ || parents_.empty()) return;
  std::uint64_t want = delivered_up_to_ + 1;
  if (!digests_.contains(want)) return;      // nothing announced yet
  if (verified_.contains(want) || unverified_.contains(want)) return;
  ByteWriter w;
  w.u64(config_.stream_id);
  w.u64(want);
  transport_.send(parents_[preferred_parent_], net::MsgType::kStreamPull, w.take());
  arm_pull_timer(want);
}

void AStreamNode::arm_pull_timer(std::uint64_t seq) {
  sys_.simulator().cancel(pull_timer_);
  pull_timer_ = sys_.simulator().schedule_after(config_.pull_timeout, [this, seq] {
    if (delivered_up_to_ >= seq) return;  // arrived in time
    // Fail over to the next parent and retry (§4.3).
    if (!parents_.empty()) {
      preferred_parent_ = (preferred_parent_ + 1) % parents_.size();
    }
    unverified_.erase(seq);
    pull_next();
  });
}

}  // namespace atum::astream
