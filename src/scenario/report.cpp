#include "scenario/report.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace atum::scenario {

namespace {

// Minimal deterministic JSON assembly: append-only, fixed key order, fixed
// "%.4f" float formatting (identical doubles => identical bytes; all inputs
// are derived from the seeded simulation).
class Json {
 public:
  void u64(const char* key, std::uint64_t v) {
    sep();
    append("\"%s\":%" PRIu64, key, v);
  }
  void i64(const char* key, std::int64_t v) {
    sep();
    append("\"%s\":%" PRId64, key, v);
  }
  void f64(const char* key, double v) {
    sep();
    append("\"%s\":%.4f", key, v);
  }
  void str(const char* key, const std::string& v) {
    sep();
    append("\"%s\":", key);
    quote(v);
  }
  void open(const char* key, char bracket) {
    sep();
    if (key != nullptr) append("\"%s\":", key);
    out_.push_back(bracket);
    fresh_ = true;
  }
  void close(char bracket) {
    out_.push_back(bracket);
    fresh_ = false;
  }
  std::string take() { return std::move(out_); }

 private:
  void sep() {
    if (!fresh_) out_.push_back(',');
    fresh_ = false;
  }
  void quote(const std::string& v) {
    out_.push_back('"');
    for (char c : v) {
      if (c == '"' || c == '\\') out_.push_back('\\');
      out_.push_back(c);
    }
    out_.push_back('"');
  }
  void append(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    char buf[160];
    va_list args;
    va_start(args, fmt);
    int n = std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    if (n > 0) out_.append(buf, static_cast<std::size_t>(n));
  }

  std::string out_;
  bool fresh_ = true;
};

}  // namespace

const PhaseMetrics* ScenarioReport::phase(const std::string& name) const {
  for (const PhaseMetrics& p : phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

double ScenarioReport::total_delivery_ratio() const {
  std::uint64_t expected = 0;
  std::uint64_t got = 0;
  for (const PhaseMetrics& p : phases) {
    expected += p.deliveries_expected;
    got += p.deliveries;
  }
  return expected == 0 ? 1.0 : static_cast<double>(got) / static_cast<double>(expected);
}

std::string ScenarioReport::to_json() const {
  Json j;
  j.open(nullptr, '{');
  j.str("scenario", scenario);
  j.u64("seed", seed);
  j.u64("initial_nodes", initial_nodes);
  j.f64("sim_seconds", to_seconds(sim_end));
  j.u64("events_executed", events_executed);
  j.u64("total_msgs_sent", total_msgs_sent);
  j.u64("total_bytes_sent", total_bytes_sent);
  j.u64("total_sha256_digests", total_sha256_digests);
  j.f64("total_delivery_ratio", total_delivery_ratio());
  if (metrics_interval > 0) {
    j.f64("metrics_interval_s", to_seconds(metrics_interval));
    j.open("time_series", '[');
    for (const TimeSeriesPoint& p : time_series) {
      j.open(nullptr, '{');
      j.f64("t_s", to_seconds(p.at));
      j.f64("delivery_ratio", p.delivery_ratio);
      j.u64("broadcasts_sent", p.broadcasts_sent);
      j.u64("deliveries", p.deliveries);
      j.u64("msgs_sent", p.msgs_sent);
      j.u64("msgs_delivered", p.msgs_delivered);
      j.u64("msgs_dropped", p.msgs_dropped);
      j.u64("bytes_sent", p.bytes_sent);
      j.u64("sha256_digests", p.sha256_digests);
      j.u64("joined", p.joined);
      j.u64("groups", p.groups);
      j.u64("live_events", p.live_events);
      j.u64("slot_count", p.slot_count);
      j.u64("flows", p.flows);
      j.close('}');
    }
    j.close(']');
  }
  j.open("phases", '[');
  for (const PhaseMetrics& p : phases) {
    j.open(nullptr, '{');
    j.str("name", p.name);
    j.f64("start_s", to_seconds(p.start));
    j.f64("end_s", to_seconds(p.end));
    j.u64("broadcasts_sent", p.broadcasts_sent);
    j.u64("deliveries_expected", p.deliveries_expected);
    j.u64("deliveries", p.deliveries);
    j.f64("delivery_ratio", p.delivery_ratio());
    j.u64("broadcasts_fully_delivered", p.broadcasts_fully_delivered);
    j.u64("latency_samples", p.latency_samples);
    j.f64("latency_ms_p50", p.latency_ms_p50);
    j.f64("latency_ms_p95", p.latency_ms_p95);
    j.f64("latency_ms_p99", p.latency_ms_p99);
    j.f64("latency_ms_max", p.latency_ms_max);
    j.u64("joins_requested", p.joins_requested);
    j.u64("joins_completed", p.joins_completed);
    j.u64("leaves_requested", p.leaves_requested);
    j.u64("leaves_completed", p.leaves_completed);
    j.u64("leaves_forced", p.leaves_forced);
    j.u64("stream_chunks_sent", p.stream_chunks_sent);
    j.u64("stream_deliveries_expected", p.stream_deliveries_expected);
    j.u64("stream_deliveries", p.stream_deliveries);
    j.u64("byzantine_converted", p.byzantine_converted);
    j.u64("groups_killed", p.groups_killed);
    j.u64("nodes_killed", p.nodes_killed);
    j.u64("msgs_sent", p.msgs_sent);
    j.u64("msgs_delivered", p.msgs_delivered);
    j.u64("msgs_dropped", p.msgs_dropped);
    j.u64("msgs_blocked", p.msgs_blocked);
    j.u64("bytes_sent", p.bytes_sent);
    j.u64("sha256_digests", p.sha256_digests);
    j.u64("joined_correct_end", p.joined_correct_end);
    j.u64("correct_evicted_end", p.correct_evicted_end);
    j.u64("group_count_end", p.group_count_end);
    j.u64("live_events_end", p.live_events_end);
    j.u64("slot_count_end", p.slot_count_end);
    j.u64("flow_count_end", p.flow_count_end);
    j.i64("heal_to_full_delivery_us", p.heal_to_full_delivery);
    j.close('}');
  }
  j.close(']');
  j.close('}');
  std::string out = j.take();
  out.push_back('\n');
  return out;
}

}  // namespace atum::scenario
