// Declarative scenario model: the workload + fault-injection layer the
// evaluation harness (ISSUE 4 / ROADMAP "as many scenarios as you can
// imagine") composes experiments from.
//
// A ScenarioSpec is a list of named phases. Each phase combines
//  * sustained loads — churn (joins + leaves per minute), broadcast traffic,
//    AStream chunk traffic — scheduled at fixed intervals for the phase's
//    duration, and
//  * one-shot fault primitives applied at phase start — a network partition
//    along vgroup boundaries, a heal, link degradation (loss + latency) on a
//    node sample, Byzantine conversion of correct nodes, correlated
//    whole-vgroup crashes, a flash crowd of joiners.
//
// Everything is driven through the discrete-event Simulator with all
// randomness derived from `seed`, so a scenario is bit-reproducible: the
// same spec and seed produce an identical metrics report (ScenarioDriver),
// which the determinism tests pin byte-for-byte.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/atum.h"
#include "core/params.h"
#include "net/network.h"

namespace atum::scenario {

// ---------------------------------------------------------------------------
// Sustained loads (scheduled at fixed intervals across the phase)
// ---------------------------------------------------------------------------

struct ChurnLoad {
  double joins_per_minute = 0.0;   // fresh nodes joining via random contacts
  double leaves_per_minute = 0.0;  // random correct members announcing leave
  bool any() const { return joins_per_minute > 0.0 || leaves_per_minute > 0.0; }
};

struct BroadcastLoad {
  double per_second = 0.0;           // broadcasts from random correct origins
  std::size_t payload_bytes = 128;   // padded scenario header (>= 20 bytes)
  bool any() const { return per_second > 0.0; }
};

// Per-app traffic: an AStream source pushing chunks through the two-tier
// dissemination forest. The driver instantiates AStreamNode on every node
// alive when the first streaming phase starts (use with moderate system
// sizes). `store_window` feeds StreamConfig::store_window so long scenarios
// can bound the per-node chunk store.
struct StreamLoad {
  double chunks_per_second = 0.0;
  std::size_t chunk_bytes = 1024;
  std::size_t store_window = 0;  // 0 = unbounded chunk store
  bool any() const { return chunks_per_second > 0.0; }
};

// ---------------------------------------------------------------------------
// One-shot fault primitives (applied at phase start)
// ---------------------------------------------------------------------------

// Partition the network in two along vgroup boundaries: whole vgroups are
// moved to the minority side until it holds ~minority_fraction of the
// joined nodes. Splitting along group boundaries keeps every vgroup's SMR
// quorum on one side — modelling a rack/datacenter cut rather than a
// per-node lottery (a split vgroup could not vouch group messages at all).
struct PartitionSplit {
  double minority_fraction = 0.25;
};

// Degrade the links of `nodes` randomly chosen live nodes (loss probability
// and added one-way latency on every link touching them).
struct DegradeLinks {
  std::size_t nodes = 0;
  double drop = 0.0;
  DurationMicros extra_latency = 0;
};

// Convert a fraction of the live correct nodes to a faulty behavior
// (AtumNode::set_behavior): kByzantineEvictor keeps heartbeating but goes
// protocol-silent and proposes evictions; kSilent also stops heartbeating
// and is eventually evicted.
struct MakeByzantine {
  double fraction = 0.0;
  core::NodeBehavior behavior = core::NodeBehavior::kByzantineEvictor;
};

struct Phase {
  std::string name;
  DurationMicros duration = seconds(60.0);

  // Sustained loads.
  ChurnLoad churn;
  BroadcastLoad broadcasts;
  StreamLoad stream;
  // Flash crowd: this many fresh joiners spread evenly across the phase
  // (on top of churn.joins_per_minute).
  std::size_t flash_joiners = 0;

  // One-shot primitives, applied at phase start in this order: heal /
  // restore first (clearing the previous phase's faults), then new faults.
  bool heal = false;           // remove the active partition
  bool restore_links = false;  // clear all link/node degradation
  std::optional<PartitionSplit> partition;
  std::optional<DegradeLinks> degrade;
  std::optional<MakeByzantine> byzantine;
  // Correlated failure: crash this many whole vgroups (every member stops).
  std::size_t kill_groups = 0;
};

// ---------------------------------------------------------------------------
// Expectations (evaluated by ScenarioDriver::check / atum_scenario --assert)
// ---------------------------------------------------------------------------

struct Expectation {
  std::string phase;  // phase the expectation applies to
  // Absolute floor on the phase's broadcast delivery ratio (ignored if < 0).
  double min_delivery_ratio = -1.0;
  // Relative floor: ratio(phase) >= ratio(at_least_phase) - tolerance.
  // Empty = unused. This is how partition_heal asserts recovery to at least
  // pre-partition delivery levels.
  std::string at_least_phase;
  // Floor on completed/requested joins in the phase (ignored if < 0).
  double min_join_ratio = -1.0;
  // Floor on stream chunk deliveries/expected in the phase (ignored if < 0).
  double min_stream_ratio = -1.0;
  // Ceiling on leaves that needed the force-stop fallback (ignored if < 0).
  // 0 asserts the leave-confirmation gap stays closed at the protocol level:
  // no leaver ever had to give up waiting for its vgroup's confirmation.
  std::int64_t max_forced_leaves = -1;
  double tolerance = 0.02;
};

struct ScenarioSpec {
  std::string name = "scenario";
  std::size_t nodes = 10'000;   // instantly deployed before phase 1
  std::uint64_t seed = 1;
  core::Params params;
  net::NetworkConfig net = net::NetworkConfig::datacenter();
  // Gossip relay policy for every node: empty = flood all cycles
  // (latency-optimal, highest volume); otherwise forward_cycles(set).
  std::set<std::size_t> relay_cycles;
  // Settle time after the last phase so in-flight deliveries/joins count.
  DurationMicros drain = seconds(45.0);
  std::vector<Phase> phases;
  std::vector<Expectation> expectations;

  // ----- telemetry (ISSUE 9) -----
  // > 0: sample the system's obs::Registry every interval of sim-time and
  // emit the samples as the report's `time_series` section (interval
  // deltas for counters, point-in-time gauges). 0 = off; the report then
  // serializes exactly as before, so pre-telemetry byte baselines hold.
  DurationMicros metrics_interval = 0;
  // Enable message-lifecycle tracing (obs::Tracer) for the whole run; the
  // CLI dumps the Chrome trace JSON with --trace-out.
  bool trace = false;
  // Keep one trace key in N (0/1 = every key) and the per-node ring size;
  // both bound trace memory under broadcast floods.
  std::uint64_t trace_sample = 1;
  std::size_t trace_ring = 4096;

  // Throws std::invalid_argument on nonsense (no phases, duplicate phase
  // names, negative rates/durations, fractions outside [0,1], expectations
  // referencing unknown phases, undersized broadcast payloads).
  void validate() const;
};

}  // namespace atum::scenario
