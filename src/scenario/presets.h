// Built-in scenario presets: the workloads the paper's evaluation implies
// but hand-coded benches cannot compose — flash crowds (Fig 6), diurnal
// churn (Fig 7's rates modulated over a day), partitions + heals,
// correlated whole-vgroup failures, Byzantine conversion storms (Figs
// 10-11's adversary applied mid-run), and streaming under churn (Fig 12
// meets Fig 7). Each preset carries its own expectations so
// `atum_scenario <preset> --assert` doubles as an acceptance gate in CI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/spec.h"

namespace atum::scenario {

struct PresetInfo {
  std::string name;
  std::string summary;
  std::size_t default_nodes;
};

// All built-in presets, in a stable order.
std::vector<PresetInfo> preset_list();

// Builds a preset spec. nodes == 0 or seed == 0 pick the preset defaults.
// Throws std::invalid_argument for unknown names.
ScenarioSpec make_preset(const std::string& name, std::size_t nodes = 0,
                         std::uint64_t seed = 0);

// The Figure 7 churn probe expressed as a scenario (bench_fig7_churn runs
// on this): sustained leave+rejoin churn at `per_minute` ops/min for
// `window`, judged sustainable when >= 90% of the requested operations
// complete by the end of the drain.
ScenarioSpec churn_probe(std::size_t nodes, double per_minute, smr::EngineKind engine,
                         std::size_t rwl, std::size_t hc, DurationMicros window,
                         std::uint64_t seed);

}  // namespace atum::scenario
