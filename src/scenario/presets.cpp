#include "scenario/presets.h"

#include <stdexcept>

namespace atum::scenario {

namespace {

// Expectation builder (aggregate init would need every field spelled out
// under -Werror=missing-field-initializers).
Expectation expect_delivery(std::string phase, double min_ratio) {
  Expectation e;
  e.phase = std::move(phase);
  e.min_delivery_ratio = min_ratio;
  return e;
}

Expectation expect_joins(std::string phase, double min_ratio) {
  Expectation e;
  e.phase = std::move(phase);
  e.min_join_ratio = min_ratio;
  return e;
}

Expectation expect_recovery(std::string phase, std::string at_least_phase, double min_ratio) {
  Expectation e;
  e.phase = std::move(phase);
  e.min_delivery_ratio = min_ratio;
  e.at_least_phase = std::move(at_least_phase);
  return e;
}

// Shared baseline for the 10k-node presets: async engine (PBFT is
// quiescent between requests, so big systems simulate fast), relays
// restricted to two H-graph cycles (deterministic ring coverage on cycle 0
// plus one redundant cycle to route around failures without flood volume),
// HMAC verification off (scenario runs probe protocol dynamics, not MACs).
ScenarioSpec base_spec(const std::string& name, std::size_t nodes, std::uint64_t seed) {
  ScenarioSpec s;
  s.name = name;
  s.nodes = nodes;
  s.seed = seed;
  s.params.hc = 3;
  s.params.rwl = 6;
  s.params.gmin = 7;
  s.params.gmax = 14;
  s.params.engine = smr::EngineKind::kAsync;
  s.params.heartbeat_period = seconds(10.0);
  s.params.verify_signatures = false;
  s.relay_cycles = {0, 1};
  s.drain = seconds(45.0);
  return s;
}

ScenarioSpec flash_crowd(std::size_t nodes, std::uint64_t seed) {
  ScenarioSpec s = base_spec("flash_crowd", nodes, seed);
  Phase warmup;
  warmup.name = "warmup";
  warmup.duration = seconds(30.0);
  warmup.broadcasts.per_second = 0.2;
  Phase flash;
  flash.name = "flash";
  flash.duration = seconds(120.0);
  flash.flash_joiners = nodes / 5;  // +20% population in two minutes (Fig 6)
  flash.broadcasts.per_second = 0.2;
  Phase steady;
  steady.name = "steady";
  steady.duration = seconds(60.0);
  steady.broadcasts.per_second = 0.2;
  s.phases = {warmup, flash, steady};
  s.expectations = {
      expect_delivery("warmup", 0.95),
      expect_joins("flash", 0.90),
      expect_delivery("steady", 0.95),
  };
  return s;
}

ScenarioSpec diurnal_churn(std::size_t nodes, std::uint64_t seed) {
  ScenarioSpec s = base_spec("diurnal_churn", nodes, seed);
  const double day_rate = static_cast<double>(nodes) * 0.02;    // 2%/min (Fig 7 territory)
  const double night_rate = static_cast<double>(nodes) * 0.002; // 0.2%/min
  auto phase = [&](const char* name, double rate) {
    Phase p;
    p.name = name;
    p.duration = seconds(120.0);
    p.churn.joins_per_minute = rate;
    p.churn.leaves_per_minute = rate;
    p.broadcasts.per_second = 0.2;
    return p;
  };
  s.phases = {phase("day", day_rate), phase("night", night_rate), phase("day2", day_rate)};
  s.expectations = {
      expect_delivery("day", 0.90),
      expect_joins("day", 0.90),
      expect_delivery("night", 0.95),
      expect_delivery("day2", 0.90),
      expect_joins("day2", 0.90),
  };
  return s;
}

ScenarioSpec partition_heal(std::size_t nodes, std::uint64_t seed) {
  ScenarioSpec s = base_spec("partition_heal", nodes, seed);
  Phase baseline;
  baseline.name = "baseline";
  baseline.duration = seconds(60.0);
  baseline.broadcasts.per_second = 0.25;
  Phase partition;
  partition.name = "partition";
  partition.duration = seconds(90.0);
  PartitionSplit split;
  split.minority_fraction = 0.30;
  partition.partition = split;
  partition.broadcasts.per_second = 0.25;
  Phase heal;
  heal.name = "heal";
  heal.duration = seconds(90.0);
  heal.heal = true;
  heal.broadcasts.per_second = 0.25;
  s.phases = {baseline, partition, heal};
  s.expectations = {
      expect_delivery("baseline", 0.95),
      // The acceptance criterion: delivery recovers to pre-partition levels.
      expect_recovery("heal", "baseline", 0.95),
  };
  return s;
}

ScenarioSpec correlated_group_failure(std::size_t nodes, std::uint64_t seed) {
  ScenarioSpec s = base_spec("correlated_group_failure", nodes, seed);
  Phase baseline;
  baseline.name = "baseline";
  baseline.duration = seconds(45.0);
  baseline.broadcasts.per_second = 0.25;
  Phase failure;
  failure.name = "failure";
  failure.duration = seconds(90.0);
  // ~1% of the vgroups crash wholesale (a rack dies); survivors must route
  // gossip around the dead ring arcs via the redundant cycle.
  failure.kill_groups = std::max<std::size_t>(2, nodes / 1000);
  failure.broadcasts.per_second = 0.25;
  s.phases = {baseline, failure};
  s.expectations = {
      expect_delivery("baseline", 0.95),
      expect_delivery("failure", 0.90),
  };
  return s;
}

ScenarioSpec byzantine_storm(std::size_t nodes, std::uint64_t seed) {
  ScenarioSpec s = base_spec("byzantine_storm", nodes, seed);
  Phase calm;
  calm.name = "calm";
  calm.duration = seconds(45.0);
  calm.broadcasts.per_second = 0.25;
  Phase storm;
  storm.name = "storm";
  storm.duration = seconds(120.0);
  // 15% of the correct population converts to the heartbeating evictor
  // (§6.1.3) mid-run: protocol-silent, never evicted, poisoning its vgroup.
  MakeByzantine conv;
  conv.fraction = 0.15;
  conv.behavior = core::NodeBehavior::kByzantineEvictor;
  storm.byzantine = conv;
  storm.broadcasts.per_second = 0.25;
  s.phases = {calm, storm};
  s.expectations = {
      expect_delivery("calm", 0.95),
      expect_delivery("storm", 0.80),
  };
  return s;
}

// The checkpoint soak: sustained churn with two partition/heal rounds, long
// enough that every vgroup instance crosses several checkpoint boundaries
// (checkpoint_interval is shrunk to 2 so even short-lived epochs do). The
// distinctive expectation is max_forced_leaves = 0 in every phase: with the
// f+1 removal-notice path closing the leave-confirmation gap, no leaver —
// not even one announcing from the minority side of a cut — should ever
// need the scenario driver's force-stop fallback.
ScenarioSpec long_haul_churn(std::size_t nodes, std::uint64_t seed) {
  ScenarioSpec s = base_spec("long_haul_churn", nodes, seed);
  s.params.checkpoint_interval = 2;
  const double churn_rate = static_cast<double>(nodes) * 0.01;  // 1%/min
  auto churn_phase = [&](const char* name) {
    Phase p;
    p.name = name;
    p.duration = seconds(120.0);
    p.churn.joins_per_minute = churn_rate;
    p.churn.leaves_per_minute = churn_rate;
    p.broadcasts.per_second = 0.2;
    return p;
  };
  Phase soak = churn_phase("soak");
  Phase cut1 = churn_phase("cut1");
  PartitionSplit split;
  split.minority_fraction = 0.25;
  cut1.partition = split;
  Phase heal1 = churn_phase("heal1");
  heal1.heal = true;
  Phase cut2 = churn_phase("cut2");
  cut2.partition = split;
  Phase heal2 = churn_phase("heal2");
  heal2.heal = true;
  s.phases = {soak, cut1, heal1, cut2, heal2};

  auto no_forced = [](const char* phase) {
    Expectation e;
    e.phase = phase;
    e.max_forced_leaves = 0;
    return e;
  };
  s.expectations = {
      expect_delivery("soak", 0.90),
      expect_joins("soak", 0.90),
      // The acceptance criterion after each cut: delivery recovers to the
      // pre-partition level, and churn keeps completing.
      expect_recovery("heal1", "soak", 0.90),
      expect_recovery("heal2", "soak", 0.90),
      expect_joins("heal2", 0.85),
      no_forced("soak"),
      no_forced("cut1"),
      no_forced("heal1"),
      no_forced("cut2"),
      no_forced("heal2"),
  };
  return s;
}

ScenarioSpec stream_under_churn(std::size_t nodes, std::uint64_t seed) {
  ScenarioSpec s = base_spec("stream_under_churn", nodes, seed);
  Phase stream;
  stream.name = "stream";
  stream.duration = seconds(120.0);
  stream.stream.chunks_per_second = 0.5;
  stream.stream.chunk_bytes = 4096;
  stream.stream.store_window = 64;  // bounded per-node chunk store
  stream.churn.joins_per_minute = static_cast<double>(nodes) * 0.01;
  stream.churn.leaves_per_minute = static_cast<double>(nodes) * 0.01;
  stream.broadcasts.per_second = 0.1;
  s.phases = {stream};
  Expectation stream_exp = expect_delivery("stream", 0.90);
  stream_exp.min_stream_ratio = 0.90;
  s.expectations = {stream_exp};
  return s;
}

struct PresetEntry {
  PresetInfo info;
  ScenarioSpec (*make)(std::size_t nodes, std::uint64_t seed);
  std::uint64_t default_seed;
};

const std::vector<PresetEntry>& registry() {
  static const std::vector<PresetEntry> kPresets = {
      {{"flash_crowd", "Fig 6 growth burst: +20% joiners in 2 min under broadcast load",
        10'000},
       &flash_crowd,
       0xF1A5ULL},
      {{"diurnal_churn", "day/night/day churn cycle (2%/min vs 0.2%/min) under broadcast load",
        10'000},
       &diurnal_churn,
       0xD147ULL},
      {{"partition_heal", "30% of vgroups partitioned away for 90 s, then healed", 10'000},
       &partition_heal,
       0x9A47ULL},
      {{"correlated_group_failure", "~1% of vgroups crash wholesale; survivors re-route",
        10'000},
       &correlated_group_failure,
       0xC0FAULL},
      {{"byzantine_storm", "15% of correct nodes turn Byzantine evictor mid-run", 10'000},
       &byzantine_storm,
       0xB2575ULL},
      {{"stream_under_churn", "AStream source at 0.5 chunk/s while 1%/min churns", 2'000},
       &stream_under_churn,
       0x57EAULL},
      {{"long_haul_churn",
        "checkpoint soak: 1%/min churn + two partition/heal rounds, zero forced leaves",
        10'000},
       &long_haul_churn,
       0x10A617ULL},
  };
  return kPresets;
}

}  // namespace

std::vector<PresetInfo> preset_list() {
  std::vector<PresetInfo> out;
  for (const PresetEntry& e : registry()) out.push_back(e.info);
  return out;
}

ScenarioSpec make_preset(const std::string& name, std::size_t nodes, std::uint64_t seed) {
  for (const PresetEntry& e : registry()) {
    if (e.info.name == name) {
      return e.make(nodes == 0 ? e.info.default_nodes : nodes,
                    seed == 0 ? e.default_seed : seed);
    }
  }
  throw std::invalid_argument("unknown scenario preset '" + name + "'");
}

ScenarioSpec churn_probe(std::size_t nodes, double per_minute, smr::EngineKind engine,
                         std::size_t rwl, std::size_t hc, DurationMicros window,
                         std::uint64_t seed) {
  ScenarioSpec s;
  s.name = "churn_probe";
  s.nodes = nodes;
  s.seed = seed;
  s.params.hc = hc;
  s.params.rwl = rwl;
  s.params.gmin = 7;
  s.params.gmax = 14;
  s.params.engine = engine;
  s.params.round_duration = seconds(1.0);
  // Fig 7 probes churn throughput, not failure detection; keep heartbeats
  // out of the way.
  s.params.heartbeat_period = seconds(600.0);
  s.params.verify_signatures = false;
  s.relay_cycles = {0};
  s.drain = seconds(90.0);  // same settle window the hand-coded bench used
  Phase churn;
  churn.name = "churn";
  churn.duration = window;
  churn.churn.joins_per_minute = per_minute;
  churn.churn.leaves_per_minute = per_minute;
  s.phases = {churn};
  return s;
}

}  // namespace atum::scenario
