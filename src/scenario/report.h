// Scenario metrics report: what ScenarioDriver::run() returns and what the
// atum_scenario CLI serializes. Deliveries, latencies, joins and leaves are
// attributed to the phase that INITIATED them (the phase the broadcast was
// sent in / the join was requested in), even when completion lands in a
// later phase or the drain — a partition phase therefore owns the losses it
// caused, and the heal phase owns the recovery.
//
// to_json() is byte-deterministic: fixed key order, fixed float formatting,
// and every value derived from the seeded simulation. Two runs of the same
// spec + seed serialize identically (pinned by test_scenario).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace atum::scenario {

struct PhaseMetrics {
  std::string name;
  TimeMicros start = 0;  // sim time
  TimeMicros end = 0;

  // Broadcast workload (attributed to the sending phase).
  std::uint64_t broadcasts_sent = 0;
  std::uint64_t deliveries_expected = 0;  // sum over broadcasts of eligible receivers at send
  std::uint64_t deliveries = 0;
  std::uint64_t broadcasts_fully_delivered = 0;  // reached every eligible receiver
  // Broadcast delivery latency (origin send -> node deliver), milliseconds.
  std::size_t latency_samples = 0;
  double latency_ms_p50 = 0.0;
  double latency_ms_p95 = 0.0;
  double latency_ms_p99 = 0.0;
  double latency_ms_max = 0.0;

  // Churn (attributed to the requesting phase).
  std::uint64_t joins_requested = 0;
  std::uint64_t joins_completed = 0;
  std::uint64_t leaves_requested = 0;
  std::uint64_t leaves_completed = 0;
  // Leaves that exhausted the announce/retry fallback and force-stopped the
  // node (the client-side zombie escape hatch). With the f+1 removal-notice
  // path closing the leave-confirmation gap at the protocol level, a
  // healthy run keeps this at zero — long_haul_churn asserts it.
  std::uint64_t leaves_forced = 0;

  // Stream workload (attributed to the chunk's sending phase).
  std::uint64_t stream_chunks_sent = 0;
  std::uint64_t stream_deliveries_expected = 0;
  std::uint64_t stream_deliveries = 0;

  // Fault primitives applied in this phase.
  std::uint64_t byzantine_converted = 0;
  std::uint64_t groups_killed = 0;
  std::uint64_t nodes_killed = 0;

  // Network activity during the phase (deltas of SimNetwork counters).
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_delivered = 0;
  std::uint64_t msgs_dropped = 0;
  std::uint64_t msgs_blocked = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t sha256_digests = 0;

  // End-of-phase gauges (memory/pressure proxies).
  std::uint64_t joined_correct_end = 0;
  std::uint64_t correct_evicted_end = 0;  // correct nodes expelled without asking to leave
  std::uint64_t group_count_end = 0;
  std::uint64_t live_events_end = 0;
  std::uint64_t slot_count_end = 0;  // simulator arena = peak concurrent events so far
  std::uint64_t flow_count_end = 0;  // after an exact sweep

  // Heal phases only: sim time from the heal to the first post-heal
  // broadcast that reached every eligible receiver. -1 elsewhere / never.
  DurationMicros heal_to_full_delivery = -1;

  double delivery_ratio() const {
    return deliveries_expected == 0
               ? 1.0
               : static_cast<double>(deliveries) / static_cast<double>(deliveries_expected);
  }
  double join_ratio() const {
    return joins_requested == 0
               ? 1.0
               : static_cast<double>(joins_completed) / static_cast<double>(joins_requested);
  }
  double stream_ratio() const {
    return stream_deliveries_expected == 0
               ? 1.0
               : static_cast<double>(stream_deliveries) /
                     static_cast<double>(stream_deliveries_expected);
  }
};

// One registry sample (spec.metrics_interval): counters as deltas over the
// interval, gauges as point-in-time reads. delivery_ratio is the windowed
// scenario-broadcast delivery rate, computed over broadcasts that settled
// during the interval (sent at least one full interval ago, so in-flight
// deliveries don't read as losses); intervals in which nothing settled
// carry the previous ratio forward — a partition therefore reads as a
// sustained 1.0 -> ~0.5 -> 1.0 dip instead of send-tick noise.
struct TimeSeriesPoint {
  TimeMicros at = 0;
  double delivery_ratio = 1.0;
  // Interval deltas (registry counters / probes).
  std::uint64_t broadcasts_sent = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_delivered = 0;
  std::uint64_t msgs_dropped = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t sha256_digests = 0;
  // Point-in-time gauges.
  std::uint64_t joined = 0;       // eligible correct receivers
  std::uint64_t groups = 0;       // vgroup count
  std::uint64_t live_events = 0;  // simulator queue depth
  std::uint64_t slot_count = 0;   // simulator arena (peak concurrency)
  std::uint64_t flows = 0;        // network flow table (after exact sweep)
};

struct ScenarioReport {
  std::string scenario;
  std::uint64_t seed = 0;
  std::uint64_t initial_nodes = 0;
  std::vector<PhaseMetrics> phases;

  // Registry telemetry (empty / 0 unless spec.metrics_interval > 0; the
  // section is omitted from the JSON entirely when off so pre-telemetry
  // report baselines stay byte-identical).
  DurationMicros metrics_interval = 0;
  std::vector<TimeSeriesPoint> time_series;

  // Whole-run summary.
  TimeMicros sim_end = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t total_msgs_sent = 0;
  std::uint64_t total_bytes_sent = 0;
  std::uint64_t total_sha256_digests = 0;

  const PhaseMetrics* phase(const std::string& name) const;
  double total_delivery_ratio() const;

  // Deterministic serialization (see file comment).
  std::string to_json() const;
};

}  // namespace atum::scenario
