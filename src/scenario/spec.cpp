#include "scenario/spec.h"

#include <set>
#include <stdexcept>
#include <string>

namespace atum::scenario {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("ScenarioSpec: " + what);
}

void check_fraction(double v, const char* what) {
  if (!(v >= 0.0 && v <= 1.0)) fail(std::string(what) + " must be in [0,1]");
}

void check_rate(double v, const char* what) {
  if (!(v >= 0.0)) fail(std::string(what) + " must be >= 0");
}

}  // namespace

void ScenarioSpec::validate() const {
  if (nodes < 2) fail("needs at least 2 nodes");
  if (phases.empty()) fail("needs at least one phase");
  if (drain < 0) fail("negative drain");
  if (metrics_interval < 0) fail("negative metrics_interval");
  if (trace_ring == 0) fail("trace_ring must be > 0");
  params.validate();
  net.validate();
  for (std::size_t c : relay_cycles) {
    if (c >= params.hc) fail("relay cycle index out of range");
  }

  std::set<std::string> names;
  for (const Phase& p : phases) {
    if (p.name.empty()) fail("phase without a name");
    if (!names.insert(p.name).second) fail("duplicate phase name '" + p.name + "'");
    if (p.duration <= 0) fail("phase '" + p.name + "' has non-positive duration");
    check_rate(p.churn.joins_per_minute, "churn.joins_per_minute");
    check_rate(p.churn.leaves_per_minute, "churn.leaves_per_minute");
    check_rate(p.broadcasts.per_second, "broadcasts.per_second");
    check_rate(p.stream.chunks_per_second, "stream.chunks_per_second");
    // The scenario header (magic + index + send time) needs 20 bytes.
    if (p.broadcasts.any() && p.broadcasts.payload_bytes < 20) {
      fail("broadcast payload_bytes must be >= 20");
    }
    if (p.stream.any() && p.stream.chunk_bytes == 0) fail("stream chunk_bytes must be > 0");
    if (p.partition) check_fraction(p.partition->minority_fraction, "minority_fraction");
    if (p.degrade) check_fraction(p.degrade->drop, "degrade.drop");
    if (p.degrade && p.degrade->extra_latency < 0) fail("negative degrade.extra_latency");
    if (p.byzantine) check_fraction(p.byzantine->fraction, "byzantine.fraction");
  }
  for (const Expectation& e : expectations) {
    if (!names.contains(e.phase)) fail("expectation references unknown phase '" + e.phase + "'");
    if (!e.at_least_phase.empty() && !names.contains(e.at_least_phase)) {
      fail("expectation references unknown phase '" + e.at_least_phase + "'");
    }
  }
}

}  // namespace atum::scenario
