#include "scenario/driver.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "common/serde.h"
#include "crypto/sha256.h"
#include "obs/registry.h"
#include "overlay/gossip.h"

namespace atum::scenario {

namespace {

// Scenario broadcast header: magic + broadcast index + send time, padded to
// the configured payload size. AStream's tier-1 tag is a single 0x51 byte,
// so the leading 0x5C keeps the two trivially distinguishable on shared
// deliver paths.
constexpr std::uint32_t kBcastMagic = 0x5C3A0001;
constexpr std::size_t kBcastHeader = 4 + 8 + 8;

Bytes encode_bcast(std::uint64_t index, TimeMicros sent_at, std::size_t payload_bytes) {
  ByteWriter w;
  w.u32(kBcastMagic);
  w.u64(index);
  w.i64(sent_at);
  Bytes out = w.take();
  out.resize(std::max(payload_bytes, kBcastHeader), 0);
  return out;
}

}  // namespace

ScenarioDriver::ScenarioDriver(ScenarioSpec spec)
    : spec_(std::move(spec)), rng_(spec_.seed ^ 0x5ce7a110ULL) {
  spec_.validate();
  sys_ = std::make_unique<core::AtumSystem>(spec_.params, spec_.net, spec_.seed);
  sha_start_ = crypto::sha256_digest_count();

  all_ids_.reserve(spec_.nodes);
  for (NodeId i = 0; i < spec_.nodes; ++i) all_ids_.push_back(i);
  next_fresh_id_ = static_cast<NodeId>(spec_.nodes);
  sys_->deploy(all_ids_);
  for (NodeId id : all_ids_) {
    install_deliver(id);
    if (!spec_.relay_cycles.empty()) {
      sys_->node(id).set_forward(overlay::forward_cycles(spec_.relay_cycles));
    }
  }

  // Telemetry (ISSUE 9): the driver's own workload counters join the
  // system registry, so time-series sampling reads everything — network,
  // simulator, SMR, and the scenario workload itself — through one
  // uniform surface.
  obs::Registry& reg = sys_->metrics();
  reg.probe("scenario.broadcasts_sent", {}, [this] { return total_bcasts_sent_; });
  reg.probe("scenario.deliveries", {}, [this] { return total_deliveries_; });
  reg.probe("scenario.deliveries_expected", {}, [this] { return total_expected_; });
  reg.probe("scenario.joined", {},
            [this] { return static_cast<std::uint64_t>(eligible_receivers()); });
  if (spec_.trace) sys_->tracer().enable(spec_.trace_ring, spec_.trace_sample);
}

ScenarioDriver::~ScenarioDriver() = default;

// ---------------------------------------------------------------------------
// Population bookkeeping
// ---------------------------------------------------------------------------

bool ScenarioDriver::eligible(NodeId id) {
  if (!sys_->has_node(id)) return false;
  const core::AtumNode& n = sys_->node(id);
  return n.joined() && n.behavior() == core::NodeBehavior::kCorrect;
}

std::uint32_t ScenarioDriver::eligible_receivers() {
  std::uint32_t n = 0;
  for (NodeId id : all_ids_) {
    if (eligible(id)) ++n;
  }
  return n;
}

std::optional<NodeId> ScenarioDriver::sample_live(NodeId exclude) {
  if (all_ids_.empty()) return std::nullopt;
  for (int attempt = 0; attempt < 64; ++attempt) {
    NodeId id = all_ids_[static_cast<std::size_t>(rng_.next_below(all_ids_.size()))];
    if (id == exclude) continue;
    if (leave_requested_.contains(id)) continue;
    if (eligible(id)) return id;
  }
  return std::nullopt;
}

void ScenarioDriver::install_deliver(NodeId id) {
  core::AtumNode& n = sys_->node(id);
  // Chain: the scenario metrics tap runs first, then whatever handler the
  // node already had (AStream's tier-1 digest intake for stream members).
  core::AtumNode::DeliverFn prev = n.deliver_handler();
  n.set_deliver([this, id, prev = std::move(prev)](NodeId origin, const net::Payload& payload) {
    on_deliver(id, sys_->simulator().now(), payload);
    if (prev) prev(origin, payload);
  });
}

void ScenarioDriver::on_deliver(NodeId deliverer, TimeMicros now, const net::Payload& payload) {
  if (payload.size() < kBcastHeader) return;
  try {
    ByteReader r(payload);
    if (r.u32() != kBcastMagic) return;
    std::uint64_t index = r.u64();
    TimeMicros sent_at = r.i64();
    if (index >= bcasts_.size()) return;
    BcastRecord& rec = bcasts_[index];
    // Deliveries only count toward nodes that existed when the broadcast
    // was sent: a flash-crowd joiner spawned afterwards must not stand in
    // for an eligible receiver that missed it (delivered == expected is
    // the full-delivery / heal-recovery trigger).
    if (deliverer >= rec.fresh_cutoff) return;
    ++rec.delivered;
    ++total_deliveries_;
    PhaseMetrics& pm = metrics_[rec.phase];
    ++pm.deliveries;
    latencies_ms_[rec.phase].add(static_cast<double>(now - sent_at) / 1000.0);
    if (rec.delivered == rec.expected) {
      ++pm.broadcasts_fully_delivered;
      if (heal_time_ >= 0 && rec.sent_at >= heal_time_ &&
          metrics_[heal_phase_].heal_to_full_delivery < 0) {
        metrics_[heal_phase_].heal_to_full_delivery = now - heal_time_;
      }
    }
  } catch (const SerdeError&) {
    // Not a scenario payload; application traffic passes through.
  }
}

void ScenarioDriver::poll_pending_ops() {
  constexpr DurationMicros kLeaveRetry = seconds(10.0);
  const TimeMicros now = sys_->simulator().now();
  // Explicit loop: the pass both mutates ops (leave retries) and erases
  // completed ones, which an erase_if predicate must not do.
  std::size_t kept = 0;
  for (PendingOp& op : pending_ops_) {
    bool done = false;
    if (op.join) {
      if (sys_->has_node(op.node) && sys_->node(op.node).joined()) {
        ++metrics_[op.phase].joins_completed;
        ever_joined_.insert(op.node);
        done = true;
      }
    } else if (!sys_->has_node(op.node) || !sys_->node(op.node).joined()) {
      ++metrics_[op.phase].leaves_completed;
      // A departed stream member leaves the stream too (its transport-level
      // chunk service would otherwise outlive its membership).
      stream_nodes_.erase(op.node);
      done = true;
    } else if (now - op.last_attempt >= kLeaveRetry) {
      op.last_attempt = now;
      if (++op.attempts > 2) {
        // Announced repeatedly without confirmation: exit anyway (see
        // PendingOp). Counted as complete on the next poll.
        ++metrics_[op.phase].leaves_forced;
        sys_->node(op.node).stop();
      } else {
        // Still a member: the leave proposal was superseded by a concurrent
        // reconfig of the same vgroup. Announce again with fresh membership.
        sys_->node(op.node).leave();
      }
    }
    if (!done) pending_ops_[kept++] = op;
  }
  pending_ops_.resize(kept);
}

// ---------------------------------------------------------------------------
// One-shot fault primitives
// ---------------------------------------------------------------------------

void ScenarioDriver::apply_one_shots(std::size_t phase_idx) {
  const Phase& ph = spec_.phases[phase_idx];
  net::SimNetwork& net = sys_->network();
  PhaseMetrics& pm = metrics_[phase_idx];

  // Heal / restore first: a phase may clear the previous faults and apply
  // new ones in one step.
  if (ph.heal) {
    net.heal_partition();
    heal_time_ = sys_->simulator().now();
    heal_phase_ = phase_idx;
  }
  if (ph.restore_links) {
    for (NodeId id : degraded_) net.clear_node_fault(id);
    degraded_.clear();
    net.clear_link_faults();
  }

  if (ph.partition) {
    // Whole vgroups move to the minority side until it holds the requested
    // fraction of the joined population (see spec.h for why group-aligned).
    auto groups = sys_->group_map();
    std::size_t joined_total = 0;
    std::vector<GroupId> gids;
    gids.reserve(groups.size());
    for (const auto& [g, members] : groups) {
      gids.push_back(g);
      joined_total += members.size();
    }
    rng_.shuffle(gids);
    const auto want = static_cast<std::size_t>(ph.partition->minority_fraction *
                                               static_cast<double>(joined_total));
    std::vector<NodeId> minority;
    for (GroupId g : gids) {
      if (minority.size() >= want) break;
      const auto& members = groups[g];
      minority.insert(minority.end(), members.begin(), members.end());
    }
    net.partition({minority});
  }

  if (ph.degrade && ph.degrade->nodes > 0) {
    std::vector<NodeId> candidates;
    for (NodeId id : all_ids_) {
      if (eligible(id)) candidates.push_back(id);
    }
    rng_.shuffle(candidates);
    std::size_t n = std::min(ph.degrade->nodes, candidates.size());
    for (std::size_t i = 0; i < n; ++i) {
      net.set_node_fault(candidates[i],
                         net::LinkFault{ph.degrade->drop, ph.degrade->extra_latency});
      degraded_.push_back(candidates[i]);
    }
  }

  if (ph.byzantine && ph.byzantine->fraction > 0.0) {
    std::vector<NodeId> candidates;
    for (NodeId id : all_ids_) {
      if (eligible(id) && !leave_requested_.contains(id)) candidates.push_back(id);
    }
    rng_.shuffle(candidates);
    const auto n = static_cast<std::size_t>(ph.byzantine->fraction *
                                            static_cast<double>(candidates.size()));
    for (std::size_t i = 0; i < n; ++i) {
      sys_->node(candidates[i]).set_behavior(ph.byzantine->behavior);
      converted_.insert(candidates[i]);
      ++pm.byzantine_converted;
    }
  }

  if (ph.kill_groups > 0) {
    auto groups = sys_->group_map();
    std::vector<GroupId> gids;
    gids.reserve(groups.size());
    for (const auto& [g, members] : groups) gids.push_back(g);
    rng_.shuffle(gids);
    std::size_t killed = 0;
    for (GroupId g : gids) {
      if (killed >= ph.kill_groups) break;
      ++killed;
      ++pm.groups_killed;
      for (NodeId member : groups[g]) {
        sys_->node(member).stop();  // crash: instantly and permanently silent
        killed_.insert(member);
        stream_nodes_.erase(member);
        ++pm.nodes_killed;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Sustained loads
// ---------------------------------------------------------------------------

void ScenarioDriver::send_scenario_broadcast(std::size_t phase_idx) {
  std::optional<NodeId> origin = sample_live();
  if (!origin) return;
  const TimeMicros now = sys_->simulator().now();
  const std::uint64_t index = bcasts_.size();
  const std::uint32_t expected = eligible_receivers();
  bcasts_.push_back(BcastRecord{phase_idx, now, expected, 0, next_fresh_id_});
  PhaseMetrics& pm = metrics_[phase_idx];
  ++pm.broadcasts_sent;
  pm.deliveries_expected += expected;
  ++total_bcasts_sent_;
  total_expected_ += expected;
  sys_->node(*origin).broadcast(
      encode_bcast(index, now, spec_.phases[phase_idx].broadcasts.payload_bytes));
}

void ScenarioDriver::start_churn_join(std::size_t phase_idx) {
  std::optional<NodeId> contact = sample_live();
  if (!contact) return;
  NodeId fresh = next_fresh_id_++;
  core::AtumNode& n = sys_->add_node(fresh);
  all_ids_.push_back(fresh);
  install_deliver(fresh);
  if (!spec_.relay_cycles.empty()) n.set_forward(overlay::forward_cycles(spec_.relay_cycles));
  n.join(*contact);
  pending_ops_.push_back(
      PendingOp{fresh, phase_idx, /*join=*/true, sys_->simulator().now()});
  ++metrics_[phase_idx].joins_requested;
}

void ScenarioDriver::start_churn_leave(std::size_t phase_idx) {
  std::optional<NodeId> victim = sample_live(stream_source_);
  if (!victim) return;
  leave_requested_.insert(*victim);
  sys_->node(*victim).leave();
  pending_ops_.push_back(
      PendingOp{*victim, phase_idx, /*join=*/false, sys_->simulator().now()});
  ++metrics_[phase_idx].leaves_requested;
}

void ScenarioDriver::ensure_stream(std::size_t phase_idx) {
  if (!stream_nodes_.empty()) return;
  const StreamLoad& load = spec_.phases[phase_idx].stream;
  astream::StreamConfig cfg;
  cfg.stream_id = 1;
  cfg.store_window = load.store_window;
  stream_members_.clear();  // rebuild: members of an earlier stream may be gone
  stream_source_ = kInvalidNode;
  for (NodeId id : all_ids_) {
    if (eligible(id)) stream_members_.push_back(id);
  }
  if (stream_members_.empty()) return;
  stream_source_ = stream_members_.front();
  for (NodeId id : stream_members_) {
    auto node = std::make_unique<astream::AStreamNode>(*sys_, id, cfg);
    node->set_chunk_handler([this](std::uint64_t seq, const net::Payload&) {
      if (seq == 0 || seq > chunks_.size()) return;
      ++metrics_[chunks_[seq - 1].phase].stream_deliveries;
    });
    stream_nodes_[id] = std::move(node);
  }
  for (auto& [id, node] : stream_nodes_) {
    node->join_stream(stream_source_);
    // AStreamNode installed its own tier-1 deliver handler; rechain the
    // scenario metrics tap in front of it.
    install_deliver(id);
  }
}

void ScenarioDriver::send_stream_chunk(std::size_t phase_idx) {
  auto it = stream_nodes_.find(stream_source_);
  if (it == stream_nodes_.end() || !eligible(stream_source_)) return;
  const StreamLoad& load = spec_.phases[phase_idx].stream;
  std::uint32_t expected = 0;
  for (NodeId id : stream_members_) {
    if (stream_nodes_.contains(id) && eligible(id)) ++expected;
  }
  const std::uint64_t seq = ++stream_seq_;
  chunks_.push_back(ChunkRecord{phase_idx, expected});
  PhaseMetrics& pm = metrics_[phase_idx];
  ++pm.stream_chunks_sent;
  pm.stream_deliveries_expected += expected;
  Bytes data(load.chunk_bytes);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>((seq + i) & 0xFF);
  }
  it->second->stream_chunk(std::move(data));
}

void ScenarioDriver::schedule_loads(std::size_t phase_idx, TimeMicros start, TimeMicros end) {
  const Phase& ph = spec_.phases[phase_idx];
  sim::Simulator& sim = sys_->simulator();
  auto every = [&](double per_second, auto action) {
    if (per_second <= 0.0) return;
    auto gap = std::max<DurationMicros>(
        1, static_cast<DurationMicros>(static_cast<double>(kMicrosPerSecond) / per_second));
    // Strictly inside the phase: a tick on the boundary would race the next
    // phase's fault primitives (its gossip would still be in flight when a
    // partition lands) and smear attribution across phases.
    for (TimeMicros t = start + gap; t < end; t += gap) {
      sim.schedule_at(t, [this, phase_idx, action] { (this->*action)(phase_idx); });
    }
  };
  every(ph.broadcasts.per_second, &ScenarioDriver::send_scenario_broadcast);
  every(ph.churn.joins_per_minute / 60.0, &ScenarioDriver::start_churn_join);
  every(ph.churn.leaves_per_minute / 60.0, &ScenarioDriver::start_churn_leave);
  every(ph.stream.chunks_per_second, &ScenarioDriver::send_stream_chunk);
  if (ph.flash_joiners > 0) {
    DurationMicros gap = ph.duration / static_cast<DurationMicros>(ph.flash_joiners + 1);
    gap = std::max<DurationMicros>(1, gap);
    for (std::size_t j = 0; j < ph.flash_joiners; ++j) {
      sim.schedule_at(start + gap * static_cast<DurationMicros>(j + 1),
                      [this, phase_idx] { start_churn_join(phase_idx); });
    }
  }
}

// ---------------------------------------------------------------------------
// Time-series telemetry
// ---------------------------------------------------------------------------

void ScenarioDriver::sample_time_series() {
  const obs::Registry& reg = sys_->metrics();
  sys_->network().sweep_flows();  // exact flow gauge (same sweep as snapshot_phase)

  TimeSeriesPoint p;
  p.at = sys_->simulator().now();

  const std::uint64_t sent = reg.value("scenario.broadcasts_sent");
  const std::uint64_t deliveries = reg.value("scenario.deliveries");
  const std::uint64_t msgs_sent = reg.value("net.messages_sent");
  const std::uint64_t msgs_delivered = reg.value("net.messages_delivered");
  const std::uint64_t msgs_dropped = reg.value("net.messages_dropped");
  const std::uint64_t bytes = reg.value("net.bytes_sent");
  const std::uint64_t sha = reg.value("crypto.sha256_digests");

  p.broadcasts_sent = sent - ts_base_.sent;
  p.deliveries = deliveries - ts_base_.deliveries;
  p.msgs_sent = msgs_sent - ts_base_.msgs_sent;
  p.msgs_delivered = msgs_delivered - ts_base_.msgs_delivered;
  p.msgs_dropped = msgs_dropped - ts_base_.msgs_dropped;
  p.bytes_sent = bytes - ts_base_.bytes;
  p.sha256_digests = sha - ts_base_.sha;

  // Windowed delivery rate over *settled* broadcasts — records at least
  // one full interval old, so deliveries still in flight (latency is
  // milliseconds, the interval is ~seconds) do not read as losses. The
  // ratio spans the last kRatioWindow settled broadcasts: a single
  // broadcast's fate is bimodal under a partition (its origin side gets
  // it, the other side does not), so the trailing window is what turns
  // the series into a readable ~minority-weighted level. Intervals in
  // which no broadcast settled carry the previous ratio forward.
  const TimeMicros settled = p.at - spec_.metrics_interval;
  bool fresh = false;
  while (ts_bcast_idx_ < bcasts_.size() && bcasts_[ts_bcast_idx_].sent_at <= settled) {
    const BcastRecord& rec = bcasts_[ts_bcast_idx_++];
    ts_window_.emplace_back(rec.expected, rec.delivered);
    if (ts_window_.size() > kRatioWindow) ts_window_.pop_front();
    fresh = true;
  }
  if (fresh) {
    std::uint64_t win_expected = 0;
    std::uint64_t win_delivered = 0;
    for (const auto& [e, d] : ts_window_) {
      win_expected += e;
      win_delivered += d;
    }
    if (win_expected > 0) {
      ts_base_.ratio = static_cast<double>(win_delivered) / static_cast<double>(win_expected);
    }
  }
  p.delivery_ratio = ts_base_.ratio;

  p.joined = reg.value("scenario.joined");
  p.groups = reg.value("atum.groups");
  p.live_events = reg.value("sim.live_events");
  p.slot_count = reg.value("sim.slot_count");
  p.flows = reg.value("net.flows");

  ts_base_.sent = sent;
  ts_base_.deliveries = deliveries;
  ts_base_.msgs_sent = msgs_sent;
  ts_base_.msgs_delivered = msgs_delivered;
  ts_base_.msgs_dropped = msgs_dropped;
  ts_base_.bytes = bytes;
  ts_base_.sha = sha;
  series_.push_back(p);
}

// ---------------------------------------------------------------------------
// Phase snapshots and the run loop
// ---------------------------------------------------------------------------

void ScenarioDriver::snapshot_phase(std::size_t phase_idx) {
  PhaseMetrics& pm = metrics_[phase_idx];
  pm.end = sys_->simulator().now();

  const net::NetworkStats& stats = sys_->network().stats();
  pm.msgs_sent = stats.messages_sent - net_base_.messages_sent;
  pm.msgs_delivered = stats.messages_delivered - net_base_.messages_delivered;
  pm.msgs_dropped = stats.messages_dropped - net_base_.messages_dropped;
  pm.msgs_blocked = stats.messages_blocked - net_base_.messages_blocked;
  pm.bytes_sent = stats.bytes_sent - net_base_.bytes_sent;
  net_base_ = stats;
  const std::uint64_t sha = crypto::sha256_digest_count();
  pm.sha256_digests = sha - sha_base_;
  sha_base_ = sha;

  pm.joined_correct_end = eligible_receivers();
  std::uint64_t evicted = 0;
  for (NodeId id : all_ids_) {
    if (!ever_joined_.contains(id) || killed_.contains(id)) continue;
    if (leave_requested_.contains(id) || converted_.contains(id)) continue;
    if (sys_->has_node(id) && !sys_->node(id).joined()) ++evicted;
  }
  pm.correct_evicted_end = evicted;
  pm.group_count_end = sys_->group_map().size();
  pm.live_events_end = sys_->simulator().live_events();
  pm.slot_count_end = sys_->simulator().slot_count();
  sys_->network().sweep_flows();  // exact gauge: no dead entries linger
  pm.flow_count_end = sys_->network().flow_count();
}

ScenarioReport ScenarioDriver::run() {
  if (ran_) throw std::logic_error("ScenarioDriver::run: already ran");
  ran_ = true;

  metrics_.resize(spec_.phases.size());
  latencies_ms_.resize(spec_.phases.size());
  for (NodeId id : all_ids_) ever_joined_.insert(id);
  net_base_ = sys_->network().stats();
  sha_base_ = crypto::sha256_digest_count();

  sim::Simulator& sim = sys_->simulator();
  // Bookkeeper: polls join/leave completions once per sim-second.
  sim::PeriodicTimer keeper(sim, seconds(1.0), [this] { poll_pending_ops(); });

  // Registry sampler (spec.metrics_interval): counter floors start at the
  // post-deploy state so the first interval's deltas cover only the run.
  std::optional<sim::PeriodicTimer> sampler;
  if (spec_.metrics_interval > 0) {
    const obs::Registry& reg = sys_->metrics();
    ts_base_.msgs_sent = reg.value("net.messages_sent");
    ts_base_.msgs_delivered = reg.value("net.messages_delivered");
    ts_base_.msgs_dropped = reg.value("net.messages_dropped");
    ts_base_.bytes = reg.value("net.bytes_sent");
    ts_base_.sha = reg.value("crypto.sha256_digests");
    sampler.emplace(sim, spec_.metrics_interval, [this] { sample_time_series(); });
  }

  for (std::size_t i = 0; i < spec_.phases.size(); ++i) {
    const Phase& ph = spec_.phases[i];
    metrics_[i].name = ph.name;
    metrics_[i].start = sim.now();
    apply_one_shots(i);
    if (ph.stream.any()) ensure_stream(i);
    schedule_loads(i, sim.now(), sim.now() + ph.duration);
    sim.run_until(metrics_[i].start + ph.duration);
    poll_pending_ops();
    snapshot_phase(i);
  }

  // Drain: in-flight deliveries/joins complete, attributed to their phases.
  sim.run_until(sim.now() + spec_.drain);
  if (sampler) sampler->stop();
  keeper.stop();
  poll_pending_ops();

  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    const Samples& s = latencies_ms_[i];
    metrics_[i].latency_samples = s.count();
    if (!s.empty()) {
      metrics_[i].latency_ms_p50 = s.percentile(0.50);
      metrics_[i].latency_ms_p95 = s.percentile(0.95);
      metrics_[i].latency_ms_p99 = s.percentile(0.99);
      metrics_[i].latency_ms_max = s.max();
    }
  }

  ScenarioReport report;
  report.scenario = spec_.name;
  report.seed = spec_.seed;
  report.initial_nodes = spec_.nodes;
  report.phases = metrics_;
  report.metrics_interval = spec_.metrics_interval;
  report.time_series = series_;
  report.sim_end = sim.now();
  report.events_executed = sim.executed_events();
  const net::NetworkStats& stats = sys_->network().stats();
  report.total_msgs_sent = stats.messages_sent;
  report.total_bytes_sent = stats.bytes_sent;
  report.total_sha256_digests = crypto::sha256_digest_count() - sha_start_;
  return report;
}

std::vector<std::string> ScenarioDriver::check(const ScenarioSpec& spec,
                                               const ScenarioReport& report) {
  std::vector<std::string> violations;
  auto add = [&](const std::string& line) { violations.push_back(line); };
  char buf[256];
  for (const Expectation& e : spec.expectations) {
    const PhaseMetrics* p = report.phase(e.phase);
    if (p == nullptr) {
      add("expectation references phase '" + e.phase + "' missing from the report");
      continue;
    }
    if (e.min_delivery_ratio >= 0.0 && p->delivery_ratio() < e.min_delivery_ratio) {
      std::snprintf(buf, sizeof buf, "phase '%s': delivery ratio %.4f < required %.4f",
                    e.phase.c_str(), p->delivery_ratio(), e.min_delivery_ratio);
      add(buf);
    }
    if (!e.at_least_phase.empty()) {
      const PhaseMetrics* q = report.phase(e.at_least_phase);
      if (q == nullptr) {
        add("expectation references phase '" + e.at_least_phase + "' missing from the report");
      } else if (p->delivery_ratio() < q->delivery_ratio() - e.tolerance) {
        std::snprintf(buf, sizeof buf,
                      "phase '%s': delivery ratio %.4f did not recover to phase '%s' level "
                      "%.4f (tolerance %.4f)",
                      e.phase.c_str(), p->delivery_ratio(), e.at_least_phase.c_str(),
                      q->delivery_ratio(), e.tolerance);
        add(buf);
      }
    }
    if (e.min_join_ratio >= 0.0 && p->join_ratio() < e.min_join_ratio) {
      std::snprintf(buf, sizeof buf, "phase '%s': join ratio %.4f < required %.4f",
                    e.phase.c_str(), p->join_ratio(), e.min_join_ratio);
      add(buf);
    }
    if (e.min_stream_ratio >= 0.0 && p->stream_ratio() < e.min_stream_ratio) {
      std::snprintf(buf, sizeof buf, "phase '%s': stream ratio %.4f < required %.4f",
                    e.phase.c_str(), p->stream_ratio(), e.min_stream_ratio);
      add(buf);
    }
    if (e.max_forced_leaves >= 0 &&
        p->leaves_forced > static_cast<std::uint64_t>(e.max_forced_leaves)) {
      std::snprintf(buf, sizeof buf,
                    "phase '%s': %" PRIu64 " forced leaves > allowed %" PRId64
                    " (leave-confirmation gap reopened)",
                    e.phase.c_str(), p->leaves_forced, e.max_forced_leaves);
      add(buf);
    }
  }
  return violations;
}

}  // namespace atum::scenario
