// ScenarioDriver: executes a ScenarioSpec against a real node-level
// AtumSystem.
//
// Lifecycle: the constructor validates the spec and instantly deploys
// `spec.nodes` nodes (AtumSystem::deploy — the paper's "start from
// checkpoint"). run() then walks the phases in order: it applies each
// phase's one-shot fault primitives (heal/restore first, then partition /
// link degradation / Byzantine conversion / correlated group kill),
// schedules the phase's sustained loads (churn, broadcasts, stream chunks)
// at fixed intervals on the simulator, runs the clock to the phase end, and
// snapshots per-phase metrics. A final drain period lets in-flight
// deliveries and joins complete; they stay attributed to the phase that
// initiated them (see report.h).
//
// Metrics come from three places: the driver's own bookkeeping (broadcast
// records with per-broadcast expected/delivered counts and send timestamps
// -> delivery ratios and latency percentiles via common/stats Samples), the
// SimNetwork counters (per-phase deltas of sent/delivered/dropped/blocked/
// bytes), and runtime gauges (simulator arena + live events, flow table
// after an exact sweep, joined population, group count,
// crypto::sha256_digest_count deltas).
//
// Determinism: every random choice (origins, contacts, leavers, partition
// side, degraded/converted/killed samples) flows from one Rng seeded with
// spec.seed, and all container iteration is over sorted ids — the same
// spec + seed yields a byte-identical JSON report.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "apps/astream/astream.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/atum.h"
#include "scenario/report.h"
#include "scenario/spec.h"

namespace atum::scenario {

class ScenarioDriver {
 public:
  // Validates the spec and deploys the initial system.
  explicit ScenarioDriver(ScenarioSpec spec);
  ~ScenarioDriver();
  ScenarioDriver(const ScenarioDriver&) = delete;
  ScenarioDriver& operator=(const ScenarioDriver&) = delete;

  // Runs all phases plus the drain; callable once.
  ScenarioReport run();

  // Evaluates spec.expectations against a report. Returns one human-readable
  // line per violated expectation; empty = all hold.
  static std::vector<std::string> check(const ScenarioSpec& spec, const ScenarioReport& report);

  // The underlying system (benches poke at it between/after runs).
  core::AtumSystem& system() { return *sys_; }
  const ScenarioSpec& spec() const { return spec_; }

 private:
  struct BcastRecord {
    std::size_t phase = 0;
    TimeMicros sent_at = 0;
    std::uint32_t expected = 0;
    std::uint32_t delivered = 0;
    // Nodes minted at/after this id did not exist at send time; their
    // deliveries never count toward `expected` (see on_deliver).
    NodeId fresh_cutoff = kInvalidNode;
  };
  struct PendingOp {
    NodeId node = kInvalidNode;
    std::size_t phase = 0;
    bool join = false;  // else leave
    // Leaves re-announce when stale: a leave proposal snapshots the vgroup
    // membership, so a concurrent reconfig of the same group can supersede
    // it; a real departing client would simply announce again — and after
    // enough unconfirmed announcements, exit anyway (the group either
    // already decided the removal without managing to tell us — deciding a
    // config op retires the SMR instance that could have served it — or
    // will evict the silent node via heartbeats).
    TimeMicros last_attempt = 0;
    int attempts = 1;
  };
  struct ChunkRecord {
    std::size_t phase = 0;
    std::uint32_t expected = 0;
  };

  void install_deliver(NodeId id);
  void on_deliver(NodeId deliverer, TimeMicros now, const net::Payload& payload);
  void poll_pending_ops();  // bookkeeper: completions of joins/leaves
  std::optional<NodeId> sample_live(NodeId exclude = kInvalidNode);
  std::uint32_t eligible_receivers();
  bool eligible(NodeId id);

  // Telemetry (spec.metrics_interval): reads the system's obs::Registry —
  // the same uniform surface the benches use — and appends one
  // TimeSeriesPoint of interval deltas + gauges. The driver's own
  // scenario.* probes (broadcasts sent / deliveries / expected) are
  // registered at construction so the sampler reads everything, including
  // its own workload, through the registry.
  void sample_time_series();

  // Phase machinery.
  void apply_one_shots(std::size_t phase_idx);
  void schedule_loads(std::size_t phase_idx, TimeMicros start, TimeMicros end);
  void snapshot_phase(std::size_t phase_idx);
  void send_scenario_broadcast(std::size_t phase_idx);
  void start_churn_join(std::size_t phase_idx);
  void start_churn_leave(std::size_t phase_idx);
  void ensure_stream(std::size_t phase_idx);
  void send_stream_chunk(std::size_t phase_idx);

  ScenarioSpec spec_;
  std::unique_ptr<core::AtumSystem> sys_;
  Rng rng_;
  bool ran_ = false;

  std::vector<PhaseMetrics> metrics_;
  std::vector<Samples> latencies_ms_;  // per phase
  std::vector<BcastRecord> bcasts_;
  std::vector<PendingOp> pending_ops_;
  std::vector<ChunkRecord> chunks_;

  // Population bookkeeping (sorted/deterministic).
  std::vector<NodeId> all_ids_;      // every id ever added, creation order
  std::set<NodeId> leave_requested_; // asked to leave (never cleared)
  std::set<NodeId> ever_joined_;     // completed a join at some point
  std::set<NodeId> killed_;          // crashed by kill_groups
  std::set<NodeId> converted_;       // turned Byzantine by MakeByzantine
  NodeId next_fresh_id_ = 0;

  // Fault state.
  std::vector<NodeId> degraded_;     // nodes with active link faults
  TimeMicros heal_time_ = -1;        // most recent heal (for heal_to_full)
  std::size_t heal_phase_ = 0;

  // Stream state (created lazily at the first streaming phase).
  std::map<NodeId, std::unique_ptr<astream::AStreamNode>> stream_nodes_;
  std::vector<NodeId> stream_members_;
  NodeId stream_source_ = kInvalidNode;
  std::uint64_t stream_seq_ = 0;

  // Delta baselines for per-phase network counters.
  net::NetworkStats net_base_;
  std::uint64_t sha_base_ = 0;
  std::uint64_t sha_start_ = 0;  // process-global counter floor at construction

  // Time-series telemetry state (spec.metrics_interval > 0).
  std::vector<TimeSeriesPoint> series_;
  // Previous cumulative registry reads (counters sampled as deltas) plus
  // the carried-forward delivery ratio for send-free intervals.
  struct TsBase {
    std::uint64_t sent = 0, deliveries = 0;
    std::uint64_t msgs_sent = 0, msgs_delivered = 0, msgs_dropped = 0;
    std::uint64_t bytes = 0, sha = 0;
    double ratio = 1.0;
  } ts_base_;
  // First bcasts_ record not yet folded into the windowed delivery ratio
  // (records settle once they are a full interval old), plus the trailing
  // window of settled (expected, delivered) pairs the ratio spans.
  static constexpr std::size_t kRatioWindow = 8;
  std::size_t ts_bcast_idx_ = 0;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> ts_window_;
  // Run totals backing the scenario.* registry probes.
  std::uint64_t total_bcasts_sent_ = 0;
  std::uint64_t total_expected_ = 0;
  std::uint64_t total_deliveries_ = 0;
};

}  // namespace atum::scenario
