// Discrete-event simulation engine.
//
// This is the substrate substituting for the paper's EC2 deployment: every
// node's protocol logic runs as event handlers on one simulated clock.
// Events with equal timestamps fire in scheduling order (stable), which
// together with seeded RNG makes whole experiments bit-reproducible.
//
// Storage model: event closures live in a generation-stamped slot arena;
// the heap orders lightweight {time, seq, id} entries. cancel() is O(1)
// amortized — it frees the closure and recycles the slot immediately, and
// stale heap entries are swept by periodic compaction once they outnumber
// the live ones. Under churn (schedule/cancel cycles, e.g. heartbeat
// timeouts across 100k nodes) memory stays proportional to the number of
// *pending* events, not to the number ever scheduled or cancelled.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"

namespace atum::sim {

using EventFn = std::function<void()>;
// Event handle: generation (high 32 bits) | slot index (low 32 bits).
// Generations start at 1, so a valid handle is never 0 and a handle stays
// invalid forever once its event fired or was cancelled, even after the
// slot is recycled. 0 is the reserved "no event" value.
using EventId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeMicros now() const { return now_; }

  // Schedules fn at absolute time t (>= now). Returns a handle for cancel().
  EventId schedule_at(TimeMicros t, EventFn fn);
  // Schedules fn after a non-negative delay.
  EventId schedule_after(DurationMicros delay, EventFn fn);
  // Cancels a pending event; no-op if it already fired or was cancelled.
  // O(1) amortized; releases the event's closure immediately.
  void cancel(EventId id);

  // Runs events until the queue drains or `limit` events fired.
  // Returns the number of events executed.
  std::uint64_t run(std::uint64_t limit = UINT64_MAX);
  // Runs events with timestamp <= t, then advances the clock to exactly t.
  std::uint64_t run_until(TimeMicros t);
  // Executes the single next event, if any. Returns false on empty queue.
  bool step();

  bool empty() const { return live_ == 0; }
  std::uint64_t executed_events() const { return executed_; }
  // Exact count of pending (scheduled, not yet fired or cancelled) events.
  std::uint64_t live_events() const { return live_; }

  // Introspection for memory-bound tests/benches: heap entries (live +
  // not-yet-swept stale) and arena size (peak concurrent live events).
  std::size_t heap_size() const { return heap_.size(); }
  std::size_t slot_count() const { return slots_.size(); }

 private:
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 1;
    bool armed = false;
  };
  struct Entry {
    TimeMicros at;
    std::uint64_t seq;  // FIFO among same-time events
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  static constexpr EventId make_id(std::uint32_t gen, std::uint32_t idx) {
    return (static_cast<EventId>(gen) << 32) | idx;
  }
  static constexpr std::uint32_t gen_of(EventId id) { return static_cast<std::uint32_t>(id >> 32); }
  static constexpr std::uint32_t index_of(EventId id) { return static_cast<std::uint32_t>(id); }

  bool slot_matches(EventId id) const {
    std::uint32_t idx = index_of(id);
    return idx < slots_.size() && slots_[idx].armed && slots_[idx].gen == gen_of(id);
  }
  // Frees the closure, invalidates outstanding handles, recycles the slot.
  void release_slot(std::uint32_t idx);
  // Pops heap entries until the top is live; returns false if none is.
  bool settle_top();
  void maybe_compact();
  void execute(TimeMicros at, EventFn fn);

  TimeMicros now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t live_ = 0;
  std::uint64_t stale_in_heap_ = 0;
  std::vector<Entry> heap_;  // binary min-heap via std::push_heap/pop_heap
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

// RAII periodic timer: fires `fn` every `period` until destroyed or stopped.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, DurationMicros period, EventFn fn);
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void stop();
  bool running() const { return running_; }

 private:
  void arm();

  Simulator& sim_;
  DurationMicros period_;
  EventFn fn_;
  EventId pending_ = 0;
  bool running_ = true;
};

}  // namespace atum::sim
