// Discrete-event simulation engine.
//
// This is the substrate substituting for the paper's EC2 deployment: every
// node's protocol logic runs as event handlers on one simulated clock.
// Events with equal timestamps fire in scheduling order (stable), which
// together with seeded RNG makes whole experiments bit-reproducible.
//
// Storage model: event closures live in a generation-stamped slot arena of
// fixed-size chunks (stable addresses — closures are placed once and
// execute in place, never relocated); the heap orders lightweight
// {time, seq, id} entries. Closures are held in EventFn, a small-buffer-
// optimized callable sized for the message-delivery closure, so the
// per-event hot path performs no heap allocation at all. cancel() is O(1)
// amortized — it frees the closure and recycles the slot immediately, and
// stale heap entries are swept by periodic compaction once they outnumber
// the live ones. Under churn (schedule/cancel cycles, e.g. heartbeat
// timeouts across 100k nodes) memory stays proportional to the number of
// *pending* events, not to the number ever scheduled or cancelled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.h"

namespace atum::sim {

// Move-only callable for simulator events, with small-buffer-optimized
// storage.
//
// Every simulated message delivery schedules one closure capturing the
// network pointer plus the Message being delivered (~64 bytes with a
// refcounted sliced Payload). std::function's small-object buffer (16
// bytes on libstdc++) pushed every such closure onto the heap, making
// allocator traffic the dominant cost of bench_micro fan-out. EventFn
// sizes its inline buffer for that delivery closure; larger callables
// fall back to the heap transparently. test_sim pins the delivery shape
// to the inline path.
class EventFn {
 public:
  // Exactly fits the delivery closure (SimNetwork* + Message with its
  // 32-byte sliced Payload). Growing Message pushes deliveries onto the
  // heap-fallback path — test_sim pins the inline invariant so that shows
  // up as a test failure, not a silent perf cliff.
  static constexpr std::size_t kInlineCapacity = 64;

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_v<std::remove_cvref_t<F>&>)
  EventFn(F&& f) {  // NOLINT: implicit, drop-in for std::function<void()>
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity && alignof(Fn) <= 8 &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = inline_ops<Fn>();
    } else {
      // lint: naked-new-ok(SBO heap fallback; owned via ops_->destroy) // lint: hot-path-alloc-ok(SBO miss only: schedule-path callables stay inline)
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = heap_ops<Fn>();
    }
  }

  EventFn(EventFn&& other) noexcept { take(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }
  EventFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  // Empty EventFns throw like std::function would (rather than chasing a
  // null ops_): scheduling a nullptr event stays a catchable mistake.
  void operator()() {
    if (ops_ == nullptr) throw std::bad_function_call();
    ops_->invoke(storage_);
  }
  explicit operator bool() const noexcept { return ops_ != nullptr; }
  // True when the callable lives in the inline buffer (no heap
  // allocation); introspection for the zero-allocation regression tests.
  bool stores_inline() const noexcept { return ops_ != nullptr && ops_->inline_stored; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move into dst + destroy src. nullptr => relocation is a plain memcpy
    // of `size` bytes (trivially-copyable closures, and the heap case
    // where the buffer only holds a pointer) — the hot-path moves then
    // reduce to a small copy instead of an indirect call.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;  // nullptr => trivially destructible
    std::uint32_t size;               // callable footprint in the buffer
    bool inline_stored;
  };

  template <typename Fn>
  static const Ops* inline_ops() {
    static constexpr Ops kOps{
        [](void* s) { (*static_cast<Fn*>(s))(); },
        std::is_trivially_copyable_v<Fn>
            ? nullptr
            : +[](void* dst, void* src) noexcept {
                Fn* f = static_cast<Fn*>(src);
                ::new (dst) Fn(std::move(*f));
                f->~Fn();
              },
        std::is_trivially_destructible_v<Fn>
            ? nullptr
            : +[](void* s) noexcept { static_cast<Fn*>(s)->~Fn(); },
        /*size=*/sizeof(Fn),
        /*inline_stored=*/true};
    return &kOps;
  }

  template <typename Fn>
  static const Ops* heap_ops() {
    static constexpr Ops kOps{
        [](void* s) { (**static_cast<Fn**>(s))(); },
        /*relocate=*/nullptr,  // buffer holds one pointer: memcpy moves it
        [](void* s) noexcept { delete *static_cast<Fn**>(s); },
        /*size=*/sizeof(Fn*),
        /*inline_stored=*/false};
    return &kOps;
  }

  void take(EventFn& other) noexcept {
    if (other.ops_ != nullptr) {
      if (other.ops_->relocate != nullptr) {
        other.ops_->relocate(storage_, other.storage_);
      } else {
        std::memcpy(storage_, other.storage_, other.ops_->size);
      }
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(8) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};
// Event handle: generation (high 32 bits) | slot index (low 32 bits).
// Generations start at 1, so a valid handle is never 0 and a handle stays
// invalid forever once its event fired or was cancelled, even after the
// slot is recycled. 0 is the reserved "no event" value.
using EventId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeMicros now() const { return now_; }

  // Schedules fn at absolute time t (>= now). Returns a handle for cancel().
  EventId schedule_at(TimeMicros t, EventFn fn);
  // Schedules fn after a non-negative delay.
  EventId schedule_after(DurationMicros delay, EventFn fn);
  // Cancels a pending event; no-op if it already fired or was cancelled.
  // O(1) amortized; releases the event's closure immediately.
  void cancel(EventId id);

  // Runs events until the queue drains or `limit` events fired.
  // Returns the number of events executed.
  std::uint64_t run(std::uint64_t limit = UINT64_MAX);
  // Runs events with timestamp <= t, then advances the clock to exactly t.
  std::uint64_t run_until(TimeMicros t);
  // Executes the single next event, if any. Returns false on empty queue.
  bool step();

  bool empty() const { return live_ == 0; }
  std::uint64_t executed_events() const { return executed_; }
  // Exact count of pending (scheduled, not yet fired or cancelled) events.
  std::uint64_t live_events() const { return live_; }

  // Introspection for memory-bound tests/benches: heap entries (live +
  // not-yet-swept stale) and arena size (peak concurrent live events).
  std::size_t heap_size() const { return heap_.size(); }
  std::size_t slot_count() const { return slot_count_; }

 private:
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 1;
    bool armed = false;
  };
  // Slots live in fixed-size chunks so their addresses are stable: an
  // event's closure executes IN PLACE (no move out of the arena) even when
  // the callback schedules new events and grows the arena. Together with
  // EventFn's inline storage this makes the per-event hot path zero-alloc
  // and zero-relocation.
  static constexpr std::size_t kSlotChunkShift = 8;  // 256 slots per chunk
  static constexpr std::size_t kSlotChunkSize = std::size_t{1} << kSlotChunkShift;
  static constexpr std::size_t kSlotChunkMask = kSlotChunkSize - 1;

  Slot& slot_at(std::uint32_t idx) {
    return slot_chunks_[idx >> kSlotChunkShift][idx & kSlotChunkMask];
  }
  const Slot& slot_at(std::uint32_t idx) const {
    return slot_chunks_[idx >> kSlotChunkShift][idx & kSlotChunkMask];
  }
  struct Entry {
    TimeMicros at;
    std::uint64_t seq;  // FIFO among same-time events
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  static constexpr EventId make_id(std::uint32_t gen, std::uint32_t idx) {
    return (static_cast<EventId>(gen) << 32) | idx;
  }
  static constexpr std::uint32_t gen_of(EventId id) { return static_cast<std::uint32_t>(id >> 32); }
  static constexpr std::uint32_t index_of(EventId id) { return static_cast<std::uint32_t>(id); }

  bool slot_matches(EventId id) const {
    std::uint32_t idx = index_of(id);
    if (idx >= slot_count_) return false;
    const Slot& s = slot_at(idx);
    return s.armed && s.gen == gen_of(id);
  }
  // Frees the closure, invalidates outstanding handles, recycles the slot.
  void release_slot(std::uint32_t idx);
  // Pops heap entries until the top is live; returns false if none is.
  bool settle_top();
  void maybe_compact();

  TimeMicros now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t live_ = 0;
  std::uint64_t stale_in_heap_ = 0;
  std::vector<Entry> heap_;  // binary min-heap via std::push_heap/pop_heap
  std::vector<std::unique_ptr<Slot[]>> slot_chunks_;
  // lint: adhoc-counter-ok(arena bookkeeping; exposed via the sim.slot_count registry probe)
  std::size_t slot_count_ = 0;  // slots ever minted (peak concurrent live events)
  std::vector<std::uint32_t> free_slots_;
};

// RAII periodic timer: fires `fn` every `period` until destroyed or stopped.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, DurationMicros period, EventFn fn);
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void stop();
  bool running() const { return running_; }

 private:
  void arm();

  Simulator& sim_;
  DurationMicros period_;
  EventFn fn_;
  EventId pending_ = 0;
  bool running_ = true;
};

}  // namespace atum::sim
