// Discrete-event simulation engine.
//
// This is the substrate substituting for the paper's EC2 deployment: every
// node's protocol logic runs as event handlers on one simulated clock.
// Events with equal timestamps fire in scheduling order (stable), which
// together with seeded RNG makes whole experiments bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace atum::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeMicros now() const { return now_; }

  // Schedules fn at absolute time t (>= now). Returns a handle for cancel().
  EventId schedule_at(TimeMicros t, EventFn fn);
  // Schedules fn after a non-negative delay.
  EventId schedule_after(DurationMicros delay, EventFn fn);
  // Cancels a pending event; no-op if it already fired or was cancelled.
  void cancel(EventId id);

  // Runs events until the queue drains or `limit` events fired.
  // Returns the number of events executed.
  std::uint64_t run(std::uint64_t limit = UINT64_MAX);
  // Runs events with timestamp <= t, then advances the clock to exactly t.
  std::uint64_t run_until(TimeMicros t);
  // Executes the single next event, if any. Returns false on empty queue.
  bool step();

  bool empty() const { return live_events() == 0; }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    TimeMicros at;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  std::uint64_t live_events() const { return queue_.size() - cancelled_.size(); }
  void execute(Event e);

  TimeMicros now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

// RAII periodic timer: fires `fn` every `period` until destroyed or stopped.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, DurationMicros period, EventFn fn);
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void stop();
  bool running() const { return running_; }

 private:
  void arm();

  Simulator& sim_;
  DurationMicros period_;
  EventFn fn_;
  EventId pending_ = 0;
  bool running_ = true;
};

}  // namespace atum::sim
