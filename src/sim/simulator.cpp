#include "sim/simulator.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace atum::sim {

namespace {
// Below this size a compaction sweep costs more than it saves.
constexpr std::size_t kMinCompactHeap = 64;
}  // namespace

EventId Simulator::schedule_at(TimeMicros t, EventFn fn) {
  if (t < now_) t = now_;  // clamp: "immediately" for past deadlines
  std::uint32_t idx;
  if (!free_slots_.empty()) {
    idx = free_slots_.back();
    free_slots_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(slot_count_);
    if ((slot_count_ & kSlotChunkMask) == 0) {
      // lint: hot-path-alloc-ok(amortized arena growth: one chunk per kSlotChunkSize slots, never freed)
      slot_chunks_.push_back(std::make_unique<Slot[]>(kSlotChunkSize));
    }
    ++slot_count_;
  }
  Slot& s = slot_at(idx);
  s.fn = std::move(fn);
  s.armed = true;
  EventId id = make_id(s.gen, idx);
  heap_.push_back(Entry{t, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return id;
}

EventId Simulator::schedule_after(DurationMicros delay, EventFn fn) {
  if (delay < 0) throw std::invalid_argument("Simulator: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::release_slot(std::uint32_t idx) {
  Slot& s = slot_at(idx);
  s.fn = nullptr;  // reclaim the closure now, not at pop time
  s.armed = false;
  if (++s.gen == 0) s.gen = 1;  // keep handles non-zero across wraparound
  free_slots_.push_back(idx);
}

void Simulator::cancel(EventId id) {
  if (!slot_matches(id)) return;  // unknown, already fired, or cancelled
  release_slot(index_of(id));
  --live_;
  ++stale_in_heap_;  // the heap entry stays behind until popped or swept
  maybe_compact();
}

void Simulator::maybe_compact() {
  if (heap_.size() < kMinCompactHeap || stale_in_heap_ * 2 <= heap_.size()) return;
  std::erase_if(heap_, [this](const Entry& e) { return !slot_matches(e.id); });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  stale_in_heap_ = 0;
}

bool Simulator::settle_top() {
  while (!heap_.empty()) {
    if (slot_matches(heap_.front().id)) return true;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    --stale_in_heap_;
  }
  return false;
}

bool Simulator::step() {
  if (!settle_top()) return false;
  Entry e = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  std::uint32_t idx = index_of(e.id);
  Slot& s = slot_at(idx);
  // Disarm first: the handle dies and cancel() on it no-ops. The chunked
  // arena is address-stable, so the closure runs IN PLACE even if it
  // schedules new events; the slot is destroyed and recycled only after it
  // returns (a nested schedule can never be handed this slot meanwhile —
  // it is neither armed nor on the free list).
  s.armed = false;
  if (++s.gen == 0) s.gen = 1;
  --live_;
  now_ = e.at;
  ++executed_;
  try {
    s.fn();
  } catch (...) {
    // A throwing handler must not leak the slot (or the Payload buffers
    // its closure pins): recycle before propagating.
    s.fn = nullptr;
    free_slots_.push_back(idx);
    throw;
  }
  s.fn = nullptr;
  free_slots_.push_back(idx);
  return true;
}

std::uint64_t Simulator::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && step()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(TimeMicros t) {
  std::uint64_t n = 0;
  while (settle_top() && heap_.front().at <= t) {
    step();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

PeriodicTimer::PeriodicTimer(Simulator& sim, DurationMicros period, EventFn fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  if (period <= 0) throw std::invalid_argument("PeriodicTimer: period must be positive");
  arm();
}

void PeriodicTimer::arm() {
  pending_ = sim_.schedule_after(period_, [this] {
    if (!running_) return;
    arm();   // re-arm first so fn_ may stop() us
    fn_();
  });
}

void PeriodicTimer::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
}

}  // namespace atum::sim
