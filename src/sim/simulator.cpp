#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

namespace atum::sim {

EventId Simulator::schedule_at(TimeMicros t, EventFn fn) {
  if (t < now_) t = now_;  // clamp: "immediately" for past deadlines
  EventId id = next_id_++;
  queue_.push(Event{t, id, std::move(fn)});
  return id;
}

EventId Simulator::schedule_after(DurationMicros delay, EventFn fn) {
  if (delay < 0) throw std::invalid_argument("Simulator: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  if (id != 0) cancelled_.insert(id);
}

void Simulator::execute(Event e) {
  now_ = e.at;
  ++executed_;
  e.fn();
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event e = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    execute(std::move(e));
    return true;
  }
  return false;
}

std::uint64_t Simulator::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && step()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(TimeMicros t) {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    Event e = queue_.top();
    if (e.at > t) break;
    queue_.pop();
    if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    execute(std::move(e));
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

PeriodicTimer::PeriodicTimer(Simulator& sim, DurationMicros period, EventFn fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  if (period <= 0) throw std::invalid_argument("PeriodicTimer: period must be positive");
  arm();
}

void PeriodicTimer::arm() {
  pending_ = sim_.schedule_after(period_, [this] {
    if (!running_) return;
    arm();   // re-arm first so fn_ may stop() us
    fn_();
  });
}

void PeriodicTimer::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
}

}  // namespace atum::sim
