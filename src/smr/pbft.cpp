#include "smr/pbft.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace atum::smr {

namespace {

constexpr NodeId kNullOrigin = kInvalidNode;  // origin of gap-filling null requests

void write_digest(ByteWriter& w, const crypto::Digest& d) { w.raw(d.data(), d.size()); }

crypto::Digest read_digest(ByteReader& r) {
  crypto::Digest d;
  r.raw(d.data(), d.size());
  return d;
}

}  // namespace

PbftSmr::PbftSmr(net::Transport transport, GroupConfig config, crypto::KeyStore& keys,
                 PbftOptions options, PbftFaultMode fault)
    : transport_(std::move(transport)),
      config_(std::move(config)),
      keys_(keys),
      options_(options),
      fault_(fault),
      current_timeout_(options.view_change_timeout) {
  config_.normalize();
  // Instance tag: scopes EVERY message — the three-phase traffic as much
  // as state fetch/reply — to THIS engine instance, as the leading u64 of
  // each frame (checked and stripped in on_message). Consensus frames from
  // a different instance over the same node ids must be invisible, not
  // merely unlikely to quorum: a joiner attached mid-epoch with an empty
  // log would otherwise assemble quorums out of the NEXT instance's
  // traffic at its own seq numbering and fork. Every replica of one
  // instance — including a state-synced joiner whose local epoch counter
  // differs — must hold the same tag. ReconfigurableSmr passes one derived
  // from the config-history epoch hash (collision-free across epochs, even
  // A -> B -> A membership cycles); a directly constructed engine (tests,
  // single-epoch uses) falls back to deriving it from the member list.
  if (options_.instance_tag != 0) {
    instance_tag_ = options_.instance_tag;
  } else {
    ByteWriter tw;
    tw.str("pbft-instance");
    for (NodeId n : config_.members) tw.u64(n);
    instance_tag_ = crypto::digest_prefix64(crypto::sha256(tw.data()));
  }
  if (options_.metrics != nullptr) {
    obs::Registry& m = *options_.metrics;
    ctr_pre_prepares_ = &m.counter("smr.pre_prepares");
    ctr_prepares_ = &m.counter("smr.prepares");
    ctr_commits_ = &m.counter("smr.commits");
    ctr_batches_ = &m.counter("smr.batches_executed");
    ctr_ops_ = &m.counter("smr.ops_decided");
    ctr_view_changes_ = &m.counter("smr.view_changes");
    ctr_checkpoints_ = &m.counter("smr.checkpoints_stable");
    ctr_installs_ = &m.counter("smr.checkpoint_installs");
    hist_batch_ops_ = &m.histogram("smr.batch_ops");
  }
  transport_.listen({net::MsgType::kPbftRequest, net::MsgType::kPbftPrePrepare,
                     net::MsgType::kPbftPrepare, net::MsgType::kPbftCommit,
                     net::MsgType::kPbftCheckpoint, net::MsgType::kPbftViewChange,
                     net::MsgType::kPbftNewView, net::MsgType::kPbftStateFetch,
                     net::MsgType::kPbftStateReply},
                    [this](const net::Message& m) { on_message(m); });
}

PbftSmr::~PbftSmr() { stop(); }

void PbftSmr::stop() {
  if (stopped_) return;
  stopped_ = true;
  disarm_view_timer();
  disarm_batch_timer();
  transport_.close();
}

void PbftSmr::set_decide_handler(DecideFn fn) { decide_ = std::move(fn); }

void PbftSmr::trace(obs::TracePoint point, std::uint64_t key, std::uint64_t a,
                    std::uint64_t b) const {
  obs::Tracer* t = options_.tracer;
  if (t == nullptr || !t->enabled()) return;
  // Transport::simulator() is non-const; a Transport copy carries only the
  // network pointer and node id, so copying here is free of registrations.
  net::Transport tp = transport_;
  t->record(tp.simulator().now(), transport_.self(), point, key, a, b);
}

bool PbftSmr::faulty_now() const {
  switch (fault_) {
    case PbftFaultMode::kCorrect: return false;
    case PbftFaultMode::kSilent: return true;
    case PbftFaultMode::kSilentPrimary: return is_primary();
    case PbftFaultMode::kEquivocatePrimary: return false;  // handled in primary_assign
  }
  return false;
}

void PbftSmr::encode_ops_region(ByteWriter& w, const std::vector<Request>& batch) {
  w.varint(batch.size());
  for (const Request& req : batch) {
    w.u64(req.id.origin);
    w.u64(req.id.seq);
    w.bytes(req.op.data(), req.op.size());
  }
}

std::vector<PbftSmr::Request> PbftSmr::parse_ops_region(
    const net::Payload& frame, std::span<const std::uint8_t> region) {
  ByteReader r(region.data(), region.size());
  std::uint64_t count = r.varint();
  // Each op is at least 17 bytes; a Byzantine count far beyond the bytes
  // present must fail as malformed before any reserve.
  if (count > r.remaining()) throw SerdeError("ops region count exceeds buffer");
  std::vector<Request> batch;
  batch.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    Request req;
    req.id.origin = r.u64();
    req.id.seq = r.u64();
    req.op = frame.slice(r.bytes_view());  // zero-copy: view of the frame
    // The null origin is reserved for gap-filling empty batches; an op
    // claiming it could never be matched against a client broadcast.
    if (req.id.origin == kNullOrigin) throw SerdeError("op with null origin");
    batch.push_back(std::move(req));
  }
  r.expect_done();
  return batch;
}

crypto::Digest PbftSmr::batch_digest(const std::vector<Request>& batch) const {
  if (batch.empty()) return crypto::Digest{};  // null batch: never hashed
  ByteWriter w;
  encode_ops_region(w, batch);
  return crypto::sha256(w.data());
}

Bytes PbftSmr::tagged(const Bytes& body) const {
  ByteWriter w;
  w.u64(instance_tag_);
  w.raw(body.data(), body.size());
  return w.take();
}

void PbftSmr::broadcast(net::MsgType type, const Bytes& payload, bool include_self) {
  net::Payload frozen(tagged(payload));  // one buffer shared by every replica
  for (NodeId peer : config_.members) {
    if (peer == transport_.self()) continue;
    transport_.send(peer, type, frozen);
  }
  if (include_self) {
    transport_.send(transport_.self(), type, frozen);
  }
}

// ---------------------------------------------------------------------------
// Request submission
// ---------------------------------------------------------------------------

void PbftSmr::propose(Bytes op) {
  if (fault_ == PbftFaultMode::kSilent) return;
  // Freeze the op once; pending_, the log, and the decide path all share it.
  Request req{RequestId{transport_.self(), ++origin_seq_}, net::Payload(std::move(op))};
  if (options_.tracer != nullptr && options_.tracer->enabled()) {
    trace(obs::TracePoint::kPropose, crypto::digest_prefix64(req.op.digest()), req.id.seq);
  }

  ByteWriter w;
  w.u64(req.id.origin);
  w.u64(req.id.seq);
  w.bytes(req.op.data(), req.op.size());
  broadcast(net::MsgType::kPbftRequest, w.data());

  pending_[req.id] = req.op;
  if (is_primary() && !view_changing_) {
    enqueue_op(req);
  }
  arm_view_timer();
}

void PbftSmr::handle_request(const net::Message& msg) {
  ByteReader r(msg.payload);
  Request req;
  req.id.origin = r.u64();
  req.id.seq = r.u64();
  req.op = msg.payload.slice(r.bytes_view());     // zero-copy: view of the frame
  if (req.id.origin != msg.from) return;          // clients are the members themselves
  if (!config_.contains(req.id.origin)) return;
  if (assigned_or_executed_.contains(req.id.origin, req.id.seq)) return;

  pending_[req.id] = req.op;
  if (is_primary() && !view_changing_) {
    enqueue_op(req);
  }
  // A pre-prepare may have overtaken this request; replay it now that the
  // client's copy is available for cross-checking. The replay may stash the
  // same message again under the batch's NEXT still-missing request id.
  if (auto it = stashed_pre_prepares_.find(req.id); it != stashed_pre_prepares_.end()) {
    net::Message stashed = std::move(it->second);
    stashed_pre_prepares_.erase(it);
    handle_pre_prepare(stashed);
  }
  arm_view_timer();  // backup: expect the primary to order it
}

// ---------------------------------------------------------------------------
// Primary-side batching
// ---------------------------------------------------------------------------

void PbftSmr::enqueue_op(const Request& req) {
  if (fault_ == PbftFaultMode::kSilentPrimary) return;
  if (assigned_or_executed_.contains(req.id.origin, req.id.seq)) return;
  for (const Request& buffered : batch_buf_) {
    if (buffered.id == req.id) return;  // already awaiting the next flush
  }
  batch_buf_.push_back(req);
  batch_buf_bytes_ += req.op.size();
  if (batch_buf_.size() >= options_.batch_max_ops ||
      batch_buf_bytes_ >= options_.batch_max_bytes) {
    flush_batch();
  } else {
    arm_batch_timer();  // deadline flush; pure sim time, deterministic
  }
}

void PbftSmr::arm_batch_timer() {
  if (batch_timer_ != 0 || stopped_) return;
  batch_timer_ = transport_.simulator().schedule_after(options_.batch_flush_delay, [this] {
    batch_timer_ = 0;
    if (is_primary() && !view_changing_) flush_batch();
  });
}

void PbftSmr::disarm_batch_timer() {
  if (batch_timer_ != 0) {
    transport_.simulator().cancel(batch_timer_);
    batch_timer_ = 0;
  }
}

void PbftSmr::flush_batch() {
  // maybe_send_prepare below can execute a committed entry inline, whose
  // decide callback may propose fresh ops; the guarded re-entrant call
  // returns and the outer loop drains what it enqueued.
  if (flushing_) return;
  disarm_batch_timer();
  // Ops that got handled since buffering (e.g. adopted through state
  // transfer) must not be re-proposed; drop them before burning a seq.
  std::erase_if(batch_buf_, [&](const Request& r) {
    return assigned_or_executed_.contains(r.id.origin, r.id.seq);
  });
  flushing_ = true;
  // The buffer can hold more than one batch's worth (accumulated behind a
  // closed window, or re-proposals after a view change): carve batches
  // bounded by batch_max_ops/batch_max_bytes until the buffer drains or
  // the window closes. collect_garbage retries whatever stays behind.
  while (!batch_buf_.empty() && in_window(next_seq_)) {
    std::size_t count = 0, bytes = 0;
    while (count < batch_buf_.size() && count < options_.batch_max_ops &&
           bytes < options_.batch_max_bytes) {
      bytes += batch_buf_[count].op.size();
      ++count;
    }
    std::vector<Request> batch(std::make_move_iterator(batch_buf_.begin()),
                               std::make_move_iterator(batch_buf_.begin() + static_cast<long>(count)));
    batch_buf_.erase(batch_buf_.begin(), batch_buf_.begin() + static_cast<long>(count));
    std::uint64_t seq = next_seq_++;
    crypto::Digest d = batch_digest(batch);
    for (const Request& r : batch) assigned_or_executed_.insert(r.id.origin, r.id.seq);
    // NOTE: the requests stay in pending_ until EXECUTED — the view-change
    // timer watches pending_, and an assigned-but-never-committed request
    // must still be able to trigger a view change.

    auto encode = [&](const std::vector<Request>& b) {
      ByteWriter w;
      w.u64(view_);
      w.u64(seq);
      write_digest(w, batch_digest(b));
      ByteWriter ow;
      encode_ops_region(ow, b);
      w.bytes(ow.data());
      return w.take();
    };

    LogEntry& entry = log_[seq];
    entry.view = view_;
    entry.digest = d;
    entry.batch = std::move(batch);
    entry.pre_prepared = true;

    if (fault_ == PbftFaultMode::kEquivocatePrimary) {
      // Conflicting batches to the two halves of the group (same seq, same
      // request ids, one op's content mutated). Correct replicas can never
      // gather 2f matching prepares for either copy.
      std::vector<Request> alt = entry.batch;
      Bytes alt_op = alt.front().op.to_bytes();
      alt_op.push_back(0xFF);
      alt.front().op = net::Payload(std::move(alt_op));
      net::Payload wire_a(tagged(encode(entry.batch))), wire_b(tagged(encode(alt)));
      std::size_t half = config_.size() / 2;
      for (std::size_t i = 0; i < config_.size(); ++i) {
        if (config_.members[i] == transport_.self()) continue;
        transport_.send(config_.members[i], net::MsgType::kPbftPrePrepare,
                        i < half ? wire_a : wire_b);
      }
      break;  // one equivocated batch per flush is plenty
    }

    if (ctr_pre_prepares_ != nullptr) ctr_pre_prepares_->inc();
    trace(obs::TracePoint::kPrePrepare, crypto::digest_prefix64(d), seq, entry.batch.size());
    broadcast(net::MsgType::kPbftPrePrepare, encode(entry.batch));
    maybe_send_prepare(seq);
  }
  flushing_ = false;
  batch_buf_bytes_ = 0;
  for (const Request& r : batch_buf_) batch_buf_bytes_ += r.op.size();
}

// ---------------------------------------------------------------------------
// Three-phase agreement
// ---------------------------------------------------------------------------

void PbftSmr::handle_pre_prepare(const net::Message& msg) {
  if (msg.from != primary_of(view_)) return;
  ByteReader r(msg.payload);
  std::uint64_t view = r.u64();
  std::uint64_t seq = r.u64();
  crypto::Digest digest = read_digest(r);
  std::span<const std::uint8_t> ops_region = r.bytes_view();
  // Zero-copy: every op stays a slice of the pre-prepare frame. Every
  // replica shares the primary's one frozen buffer, so the whole group
  // logs, executes, and decides this batch without materializing a copy.
  std::vector<Request> batch = parse_ops_region(msg.payload, ops_region);

  if (view > view_ || (view == view_ && view_changing_)) {
    // Also buffer current-view traffic while mid-view-change: the change
    // may abort back into this view via a NEW-VIEW for it.
    if (future_view_msgs_.size() < kFutureBufferCap) future_view_msgs_.push_back(msg);
    return;
  }
  if (view != view_) return;
  if (!in_window(seq)) return;
  bool is_null = batch.empty();
  // The batch digest covers the ops-region bytes; hashing the slice hits
  // the frame's digest memo, shared with any other holder of this frame.
  if (!is_null && msg.payload.slice(ops_region).digest() != digest) return;

  // The primary must not invent or alter another member's request: accept
  // only ops we can match against the client's own broadcast (or the
  // primary's own ops — the primary is its own client). A batch with an
  // unknown request is stashed until that client's copy arrives (and may
  // re-stash under the next missing id when replayed).
  for (const Request& req : batch) {
    if (req.id.origin == msg.from ||
        assigned_or_executed_.contains(req.id.origin, req.id.seq)) {
      continue;
    }
    auto pit = pending_.find(req.id);
    if (pit == pending_.end()) {
      stashed_pre_prepares_[req.id] = msg;
      return;
    }
    if (pit->second != req.op) return;  // forged content: ignore
  }

  LogEntry& entry = log_[seq];
  if (entry.pre_prepared) {
    if (entry.view == view && entry.digest != digest) return;  // equivocation: ignore
    if (entry.view == view) return;                            // duplicate
  }
  entry.view = view;
  entry.digest = digest;
  entry.batch = std::move(batch);
  entry.pre_prepared = true;
  for (const Request& req : entry.batch) {
    assigned_or_executed_.insert(req.id.origin, req.id.seq);
  }
  // The requests remain pending_ until executed (liveness timer input).

  ByteWriter w;
  w.u64(view);
  w.u64(seq);
  write_digest(w, digest);
  if (ctr_prepares_ != nullptr) ctr_prepares_->inc();
  trace(obs::TracePoint::kPrepare, crypto::digest_prefix64(digest), seq, entry.batch.size());
  broadcast(net::MsgType::kPbftPrepare, w.data());
  entry.prepares.insert(transport_.self());
  maybe_send_commit(seq);
  arm_view_timer();
}

void PbftSmr::handle_prepare(const net::Message& msg) {
  ByteReader r(msg.payload);
  std::uint64_t view = r.u64();
  std::uint64_t seq = r.u64();
  crypto::Digest digest = read_digest(r);
  if (view > view_) {
    if (future_view_msgs_.size() < kFutureBufferCap) future_view_msgs_.push_back(msg);
    return;
  }
  if (view != view_ || !in_window(seq)) return;

  LogEntry& entry = log_[seq];
  if (entry.pre_prepared && entry.digest != digest) return;
  entry.prepares.insert(msg.from);
  maybe_send_commit(seq);
}

void PbftSmr::maybe_send_prepare(std::uint64_t seq) {
  // The primary's pre-prepare acts as its prepare.
  LogEntry& entry = log_[seq];
  entry.prepares.insert(transport_.self());
  maybe_send_commit(seq);
}

void PbftSmr::maybe_send_commit(std::uint64_t seq) {
  LogEntry& entry = log_[seq];
  // Prepared: pre-prepare + 2f prepares (from distinct replicas, self incl).
  if (!entry.pre_prepared) return;
  if (entry.commits.contains(transport_.self())) return;
  if (entry.prepares.size() < 2 * max_faults()) return;

  ByteWriter w;
  w.u64(view_);
  w.u64(seq);
  write_digest(w, entry.digest);
  if (ctr_commits_ != nullptr) ctr_commits_->inc();
  trace(obs::TracePoint::kCommit, crypto::digest_prefix64(entry.digest), seq);
  broadcast(net::MsgType::kPbftCommit, w.data());
  entry.commits.insert(transport_.self());
  try_execute();
}

void PbftSmr::handle_commit(const net::Message& msg) {
  ByteReader r(msg.payload);
  std::uint64_t view = r.u64();
  std::uint64_t seq = r.u64();
  crypto::Digest digest = read_digest(r);
  if (!in_window(seq)) return;

  LogEntry& entry = log_[seq];
  if (entry.pre_prepared && entry.digest != digest) return;
  (void)view;  // commits from any view count once the digest matches
  entry.commits.insert(msg.from);
  try_execute();
}

void PbftSmr::try_execute() {
  while (true) {
    auto it = log_.find(next_exec_ + 1);
    if (it == log_.end()) break;
    LogEntry& entry = it->second;
    bool committed = entry.pre_prepared && entry.prepares.size() >= 2 * max_faults() &&
                     entry.commits.size() >= quorum();
    if (!committed || entry.executed) break;
    execute_entry(next_exec_ + 1, entry);
  }
  maybe_fetch_missing_head();
}

void PbftSmr::maybe_fetch_missing_head() {
  // Only when the next sequence cannot be reconstructed locally: it is
  // either absent from the log or present as a shell of prepares/commits
  // whose pre-prepare — the message that carries the op — predates this
  // replica's attachment (state-synced joiner) or was lost to a partition.
  // Evidence required before fetching: quorum commits on some entry at or
  // beyond the head, proving the instance decided it without us.
  auto head = log_.find(next_exec_ + 1);
  if (head != log_.end() && head->second.pre_prepared) return;  // normal path
  // Rate limit and round bound BEFORE the anchor scan: with a gap open,
  // try_execute runs on every prepare/commit and the O(window) scan below
  // must not ride the message hot path. Rounds are finite so a permanent
  // zombie (its instance retired under it) stops fetching instead of
  // probing forever — which also bounds the window for the residual
  // instance-tag collision (see the ctor comment); the counter resets
  // whenever execution progresses.
  const TimeMicros now = transport_.simulator().now();
  if (now - last_head_fetch_ < options_.view_change_timeout) return;
  if (head_fetch_rounds_ >= kMaxHeadFetchRounds) return;
  std::uint64_t anchor = 0;  // first quorum-committed seq at/beyond the head
  for (auto it = head != log_.end() ? head : log_.upper_bound(next_exec_ + 1);
       it != log_.end(); ++it) {
    if (it->second.commits.size() >= quorum()) {
      anchor = it->first;
      break;
    }
  }
  if (anchor == 0) return;  // no proof the instance is ahead of us
  last_head_fetch_ = now;
  ++head_fetch_rounds_;
  state_reply_votes_.clear();  // votes from older rounds cover other ranges
  // Ask 2f+1 peers for exactly [next_exec_, anchor): pinning the range end
  // makes every correct replier's bytes identical, so the f+1-matching
  // acceptance rule can fire. Up to f of those asked may be faulty or
  // equally behind; enough matching replies can still form.
  // Freeze the request once: every recipient gets the same frame, so the
  // 2f+1 fan-out shares one buffer instead of copying the bytes per peer.
  ByteWriter w;
  w.u64(instance_tag_);
  w.u64(next_exec_);
  w.u64(anchor);
  const net::Payload frame(w.take());
  std::size_t asked = 0;
  for (NodeId node : config_.members) {
    if (node == transport_.self()) continue;
    if (asked++ >= 2 * max_faults() + 1) break;
    transport_.send(node, net::MsgType::kPbftStateFetch, frame);
  }
}

void PbftSmr::execute_entry(std::uint64_t seq, LogEntry& entry) {
  entry.executed = true;
  next_exec_ = seq;
  head_fetch_rounds_ = 0;  // progress: future gaps get fresh fetch rounds
  // One exec record per seq, holding the whole batch in delivery order
  // (empty for a null batch). An op that already executed under an earlier
  // seq — an equivocating client re-submitting — is recorded as a null op
  // so replayed histories skip it identically.
  ExecRecord rec;
  rec.ops.reserve(entry.batch.size());
  std::uint64_t fresh_ops = 0;
  for (const Request& req : entry.batch) {
    if (executed_requests_.insert(req.id.origin, req.id.seq)) {
      rec.ops.push_back(ExecOp{req.id.origin, req.id.seq, req.op});
      ++fresh_ops;
    } else {
      rec.ops.push_back(ExecOp{kNullOrigin, req.id.seq, {}});
    }
    assigned_or_executed_.insert(req.id.origin, req.id.seq);
    pending_.erase(req.id);
  }
  // Ordering matters: fold the record into the state digest, count its
  // fresh ops, and capture the checkpoint at a boundary BEFORE any decide
  // callback runs — a callback may propose and (with tiny quorums) execute
  // the next seq inline, and that nested execution's checkpoint must see
  // this record fully accounted.
  fold_record(rec);
  executed_ops_ += fresh_ops;
  if (ctr_batches_ != nullptr) ctr_batches_->inc();
  if (hist_batch_ops_ != nullptr) hist_batch_ops_->record(fresh_ops);
  const ExecRecord fired = rec;  // local copy: nested execution below may
                                 // push to / trim the deque under us
  exec_history_.push_back(std::move(rec));
  if (seq % options_.checkpoint_interval == 0) {
    send_checkpoint(seq);
  }
  ++exec_depth_;
  for (const ExecOp& op : fired.ops) {
    if (op.origin == kNullOrigin) continue;
    // Zero-copy async decide: the op is already a refcounted slice of the
    // pre-prepare frame, shared by the log, exec_history_ and its
    // batch-mates. The callback (and everything above it) works on the
    // same buffer; the seq argument is the per-op delivery ordinal.
    ++decided_ops_;
    if (ctr_ops_ != nullptr) ctr_ops_->inc();
    if (options_.tracer != nullptr && options_.tracer->enabled()) {
      trace(obs::TracePoint::kDecide, crypto::digest_prefix64(op.op.digest()), seq);
    }
    if (decide_) decide_(decided_ops_ - 1, op.origin, op.op);
  }
  --exec_depth_;
  trim_history();
  maybe_stabilize();
  // Progress was made: withdraw any view change this replica started out of
  // lag, then restart (or disarm) the liveness timer.
  abandon_view_change();
  current_timeout_ = options_.view_change_timeout;
  if (pending_.empty()) {
    disarm_view_timer();
  } else {
    disarm_view_timer();
    arm_view_timer();
  }
}

// ---------------------------------------------------------------------------
// Checkpoints & state transfer
// ---------------------------------------------------------------------------

// Canonical per-record encoding: folded into the incremental state digest
// and reused verbatim by state replies, so a fetcher re-folding served
// records reproduces the server's digest chain byte-for-byte.
void PbftSmr::encode_exec_record(ByteWriter& w, const ExecRecord& rec) {
  w.varint(rec.ops.size());
  for (const ExecOp& op : rec.ops) {
    w.u64(op.origin);
    w.u64(op.origin_seq);
    w.bytes(op.op.data(), op.op.size());
  }
}

void PbftSmr::fold_record(const ExecRecord& rec) {
  ByteWriter w;
  w.raw(state_digest_.data(), state_digest_.size());
  encode_exec_record(w, rec);
  state_digest_ = crypto::sha256(w.data());
}

// Checkpoint body CB(seq) — the full wire message AND the thing voted on
// (votes store the SHA-256 of these bytes): the incremental state digest
// pins the executed prefix, the op count pins the decide ordinal space, and
// the request-ledger encoding lets an installing replica restore its dedup
// state without replaying the truncated prefix.
Bytes PbftSmr::checkpoint_body(std::uint64_t seq, const crypto::Digest& state_digest,
                               std::uint64_t ops, const Bytes& ledger_wire) {
  ByteWriter w;
  w.u64(seq);
  write_digest(w, state_digest);
  w.u64(ops);
  w.bytes(ledger_wire);
  return w.take();
}

void PbftSmr::send_checkpoint(std::uint64_t seq) {
  ByteWriter lw;
  executed_requests_.encode(lw);
  Bytes ledger_wire = lw.take();
  Bytes body = checkpoint_body(seq, state_digest_, executed_ops_, ledger_wire);
  crypto::Digest d = crypto::sha256(body);
  own_ckpt_[seq] = CheckpointData{state_digest_, executed_ops_, std::move(ledger_wire)};
  broadcast(net::MsgType::kPbftCheckpoint, body);
  checkpoints_[seq][transport_.self()] = d;
  // Stabilization (our vote may complete a quorum) is NOT checked here:
  // send_checkpoint runs before the boundary record's decides fire, and
  // truncating the history mid-delivery would pop the record under them.
  // execute_entry/adopt_entries call maybe_stabilize() after unwinding.
}

void PbftSmr::handle_checkpoint(const net::Message& msg) {
  ByteReader r(msg.payload);
  std::uint64_t seq = r.u64();
  (void)read_digest(r);  // state digest: covered by the body digest below
  (void)r.u64();         // op count: likewise
  {
    // The ledger region must at least parse — a vote whose body could never
    // be installed is dropped as malformed (SerdeError -> on_message net).
    std::span<const std::uint8_t> region = r.bytes_view();
    ByteReader lr(region.data(), region.size());
    (void)RequestLedger::decode(lr);
    lr.expect_done();
  }
  r.expect_done();
  if (seq <= stable_seq_) return;
  if (seq % options_.checkpoint_interval != 0) return;  // not a boundary

  // The vote is the digest of the whole body (memoized on the frame).
  crypto::Digest d = msg.payload.digest();
  auto& votes = checkpoints_[seq];
  votes[msg.from] = d;

  std::size_t matching = 0;
  for (const auto& [node, digest] : votes) {
    if (digest == d) ++matching;
  }
  if (matching >= quorum() && seq <= next_exec_) {
    collect_garbage(seq);
  } else if (matching >= max_faults() + 1 && seq > next_exec_ + options_.watermark_window / 2) {
    // We have fallen behind a vouched checkpoint: fetch state.
    request_state_transfer();
  }
}

void PbftSmr::maybe_stabilize() {
  // A boundary we just executed may complete a quorum whose peer votes
  // arrived BEFORE we executed it — handle_checkpoint alone would leave the
  // log untruncated until the next peer message. Count votes matching our
  // own; newest eligible boundary wins.
  for (auto it = checkpoints_.rbegin(); it != checkpoints_.rend(); ++it) {
    if (it->first > next_exec_ || it->first <= stable_seq_) continue;
    auto self_it = it->second.find(transport_.self());
    if (self_it == it->second.end()) continue;
    std::size_t matching = 0;
    for (const auto& [node, digest] : it->second) {
      if (digest == self_it->second) ++matching;
    }
    if (matching >= quorum()) {
      if (it->first > stable_seq_ && ctr_checkpoints_ != nullptr) ctr_checkpoints_->inc();
      collect_garbage(it->first);
      return;
    }
  }
}

void PbftSmr::trim_history() {
  if (exec_depth_ > 0) return;  // mid-delivery: deferred to the unwind
  while (exec_base_ < stable_seq_ && !exec_history_.empty()) {
    exec_history_.pop_front();
    ++exec_base_;
  }
}

void PbftSmr::collect_garbage(std::uint64_t stable_seq) {
  if (stable_seq <= stable_seq_) return;
  stable_seq_ = stable_seq;
  log_.erase(log_.begin(), log_.lower_bound(stable_seq + 1));
  checkpoints_.erase(checkpoints_.begin(), checkpoints_.upper_bound(stable_seq));
  // Promote our capture of this boundary to the served stable checkpoint
  // (install_checkpoint sets stable_ckpt_ directly and clears own_ckpt_).
  if (auto it = own_ckpt_.find(stable_seq); it != own_ckpt_.end()) {
    stable_ckpt_ = StableCheckpoint{stable_seq, it->second.state_digest, it->second.ops,
                                    it->second.ledger_wire};
  }
  own_ckpt_.erase(own_ckpt_.begin(), own_ckpt_.upper_bound(stable_seq));
  // The memory bound: everything at or below the stable checkpoint leaves
  // the executed history (and unpins its batch frames). in_window caps
  // next_exec_ at stable_seq_ + watermark_window, so after the trim the
  // history never holds more than watermark_window records.
  trim_history();
  // Requests stuck behind the window may now be assignable (and a batch
  // flush that stalled against the window can retry).
  if (is_primary() && !view_changing_) {
    auto pending_copy = pending_;
    for (const auto& [id, op] : pending_copy) {
      enqueue_op(Request{id, op});
    }
    flush_batch();
  }
}

void PbftSmr::request_state_transfer() {
  // Ask the freshest vouched checkpoint's voters for history.
  for (auto it = checkpoints_.rbegin(); it != checkpoints_.rend(); ++it) {
    if (it->second.size() < max_faults() + 1) continue;
    for (const auto& [node, digest] : it->second) {
      if (node == transport_.self()) continue;
      ByteWriter w;
      w.u64(instance_tag_);
      w.u64(next_exec_);
      w.u64(0);  // no range cap: validated against the vouched checkpoint
      transport_.send(node, net::MsgType::kPbftStateFetch, w.take());
      return;  // one fetch at a time; retried on the next checkpoint signal
    }
  }
}

void PbftSmr::handle_state_fetch(const net::Message& msg) {
  if (faulty_now()) return;
  ByteReader r(msg.payload);
  std::uint64_t from_seq = r.u64();
  std::uint64_t upto = r.u64();  // exclusive end of the decided prefix; 0 = all
  r.expect_done();

  if (from_seq >= exec_base_) {
    // The fetcher's head starts inside our retained history: serve the
    // pinned range — records for seqs (from_seq, min(next_exec_, upto)],
    // exactly the gap it asked for.
    std::uint64_t end = exec_base_ + exec_history_.size();  // == next_exec_
    if (upto != 0) end = std::min(end, upto);
    if (from_seq >= end) return;  // have not executed the requested range yet
    ByteWriter w;
    w.u64(instance_tag_);
    w.u8(kStateReplyRange);
    w.u64(from_seq);
    w.varint(end - from_seq);
    for (std::uint64_t s = from_seq + 1; s <= end; ++s) {
      encode_exec_record(w, exec_history_[static_cast<std::size_t>(s - exec_base_ - 1)]);
    }
    transport_.send(msg.from, net::MsgType::kPbftStateReply, w.take());
    return;
  }
  // The requested range predates our truncation point — those records are
  // gone. Serve the latest stable checkpoint plus every retained record
  // above it; the fetcher installs the checkpoint (skipping the truncated
  // prefix) and replays the head.
  if (!stable_ckpt_) return;
  ByteWriter w;
  w.u64(instance_tag_);
  w.u8(kStateReplyInstall);
  w.u64(from_seq);  // echoed so the fetcher can match reply to request
  w.u64(stable_ckpt_->seq);
  w.raw(stable_ckpt_->state_digest.data(), stable_ckpt_->state_digest.size());
  w.u64(stable_ckpt_->ops);
  w.bytes(stable_ckpt_->ledger_wire.data(), stable_ckpt_->ledger_wire.size());
  w.varint(exec_history_.size());  // head records: (stable, next_exec_]
  for (const ExecRecord& rec : exec_history_) encode_exec_record(w, rec);
  transport_.send(msg.from, net::MsgType::kPbftStateReply, w.take());
}

std::vector<PbftSmr::ExecRecord> PbftSmr::parse_exec_records(const net::Message& msg,
                                                             ByteReader& r) const {
  std::uint64_t count = r.varint();
  // Bound the claimed counts by the bytes actually present (each record is
  // at least 1 byte, each op at least 17) BEFORE reserving: a Byzantine
  // reply declaring 2^60 entries must be dropped as malformed, not turned
  // into a length_error/bad_alloc that escapes the SerdeError net in
  // on_message and kills the replica.
  if (count > r.remaining()) throw SerdeError("state reply count exceeds buffer");
  std::vector<ExecRecord> entries;
  entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t op_count = r.varint();
    if (op_count > r.remaining()) throw SerdeError("state reply op count exceeds buffer");
    ExecRecord rec;
    rec.ops.reserve(static_cast<std::size_t>(op_count));
    for (std::uint64_t j = 0; j < op_count; ++j) {
      ExecOp op;
      op.origin = r.u64();
      op.origin_seq = r.u64();
      op.op = msg.payload.slice(r.bytes_view());  // zero-copy out of the reply frame
      rec.ops.push_back(std::move(op));
    }
    entries.push_back(std::move(rec));
  }
  return entries;
}

// Chain validation: simulate folding `entries` (claiming seqs next_exec_+1
// onward) onto the current state digest / op count / ledger, and at every
// checkpoint boundary rebuild the body the chain implies and count matching
// votes. Returns the highest boundary that f+1 voters confirm (0 = none) —
// everything up to it is provably the group's history, because a correct
// voter hashed the same digest chain over the same records. O(served
// bytes), unlike the seed's full-prefix rehash per candidate checkpoint.
std::uint64_t PbftSmr::validate_chain(const std::vector<ExecRecord>& entries) const {
  crypto::Digest digest = state_digest_;
  std::uint64_t ops = executed_ops_;
  RequestLedger ledger = executed_requests_;
  std::uint64_t best = 0;
  std::uint64_t seq = next_exec_;
  for (const ExecRecord& rec : entries) {
    ++seq;
    ByteWriter fw;
    fw.raw(digest.data(), digest.size());
    encode_exec_record(fw, rec);
    digest = crypto::sha256(fw.data());
    for (const ExecOp& op : rec.ops) {
      if (op.origin == kNullOrigin) continue;
      if (ledger.insert(op.origin, op.origin_seq)) ++ops;
    }
    if (seq % options_.checkpoint_interval != 0) continue;
    auto vit = checkpoints_.find(seq);
    if (vit == checkpoints_.end()) continue;
    ByteWriter lw;
    ledger.encode(lw);
    crypto::Digest body_digest = crypto::sha256(checkpoint_body(seq, digest, ops, lw.take()));
    std::size_t matching = 0;
    for (const auto& [node, vote] : vit->second) {
      if (vote == body_digest) ++matching;
    }
    if (matching >= max_faults() + 1) best = seq;
  }
  return best;
}

void PbftSmr::handle_state_reply(const net::Message& msg) {
  ByteReader r(msg.payload);
  std::uint8_t kind = r.u8();
  std::uint64_t from_seq = r.u64();
  if (from_seq != next_exec_) return;  // stale reply

  if (kind == kStateReplyRange) {
    std::vector<ExecRecord> entries = parse_exec_records(msg, r);
    r.expect_done();
    if (entries.empty()) return;
    std::uint64_t validated = validate_chain(entries);
    if (validated > next_exec_) {
      adopt_entries(entries, validated - next_exec_);
      collect_garbage(validated);
      return;
    }
    // No covering checkpoint — the small-head-gap case (a replica that
    // attached mid-instance; see maybe_fetch_missing_head). Accept the
    // records once f+1 distinct replicas sent byte-identical replies: at
    // least one of them is correct, and correct replicas only serve history
    // they executed.
    std::set<NodeId>& voters = state_reply_votes_[msg.payload.digest()];
    voters.insert(msg.from);
    if (voters.size() < max_faults() + 1) return;
    state_reply_votes_.clear();
    adopt_entries(entries, entries.size());
    return;
  }
  if (kind != kStateReplyInstall) return;

  std::uint64_t cseq = r.u64();
  crypto::Digest state_digest{};
  r.raw(state_digest.data(), state_digest.size());
  std::uint64_t ops = r.u64();
  std::span<const std::uint8_t> ledger_region = r.bytes_view();
  std::vector<ExecRecord> head = parse_exec_records(msg, r);
  r.expect_done();
  if (cseq <= next_exec_) return;  // already past the offered boundary
  if (cseq % options_.checkpoint_interval != 0) return;
  Bytes ledger_wire(ledger_region.begin(), ledger_region.end());
  ByteReader lr(ledger_wire);
  RequestLedger ledger = RequestLedger::decode(lr);
  lr.expect_done();

  // The checkpoint is trusted only against evidence: either f+1 votes on
  // exactly this body (the normal request_state_transfer path — the votes
  // are what triggered the fetch), or f+1 byte-identical whole replies.
  crypto::Digest body_digest =
      crypto::sha256(checkpoint_body(cseq, state_digest, ops, ledger_wire));
  bool ckpt_vouched = false;
  if (auto vit = checkpoints_.find(cseq); vit != checkpoints_.end()) {
    std::size_t matching = 0;
    for (const auto& [node, vote] : vit->second) {
      if (vote == body_digest) ++matching;
    }
    ckpt_vouched = matching >= max_faults() + 1;
  }
  bool whole_reply_vouched = false;
  if (!ckpt_vouched) {
    std::set<NodeId>& voters = state_reply_votes_[msg.payload.digest()];
    voters.insert(msg.from);
    if (voters.size() < max_faults() + 1) return;
    state_reply_votes_.clear();
    whole_reply_vouched = true;
  }

  install_checkpoint(cseq, state_digest, ops, std::move(ledger), std::move(ledger_wire));
  // The head records claim seqs (cseq, server_next]. install_checkpoint ends
  // in try_execute, which may run committed entries from the LOCAL log past
  // the boundary — the same records, by agreement. adopt_entries stamps
  // whatever it is given at next_exec_+1 onward, so the already-covered
  // prefix must be dropped here: adopting it verbatim would re-deliver its
  // ops at fresh seqs and fork the state-digest chain for good.
  const std::uint64_t covered = next_exec_ - cseq;
  if (covered >= head.size()) {
    head.clear();
  } else {
    head.erase(head.begin(), head.begin() + static_cast<std::ptrdiff_t>(covered));
  }
  if (!head.empty()) {
    if (whole_reply_vouched) {
      // f+1 identical replies vouch for the head records too.
      adopt_entries(head, head.size());
    } else {
      // Checkpoint votes cover only the body — a Byzantine server holding a
      // genuine checkpoint could still forge head records. Adopt only the
      // prefix a LATER vouched boundary confirms through the digest chain.
      std::uint64_t validated = validate_chain(head);
      if (validated > next_exec_) adopt_entries(head, validated - next_exec_);
    }
  }
  maybe_stabilize();
}

void PbftSmr::install_checkpoint(std::uint64_t cseq, const crypto::Digest& state_digest,
                                 std::uint64_t ops, RequestLedger ledger, Bytes ledger_wire) {
  const std::uint64_t from_seq = next_exec_;
  const std::uint64_t from_ops = executed_ops_;
  if (ctr_installs_ != nullptr) ctr_installs_->inc();
  next_exec_ = cseq;
  exec_base_ = cseq;
  exec_history_.clear();
  state_digest_ = state_digest;
  executed_ops_ = ops;
  decided_ops_ = ops;  // skipped ops never fire locally; ordinals resume past them
  executed_requests_ = ledger;
  // View-change-carried assignments above the checkpoint are forgotten
  // here; worst case the primary re-assigns such a request and execution
  // dedups it against the ledger — a null op, not a double delivery.
  assigned_or_executed_ = std::move(ledger);
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (executed_requests_.contains(it->first.origin, it->first.seq)) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  stable_ckpt_ = StableCheckpoint{cseq, state_digest_, ops, std::move(ledger_wire)};
  own_ckpt_.clear();
  next_seq_ = std::max(next_seq_, cseq + 1);
  head_fetch_rounds_ = 0;
  // Truncates log_/checkpoints_ behind the boundary and re-arms the primary
  // (own_ckpt_ is empty, so the stable_ckpt_ set above is kept as-is).
  collect_garbage(cseq);
  if (install_) install_(from_seq, cseq, from_ops, ops);
  // Entries logged beyond the installed boundary may be executable now.
  try_execute();
  // The install moved next_exec_: the current view is serving us state, so
  // any lag-triggered view change is moot (see abandon_view_change).
  abandon_view_change();
}

void PbftSmr::adopt_entries(const std::vector<ExecRecord>& entries, std::uint64_t count) {
  const std::uint64_t start = next_exec_;
  ++exec_depth_;
  for (std::uint64_t i = 0; i < count && i < entries.size(); ++i) {
    const std::uint64_t seq = start + i + 1;
    // A decide callback below may propose and execute ahead of us (tiny
    // quorums commit inline); once next_exec_ moves past the entry we are
    // about to adopt, the rest of the reply is stale — bail out rather
    // than fold records out of order.
    if (seq != next_exec_ + 1) break;
    const ExecRecord& rec = entries[static_cast<std::size_t>(i)];
    // Fold the record VERBATIM as served: the state digest chain covers the
    // null-op markers too, so re-nulling against local ledger state would
    // fork the chain from the group's.
    fold_record(rec);
    std::uint64_t fresh_ops = 0;
    for (const ExecOp& op : rec.ops) {
      if (op.origin == kNullOrigin) continue;
      if (executed_requests_.insert(op.origin, op.origin_seq)) ++fresh_ops;
      assigned_or_executed_.insert(op.origin, op.origin_seq);
      pending_.erase(RequestId{op.origin, op.origin_seq});
    }
    executed_ops_ += fresh_ops;
    exec_history_.push_back(rec);
    next_exec_ = seq;
    log_.erase(seq);  // an unexecutable duplicate must not shadow the record
    if (seq % options_.checkpoint_interval == 0) send_checkpoint(seq);
    for (const ExecOp& op : rec.ops) {
      if (op.origin == kNullOrigin) continue;
      ++decided_ops_;
      if (decide_) decide_(decided_ops_ - 1, op.origin, op.op);  // shares the reply frame
    }
  }
  --exec_depth_;
  trim_history();
  maybe_stabilize();
  head_fetch_rounds_ = 0;  // progress: future gaps get fresh fetch rounds
  next_seq_ = std::max(next_seq_, next_exec_ + 1);
  // Entries logged beyond the adopted gap may be executable now.
  try_execute();
  // Adoption that moved next_exec_ is progress in the current view; a
  // lag-triggered view change is moot then (see abandon_view_change).
  if (next_exec_ > start) abandon_view_change();
}

// ---------------------------------------------------------------------------
// View changes
// ---------------------------------------------------------------------------

void PbftSmr::arm_view_timer() {
  if (faulty_now() || stopped_) return;
  if (view_timer_ != 0) return;  // already armed
  if (pending_.empty()) return;
  view_timer_ = transport_.simulator().schedule_after(current_timeout_, [this] {
    view_timer_ = 0;
    if (!pending_.empty() || view_changing_) start_view_change();
  });
}

void PbftSmr::disarm_view_timer() {
  if (view_timer_ != 0) {
    transport_.simulator().cancel(view_timer_);
    view_timer_ = 0;
  }
}

void PbftSmr::start_view_change(std::uint64_t explicit_target) {
  if (faulty_now()) return;
  view_changing_ = true;
  if (explicit_target > view_) {
    target_view_ = explicit_target;
  } else {
    target_view_ = std::max(target_view_ + 1, view_ + 1);
  }
  current_timeout_ *= 2;  // exponential backoff to reach eventual synchrony

  ViewChangeMsg vc;
  vc.new_view = target_view_;
  vc.stable_seq = stable_seq_;
  vc.sender = transport_.self();
  for (const auto& [seq, entry] : log_) {
    if (!entry.pre_prepared) continue;
    if (entry.prepares.size() >= 2 * max_faults()) {
      vc.prepared.push_back(PreparedProof{seq, entry.view, entry.digest, entry.batch});
    }
  }

  ByteWriter w;
  w.u64(vc.new_view);
  w.u64(vc.stable_seq);
  w.varint(vc.prepared.size());
  for (const auto& p : vc.prepared) {
    w.u64(p.seq);
    w.u64(p.view);
    ByteWriter ow;
    encode_ops_region(ow, p.batch);
    w.bytes(ow.data());
  }
  crypto::Signature sig = keys_.key_of(transport_.self()).sign(w.data());
  w.raw(sig.data(), sig.size());
  broadcast(net::MsgType::kPbftViewChange, w.data());

  view_changes_[vc.new_view][vc.sender] = std::move(vc);
  maybe_assemble_new_view();
  arm_view_timer();  // if this view change stalls, try the next view
  if (view_timer_ == 0) {
    // No pending request, but the view change itself must complete.
    view_timer_ = transport_.simulator().schedule_after(current_timeout_, [this] {
      view_timer_ = 0;
      if (view_changing_) start_view_change();
    });
  }
}

void PbftSmr::abandon_view_change() {
  // A lone laggard's view change can never complete: the other replicas see
  // a live primary and will not join, while the complainer sits deaf to
  // current-view traffic (buffered, not handled) and so can never see the
  // progress that would... have come from the traffic it is buffering. The
  // exit is execution progress through state transfer: once installs or
  // adopted records move next_exec_, the current view is demonstrably
  // serving us — withdraw the complaint and replay what was buffered.
  // target_view_ is kept so a later genuine complaint still escalates past
  // every view number this replica has already voted for.
  if (!view_changing_) return;
  view_changing_ = false;
  current_timeout_ = options_.view_change_timeout;
  std::deque<net::Message> replay;
  replay.swap(future_view_msgs_);
  for (const net::Message& m : replay) {
    // Higher-view messages re-buffer themselves inside the handlers.
    if (m.type == net::MsgType::kPbftPrePrepare) {
      handle_pre_prepare(m);
    } else if (m.type == net::MsgType::kPbftPrepare) {
      handle_prepare(m);
    }
  }
}

void PbftSmr::handle_view_change(const net::Message& msg) {
  if (msg.payload.size() < 32) return;
  crypto::Signature sig;
  std::copy(msg.payload.end() - 32, msg.payload.end(), sig.begin());
  if (options_.verify_signatures &&
      !keys_.verify(msg.from, msg.payload.data(), msg.payload.size() - 32, sig)) {
    return;
  }

  // Read the signed body in place; carried ops stay slices of this frame.
  ByteReader r(msg.payload.data(), msg.payload.size() - 32);
  ViewChangeMsg vc;
  vc.new_view = r.u64();
  vc.stable_seq = r.u64();
  std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    PreparedProof p;
    p.seq = r.u64();
    p.view = r.u64();
    // The proof's digest is recomputed from the ops region, never trusted
    // off the wire; hashing the slice hits this frame's digest memo, so the
    // new primary assembling O from many proofs hashes each region once.
    std::span<const std::uint8_t> ops_region = r.bytes_view();
    p.batch = parse_ops_region(msg.payload, ops_region);
    p.digest = p.batch.empty() ? crypto::Digest{} : msg.payload.slice(ops_region).digest();
    vc.prepared.push_back(std::move(p));
  }
  vc.sender = msg.from;
  if (vc.new_view <= view_) return;

  view_changes_[vc.new_view][vc.sender] = std::move(vc);

  // View synchronization (PBFT's liveness rule): once f+1 distinct
  // replicas demand views above our CURRENT TARGET, adopt the smallest
  // such view — this funnels replicas whose timeouts diverged (e.g.
  // across a healed partition) into one view that can reach a quorum,
  // without getting pinned to stale demands for already-dead views.
  std::uint64_t threshold = view_changing_ ? target_view_ : view_;
  std::set<NodeId> demanders;
  std::uint64_t smallest = 0;
  for (const auto& [v, senders] : view_changes_) {
    if (v <= threshold) continue;
    if (smallest == 0) smallest = v;
    for (const auto& [s, m] : senders) demanders.insert(s);
  }
  if (smallest != 0 && demanders.size() >= max_faults() + 1) {
    start_view_change(smallest);
    return;
  }
  maybe_assemble_new_view();
}

void PbftSmr::maybe_assemble_new_view() {
  if (!view_changing_) return;
  auto it = view_changes_.find(target_view_);
  if (it == view_changes_.end()) return;
  if (primary_of(target_view_) != transport_.self()) return;
  if (it->second.size() < quorum()) return;
  if (faulty_now()) return;

  // Compute the re-proposal set O: for every prepared seq, the proof with
  // the highest view wins; gaps become null requests.
  std::map<std::uint64_t, PreparedProof> chosen;
  std::uint64_t max_stable = 0, max_seq = 0;
  for (const auto& [sender, vc] : it->second) {
    max_stable = std::max(max_stable, vc.stable_seq);
    for (const auto& p : vc.prepared) {
      max_seq = std::max(max_seq, p.seq);
      auto [cit, inserted] = chosen.try_emplace(p.seq, p);
      if (!inserted && p.view > cit->second.view) cit->second = p;
    }
  }

  ByteWriter w;
  w.u64(target_view_);
  w.u64(max_stable);
  std::vector<Bytes> o_entries;
  for (std::uint64_t seq = max_stable + 1; seq <= max_seq; ++seq) {
    ByteWriter ow;
    ow.u64(seq);
    auto cit = chosen.find(seq);
    ByteWriter ops;  // op_count 0 = the null batch filling the gap
    encode_ops_region(ops, cit != chosen.end() ? cit->second.batch : std::vector<Request>{});
    ow.bytes(ops.data());
    o_entries.push_back(ow.take());
  }
  w.varint(o_entries.size());
  for (const Bytes& e : o_entries) w.bytes(e);
  crypto::Signature sig = keys_.key_of(transport_.self()).sign(w.data());
  w.raw(sig.data(), sig.size());
  broadcast(net::MsgType::kPbftNewView, w.data());

  // Enter the view locally and re-propose O.
  std::vector<PreparedProof> carried;
  for (std::uint64_t seq = max_stable + 1; seq <= max_seq; ++seq) {
    auto cit = chosen.find(seq);
    if (cit != chosen.end()) {
      carried.push_back(cit->second);
    } else {
      carried.push_back(PreparedProof{seq, target_view_, crypto::Digest{}, {}});
    }
  }
  enter_view(target_view_, carried);
}

void PbftSmr::handle_new_view(const net::Message& msg) {
  if (msg.payload.size() < 32) return;
  crypto::Signature sig;
  std::copy(msg.payload.end() - 32, msg.payload.end(), sig.begin());
  if (options_.verify_signatures &&
      !keys_.verify(msg.from, msg.payload.data(), msg.payload.size() - 32, sig)) {
    return;
  }

  ByteReader r(msg.payload.data(), msg.payload.size() - 32);
  std::uint64_t new_view = r.u64();
  std::uint64_t stable = r.u64();
  if (new_view <= view_) return;
  if (primary_of(new_view) != msg.from) return;

  std::uint64_t n = r.varint();
  std::vector<PreparedProof> carried;
  std::uint64_t seq_expected = stable + 1;
  for (std::uint64_t i = 0; i < n; ++i, ++seq_expected) {
    // Read each O entry as a view into the frame (the old `ByteReader
    // er(r.bytes())` parsed a temporary that died at the end of the
    // statement); carried ops become slices of the NEW-VIEW frame.
    std::span<const std::uint8_t> entry = r.bytes_view();
    ByteReader er(entry.data(), entry.size());
    std::uint64_t seq = er.u64();
    if (seq != seq_expected) return;  // malformed O
    PreparedProof p;
    p.seq = seq;
    p.view = new_view;
    // Batch digests are recomputed locally (an op_count of 0 is the null
    // batch with the all-zero digest), never trusted off the wire.
    std::span<const std::uint8_t> ops_region = er.bytes_view();
    p.batch = parse_ops_region(msg.payload, ops_region);
    p.digest = p.batch.empty() ? crypto::Digest{} : msg.payload.slice(ops_region).digest();
    er.expect_done();
    carried.push_back(std::move(p));
  }

  // Sanity check against our own evidence: the new primary must not replace
  // a batch we hold a prepared certificate for (higher or equal view).
  for (const auto& [seq, entry] : log_) {
    if (!entry.pre_prepared || entry.prepares.size() < 2 * max_faults()) continue;
    if (seq <= stable) continue;
    for (const auto& p : carried) {
      if (p.seq == seq && !p.batch.empty() && p.digest != entry.digest &&
          entry.view >= p.view) {
        return;  // provably bogus NEW-VIEW: stay and let the next view change fire
      }
    }
  }

  enter_view(new_view, carried);
}

void PbftSmr::enter_view(std::uint64_t v, const std::vector<PreparedProof>& carried) {
  view_ = v;
  target_view_ = v;
  view_changing_ = false;
  ++view_changes_completed_;
  if (ctr_view_changes_ != nullptr) ctr_view_changes_->inc();
  current_timeout_ = options_.view_change_timeout;
  disarm_view_timer();
  // A batch buffered while we were primary of a dead view was never
  // pre-prepared; its ops are still in pending_ and get re-enqueued below
  // (as primary) or re-proposed by their clients (as backup).
  disarm_batch_timer();
  batch_buf_.clear();
  batch_buf_bytes_ = 0;
  view_changes_.erase(view_changes_.begin(), view_changes_.upper_bound(v));

  // Assignments from abandoned views are void: only executed requests and
  // the ones the new view carries over count as handled. Anything else in
  // pending_ becomes assignable again.
  assigned_or_executed_ = executed_requests_;
  for (const auto& p : carried) {
    for (const Request& req : p.batch) assigned_or_executed_.insert(req.id.origin, req.id.seq);
  }

  // Reset per-view agreement state above the stable checkpoint and replay O.
  // Sequence assignments from dead views are void: the new view's number
  // space restarts right after what the view change carried over —
  // otherwise a stale next_seq_ leaves unfillable holes below it.
  std::uint64_t carried_max = std::max(next_exec_, stable_seq_);
  for (const auto& p : carried) carried_max = std::max(carried_max, p.seq);
  log_.erase(log_.upper_bound(carried_max), log_.end());
  next_seq_ = carried_max + 1;

  for (const auto& p : carried) {
    if (p.seq <= next_exec_) continue;  // already executed here
    LogEntry& entry = log_[p.seq];
    if (entry.executed) continue;
    entry.view = v;
    entry.digest = p.digest;
    entry.batch = p.batch;
    entry.pre_prepared = true;
    entry.prepares.clear();
    entry.commits.clear();

    ByteWriter w;
    w.u64(v);
    w.u64(p.seq);
    write_digest(w, p.digest);
    broadcast(net::MsgType::kPbftPrepare, w.data());
    entry.prepares.insert(transport_.self());
  }

  // Replay protocol messages that arrived for this view before we entered
  // it (early entrants' prepares must not be lost).
  std::deque<net::Message> replay;
  replay.swap(future_view_msgs_);
  for (const net::Message& m : replay) {
    if (m.type == net::MsgType::kPbftPrePrepare) {
      handle_pre_prepare(m);
    } else if (m.type == net::MsgType::kPbftPrepare) {
      handle_prepare(m);
    }
  }

  // The new primary picks up whatever is still pending: everything not
  // carried over gets batched afresh (enqueue flushes full batches as it
  // goes; the final flush sends the remainder immediately — a new view
  // must not sit on re-proposals for a deadline tick).
  if (is_primary()) {
    auto pending_copy = pending_;
    for (const auto& [id, op] : pending_copy) {
      enqueue_op(Request{id, op});
    }
    flush_batch();
  } else if (!faulty_now()) {
    // Retransmit our own unordered requests: the new primary may never
    // have received them (e.g. it was partitioned when they were issued).
    for (const auto& [id, op] : pending_) {
      if (id.origin != transport_.self()) continue;
      ByteWriter w;
      w.u64(instance_tag_);
      w.u64(id.origin);
      w.u64(id.seq);
      w.bytes(op.data(), op.size());
      transport_.send(primary_of(view_), net::MsgType::kPbftRequest, w.take());
    }
  }
  if (!pending_.empty()) arm_view_timer();
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void PbftSmr::on_message(const net::Message& raw) {
  if (stopped_) return;
  if (fault_ == PbftFaultMode::kSilent) return;
  if (!config_.contains(raw.from)) return;
  // Envelope check: the leading u64 of every frame is the instance tag.
  // Frames from another instance (an earlier or later epoch running over
  // overlapping node ids) are dropped here, before any handler can mistake
  // their seq numbering for this instance's.
  if (raw.payload.size() < 8) return;
  net::Message msg = raw;
  {
    ByteReader r(raw.payload);
    // lint: handler-serde-safety-ok(8-byte read is gated by the size()<8 early return above)
    if (r.u64() != instance_tag_) return;
    msg.payload = raw.payload.slice(
        std::span<const std::uint8_t>(raw.payload.data() + 8, raw.payload.size() - 8));
  }
  try {
    switch (msg.type) {
      case net::MsgType::kPbftRequest: handle_request(msg); break;
      case net::MsgType::kPbftPrePrepare: handle_pre_prepare(msg); break;
      case net::MsgType::kPbftPrepare: handle_prepare(msg); break;
      case net::MsgType::kPbftCommit: handle_commit(msg); break;
      case net::MsgType::kPbftCheckpoint: handle_checkpoint(msg); break;
      case net::MsgType::kPbftViewChange: handle_view_change(msg); break;
      case net::MsgType::kPbftNewView: handle_new_view(msg); break;
      case net::MsgType::kPbftStateFetch: handle_state_fetch(msg); break;
      case net::MsgType::kPbftStateReply: handle_state_reply(msg); break;
      default: break;
    }
  } catch (const SerdeError&) {
    // Malformed bytes mark the sender as faulty; drop silently.
  }
}

}  // namespace atum::smr
