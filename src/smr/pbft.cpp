#include "smr/pbft.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace atum::smr {

namespace {

constexpr NodeId kNullOrigin = kInvalidNode;  // origin of gap-filling null requests

void write_digest(ByteWriter& w, const crypto::Digest& d) { w.raw(d.data(), d.size()); }

crypto::Digest read_digest(ByteReader& r) {
  crypto::Digest d;
  r.raw(d.data(), d.size());
  return d;
}

}  // namespace

PbftSmr::PbftSmr(net::Transport transport, GroupConfig config, crypto::KeyStore& keys,
                 PbftOptions options, PbftFaultMode fault)
    : transport_(std::move(transport)),
      config_(std::move(config)),
      keys_(keys),
      options_(options),
      fault_(fault),
      current_timeout_(options.view_change_timeout) {
  config_.normalize();
  // Instance tag: scopes state fetch/reply to THIS engine instance. Every
  // replica of one instance — including a state-synced joiner whose local
  // epoch counter differs — derives the same tag from the shared member
  // list; successive epochs always differ in membership (no-op reconfigs
  // are dropped), so an old-instance laggard cannot adopt a successor
  // instance's history as its own.
  ByteWriter tw;
  tw.str("pbft-instance");
  for (NodeId n : config_.members) tw.u64(n);
  instance_tag_ = crypto::digest_prefix64(crypto::sha256(tw.data()));
  transport_.listen({net::MsgType::kPbftRequest, net::MsgType::kPbftPrePrepare,
                     net::MsgType::kPbftPrepare, net::MsgType::kPbftCommit,
                     net::MsgType::kPbftCheckpoint, net::MsgType::kPbftViewChange,
                     net::MsgType::kPbftNewView, net::MsgType::kPbftStateFetch,
                     net::MsgType::kPbftStateReply},
                    [this](const net::Message& m) { on_message(m); });
}

PbftSmr::~PbftSmr() { stop(); }

void PbftSmr::stop() {
  if (stopped_) return;
  stopped_ = true;
  disarm_view_timer();
  disarm_batch_timer();
  transport_.close();
}

void PbftSmr::set_decide_handler(DecideFn fn) { decide_ = std::move(fn); }

bool PbftSmr::faulty_now() const {
  switch (fault_) {
    case PbftFaultMode::kCorrect: return false;
    case PbftFaultMode::kSilent: return true;
    case PbftFaultMode::kSilentPrimary: return is_primary();
    case PbftFaultMode::kEquivocatePrimary: return false;  // handled in primary_assign
  }
  return false;
}

void PbftSmr::encode_ops_region(ByteWriter& w, const std::vector<Request>& batch) {
  w.varint(batch.size());
  for (const Request& req : batch) {
    w.u64(req.id.origin);
    w.u64(req.id.seq);
    w.bytes(req.op.data(), req.op.size());
  }
}

std::vector<PbftSmr::Request> PbftSmr::parse_ops_region(
    const net::Payload& frame, std::span<const std::uint8_t> region) {
  ByteReader r(region.data(), region.size());
  std::uint64_t count = r.varint();
  // Each op is at least 17 bytes; a Byzantine count far beyond the bytes
  // present must fail as malformed before any reserve.
  if (count > r.remaining()) throw SerdeError("ops region count exceeds buffer");
  std::vector<Request> batch;
  batch.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    Request req;
    req.id.origin = r.u64();
    req.id.seq = r.u64();
    req.op = frame.slice(r.bytes_view());  // zero-copy: view of the frame
    // The null origin is reserved for gap-filling empty batches; an op
    // claiming it could never be matched against a client broadcast.
    if (req.id.origin == kNullOrigin) throw SerdeError("op with null origin");
    batch.push_back(std::move(req));
  }
  r.expect_done();
  return batch;
}

crypto::Digest PbftSmr::batch_digest(const std::vector<Request>& batch) const {
  if (batch.empty()) return crypto::Digest{};  // null batch: never hashed
  ByteWriter w;
  encode_ops_region(w, batch);
  return crypto::sha256(w.data());
}

void PbftSmr::broadcast(net::MsgType type, const Bytes& payload, bool include_self) {
  net::Payload frozen(payload);  // one buffer shared by every replica
  for (NodeId peer : config_.members) {
    if (peer == transport_.self()) continue;
    transport_.send(peer, type, frozen);
  }
  if (include_self) {
    transport_.send(transport_.self(), type, frozen);
  }
}

// ---------------------------------------------------------------------------
// Request submission
// ---------------------------------------------------------------------------

void PbftSmr::propose(Bytes op) {
  if (fault_ == PbftFaultMode::kSilent) return;
  // Freeze the op once; pending_, the log, and the decide path all share it.
  Request req{RequestId{transport_.self(), ++origin_seq_}, net::Payload(std::move(op))};

  ByteWriter w;
  w.u64(req.id.origin);
  w.u64(req.id.seq);
  w.bytes(req.op.data(), req.op.size());
  broadcast(net::MsgType::kPbftRequest, w.data());

  pending_[req.id] = req.op;
  if (is_primary() && !view_changing_) {
    enqueue_op(req);
  }
  arm_view_timer();
}

void PbftSmr::handle_request(const net::Message& msg) {
  ByteReader r(msg.payload);
  Request req;
  req.id.origin = r.u64();
  req.id.seq = r.u64();
  req.op = msg.payload.slice(r.bytes_view());     // zero-copy: view of the frame
  if (req.id.origin != msg.from) return;          // clients are the members themselves
  if (!config_.contains(req.id.origin)) return;
  if (assigned_or_executed_.contains(req.id)) return;

  pending_[req.id] = req.op;
  if (is_primary() && !view_changing_) {
    enqueue_op(req);
  }
  // A pre-prepare may have overtaken this request; replay it now that the
  // client's copy is available for cross-checking. The replay may stash the
  // same message again under the batch's NEXT still-missing request id.
  if (auto it = stashed_pre_prepares_.find(req.id); it != stashed_pre_prepares_.end()) {
    net::Message stashed = std::move(it->second);
    stashed_pre_prepares_.erase(it);
    handle_pre_prepare(stashed);
  }
  arm_view_timer();  // backup: expect the primary to order it
}

// ---------------------------------------------------------------------------
// Primary-side batching
// ---------------------------------------------------------------------------

void PbftSmr::enqueue_op(const Request& req) {
  if (fault_ == PbftFaultMode::kSilentPrimary) return;
  if (assigned_or_executed_.contains(req.id)) return;
  for (const Request& buffered : batch_buf_) {
    if (buffered.id == req.id) return;  // already awaiting the next flush
  }
  batch_buf_.push_back(req);
  batch_buf_bytes_ += req.op.size();
  if (batch_buf_.size() >= options_.batch_max_ops ||
      batch_buf_bytes_ >= options_.batch_max_bytes) {
    flush_batch();
  } else {
    arm_batch_timer();  // deadline flush; pure sim time, deterministic
  }
}

void PbftSmr::arm_batch_timer() {
  if (batch_timer_ != 0 || stopped_) return;
  batch_timer_ = transport_.simulator().schedule_after(options_.batch_flush_delay, [this] {
    batch_timer_ = 0;
    if (is_primary() && !view_changing_) flush_batch();
  });
}

void PbftSmr::disarm_batch_timer() {
  if (batch_timer_ != 0) {
    transport_.simulator().cancel(batch_timer_);
    batch_timer_ = 0;
  }
}

void PbftSmr::flush_batch() {
  // maybe_send_prepare below can execute a committed entry inline, whose
  // decide callback may propose fresh ops; the guarded re-entrant call
  // returns and the outer loop drains what it enqueued.
  if (flushing_) return;
  disarm_batch_timer();
  // Ops that got handled since buffering (e.g. adopted through state
  // transfer) must not be re-proposed; drop them before burning a seq.
  std::erase_if(batch_buf_,
                [&](const Request& r) { return assigned_or_executed_.contains(r.id); });
  flushing_ = true;
  // The buffer can hold more than one batch's worth (accumulated behind a
  // closed window, or re-proposals after a view change): carve batches
  // bounded by batch_max_ops/batch_max_bytes until the buffer drains or
  // the window closes. collect_garbage retries whatever stays behind.
  while (!batch_buf_.empty() && in_window(next_seq_)) {
    std::size_t count = 0, bytes = 0;
    while (count < batch_buf_.size() && count < options_.batch_max_ops &&
           bytes < options_.batch_max_bytes) {
      bytes += batch_buf_[count].op.size();
      ++count;
    }
    std::vector<Request> batch(std::make_move_iterator(batch_buf_.begin()),
                               std::make_move_iterator(batch_buf_.begin() + static_cast<long>(count)));
    batch_buf_.erase(batch_buf_.begin(), batch_buf_.begin() + static_cast<long>(count));
    std::uint64_t seq = next_seq_++;
    crypto::Digest d = batch_digest(batch);
    for (const Request& r : batch) assigned_or_executed_.insert(r.id);
    // NOTE: the requests stay in pending_ until EXECUTED — the view-change
    // timer watches pending_, and an assigned-but-never-committed request
    // must still be able to trigger a view change.

    auto encode = [&](const std::vector<Request>& b) {
      ByteWriter w;
      w.u64(view_);
      w.u64(seq);
      write_digest(w, batch_digest(b));
      ByteWriter ow;
      encode_ops_region(ow, b);
      w.bytes(ow.data());
      return w.take();
    };

    LogEntry& entry = log_[seq];
    entry.view = view_;
    entry.digest = d;
    entry.batch = std::move(batch);
    entry.pre_prepared = true;

    if (fault_ == PbftFaultMode::kEquivocatePrimary) {
      // Conflicting batches to the two halves of the group (same seq, same
      // request ids, one op's content mutated). Correct replicas can never
      // gather 2f matching prepares for either copy.
      std::vector<Request> alt = entry.batch;
      Bytes alt_op = alt.front().op.to_bytes();
      alt_op.push_back(0xFF);
      alt.front().op = net::Payload(std::move(alt_op));
      Bytes wire_a = encode(entry.batch), wire_b = encode(alt);
      std::size_t half = config_.size() / 2;
      for (std::size_t i = 0; i < config_.size(); ++i) {
        if (config_.members[i] == transport_.self()) continue;
        transport_.send(config_.members[i], net::MsgType::kPbftPrePrepare,
                        i < half ? wire_a : wire_b);
      }
      break;  // one equivocated batch per flush is plenty
    }

    broadcast(net::MsgType::kPbftPrePrepare, encode(entry.batch));
    maybe_send_prepare(seq);
  }
  flushing_ = false;
  batch_buf_bytes_ = 0;
  for (const Request& r : batch_buf_) batch_buf_bytes_ += r.op.size();
}

// ---------------------------------------------------------------------------
// Three-phase agreement
// ---------------------------------------------------------------------------

void PbftSmr::handle_pre_prepare(const net::Message& msg) {
  if (msg.from != primary_of(view_)) return;
  ByteReader r(msg.payload);
  std::uint64_t view = r.u64();
  std::uint64_t seq = r.u64();
  crypto::Digest digest = read_digest(r);
  std::span<const std::uint8_t> ops_region = r.bytes_view();
  // Zero-copy: every op stays a slice of the pre-prepare frame. Every
  // replica shares the primary's one frozen buffer, so the whole group
  // logs, executes, and decides this batch without materializing a copy.
  std::vector<Request> batch = parse_ops_region(msg.payload, ops_region);

  if (view > view_ || (view == view_ && view_changing_)) {
    // Also buffer current-view traffic while mid-view-change: the change
    // may abort back into this view via a NEW-VIEW for it.
    if (future_view_msgs_.size() < kFutureBufferCap) future_view_msgs_.push_back(msg);
    return;
  }
  if (view != view_) return;
  if (!in_window(seq)) return;
  bool is_null = batch.empty();
  // The batch digest covers the ops-region bytes; hashing the slice hits
  // the frame's digest memo, shared with any other holder of this frame.
  if (!is_null && msg.payload.slice(ops_region).digest() != digest) return;

  // The primary must not invent or alter another member's request: accept
  // only ops we can match against the client's own broadcast (or the
  // primary's own ops — the primary is its own client). A batch with an
  // unknown request is stashed until that client's copy arrives (and may
  // re-stash under the next missing id when replayed).
  for (const Request& req : batch) {
    if (req.id.origin == msg.from || assigned_or_executed_.contains(req.id)) continue;
    auto pit = pending_.find(req.id);
    if (pit == pending_.end()) {
      stashed_pre_prepares_[req.id] = msg;
      return;
    }
    if (pit->second != req.op) return;  // forged content: ignore
  }

  LogEntry& entry = log_[seq];
  if (entry.pre_prepared) {
    if (entry.view == view && entry.digest != digest) return;  // equivocation: ignore
    if (entry.view == view) return;                            // duplicate
  }
  entry.view = view;
  entry.digest = digest;
  entry.batch = std::move(batch);
  entry.pre_prepared = true;
  for (const Request& req : entry.batch) assigned_or_executed_.insert(req.id);
  // The requests remain pending_ until executed (liveness timer input).

  ByteWriter w;
  w.u64(view);
  w.u64(seq);
  write_digest(w, digest);
  broadcast(net::MsgType::kPbftPrepare, w.data());
  entry.prepares.insert(transport_.self());
  maybe_send_commit(seq);
  arm_view_timer();
}

void PbftSmr::handle_prepare(const net::Message& msg) {
  ByteReader r(msg.payload);
  std::uint64_t view = r.u64();
  std::uint64_t seq = r.u64();
  crypto::Digest digest = read_digest(r);
  if (view > view_) {
    if (future_view_msgs_.size() < kFutureBufferCap) future_view_msgs_.push_back(msg);
    return;
  }
  if (view != view_ || !in_window(seq)) return;

  LogEntry& entry = log_[seq];
  if (entry.pre_prepared && entry.digest != digest) return;
  entry.prepares.insert(msg.from);
  maybe_send_commit(seq);
}

void PbftSmr::maybe_send_prepare(std::uint64_t seq) {
  // The primary's pre-prepare acts as its prepare.
  LogEntry& entry = log_[seq];
  entry.prepares.insert(transport_.self());
  maybe_send_commit(seq);
}

void PbftSmr::maybe_send_commit(std::uint64_t seq) {
  LogEntry& entry = log_[seq];
  // Prepared: pre-prepare + 2f prepares (from distinct replicas, self incl).
  if (!entry.pre_prepared) return;
  if (entry.commits.contains(transport_.self())) return;
  if (entry.prepares.size() < 2 * max_faults()) return;

  ByteWriter w;
  w.u64(view_);
  w.u64(seq);
  write_digest(w, entry.digest);
  broadcast(net::MsgType::kPbftCommit, w.data());
  entry.commits.insert(transport_.self());
  try_execute();
}

void PbftSmr::handle_commit(const net::Message& msg) {
  ByteReader r(msg.payload);
  std::uint64_t view = r.u64();
  std::uint64_t seq = r.u64();
  crypto::Digest digest = read_digest(r);
  if (!in_window(seq)) return;

  LogEntry& entry = log_[seq];
  if (entry.pre_prepared && entry.digest != digest) return;
  (void)view;  // commits from any view count once the digest matches
  entry.commits.insert(msg.from);
  try_execute();
}

void PbftSmr::try_execute() {
  while (true) {
    auto it = log_.find(next_exec_ + 1);
    if (it == log_.end()) break;
    LogEntry& entry = it->second;
    bool committed = entry.pre_prepared && entry.prepares.size() >= 2 * max_faults() &&
                     entry.commits.size() >= quorum();
    if (!committed || entry.executed) break;
    execute_entry(next_exec_ + 1, entry);
  }
  maybe_fetch_missing_head();
}

void PbftSmr::maybe_fetch_missing_head() {
  // Only when the next sequence cannot be reconstructed locally: it is
  // either absent from the log or present as a shell of prepares/commits
  // whose pre-prepare — the message that carries the op — predates this
  // replica's attachment (state-synced joiner) or was lost to a partition.
  // Evidence required before fetching: quorum commits on some entry at or
  // beyond the head, proving the instance decided it without us.
  auto head = log_.find(next_exec_ + 1);
  if (head != log_.end() && head->second.pre_prepared) return;  // normal path
  // Rate limit and round bound BEFORE the anchor scan: with a gap open,
  // try_execute runs on every prepare/commit and the O(window) scan below
  // must not ride the message hot path. Rounds are finite so a permanent
  // zombie (its instance retired under it) stops fetching instead of
  // probing forever — which also bounds the window for the residual
  // instance-tag collision (see the ctor comment); the counter resets
  // whenever execution progresses.
  const TimeMicros now = transport_.simulator().now();
  if (now - last_head_fetch_ < options_.view_change_timeout) return;
  if (head_fetch_rounds_ >= kMaxHeadFetchRounds) return;
  std::uint64_t anchor = 0;  // first quorum-committed seq at/beyond the head
  for (auto it = head != log_.end() ? head : log_.upper_bound(next_exec_ + 1);
       it != log_.end(); ++it) {
    if (it->second.commits.size() >= quorum()) {
      anchor = it->first;
      break;
    }
  }
  if (anchor == 0) return;  // no proof the instance is ahead of us
  last_head_fetch_ = now;
  ++head_fetch_rounds_;
  state_reply_votes_.clear();  // votes from older rounds cover other ranges
  // Ask 2f+1 peers for exactly [next_exec_, anchor): pinning the range end
  // makes every correct replier's bytes identical, so the f+1-matching
  // acceptance rule can fire. Up to f of those asked may be faulty or
  // equally behind; enough matching replies can still form.
  std::size_t asked = 0;
  for (NodeId node : config_.members) {
    if (node == transport_.self()) continue;
    if (asked++ >= 2 * max_faults() + 1) break;
    ByteWriter w;
    w.u64(instance_tag_);
    w.u64(next_exec_);
    w.u64(anchor);
    transport_.send(node, net::MsgType::kPbftStateFetch, w.data());
  }
}

void PbftSmr::execute_entry(std::uint64_t seq, LogEntry& entry) {
  entry.executed = true;
  next_exec_ = seq;
  head_fetch_rounds_ = 0;  // progress: future gaps get fresh fetch rounds
  // One exec record per seq, holding the whole batch in delivery order
  // (empty for a null batch). An op that already executed under an earlier
  // seq — an equivocating client re-submitting — is recorded as a null op
  // so replayed histories skip it identically.
  ExecRecord rec;
  rec.ops.reserve(entry.batch.size());
  for (const Request& req : entry.batch) {
    bool duplicate = !executed_requests_.insert(req.id).second;
    if (duplicate) {
      rec.ops.push_back(ExecOp{kNullOrigin, req.id.seq, {}});
    } else {
      rec.ops.push_back(ExecOp{req.id.origin, req.id.seq, req.op});
    }
    assigned_or_executed_.insert(req.id);
    pending_.erase(req.id);
  }
  exec_history_.push_back(std::move(rec));
  // Index-based: decide_ may propose, and with tiny groups (n = 1) that can
  // commit and execute the NEXT seq inline, growing exec_history_ under us
  // — references into the vector must be re-derived per iteration.
  const std::size_t h = exec_history_.size() - 1;
  for (std::size_t i = 0; i < exec_history_[h].ops.size(); ++i) {
    if (exec_history_[h].ops[i].origin == kNullOrigin) continue;
    // Zero-copy async decide: the op is already a refcounted slice of the
    // pre-prepare frame, shared by the log, exec_history_ and its
    // batch-mates. The callback (and everything above it) works on the
    // same buffer; the seq argument is the per-op delivery ordinal.
    ++decided_ops_;
    if (decide_) {
      decide_(decided_ops_ - 1, exec_history_[h].ops[i].origin, exec_history_[h].ops[i].op);
    }
  }

  if (seq % options_.checkpoint_interval == 0) {
    send_checkpoint(seq);
  }
  // Progress was made: restart (or disarm) the liveness timer.
  current_timeout_ = options_.view_change_timeout;
  if (pending_.empty()) {
    disarm_view_timer();
  } else {
    disarm_view_timer();
    arm_view_timer();
  }
}

// ---------------------------------------------------------------------------
// Checkpoints & state transfer
// ---------------------------------------------------------------------------

void PbftSmr::send_checkpoint(std::uint64_t seq) {
  ByteWriter hw;
  for (std::size_t i = 0; i < static_cast<std::size_t>(seq) && i < exec_history_.size(); ++i) {
    hw.varint(exec_history_[i].ops.size());
    for (const ExecOp& op : exec_history_[i].ops) {
      hw.u64(op.origin);
      hw.u64(op.origin_seq);
      hw.bytes(op.op.data(), op.op.size());
    }
  }
  crypto::Digest d = crypto::sha256(hw.data());

  ByteWriter w;
  w.u64(seq);
  write_digest(w, d);
  broadcast(net::MsgType::kPbftCheckpoint, w.data());
  checkpoints_[seq][transport_.self()] = d;
}

void PbftSmr::handle_checkpoint(const net::Message& msg) {
  ByteReader r(msg.payload);
  std::uint64_t seq = r.u64();
  crypto::Digest d = read_digest(r);
  if (seq <= stable_seq_) return;

  auto& votes = checkpoints_[seq];
  votes[msg.from] = d;

  std::size_t matching = 0;
  for (const auto& [node, digest] : votes) {
    if (digest == d) ++matching;
  }
  if (matching >= quorum() && seq <= next_exec_) {
    collect_garbage(seq);
  } else if (matching >= max_faults() + 1 && seq > next_exec_ + options_.watermark_window / 2) {
    // We have fallen behind a vouched checkpoint: fetch state.
    request_state_transfer();
  }
}

void PbftSmr::collect_garbage(std::uint64_t stable_seq) {
  if (stable_seq <= stable_seq_) return;
  stable_seq_ = stable_seq;
  log_.erase(log_.begin(), log_.lower_bound(stable_seq + 1));
  checkpoints_.erase(checkpoints_.begin(), checkpoints_.upper_bound(stable_seq));
  // Requests stuck behind the window may now be assignable (and a batch
  // flush that stalled against the window can retry).
  if (is_primary() && !view_changing_) {
    auto pending_copy = pending_;
    for (const auto& [id, op] : pending_copy) {
      enqueue_op(Request{id, op});
    }
    flush_batch();
  }
}

void PbftSmr::request_state_transfer() {
  // Ask the freshest vouched checkpoint's voters for history.
  for (auto it = checkpoints_.rbegin(); it != checkpoints_.rend(); ++it) {
    if (it->second.size() < max_faults() + 1) continue;
    for (const auto& [node, digest] : it->second) {
      if (node == transport_.self()) continue;
      ByteWriter w;
      w.u64(instance_tag_);
      w.u64(next_exec_);
      w.u64(0);  // no range cap: validated against the vouched checkpoint
      transport_.send(node, net::MsgType::kPbftStateFetch, w.data());
      return;  // one fetch at a time; retried on the next checkpoint signal
    }
  }
}

void PbftSmr::handle_state_fetch(const net::Message& msg) {
  if (faulty_now()) return;
  ByteReader r(msg.payload);
  if (r.u64() != instance_tag_) return;  // a different (older/newer) instance
  std::uint64_t from_seq = r.u64();
  std::uint64_t upto = r.u64();  // exclusive end of the decided prefix; 0 = all
  if (from_seq >= exec_history_.size()) return;
  std::uint64_t end = exec_history_.size();
  // history[i] holds seq i+1, so serving indices [from_seq, upto) hands the
  // fetcher seqs from_seq+1 .. upto inclusive — the range it pinned.
  if (upto != 0) end = std::min<std::uint64_t>(end, upto);
  if (from_seq >= end) return;  // have not executed the requested range yet

  ByteWriter w;
  w.u64(instance_tag_);
  w.u64(from_seq);
  w.varint(end - from_seq);
  for (std::size_t i = static_cast<std::size_t>(from_seq); i < static_cast<std::size_t>(end); ++i) {
    w.varint(exec_history_[i].ops.size());
    for (const ExecOp& op : exec_history_[i].ops) {
      w.u64(op.origin);
      w.u64(op.origin_seq);
      w.bytes(op.op.data(), op.op.size());
    }
  }
  transport_.send(msg.from, net::MsgType::kPbftStateReply, w.data());
}

void PbftSmr::handle_state_reply(const net::Message& msg) {
  ByteReader r(msg.payload);
  if (r.u64() != instance_tag_) return;  // a different instance's history
  std::uint64_t from_seq = r.u64();
  if (from_seq != next_exec_) return;  // stale reply
  std::uint64_t count = r.varint();
  // Bound the claimed counts by the bytes actually present (each record is
  // at least 1 byte, each op at least 17) BEFORE reserving: a Byzantine
  // reply declaring 2^60 entries must be dropped as malformed, not turned
  // into a length_error/bad_alloc that escapes the SerdeError net below and
  // kills the replica.
  if (count > r.remaining()) throw SerdeError("state reply count exceeds buffer");
  std::vector<ExecRecord> entries;
  entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t op_count = r.varint();
    if (op_count > r.remaining()) throw SerdeError("state reply op count exceeds buffer");
    ExecRecord rec;
    rec.ops.reserve(static_cast<std::size_t>(op_count));
    for (std::uint64_t j = 0; j < op_count; ++j) {
      ExecOp op;
      op.origin = r.u64();
      op.origin_seq = r.u64();
      op.op = msg.payload.slice(r.bytes_view());  // zero-copy out of the reply frame
      rec.ops.push_back(std::move(op));
    }
    entries.push_back(std::move(rec));
  }

  // Validate: the extended history must hash to a digest vouched by f+1
  // replicas at some checkpoint covered by the reply.
  std::vector<ExecRecord> candidate = exec_history_;
  candidate.insert(candidate.end(), entries.begin(), entries.end());

  std::uint64_t best_validated = 0;
  for (const auto& [seq, votes] : checkpoints_) {
    if (seq <= next_exec_ || seq > candidate.size()) continue;
    ByteWriter hw;
    for (std::size_t i = 0; i < static_cast<std::size_t>(seq); ++i) {
      hw.varint(candidate[i].ops.size());
      for (const ExecOp& op : candidate[i].ops) {
        hw.u64(op.origin);
        hw.u64(op.origin_seq);
        hw.bytes(op.op.data(), op.op.size());
      }
    }
    crypto::Digest d = crypto::sha256(hw.data());
    std::size_t matching = 0;
    for (const auto& [node, digest] : votes) {
      if (digest == d) ++matching;
    }
    if (matching >= max_faults() + 1) best_validated = std::max(best_validated, seq);
  }
  if (best_validated == 0) {
    // No covering checkpoint — the small-head-gap case (a replica that
    // attached mid-instance; see maybe_fetch_missing_head). Accept the
    // history once f+1 distinct replicas sent byte-identical replies: at
    // least one of them is correct, and correct replicas only serve history
    // they executed.
    crypto::Digest reply_digest = msg.payload.digest();
    std::set<NodeId>& voters = state_reply_votes_[reply_digest];
    voters.insert(msg.from);
    if (voters.size() < max_faults() + 1) return;
    state_reply_votes_.clear();
    adopt_history(candidate, candidate.size());
    return;
  }

  adopt_history(candidate, best_validated);
  collect_garbage(best_validated);
}

void PbftSmr::adopt_history(const std::vector<ExecRecord>& candidate, std::uint64_t upto) {
  for (std::uint64_t seq = next_exec_ + 1; seq <= upto; ++seq) {
    const ExecRecord& rec = candidate[static_cast<std::size_t>(seq - 1)];
    exec_history_.push_back(rec);
    for (const ExecOp& op : rec.ops) {
      if (op.origin == kNullOrigin) continue;
      executed_requests_.insert(RequestId{op.origin, op.origin_seq});
      assigned_or_executed_.insert(RequestId{op.origin, op.origin_seq});
      pending_.erase(RequestId{op.origin, op.origin_seq});
      ++decided_ops_;
      if (decide_) decide_(decided_ops_ - 1, op.origin, op.op);  // shares the reply frame
    }
    next_exec_ = seq;
    log_.erase(seq);  // an unexecutable duplicate must not shadow the record
  }
  head_fetch_rounds_ = 0;  // progress: future gaps get fresh fetch rounds
  next_seq_ = std::max(next_seq_, next_exec_ + 1);
  // Entries logged beyond the adopted gap may be executable now.
  try_execute();
}

// ---------------------------------------------------------------------------
// View changes
// ---------------------------------------------------------------------------

void PbftSmr::arm_view_timer() {
  if (faulty_now() || stopped_) return;
  if (view_timer_ != 0) return;  // already armed
  if (pending_.empty()) return;
  view_timer_ = transport_.simulator().schedule_after(current_timeout_, [this] {
    view_timer_ = 0;
    if (!pending_.empty() || view_changing_) start_view_change();
  });
}

void PbftSmr::disarm_view_timer() {
  if (view_timer_ != 0) {
    transport_.simulator().cancel(view_timer_);
    view_timer_ = 0;
  }
}

void PbftSmr::start_view_change(std::uint64_t explicit_target) {
  if (faulty_now()) return;
  view_changing_ = true;
  if (explicit_target > view_) {
    target_view_ = explicit_target;
  } else {
    target_view_ = std::max(target_view_ + 1, view_ + 1);
  }
  current_timeout_ *= 2;  // exponential backoff to reach eventual synchrony

  ViewChangeMsg vc;
  vc.new_view = target_view_;
  vc.stable_seq = stable_seq_;
  vc.sender = transport_.self();
  for (const auto& [seq, entry] : log_) {
    if (!entry.pre_prepared) continue;
    if (entry.prepares.size() >= 2 * max_faults()) {
      vc.prepared.push_back(PreparedProof{seq, entry.view, entry.digest, entry.batch});
    }
  }

  ByteWriter w;
  w.u64(vc.new_view);
  w.u64(vc.stable_seq);
  w.varint(vc.prepared.size());
  for (const auto& p : vc.prepared) {
    w.u64(p.seq);
    w.u64(p.view);
    ByteWriter ow;
    encode_ops_region(ow, p.batch);
    w.bytes(ow.data());
  }
  crypto::Signature sig = keys_.key_of(transport_.self()).sign(w.data());
  w.raw(sig.data(), sig.size());
  broadcast(net::MsgType::kPbftViewChange, w.data());

  view_changes_[vc.new_view][vc.sender] = std::move(vc);
  maybe_assemble_new_view();
  arm_view_timer();  // if this view change stalls, try the next view
  if (view_timer_ == 0) {
    // No pending request, but the view change itself must complete.
    view_timer_ = transport_.simulator().schedule_after(current_timeout_, [this] {
      view_timer_ = 0;
      if (view_changing_) start_view_change();
    });
  }
}

void PbftSmr::handle_view_change(const net::Message& msg) {
  if (msg.payload.size() < 32) return;
  crypto::Signature sig;
  std::copy(msg.payload.end() - 32, msg.payload.end(), sig.begin());
  if (options_.verify_signatures &&
      !keys_.verify(msg.from, msg.payload.data(), msg.payload.size() - 32, sig)) {
    return;
  }

  // Read the signed body in place; carried ops stay slices of this frame.
  ByteReader r(msg.payload.data(), msg.payload.size() - 32);
  ViewChangeMsg vc;
  vc.new_view = r.u64();
  vc.stable_seq = r.u64();
  std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    PreparedProof p;
    p.seq = r.u64();
    p.view = r.u64();
    // The proof's digest is recomputed from the ops region, never trusted
    // off the wire; hashing the slice hits this frame's digest memo, so the
    // new primary assembling O from many proofs hashes each region once.
    std::span<const std::uint8_t> ops_region = r.bytes_view();
    p.batch = parse_ops_region(msg.payload, ops_region);
    p.digest = p.batch.empty() ? crypto::Digest{} : msg.payload.slice(ops_region).digest();
    vc.prepared.push_back(std::move(p));
  }
  vc.sender = msg.from;
  if (vc.new_view <= view_) return;

  view_changes_[vc.new_view][vc.sender] = std::move(vc);

  // View synchronization (PBFT's liveness rule): once f+1 distinct
  // replicas demand views above our CURRENT TARGET, adopt the smallest
  // such view — this funnels replicas whose timeouts diverged (e.g.
  // across a healed partition) into one view that can reach a quorum,
  // without getting pinned to stale demands for already-dead views.
  std::uint64_t threshold = view_changing_ ? target_view_ : view_;
  std::set<NodeId> demanders;
  std::uint64_t smallest = 0;
  for (const auto& [v, senders] : view_changes_) {
    if (v <= threshold) continue;
    if (smallest == 0) smallest = v;
    for (const auto& [s, m] : senders) demanders.insert(s);
  }
  if (smallest != 0 && demanders.size() >= max_faults() + 1) {
    start_view_change(smallest);
    return;
  }
  maybe_assemble_new_view();
}

void PbftSmr::maybe_assemble_new_view() {
  if (!view_changing_) return;
  auto it = view_changes_.find(target_view_);
  if (it == view_changes_.end()) return;
  if (primary_of(target_view_) != transport_.self()) return;
  if (it->second.size() < quorum()) return;
  if (faulty_now()) return;

  // Compute the re-proposal set O: for every prepared seq, the proof with
  // the highest view wins; gaps become null requests.
  std::map<std::uint64_t, PreparedProof> chosen;
  std::uint64_t max_stable = 0, max_seq = 0;
  for (const auto& [sender, vc] : it->second) {
    max_stable = std::max(max_stable, vc.stable_seq);
    for (const auto& p : vc.prepared) {
      max_seq = std::max(max_seq, p.seq);
      auto [cit, inserted] = chosen.try_emplace(p.seq, p);
      if (!inserted && p.view > cit->second.view) cit->second = p;
    }
  }

  ByteWriter w;
  w.u64(target_view_);
  w.u64(max_stable);
  std::vector<Bytes> o_entries;
  for (std::uint64_t seq = max_stable + 1; seq <= max_seq; ++seq) {
    ByteWriter ow;
    ow.u64(seq);
    auto cit = chosen.find(seq);
    ByteWriter ops;  // op_count 0 = the null batch filling the gap
    encode_ops_region(ops, cit != chosen.end() ? cit->second.batch : std::vector<Request>{});
    ow.bytes(ops.data());
    o_entries.push_back(ow.take());
  }
  w.varint(o_entries.size());
  for (const Bytes& e : o_entries) w.bytes(e);
  crypto::Signature sig = keys_.key_of(transport_.self()).sign(w.data());
  w.raw(sig.data(), sig.size());
  broadcast(net::MsgType::kPbftNewView, w.data());

  // Enter the view locally and re-propose O.
  std::vector<PreparedProof> carried;
  for (std::uint64_t seq = max_stable + 1; seq <= max_seq; ++seq) {
    auto cit = chosen.find(seq);
    if (cit != chosen.end()) {
      carried.push_back(cit->second);
    } else {
      carried.push_back(PreparedProof{seq, target_view_, crypto::Digest{}, {}});
    }
  }
  enter_view(target_view_, carried);
}

void PbftSmr::handle_new_view(const net::Message& msg) {
  if (msg.payload.size() < 32) return;
  crypto::Signature sig;
  std::copy(msg.payload.end() - 32, msg.payload.end(), sig.begin());
  if (options_.verify_signatures &&
      !keys_.verify(msg.from, msg.payload.data(), msg.payload.size() - 32, sig)) {
    return;
  }

  ByteReader r(msg.payload.data(), msg.payload.size() - 32);
  std::uint64_t new_view = r.u64();
  std::uint64_t stable = r.u64();
  if (new_view <= view_) return;
  if (primary_of(new_view) != msg.from) return;

  std::uint64_t n = r.varint();
  std::vector<PreparedProof> carried;
  std::uint64_t seq_expected = stable + 1;
  for (std::uint64_t i = 0; i < n; ++i, ++seq_expected) {
    // Read each O entry as a view into the frame (the old `ByteReader
    // er(r.bytes())` parsed a temporary that died at the end of the
    // statement); carried ops become slices of the NEW-VIEW frame.
    std::span<const std::uint8_t> entry = r.bytes_view();
    ByteReader er(entry.data(), entry.size());
    std::uint64_t seq = er.u64();
    if (seq != seq_expected) return;  // malformed O
    PreparedProof p;
    p.seq = seq;
    p.view = new_view;
    // Batch digests are recomputed locally (an op_count of 0 is the null
    // batch with the all-zero digest), never trusted off the wire.
    std::span<const std::uint8_t> ops_region = er.bytes_view();
    p.batch = parse_ops_region(msg.payload, ops_region);
    p.digest = p.batch.empty() ? crypto::Digest{} : msg.payload.slice(ops_region).digest();
    er.expect_done();
    carried.push_back(std::move(p));
  }

  // Sanity check against our own evidence: the new primary must not replace
  // a batch we hold a prepared certificate for (higher or equal view).
  for (const auto& [seq, entry] : log_) {
    if (!entry.pre_prepared || entry.prepares.size() < 2 * max_faults()) continue;
    if (seq <= stable) continue;
    for (const auto& p : carried) {
      if (p.seq == seq && !p.batch.empty() && p.digest != entry.digest &&
          entry.view >= p.view) {
        return;  // provably bogus NEW-VIEW: stay and let the next view change fire
      }
    }
  }

  enter_view(new_view, carried);
}

void PbftSmr::enter_view(std::uint64_t v, const std::vector<PreparedProof>& carried) {
  view_ = v;
  target_view_ = v;
  view_changing_ = false;
  ++view_changes_completed_;
  current_timeout_ = options_.view_change_timeout;
  disarm_view_timer();
  // A batch buffered while we were primary of a dead view was never
  // pre-prepared; its ops are still in pending_ and get re-enqueued below
  // (as primary) or re-proposed by their clients (as backup).
  disarm_batch_timer();
  batch_buf_.clear();
  batch_buf_bytes_ = 0;
  view_changes_.erase(view_changes_.begin(), view_changes_.upper_bound(v));

  // Assignments from abandoned views are void: only executed requests and
  // the ones the new view carries over count as handled. Anything else in
  // pending_ becomes assignable again.
  assigned_or_executed_ = executed_requests_;
  for (const auto& p : carried) {
    for (const Request& req : p.batch) assigned_or_executed_.insert(req.id);
  }

  // Reset per-view agreement state above the stable checkpoint and replay O.
  // Sequence assignments from dead views are void: the new view's number
  // space restarts right after what the view change carried over —
  // otherwise a stale next_seq_ leaves unfillable holes below it.
  std::uint64_t carried_max = std::max(next_exec_, stable_seq_);
  for (const auto& p : carried) carried_max = std::max(carried_max, p.seq);
  log_.erase(log_.upper_bound(carried_max), log_.end());
  next_seq_ = carried_max + 1;

  for (const auto& p : carried) {
    if (p.seq <= next_exec_) continue;  // already executed here
    LogEntry& entry = log_[p.seq];
    if (entry.executed) continue;
    entry.view = v;
    entry.digest = p.digest;
    entry.batch = p.batch;
    entry.pre_prepared = true;
    entry.prepares.clear();
    entry.commits.clear();

    ByteWriter w;
    w.u64(v);
    w.u64(p.seq);
    write_digest(w, p.digest);
    broadcast(net::MsgType::kPbftPrepare, w.data());
    entry.prepares.insert(transport_.self());
  }

  // Replay protocol messages that arrived for this view before we entered
  // it (early entrants' prepares must not be lost).
  std::deque<net::Message> replay;
  replay.swap(future_view_msgs_);
  for (const net::Message& m : replay) {
    if (m.type == net::MsgType::kPbftPrePrepare) {
      handle_pre_prepare(m);
    } else if (m.type == net::MsgType::kPbftPrepare) {
      handle_prepare(m);
    }
  }

  // The new primary picks up whatever is still pending: everything not
  // carried over gets batched afresh (enqueue flushes full batches as it
  // goes; the final flush sends the remainder immediately — a new view
  // must not sit on re-proposals for a deadline tick).
  if (is_primary()) {
    auto pending_copy = pending_;
    for (const auto& [id, op] : pending_copy) {
      enqueue_op(Request{id, op});
    }
    flush_batch();
  } else if (!faulty_now()) {
    // Retransmit our own unordered requests: the new primary may never
    // have received them (e.g. it was partitioned when they were issued).
    for (const auto& [id, op] : pending_) {
      if (id.origin != transport_.self()) continue;
      ByteWriter w;
      w.u64(id.origin);
      w.u64(id.seq);
      w.bytes(op.data(), op.size());
      transport_.send(primary_of(view_), net::MsgType::kPbftRequest, w.take());
    }
  }
  if (!pending_.empty()) arm_view_timer();
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void PbftSmr::on_message(const net::Message& msg) {
  if (stopped_) return;
  if (fault_ == PbftFaultMode::kSilent) return;
  if (!config_.contains(msg.from)) return;
  try {
    switch (msg.type) {
      case net::MsgType::kPbftRequest: handle_request(msg); break;
      case net::MsgType::kPbftPrePrepare: handle_pre_prepare(msg); break;
      case net::MsgType::kPbftPrepare: handle_prepare(msg); break;
      case net::MsgType::kPbftCommit: handle_commit(msg); break;
      case net::MsgType::kPbftCheckpoint: handle_checkpoint(msg); break;
      case net::MsgType::kPbftViewChange: handle_view_change(msg); break;
      case net::MsgType::kPbftNewView: handle_new_view(msg); break;
      case net::MsgType::kPbftStateFetch: handle_state_fetch(msg); break;
      case net::MsgType::kPbftStateReply: handle_state_reply(msg); break;
      default: break;
    }
  } catch (const SerdeError&) {
    // Malformed bytes mark the sender as faulty; drop silently.
  }
}

}  // namespace atum::smr
