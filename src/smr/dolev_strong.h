// Synchronous BFT SMR built from Dolev-Strong authenticated broadcast [32].
//
// Time is divided into lock-step rounds of fixed duration (1-1.5 s in the
// paper's experiments). Rounds are grouped into slots of (f+2) rounds:
//
//   round 0        every replica with pending ops signs and broadcasts them
//   rounds 1..f+1  relay: a value carrying r valid distinct signatures seen
//                  in round r is accepted and re-broadcast with one more
//                  signature (only the first f+1 relays matter)
//   end of slot    each replica holds the same accepted set; values are
//                  ordered deterministically (origin id, then payload
//                  digest) and decided
//
// With at most f = floor((g-1)/2) faults and a synchronous network, every
// correct replica accepts exactly the same set: if any correct replica
// accepts a value at round r <= f, its relay reaches everyone by r+1; a
// value first appearing at round f+1 must carry f+1 signatures, at least
// one from a correct replica that therefore relayed it earlier.
// Equivocation (two values from one origin in one slot) voids that origin's
// proposals for the slot, exactly like the classic reduction to ⊥.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "crypto/keys.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "smr/smr.h"

namespace atum::smr {

struct DolevStrongOptions {
  DurationMicros round_duration = seconds(1.0);
  // Absolute time of round 0 of slot 0; all replicas of a group must agree
  // (the paper's Sync deployment assumes synchronized clocks).
  TimeMicros epoch_start = 0;
  bool verify_signatures = true;  // off = trusted-crypto fast path for big sims
};

// Byzantine behavior knobs for experiments (§6.1.3): a faulty replica keeps
// heartbeating but otherwise stays silent, or equivocates.
enum class DsFaultMode {
  kCorrect,
  kSilent,       // participates in nothing
  kEquivocate,   // sends conflicting values to different peers in round 0
};

class DolevStrongSmr final : public SmrEngine {
 public:
  DolevStrongSmr(net::Transport transport, GroupConfig config, crypto::KeyStore& keys,
                 DolevStrongOptions options, DsFaultMode fault = DsFaultMode::kCorrect);
  ~DolevStrongSmr() override;

  void propose(Bytes op) override;
  void set_decide_handler(DecideFn fn) override;
  const GroupConfig& config() const override { return config_; }
  std::uint64_t decided_count() const override { return decided_; }
  void stop() override;

  // Runtime fault conversion (scenario Byzantine-storm primitive): fault_
  // is consulted at every send/propose/relay decision, so flipping it on a
  // live replica takes effect from the next protocol action.
  void set_fault(DsFaultMode fault) { fault_ = fault; }
  DsFaultMode fault() const { return fault_; }

  std::size_t max_faults() const { return sync_max_faults(config_.size()); }
  // Rounds per slot: f+1 relay rounds plus the initial broadcast round.
  std::size_t rounds_per_slot() const { return max_faults() + 2; }
  std::uint64_t current_slot() const;

  // Expected decide latency for an op proposed now (used by Fig 8 analysis).
  DurationMicros expected_slot_latency() const {
    return static_cast<DurationMicros>(rounds_per_slot()) * options_.round_duration;
  }

 private:
  struct PendingValue {
    NodeId origin;
    Bytes payload;
    // Distinct valid signers seen so far, with the signatures actually
    // received (relays must forward real signatures, never re-mint them).
    std::map<NodeId, crypto::Signature> sigs;
    bool relayed = false;
  };
  // Keyed by (origin, payload digest prefix) within the current slot.
  using ValueKey = std::pair<NodeId, std::uint64_t>;

  void on_message(const net::Message& msg);
  void on_round_boundary();
  void begin_slot();
  void finish_slot();
  void broadcast_value(const Bytes& payload, std::uint64_t slot);
  void relay(PendingValue& v, std::uint64_t slot);
  Bytes encode_value(std::uint64_t slot, NodeId origin, const Bytes& payload,
                     const std::vector<std::pair<NodeId, crypto::Signature>>& chain) const;
  crypto::Digest value_digest(std::uint64_t slot, NodeId origin, const Bytes& payload) const;

  net::Transport transport_;
  GroupConfig config_;
  crypto::KeyStore& keys_;
  DolevStrongOptions options_;
  DsFaultMode fault_;
  DecideFn decide_;

  std::vector<Bytes> outbox_;            // ops waiting for the next slot
  std::uint64_t slot_ = 0;               // slot currently collecting values
  std::size_t round_in_slot_ = 0;
  std::map<ValueKey, PendingValue> slot_values_;
  std::set<NodeId> equivocators_;
  std::uint64_t decided_ = 0;
  sim::EventId round_event_ = 0;
  bool stopped_ = false;
};

}  // namespace atum::smr
