// PBFT-style asynchronous BFT SMR [20] (Castro & Liskov), the engine behind
// Atum's Async implementation.
//
// g replicas tolerate f = floor((g-1)/3) Byzantine faults. Safety never
// depends on timing; liveness needs eventual synchrony, which the replica
// approximates with view-change timers that double on every failed view.
//
// Protocol surface implemented here:
//   REQUEST      every member doubles as a client: ops are broadcast to all
//                replicas, buffered, and assigned a sequence by the primary
//   PRE-PREPARE  primary -> backups, carries a BATCH of requests: the
//                primary buffers arriving ops and assigns ONE sequence
//                number per batch frame (bounded by batch_max_ops /
//                batch_max_bytes, or flushed by a sim-deterministic
//                deadline), so one quorum and one batch digest are
//                amortized over every op in the frame
//   PREPARE      all -> all; a batch is *prepared* after pre-prepare +
//                2f matching prepares on the batch digest
//   COMMIT       all -> all; *committed-local* after 2f+1 matching commits;
//                executed in sequence order, firing decide per op in batch
//                order
//   CHECKPOINT   every K executions; carries the incremental state digest,
//                the executed-op count and the request ledger at the
//                boundary; stable after 2f+1 matching body digests, which
//                advances the low watermark, truncates the log AND the
//                executed history behind the boundary (memory stops
//                growing), and records the stable checkpoint for serving
//   VIEW-CHANGE / NEW-VIEW
//                timer-driven primary replacement carrying prepared BATCH
//                certificates so decided batches survive the view change
//   STATE FETCH  lagging replicas fetch state from a peer; the reply is
//                either the pinned head range (records above the server's
//                truncation point, chain-validated or f+1-byte-identical)
//                or the latest stable checkpoint + the head above it
//                (checkpoint-install: the fetcher skips the truncated
//                prefix and reports the gap through the install handler)
//
// Batch wire format (pre-prepare body, also embedded in view-change proofs
// and new-view O entries):
//   u64 view, u64 seq, digest, bytes(ops_region)
//   ops_region := varint op_count, op_count x { u64 origin, u64 origin_seq,
//                 bytes op }
// The batch digest is the SHA-256 of the ops_region bytes — the encoding is
// canonical, so the primary (hashing the buffer it wrote) and the backups
// (hashing a slice of the arrival frame, hitting the Payload digest memo)
// agree byte-for-byte. An empty ops_region (op_count 0) is the null batch
// that fills view-change gaps; its digest is the all-zero digest and it is
// never hashed or checked.
//
// Zero-copy op path: Request::op is a net::Payload — a refcounted slice of
// the frame the op arrived in (client request, pre-prepare, state reply),
// or of the locally frozen propose() buffer. The log, pending_ and
// exec_history_ all share those buffers, and the decide callback hands the
// SAME slice up the stack, so the async decide path copies nothing: a
// committed batch decides k ops as k slices of the one pre-prepare frame.
// Lifetime consequence (net/message.h slice-ownership contract): a
// retained op pins its WHOLE arrival frame. The pinned set is bounded: the
// executed history only holds records in (stable_seq_, next_exec_], and
// in_window caps next_exec_ at stable_seq_ + watermark_window, so at most
// watermark_window frames stay pinned however long the instance runs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "crypto/keys.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "smr/smr.h"

namespace atum::obs {
class Registry;
class Tracer;
class Counter;
class Histogram;
enum class TracePoint : std::uint8_t;
}  // namespace atum::obs

namespace atum::smr {

struct PbftOptions {
  DurationMicros view_change_timeout = seconds(2.0);
  std::uint64_t checkpoint_interval = 64;
  // Log window size (high watermark = low + window).
  std::uint64_t watermark_window = 256;
  bool verify_signatures = true;
  // --- batching (on by default) ---
  // The primary buffers arriving ops and flushes one pre-prepare per batch:
  // when batch_max_ops ops or batch_max_bytes payload bytes are buffered,
  // or when the flush deadline (armed at the first buffered op; pure sim
  // time, deterministic) fires — whichever comes first. batch_max_ops = 1
  // degenerates to classic one-op-per-seq PBFT.
  std::size_t batch_max_ops = 16;
  std::size_t batch_max_bytes = 64 * 1024;
  DurationMicros batch_flush_delay = millis(5);
  // Instance tag scoping state fetch/reply to one engine instance. 0 (the
  // default) derives the tag from the member list; ReconfigurableSmr sets
  // it from the config-history epoch hash, so two non-adjacent epochs with
  // identical membership (A -> B -> A) can never share a tag.
  std::uint64_t instance_tag = 0;
  // Observability sinks (nullable = off). The registry cells are shared
  // across every engine wired to the same registry — system-wide SMR
  // totals that survive per-epoch engine turnover. The tracer records the
  // propose -> pre-prepare -> prepare -> commit -> decide lifecycle keyed
  // by op/batch digest prefixes (see obs/trace.h on keyspaces).
  obs::Registry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

enum class PbftFaultMode {
  kCorrect,
  kSilent,             // no participation at all
  kSilentPrimary,      // behaves correctly unless primary, then goes quiet
  kEquivocatePrimary,  // as primary, sends conflicting pre-prepares
};

// Compact executed/assigned request-id ledger: per origin, a contiguous low
// watermark (every origin-seq <= low is contained) plus the sparse set of
// seqs above it. Origins submit with consecutive origin-seqs, so the sparse
// part stays tiny and the ledger is O(group size) however many requests
// execute — unlike the std::set<RequestId> it replaces, which grew by one
// node per executed op forever. The deterministic encoding rides inside the
// checkpoint body, so a checkpoint-installing replica restores the exact
// dedup state and a Byzantine client re-submitting a pre-checkpoint op
// still executes as a no-op.
class RequestLedger {
 public:
  bool contains(NodeId origin, std::uint64_t seq) const {
    auto it = origins_.find(origin);
    if (it == origins_.end()) return false;
    return seq <= it->second.low || it->second.above.contains(seq);
  }
  // Returns true when the id was newly inserted; folds runs contiguous with
  // the watermark into it.
  bool insert(NodeId origin, std::uint64_t seq) {
    OriginState& st = origins_[origin];
    if (seq <= st.low || !st.above.insert(seq).second) return false;
    while (st.above.contains(st.low + 1)) {
      st.above.erase(st.low + 1);
      ++st.low;
    }
    return true;
  }
  // Canonical encoding (sorted maps/sets => deterministic bytes): varint
  // origin count, per origin { u64 origin, u64 low, varint above count,
  // count x u64 }.
  void encode(ByteWriter& w) const {
    w.varint(origins_.size());
    for (const auto& [origin, st] : origins_) {
      w.u64(origin);
      w.u64(st.low);
      w.varint(st.above.size());
      for (std::uint64_t s : st.above) w.u64(s);
    }
  }
  // Throws SerdeError on malformed bytes (counts are bounded by the bytes
  // actually present before any allocation).
  static RequestLedger decode(ByteReader& r) {
    RequestLedger ledger;
    std::uint64_t origins = r.varint();
    if (origins > r.remaining()) throw SerdeError("ledger origin count exceeds buffer");
    for (std::uint64_t i = 0; i < origins; ++i) {
      NodeId origin = r.u64();
      OriginState st;
      st.low = r.u64();
      std::uint64_t above = r.varint();
      if (above > r.remaining()) throw SerdeError("ledger seq count exceeds buffer");
      for (std::uint64_t j = 0; j < above; ++j) st.above.insert(r.u64());
      ledger.origins_[origin] = std::move(st);
    }
    return ledger;
  }
  std::size_t origin_count() const { return origins_.size(); }
  friend bool operator==(const RequestLedger&, const RequestLedger&) = default;

 private:
  struct OriginState {
    std::uint64_t low = 0;
    std::set<std::uint64_t> above;
    friend bool operator==(const OriginState&, const OriginState&) = default;
  };
  std::map<NodeId, OriginState> origins_;
};

class PbftSmr final : public SmrEngine {
 public:
  PbftSmr(net::Transport transport, GroupConfig config, crypto::KeyStore& keys,
          PbftOptions options, PbftFaultMode fault = PbftFaultMode::kCorrect);
  ~PbftSmr() override;

  void propose(Bytes op) override;
  void set_decide_handler(DecideFn fn) override;
  const GroupConfig& config() const override { return config_; }
  // Ops fired through decide_ (a seq may carry many ops, so this counts
  // decisions, not log slots — see batches_executed() for slots).
  std::uint64_t decided_count() const override { return decided_ops_; }
  void stop() override;

  // Checkpoint-install notification: fired when state transfer adopts a
  // stable checkpoint wholesale instead of replaying records, i.e. the ops
  // in (from_ops, to_ops] were decided by the group but will NEVER fire
  // decide_ here (sequences from_seq+1..to_seq were skipped). The layer
  // above accounts for the gap (ReconfigurableSmr advances its global
  // sequence; Atum recovers skipped broadcasts via gossip redelivery).
  using InstallFn = std::function<void(std::uint64_t from_seq, std::uint64_t to_seq,
                                       std::uint64_t from_ops, std::uint64_t to_ops)>;
  void set_install_handler(InstallFn fn) { install_ = std::move(fn); }

  // Batch observability (tests/benches): executed log slots and the exact
  // per-slot batch sizes are what prove the quorum amortization happened.
  std::uint64_t batches_executed() const { return next_exec_; }
  // Memory-bound observability: the executed history holds exactly seqs
  // (history_base(), history_base() + history_size()], and history_size()
  // never exceeds watermark_window (each record pins its batch frames; see
  // the header comment).
  std::size_t history_size() const { return exec_history_.size(); }
  std::uint64_t history_base() const { return exec_base_; }
  std::uint64_t instance_tag() const { return instance_tag_; }

  // Runtime fault conversion (scenario Byzantine-storm primitive): fault_
  // is consulted per message/phase, so flipping it on a live replica takes
  // effect from the next protocol action.
  void set_fault(PbftFaultMode fault) { fault_ = fault; }
  PbftFaultMode fault() const { return fault_; }

  std::size_t max_faults() const { return async_max_faults(config_.size()); }
  std::size_t quorum() const { return 2 * max_faults() + 1; }
  std::uint64_t view() const { return view_; }
  std::uint64_t stable_seq() const { return stable_seq_; }
  bool is_primary() const { return primary_of(view_) == transport_.self(); }
  NodeId primary_of(std::uint64_t v) const {
    return config_.members[static_cast<std::size_t>(v % config_.size())];
  }
  std::uint64_t view_changes_completed() const { return view_changes_completed_; }

 private:
  // (origin, origin-local seq) identifies a request end-to-end.
  struct RequestId {
    NodeId origin;
    std::uint64_t seq;
    friend auto operator<=>(const RequestId&, const RequestId&) = default;
  };
  struct Request {
    RequestId id;
    net::Payload op;  // slice of the arrival frame; never deep-copied
  };
  // One log slot holds one BATCH of requests: an empty batch is the null
  // filler a new view uses for gaps (digest all-zero, executes as a no-op).
  struct LogEntry {
    std::uint64_t view = 0;
    crypto::Digest digest{};
    std::vector<Request> batch;
    bool pre_prepared = false;
    std::set<NodeId> prepares;
    std::set<NodeId> commits;
    bool executed = false;
  };
  struct PreparedProof {
    std::uint64_t seq;
    std::uint64_t view;
    crypto::Digest digest;
    std::vector<Request> batch;  // empty = null batch
  };
  struct ViewChangeMsg {
    std::uint64_t new_view;
    std::uint64_t stable_seq;
    std::vector<PreparedProof> prepared;
    NodeId sender;
  };

  void on_message(const net::Message& msg);
  void handle_request(const net::Message& msg);
  void handle_pre_prepare(const net::Message& msg);
  void handle_prepare(const net::Message& msg);
  void handle_commit(const net::Message& msg);
  void handle_checkpoint(const net::Message& msg);
  void handle_view_change(const net::Message& msg);
  void handle_new_view(const net::Message& msg);
  void handle_state_fetch(const net::Message& msg);
  void handle_state_reply(const net::Message& msg);

  // Primary-side batching: enqueue buffers an op (flushing when the size
  // bounds trip and arming the deadline timer otherwise); flush assigns the
  // next seq to everything buffered and broadcasts one pre-prepare.
  void enqueue_op(const Request& req);
  void flush_batch();
  void arm_batch_timer();
  void disarm_batch_timer();
  // Canonical ops-region encoding shared by pre-prepares, view-change
  // proofs and new-view O entries; the batch digest is the SHA-256 of
  // exactly these bytes.
  static void encode_ops_region(ByteWriter& w, const std::vector<Request>& batch);
  // Parses an ops region as zero-copy slices of `frame`. Throws SerdeError
  // on malformed bytes (including an op claiming the null origin).
  static std::vector<Request> parse_ops_region(const net::Payload& frame,
                                               std::span<const std::uint8_t> region);
  crypto::Digest batch_digest(const std::vector<Request>& batch) const;
  void maybe_send_prepare(std::uint64_t seq);
  void maybe_send_commit(std::uint64_t seq);
  void try_execute();
  void execute_entry(std::uint64_t seq, LogEntry& entry);
  // Prepends the instance tag: the envelope every frame travels in (the
  // receiving on_message checks and strips it before dispatch).
  Bytes tagged(const Bytes& body) const;
  void broadcast(net::MsgType type, const Bytes& payload, bool include_self = false);
  void send_checkpoint(std::uint64_t seq);
  void collect_garbage(std::uint64_t stable_seq);

  void arm_view_timer();
  void disarm_view_timer();
  // explicit_target == 0 means "next view after the current target".
  void start_view_change(std::uint64_t explicit_target = 0);
  // Called on execution progress: a replica that complained because it had
  // fallen behind (not because the primary died) withdraws its view change
  // once the current view demonstrably serves it again.
  void abandon_view_change();
  void maybe_assemble_new_view();
  void enter_view(std::uint64_t v, const std::vector<PreparedProof>& carried);
  void request_state_transfer();

  bool in_window(std::uint64_t seq) const {
    return seq > stable_seq_ && seq <= stable_seq_ + options_.watermark_window;
  }
  bool faulty_now() const;

  // Tracing helper: no-op unless options_.tracer is enabled.
  void trace(obs::TracePoint point, std::uint64_t key, std::uint64_t a = 0,
             std::uint64_t b = 0) const;

  net::Transport transport_;
  GroupConfig config_;
  crypto::KeyStore& keys_;
  PbftOptions options_;
  PbftFaultMode fault_;
  DecideFn decide_;
  InstallFn install_;

  // Registry cells cached at construction (registration locks once; the
  // increments are lock-free). Null when no registry is wired.
  // lint: adhoc-counter-ok(these ARE the obs::Registry cells)
  obs::Counter* ctr_pre_prepares_ = nullptr;
  obs::Counter* ctr_prepares_ = nullptr;
  obs::Counter* ctr_commits_ = nullptr;
  obs::Counter* ctr_batches_ = nullptr;
  obs::Counter* ctr_ops_ = nullptr;
  obs::Counter* ctr_view_changes_ = nullptr;
  obs::Counter* ctr_checkpoints_ = nullptr;
  obs::Counter* ctr_installs_ = nullptr;
  obs::Histogram* hist_batch_ops_ = nullptr;

  std::uint64_t view_ = 0;
  std::uint64_t next_seq_ = 1;       // primary's next assignment
  std::uint64_t next_exec_ = 0;      // count of executed entries == next seq-1
  std::uint64_t stable_seq_ = 0;     // last stable checkpoint
  std::uint64_t origin_seq_ = 0;     // local client sequence
  std::uint64_t view_changes_completed_ = 0;
  std::uint64_t decided_ops_ = 0;    // ops fired through decide_
  // Fresh (non-duplicate) ops executed, counted per RECORD as it enters the
  // history — ahead of decided_ops_ while a record's decide callbacks are
  // still firing (a nested execution at seq+1 must checkpoint with the
  // outer record fully counted). Equal to decided_ops_ at quiescence; both
  // jump to the checkpoint's count on install.
  std::uint64_t executed_ops_ = 0;

  std::map<std::uint64_t, LogEntry> log_;
  std::map<RequestId, net::Payload> pending_;    // not yet pre-prepared
  RequestLedger assigned_or_executed_;           // dedup
  // Pre-prepares whose client request has not arrived yet; replayed when it
  // does (the request broadcast can be overtaken by the primary's message).
  std::map<RequestId, net::Message> stashed_pre_prepares_;
  // Protocol messages for views we have not entered yet: replicas enter a
  // new view at different instants, and prepares sent by early entrants
  // must not be lost for late ones. Replayed by enter_view.
  std::deque<net::Message> future_view_msgs_;
  static constexpr std::size_t kFutureBufferCap = 4096;
  // Request ids already executed: an equivocating client (e.g. a Byzantine
  // primary re-ordering its own op) must not be delivered twice. Carried
  // inside checkpoint bodies so installs restore the exact dedup state.
  RequestLedger executed_requests_;
  // seq -> voter -> checkpoint BODY digest (SHA-256 of the full checkpoint
  // message: seq, state digest, op count, ledger encoding).
  std::map<std::uint64_t, std::map<NodeId, crypto::Digest>> checkpoints_;
  struct ExecOp {
    NodeId origin;
    std::uint64_t origin_seq;
    net::Payload op;  // shares the decided frame (state-transfer source)
  };
  // One record per executed seq, holding that seq's whole batch in delivery
  // order; ops that executed as no-ops (duplicates) are recorded with the
  // null origin so replayed histories skip them too.
  struct ExecRecord {
    std::vector<ExecOp> ops;
  };
  // Bounded executed history: holds exactly seqs (exec_base_, exec_base_ +
  // size()]; collect_garbage pops everything at or below the stable
  // checkpoint, so the deque (and the batch frames it pins) is capped by
  // the watermark window instead of growing for the life of the instance.
  std::deque<ExecRecord> exec_history_;
  std::uint64_t exec_base_ = 0;
  // Incremental executed-state digest: folded per record as
  // sha256(prev_digest || canonical record encoding). Equal across replicas
  // iff their executed prefixes are identical; checkpoint bodies carry it,
  // and chain validation of fetched records just keeps folding.
  crypto::Digest state_digest_{};
  // Checkpoint data captured at each boundary we executed (awaiting
  // stability), and the latest STABLE checkpoint (2f+1 matching votes or
  // installed) — what handle_state_fetch serves to deep laggards.
  struct CheckpointData {
    crypto::Digest state_digest{};
    std::uint64_t ops = 0;
    Bytes ledger_wire;
  };
  std::map<std::uint64_t, CheckpointData> own_ckpt_;
  struct StableCheckpoint {
    std::uint64_t seq = 0;
    crypto::Digest state_digest{};
    std::uint64_t ops = 0;
    Bytes ledger_wire;
  };
  std::optional<StableCheckpoint> stable_ckpt_;

  // Checkpoint plumbing (see pbft.cpp for contracts).
  void fold_record(const ExecRecord& rec);
  static Bytes checkpoint_body(std::uint64_t seq, const crypto::Digest& state_digest,
                               std::uint64_t ops, const Bytes& ledger_wire);
  void maybe_stabilize();
  void trim_history();
  std::uint64_t validate_chain(const std::vector<ExecRecord>& entries) const;
  void adopt_entries(const std::vector<ExecRecord>& entries, std::uint64_t count);
  void install_checkpoint(std::uint64_t cseq, const crypto::Digest& state_digest,
                          std::uint64_t ops, RequestLedger ledger, Bytes ledger_wire);
  std::vector<ExecRecord> parse_exec_records(const net::Message& msg, ByteReader& r) const;
  static void encode_exec_record(ByteWriter& w, const ExecRecord& rec);

  // State-reply kinds (u8 after the instance tag).
  static constexpr std::uint8_t kStateReplyRange = 0;    // head records only
  static constexpr std::uint8_t kStateReplyInstall = 1;  // stable ckpt + head

  // Nested-execution guard: decide callbacks may propose, and with tiny
  // quorums that executes the NEXT seq inline. History truncation must not
  // run while any execute/adopt frame is live on the stack (it would pop
  // records mid-delivery); trim_history defers until the outermost frame
  // unwinds.
  int exec_depth_ = 0;

  // Head-gap catch-up: a replica whose engine attached mid-instance (a
  // state-synced joiner) or that was cut off (partition heal) may hold
  // committed log entries beyond a head it never received; with too few
  // decisions for a checkpoint, the checkpoint-driven transfer never
  // triggers and the replica would stall at next_exec_ forever. The gap is
  // detected in try_execute, history is fetched from 2f+1 peers, and a
  // reply that no checkpoint can validate is accepted once f+1 distinct
  // replicas sent byte-identical copies (at least one of them is correct).
  void maybe_fetch_missing_head();
  // min()/4 (not min()): "now - last" must not overflow on the first check.
  TimeMicros last_head_fetch_ = std::numeric_limits<TimeMicros>::min() / 4;
  // Set from options_.instance_tag, or derived from the member list when
  // that is 0; state fetch/reply are scoped to one engine instance by this
  // tag (see the ctor comment).
  std::uint64_t instance_tag_ = 0;
  // Head-gap fetch rounds since the last execution progress; finite so a
  // replica whose instance was retired under it stops probing (and so the
  // residual same-membership tag collision has a bounded window).
  static constexpr int kMaxHeadFetchRounds = 8;
  int head_fetch_rounds_ = 0;
  // reply digest -> distinct senders of byte-identical replies.
  std::map<crypto::Digest, std::set<NodeId>> state_reply_votes_;

  // Primary-side batch buffer: ops waiting for the next flush. They stay in
  // pending_ too (the view-change timer watches pending_), so a cleared
  // buffer — e.g. on losing primaryship — loses nothing.
  std::vector<Request> batch_buf_;
  std::size_t batch_buf_bytes_ = 0;
  sim::EventId batch_timer_ = 0;
  // Re-entrancy guard: a decide callback fired from inside flush_batch may
  // propose (and thus try to flush) again; the outer flush loop drains it.
  bool flushing_ = false;

  // View change state.
  bool view_changing_ = false;
  std::uint64_t target_view_ = 0;
  std::map<std::uint64_t, std::map<NodeId, ViewChangeMsg>> view_changes_;
  sim::EventId view_timer_ = 0;
  DurationMicros current_timeout_;

  bool stopped_ = false;
};

}  // namespace atum::smr
