// PBFT-style asynchronous BFT SMR [20] (Castro & Liskov), the engine behind
// Atum's Async implementation.
//
// g replicas tolerate f = floor((g-1)/3) Byzantine faults. Safety never
// depends on timing; liveness needs eventual synchrony, which the replica
// approximates with view-change timers that double on every failed view.
//
// Protocol surface implemented here:
//   REQUEST      every member doubles as a client: ops are broadcast to all
//                replicas, buffered, and assigned a sequence by the primary
//   PRE-PREPARE  primary -> backups, carries a BATCH of requests: the
//                primary buffers arriving ops and assigns ONE sequence
//                number per batch frame (bounded by batch_max_ops /
//                batch_max_bytes, or flushed by a sim-deterministic
//                deadline), so one quorum and one batch digest are
//                amortized over every op in the frame
//   PREPARE      all -> all; a batch is *prepared* after pre-prepare +
//                2f matching prepares on the batch digest
//   COMMIT       all -> all; *committed-local* after 2f+1 matching commits;
//                executed in sequence order, firing decide per op in batch
//                order
//   CHECKPOINT   every K executions; stable after 2f+1 matching digests,
//                advances the low watermark and truncates the log
//   VIEW-CHANGE / NEW-VIEW
//                timer-driven primary replacement carrying prepared BATCH
//                certificates so decided batches survive the view change
//   STATE FETCH  lagging replicas fetch the executed-op log (one record
//                per seq, holding that seq's whole batch) from a peer and
//                validate it against an f+1-vouched checkpoint digest
//
// Batch wire format (pre-prepare body, also embedded in view-change proofs
// and new-view O entries):
//   u64 view, u64 seq, digest, bytes(ops_region)
//   ops_region := varint op_count, op_count x { u64 origin, u64 origin_seq,
//                 bytes op }
// The batch digest is the SHA-256 of the ops_region bytes — the encoding is
// canonical, so the primary (hashing the buffer it wrote) and the backups
// (hashing a slice of the arrival frame, hitting the Payload digest memo)
// agree byte-for-byte. An empty ops_region (op_count 0) is the null batch
// that fills view-change gaps; its digest is the all-zero digest and it is
// never hashed or checked.
//
// Zero-copy op path: Request::op is a net::Payload — a refcounted slice of
// the frame the op arrived in (client request, pre-prepare, state reply),
// or of the locally frozen propose() buffer. The log, pending_ and
// exec_history_ all share those buffers, and the decide callback hands the
// SAME slice up the stack, so the async decide path copies nothing: a
// committed batch decides k ops as k slices of the one pre-prepare frame.
// Lifetime consequence (net/message.h slice-ownership contract): a
// retained op pins its WHOLE arrival frame. On the hot path that is the
// batch frame shared by its own batch-mates; ops restored from the cold
// paths pin more — a state-reply slice pins the whole multi-op history
// frame and a view-change-carried slice the whole certificate frame —
// acceptable because both are rare and the frames are dropped again once
// the ops re-execute or the next checkpoint truncates the log
// (exec_history_ retention is the exception; see ROADMAP).
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "crypto/keys.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "smr/smr.h"

namespace atum::smr {

struct PbftOptions {
  DurationMicros view_change_timeout = seconds(2.0);
  std::uint64_t checkpoint_interval = 64;
  // Log window size (high watermark = low + window).
  std::uint64_t watermark_window = 256;
  bool verify_signatures = true;
  // --- batching (on by default) ---
  // The primary buffers arriving ops and flushes one pre-prepare per batch:
  // when batch_max_ops ops or batch_max_bytes payload bytes are buffered,
  // or when the flush deadline (armed at the first buffered op; pure sim
  // time, deterministic) fires — whichever comes first. batch_max_ops = 1
  // degenerates to classic one-op-per-seq PBFT.
  std::size_t batch_max_ops = 16;
  std::size_t batch_max_bytes = 64 * 1024;
  DurationMicros batch_flush_delay = millis(5);
};

enum class PbftFaultMode {
  kCorrect,
  kSilent,             // no participation at all
  kSilentPrimary,      // behaves correctly unless primary, then goes quiet
  kEquivocatePrimary,  // as primary, sends conflicting pre-prepares
};

class PbftSmr final : public SmrEngine {
 public:
  PbftSmr(net::Transport transport, GroupConfig config, crypto::KeyStore& keys,
          PbftOptions options, PbftFaultMode fault = PbftFaultMode::kCorrect);
  ~PbftSmr() override;

  void propose(Bytes op) override;
  void set_decide_handler(DecideFn fn) override;
  const GroupConfig& config() const override { return config_; }
  // Ops fired through decide_ (a seq may carry many ops, so this counts
  // decisions, not log slots — see batches_executed() for slots).
  std::uint64_t decided_count() const override { return decided_ops_; }
  void stop() override;

  // Batch observability (tests/benches): executed log slots and the exact
  // per-slot batch sizes are what prove the quorum amortization happened.
  std::uint64_t batches_executed() const { return next_exec_; }

  // Runtime fault conversion (scenario Byzantine-storm primitive): fault_
  // is consulted per message/phase, so flipping it on a live replica takes
  // effect from the next protocol action.
  void set_fault(PbftFaultMode fault) { fault_ = fault; }
  PbftFaultMode fault() const { return fault_; }

  std::size_t max_faults() const { return async_max_faults(config_.size()); }
  std::size_t quorum() const { return 2 * max_faults() + 1; }
  std::uint64_t view() const { return view_; }
  std::uint64_t stable_seq() const { return stable_seq_; }
  bool is_primary() const { return primary_of(view_) == transport_.self(); }
  NodeId primary_of(std::uint64_t v) const {
    return config_.members[static_cast<std::size_t>(v % config_.size())];
  }
  std::uint64_t view_changes_completed() const { return view_changes_completed_; }

 private:
  // (origin, origin-local seq) identifies a request end-to-end.
  struct RequestId {
    NodeId origin;
    std::uint64_t seq;
    friend auto operator<=>(const RequestId&, const RequestId&) = default;
  };
  struct Request {
    RequestId id;
    net::Payload op;  // slice of the arrival frame; never deep-copied
  };
  // One log slot holds one BATCH of requests: an empty batch is the null
  // filler a new view uses for gaps (digest all-zero, executes as a no-op).
  struct LogEntry {
    std::uint64_t view = 0;
    crypto::Digest digest{};
    std::vector<Request> batch;
    bool pre_prepared = false;
    std::set<NodeId> prepares;
    std::set<NodeId> commits;
    bool executed = false;
  };
  struct PreparedProof {
    std::uint64_t seq;
    std::uint64_t view;
    crypto::Digest digest;
    std::vector<Request> batch;  // empty = null batch
  };
  struct ViewChangeMsg {
    std::uint64_t new_view;
    std::uint64_t stable_seq;
    std::vector<PreparedProof> prepared;
    NodeId sender;
  };

  void on_message(const net::Message& msg);
  void handle_request(const net::Message& msg);
  void handle_pre_prepare(const net::Message& msg);
  void handle_prepare(const net::Message& msg);
  void handle_commit(const net::Message& msg);
  void handle_checkpoint(const net::Message& msg);
  void handle_view_change(const net::Message& msg);
  void handle_new_view(const net::Message& msg);
  void handle_state_fetch(const net::Message& msg);
  void handle_state_reply(const net::Message& msg);

  // Primary-side batching: enqueue buffers an op (flushing when the size
  // bounds trip and arming the deadline timer otherwise); flush assigns the
  // next seq to everything buffered and broadcasts one pre-prepare.
  void enqueue_op(const Request& req);
  void flush_batch();
  void arm_batch_timer();
  void disarm_batch_timer();
  // Canonical ops-region encoding shared by pre-prepares, view-change
  // proofs and new-view O entries; the batch digest is the SHA-256 of
  // exactly these bytes.
  static void encode_ops_region(ByteWriter& w, const std::vector<Request>& batch);
  // Parses an ops region as zero-copy slices of `frame`. Throws SerdeError
  // on malformed bytes (including an op claiming the null origin).
  static std::vector<Request> parse_ops_region(const net::Payload& frame,
                                               std::span<const std::uint8_t> region);
  crypto::Digest batch_digest(const std::vector<Request>& batch) const;
  void maybe_send_prepare(std::uint64_t seq);
  void maybe_send_commit(std::uint64_t seq);
  void try_execute();
  void execute_entry(std::uint64_t seq, LogEntry& entry);
  void broadcast(net::MsgType type, const Bytes& payload, bool include_self = false);
  void send_checkpoint(std::uint64_t seq);
  void collect_garbage(std::uint64_t stable_seq);

  void arm_view_timer();
  void disarm_view_timer();
  // explicit_target == 0 means "next view after the current target".
  void start_view_change(std::uint64_t explicit_target = 0);
  void maybe_assemble_new_view();
  void enter_view(std::uint64_t v, const std::vector<PreparedProof>& carried);
  void request_state_transfer();

  bool in_window(std::uint64_t seq) const {
    return seq > stable_seq_ && seq <= stable_seq_ + options_.watermark_window;
  }
  bool faulty_now() const;

  net::Transport transport_;
  GroupConfig config_;
  crypto::KeyStore& keys_;
  PbftOptions options_;
  PbftFaultMode fault_;
  DecideFn decide_;

  std::uint64_t view_ = 0;
  std::uint64_t next_seq_ = 1;       // primary's next assignment
  std::uint64_t next_exec_ = 0;      // count of executed entries == next seq-1
  std::uint64_t stable_seq_ = 0;     // last stable checkpoint
  std::uint64_t origin_seq_ = 0;     // local client sequence
  std::uint64_t view_changes_completed_ = 0;
  std::uint64_t decided_ops_ = 0;    // ops fired through decide_

  std::map<std::uint64_t, LogEntry> log_;
  std::map<RequestId, net::Payload> pending_;    // not yet pre-prepared
  std::set<RequestId> assigned_or_executed_;     // dedup
  // Pre-prepares whose client request has not arrived yet; replayed when it
  // does (the request broadcast can be overtaken by the primary's message).
  std::map<RequestId, net::Message> stashed_pre_prepares_;
  // Protocol messages for views we have not entered yet: replicas enter a
  // new view at different instants, and prepares sent by early entrants
  // must not be lost for late ones. Replayed by enter_view.
  std::deque<net::Message> future_view_msgs_;
  static constexpr std::size_t kFutureBufferCap = 4096;
  // Request ids already executed: an equivocating client (e.g. a Byzantine
  // primary re-ordering its own op) must not be delivered twice.
  std::set<RequestId> executed_requests_;
  std::map<std::uint64_t, std::map<NodeId, crypto::Digest>> checkpoints_;
  struct ExecOp {
    NodeId origin;
    std::uint64_t origin_seq;
    net::Payload op;  // shares the decided frame (state-transfer source)
  };
  // One record per executed seq (history[i] holds seq i+1 — checkpoint
  // hashing and state fetch/reply index by this), holding that seq's whole
  // batch in delivery order; ops that executed as no-ops (duplicates) are
  // recorded with the null origin so replayed histories skip them too.
  struct ExecRecord {
    std::vector<ExecOp> ops;
  };
  std::vector<ExecRecord> exec_history_;

  // Head-gap catch-up: a replica whose engine attached mid-instance (a
  // state-synced joiner) or that was cut off (partition heal) may hold
  // committed log entries beyond a head it never received; with too few
  // decisions for a checkpoint, the checkpoint-driven transfer never
  // triggers and the replica would stall at next_exec_ forever. The gap is
  // detected in try_execute, history is fetched from 2f+1 peers, and a
  // reply that no checkpoint can validate is accepted once f+1 distinct
  // replicas sent byte-identical copies (at least one of them is correct).
  void maybe_fetch_missing_head();
  // Appends fetched history (decided seqs next_exec_+1..upto), firing
  // decide_ for each op exactly like execution would.
  void adopt_history(const std::vector<ExecRecord>& candidate, std::uint64_t upto);
  // min()/4 (not min()): "now - last" must not overflow on the first check.
  TimeMicros last_head_fetch_ = std::numeric_limits<TimeMicros>::min() / 4;
  // Derived from the member list at construction; state fetch/reply are
  // scoped to one engine instance by this tag (see the ctor comment).
  std::uint64_t instance_tag_ = 0;
  // Head-gap fetch rounds since the last execution progress; finite so a
  // replica whose instance was retired under it stops probing (and so the
  // residual same-membership tag collision has a bounded window).
  static constexpr int kMaxHeadFetchRounds = 8;
  int head_fetch_rounds_ = 0;
  // reply digest -> distinct senders of byte-identical replies.
  std::map<crypto::Digest, std::set<NodeId>> state_reply_votes_;

  // Primary-side batch buffer: ops waiting for the next flush. They stay in
  // pending_ too (the view-change timer watches pending_), so a cleared
  // buffer — e.g. on losing primaryship — loses nothing.
  std::vector<Request> batch_buf_;
  std::size_t batch_buf_bytes_ = 0;
  sim::EventId batch_timer_ = 0;
  // Re-entrancy guard: a decide callback fired from inside flush_batch may
  // propose (and thus try to flush) again; the outer flush loop drains it.
  bool flushing_ = false;

  // View change state.
  bool view_changing_ = false;
  std::uint64_t target_view_ = 0;
  std::map<std::uint64_t, std::map<NodeId, ViewChangeMsg>> view_changes_;
  sim::EventId view_timer_ = 0;
  DurationMicros current_timeout_;

  bool stopped_ = false;
};

}  // namespace atum::smr
