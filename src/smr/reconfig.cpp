#include "smr/reconfig.h"

#include <algorithm>

namespace atum::smr {

namespace {
constexpr std::uint8_t kAppOp = 0;
constexpr std::uint8_t kConfigOp = 1;
}  // namespace

std::unique_ptr<SmrEngine> make_engine(net::Transport transport, GroupConfig config,
                                       crypto::KeyStore& keys, const EngineOptions& options) {
  if (options.kind == EngineKind::kSync) {
    return std::make_unique<DolevStrongSmr>(std::move(transport), std::move(config), keys,
                                            options.ds, options.ds_fault);
  }
  return std::make_unique<PbftSmr>(std::move(transport), std::move(config), keys, options.pbft,
                                   options.pbft_fault);
}

ReconfigurableSmr::ReconfigurableSmr(net::SimNetwork& net, NodeId self, GroupConfig initial,
                                     crypto::KeyStore& keys, EngineOptions options)
    : net_(net), self_(self), config_(std::move(initial)), keys_(keys), options_(options) {
  config_.normalize();
  start_engine();
}

ReconfigurableSmr::~ReconfigurableSmr() { stop(); }

void ReconfigurableSmr::stop() {
  if (engine_) {
    engine_->stop();
    engine_.reset();
  }
}

void ReconfigurableSmr::set_fault(DsFaultMode ds, PbftFaultMode pbft) {
  options_.ds_fault = ds;
  options_.pbft_fault = pbft;
  if (auto* e = dynamic_cast<DolevStrongSmr*>(engine_.get())) e->set_fault(ds);
  if (auto* e = dynamic_cast<PbftSmr*>(engine_.get())) e->set_fault(pbft);
}

void ReconfigurableSmr::start_engine() {
  engine_ = make_engine(net::Transport(net_, self_), config_, keys_, options_);
  engine_->set_decide_handler([this](std::uint64_t, NodeId origin, const net::Payload& op) {
    on_engine_decide(origin, op);
  });
  // Reconfiguration must not lose in-flight proposals (SMART carries them
  // into the next configuration's instance).
  for (const Bytes& op : unacked_) {
    engine_->propose(op);
  }
}

void ReconfigurableSmr::propose(Bytes op) {
  ByteWriter w;
  w.u8(kAppOp);
  w.bytes(op);
  Bytes wrapped = w.take();
  unacked_.push_back(wrapped);
  if (engine_) engine_->propose(std::move(wrapped));
}

void ReconfigurableSmr::propose_reconfig(GroupConfig new_config) {
  new_config.normalize();
  ByteWriter w;
  w.u8(kConfigOp);
  w.vec(new_config.members, [](ByteWriter& bw, NodeId n) { bw.u64(n); });
  Bytes wrapped = w.take();
  unacked_.push_back(wrapped);
  if (engine_) engine_->propose(std::move(wrapped));
}

void ReconfigurableSmr::on_engine_decide(NodeId origin, const net::Payload& wrapped) {
  if (origin == self_) {
    // Payload <-> Bytes content equality, no materialization.
    auto it = std::find(unacked_.begin(), unacked_.end(), wrapped);
    if (it != unacked_.end()) unacked_.erase(it);
  }

  ByteReader r(wrapped);
  std::uint8_t tag;
  try {
    tag = r.u8();
    if (tag == kAppOp) {
      net::Payload op = wrapped.slice(r.bytes_view());  // unwrap without copying
      std::uint64_t seq = global_seq_++;
      if (decide_) decide_(seq, origin, op);
      return;
    }
    if (tag != kConfigOp) return;  // unknown tag: faulty proposer, ignore

    GroupConfig next;
    next.members = r.vec<NodeId>([](ByteReader& br) { return br.u64(); });
    next.normalize();
    if (next.members.empty()) return;  // refuse to reconfigure to nothing
    if (next.members == config_.members) return;  // no-op (e.g. several
    // members proposed the same change and one already won)

    ++global_seq_;
    ++epoch_;
    config_ = next;
    // Defer the engine swap out of the decide callback: the old engine is
    // still on the stack.
    if (!switching_) {
      switching_ = true;
      net_.simulator().schedule_after(0, [this] {
        switching_ = false;
        if (engine_) {
          engine_->stop();
          engine_.reset();
        }
        if (config_.contains(self_)) {
          start_engine();
        }
        if (config_changed_) config_changed_(epoch_, config_);
      });
    }
  } catch (const SerdeError&) {
    // Malformed decided op: a faulty origin proposed garbage. Skip it.
  }
}

}  // namespace atum::smr
