#include "smr/reconfig.h"

#include <algorithm>

namespace atum::smr {

namespace {
constexpr std::uint8_t kAppOp = 0;
constexpr std::uint8_t kConfigOp = 1;

// Removal-notice retry backoff: the first send races the removed node's own
// decide path (usually it decided the op itself and the notice is a no-op);
// the retries cover a partition healing after the instance died.
constexpr DurationMicros kNoticeRetries[] = {seconds(1.0), seconds(5.0)};

crypto::Digest genesis_hash(const GroupConfig& config) {
  crypto::Sha256 h;
  h.update("atum-epoch-genesis");
  ByteWriter w;
  for (NodeId n : config.members) w.u64(n);
  h.update(w.data());
  return h.finish();
}

crypto::Digest chain_hash(const crypto::Digest& prev, const crypto::Digest& config_op_digest) {
  crypto::Sha256 h;
  h.update(prev.data(), prev.size());
  h.update(config_op_digest.data(), config_op_digest.size());
  return h.finish();
}
}  // namespace

std::unique_ptr<SmrEngine> make_engine(net::Transport transport, GroupConfig config,
                                       crypto::KeyStore& keys, const EngineOptions& options) {
  if (options.kind == EngineKind::kSync) {
    return std::make_unique<DolevStrongSmr>(std::move(transport), std::move(config), keys,
                                            options.ds, options.ds_fault);
  }
  return std::make_unique<PbftSmr>(std::move(transport), std::move(config), keys, options.pbft,
                                   options.pbft_fault);
}

ReconfigurableSmr::ReconfigurableSmr(net::SimNetwork& net, NodeId self, GroupConfig initial,
                                     crypto::KeyStore& keys, EngineOptions options,
                                     std::optional<EpochState> resume)
    : net_(net),
      self_(self),
      config_(std::move(initial)),
      keys_(keys),
      options_(options),
      notice_transport_(net, self) {
  config_.normalize();
  if (resume) {
    // A state-synced joiner resumes the chain where the group is; deriving
    // genesis from the member list here would fork the chain (and the
    // instance tag) from the incumbents'.
    epoch_ = resume->epoch;
    epoch_hash_ = resume->hash;
  } else {
    epoch_hash_ = genesis_hash(config_);
  }
  notice_transport_.listen({net::MsgType::kSmrRemovalNotice},
                           [this](const net::Message& m) { on_removal_notice(m); });
  start_engine();
}

ReconfigurableSmr::~ReconfigurableSmr() { stop(); }

void ReconfigurableSmr::stop() {
  stopped_ = true;
  for (sim::EventId id : notice_timers_) net_.simulator().cancel(id);
  notice_timers_.clear();
  notice_transport_.close();
  if (engine_) {
    engine_->stop();
    engine_.reset();
  }
}

void ReconfigurableSmr::set_fault(DsFaultMode ds, PbftFaultMode pbft) {
  options_.ds_fault = ds;
  options_.pbft_fault = pbft;
  if (auto* e = dynamic_cast<DolevStrongSmr*>(engine_.get())) e->set_fault(ds);
  if (auto* e = dynamic_cast<PbftSmr*>(engine_.get())) e->set_fault(pbft);
}

void ReconfigurableSmr::start_engine() {
  // The instance tag is the chain head, not the member list: A -> B -> A
  // yields three distinct tags, so a laggard from the first A-instance can
  // never adopt the second A-instance's history.
  options_.pbft.instance_tag = crypto::digest_prefix64(epoch_hash_);
  engine_ = make_engine(net::Transport(net_, self_), config_, keys_, options_);
  engine_->set_decide_handler([this](std::uint64_t, NodeId origin, const net::Payload& op) {
    on_engine_decide(origin, op);
  });
  if (auto* e = dynamic_cast<PbftSmr*>(engine_.get())) {
    e->set_install_handler([this](std::uint64_t, std::uint64_t, std::uint64_t from_ops,
                                  std::uint64_t to_ops) {
      // The skipped ops were decided by the group; keep the cross-epoch
      // sequence aligned with replicas that executed them one by one.
      const std::uint64_t skipped = to_ops - from_ops;
      global_seq_ += skipped;
      if (install_) install_(skipped);
    });
  }
  // Reconfiguration must not lose in-flight proposals (SMART carries them
  // into the next configuration's instance). A checkpoint install may have
  // adopted one of these without firing decide_ here, in which case the
  // re-proposal executes as a ledger-deduped null op — at-least-once into
  // the ledger, exactly-once into the decided sequence.
  for (const Bytes& op : unacked_) {
    engine_->propose(op);
  }
}

void ReconfigurableSmr::propose(Bytes op) {
  ByteWriter w;
  w.u8(kAppOp);
  w.bytes(op);
  Bytes wrapped = w.take();
  unacked_.push_back(wrapped);
  if (engine_) engine_->propose(std::move(wrapped));
}

void ReconfigurableSmr::propose_reconfig(GroupConfig new_config) {
  new_config.normalize();
  ByteWriter w;
  w.u8(kConfigOp);
  w.vec(new_config.members, [](ByteWriter& bw, NodeId n) { bw.u64(n); });
  Bytes wrapped = w.take();
  unacked_.push_back(wrapped);
  if (engine_) engine_->propose(std::move(wrapped));
}

void ReconfigurableSmr::on_engine_decide(NodeId origin, const net::Payload& wrapped) {
  // A config op is the LAST decision applied in an instance. The engine
  // swap is deferred (schedule_after(0)), so the retiring engine can still
  // deliver decisions ordered after the config op — e.g. the tail of the
  // same commit batch. Whether a given replica's engine delivers those
  // before its swap fires is timing, not agreement: applying them here
  // would fork global_seq_ and the epoch-hash chain across replicas. Drop
  // them instead — and do NOT ack them, so their origins re-propose them
  // into the next instance (the SMART carry-over), where they decide for
  // everyone or no one.
  if (switching_) return;
  if (origin == self_) {
    // Payload <-> Bytes content equality, no materialization.
    auto it = std::find(unacked_.begin(), unacked_.end(), wrapped);
    if (it != unacked_.end()) unacked_.erase(it);
  }

  ByteReader r(wrapped);
  std::uint8_t tag;
  try {
    tag = r.u8();
    if (tag == kAppOp) {
      net::Payload op = wrapped.slice(r.bytes_view());  // unwrap without copying
      std::uint64_t seq = global_seq_++;
      if (decide_) decide_(seq, origin, op);
      return;
    }
    if (tag != kConfigOp) return;  // unknown tag: faulty proposer, ignore

    GroupConfig next;
    next.members = r.vec<NodeId>([](ByteReader& br) { return br.u64(); });
    next.normalize();
    if (next.members.empty()) return;  // refuse to reconfigure to nothing
    if (next.members == config_.members) return;  // no-op (e.g. several
    // members proposed the same change and one already won)

    ++global_seq_;
    ++epoch_;
    // Extend the config-history chain over the decided op's bytes. Every
    // correct replica decides the same op at the same slot, so the chain
    // head (and the next instance's tag) agrees group-wide.
    epoch_hash_ = chain_hash(epoch_hash_, wrapped.digest());
    pre_switch_members_ = config_.members;
    config_ = next;
    // Defer the engine swap out of the decide callback: the old engine is
    // still on the stack. The switching_ cut above keeps this the only
    // pending swap.
    switching_ = true;
    net_.simulator().schedule_after(0, [this] {
      switching_ = false;
      if (engine_) {
        engine_->stop();
        engine_.reset();
      }
      std::vector<NodeId> removed;
      for (NodeId n : pre_switch_members_) {
        if (!config_.contains(n)) removed.push_back(n);
      }
      if (config_.contains(self_)) {
        start_engine();
        // Continuing members tell the removed set the epoch moved on; a
        // removed replica partitioned across the switch would otherwise
        // wait forever on the retired instance (the leave-confirmation
        // gap — the config op killed the instance that decided it).
        send_removal_notices(removed);
      }
      if (config_changed_) config_changed_(epoch_, config_);  // may destroy this
    });
  } catch (const SerdeError&) {
    // Malformed decided op: a faulty origin proposed garbage. Skip it.
  }
}

void ReconfigurableSmr::send_removal_notices(const std::vector<NodeId>& removed) {
  if (removed.empty()) return;
  ByteWriter w;
  w.u64(epoch_);
  w.raw(epoch_hash_.data(), epoch_hash_.size());
  w.vec(config_.members, [](ByteWriter& bw, NodeId n) { bw.u64(n); });
  Bytes notice = w.take();  // identical bytes at every correct continuing member
  auto send_all = [this, removed, notice] {
    for (NodeId n : removed) {
      notice_transport_.send(n, net::MsgType::kSmrRemovalNotice, notice);
    }
  };
  send_all();
  for (DurationMicros delay : kNoticeRetries) {
    notice_timers_.push_back(net_.simulator().schedule_after(delay, send_all));
  }
}

void ReconfigurableSmr::on_removal_notice(const net::Message& msg) {
  if (stopped_) return;
  std::uint64_t epoch;
  crypto::Digest hash;
  GroupConfig next;
  try {
    ByteReader r(msg.payload);
    epoch = r.u64();
    r.raw(hash.data(), hash.size());
    next.members = r.vec<NodeId>([](ByteReader& br) { return br.u64(); });
    r.expect_done();
  } catch (const SerdeError&) {
    return;
  }
  next.normalize();
  if (epoch <= epoch_) return;             // stale: we already reached that epoch
  if (next.members.empty()) return;
  if (next.contains(self_)) return;        // a "removal" that keeps us is garbage
  if (!config_.contains(msg.from)) return; // only our last-known peers may vouch

  // No prev-hash link check: a laggard several epochs behind cannot verify
  // the chain segment it missed. f+1 byte-identical notices from members of
  // its own last-known config guarantee one correct sender instead.
  std::set<NodeId>& voters = notice_votes_[msg.payload.digest()];
  voters.insert(msg.from);
  std::size_t faults = options_.kind == EngineKind::kSync
                           ? sync_max_faults(config_.size())
                           : async_max_faults(config_.size());
  if (voters.size() < faults + 1) return;
  notice_votes_.clear();

  epoch_ = epoch;
  epoch_hash_ = hash;
  config_ = next;
  if (engine_) {
    engine_->stop();
    engine_.reset();
  }
  if (config_changed_) config_changed_(epoch_, config_);  // may destroy this
}

}  // namespace atum::smr
