// Epoch-based SMR reconfiguration, after the SMART approach [55] the paper
// combines with PBFT: each membership change closes the current engine and
// starts a fresh one for the new configuration. Decisions keep a single
// monotonically increasing sequence across epochs; operations proposed but
// not yet decided when an epoch closes are re-proposed in the next epoch.
//
// Config-history hash chain: every epoch is identified by
//   epoch_hash = SHA-256(prev_epoch_hash || config_op_digest)
// rooted at a genesis hash over the initial member list. The chain value —
// not the member list — derives the PBFT instance tag, so two non-adjacent
// epochs with identical membership (A -> B -> A) can never share a tag and
// an old-instance laggard can never adopt a successor instance's history.
// The (epoch, hash) pair travels in the join snapshot (core/atum.cpp), so a
// state-synced joiner resumes the chain at the group's position.
//
// Removal notices close the leave-confirmation gap at the protocol level: a
// config op that removes members retires the very instance that decided it,
// so a removed replica partitioned across the switch would otherwise wait
// forever on a dead instance (zombie member). After the switch, continuing
// members send the removed set a kSmrRemovalNotice carrying the new epoch,
// its chain hash and member list (retried on a short backoff); a removed
// node accepts once f+1 members of its own last-known config sent
// byte-identical notices — at least one is correct — and fires the config
// handler as if it had decided the op itself. The scenario driver's
// announce/retry/timeout flow stays as the client-side fallback.
//
// The wrapper manages only the *local* replica's lifecycle. Creating
// replicas on newly added members (and state-syncing them) is the group
// layer's job — it learns about membership changes via the config handler.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "crypto/keys.h"
#include "crypto/sha256.h"
#include "net/network.h"
#include "smr/dolev_strong.h"
#include "smr/pbft.h"
#include "smr/smr.h"

namespace atum::smr {

enum class EngineKind { kSync, kAsync };

struct EngineOptions {
  EngineKind kind = EngineKind::kSync;
  DolevStrongOptions ds;
  PbftOptions pbft;
  DsFaultMode ds_fault = DsFaultMode::kCorrect;
  PbftFaultMode pbft_fault = PbftFaultMode::kCorrect;
};

// Position in the config-history hash chain; rides in the join snapshot so
// a joiner's ReconfigurableSmr resumes at the group's epoch instead of
// re-deriving epoch 0 from the member list.
struct EpochState {
  std::uint64_t epoch = 0;
  crypto::Digest hash{};
};

// Builds a fresh engine for a configuration. Exposed so tests can run both
// kinds through one code path.
std::unique_ptr<SmrEngine> make_engine(net::Transport transport, GroupConfig config,
                                       crypto::KeyStore& keys, const EngineOptions& options);

class ReconfigurableSmr {
 public:
  using ConfigFn = std::function<void(std::uint64_t epoch, const GroupConfig&)>;
  // Checkpoint-install pass-through (PBFT engines only): the gap ops were
  // decided by the group but never fire decide_ locally; global_seq_ is
  // advanced past them before this fires. See PbftSmr::InstallFn.
  using InstallFn = std::function<void(std::uint64_t skipped_ops)>;

  ReconfigurableSmr(net::SimNetwork& net, NodeId self, GroupConfig initial,
                    crypto::KeyStore& keys, EngineOptions options,
                    std::optional<EpochState> resume = std::nullopt);
  ~ReconfigurableSmr();

  // Proposes an application operation (totally ordered across epochs).
  void propose(Bytes op);
  // Proposes a membership change; decided like any op, then switches epoch.
  void propose_reconfig(GroupConfig new_config);

  void set_decide_handler(DecideFn fn) { decide_ = std::move(fn); }
  void set_config_handler(ConfigFn fn) { config_changed_ = std::move(fn); }
  void set_install_handler(InstallFn fn) { install_ = std::move(fn); }

  // Runtime fault conversion: applies to the live engine immediately and to
  // every engine started for later epochs (scenario Byzantine primitives
  // convert correct nodes mid-run).
  void set_fault(DsFaultMode ds, PbftFaultMode pbft);

  const GroupConfig& config() const { return config_; }
  std::uint64_t epoch() const { return epoch_; }
  // Head of the config-history hash chain (the current epoch's identity).
  const crypto::Digest& epoch_hash() const { return epoch_hash_; }
  std::uint64_t decided_count() const { return global_seq_; }
  // False once the local node has been reconfigured out of the group.
  bool active() const { return engine_ != nullptr; }
  void stop();

 private:
  void start_engine();
  void on_engine_decide(NodeId origin, const net::Payload& wrapped);
  void send_removal_notices(const std::vector<NodeId>& removed);
  void on_removal_notice(const net::Message& msg);

  net::SimNetwork& net_;
  NodeId self_;
  GroupConfig config_;
  crypto::KeyStore& keys_;
  EngineOptions options_;

  DecideFn decide_;
  ConfigFn config_changed_;
  InstallFn install_;

  std::unique_ptr<SmrEngine> engine_;
  // Dedicated transport for removal notices: it outlives engine swaps (the
  // notice targets exactly the nodes whose engines are gone) and its
  // registrations coexist with the engine's on the same node.
  net::Transport notice_transport_;
  std::uint64_t epoch_ = 0;
  crypto::Digest epoch_hash_{};
  std::uint64_t global_seq_ = 0;
  // Ops this node proposed that have not been decided yet; re-proposed on
  // epoch change so reconfiguration cannot silently drop them.
  std::vector<Bytes> unacked_;
  bool switching_ = false;
  // Members of the config that decided the pending switch; the removed set
  // (pre-switch minus post-switch) gets notices after the swap.
  std::vector<NodeId> pre_switch_members_;
  // Removal-notice retry timers (canceled in stop()).
  std::vector<sim::EventId> notice_timers_;
  // Notice digest -> senders; accepted at f+1 of the last-known config.
  std::map<crypto::Digest, std::set<NodeId>> notice_votes_;
  bool stopped_ = false;
};

}  // namespace atum::smr
