// Epoch-based SMR reconfiguration, after the SMART approach [55] the paper
// combines with PBFT: each membership change closes the current engine and
// starts a fresh one for the new configuration. Decisions keep a single
// monotonically increasing sequence across epochs; operations proposed but
// not yet decided when an epoch closes are re-proposed in the next epoch.
//
// The wrapper manages only the *local* replica's lifecycle. Creating
// replicas on newly added members (and state-syncing them) is the group
// layer's job — it learns about membership changes via the config handler.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "crypto/keys.h"
#include "net/network.h"
#include "smr/dolev_strong.h"
#include "smr/pbft.h"
#include "smr/smr.h"

namespace atum::smr {

enum class EngineKind { kSync, kAsync };

struct EngineOptions {
  EngineKind kind = EngineKind::kSync;
  DolevStrongOptions ds;
  PbftOptions pbft;
  DsFaultMode ds_fault = DsFaultMode::kCorrect;
  PbftFaultMode pbft_fault = PbftFaultMode::kCorrect;
};

// Builds a fresh engine for a configuration. Exposed so tests can run both
// kinds through one code path.
std::unique_ptr<SmrEngine> make_engine(net::Transport transport, GroupConfig config,
                                       crypto::KeyStore& keys, const EngineOptions& options);

class ReconfigurableSmr {
 public:
  using ConfigFn = std::function<void(std::uint64_t epoch, const GroupConfig&)>;

  ReconfigurableSmr(net::SimNetwork& net, NodeId self, GroupConfig initial,
                    crypto::KeyStore& keys, EngineOptions options);
  ~ReconfigurableSmr();

  // Proposes an application operation (totally ordered across epochs).
  void propose(Bytes op);
  // Proposes a membership change; decided like any op, then switches epoch.
  void propose_reconfig(GroupConfig new_config);

  void set_decide_handler(DecideFn fn) { decide_ = std::move(fn); }
  void set_config_handler(ConfigFn fn) { config_changed_ = std::move(fn); }

  // Runtime fault conversion: applies to the live engine immediately and to
  // every engine started for later epochs (scenario Byzantine primitives
  // convert correct nodes mid-run).
  void set_fault(DsFaultMode ds, PbftFaultMode pbft);

  const GroupConfig& config() const { return config_; }
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t decided_count() const { return global_seq_; }
  // False once the local node has been reconfigured out of the group.
  bool active() const { return engine_ != nullptr; }
  void stop();

 private:
  void start_engine();
  void on_engine_decide(NodeId origin, const net::Payload& wrapped);

  net::SimNetwork& net_;
  NodeId self_;
  GroupConfig config_;
  crypto::KeyStore& keys_;
  EngineOptions options_;

  DecideFn decide_;
  ConfigFn config_changed_;

  std::unique_ptr<SmrEngine> engine_;
  std::uint64_t epoch_ = 0;
  std::uint64_t global_seq_ = 0;
  // Ops this node proposed that have not been decided yet; re-proposed on
  // epoch change so reconfiguration cannot silently drop them.
  std::vector<Bytes> unacked_;
  bool switching_ = false;
};

}  // namespace atum::smr
