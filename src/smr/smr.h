// State machine replication inside one vgroup.
//
// Atum is agnostic to the SMR protocol (§3.1): it only needs totally-ordered
// delivery of operations among the vgroup's members, tolerating f Byzantine
// members. Two engines implement this interface:
//   * DolevStrongSmr — synchronous rounds, f = floor((g-1)/2)   [32]
//   * PbftSmr        — eventual synchrony, f = floor((g-1)/3)   [20]
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "common/serde.h"
#include "common/types.h"
#include "net/message.h"

namespace atum::smr {

// Membership of one replication group. Members are kept sorted so that all
// correct replicas agree on primary rotation and deterministic ordering.
struct GroupConfig {
  std::vector<NodeId> members;

  void normalize() {
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
  }
  std::size_t size() const { return members.size(); }
  bool contains(NodeId n) const {
    return std::binary_search(members.begin(), members.end(), n);
  }
  std::size_t index_of(NodeId n) const {
    auto it = std::lower_bound(members.begin(), members.end(), n);
    return static_cast<std::size_t>(it - members.begin());
  }
};

// Invoked exactly once per decided slot, in sequence order, with identical
// (seq, origin, op) at every correct replica. The op is a refcounted
// net::Payload slice of the frame it was agreed in — Dolev-Strong hands out
// slices of the decided batch, PBFT slices of the pre-prepare (or state-
// reply) frame — so the decide path is zero-copy end to end; consumers
// slice it further (unwrap, decode) without copying. Ownership contract
// (net/message.h): the slice pins its whole frame, which is fine for the
// prompt deliver-decode-drop pattern every current consumer follows; a
// consumer archiving ops long-term must copy out via to_bytes(). The op's
// SHA-256, if anyone needs it, is Payload::digest() — memoized on the
// frame, shared with every other holder.
using DecideFn = std::function<void(std::uint64_t seq, NodeId origin, const net::Payload& op)>;

// Fault threshold rules (paper §3.1).
inline std::size_t sync_max_faults(std::size_t g) { return g == 0 ? 0 : (g - 1) / 2; }
inline std::size_t async_max_faults(std::size_t g) { return g == 0 ? 0 : (g - 1) / 3; }

class SmrEngine {
 public:
  virtual ~SmrEngine() = default;

  // Submits an operation originated by the local replica. The engine
  // eventually decides it (liveness holds while faults <= f).
  virtual void propose(Bytes op) = 0;

  // Registers the decision callback; must be set before the first decide.
  virtual void set_decide_handler(DecideFn fn) = 0;

  virtual const GroupConfig& config() const = 0;
  virtual std::uint64_t decided_count() const = 0;

  // Tears the replica down (stops timers, detaches from the transport).
  virtual void stop() = 0;
};

}  // namespace atum::smr
