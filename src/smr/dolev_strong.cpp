#include "smr/dolev_strong.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace atum::smr {

namespace {

struct WireValue {
  std::uint64_t slot;
  NodeId origin;
  Bytes payload;
  std::vector<std::pair<NodeId, crypto::Signature>> chain;
};

Bytes encode_wire(const WireValue& v) {
  ByteWriter w;
  w.u64(v.slot);
  w.u64(v.origin);
  w.bytes(v.payload);
  w.varint(v.chain.size());
  for (const auto& [node, sig] : v.chain) {
    w.u64(node);
    w.raw(sig.data(), sig.size());
  }
  return w.take();
}

WireValue decode_wire(const net::Payload& buf) {
  ByteReader r(buf);
  WireValue v;
  v.slot = r.u64();
  v.origin = r.u64();
  v.payload = r.bytes();
  std::uint64_t n = r.varint();
  if (n > 1024) throw SerdeError("signature chain too long");
  v.chain.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    NodeId node = r.u64();
    crypto::Signature sig;
    r.raw(sig.data(), sig.size());
    v.chain.emplace_back(node, sig);
  }
  r.expect_done();
  return v;
}

}  // namespace

DolevStrongSmr::DolevStrongSmr(net::Transport transport, GroupConfig config,
                               crypto::KeyStore& keys, DolevStrongOptions options,
                               DsFaultMode fault)
    : transport_(std::move(transport)),
      config_(std::move(config)),
      keys_(keys),
      options_(options),
      fault_(fault) {
  config_.normalize();
  transport_.listen({net::MsgType::kDsBroadcast},
                    [this](const net::Message& m) { on_message(m); });

  // Align to the next round boundary and tick from there.
  TimeMicros now = transport_.simulator().now();
  TimeMicros since = now - options_.epoch_start;
  std::int64_t rounds_elapsed =
      since <= 0 ? 0 : (since + options_.round_duration - 1) / options_.round_duration;
  TimeMicros next_boundary = options_.epoch_start + rounds_elapsed * options_.round_duration;
  auto total = static_cast<std::uint64_t>(rounds_elapsed);
  slot_ = total / rounds_per_slot();
  round_in_slot_ = static_cast<std::size_t>(total % rounds_per_slot());
  round_event_ = transport_.simulator().schedule_at(next_boundary, [this] { on_round_boundary(); });
}

DolevStrongSmr::~DolevStrongSmr() { stop(); }

void DolevStrongSmr::stop() {
  if (stopped_) return;
  stopped_ = true;
  transport_.simulator().cancel(round_event_);
  transport_.close();
}

void DolevStrongSmr::set_decide_handler(DecideFn fn) { decide_ = std::move(fn); }

std::uint64_t DolevStrongSmr::current_slot() const { return slot_; }

void DolevStrongSmr::propose(Bytes op) {
  if (fault_ == DsFaultMode::kSilent) return;  // faulty replica drops its ops
  outbox_.push_back(std::move(op));
}

crypto::Digest DolevStrongSmr::value_digest(std::uint64_t slot, NodeId origin,
                                            const Bytes& payload) const {
  ByteWriter w;
  w.str("ds-value");
  w.u64(slot);
  w.u64(origin);
  w.bytes(payload);
  return crypto::sha256(w.data());
}

void DolevStrongSmr::on_round_boundary() {
  if (stopped_) return;
  round_event_ = transport_.simulator().schedule_after(options_.round_duration,
                                                       [this] { on_round_boundary(); });
  if (round_in_slot_ == 0) {
    begin_slot();
  }
  ++round_in_slot_;
  if (round_in_slot_ == rounds_per_slot()) {
    finish_slot();
    round_in_slot_ = 0;
    ++slot_;
  }
}

void DolevStrongSmr::begin_slot() {
  slot_values_.clear();
  equivocators_.clear();
  if (fault_ == DsFaultMode::kSilent) {
    outbox_.clear();
    return;
  }
  if (fault_ == DsFaultMode::kEquivocate && !config_.members.empty()) {
    // Send value A to the first half of the group and value B to the rest.
    Bytes a = {0x41}, b = {0x42};
    auto chain_for = [&](const Bytes& payload) {
      crypto::Digest d = value_digest(slot_, transport_.self(), payload);
      Bytes msg_bytes(d.begin(), d.end());
      return std::vector<std::pair<NodeId, crypto::Signature>>{
          {transport_.self(), keys_.key_of(transport_.self()).sign(msg_bytes)}};
    };
    std::size_t half = config_.size() / 2;
    for (std::size_t i = 0; i < config_.size(); ++i) {
      const Bytes& payload = (i < half) ? a : b;
      WireValue v{slot_, transport_.self(), payload, chain_for(payload)};
      transport_.send(config_.members[i], net::MsgType::kDsBroadcast, encode_wire(v));
    }
    outbox_.clear();
    return;
  }
  // One value per origin per slot: all pending ops travel as a single
  // batch, otherwise a replica proposing twice in a slot would look like an
  // equivocator to its peers.
  if (!outbox_.empty()) {
    ByteWriter w;
    w.vec(outbox_, [](ByteWriter& bw, const Bytes& op) { bw.bytes(op); });
    broadcast_value(w.take(), slot_);
    outbox_.clear();
  }
}

void DolevStrongSmr::broadcast_value(const Bytes& payload, std::uint64_t slot) {
  crypto::Digest d = value_digest(slot, transport_.self(), payload);
  Bytes digest_bytes(d.begin(), d.end());
  crypto::Signature sig = keys_.key_of(transport_.self()).sign(digest_bytes);
  WireValue v{slot, transport_.self(), payload, {{transport_.self(), sig}}};
  net::Payload wire(encode_wire(v));  // frozen once, shared by all peers
  for (NodeId peer : config_.members) {
    if (peer == transport_.self()) continue;
    transport_.send(peer, net::MsgType::kDsBroadcast, wire);
  }
  // Locally accept our own value immediately.
  PendingValue pv{transport_.self(), payload, {{transport_.self(), sig}}, true};
  slot_values_.emplace(ValueKey{transport_.self(), crypto::digest_prefix64(d)}, std::move(pv));
}

void DolevStrongSmr::on_message(const net::Message& msg) {
  if (stopped_ || msg.type != net::MsgType::kDsBroadcast) return;
  if (fault_ == DsFaultMode::kSilent) return;
  if (!config_.contains(msg.from)) return;

  WireValue v;
  try {
    v = decode_wire(msg.payload);
  } catch (const SerdeError&) {
    return;  // malformed — sender is faulty
  }
  if (v.slot != slot_) return;  // late or early; synchrony bounds make this faulty
  if (!config_.contains(v.origin)) return;
  if (v.chain.empty() || v.chain.front().first != v.origin) return;
  if (v.chain.size() > rounds_per_slot()) return;

  // Validate the signature chain: distinct group members, each signing the
  // value digest. (Classic DS has signer i also cover the prefix chain;
  // over authenticated point-to-point links signing the value digest gives
  // the same unforgeability of "i vouched for v in this slot".)
  crypto::Digest d = value_digest(v.slot, v.origin, v.payload);
  Bytes digest_bytes(d.begin(), d.end());
  std::map<NodeId, crypto::Signature> sigs;
  for (const auto& [node, sig] : v.chain) {
    if (!config_.contains(node) || sigs.contains(node)) return;
    if (options_.verify_signatures && !keys_.verify(node, digest_bytes, sig)) return;
    sigs.emplace(node, sig);
  }
  // A value must carry at least r signatures when first seen in round r
  // (round_in_slot_ counts rounds already completed in this slot).
  if (sigs.size() < std::min<std::size_t>(round_in_slot_, max_faults() + 1)) return;

  ValueKey key{v.origin, crypto::digest_prefix64(d)};
  auto [it, inserted] = slot_values_.try_emplace(key, PendingValue{v.origin, v.payload, {}, false});
  PendingValue& pv = it->second;
  pv.sigs.insert(sigs.begin(), sigs.end());

  // Detect equivocation: two distinct accepted values from one origin.
  for (const auto& [other_key, other] : slot_values_) {
    if (other_key.first == v.origin && other_key.second != key.second) {
      equivocators_.insert(v.origin);
      break;
    }
  }

  if (!pv.relayed) {
    pv.relayed = true;
    relay(pv, v.slot);
  }
}

void DolevStrongSmr::relay(PendingValue& v, std::uint64_t slot) {
  // Append our signature to the chain we actually received and forward.
  crypto::Digest d = value_digest(slot, v.origin, v.payload);
  Bytes digest_bytes(d.begin(), d.end());
  if (!v.sigs.contains(transport_.self())) {
    v.sigs.emplace(transport_.self(), keys_.key_of(transport_.self()).sign(digest_bytes));
  }

  std::vector<std::pair<NodeId, crypto::Signature>> chain;
  chain.reserve(v.sigs.size());
  // Chain must start with the origin; the rest may be in any order.
  auto origin_it = v.sigs.find(v.origin);
  if (origin_it == v.sigs.end()) return;  // cannot happen for accepted values
  chain.emplace_back(origin_it->first, origin_it->second);
  for (const auto& [n, sig] : v.sigs) {
    if (n != v.origin) chain.emplace_back(n, sig);
  }

  WireValue wire{slot, v.origin, v.payload, std::move(chain)};
  net::Payload encoded(encode_wire(wire));  // frozen once, shared by all peers
  for (NodeId peer : config_.members) {
    if (peer == transport_.self()) continue;
    transport_.send(peer, net::MsgType::kDsBroadcast, encoded);
  }
}

void DolevStrongSmr::finish_slot() {
  // Deterministic order: by origin, then by payload digest prefix (the map
  // key already sorts that way). Equivocators' values are voided. Each
  // value is a batch of operations from its origin.
  for (auto& [key, v] : slot_values_) {
    if (equivocators_.contains(key.first)) continue;
    // Freeze the accepted batch once (a move — slot_values_ is discarded
    // below); each decided op travels up the stack as a slice of it.
    net::Payload batch(std::move(v.payload));
    try {
      ByteReader r(batch);
      auto views = r.vec<std::span<const std::uint8_t>>(
          [](ByteReader& br) { return br.bytes_view(); });
      r.expect_done();
      for (const auto& view : views) {
        if (decide_) decide_(decided_, v.origin, batch.slice(view));
        ++decided_;
      }
    } catch (const SerdeError&) {
      // Malformed batch: the origin is faulty; void its slot.
    }
  }
  slot_values_.clear();
}

}  // namespace atum::smr
