#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace atum {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Samples::percentile(double p) const {
  if (xs_.empty()) throw std::logic_error("Samples::percentile on empty set");
  ensure_sorted();
  p = std::clamp(p, 0.0, 1.0);
  auto rank = static_cast<std::size_t>(std::ceil(p * static_cast<double>(xs_.size())));
  if (rank > 0) --rank;
  return xs_[std::min(rank, xs_.size() - 1)];
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  return std::accumulate(xs_.begin(), xs_.end(), 0.0) / static_cast<double>(xs_.size());
}

double Samples::cdf_at(double x) const {
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  return static_cast<double>(it - xs_.begin()) / static_cast<double>(xs_.size());
}

std::vector<std::pair<double, double>> Samples::cdf_points(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (xs_.empty() || points == 0) return out;
  ensure_sorted();
  double lo = xs_.front(), hi = xs_.back();
  if (points == 1 || lo == hi) {
    out.emplace_back(hi, 1.0);
    return out;
  }
  for (std::size_t i = 0; i < points; ++i) {
    double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, cdf_at(x));
  }
  return out;
}

double chi_square_statistic(const std::vector<std::uint64_t>& counts) {
  if (counts.empty()) throw std::invalid_argument("chi_square_statistic: no bins");
  std::uint64_t total = std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  if (total == 0) return 0.0;
  double expected = static_cast<double>(total) / static_cast<double>(counts.size());
  double stat = 0.0;
  for (std::uint64_t c : counts) {
    double d = static_cast<double>(c) - expected;
    stat += d * d / expected;
  }
  return stat;
}

namespace {

// Regularized lower incomplete gamma P(a, x) via series (x < a+1) or
// continued fraction (x >= a+1); Numerical Recipes formulation.
double gamma_p(double a, double x) {
  if (x < 0.0 || a <= 0.0) throw std::invalid_argument("gamma_p domain");
  if (x == 0.0) return 0.0;
  const double gln = std::lgamma(a);
  if (x < a + 1.0) {
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::fabs(del) < std::fabs(sum) * 1e-14) break;
    }
    return sum * std::exp(-x + a * std::log(x) - gln);
  }
  // Lentz's continued fraction for Q(a, x); P = 1 - Q.
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-14) break;
  }
  double q = std::exp(-x + a * std::log(x) - gln) * h;
  return 1.0 - q;
}

}  // namespace

double chi_square_sf(double x, double df) {
  if (df <= 0.0) throw std::invalid_argument("chi_square_sf: df must be positive");
  if (x <= 0.0) return 1.0;
  return 1.0 - gamma_p(df / 2.0, x / 2.0);
}

bool passes_uniformity_test(const std::vector<std::uint64_t>& counts, double confidence) {
  if (counts.size() < 2) return true;
  double stat = chi_square_statistic(counts);
  double p_value = chi_square_sf(stat, static_cast<double>(counts.size() - 1));
  // The test cannot distinguish the data from uniform iff it fails to
  // reject at significance (1 - confidence).
  return p_value > (1.0 - confidence);
}

}  // namespace atum
