#include "common/binomial.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace atum {

double binomial_pmf(std::uint32_t n, std::uint32_t k, double p) {
  if (k > n) return 0.0;
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("binomial_pmf: p out of range");
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  double log_choose = std::lgamma(static_cast<double>(n) + 1.0) -
                      std::lgamma(static_cast<double>(k) + 1.0) -
                      std::lgamma(static_cast<double>(n - k) + 1.0);
  double log_pmf = log_choose + static_cast<double>(k) * std::log(p) +
                   static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double binomial_tail_geq(std::uint32_t n, std::uint32_t k, double p) {
  if (k == 0) return 1.0;
  if (k > n) return 0.0;
  // Sum the smaller side for accuracy.
  double mean = static_cast<double>(n) * p;
  if (static_cast<double>(k) > mean) {
    double tail = 0.0;
    for (std::uint32_t i = n + 1; i-- > k;) tail += binomial_pmf(n, i, p);
    return std::min(tail, 1.0);
  }
  double head = 0.0;
  for (std::uint32_t i = 0; i < k; ++i) head += binomial_pmf(n, i, p);
  return std::clamp(1.0 - head, 0.0, 1.0);
}

double vgroup_robust_probability(std::uint32_t g, std::uint32_t f, double p) {
  return 1.0 - binomial_tail_geq(g, f + 1, p);
}

std::uint32_t sync_fault_threshold(std::uint32_t g) { return g == 0 ? 0 : (g - 1) / 2; }
std::uint32_t async_fault_threshold(std::uint32_t g) { return g == 0 ? 0 : (g - 1) / 3; }

double all_vgroups_robust_probability(double n, std::uint32_t k, double fault_rate,
                                      bool synchronous) {
  if (n < 2.0) return 1.0;
  auto g = static_cast<std::uint32_t>(
      std::max(2.0, std::round(static_cast<double>(k) * std::log2(n))));
  std::uint32_t f = synchronous ? sync_fault_threshold(g) : async_fault_threshold(g);
  double per_group = vgroup_robust_probability(g, f, fault_rate);
  double num_groups = std::max(1.0, n / static_cast<double>(g));
  return std::pow(per_group, num_groups);
}

}  // namespace atum
