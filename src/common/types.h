// Core identifier and time types shared by every Atum module.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace atum {

// Identifies one node (one process/VM in the paper's deployment).
using NodeId = std::uint64_t;

// Identifies one volatile group. Group ids are never reused: splits and
// bootstrap mint fresh ids so that stale references are detectable.
using GroupId = std::uint64_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr GroupId kInvalidGroup = std::numeric_limits<GroupId>::max();

// Simulated time. All protocol code measures time in microseconds on a
// signed 64-bit clock, which covers ~292k years of simulation.
using TimeMicros = std::int64_t;
using DurationMicros = std::int64_t;

inline constexpr DurationMicros kMicrosPerMilli = 1'000;
inline constexpr DurationMicros kMicrosPerSecond = 1'000'000;
inline constexpr DurationMicros kMicrosPerMinute = 60 * kMicrosPerSecond;

constexpr DurationMicros millis(std::int64_t ms) { return ms * kMicrosPerMilli; }
constexpr DurationMicros seconds(double s) {
  return static_cast<DurationMicros>(s * static_cast<double>(kMicrosPerSecond));
}
constexpr double to_seconds(TimeMicros t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosPerSecond);
}

// Identifies one broadcast (publisher node + publisher-local sequence).
struct BroadcastId {
  NodeId origin = kInvalidNode;
  std::uint64_t seq = 0;

  friend bool operator==(const BroadcastId&, const BroadcastId&) = default;
  friend auto operator<=>(const BroadcastId&, const BroadcastId&) = default;
};

std::string to_string(const BroadcastId& id);

inline std::string to_string(const BroadcastId& id) {
  return std::to_string(id.origin) + ":" + std::to_string(id.seq);
}

}  // namespace atum

template <>
struct std::hash<atum::BroadcastId> {
  std::size_t operator()(const atum::BroadcastId& id) const noexcept {
    std::size_t h = std::hash<atum::NodeId>{}(id.origin);
    return h ^ (std::hash<std::uint64_t>{}(id.seq) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  }
};
