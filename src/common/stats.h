// Statistics utilities for the evaluation harness: running summaries,
// percentiles/CDFs (Fig 8), and Pearson's chi-square uniformity test used to
// derive the rwl/hc configuration guideline (Fig 4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace atum {

// Online mean/min/max/variance (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance, 0 if n < 2
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Collects samples; answers percentile / CDF queries. Used for latency CDFs.
class Samples {
 public:
  void add(double x) { xs_.push_back(x); sorted_ = false; }
  std::size_t count() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  // p in [0,1]; nearest-rank percentile.
  double percentile(double p) const;
  double median() const { return percentile(0.5); }
  double mean() const;
  double max() const { return percentile(1.0); }
  // Fraction of samples <= x.
  double cdf_at(double x) const;
  // Evenly spaced (x, F(x)) points suitable for plotting a CDF.
  std::vector<std::pair<double, double>> cdf_points(std::size_t points) const;
  const std::vector<double>& values() const { return xs_; }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> xs_;
  mutable bool sorted_ = true;
};

// Pearson chi-square goodness-of-fit against the uniform distribution over
// `bins` categories. Returns the test statistic.
double chi_square_statistic(const std::vector<std::uint64_t>& counts);

// Upper-tail probability P[X >= x] for a chi-square distribution with df
// degrees of freedom (regularized incomplete gamma).
double chi_square_sf(double x, double df);

// True if the observed counts are indistinguishable from uniform at the
// given confidence level (e.g. 0.99 as in the paper: the test must NOT
// reject uniformity). alpha = 1 - confidence.
bool passes_uniformity_test(const std::vector<std::uint64_t>& counts, double confidence);

}  // namespace atum
