#include "common/rng.h"

#include <cstddef>
#include <stdexcept>

namespace atum {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // SplitMix64 expansion guarantees a non-zero state even for seed 0.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound must be positive");
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  while (true) {
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= bound || low >= (0 - bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::next_in: lo > hi");
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_indices: k > n");
  // Floyd's algorithm would avoid the O(n) init, but n is small in every
  // caller (vgroup sizes, neighbor lists); partial Fisher-Yates is simpler.
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(next_below(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xa5a5a5a5a5a5a5a5ULL); }

}  // namespace atum
