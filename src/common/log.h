// Minimal leveled logger. Benchmarks run with logging off; tests can raise
// the level to debug protocol traces. Not thread-safe by design: the
// simulator is single-threaded.
#pragma once

#include <sstream>
#include <string>

namespace atum {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);
  static void write(LogLevel level, const std::string& msg);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::write(level_, out_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};
}  // namespace detail

}  // namespace atum

#define ATUM_LOG(lvl)                                   \
  if (::atum::LogLevel::lvl < ::atum::Logger::level()) { \
  } else                                                 \
    ::atum::detail::LogLine(::atum::LogLevel::lvl)
