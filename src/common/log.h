// Minimal leveled logger. Benchmarks run with logging off; tests can raise
// the level to debug protocol traces. One simulator is single-threaded,
// but the TSan stress suite runs several simulators on concurrent threads:
// the level is atomic, the optional context is thread-local, and a line is
// composed first and emitted in one write under a mutex so concurrent
// lines never interleave mid-line.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace atum {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);
  // Optional context prefix (thread-local): while set, every line from
  // this thread is prefixed "[n=<node> t=<sim_us>us]" — a harness driving
  // one node's callback sets it so protocol traces identify the node and
  // the sim-time without every call site repeating them.
  static void set_context(std::uint64_t node, std::int64_t sim_us);
  static void clear_context();
  static void write(LogLevel level, const std::string& msg);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::write(level_, out_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};
}  // namespace detail

}  // namespace atum

#define ATUM_LOG(lvl)                                   \
  if (::atum::LogLevel::lvl < ::atum::Logger::level()) { \
  } else                                                 \
    ::atum::detail::LogLine(::atum::LogLevel::lvl)
