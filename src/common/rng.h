// Deterministic pseudo-random number generation for the simulator and the
// randomized protocols (walk forwarding, shuffling, gossip fanout).
//
// Every experiment is replayable: all randomness flows from explicitly
// seeded Rng instances, never from global or hardware entropy.
#pragma once

#include <cstdint>
#include <vector>

namespace atum {

// xoshiro256** by Blackman & Vigna, seeded through SplitMix64. Chosen over
// std::mt19937_64 for speed (the simulator draws per message) and for a
// guaranteed-stable stream across standard library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

  std::uint64_t next_u64();

  // Uniform integer in [0, bound), bias-free (Lemire rejection). bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double next_double();

  // True with probability p (clamped to [0,1]).
  bool chance(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // k distinct indices from [0, n), uniform without replacement. k <= n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  // Derives an independent generator; used to give each node / each random
  // walk its own stream so that event ordering cannot perturb other draws.
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace atum
