// Binomial tail arithmetic behind the paper's robustness analysis (§3.1):
// a vgroup of size g tolerating f faults fails with P[X >= f+1] where
// X ~ B(g, p). These functions reproduce the paper's worked examples
// (B(4,.05) tail at 2 = 0.014; B(20,.05) tail at 10 = 1.134e-8) and the
// k=4 => 0.999 all-vgroups-robust claim.
#pragma once

#include <cstdint>

namespace atum {

// P[X = k] for X ~ B(n, p), computed in log space for numerical stability.
double binomial_pmf(std::uint32_t n, std::uint32_t k, double p);

// P[X >= k] for X ~ B(n, p).
double binomial_tail_geq(std::uint32_t n, std::uint32_t k, double p);

// Probability that a single vgroup of size g with per-node fault
// probability p is robust, i.e. has at most f faulty members.
double vgroup_robust_probability(std::uint32_t g, std::uint32_t f, double p);

// Faults tolerated per vgroup: floor((g-1)/2) sync, floor((g-1)/3) async.
std::uint32_t sync_fault_threshold(std::uint32_t g);
std::uint32_t async_fault_threshold(std::uint32_t g);

// Probability that ALL n/g vgroups of size g = k*log2(n) are robust, under
// independent uniform fault placement (the situation random walk shuffling
// maintains). `synchronous` selects the fault threshold rule.
double all_vgroups_robust_probability(double n, std::uint32_t k, double fault_rate,
                                      bool synchronous);

}  // namespace atum
