#include "common/serde.h"

namespace atum {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::bytes(const Bytes& b) {
  varint(b.size());
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void ByteWriter::bytes(const std::uint8_t* p, std::size_t n) {
  varint(n);
  buf_.insert(buf_.end(), p, p + n);
}

void ByteWriter::raw(const std::uint8_t* p, std::size_t n) { buf_.insert(buf_.end(), p, p + n); }

void ByteWriter::str(std::string_view s) {
  varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

std::uint8_t ByteReader::u8() {
  need(1);
  return *p_++;
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(p_[0] | (p_[1] << 8));
  p_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p_[i]) << (8 * i);
  p_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p_[i]) << (8 * i);
  p_ += 8;
  return v;
}

double ByteReader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t ByteReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    need(1);
    std::uint8_t b = *p_++;
    if (shift == 63 && (b & 0x7e) != 0) throw SerdeError("varint overflow");
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) throw SerdeError("varint too long");
  }
}

Bytes ByteReader::bytes() {
  std::uint64_t n = varint();
  need(static_cast<std::size_t>(n));
  Bytes out(p_, p_ + n);
  p_ += n;
  return out;
}

std::span<const std::uint8_t> ByteReader::bytes_view() {
  std::uint64_t n = varint();
  need(static_cast<std::size_t>(n));
  std::span<const std::uint8_t> out(p_, static_cast<std::size_t>(n));
  p_ += n;
  return out;
}

std::string ByteReader::str() {
  std::uint64_t n = varint();
  need(static_cast<std::size_t>(n));
  // memcpy instead of a reinterpret_cast<const char*> constructor call:
  // byte-to-char conversion without a pointer-type pun (see the atum_lint
  // reinterpret-cast rule).
  std::string out(static_cast<std::size_t>(n), '\0');
  std::memcpy(out.data(), p_, static_cast<std::size_t>(n));
  p_ += n;
  return out;
}

void ByteReader::raw(std::uint8_t* out, std::size_t n) {
  need(n);
  std::memcpy(out, p_, n);
  p_ += n;
}

}  // namespace atum
