// Byte-level serialization for wire messages.
//
// Every protocol message in Atum is serialized through ByteWriter/ByteReader
// so that (a) message sizes are realistic inputs to the bandwidth model and
// (b) Byzantine nodes can emit arbitrary byte strings that correct nodes
// must parse defensively. Readers throw SerdeError on malformed input;
// protocol code treats that as a faulty sender.
#pragma once

#include <concepts>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace atum {

using Bytes = std::vector<std::uint8_t>;

class SerdeError : public std::runtime_error {
 public:
  explicit SerdeError(const std::string& what) : std::runtime_error(what) {}
};

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  // LEB128 variable-length unsigned integer; compact for small counts.
  void varint(std::uint64_t v);
  void bytes(const Bytes& b);             // length-prefixed
  void bytes(const std::uint8_t* p, std::size_t n);  // length-prefixed range
  void raw(const std::uint8_t* p, std::size_t n);  // no length prefix
  void str(std::string_view s);           // length-prefixed

  template <typename T, typename Fn>
  void vec(const std::vector<T>& v, Fn&& write_elem) {
    varint(v.size());
    for (const T& e : v) write_elem(*this, e);
  }

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const Bytes& buf) : p_(buf.data()), end_(buf.data() + buf.size()) {}
  ByteReader(const std::uint8_t* p, std::size_t n) : p_(p), end_(p + n) {}
  // Any contiguous byte buffer (in particular net::Payload, which common/
  // cannot name without inverting the layer order).
  template <typename B>
    requires requires(const B& b) {
      { b.data() } -> std::convertible_to<const std::uint8_t*>;
      { b.size() } -> std::convertible_to<std::size_t>;
    }
  explicit ByteReader(const B& buf) : p_(buf.data()), end_(buf.data() + buf.size()) {}
  // A reader does not own its buffer, so constructing one from a temporary
  // (`ByteReader(payload.slice(...))`, `ByteReader(w.take())`) leaves p_
  // dangling the moment the statement ends. That exact bug shipped once in
  // pbft's NEW-VIEW parser; reject the whole class at compile time.
  explicit ByteReader(Bytes&&) = delete;
  template <typename B>
  explicit ByteReader(const B&&) = delete;

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::uint64_t varint();
  Bytes bytes();
  // Length-prefixed byte range returned as a view into the underlying
  // buffer — no copy. Valid for the buffer's lifetime; pair it with
  // net::Payload::slice() to hand the range up the stack refcounted.
  std::span<const std::uint8_t> bytes_view();
  std::string str();
  void raw(std::uint8_t* out, std::size_t n);

  template <typename T, typename Fn>
  std::vector<T> vec(Fn&& read_elem) {
    std::uint64_t n = varint();
    check(n <= remaining(), "vector length exceeds buffer");
    std::vector<T> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) out.push_back(read_elem(*this));
    return out;
  }

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  bool done() const { return p_ == end_; }
  void expect_done() const { check(done(), "trailing bytes after message"); }

 private:
  static void check(bool ok, const char* what) {
    if (!ok) throw SerdeError(what);
  }
  void need(std::size_t n) const { check(remaining() >= n, "truncated message"); }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

}  // namespace atum
