#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace atum {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_write_mu;  // serializes emission; composition stays lock-free

struct Context {
  bool active = false;
  std::uint64_t node = 0;
  std::int64_t sim_us = 0;
};
thread_local Context t_ctx;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel Logger::level() { return g_level.load(std::memory_order_relaxed); }
void Logger::set_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

void Logger::set_context(std::uint64_t node, std::int64_t sim_us) {
  t_ctx = Context{true, node, sim_us};
}
void Logger::clear_context() { t_ctx = Context{}; }

void Logger::write(LogLevel level, const std::string& msg) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  // Compose the whole line first, emit it in one write: concurrent
  // threads (the TSan stress suite) get whole-line interleaving only.
  std::string line = "[";
  line += level_name(level);
  line += "] ";
  if (t_ctx.active) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "[n=%llu t=%lldus] ",
                  static_cast<unsigned long long>(t_ctx.node),
                  static_cast<long long>(t_ctx.sim_us));
    line += buf;
  }
  line += msg;
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(g_write_mu);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace atum
