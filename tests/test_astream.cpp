// Tests for AStream: forest construction (f+1 parents, source adjacency,
// shortcuts), push-pull dissemination, digest verification via tier 1, and
// fail-over away from corrupt parents.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "apps/astream/astream.h"

namespace atum::astream {
namespace {

core::Params fast_params() {
  core::Params p;
  p.hc = 3;
  p.rwl = 4;
  p.gmax = 8;
  p.gmin = 4;
  p.round_duration = millis(20);
  p.heartbeat_period = seconds(10);
  return p;
}

struct AStreamFixture : ::testing::Test {
  std::unique_ptr<core::AtumSystem> sys;
  std::map<NodeId, std::unique_ptr<AStreamNode>> nodes;
  std::map<NodeId, std::vector<std::uint64_t>> delivered;

  void deploy(std::size_t n, StreamConfig cfg = {}) {
    sys = std::make_unique<core::AtumSystem>(fast_params(), net::NetworkConfig::datacenter(),
                                             616);
    std::vector<NodeId> ids;
    for (NodeId i = 0; i < n; ++i) {
      ids.push_back(i);
      sys->add_node(i);
    }
    sys->deploy(ids);
    for (NodeId i = 0; i < n; ++i) {
      nodes[i] = std::make_unique<AStreamNode>(*sys, i, cfg);
      nodes[i]->set_chunk_handler([this, i](std::uint64_t seq, const net::Payload&) {
        delivered[i].push_back(seq);
      });
    }
  }

  void join_all(NodeId source) {
    for (auto& [id, n] : nodes) n->join_stream(source);
    run_for(seconds(5));  // adoption messages settle
  }

  void run_for(DurationMicros d) { sys->simulator().run_until(sys->simulator().now() + d); }

  std::size_t nodes_with_chunk(std::uint64_t seq) {
    std::size_t count = 0;
    for (auto& [id, seqs] : delivered) {
      count += std::find(seqs.begin(), seqs.end(), seq) != seqs.end();
    }
    return count;
  }
};

TEST_F(AStreamFixture, ForestGivesEveryNonRootParents) {
  deploy(24);
  join_all(0);
  for (auto& [id, n] : nodes) {
    if (id == 0) {
      EXPECT_TRUE(n->parents().empty());
    } else {
      EXPECT_FALSE(n->parents().empty()) << "node " << id;
    }
  }
}

TEST_F(AStreamFixture, SourceNeighborsAdoptSourceDirectly) {
  deploy(24);
  join_all(0);
  const auto& src_group = sys->node(0).vgroup();
  for (NodeId m : src_group.members()) {
    if (m == 0) continue;
    ASSERT_EQ(nodes[m]->parents().size(), 1u) << "node " << m;
    EXPECT_EQ(nodes[m]->parents()[0], 0u);
  }
}

TEST_F(AStreamFixture, AdoptionRegistersChildren) {
  deploy(24);
  join_all(0);
  std::size_t total_children = 0;
  for (auto& [id, n] : nodes) total_children += n->child_count();
  EXPECT_GT(total_children, 0u);
  EXPECT_GT(nodes[0]->child_count(), 0u) << "the source must have children";
}

TEST_F(AStreamFixture, SingleChunkReachesEveryone) {
  deploy(24);
  join_all(0);
  nodes[0]->stream_chunk(Bytes(1000, 0xAB));
  run_for(seconds(60));
  EXPECT_EQ(nodes_with_chunk(1), 24u);
}

TEST_F(AStreamFixture, MultiChunkStreamDeliversInOrder) {
  deploy(18);
  join_all(0);
  for (int i = 0; i < 5; ++i) {
    nodes[0]->stream_chunk(Bytes(500, static_cast<std::uint8_t>(i)));
    run_for(seconds(10));
  }
  run_for(seconds(60));
  for (auto& [id, seqs] : delivered) {
    ASSERT_EQ(seqs.size(), 5u) << "node " << id;
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      EXPECT_EQ(seqs[i], i + 1) << "node " << id << " out of order";
    }
  }
}

TEST_F(AStreamFixture, ChunksVerifiedAgainstTierOneDigests) {
  deploy(18);
  join_all(0);
  Bytes payload(800, 0x17);
  nodes[0]->stream_chunk(payload);
  run_for(seconds(60));
  // Every node delivered exactly the source's bytes (handler gets verified
  // data only); spot-check one receiver's chunk count.
  EXPECT_EQ(nodes_with_chunk(1), 18u);
}

TEST_F(AStreamFixture, CorruptParentIsDetectedAndBypassed) {
  deploy(24);
  join_all(0);
  // Every node except the source serves corrupted chunks half the time:
  // corrupt ALL non-source nodes that are parents of node X... instead,
  // corrupt one specific node and verify its children still deliver.
  NodeId corruptor = kInvalidNode;
  for (auto& [id, n] : nodes) {
    if (id != 0 && n->child_count() > 0) {
      corruptor = id;
      break;
    }
  }
  if (corruptor == kInvalidNode) GTEST_SKIP() << "no interior node in this forest";
  nodes[corruptor]->set_corrupt_chunks(true);

  for (int i = 0; i < 3; ++i) {
    nodes[0]->stream_chunk(Bytes(600, static_cast<std::uint8_t>(0x20 + i)));
    run_for(seconds(20));
  }
  run_for(seconds(120));  // time for pull fail-overs
  // All correct nodes deliver all three chunks despite the corrupt parent.
  for (auto& [id, seqs] : delivered) {
    if (id == corruptor) continue;
    EXPECT_GE(seqs.size(), 3u) << "node " << id << " starved by corrupt parent";
  }
}

TEST_F(AStreamFixture, LateJoinerCatchesUpViaPulls) {
  deploy(18);
  join_all(0);
  nodes[0]->stream_chunk(Bytes(400, 1));
  run_for(seconds(30));
  // A node that missed the push (simulate by clearing its delivery log and
  // re-joining) still obtains chunk 2 via pull.
  nodes[0]->stream_chunk(Bytes(400, 2));
  run_for(seconds(60));
  EXPECT_EQ(nodes_with_chunk(2), 18u);
}

TEST_F(AStreamFixture, DistinctStreamsAreIsolated) {
  StreamConfig cfg_a;
  cfg_a.stream_id = 7;
  deploy(12, cfg_a);
  join_all(0);
  nodes[0]->stream_chunk(Bytes(100, 9));
  run_for(seconds(30));
  EXPECT_EQ(nodes_with_chunk(1), 12u);
}

// ---------------------------------------------------------------------------
// verified_ frame-pinning contract: chunks alias their arrival frames by
// default (zero-copy), and copy_out_threshold unpins small chunks for
// long-lived stores.
// ---------------------------------------------------------------------------

TEST_F(AStreamFixture, VerifiedChunksAliasArrivalFramesByDefault) {
  deploy(24);
  join_all(0);
  std::size_t aliased = 0, owned = 0;
  for (auto& [id, n] : nodes) {
    if (id == 0) continue;
    n->set_chunk_handler([&](std::uint64_t, const net::Payload& data) {
      // The delivered payload IS the stored chunk: with the default
      // threshold (0) it must still be a slice of the larger
      // kStreamChunk frame (stream_id + seq + length prefix + body).
      (data.frame_size() > data.size() ? aliased : owned) += 1;
    });
  }
  nodes[0]->stream_chunk(Bytes(600, 0x3d));
  run_for(seconds(30));
  EXPECT_GT(aliased, 0u);
  EXPECT_EQ(owned, 0u);
}

TEST_F(AStreamFixture, CopyOutThresholdUnpinsSmallChunks) {
  StreamConfig cfg;
  cfg.copy_out_threshold = 1 << 20;  // copy out everything below 1 MiB
  deploy(24, cfg);
  join_all(0);
  std::size_t aliased = 0, owned = 0;
  for (auto& [id, n] : nodes) {
    if (id == 0) continue;
    n->set_chunk_handler([&](std::uint64_t, const net::Payload& data) {
      (data.frame_size() > data.size() ? aliased : owned) += 1;
    });
  }
  nodes[0]->stream_chunk(Bytes(600, 0x3d));
  run_for(seconds(30));
  // Every stored chunk was copied out at store time: it owns its buffer
  // and pins no transport frame.
  EXPECT_EQ(aliased, 0u);
  EXPECT_GT(owned, 0u);
}

// ---------------------------------------------------------------------------
// Store windowing (ROADMAP open item: verified_ grew without bound)
// ---------------------------------------------------------------------------

TEST_F(AStreamFixture, StoreWindowBoundsStoresUnderUnboundedStream) {
  StreamConfig cfg;
  cfg.store_window = 8;
  deploy(18, cfg);
  join_all(0);
  constexpr std::uint64_t kChunks = 120;
  for (std::uint64_t i = 0; i < kChunks; ++i) {
    nodes[0]->stream_chunk(Bytes(400, static_cast<std::uint8_t>(i)));
    run_for(seconds(2));
  }
  run_for(seconds(60));
  for (auto& [id, n] : nodes) {
    // Everyone delivered the whole stream...
    ASSERT_EQ(delivered[id].size(), kChunks) << "node " << id;
    // ...but holds at most the trailing window of it (plus the handful a
    // node may buffer ahead of its own floor), not all 120 chunks.
    EXPECT_LE(n->store_size(), cfg.store_window + 4) << "node " << id;
    EXPECT_LE(n->digest_count(), cfg.store_window + 4) << "node " << id;
    EXPECT_GE(n->eviction_floor(), kChunks - cfg.store_window - 4) << "node " << id;
  }
}

TEST_F(AStreamFixture, UnboundedStoreKeepsEverythingByDefault) {
  deploy(18);
  join_all(0);
  for (std::uint64_t i = 0; i < 20; ++i) {
    nodes[0]->stream_chunk(Bytes(400, static_cast<std::uint8_t>(i)));
    run_for(seconds(2));
  }
  run_for(seconds(30));
  for (auto& [id, n] : nodes) {
    EXPECT_EQ(n->store_size(), 20u) << "node " << id;
    EXPECT_EQ(n->eviction_floor(), 0u) << "node " << id;
  }
}

}  // namespace
}  // namespace atum::astream
