// Tests for the PBFT engine: three-phase agreement, total order, silent and
// equivocating primaries (view changes), checkpoints, and state transfer.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/serde.h"
#include "crypto/keys.h"
#include "crypto/sha256.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "smr/pbft.h"

namespace atum::smr {
namespace {

Bytes op_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

struct AsyncGroup {
  sim::Simulator sim;
  net::SimNetwork net{sim, net::NetworkConfig::datacenter(), 4242};
  crypto::KeyStore keys{11};
  GroupConfig cfg;
  std::vector<std::unique_ptr<PbftSmr>> replicas;
  std::map<NodeId, std::vector<std::pair<NodeId, Bytes>>> decided;

  explicit AsyncGroup(std::size_t g, PbftOptions opt = {},
                      std::vector<std::pair<std::size_t, PbftFaultMode>> faults = {}) {
    for (NodeId n = 0; n < g; ++n) cfg.members.push_back(n);
    for (NodeId n = 0; n < g; ++n) {
      PbftFaultMode mode = PbftFaultMode::kCorrect;
      for (auto [idx, m] : faults) {
        if (idx == n) mode = m;
      }
      auto r = std::make_unique<PbftSmr>(net::Transport(net, n), cfg, keys, opt, mode);
      r->set_decide_handler([this, n](std::uint64_t, NodeId origin, const net::Payload& op) {
        decided[n].emplace_back(origin, op.to_bytes());
      });
      replicas.push_back(std::move(r));
    }
  }

  PbftSmr& at(std::size_t i) { return *replicas[i]; }
  void run_for(DurationMicros d) { sim.run_until(sim.now() + d); }
};

TEST(Pbft, HappyPathSingleOp) {
  AsyncGroup g(4);
  g.at(1).propose(op_bytes("hello"));
  g.run_for(seconds(1));
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_EQ(g.decided[n].size(), 1u) << "replica " << n;
    EXPECT_EQ(g.decided[n][0].first, 1u);
    EXPECT_EQ(g.decided[n][0].second, op_bytes("hello"));
  }
}

TEST(Pbft, SubSecondLatencyWithoutFaults) {
  // Async needs no lock-step rounds: decisions land in a few network RTTs.
  AsyncGroup g(4);
  TimeMicros decided_at = -1;
  g.at(0).set_decide_handler([&](std::uint64_t, NodeId, const net::Payload&) {
    if (decided_at < 0) decided_at = g.sim.now();
  });
  g.at(0).propose(op_bytes("fast"));
  g.run_for(seconds(1));
  ASSERT_GE(decided_at, 0);
  EXPECT_LT(decided_at, millis(100));
}

TEST(Pbft, ManyOpsSameTotalOrder) {
  AsyncGroup g(4);
  for (int i = 0; i < 20; ++i) {
    g.at(static_cast<std::size_t>(i % 4)).propose(op_bytes("op" + std::to_string(i)));
  }
  g.run_for(seconds(5));
  ASSERT_EQ(g.decided[0].size(), 20u);
  for (NodeId n = 1; n < 4; ++n) EXPECT_EQ(g.decided[n], g.decided[0]);
}

TEST(Pbft, ToleratesSilentBackup) {
  AsyncGroup g(4, {}, {{3, PbftFaultMode::kSilent}});
  g.at(0).propose(op_bytes("resilient"));
  g.run_for(seconds(2));
  for (NodeId n = 0; n < 3; ++n) {
    ASSERT_EQ(g.decided[n].size(), 1u) << "replica " << n;
  }
}

TEST(Pbft, ToleratesMaxSilentBackups) {
  // g=7 -> f=2; two silent backups.
  AsyncGroup g(7, {}, {{5, PbftFaultMode::kSilent}, {6, PbftFaultMode::kSilent}});
  for (int i = 0; i < 5; ++i) g.at(0).propose(op_bytes("op" + std::to_string(i)));
  g.run_for(seconds(5));
  for (NodeId n = 0; n < 5; ++n) {
    ASSERT_EQ(g.decided[n].size(), 5u) << "replica " << n;
    EXPECT_EQ(g.decided[n], g.decided[0]);
  }
}

TEST(Pbft, SilentPrimaryTriggersViewChange) {
  PbftOptions opt;
  opt.view_change_timeout = millis(500);
  AsyncGroup g(4, opt, {{0, PbftFaultMode::kSilentPrimary}});
  g.at(1).propose(op_bytes("survive-vc"));
  g.run_for(seconds(10));
  for (NodeId n = 1; n < 4; ++n) {
    ASSERT_EQ(g.decided[n].size(), 1u) << "replica " << n;
    EXPECT_EQ(g.decided[n][0].second, op_bytes("survive-vc"));
    EXPECT_GE(g.at(n).view(), 1u) << "view must have advanced past the dead primary";
  }
}

TEST(Pbft, ProgressContinuesInNewView) {
  PbftOptions opt;
  opt.view_change_timeout = millis(500);
  AsyncGroup g(4, opt, {{0, PbftFaultMode::kSilentPrimary}});
  g.at(1).propose(op_bytes("first"));
  g.run_for(seconds(10));
  ASSERT_EQ(g.decided[1].size(), 1u);
  // After the view change the new primary keeps ordering fresh ops.
  g.at(2).propose(op_bytes("second"));
  g.run_for(seconds(5));
  for (NodeId n = 1; n < 4; ++n) {
    ASSERT_EQ(g.decided[n].size(), 2u) << "replica " << n;
    EXPECT_EQ(g.decided[n][1].second, op_bytes("second"));
  }
}

TEST(Pbft, EquivocatingPrimaryCannotForkCorrectReplicas) {
  PbftOptions opt;
  opt.view_change_timeout = millis(500);
  AsyncGroup g(4, opt, {{0, PbftFaultMode::kEquivocatePrimary}});
  g.at(1).propose(op_bytes("victim"));
  g.run_for(seconds(15));
  // Whatever was decided, all correct replicas decided the same sequence,
  // and no correct replica delivered a corrupted copy of the victim op.
  for (NodeId n = 2; n < 4; ++n) EXPECT_EQ(g.decided[n], g.decided[1]);
  for (const auto& [origin, op] : g.decided[1]) {
    if (origin == 1) {
      EXPECT_EQ(op, op_bytes("victim"));
    }
  }
}

TEST(Pbft, EquivocatedOwnOpDeliveredAtMostOnce) {
  PbftOptions opt;
  opt.view_change_timeout = millis(500);
  AsyncGroup g(4, opt, {{0, PbftFaultMode::kEquivocatePrimary}});
  g.at(0).propose(op_bytes("double"));
  g.run_for(seconds(15));
  for (NodeId n = 1; n < 4; ++n) {
    int from0 = 0;
    for (const auto& [origin, op] : g.decided[n]) from0 += (origin == 0);
    EXPECT_LE(from0, 1) << "replica " << n << " delivered an equivocated op twice";
    EXPECT_EQ(g.decided[n], g.decided[1]);
  }
}

TEST(Pbft, CheckpointAdvancesStableSeq) {
  PbftOptions opt;
  opt.checkpoint_interval = 8;
  // One op per batch so the 20 ops produce 20 sequence numbers and the
  // checkpoint interval is crossed twice (batched, the burst collapses into
  // a couple of seqs and no checkpoint fires).
  opt.batch_max_ops = 1;
  AsyncGroup g(4, opt);
  for (int i = 0; i < 20; ++i) g.at(0).propose(op_bytes("op" + std::to_string(i)));
  g.run_for(seconds(10));
  ASSERT_EQ(g.decided[0].size(), 20u);
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_GE(g.at(n).stable_seq(), 16u) << "replica " << n << " did not garbage-collect";
  }
}

TEST(Pbft, LaggingReplicaCatchesUpViaStateTransfer) {
  PbftOptions opt;
  opt.checkpoint_interval = 4;
  opt.watermark_window = 16;
  opt.view_change_timeout = millis(500);
  AsyncGroup g(4, opt);

  g.net.isolate(3, true);
  for (int i = 0; i < 12; ++i) g.at(0).propose(op_bytes("op" + std::to_string(i)));
  g.run_for(seconds(10));
  EXPECT_EQ(g.decided[0].size(), 12u);
  EXPECT_TRUE(g.decided[3].empty());

  g.net.isolate(3, false);
  // More traffic produces checkpoint evidence that replica 3 lags behind.
  for (int i = 12; i < 24; ++i) g.at(0).propose(op_bytes("op" + std::to_string(i)));
  g.run_for(seconds(30));
  EXPECT_EQ(g.decided[0].size(), 24u);
  EXPECT_GE(g.decided[3].size(), 12u) << "replica 3 should have fetched missed state";
  // Prefix consistency: everything replica 3 delivered matches replica 0.
  for (std::size_t i = 0; i < g.decided[3].size(); ++i) {
    EXPECT_EQ(g.decided[3][i], g.decided[0][i]) << "divergence at " << i;
  }
}

TEST(Pbft, StateFetchFanOutSharesOneFrame) {
  // The head-fetch round asks 2f+1 peers with byte-identical requests; the
  // request must be frozen once and the sends share that buffer instead of
  // deep-copying the writer per peer. Intercept kPbftStateFetch at the
  // receivers (the typed handler replaces the replica's own, so fetches are
  // recorded and swallowed — the fan-out itself is driven by checkpoint
  // evidence, which still flows) and require that byte-identical requests
  // landing at different peers alias one frame.
  PbftOptions opt;
  opt.checkpoint_interval = 4;
  opt.watermark_window = 16;
  opt.view_change_timeout = millis(500);
  AsyncGroup g(4, opt);

  // Per request content — identified by the decoded (from_seq, anchor)
  // pair; the instance tag is constant — the distinct buffer addresses seen
  // and the number of deliveries. Head-fetch requests are 24 bytes (tag,
  // from, anchor) with anchor != 0; single-peer fetches (anchor == 0) are
  // skipped — they carry one frozen frame by construction and prove
  // nothing about fan-out.
  struct Seen {
    std::set<const std::uint8_t*> buffers;
    std::size_t deliveries = 0;
  };
  std::map<std::pair<std::uint64_t, std::uint64_t>, Seen> head_fetches;
  for (NodeId n = 0; n < 3; ++n) {
    g.net.attach(n, net::MsgType::kPbftStateFetch, [&](const net::Message& msg) {
      if (msg.payload.size() != 24) return;
      ByteReader r(msg.payload);
      r.u64();  // instance tag
      std::uint64_t from_seq = r.u64();
      std::uint64_t anchor = r.u64();
      if (anchor != 0) {
        Seen& s = head_fetches[{from_seq, anchor}];
        s.buffers.insert(msg.payload.data());
        ++s.deliveries;
      }
    });
  }

  g.net.isolate(3, true);
  for (int i = 0; i < 12; ++i) g.at(0).propose(op_bytes("op" + std::to_string(i)));
  g.run_for(seconds(10));
  g.net.isolate(3, false);
  // More traffic produces the checkpoint evidence that tells replica 3 it
  // is behind; it then fans the pinned-range head fetch out to 2f+1 peers.
  for (int i = 12; i < 24; ++i) g.at(0).propose(op_bytes("op" + std::to_string(i)));
  g.run_for(seconds(30));

  ASSERT_FALSE(head_fetches.empty()) << "catch-up should have fanned a head fetch out";
  for (const auto& [content, seen] : head_fetches) {
    ASSERT_GE(seen.deliveries, 3u) << "head fetch should reach 2f+1 = 3 peers";
    // Every peer of one round must alias the round's single frozen frame,
    // so across R rounds there are 3R deliveries but at most R buffers.
    // Per-send deep copies would make the two counts equal.
    EXPECT_LT(seen.buffers.size(), seen.deliveries)
        << "a head-fetch request was deep-copied per peer instead of "
        << "sharing one frozen frame across the fan-out";
  }
}

TEST(Pbft, PrimaryRotatesAcrossViews) {
  AsyncGroup g(4);
  EXPECT_EQ(g.at(0).primary_of(0), 0u);
  EXPECT_EQ(g.at(0).primary_of(1), 1u);
  EXPECT_EQ(g.at(0).primary_of(5), 1u);
  EXPECT_TRUE(g.at(0).is_primary());
  EXPECT_FALSE(g.at(1).is_primary());
}

TEST(Pbft, QuorumArithmetic) {
  AsyncGroup g4(4), g7(7), g10(10);
  EXPECT_EQ(g4.at(0).max_faults(), 1u);
  EXPECT_EQ(g4.at(0).quorum(), 3u);
  EXPECT_EQ(g7.at(0).max_faults(), 2u);
  EXPECT_EQ(g7.at(0).quorum(), 5u);
  EXPECT_EQ(g10.at(0).max_faults(), 3u);
  EXPECT_EQ(g10.at(0).quorum(), 7u);
}

TEST(Pbft, NonMemberCannotInjectOps) {
  AsyncGroup g(4);
  ByteWriter w;
  w.u64(g.at(0).instance_tag());  // correct envelope: the member check must still hold
  w.u64(99);                      // claimed origin
  w.u64(1);
  w.bytes(op_bytes("evil"));
  g.net.send(net::Message{99, 0, net::MsgType::kPbftRequest, w.take()});
  g.run_for(seconds(2));
  EXPECT_TRUE(g.decided[0].empty());
}

TEST(Pbft, SpoofedOriginRejected) {
  AsyncGroup g(4);
  // Member 2 claims an op originated at member 1.
  ByteWriter w;
  w.u64(g.at(0).instance_tag());  // correct envelope: the origin check must still hold
  w.u64(1);
  w.u64(1);
  w.bytes(op_bytes("forged"));
  g.net.send(net::Message{2, 0, net::MsgType::kPbftRequest, w.take()});
  g.run_for(seconds(2));
  EXPECT_TRUE(g.decided[0].empty());
}

TEST(Pbft, MalformedMessagesIgnored) {
  AsyncGroup g(4);
  for (auto type : {net::MsgType::kPbftRequest, net::MsgType::kPbftPrePrepare,
                    net::MsgType::kPbftPrepare, net::MsgType::kPbftCommit,
                    net::MsgType::kPbftViewChange, net::MsgType::kPbftNewView}) {
    g.net.send(net::Message{1, 0, type, Bytes{0x01}});
  }
  g.at(0).propose(op_bytes("still-works"));
  g.run_for(seconds(2));
  EXPECT_EQ(g.decided[0].size(), 1u);
}

TEST(Pbft, EmptyAndLargeOps) {
  AsyncGroup g(4);
  g.at(0).propose({});
  g.at(1).propose(Bytes(20'000, 0xCD));
  g.run_for(seconds(2));
  ASSERT_EQ(g.decided[2].size(), 2u);
}

TEST(Pbft, WanLatenciesStillDecide) {
  sim::Simulator sim;
  net::SimNetwork net(sim, net::NetworkConfig::wide_area(), 5);
  crypto::KeyStore keys(3);
  GroupConfig cfg;
  for (NodeId n = 0; n < 7; ++n) cfg.members.push_back(n);
  PbftOptions opt;
  opt.view_change_timeout = seconds(5);  // above max WAN RTT
  std::map<NodeId, std::vector<Bytes>> decided;
  std::vector<std::unique_ptr<PbftSmr>> replicas;
  for (NodeId n = 0; n < 7; ++n) {
    auto r = std::make_unique<PbftSmr>(net::Transport(net, n), cfg, keys, opt);
    r->set_decide_handler(
        [&decided, n](std::uint64_t, NodeId, const net::Payload& op) { decided[n].push_back(op.to_bytes()); });
    replicas.push_back(std::move(r));
  }
  replicas[3]->propose(op_bytes("around-the-world"));
  sim.run_until(seconds(10));
  for (NodeId n = 0; n < 7; ++n) ASSERT_EQ(decided[n].size(), 1u) << "replica " << n;
}

// Property sweep: agreement for each group size with max silent faults.
class PbftSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PbftSweep, AgreementUnderMaxFaults) {
  std::size_t g = GetParam();
  std::size_t f = async_max_faults(g);
  std::vector<std::pair<std::size_t, PbftFaultMode>> faults;
  // Fault the tail replicas but never the initial primary (covered by the
  // dedicated view-change tests; this sweep checks agreement).
  for (std::size_t i = 0; i < f; ++i) faults.emplace_back(g - 1 - i, PbftFaultMode::kSilent);
  AsyncGroup grp(g, {}, faults);
  std::size_t correct = g - f;
  for (std::size_t i = 0; i < correct; ++i) grp.at(i).propose(op_bytes("op" + std::to_string(i)));
  grp.run_for(seconds(10));
  ASSERT_EQ(grp.decided[0].size(), correct) << "g=" << g;
  for (NodeId n = 1; n < correct; ++n) {
    EXPECT_EQ(grp.decided[n], grp.decided[0]) << "replica " << n << " diverged (g=" << g << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, PbftSweep, ::testing::Values(4, 5, 6, 7, 10, 13));

// ---------------------------------------------------------------------------
// Zero-copy decide path: the log retains ops as net::Payload slices of the
// pre-prepare frame, and the decide callback hands out the same slice.
// ---------------------------------------------------------------------------

TEST(Pbft, DecidedOpAliasesThePrePrepareFrame) {
  AsyncGroup g(4);
  std::vector<net::Payload> decided_ops;
  // Replica 2 is a backup: its copy of the op arrives inside the primary's
  // pre-prepare frame.
  g.at(2).set_decide_handler([&](std::uint64_t, NodeId, const net::Payload& op) {
    decided_ops.push_back(op);
  });
  g.at(0).propose(op_bytes("zero-copy"));  // node 0 is primary of view 0
  g.run_for(seconds(1));

  ASSERT_EQ(decided_ops.size(), 1u);
  const net::Payload& op = decided_ops[0];
  EXPECT_EQ(op, op_bytes("zero-copy"));
  // Slice, not copy: the payload still points into the larger pre-prepare
  // frame (view + seq + digest + id + op)...
  EXPECT_GT(op.frame_size(), op.size());
  // ...and that frame is still shared with the replicas' logs and
  // exec histories — nobody materialized a private copy.
  EXPECT_GT(op.use_count(), 1);
}

TEST(Pbft, ProposerDecidesItsOwnFrozenBuffer) {
  AsyncGroup g(4);
  std::vector<net::Payload> decided_ops;
  // Replica 0 is the primary AND the op's origin: its logged op is the
  // buffer frozen in propose(), not a frame slice.
  g.at(0).set_decide_handler([&](std::uint64_t, NodeId, const net::Payload& op) {
    decided_ops.push_back(op);
  });
  g.at(0).propose(op_bytes("local"));
  g.run_for(seconds(1));
  ASSERT_EQ(decided_ops.size(), 1u);
  EXPECT_EQ(decided_ops[0].frame_size(), decided_ops[0].size());
  EXPECT_GT(decided_ops[0].use_count(), 1);  // shared with log/exec_history
}

// Regression (found by the sanitizer/tidy sweep): a Byzantine member's
// STATE-REPLY declaring an astronomical entry count used to reach
// entries.reserve(count) before any bounds check — std::length_error /
// bad_alloc is not a SerdeError, so it escaped on_message's net and killed
// the replica. The count must be validated against the bytes actually
// present and the garbage dropped like any other malformed frame.
TEST(Pbft, ByzantineStateReplyWithHugeCountIsDropped) {
  AsyncGroup g(4);

  // Replica 3 forges a state reply to replica 0 with the group's real
  // instance tag (so the frame passes the envelope check) and a claimed
  // count of 2^60 entries in a ~20-byte body.
  ByteWriter w;
  w.u64(g.at(0).instance_tag());
  w.u8(0);   // kind: head-range reply
  w.u64(0);  // from_seq == victim's next_exec_
  w.varint(std::uint64_t{1} << 60);
  g.net.send(net::Message{3, 0, net::MsgType::kPbftStateReply, net::Payload(w.take())});
  g.run_for(seconds(1));

  // The victim survived and the group still decides.
  g.at(1).propose(op_bytes("alive"));
  g.run_for(seconds(2));
  ASSERT_EQ(g.decided[0].size(), 1u);
  EXPECT_EQ(g.decided[0][0].second, op_bytes("alive"));
}

}  // namespace
}  // namespace atum::smr
