// Fault-injection tests: lossy links, partitions and partition healing,
// against both SMR engines and the full middleware. Safety must hold
// unconditionally; liveness resumes when the network does (§2).
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/atum.h"
#include "crypto/keys.h"
#include "smr/dolev_strong.h"
#include "smr/pbft.h"

namespace atum {
namespace {

Bytes op_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

// ---------------------------------------------------------------------------
// PBFT under network faults
// ---------------------------------------------------------------------------

struct LossyPbft : ::testing::Test {
  sim::Simulator sim;
  net::NetworkConfig cfg = net::NetworkConfig::datacenter();
  std::unique_ptr<net::SimNetwork> net;
  crypto::KeyStore keys{21};
  smr::GroupConfig group;
  std::vector<std::unique_ptr<smr::PbftSmr>> replicas;
  std::map<NodeId, std::vector<Bytes>> decided;

  void make(std::size_t g, double drop) {
    cfg.drop_probability = drop;
    net = std::make_unique<net::SimNetwork>(sim, cfg, 777);
    for (NodeId n = 0; n < g; ++n) group.members.push_back(n);
    smr::PbftOptions opt;
    opt.view_change_timeout = millis(500);
    for (NodeId n = 0; n < g; ++n) {
      auto r = std::make_unique<smr::PbftSmr>(net::Transport(*net, n), group, keys, opt);
      r->set_decide_handler([this, n](std::uint64_t, NodeId, const net::Payload& op) {
        decided[n].push_back(op.to_bytes());
      });
      replicas.push_back(std::move(r));
    }
  }
};

TEST_F(LossyPbft, SafetyHoldsUnderHeavyLoss) {
  // 30% drop: progress may stall, but no two replicas may ever disagree on
  // a decided prefix.
  make(4, 0.30);
  for (int i = 0; i < 10; ++i) replicas[0]->propose(op_bytes("op" + std::to_string(i)));
  sim.run_until(seconds(120));
  for (NodeId n = 1; n < 4; ++n) {
    std::size_t common = std::min(decided[0].size(), decided[n].size());
    for (std::size_t i = 0; i < common; ++i) {
      EXPECT_EQ(decided[n][i], decided[0][i]) << "fork at " << i;
    }
  }
}

TEST_F(LossyPbft, ModerateLossStillLives) {
  // The request/agreement traffic is redundant enough to survive 5% drop
  // within the retry horizon (view changes re-propose).
  make(4, 0.05);
  replicas[1]->propose(op_bytes("lossy"));
  sim.run_until(seconds(120));
  std::size_t got = 0;
  for (auto& [n, ops] : decided) got += !ops.empty();
  EXPECT_GE(got, 3u);
}

TEST_F(LossyPbft, PartitionedMinorityStalls) {
  make(4, 0.0);
  // Cut two backups off: quorum (3 of 4) is unreachable -> no decisions.
  net->isolate(2, true);
  net->isolate(3, true);
  replicas[0]->propose(op_bytes("stuck"));
  sim.run_until(seconds(30));
  EXPECT_TRUE(decided[0].empty());
  EXPECT_TRUE(decided[1].empty());
}

TEST_F(LossyPbft, HealingThePartitionResumesLiveness) {
  make(4, 0.0);
  net->isolate(2, true);
  net->isolate(3, true);
  replicas[0]->propose(op_bytes("deferred"));
  sim.run_until(seconds(30));
  ASSERT_TRUE(decided[0].empty());
  net->isolate(2, false);
  net->isolate(3, false);
  sim.run_until(sim.now() + seconds(120));
  // After healing, the pending request is ordered at a quorum (a replica
  // that was partitioned when the request was issued may lag until the
  // next checkpoint-driven state transfer); nobody decides anything else.
  std::size_t decided_count = 0;
  for (NodeId n = 0; n < 4; ++n) {
    if (!decided[n].empty()) {
      ++decided_count;
      EXPECT_EQ(decided[n][0], op_bytes("deferred")) << "replica " << n;
      EXPECT_EQ(decided[n].size(), 1u);
    }
  }
  EXPECT_GE(decided_count, 3u) << "a quorum must order the request after healing";
}

// ---------------------------------------------------------------------------
// Dolev-Strong under faults
// ---------------------------------------------------------------------------

TEST(LossyDolevStrong, SafetyUnderLoss) {
  sim::Simulator sim;
  auto cfg = net::NetworkConfig::datacenter();
  cfg.drop_probability = 0.2;
  net::SimNetwork net(sim, cfg, 31);
  crypto::KeyStore keys(5);
  smr::GroupConfig group;
  for (NodeId n = 0; n < 5; ++n) group.members.push_back(n);
  smr::DolevStrongOptions opt;
  opt.round_duration = millis(20);
  std::map<NodeId, std::vector<std::pair<NodeId, Bytes>>> decided;
  std::vector<std::unique_ptr<smr::DolevStrongSmr>> rs;
  for (NodeId n = 0; n < 5; ++n) {
    auto r = std::make_unique<smr::DolevStrongSmr>(net::Transport(net, n), group, keys, opt);
    r->set_decide_handler([&decided, n](std::uint64_t, NodeId o, const net::Payload& op) {
      decided[n].emplace_back(o, op.to_bytes());
    });
    rs.push_back(std::move(r));
  }
  for (int i = 0; i < 5; ++i) rs[static_cast<std::size_t>(i)]->propose(op_bytes("x"));
  sim.run_until(seconds(5));
  // Message loss violates the synchrony assumption DS relies on for
  // *agreement on the full set*; what must never happen is two replicas
  // deciding DIFFERENT values for the same origin.
  for (NodeId a = 0; a < 5; ++a) {
    for (NodeId b = a + 1; b < 5; ++b) {
      for (const auto& [oa, va] : decided[a]) {
        for (const auto& [ob, vb] : decided[b]) {
          if (oa == ob) {
            EXPECT_EQ(va, vb) << "value fork for origin " << oa;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Full middleware under partitions
// ---------------------------------------------------------------------------

struct PartitionedAtum : ::testing::Test {
  std::unique_ptr<core::AtumSystem> sys;
  std::map<NodeId, int> got;

  void deploy(std::size_t n) {
    core::Params p;
    p.hc = 3;
    p.rwl = 4;
    p.gmax = 8;
    p.gmin = 4;
    p.round_duration = millis(20);
    p.heartbeat_period = seconds(60);  // no eviction interference
    sys = std::make_unique<core::AtumSystem>(p, net::NetworkConfig::datacenter(), 888);
    std::vector<NodeId> ids;
    for (NodeId i = 0; i < n; ++i) {
      ids.push_back(i);
      sys->add_node(i).set_deliver([this, i](NodeId, const net::Payload&) { ++got[i]; });
    }
    sys->deploy(ids);
  }
  void run_for(DurationMicros d) { sys->simulator().run_until(sys->simulator().now() + d); }
};

TEST_F(PartitionedAtum, IsolatedNodeMissesBroadcastOthersDeliver) {
  deploy(18);
  sys->network().isolate(9, true);
  sys->node(0).broadcast(Bytes{1});
  run_for(seconds(60));
  EXPECT_EQ(got[9], 0);
  int reached = 0;
  for (auto& [n, c] : got) reached += (c == 1);
  EXPECT_EQ(reached, 17);
}

TEST_F(PartitionedAtum, LossyOverlayStillDeliversEventually) {
  deploy(18);
  sys->network().set_drop_probability(0.02);
  sys->node(2).broadcast(Bytes{7});
  run_for(seconds(120));
  int reached = 0;
  for (auto& [n, c] : got) reached += (c >= 1);
  // Group-message redundancy (every member sends to every member) rides
  // over rare drops.
  EXPECT_GE(reached, 17);
}

TEST_F(PartitionedAtum, BrokenLinkInsideVgroupToleratedAsFault) {
  deploy(12);
  auto groups = sys->group_map();
  auto& members = groups.begin()->second;
  ASSERT_GE(members.size(), 4u);
  // One broken pairwise link inside a vgroup acts like <= 1 fault.
  sys->network().block_link(members[0], members[1], true);
  sys->node(members[2]).broadcast(Bytes{9});
  run_for(seconds(60));
  int reached = 0;
  for (auto& [n, c] : got) reached += (c == 1);
  EXPECT_EQ(reached, 12);
}

}  // namespace
}  // namespace atum
