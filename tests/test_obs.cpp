// Observability layer tests (ISSUE 9): registry cell semantics, label
// sorting, log-linear histogram bucket edges, sample determinism, trace
// ring bounds under a 100k-event flood, key sampling, and the Chrome
// trace-event exporter's structure.
#include <gtest/gtest.h>

#include <string>

#include "obs/registry.h"
#include "obs/trace.h"

using namespace atum;
using namespace atum::obs;

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(RegistryTest, CountersGaugesAndProbes) {
  Registry reg;
  Counter& c = reg.counter("c");
  c.inc();
  c.inc(41);
  EXPECT_EQ(reg.value("c"), 42u);

  Gauge& g = reg.gauge("g");
  g.set(7);
  g.add(-3);
  EXPECT_EQ(reg.value("g"), 4u);

  std::uint64_t backing = 0;
  reg.probe("p", {}, [&backing] { return backing; });
  backing = 99;
  EXPECT_EQ(reg.value("p"), 99u);  // polled at read time, not registration

  EXPECT_EQ(reg.value("absent"), 0u);
  EXPECT_EQ(reg.cell_count(), 3u);
}

TEST(RegistryTest, SameNameSameCellAndLabelsDistinguish) {
  Registry reg;
  Counter& a = reg.counter("hits", {{"class", "gossip"}});
  Counter& b = reg.counter("hits", {{"class", "walk"}});
  Counter& a2 = reg.counter("hits", {{"class", "gossip"}});
  EXPECT_EQ(&a, &a2);  // shared cell: system-wide totals across engines
  EXPECT_NE(&a, &b);
  a.inc();
  a.inc();
  b.inc();
  EXPECT_EQ(reg.value("hits", {{"class", "gossip"}}), 2u);
  EXPECT_EQ(reg.value("hits", {{"class", "walk"}}), 1u);
}

TEST(RegistryTest, LabelOrderIsNormalized) {
  Registry reg;
  Counter& a = reg.counter("x", {{"a", "1"}, {"b", "2"}});
  Counter& b = reg.counter("x", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(reg.value("x", {{"b", "2"}, {"a", "1"}}), 1u);
}

TEST(RegistryTest, SampleIsSortedAndDeterministic) {
  // Register in scrambled order; the sample must come out sorted by
  // (name, labels) with the caller's sim-time stamp.
  Registry reg;
  reg.counter("zeta").inc(3);
  reg.gauge("alpha").set(-5);
  reg.counter("mid", {{"k", "2"}}).inc();
  reg.counter("mid", {{"k", "10"}}).inc(2);
  Sample s = reg.sample(123456);
  EXPECT_EQ(s.at, 123456);
  ASSERT_EQ(s.cells.size(), 4u);
  EXPECT_EQ(s.cells[0].name, "alpha");
  EXPECT_EQ(s.cells[0].value, -5);
  EXPECT_EQ(s.cells[1].name, "mid");  // "10" < "2" lexicographically
  EXPECT_EQ(s.cells[1].labels, (Labels{{"k", "10"}}));
  EXPECT_EQ(s.cells[2].labels, (Labels{{"k", "2"}}));
  EXPECT_EQ(s.cells[3].name, "zeta");

  Sample again = reg.sample(123456);
  ASSERT_EQ(again.cells.size(), s.cells.size());
  for (std::size_t i = 0; i < s.cells.size(); ++i) {
    EXPECT_EQ(again.cells[i].name, s.cells[i].name);
    EXPECT_EQ(again.cells[i].value, s.cells[i].value);
  }
}

// ---------------------------------------------------------------------------
// Histogram bucket math
// ---------------------------------------------------------------------------

TEST(HistogramTest, SmallValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < 8; ++v) {
    // 0..3 are the singleton buckets; 4..7 sit in the first octave whose
    // sub-bucket width is 1, so they are exact too.
    EXPECT_EQ(Histogram::bucket_lower_bound(Histogram::bucket_index(v)), v) << v;
  }
}

TEST(HistogramTest, BucketEdgesAreExactLowerBounds) {
  // Every bucket's lower bound maps back to that bucket, and the value
  // just below it maps to the previous bucket.
  for (std::size_t idx = 1; idx < Histogram::kBucketCount; ++idx) {
    const std::uint64_t lo = Histogram::bucket_lower_bound(idx);
    EXPECT_EQ(Histogram::bucket_index(lo), idx) << "lower bound of " << idx;
    EXPECT_EQ(Histogram::bucket_index(lo - 1), idx - 1) << "below " << idx;
  }
  EXPECT_EQ(Histogram::bucket_index(~0ULL), Histogram::kBucketCount - 1);
}

TEST(HistogramTest, OctavesSplitIntoFourLinearSubBuckets) {
  // Octave [8,16): widths of 2 -> buckets at 8, 10, 12, 14.
  EXPECT_EQ(Histogram::bucket_index(8), Histogram::bucket_index(9));
  EXPECT_NE(Histogram::bucket_index(9), Histogram::bucket_index(10));
  EXPECT_EQ(Histogram::bucket_lower_bound(Histogram::bucket_index(11)), 10u);
  EXPECT_EQ(Histogram::bucket_lower_bound(Histogram::bucket_index(15)), 14u);
}

TEST(HistogramTest, RecordAccumulatesCountSumAndBuckets) {
  Registry reg;
  Histogram& h = reg.histogram("lat");
  for (std::uint64_t v : {0ULL, 1ULL, 1ULL, 9ULL, 1000ULL}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1011u);
  EXPECT_EQ(h.bucket(Histogram::bucket_index(1)), 2u);

  Sample s = reg.sample(0);
  ASSERT_EQ(s.cells.size(), 1u);
  EXPECT_EQ(s.cells[0].kind, CellKind::kHistogram);
  EXPECT_EQ(s.cells[0].value, 5);
  EXPECT_EQ(s.cells[0].sum, 1011u);
  ASSERT_EQ(s.cells[0].buckets.size(), 4u);  // 0, 1, [8,10), [896,1024)
  EXPECT_EQ(s.cells[0].buckets[0], (std::pair<std::uint64_t, std::uint64_t>{0, 1}));
  EXPECT_EQ(s.cells[0].buckets[1], (std::pair<std::uint64_t, std::uint64_t>{1, 2}));
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.record(1, 0, TracePoint::kSend, 42);
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_EQ(t.retained(), 0u);
  EXPECT_FALSE(t.keeps(42));
}

TEST(TracerTest, RingBoundsHoldUnderFlood) {
  // 100k events across 4 nodes with 256-slot rings: recorded counts them
  // all, retained stays at 4 * 256, and the survivors are the newest.
  Tracer t;
  t.enable(/*ring_capacity=*/256);
  constexpr std::uint64_t kEvents = 100'000;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    t.record(static_cast<std::int64_t>(i), static_cast<NodeId>(i % 4),
             TracePoint::kDeliver, i, i);
  }
  EXPECT_EQ(t.recorded(), kEvents);
  EXPECT_EQ(t.retained(), 4u * 256u);
  auto events = t.snapshot();
  ASSERT_EQ(events.size(), 4u * 256u);
  // Sorted by (at, seq) and all from the flood's tail.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].at, events[i].at);
  }
  EXPECT_GE(static_cast<std::uint64_t>(events.front().at), kEvents - 4 * 256);
}

TEST(TracerTest, KeySamplingDropsNonMultiples) {
  Tracer t;
  t.enable(64, /*key_sample=*/4);
  EXPECT_TRUE(t.keeps(8));
  EXPECT_FALSE(t.keeps(9));
  for (std::uint64_t k = 0; k < 100; ++k) t.record(1, 0, TracePoint::kSend, k);
  EXPECT_EQ(t.recorded(), 25u);  // keys 0,4,...,96
}

TEST(TracerTest, ChromeJsonHasSpansInstantsAndSummary) {
  Tracer t;
  t.enable(64);
  // One broadcast: sent on node 1, relayed by node 1 (fan-out 5), vouched
  // and delivered on node 2.
  const std::uint64_t key = 0xabcdef12345678ULL;
  t.record(10, 1, TracePoint::kSend, key, 1);
  t.record(20, 1, TracePoint::kRelay, key, 5, 2);
  t.record(30, 2, TracePoint::kVouch, key, 3);
  t.record(31, 2, TracePoint::kDeliver, key, 1);
  std::string json = t.to_chrome_json();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // per-(key,node) span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant events
  EXPECT_NE(json.find("\"name\":\"send\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"deliver\""), std::string::npos);
  EXPECT_NE(json.find("\"atum_summary\""), std::string::npos);
  EXPECT_NE(json.find("\"relay_fanout\""), std::string::npos);
  EXPECT_NE(json.find("\"hop_count\""), std::string::npos);
  // Deterministic: same events => same bytes.
  EXPECT_EQ(json, t.to_chrome_json());
}

TEST(TracerTest, TracePointNamesAreStable) {
  EXPECT_STREQ(trace_point_name(TracePoint::kSend), "send");
  EXPECT_STREQ(trace_point_name(TracePoint::kCoalesce), "coalesce");
  EXPECT_STREQ(trace_point_name(TracePoint::kRelay), "relay");
  EXPECT_STREQ(trace_point_name(TracePoint::kVouch), "vouch");
  EXPECT_STREQ(trace_point_name(TracePoint::kDeliver), "deliver");
  EXPECT_STREQ(trace_point_name(TracePoint::kPropose), "propose");
  EXPECT_STREQ(trace_point_name(TracePoint::kPrePrepare), "pre_prepare");
  EXPECT_STREQ(trace_point_name(TracePoint::kPrepare), "prepare");
  EXPECT_STREQ(trace_point_name(TracePoint::kCommit), "commit");
  EXPECT_STREQ(trace_point_name(TracePoint::kDecide), "decide");
}
