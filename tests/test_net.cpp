// Tests for the simulated network: delivery, latency/bandwidth modelling,
// drops, partitions, typed routing, and the WAN region matrix.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "net/network.h"
#include "sim/simulator.h"

namespace atum::net {
namespace {

struct NetFixture : ::testing::Test {
  sim::Simulator sim;
  NetworkConfig cfg = NetworkConfig::datacenter();

  std::unique_ptr<SimNetwork> make(NetworkConfig c) {
    return std::make_unique<SimNetwork>(sim, c, 1234);
  }
};

TEST_F(NetFixture, DeliversToAttachedHandler) {
  auto net = make(cfg);
  std::vector<net::Payload> got;
  net->attach(2, [&](const Message& m) { got.push_back(m.payload); });
  net->send(Message{1, 2, MsgType::kAppData, Bytes{42}});
  sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], Bytes{42});
}

TEST_F(NetFixture, DeliveryTakesLatency) {
  cfg.jitter_mean = 0;
  auto net = make(cfg);
  TimeMicros arrival = -1;
  net->attach(2, [&](const Message&) { arrival = sim.now(); });
  net->send(Message{1, 2, MsgType::kAppData, {}});
  sim.run();
  EXPECT_GE(arrival, cfg.base_latency);
}

TEST_F(NetFixture, UnattachedTargetCountsBlocked) {
  auto net = make(cfg);
  net->send(Message{1, 99, MsgType::kAppData, {}});
  sim.run();
  EXPECT_EQ(net->stats().messages_blocked, 1u);
  EXPECT_EQ(net->stats().messages_delivered, 0u);
}

TEST_F(NetFixture, DropProbabilityOneDropsEverything) {
  cfg.drop_probability = 1.0;
  auto net = make(cfg);
  int got = 0;
  net->attach(2, [&](const Message&) { ++got; });
  for (int i = 0; i < 20; ++i) net->send(Message{1, 2, MsgType::kAppData, {}});
  sim.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net->stats().messages_dropped, 20u);
}

TEST_F(NetFixture, DropProbabilityHalfDropsAboutHalf) {
  cfg.drop_probability = 0.5;
  auto net = make(cfg);
  int got = 0;
  net->attach(2, [&](const Message&) { ++got; });
  for (int i = 0; i < 2000; ++i) net->send(Message{1, 2, MsgType::kAppData, {}});
  sim.run();
  EXPECT_NEAR(got, 1000, 100);
}

TEST_F(NetFixture, IsolationBlocksBothDirections) {
  auto net = make(cfg);
  int got1 = 0, got2 = 0;
  net->attach(1, [&](const Message&) { ++got1; });
  net->attach(2, [&](const Message&) { ++got2; });
  net->isolate(2, true);
  net->send(Message{1, 2, MsgType::kAppData, {}});
  net->send(Message{2, 1, MsgType::kAppData, {}});
  sim.run();
  EXPECT_EQ(got1, 0);
  EXPECT_EQ(got2, 0);
  net->isolate(2, false);
  net->send(Message{1, 2, MsgType::kAppData, {}});
  sim.run();
  EXPECT_EQ(got2, 1);
}

TEST_F(NetFixture, LinkBlockIsBidirectionalAndReversible) {
  auto net = make(cfg);
  int got = 0;
  net->attach(1, [&](const Message&) { ++got; });
  net->attach(2, [&](const Message&) { ++got; });
  net->block_link(1, 2, true);
  net->send(Message{1, 2, MsgType::kAppData, {}});
  net->send(Message{2, 1, MsgType::kAppData, {}});
  sim.run();
  EXPECT_EQ(got, 0);
  net->block_link(1, 2, false);
  net->send(Message{1, 2, MsgType::kAppData, {}});
  sim.run();
  EXPECT_EQ(got, 1);
}

TEST_F(NetFixture, PartitionAppliedAtDeliveryTime) {
  // A message in flight when the partition forms is lost (models TCP reset).
  auto net = make(cfg);
  int got = 0;
  net->attach(2, [&](const Message&) { ++got; });
  net->send(Message{1, 2, MsgType::kAppData, {}});
  net->isolate(2, true);  // before the event fires
  sim.run();
  EXPECT_EQ(got, 0);
}

TEST_F(NetFixture, BandwidthSerializesLargeTransfers) {
  cfg.jitter_mean = 0;
  cfg.egress_bytes_per_sec = 1e6;  // 1 MB/s
  cfg.ingress_bytes_per_sec = 1e6;
  auto net = make(cfg);
  TimeMicros arrival = -1;
  net->attach(2, [&](const Message&) { arrival = sim.now(); });
  net->send(Message{1, 2, MsgType::kAppData, Bytes(1'000'000, 0)});  // 1 MB
  sim.run();
  // ~1 s egress + ~1 s ingress serialization at 1 MB/s.
  EXPECT_GE(arrival, 2 * kMicrosPerSecond);
  EXPECT_LE(arrival, 2 * kMicrosPerSecond + millis(50));
}

TEST_F(NetFixture, BackToBackMessagesQueueOnEgress) {
  cfg.jitter_mean = 0;
  cfg.egress_bytes_per_sec = 1e6;
  cfg.ingress_bytes_per_sec = 1e9;  // receiver not the bottleneck
  auto net = make(cfg);
  std::vector<TimeMicros> arrivals;
  net->attach(2, [&](const Message&) { arrivals.push_back(sim.now()); });
  for (int i = 0; i < 3; ++i) net->send(Message{1, 2, MsgType::kAppData, Bytes(100'000, 0)});
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  // Each 100 KB message takes ~0.1 s of egress; arrivals must be spaced.
  EXPECT_GE(arrivals[1] - arrivals[0], millis(90));
  EXPECT_GE(arrivals[2] - arrivals[1], millis(90));
}

TEST_F(NetFixture, StatsCountersAreConsistent) {
  auto net = make(cfg);
  net->attach(2, [](const Message&) {});
  for (int i = 0; i < 5; ++i) net->send(Message{1, 2, MsgType::kAppData, {}});
  net->send(Message{1, 3, MsgType::kAppData, {}});  // unattached
  sim.run();
  const auto& st = net->stats();
  EXPECT_EQ(st.messages_sent, 6u);
  EXPECT_EQ(st.messages_delivered, 5u);
  EXPECT_EQ(st.messages_blocked, 1u);
  EXPECT_GT(st.bytes_sent, 0u);
}

TEST_F(NetFixture, TypedHandlerTakesPrecedence) {
  auto net = make(cfg);
  int typed = 0, fallback = 0;
  net->attach(2, [&](const Message&) { ++fallback; });
  net->attach(2, MsgType::kHeartbeat, [&](const Message&) { ++typed; });
  net->send(Message{1, 2, MsgType::kHeartbeat, {}});
  net->send(Message{1, 2, MsgType::kAppData, {}});
  sim.run();
  EXPECT_EQ(typed, 1);
  EXPECT_EQ(fallback, 1);
}

TEST_F(NetFixture, DetachTypeKeepsFallback) {
  auto net = make(cfg);
  int typed = 0, fallback = 0;
  net->attach(2, [&](const Message&) { ++fallback; });
  net->attach(2, MsgType::kHeartbeat, [&](const Message&) { ++typed; });
  net->detach(2, MsgType::kHeartbeat);
  net->send(Message{1, 2, MsgType::kHeartbeat, {}});
  sim.run();
  EXPECT_EQ(typed, 0);
  EXPECT_EQ(fallback, 1);
}

TEST_F(NetFixture, TransportClosesOnlyOwnRegistrations) {
  auto net = make(cfg);
  int smr = 0, app = 0;
  Transport t1(*net, 5), t2(*net, 5);
  t1.listen({MsgType::kDsBroadcast}, [&](const Message&) { ++smr; });
  t2.listen({MsgType::kAppData}, [&](const Message&) { ++app; });
  t1.close();
  net->send(Message{1, 5, MsgType::kDsBroadcast, {}});
  net->send(Message{1, 5, MsgType::kAppData, {}});
  sim.run();
  EXPECT_EQ(smr, 0);
  EXPECT_EQ(app, 1);
}

TEST_F(NetFixture, WanLatencyFollowsRegionMatrix) {
  auto wan_cfg = NetworkConfig::wide_area();
  wan_cfg.jitter_mean = 0;
  auto net = make(wan_cfg);
  // Node ids map to regions by id % 8: nodes 0 and 1 are eu-west/eu-central
  // (12 ms), nodes 0 and 6 are eu-west/ap-sydney (140 ms).
  TimeMicros near_arrival = -1, far_arrival = -1;
  net->attach(1, [&](const Message&) { near_arrival = sim.now(); });
  net->attach(6, [&](const Message&) { far_arrival = sim.now(); });
  net->send(Message{0, 1, MsgType::kAppData, {}});
  sim.run();
  TimeMicros near_latency = near_arrival;  // sent at t=0
  TimeMicros far_sent = sim.now();
  net->send(Message{0, 6, MsgType::kAppData, {}});
  sim.run();
  TimeMicros far_latency = far_arrival - far_sent;
  EXPECT_GE(near_latency, millis(12));
  EXPECT_LT(near_latency, millis(20));
  EXPECT_GE(far_latency, millis(140));
  EXPECT_LT(far_latency, millis(150));
}

TEST_F(NetFixture, SelfSendIsDelivered) {
  auto net = make(cfg);
  int got = 0;
  net->attach(1, [&](const Message&) { ++got; });
  net->send(Message{1, 1, MsgType::kAppData, {}});
  sim.run();
  EXPECT_EQ(got, 1);
}

TEST_F(NetFixture, WireSizeIncludesOverhead) {
  Message m{1, 2, MsgType::kAppData, Bytes(100, 0)};
  EXPECT_EQ(m.wire_size(), 100 + Message::kHeaderOverhead);
}

TEST_F(NetFixture, JitterVariesLatency) {
  cfg.jitter_mean = 1000;
  auto net = make(cfg);
  std::vector<TimeMicros> arrivals;
  net->attach(2, [&](const Message&) { arrivals.push_back(sim.now()); });
  // Use distinct senders so egress queuing does not mask jitter.
  for (NodeId n = 10; n < 40; ++n) net->send(Message{n, 2, MsgType::kAppData, {}});
  sim.run();
  ASSERT_EQ(arrivals.size(), 30u);
  bool all_same = std::all_of(arrivals.begin(), arrivals.end(),
                              [&](TimeMicros t) { return t == arrivals[0]; });
  EXPECT_FALSE(all_same);
}

// ---------------------------------------------------------------------------
// Payload sharing semantics
// ---------------------------------------------------------------------------

TEST_F(NetFixture, MutatingSentBufferDoesNotAffectInFlightMessage) {
  auto net = make(cfg);
  Bytes received;
  net->attach(2, [&](const Message& m) { received = m.payload.to_bytes(); });
  Bytes buf{1, 2, 3};
  net->send(Message{1, 2, MsgType::kAppData, buf});  // frozen at send time
  buf[0] = 99;                                       // sender scribbles afterwards
  buf.push_back(4);
  sim.run();
  EXPECT_EQ(received, (Bytes{1, 2, 3}));
}

TEST_F(NetFixture, FanOutSharesOneBufferAcrossRecipients) {
  auto net = make(cfg);
  std::vector<const std::uint8_t*> seen_data;
  for (NodeId n = 1; n <= 8; ++n) {
    net->attach(n, [&](const Message& m) { seen_data.push_back(m.payload.data()); });
  }
  Payload shared(Bytes(4096, 0xAB));
  EXPECT_EQ(shared.use_count(), 1);
  for (NodeId n = 1; n <= 8; ++n) {
    net->send(Message{0, n, MsgType::kAppData, shared});
  }
  // All 8 in-flight messages + our handle reference the same allocation.
  EXPECT_EQ(shared.use_count(), 9);
  sim.run();
  ASSERT_EQ(seen_data.size(), 8u);
  for (const std::uint8_t* p : seen_data) EXPECT_EQ(p, shared.data());
  EXPECT_EQ(shared.use_count(), 1);  // delivery released the shares
}

TEST(Payload, CopiesShareAndCompareByContent) {
  Payload a(Bytes{1, 2, 3});
  Payload b = a;
  EXPECT_EQ(b.data(), a.data());  // same buffer
  EXPECT_EQ(a.use_count(), 2);
  Payload c(Bytes{1, 2, 3});
  EXPECT_EQ(a, c);                // content equality
  EXPECT_NE(c.data(), a.data());  // distinct buffer
}

TEST(Payload, DefaultIsSharedEmptyBuffer) {
  Payload a, b;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.size(), 0u);
  // All default payloads share one static empty buffer: heartbeats
  // allocate nothing, and the shared refcount proves it.
  EXPECT_EQ(a.use_count(), b.use_count());
  EXPECT_GE(a.use_count(), 3);  // a + b + the static buffer itself
}

// ---------------------------------------------------------------------------
// Link keys above 2^32 (regression: the packed 64-bit key truncated ids)
// ---------------------------------------------------------------------------

TEST_F(NetFixture, BlockedLinksDoNotAliasForLargeNodeIds) {
  // With the old (lo << 32) ^ hi key only lo's LOW 32 bits survived the
  // shift, so these two disjoint links both produced the key (6<<32)|9 —
  // blocking one silently blocked the other:
  const NodeId a = (5ULL << 32) | 1, b = (7ULL << 32) | 9;  // (1<<32) ^ b
  const NodeId c = 2, d = (4ULL << 32) | 9;                 // (2<<32) ^ d
  auto net = make(cfg);
  int got_cd = 0, got_ab = 0;
  net->attach(b, [&](const Message&) { ++got_ab; });
  net->attach(d, [&](const Message&) { ++got_cd; });
  net->block_link(a, b, true);
  net->send(Message{c, d, MsgType::kAppData, {}});  // must NOT be blocked
  net->send(Message{a, b, MsgType::kAppData, {}});  // must be blocked
  sim.run();
  EXPECT_EQ(got_cd, 1);
  EXPECT_EQ(got_ab, 0);
  // And unblocking restores the exact link.
  net->block_link(a, b, false);
  net->send(Message{a, b, MsgType::kAppData, {}});
  sim.run();
  EXPECT_EQ(got_ab, 1);
}

// ---------------------------------------------------------------------------
// NetworkConfig::validate
// ---------------------------------------------------------------------------

TEST_F(NetFixture, RejectsNonPositiveBandwidth) {
  NetworkConfig bad = cfg;
  bad.egress_bytes_per_sec = 0.0;  // would divide to inf delivery times
  EXPECT_THROW(make(bad), std::invalid_argument);
  bad = cfg;
  bad.egress_bytes_per_sec = -1.0;
  EXPECT_THROW(make(bad), std::invalid_argument);
  bad = cfg;
  bad.ingress_bytes_per_sec = 0.0;
  EXPECT_THROW(make(bad), std::invalid_argument);
  bad = cfg;
  bad.ingress_bytes_per_sec = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(make(bad), std::invalid_argument);
}

TEST_F(NetFixture, RejectsBadProbabilityAndNegativeLatencies) {
  NetworkConfig bad = cfg;
  bad.drop_probability = 1.5;
  EXPECT_THROW(make(bad), std::invalid_argument);
  bad = cfg;
  bad.base_latency = -1;
  EXPECT_THROW(make(bad), std::invalid_argument);
  bad = cfg;
  bad.jitter_mean = -1;
  EXPECT_THROW(make(bad), std::invalid_argument);
  bad = cfg;
  bad.region_latency = {{1, 2}, {3}};  // ragged matrix
  EXPECT_THROW(make(bad), std::invalid_argument);
}

TEST_F(NetFixture, StockConfigsValidate) {
  EXPECT_NO_THROW(NetworkConfig::datacenter().validate());
  EXPECT_NO_THROW(NetworkConfig::wide_area().validate());
}

// ---------------------------------------------------------------------------
// Partitions and link faults (scenario-engine fault primitives)
// ---------------------------------------------------------------------------

TEST_F(NetFixture, PartitionBlocksAcrossSidesOnly) {
  auto net = make(cfg);
  int got1 = 0, got2 = 0, got3 = 0;
  net->attach(1, [&](const Message&) { ++got1; });
  net->attach(2, [&](const Message&) { ++got2; });
  net->attach(3, [&](const Message&) { ++got3; });
  net->partition({{1}});  // 1 alone vs everyone else
  EXPECT_TRUE(net->partitioned());
  net->send(Message{1, 2, MsgType::kAppData, {}});  // across: blocked
  net->send(Message{2, 1, MsgType::kAppData, {}});  // across: blocked
  net->send(Message{2, 3, MsgType::kAppData, {}});  // same side: passes
  sim.run();
  EXPECT_EQ(got1, 0);
  EXPECT_EQ(got2, 0);
  EXPECT_EQ(got3, 1);
  EXPECT_EQ(net->stats().messages_blocked, 2u);

  net->heal_partition();
  EXPECT_FALSE(net->partitioned());
  net->send(Message{1, 2, MsgType::kAppData, {}});
  sim.run();
  EXPECT_EQ(got2, 1);
}

TEST_F(NetFixture, PartitionCutsMessagesAlreadyInFlight) {
  cfg.jitter_mean = 0;
  auto net = make(cfg);
  int got = 0;
  net->attach(2, [&](const Message&) { ++got; });
  net->send(Message{1, 2, MsgType::kAppData, {}});
  net->partition({{1}});  // starts while the message is in flight
  sim.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net->stats().messages_blocked, 1u);
}

TEST_F(NetFixture, MultiSidePartitionSeparatesAllComponents) {
  auto net = make(cfg);
  int got = 0;
  for (NodeId n = 1; n <= 6; ++n) net->attach(n, [&](const Message&) { ++got; });
  net->partition({{1, 2}, {3, 4}});  // sides: {1,2}, {3,4}, rest
  net->send(Message{1, 2, MsgType::kAppData, {}});  // within side 1
  net->send(Message{3, 4, MsgType::kAppData, {}});  // within side 2
  net->send(Message{5, 6, MsgType::kAppData, {}});  // within rest
  net->send(Message{1, 3, MsgType::kAppData, {}});  // across 1-2
  net->send(Message{2, 5, MsgType::kAppData, {}});  // across 1-rest
  net->send(Message{4, 6, MsgType::kAppData, {}});  // across 2-rest
  sim.run();
  EXPECT_EQ(got, 3);
  EXPECT_EQ(net->stats().messages_blocked, 3u);
}

TEST_F(NetFixture, LinkFaultDropsProbabilistically) {
  auto net = make(cfg);
  int got12 = 0, got13 = 0;
  net->attach(2, [&](const Message&) { ++got12; });
  net->attach(3, [&](const Message&) { ++got13; });
  net->set_link_fault(1, 2, LinkFault{1.0, 0});
  for (int i = 0; i < 50; ++i) {
    net->send(Message{1, 2, MsgType::kAppData, {}});
    net->send(Message{1, 3, MsgType::kAppData, {}});
  }
  sim.run();
  EXPECT_EQ(got12, 0);  // total loss on the degraded link
  EXPECT_EQ(got13, 50);  // untouched link unaffected
  EXPECT_EQ(net->stats().messages_dropped, 50u);
  net->clear_link_fault(1, 2);
  net->send(Message{1, 2, MsgType::kAppData, {}});
  sim.run();
  EXPECT_EQ(got12, 1);
}

TEST_F(NetFixture, NodeFaultDegradesEveryTouchingLink) {
  auto net = make(cfg);
  int got = 0;
  net->attach(1, [&](const Message&) { ++got; });
  net->attach(2, [&](const Message&) { ++got; });
  net->attach(3, [&](const Message&) { ++got; });
  net->set_node_fault(1, LinkFault{1.0, 0});
  net->send(Message{1, 2, MsgType::kAppData, {}});  // outbound from 1
  net->send(Message{3, 1, MsgType::kAppData, {}});  // inbound to 1
  sim.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net->stats().messages_dropped, 2u);
  net->send(Message{2, 3, MsgType::kAppData, {}});  // link not touching 1
  sim.run();
  EXPECT_EQ(got, 1);
  net->clear_node_fault(1);
  net->send(Message{1, 2, MsgType::kAppData, {}});
  sim.run();
  EXPECT_EQ(got, 2);
}

TEST_F(NetFixture, FaultLatencyDelaysDeliveryWithoutOccupyingIngress) {
  cfg.jitter_mean = 0;
  auto net = make(cfg);
  const DurationMicros extra = seconds(30.0);
  TimeMicros slow_at = -1, fast_at = -1;
  net->attach(2, [&](const Message& m) {
    (m.from == 1 ? slow_at : fast_at) = sim.now();
  });
  net->set_link_fault(1, 2, LinkFault{0.0, extra});
  net->send(Message{1, 2, MsgType::kAppData, {}});  // delayed 30 s
  net->send(Message{3, 2, MsgType::kAppData, {}});  // must NOT queue behind it
  sim.run();
  EXPECT_GE(slow_at, extra);
  EXPECT_LT(fast_at, seconds(1.0));
  // Injected latency is propagation, not serialization: once the fault is
  // cleared and time passes, the flow entries are sweepable (no horizon 30 s
  // in the future).
  net->clear_link_faults();
  EXPECT_EQ(net->flow_count(), 0u);
}

TEST_F(NetFixture, HealedPartitionLeavesNoDeadFlowEntriesUnderChurn) {
  cfg.jitter_mean = 0;
  auto net = make(cfg);
  std::uint64_t got = 0;
  constexpr NodeId kNodes = 64;
  for (NodeId n = 0; n < kNodes; ++n) {
    net->attach(n, [&](const Message&) { ++got; });
  }
  // Build up flow entries on every node.
  for (NodeId n = 1; n < kNodes; ++n) net->send(Message{n, 0, MsgType::kAppData, Bytes(256, 1)});
  sim.run();
  EXPECT_GT(net->flow_count(), 0u);

  // Partition half away; traffic continues on one side only, and churn
  // detaches some partitioned-away nodes entirely while they are cut off.
  std::vector<std::vector<NodeId>> sides(1);
  for (NodeId n = kNodes / 2; n < kNodes; ++n) sides[0].push_back(n);
  net->partition(sides);
  for (int round = 0; round < 4; ++round) {
    for (NodeId n = 1; n < kNodes / 2; ++n) {
      net->send(Message{n, 0, MsgType::kAppData, Bytes(256, 1)});
    }
    for (NodeId n = kNodes / 2; n < kNodes; ++n) {
      net->send(Message{n, 0, MsgType::kAppData, {}});  // all blocked
    }
    sim.run();
  }
  for (NodeId n = kNodes - 8; n < kNodes; ++n) net->detach(n);  // churned away

  // Heal. The partition stalled the send-driven amortized sweep for the
  // blocked side; heal_partition() performs an exact sweep so no dead
  // serialization entries survive it (everything idle by now).
  net->heal_partition();
  EXPECT_EQ(net->flow_count(), 0u);

  // Live traffic immediately after the heal works and re-creates entries.
  std::uint64_t before = got;
  net->send(Message{kNodes - 1, 0, MsgType::kAppData, {}});
  sim.run();
  EXPECT_EQ(got, before + 1);  // formerly partitioned side can reach 0 again
  EXPECT_LE(net->flow_count(), 2u);
}

TEST_F(NetFixture, SweepFlowsIsExactAndReportsEvictions) {
  cfg.jitter_mean = 0;
  auto net = make(cfg);
  net->attach(1, [](const Message&) {});
  for (NodeId n = 2; n < 34; ++n) net->send(Message{n, 1, MsgType::kAppData, {}});
  sim.run();  // all horizons in the past now
  EXPECT_GT(net->flow_count(), 0u);
  std::size_t evicted = net->sweep_flows();
  EXPECT_GT(evicted, 0u);
  EXPECT_EQ(net->flow_count(), 0u);
  EXPECT_EQ(net->sweep_flows(), 0u);
}

// ---------------------------------------------------------------------------
// Flow-table eviction (regression: one Flow per node ever seen, forever)
// ---------------------------------------------------------------------------

TEST_F(NetFixture, IdleFlowEntriesAreSwept) {
  auto net = make(cfg);
  std::uint64_t got = 0;
  net->attach(1, [&](const Message&) { ++got; });
  // 50k distinct transient senders each send once, then fall idle. Without
  // eviction flows_ keeps one serialization entry per sender forever.
  for (NodeId s = 1000; s < 51000; ++s) {
    net->send(Message{s, 1, MsgType::kAppData, Bytes{1}});
    if ((s & 0x3F) == 0) sim.run();  // drain: the senders' horizons pass
  }
  sim.run();
  EXPECT_EQ(got, 50000u);
  // Sweeps are amortized (one per flows_.size() sends), so the table holds
  // at most the nodes active since the last sweep — not all 50k ever seen.
  EXPECT_LT(net->flow_count(), 4096u);
}

TEST_F(NetFixture, ActiveFlowsSurviveTheSweep) {
  auto net = make(cfg);
  TimeMicros last = 0;
  std::uint64_t got = 0;
  net->attach(2, [&](const Message&) {
    last = sim.now();
    ++got;
  });
  // 2000 distinct one-shot senders saturate node 2's ingress in one burst;
  // with a 256-send sweep allowance, several sweeps run mid-burst. If a
  // sweep wrongly evicted node 2's ACTIVE flow, its ingress horizon would
  // reset and deliveries would compress below the serialized lower bound.
  constexpr std::size_t kSenders = 2000;
  for (NodeId s = 100; s < 100 + kSenders; ++s) {
    net->send(Message{s, 2, MsgType::kAppData, Bytes(4096, 1)});
  }
  sim.run();
  EXPECT_EQ(got, kSenders);
  const double per_msg =
      (4096.0 + Message::kHeaderOverhead) / cfg.ingress_bytes_per_sec * kMicrosPerSecond;
  EXPECT_GE(last, static_cast<TimeMicros>(per_msg * (kSenders - 1)));
}

// ---------------------------------------------------------------------------
// Payload digest cache: SHA-256 computed at most once per (frame, range),
// memoized on the shared control block.
// ---------------------------------------------------------------------------

TEST(PayloadDigest, ComputedOnceAndSharedAcrossCopiesAndSlices) {
  Payload p(Bytes(300, 0x42));
  const std::uint64_t base = crypto::sha256_digest_count();
  crypto::Digest d = p.digest();
  EXPECT_EQ(crypto::sha256_digest_count(), base + 1);

  // Copies and re-slices of the same range are cache hits: the memo lives
  // on the buffer control block, not on the Payload value.
  Payload copy = p;
  EXPECT_EQ(copy.digest(), d);
  Payload whole = p.slice({p.data(), p.size()});
  EXPECT_EQ(whole.digest(), d);
  EXPECT_EQ(p.digest(), d);
  EXPECT_EQ(crypto::sha256_digest_count(), base + 1);

  // And the cached value is the real digest.
  EXPECT_EQ(d, crypto::sha256(p.data(), p.size()));
}

TEST(PayloadDigest, MemoIsKeyedByRange) {
  Payload frame(Bytes{1, 2, 3, 4, 5, 6, 7, 8});
  Payload head = frame.slice({frame.data(), 4});
  Payload tail = frame.slice({frame.data() + 4, 4});

  crypto::Digest dh = head.digest();
  crypto::Digest dt = tail.digest();
  EXPECT_NE(dh, dt);
  EXPECT_EQ(dh, crypto::sha256(head.data(), head.size()));
  EXPECT_EQ(dt, crypto::sha256(tail.data(), tail.size()));

  // The memo is a small set, not a single slot: both ranges stay cached
  // side by side (a batched pre-prepare hashes the whole ops region AND
  // per-op sub-ranges of the same frame).
  const std::uint64_t base = crypto::sha256_digest_count();
  EXPECT_EQ(tail.digest(), dt);  // hit
  EXPECT_EQ(head.digest(), dh);  // hit — did not evict the other range
  EXPECT_EQ(crypto::sha256_digest_count(), base);
}

TEST(PayloadDigest, MemoHoldsSlotsRangesAndEvictsRoundRobin) {
  // One frame, kDigestMemoSlots + 1 distinct ranges.
  constexpr std::size_t kSlots = Payload::kDigestMemoSlots;
  Bytes bytes(kSlots + 1);
  for (std::size_t i = 0; i < bytes.size(); ++i) bytes[i] = static_cast<std::uint8_t>(i + 1);
  Payload frame(bytes);
  std::vector<Payload> ranges;
  for (std::size_t i = 0; i < kSlots + 1; ++i) {
    ranges.push_back(frame.slice({frame.data(), i + 1}));
  }

  // Fill every slot: k distinct ranges hash exactly k times...
  std::uint64_t base = crypto::sha256_digest_count();
  std::vector<crypto::Digest> digests;
  for (std::size_t i = 0; i < kSlots; ++i) digests.push_back(ranges[i].digest());
  EXPECT_EQ(crypto::sha256_digest_count(), base + kSlots);
  // ...and re-hashing any of them is a pure cache hit.
  for (std::size_t i = 0; i < kSlots; ++i) EXPECT_EQ(ranges[i].digest(), digests[i]);
  EXPECT_EQ(crypto::sha256_digest_count(), base + kSlots);

  // A (k+1)-th range evicts the oldest entry (round-robin): the newcomer
  // and the survivors hit, the evicted range recomputes correctly.
  crypto::Digest extra = ranges[kSlots].digest();
  EXPECT_EQ(extra, crypto::sha256(ranges[kSlots].data(), ranges[kSlots].size()));
  base = crypto::sha256_digest_count();
  EXPECT_EQ(ranges[kSlots].digest(), extra);
  for (std::size_t i = 1; i < kSlots; ++i) EXPECT_EQ(ranges[i].digest(), digests[i]);
  EXPECT_EQ(crypto::sha256_digest_count(), base);
  EXPECT_EQ(ranges[0].digest(), digests[0]);  // evicted: recomputed, still right
  EXPECT_EQ(crypto::sha256_digest_count(), base + 1);
}

TEST_F(NetFixture, DigestCacheSurvivesDeliveryAcrossRecipients) {
  auto net = make(cfg);
  std::uint64_t base = 0;
  std::size_t handled = 0;
  crypto::Digest expect{};
  for (NodeId n = 1; n <= 8; ++n) {
    net->attach(n, [&](const Message& m) {
      // Every recipient wants the digest of the same shared frame; only
      // the first computes it.
      EXPECT_EQ(m.payload.digest(), expect);
      EXPECT_EQ(crypto::sha256_digest_count(), base + 1);
      ++handled;
    });
  }
  Payload shared(Bytes(2048, 0x9c));
  expect = crypto::sha256(shared.data(), shared.size());
  for (NodeId n = 1; n <= 8; ++n) {
    net->send(Message{0, n, MsgType::kAppData, shared});
  }
  base = crypto::sha256_digest_count();
  sim.run();
  EXPECT_EQ(handled, 8u);
  EXPECT_EQ(crypto::sha256_digest_count(), base + 1);
}

TEST(Payload, FrameSizeExposesThePinnedBuffer) {
  Payload frame(Bytes(100, 0x11));
  EXPECT_EQ(frame.frame_size(), 100u);
  EXPECT_EQ(frame.frame_size(), frame.size());

  // A slice still reports the whole backing frame it pins.
  Payload part = frame.slice({frame.data() + 10, 20});
  EXPECT_EQ(part.size(), 20u);
  EXPECT_EQ(part.frame_size(), 100u);

  // Copying out yields an independently owned buffer.
  Payload owned(part.to_bytes());
  EXPECT_EQ(owned.frame_size(), owned.size());
}

}  // namespace
}  // namespace atum::net
