// Tests for AShare: metadata index semantics, PUT/GET/DELETE/SEARCH,
// randomized replication with the Figure 5 feedback loop, and integrity
// checks against corrupt (Byzantine) replicas.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "apps/ashare/ashare.h"
#include "common/serde.h"

namespace atum::ashare {
namespace {

core::Params fast_params() {
  core::Params p;
  p.hc = 3;
  p.rwl = 4;
  p.gmax = 8;
  p.gmin = 4;
  p.round_duration = millis(20);
  p.heartbeat_period = seconds(10);
  return p;
}

Bytes blob(std::size_t n, std::uint8_t fill = 0x5a) { return Bytes(n, fill); }

// ---------------------------------------------------------------------------
// MetadataIndex
// ---------------------------------------------------------------------------

FileMeta meta_of(NodeId owner, const std::string& name, std::size_t chunks = 2) {
  FileMeta m;
  m.key = FileKey{owner, name};
  m.size = chunks * 100;
  m.chunk_size = 100;
  for (std::size_t i = 0; i < chunks; ++i) m.chunk_digests.push_back(crypto::sha256(blob(i + 1)));
  return m;
}

TEST(MetadataIndex, PutInsertsWithOwnerAsHolder) {
  MetadataIndex idx;
  EXPECT_TRUE(idx.put(meta_of(1, "a"), 1));
  auto m = idx.lookup(FileKey{1, "a"});
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->holders.contains(1));
  EXPECT_EQ(idx.replica_count(FileKey{1, "a"}), 1u);
}

TEST(MetadataIndex, ForeignNamespaceWriteRejected) {
  MetadataIndex idx;
  EXPECT_FALSE(idx.put(meta_of(1, "a"), 2));  // node 2 writing node 1's namespace
  EXPECT_EQ(idx.file_count(), 0u);
}

TEST(MetadataIndex, RemoveIsOwnerOnly) {
  MetadataIndex idx;
  idx.put(meta_of(1, "a"), 1);
  EXPECT_FALSE(idx.remove(FileKey{1, "a"}, 2));
  EXPECT_TRUE(idx.remove(FileKey{1, "a"}, 1));
  EXPECT_EQ(idx.file_count(), 0u);
}

TEST(MetadataIndex, SameNameDifferentOwnersCoexist) {
  MetadataIndex idx;
  idx.put(meta_of(1, "doc"), 1);
  idx.put(meta_of(2, "doc"), 2);
  EXPECT_EQ(idx.file_count(), 2u);
  EXPECT_TRUE(idx.lookup(FileKey{1, "doc"}).has_value());
  EXPECT_TRUE(idx.lookup(FileKey{2, "doc"}).has_value());
}

TEST(MetadataIndex, HoldersTracked) {
  MetadataIndex idx;
  idx.put(meta_of(1, "a"), 1);
  idx.add_holder(FileKey{1, "a"}, 5);
  idx.add_holder(FileKey{1, "a"}, 6);
  EXPECT_EQ(idx.replica_count(FileKey{1, "a"}), 3u);
  idx.remove_holder_everywhere(5);
  EXPECT_EQ(idx.replica_count(FileKey{1, "a"}), 2u);
}

TEST(MetadataIndex, SearchByNameSubstringAndOwner) {
  MetadataIndex idx;
  idx.put(meta_of(1, "report-2016.pdf"), 1);
  idx.put(meta_of(1, "photo.jpg"), 1);
  idx.put(meta_of(2, "report-2017.pdf"), 2);
  EXPECT_EQ(idx.search("report").size(), 2u);
  EXPECT_EQ(idx.search("jpg").size(), 1u);
  EXPECT_EQ(idx.search("2").size(), 2u);  // matches name "2016/2017" substrings
  EXPECT_EQ(idx.search("nothing").size(), 0u);
}

TEST(MetadataIndex, ChunkByteArithmetic) {
  FileMeta m;
  m.size = 250;
  m.chunk_size = 100;
  m.chunk_digests.resize(3);
  EXPECT_EQ(m.chunk_bytes(0), 100u);
  EXPECT_EQ(m.chunk_bytes(1), 100u);
  EXPECT_EQ(m.chunk_bytes(2), 50u);  // short tail
}

// ---------------------------------------------------------------------------
// AShare end-to-end
// ---------------------------------------------------------------------------

struct AShareFixture : ::testing::Test {
  std::unique_ptr<core::AtumSystem> sys;
  std::map<NodeId, std::unique_ptr<AShareNode>> nodes;

  void deploy(std::size_t n, std::size_t rho = 3) {
    sys = std::make_unique<core::AtumSystem>(fast_params(), net::NetworkConfig::datacenter(),
                                             515);
    std::vector<NodeId> ids;
    for (NodeId i = 0; i < n; ++i) {
      ids.push_back(i);
      sys->add_node(i);
    }
    sys->deploy(ids);
    for (NodeId i = 0; i < n; ++i) {
      nodes[i] = std::make_unique<AShareNode>(*sys, i, rho, n);
    }
  }

  void run_for(DurationMicros d) { sys->simulator().run_until(sys->simulator().now() + d); }
};

TEST_F(AShareFixture, PutPropagatesMetadataEverywhere) {
  deploy(12);
  nodes[0]->put("movie.bin", blob(1000), 4);
  run_for(seconds(30));
  for (auto& [id, n] : nodes) {
    auto m = n->index().lookup(FileKey{0, "movie.bin"});
    ASSERT_TRUE(m.has_value()) << "node " << id;
    EXPECT_EQ(m->size, 1000u);
    EXPECT_EQ(m->chunk_count(), 4u);
  }
}

TEST_F(AShareFixture, GetReturnsExactContent) {
  deploy(12);
  Bytes content(2000);
  for (std::size_t i = 0; i < content.size(); ++i) content[i] = static_cast<std::uint8_t>(i);
  nodes[0]->put("data.bin", content, 5);
  run_for(seconds(30));

  Bytes got;
  GetStats stats;
  nodes[7]->get(FileKey{0, "data.bin"}, [&](Bytes c, const GetStats& s) {
    got = std::move(c);
    stats = s;
  });
  run_for(seconds(30));
  EXPECT_TRUE(stats.ok);
  EXPECT_EQ(got, content);
  EXPECT_EQ(stats.corrupt_chunks, 0u);
}

TEST_F(AShareFixture, RandomizedReplicationReachesRho) {
  deploy(12, 4);
  nodes[0]->put("popular.bin", blob(500), 2);
  run_for(seconds(200));  // feedback loop rounds
  // Everyone's index converges to >= rho holders.
  std::size_t holders = nodes[5]->index().replica_count(FileKey{0, "popular.bin"});
  EXPECT_GE(holders, 4u);
}

TEST_F(AShareFixture, ReplicationLoopDeactivatesAtRho) {
  deploy(12, 3);
  nodes[0]->put("calm.bin", blob(300), 2);
  run_for(seconds(300));
  std::size_t holders = nodes[2]->index().replica_count(FileKey{0, "calm.bin"});
  EXPECT_GE(holders, 3u);
  EXPECT_LE(holders, 7u);  // the probabilistic loop overshoots a little, not to n
}

TEST_F(AShareFixture, DeleteRemovesEverywhere) {
  deploy(12);
  nodes[0]->put("temp.bin", blob(100), 1);
  run_for(seconds(30));
  nodes[0]->del("temp.bin");
  run_for(seconds(30));
  for (auto& [id, n] : nodes) {
    EXPECT_FALSE(n->index().lookup(FileKey{0, "temp.bin"}).has_value()) << "node " << id;
    EXPECT_FALSE(n->has_replica(FileKey{0, "temp.bin"})) << "node " << id;
  }
}

TEST_F(AShareFixture, ForeignDeleteIgnored) {
  deploy(12);
  nodes[0]->put("mine.bin", blob(100), 1);
  run_for(seconds(30));
  nodes[3]->del("mine.bin");  // deletes node 3's namespace entry, not node 0's
  run_for(seconds(30));
  EXPECT_TRUE(nodes[5]->index().lookup(FileKey{0, "mine.bin"}).has_value());
}

TEST_F(AShareFixture, SearchFindsRemoteFiles) {
  deploy(12);
  nodes[0]->put("alpha-report.txt", blob(64), 1);
  nodes[1]->put("beta-report.txt", blob(64), 1);
  run_for(seconds(30));
  auto results = nodes[9]->search("report");
  EXPECT_EQ(results.size(), 2u);
  EXPECT_EQ(nodes[9]->search("alpha").size(), 1u);
}

TEST_F(AShareFixture, CorruptReplicaDetectedAndRepulled) {
  deploy(12, 3);
  Bytes content = blob(1200, 0x42);
  nodes[0]->put("guarded.bin", content, 4);
  run_for(seconds(30));
  // Pin replicas: one honest (node 1), one corrupting (node 2).
  nodes[1]->force_replicate(FileKey{0, "guarded.bin"});
  nodes[2]->force_replicate(FileKey{0, "guarded.bin"});
  run_for(seconds(60));
  nodes[2]->set_corrupt_replicas(true);

  Bytes got;
  GetStats stats;
  nodes[8]->get(FileKey{0, "guarded.bin"}, [&](Bytes c, const GetStats& s) {
    got = std::move(c);
    stats = s;
  });
  run_for(seconds(60));
  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(got, content) << "integrity checks must yield the authentic bytes";
}

TEST_F(AShareFixture, GetOfUnknownFileFailsCleanly) {
  deploy(12);
  bool called = false;
  GetStats stats;
  stats.ok = true;
  nodes[4]->get(FileKey{0, "ghost.bin"}, [&](Bytes, const GetStats& s) {
    called = true;
    stats = s;
  });
  run_for(seconds(10));
  EXPECT_TRUE(called);
  EXPECT_FALSE(stats.ok);
}

TEST_F(AShareFixture, EmptyFileRoundTrips) {
  deploy(12);
  nodes[0]->put("empty.bin", {}, 1);
  run_for(seconds(30));
  Bytes got{1};  // sentinel
  GetStats stats;
  nodes[6]->get(FileKey{0, "empty.bin"}, [&](Bytes c, const GetStats& s) {
    got = std::move(c);
    stats = s;
  });
  run_for(seconds(30));
  EXPECT_TRUE(stats.ok);
  EXPECT_TRUE(got.empty());
}

TEST_F(AShareFixture, ParallelPullUsesMultipleHolders) {
  deploy(12, 4);
  nodes[0]->put("wide.bin", blob(4000), 8);
  run_for(seconds(30));
  nodes[1]->force_replicate(FileKey{0, "wide.bin"});
  nodes[2]->force_replicate(FileKey{0, "wide.bin"});
  run_for(seconds(60));

  GetStats stats;
  nodes[9]->get(FileKey{0, "wide.bin"}, [&](Bytes, const GetStats& s) { stats = s; });
  run_for(seconds(60));
  ASSERT_TRUE(stats.ok);
  EXPECT_GE(stats.holders_used, 3u);
}

// ---------------------------------------------------------------------------
// Zero-copy transfer tail: pieces are slices of their arrival frames, the
// integrity check hashes each chunk exactly once, and reassembly is the
// only copy a user GET makes.
// ---------------------------------------------------------------------------

TEST_F(AShareFixture, TransferPiecesAliasReplyFramesAndHashOncePerChunk) {
  deploy(12);
  // Quiesce the background: no probabilistic replication (its GETs and
  // kMsgReplica broadcasts would hash concurrently with ours).
  for (auto& [id, n] : nodes) n->set_auto_replication(false);

  constexpr std::size_t kChunks = 8;
  const Bytes content = blob(40'000, 0x7c);  // 5 KB chunks: replies stagger
  nodes[0]->put("big.bin", content, kChunks);
  run_for(seconds(30));  // metadata settles everywhere

  const std::uint64_t base = crypto::sha256_digest_count();
  Bytes got;
  GetStats stats;
  nodes[5]->get(FileKey{0, "big.bin"},
                [&](Bytes c, const GetStats& s) { got = std::move(c); stats = s; });

  // Step the transfer and inspect the in-flight buffer: every piece must
  // still be a slice of the (larger) kChunkReply frame it arrived in.
  bool saw_inflight_piece = false;
  const TimeMicros deadline = sys->simulator().now() + seconds(60);
  while (!stats.ok && sys->simulator().now() < deadline) {
    run_for(millis(1));
    nodes[5]->for_each_inflight_piece([&](const net::Payload& p) {
      saw_inflight_piece = true;
      EXPECT_GT(p.frame_size(), p.size());  // aliases the frame, owns nothing
    });
  }
  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(got, content);
  EXPECT_EQ(stats.corrupt_chunks, 0u);
  EXPECT_TRUE(saw_inflight_piece);
  // One SHA-256 per chunk at the getter (memoized per reply frame); the
  // serving holder hashes nothing. Background traffic is quiet (auto-
  // replication off, heartbeats unhashed), so the count is exact.
  EXPECT_EQ(crypto::sha256_digest_count() - base, kChunks);
}

// ---------------------------------------------------------------------------
// Byzantine metadata (regression: the sanitizer sweep found that a PUT with
// owner-controlled size/chunk_size was accepted unvalidated — size = 2^60
// over two tiny chunks made a later GET reserve 2^60 bytes on completion,
// and chunk_size = 0 divided by zero in chunk planning)
// ---------------------------------------------------------------------------

Bytes put_wire(NodeId owner, const std::string& name, std::uint64_t size,
               std::uint64_t chunk_size, std::uint64_t digests) {
  ByteWriter w;
  w.u8(1);  // kMsgPut
  w.u64(owner);
  w.str(name);
  w.u64(size);
  w.u64(chunk_size);
  w.varint(digests);
  for (std::uint64_t i = 0; i < digests; ++i) {
    crypto::Digest d = crypto::sha256(blob(i + 1));
    w.raw(d.data(), d.size());
  }
  return w.take();
}

TEST_F(AShareFixture, ByzantinePutInconsistentMetadataRejected) {
  deploy(4);
  // Keep the feedback loop out of the picture: the forged files have no
  // real content anywhere, so replication GETs would only add noise.
  for (auto& [id, node] : nodes) node->set_auto_replication(false);

  // Node 3 is the Byzantine owner, injecting hand-rolled PUT frames through
  // the real middleware broadcast path (the key's owner must match the
  // origin, so the forgeries come from node 3 itself).
  // Advertised size wildly exceeds what two chunks of 100 bytes can hold.
  nodes[3]->atum().broadcast(put_wire(3, "evil.bin", std::uint64_t{1} << 60, 100, 2));
  // chunk_size = 0 would divide by zero in chunk planning.
  nodes[3]->atum().broadcast(put_wire(3, "zero.bin", 100, 0, 2));
  // Overflow probe: size + chunk_size - 1 wraps past 2^64, so an additive
  // ceil check would compute 0 expected chunks and accept a 2^63-byte file
  // with no digests at all.
  nodes[3]->atum().broadcast(
      put_wire(3, "wrap.bin", (std::uint64_t{1} << 63) + 2, std::uint64_t{1} << 63, 0));
  // Sanity: a consistent PUT through the same path is still accepted.
  nodes[3]->atum().broadcast(put_wire(3, "ok.bin", 150, 100, 2));
  run_for(seconds(30));

  EXPECT_FALSE(nodes[1]->index().lookup(FileKey{3, "evil.bin"}).has_value());
  EXPECT_FALSE(nodes[1]->index().lookup(FileKey{3, "zero.bin"}).has_value());
  EXPECT_FALSE(nodes[1]->index().lookup(FileKey{3, "wrap.bin"}).has_value());
  ASSERT_TRUE(nodes[1]->index().lookup(FileKey{3, "ok.bin"}).has_value());
  EXPECT_EQ(nodes[1]->index().lookup(FileKey{3, "ok.bin"})->chunk_count(), 2u);
}

}  // namespace
}  // namespace atum::ashare
