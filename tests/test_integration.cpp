// Cross-layer integration tests: the middleware under combined load —
// membership churn during broadcasts, WAN deployments, application traffic
// over a reconfiguring overlay, and end-to-end Byzantine scenarios that
// exercise every layer at once.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "apps/ashare/ashare.h"
#include "apps/astream/astream.h"
#include "core/atum.h"
#include "group/cluster_sim.h"

namespace atum {
namespace {

core::Params fast_params(smr::EngineKind kind = smr::EngineKind::kSync) {
  core::Params p;
  p.hc = 3;
  p.rwl = 4;
  p.gmax = 8;
  p.gmin = 4;
  p.engine = kind;
  p.round_duration = millis(20);
  p.view_change_timeout = millis(500);
  p.heartbeat_period = millis(500);
  return p;
}

struct IntegrationFixture : ::testing::Test {
  std::unique_ptr<core::AtumSystem> sys;
  std::map<NodeId, std::vector<net::Payload>> delivered;

  void deploy(std::size_t n, core::Params p = fast_params()) {
    sys = std::make_unique<core::AtumSystem>(p, net::NetworkConfig::datacenter(), 1717);
    std::vector<NodeId> ids;
    for (NodeId i = 0; i < n; ++i) {
      ids.push_back(i);
      sys->add_node(i).set_deliver([this, i](NodeId, const net::Payload& payload) {
        delivered[i].push_back(payload);
      });
    }
    sys->deploy(ids);
  }

  void run_for(DurationMicros d) { sys->simulator().run_until(sys->simulator().now() + d); }

  std::size_t reach(const Bytes& payload) {
    std::size_t n = 0;
    for (auto& [id, msgs] : delivered) {
      for (auto& m : msgs) n += (m == payload);
    }
    return n;
  }
};

TEST_F(IntegrationFixture, BroadcastDuringJoin) {
  deploy(18);
  auto& joiner = sys->add_node(100);
  joiner.set_deliver([this](NodeId, const net::Payload& p) { delivered[100].push_back(p); });
  joiner.join(0);
  // Broadcast while the join is in flight: existing nodes must deliver.
  sys->node(3).broadcast(Bytes{0x11});
  run_for(seconds(60));
  EXPECT_GE(reach(Bytes{0x11}), 18u);
  EXPECT_TRUE(joiner.joined());
}

TEST_F(IntegrationFixture, BroadcastDuringLeave) {
  deploy(18);
  sys->node(7).leave();
  sys->node(0).broadcast(Bytes{0x22});
  run_for(seconds(60));
  // Everyone still in the system (17 nodes) delivers.
  EXPECT_GE(reach(Bytes{0x22}), 17u);
}

TEST_F(IntegrationFixture, BroadcastSurvivesEvictionInProgress) {
  deploy(18);
  auto groups = sys->group_map();
  NodeId victim = groups.begin()->second.back();
  sys->network().isolate(victim, true);
  run_for(seconds(1));  // suspicion building up
  sys->node(0).broadcast(Bytes{0x33});
  run_for(seconds(60));
  EXPECT_GE(reach(Bytes{0x33}), 17u);
}

TEST_F(IntegrationFixture, SequentialChurnWithTraffic) {
  deploy(18);
  for (int round = 0; round < 3; ++round) {
    NodeId fresh = 200 + static_cast<NodeId>(round);
    auto& j = sys->add_node(fresh);
    j.set_deliver([this, fresh](NodeId, const net::Payload& p) { delivered[fresh].push_back(p); });
    j.join(0);
    run_for(seconds(60));
    ASSERT_TRUE(j.joined()) << "round " << round;
    Bytes payload{static_cast<std::uint8_t>(0x40 + round)};
    sys->node(fresh).broadcast(payload);
    run_for(seconds(30));
    EXPECT_GE(reach(payload), 18u + static_cast<std::size_t>(round)) << "round " << round;
  }
}

TEST_F(IntegrationFixture, WanDeploymentBroadcast) {
  core::Params p = fast_params(smr::EngineKind::kAsync);
  p.view_change_timeout = seconds(5);  // above WAN RTTs
  sys = std::make_unique<core::AtumSystem>(p, net::NetworkConfig::wide_area(), 1718);
  std::vector<NodeId> ids;
  for (NodeId i = 0; i < 24; ++i) {
    ids.push_back(i);
    sys->add_node(i).set_deliver([this, i](NodeId, const net::Payload& payload) {
      delivered[i].push_back(payload);
    });
  }
  sys->deploy(ids);
  sys->node(5).broadcast(Bytes{0x55});
  run_for(seconds(120));
  EXPECT_EQ(reach(Bytes{0x55}), 24u);
}

TEST_F(IntegrationFixture, AShareOverAsyncEngine) {
  core::Params p = fast_params(smr::EngineKind::kAsync);
  sys = std::make_unique<core::AtumSystem>(p, net::NetworkConfig::datacenter(), 1719);
  std::vector<NodeId> ids;
  for (NodeId i = 0; i < 12; ++i) {
    ids.push_back(i);
    sys->add_node(i);
  }
  sys->deploy(ids);
  std::map<NodeId, std::unique_ptr<ashare::AShareNode>> share;
  for (NodeId i = 0; i < 12; ++i) {
    share[i] = std::make_unique<ashare::AShareNode>(*sys, i, 3, 12);
  }
  share[0]->put("async.bin", Bytes(5000, 0x5A), 4);
  run_for(seconds(60));
  Bytes got;
  ashare::GetStats stats;
  share[9]->get(ashare::FileKey{0, "async.bin"}, [&](Bytes c, const ashare::GetStats& s) {
    got = std::move(c);
    stats = s;
  });
  run_for(seconds(60));
  EXPECT_TRUE(stats.ok);
  EXPECT_EQ(got.size(), 5000u);
}

TEST_F(IntegrationFixture, StreamWhileFileSharing) {
  // Both applications multiplex over the same Atum deployment.
  deploy(18);
  std::map<NodeId, std::unique_ptr<astream::AStreamNode>> stream;
  std::map<NodeId, std::uint64_t> played;
  for (NodeId i = 0; i < 18; ++i) {
    stream[i] = std::make_unique<astream::AStreamNode>(*sys, i, astream::StreamConfig{});
    stream[i]->set_chunk_handler([&played, i](std::uint64_t seq, const net::Payload&) {
      played[i] = seq;
    });
  }
  for (auto& [id, s] : stream) s->join_stream(0);
  run_for(seconds(5));
  for (int c = 0; c < 3; ++c) {
    stream[0]->stream_chunk(Bytes(2000, static_cast<std::uint8_t>(c)));
    run_for(seconds(10));
  }
  run_for(seconds(60));
  std::size_t complete = 0;
  for (auto& [id, last] : played) complete += (last == 3);
  EXPECT_EQ(complete, 18u);
}

// Cross-validation: the vgroup-granularity simulator and the node-level
// runtime agree on the protocol cost structure.
TEST(CrossValidation, AgreementLatencyMatchesDolevStrongSlots) {
  sim::Simulator sim;
  group::ClusterSimConfig cfg;
  cfg.kind = smr::EngineKind::kSync;
  cfg.round_duration = seconds(1.0);
  cfg.hc = 3;
  group::ClusterSim cs(sim, cfg);
  // (f+2) rounds for f = (g-1)/2 — identical to DolevStrongSmr's slots.
  for (std::size_t g : {4u, 7u, 10u, 15u}) {
    std::size_t f = smr::sync_max_faults(g);
    DurationMicros slot = static_cast<DurationMicros>(f + 2) * seconds(1.0);
    EXPECT_GE(cs.agreement_latency(g), slot);
    EXPECT_LE(cs.agreement_latency(g), slot + seconds(1.0));  // + state-transfer term
  }
}

TEST(CrossValidation, GrowthIsSuperlinearInSimulator) {
  // Fig 6's exponential-rate claim, checked as a property: time to add the
  // second 100 nodes is far shorter than the first 100.
  sim::Simulator sim;
  group::ClusterSimConfig cfg;
  cfg.round_duration = millis(20);
  cfg.gmin = 4;
  cfg.gmax = 8;
  cfg.hc = 3;
  cfg.rwl = 5;
  group::ClusterSim cs(sim, cfg);
  cs.bootstrap(0);
  NodeId next = 1;
  std::uint64_t outstanding = 0;
  auto grow_to = [&](std::size_t target) {
    TimeMicros start = sim.now();
    while (cs.node_count() < target) {
      while (outstanding < cs.group_count()) {
        ++outstanding;
        cs.request_join(next++, [&outstanding] { --outstanding; });
      }
      sim.run_until(sim.now() + millis(100));
    }
    return sim.now() - start;
  };
  DurationMicros first = grow_to(100);
  DurationMicros second = grow_to(200);
  EXPECT_LT(second * 2, first) << "second hundred must arrive over 2x faster";
}

}  // namespace
}  // namespace atum
