// Tests for the Atum core middleware: deployment, the §3.3 API (bootstrap,
// join, leave, broadcast), heartbeat eviction, Byzantine behaviors from the
// evaluation, and the Table 1 parameter helpers.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/atum.h"
#include "core/params.h"

namespace atum::core {
namespace {

Params fast_params(smr::EngineKind kind = smr::EngineKind::kSync) {
  Params p;
  p.hc = 3;
  p.rwl = 5;
  p.gmax = 8;
  p.gmin = 4;
  p.engine = kind;
  p.round_duration = millis(20);
  p.view_change_timeout = millis(500);
  p.heartbeat_period = millis(200);
  p.heartbeat_miss_limit = 3;
  return p;
}

Bytes msg(const std::string& s) { return Bytes(s.begin(), s.end()); }

// ---------------------------------------------------------------------------
// Params / guideline
// ---------------------------------------------------------------------------

TEST(Params, DefaultsValidate) {
  Params p;
  EXPECT_NO_THROW(p.validate());
}

TEST(Params, RejectsBadValues) {
  Params p;
  p.gmin = p.gmax;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = Params{};
  p.hc = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = Params{};
  p.rwl = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = Params{};
  p.round_duration = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Params, GuidelineMonotoneInGroups) {
  EXPECT_LE(guideline_rwl(8, 5), guideline_rwl(8192, 5));
  EXPECT_LE(guideline_rwl(32, 5), guideline_rwl(2048, 5));
}

TEST(Params, GuidelineMonotoneInCycles) {
  EXPECT_GE(guideline_rwl(512, 2), guideline_rwl(512, 10));
}

TEST(Params, GuidelinePaperAnchor) {
  // §3.2: "in a system of roughly 128 vgroups, we set rwl to 9 and hc to 6".
  std::size_t rwl = guideline_rwl(128, 6);
  EXPECT_GE(rwl, 8u);
  EXPECT_LE(rwl, 10u);
}

TEST(Params, TargetGroupSizeLogarithmic) {
  EXPECT_EQ(target_group_size(1024, 4), 40u);  // 4 * log2(1024)
  EXPECT_GT(target_group_size(10000, 4), target_group_size(100, 4));
}

TEST(Params, RecommendedIsConsistent) {
  for (std::size_t n : {50u, 200u, 1000u, 5000u}) {
    Params sync = Params::recommended(n, smr::EngineKind::kSync);
    EXPECT_NO_THROW(sync.validate());
    Params async = Params::recommended(n, smr::EngineKind::kAsync);
    EXPECT_NO_THROW(async.validate());
    // k=7 vs k=4 (§6.1.3): async groups are larger.
    EXPECT_GT(async.gmax, sync.gmax);
  }
}

// ---------------------------------------------------------------------------
// Deployment & broadcast
// ---------------------------------------------------------------------------

struct CoreFixture : ::testing::Test {
  std::unique_ptr<AtumSystem> sys;
  std::map<NodeId, std::vector<net::Payload>> delivered;

  void deploy(std::size_t n, Params p = fast_params(),
              const std::map<NodeId, NodeBehavior>& behaviors = {}) {
    sys = std::make_unique<AtumSystem>(p, net::NetworkConfig::datacenter(), 2024);
    std::vector<NodeId> ids;
    for (NodeId i = 0; i < n; ++i) {
      ids.push_back(i);
      auto it = behaviors.find(i);
      auto& node = sys->add_node(i, it == behaviors.end() ? NodeBehavior::kCorrect : it->second);
      node.set_deliver([this, i](NodeId, const net::Payload& payload) {
        delivered[i].push_back(payload);
      });
    }
    sys->deploy(ids);
  }

  void run_for(DurationMicros d) {
    sys->simulator().run_until(sys->simulator().now() + d);
  }

  std::size_t nodes_with(const Bytes& payload) {
    std::size_t count = 0;
    for (const auto& [n, msgs] : delivered) {
      for (const auto& m : msgs) count += (m == payload);
    }
    return count;
  }
};

TEST_F(CoreFixture, DeployPartitionsIntoBoundedGroups) {
  deploy(30);
  auto groups = sys->group_map();
  EXPECT_GT(groups.size(), 1u);
  std::size_t total = 0;
  for (const auto& [g, members] : groups) {
    EXPECT_GE(members.size(), fast_params().gmin);
    EXPECT_LE(members.size(), fast_params().gmax);
    total += members.size();
  }
  EXPECT_EQ(total, 30u);
}

TEST_F(CoreFixture, DeployedNodesAgreeOnGroupViews) {
  deploy(24);
  auto groups = sys->group_map();
  for (const auto& [g, members] : groups) {
    for (NodeId n : members) {
      EXPECT_EQ(sys->node(n).vgroup().members(), members);
      EXPECT_EQ(sys->node(n).group_id(), g);
    }
  }
}

TEST_F(CoreFixture, BroadcastReachesEveryNode) {
  deploy(24);
  sys->node(0).broadcast(msg("hello-world"));
  run_for(seconds(20));
  EXPECT_EQ(nodes_with(msg("hello-world")), 24u);
}

TEST_F(CoreFixture, BroadcastDeliveredExactlyOnce) {
  deploy(18);
  sys->node(3).broadcast(msg("once"));
  run_for(seconds(20));
  for (const auto& [n, msgs] : delivered) {
    int count = 0;
    for (const auto& m : msgs) count += (m == msg("once"));
    EXPECT_EQ(count, 1) << "node " << n;
  }
}

TEST_F(CoreFixture, FanOutMaterializesFewBuffersAcrossNodes) {
  // Zero-copy invariant, end to end: members of the origin's vgroup each
  // materialize the decided op once (per-node buffers), while members of
  // neighbor vgroups receive slices of the relayers' wire frames — a
  // majority of relayers freeze one frame each, shared by every recipient.
  // So the number of distinct backing buffers across all deliveries is
  // bounded by origin-group size + full-relayer count, strictly below the
  // node count.
  deploy(15);
  sys->node(0).broadcast(Bytes(512, 0xAB));
  run_for(seconds(20));
  std::set<const void*> buffers;
  std::size_t total = 0;
  for (const auto& [n, msgs] : delivered) {
    for (const net::Payload& p : msgs) {
      buffers.insert(p.data());
      ++total;
    }
  }
  EXPECT_EQ(total, 15u);
  EXPECT_LT(buffers.size(), total);
}

TEST_F(CoreFixture, ManyBroadcastersAllDeliver) {
  deploy(18);
  for (NodeId n = 0; n < 6; ++n) sys->node(n).broadcast(msg("m" + std::to_string(n)));
  run_for(seconds(30));
  for (NodeId b = 0; b < 6; ++b) {
    EXPECT_EQ(nodes_with(msg("m" + std::to_string(b))), 18u) << "broadcast " << b;
  }
}

TEST_F(CoreFixture, AsyncEngineBroadcastWorks) {
  deploy(18, fast_params(smr::EngineKind::kAsync));
  sys->node(0).broadcast(msg("async-hello"));
  run_for(seconds(20));
  EXPECT_EQ(nodes_with(msg("async-hello")), 18u);
}

TEST_F(CoreFixture, AsyncIsFasterThanSync) {
  // §6.1.3: Async latencies are much lower (no lock-step rounds).
  auto measure = [&](smr::EngineKind kind) {
    delivered.clear();
    deploy(18, fast_params(kind));
    TimeMicros start = sys->simulator().now();
    sys->node(0).broadcast(msg("timed"));
    while (nodes_with(msg("timed")) < 18 && sys->simulator().now() < start + seconds(60)) {
      sys->simulator().run_until(sys->simulator().now() + millis(10));
    }
    return sys->simulator().now() - start;
  };
  DurationMicros async_lat = measure(smr::EngineKind::kAsync);
  DurationMicros sync_lat = measure(smr::EngineKind::kSync);
  EXPECT_LT(async_lat, sync_lat);
}

TEST_F(CoreFixture, SingleCycleForwardStillDelivers) {
  deploy(24);
  for (NodeId i = 0; i < 24; ++i) {
    sys->node(i).set_forward(overlay::forward_cycles({0}));
  }
  sys->node(1).broadcast(msg("single-cycle"));
  run_for(seconds(60));
  EXPECT_EQ(nodes_with(msg("single-cycle")), 24u);
}

TEST_F(CoreFixture, ForwardNoneStillDeliversViaMandatoryLink) {
  // The unwise forward callback cannot break the deterministic cycle-0 path.
  deploy(18);
  for (NodeId i = 0; i < 18; ++i) sys->node(i).set_forward(overlay::forward_none());
  sys->node(2).broadcast(msg("mandatory"));
  run_for(seconds(120));
  EXPECT_EQ(nodes_with(msg("mandatory")), 18u);
}

// ---------------------------------------------------------------------------
// Bootstrap & join & leave
// ---------------------------------------------------------------------------

TEST_F(CoreFixture, BootstrapSingleNode) {
  sys = std::make_unique<AtumSystem>(fast_params(), net::NetworkConfig::datacenter(), 1);
  auto& n = sys->add_node(0);
  n.bootstrap();
  EXPECT_TRUE(n.joined());
  EXPECT_EQ(n.vgroup().members(), std::vector<NodeId>{0});
}

TEST_F(CoreFixture, JoinGrowsSingletonSystem) {
  sys = std::make_unique<AtumSystem>(fast_params(), net::NetworkConfig::datacenter(), 2);
  sys->add_node(0).bootstrap();
  auto& j = sys->add_node(1);
  j.join(0);
  run_for(seconds(30));
  ASSERT_TRUE(j.joined());
  EXPECT_EQ(j.vgroup().members(), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(sys->node(0).vgroup().members(), (std::vector<NodeId>{0, 1}));
}

TEST_F(CoreFixture, SequentialJoinsAllLand) {
  sys = std::make_unique<AtumSystem>(fast_params(), net::NetworkConfig::datacenter(), 3);
  sys->add_node(0).bootstrap();
  for (NodeId n = 1; n <= 6; ++n) {
    sys->add_node(n).join(n - 1);  // each joins via the previous node
    run_for(seconds(40));
    ASSERT_TRUE(sys->node(n).joined()) << "node " << n;
  }
  // All six in one group (below gmax=8), with consistent views.
  auto groups = sys->group_map();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups.begin()->second.size(), 7u);
}

TEST_F(CoreFixture, JoinedNodeReceivesLaterBroadcasts) {
  sys = std::make_unique<AtumSystem>(fast_params(), net::NetworkConfig::datacenter(), 4);
  sys->add_node(0).bootstrap();
  auto& j = sys->add_node(1);
  j.set_deliver([this](NodeId, const net::Payload& p) { delivered[1].push_back(p); });
  j.join(0);
  run_for(seconds(30));
  ASSERT_TRUE(j.joined());
  sys->node(0).broadcast(msg("to-the-newcomer"));
  run_for(seconds(20));
  EXPECT_EQ(delivered[1].size(), 1u);
}

TEST_F(CoreFixture, JoinIntoDeployedSystem) {
  deploy(12);
  auto& j = sys->add_node(100);
  j.join(0);
  run_for(seconds(60));
  ASSERT_TRUE(j.joined());
  // The joiner landed in some vgroup whose members all agree it is there.
  auto groups = sys->group_map();
  bool found = false;
  for (const auto& [g, members] : groups) {
    if (std::find(members.begin(), members.end(), 100u) != members.end()) {
      found = true;
      for (NodeId m : members) {
        EXPECT_TRUE(sys->node(m).vgroup().has_member(100));
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(CoreFixture, LeaveShrinksGroup) {
  deploy(12);
  auto groups = sys->group_map();
  NodeId leaver = groups.begin()->second.front();
  GroupId g = groups.begin()->first;
  std::size_t before = groups.begin()->second.size();
  sys->node(leaver).leave();
  run_for(seconds(30));
  EXPECT_FALSE(sys->node(leaver).joined());
  auto after = sys->group_map();
  EXPECT_EQ(after[g].size(), before - 1);
}

TEST_F(CoreFixture, BroadcastStillWorksAfterLeave) {
  deploy(18);
  sys->node(5).leave();
  run_for(seconds(30));
  sys->node(0).broadcast(msg("post-leave"));
  run_for(seconds(30));
  EXPECT_EQ(nodes_with(msg("post-leave")), 17u);
}

// ---------------------------------------------------------------------------
// Heartbeats & eviction
// ---------------------------------------------------------------------------

TEST_F(CoreFixture, UnresponsiveNodeIsEvicted) {
  deploy(12);
  auto groups = sys->group_map();
  NodeId victim = groups.begin()->second.front();
  std::vector<NodeId> peers = groups.begin()->second;
  std::size_t before = peers.size();
  sys->network().isolate(victim, true);  // crashes silently
  run_for(seconds(20));                  // several heartbeat periods
  // Every *correct* member must have reconfigured the victim out. (The
  // victim itself is partitioned and keeps its stale view.)
  for (NodeId m : peers) {
    if (m == victim) continue;
    EXPECT_FALSE(sys->node(m).vgroup().has_member(victim)) << "member " << m;
    EXPECT_EQ(sys->node(m).vgroup().size(), before - 1);
  }
}

TEST_F(CoreFixture, ByzantineEvictorCannotRemoveCorrectNodes) {
  // §6.1.3: Byzantine nodes propose evicting all correct peers; the f+1
  // accusation quorum makes this harmless.
  std::map<NodeId, NodeBehavior> behaviors{{1, NodeBehavior::kByzantineEvictor}};
  deploy(12, fast_params(), behaviors);
  auto before = sys->group_map();
  run_for(seconds(30));
  auto after = sys->group_map();
  std::size_t total = 0;
  for (const auto& [g, members] : after) total += members.size();
  EXPECT_EQ(total, 12u) << "no correct node may be evicted";
}

TEST_F(CoreFixture, ByzantineNodesDoNotStopBroadcast) {
  // 2 of 18 nodes Byzantine (heartbeat-only): every correct node delivers.
  std::map<NodeId, NodeBehavior> behaviors{{4, NodeBehavior::kByzantineEvictor},
                                           {11, NodeBehavior::kByzantineEvictor}};
  deploy(18, fast_params(), behaviors);
  sys->node(0).broadcast(msg("despite-byz"));
  run_for(seconds(30));
  EXPECT_EQ(nodes_with(msg("despite-byz")), 16u);  // 18 - 2 byz (deliver disabled)
}

TEST_F(CoreFixture, SilentNodesDoNotStopBroadcastAsync) {
  std::map<NodeId, NodeBehavior> behaviors{{2, NodeBehavior::kSilent}};
  deploy(18, fast_params(smr::EngineKind::kAsync), behaviors);
  sys->node(0).broadcast(msg("quiet-faults"));
  run_for(seconds(30));
  EXPECT_EQ(nodes_with(msg("quiet-faults")), 17u);
}

// ---------------------------------------------------------------------------
// API misuse
// ---------------------------------------------------------------------------

TEST_F(CoreFixture, BroadcastBeforeJoinThrows) {
  sys = std::make_unique<AtumSystem>(fast_params(), net::NetworkConfig::datacenter(), 9);
  auto& n = sys->add_node(0);
  EXPECT_THROW(n.broadcast(msg("x")), std::logic_error);
}

TEST_F(CoreFixture, DoubleJoinThrows) {
  sys = std::make_unique<AtumSystem>(fast_params(), net::NetworkConfig::datacenter(), 10);
  sys->add_node(0).bootstrap();
  EXPECT_THROW(sys->node(0).join(0), std::logic_error);
}

TEST_F(CoreFixture, UnknownNodeLookupThrows) {
  sys = std::make_unique<AtumSystem>(fast_params(), net::NetworkConfig::datacenter(), 11);
  EXPECT_THROW(sys->node(42), std::invalid_argument);
}

// Both engines through the same broadcast scenario.
class CoreEngineSweep : public ::testing::TestWithParam<smr::EngineKind> {};

TEST_P(CoreEngineSweep, BroadcastAtModerateScale) {
  Params p = fast_params(GetParam());
  AtumSystem sys(p, net::NetworkConfig::datacenter(), 77);
  std::vector<NodeId> ids;
  std::map<NodeId, int> got;
  for (NodeId i = 0; i < 40; ++i) {
    ids.push_back(i);
    sys.add_node(i).set_deliver([&got, i](NodeId, const net::Payload&) { ++got[i]; });
  }
  sys.deploy(ids);
  sys.node(7).broadcast(Bytes{1, 2, 3});
  sys.simulator().run_until(seconds(60));
  std::size_t reached = 0;
  for (const auto& [n, c] : got) reached += (c == 1);
  EXPECT_EQ(reached, 40u);
}

INSTANTIATE_TEST_SUITE_P(Engines, CoreEngineSweep,
                         ::testing::Values(smr::EngineKind::kSync, smr::EngineKind::kAsync),
                         [](const ::testing::TestParamInfo<smr::EngineKind>& info) {
                           return info.param == smr::EngineKind::kSync ? "Sync" : "Async";
                         });

}  // namespace
}  // namespace atum::core
