// Tests for the discrete-event simulator: ordering, cancellation, periodic
// timers, determinism.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "net/network.h"
#include "sim/simulator.h"

namespace atum::sim {
namespace {

// A handle the simulator never issued: a far-future generation on slot 7.
EventId make_unknown_id(int round) {
  return (static_cast<EventId>(0xFFFF0000u + static_cast<std::uint32_t>(round)) << 32) | 7u;
}

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.empty());
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Simulator, FifoAmongEqualTimestamps) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.schedule_at(5, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  TimeMicros seen = -1;
  s.schedule_at(100, [&] { s.schedule_after(50, [&] { seen = s.now(); }); });
  s.run();
  EXPECT_EQ(seen, 150);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator s;
  EXPECT_THROW(s.schedule_after(-1, [] {}), std::invalid_argument);
}

TEST(Simulator, PastDeadlineClampsToNow) {
  Simulator s;
  TimeMicros seen = -1;
  s.schedule_at(100, [&] {
    s.schedule_at(5, [&] { seen = s.now(); });  // 5 < now=100
  });
  s.run();
  EXPECT_EQ(seen, 100);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  EventId id = s.schedule_at(10, [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator s;
  EventId id = s.schedule_at(1, [] {});
  s.run();
  s.cancel(id);  // must not blow up or affect future events
  bool fired = false;
  s.schedule_at(2, [&] { fired = true; });
  s.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  std::vector<TimeMicros> fired;
  for (TimeMicros t : {10, 20, 30, 40}) s.schedule_at(t, [&fired, &s] { fired.push_back(s.now()); });
  s.run_until(25);
  EXPECT_EQ(fired, (std::vector<TimeMicros>{10, 20}));
  EXPECT_EQ(s.now(), 25);
  s.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulator, RunUntilInclusive) {
  Simulator s;
  bool fired = false;
  s.schedule_at(25, [&] { fired = true; });
  s.run_until(25);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunWithLimitStopsEarly) {
  Simulator s;
  int count = 0;
  for (int i = 0; i < 100; ++i) s.schedule_at(i, [&] { ++count; });
  EXPECT_EQ(s.run(10), 10u);
  EXPECT_EQ(count, 10);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule_after(1, recurse);
  };
  s.schedule_at(0, recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), 4);
}

TEST(Simulator, ExecutedEventsCounter) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 7u);
}

TEST(PeriodicTimer, FiresRepeatedly) {
  Simulator s;
  int fires = 0;
  PeriodicTimer t(s, 10, [&] { ++fires; });
  s.run_until(55);
  EXPECT_EQ(fires, 5);  // at 10,20,30,40,50
  t.stop();
}

TEST(PeriodicTimer, StopHaltsFiring) {
  Simulator s;
  int fires = 0;
  PeriodicTimer t(s, 10, [&] { ++fires; });
  s.run_until(25);
  t.stop();
  s.run_until(200);
  EXPECT_EQ(fires, 2);
}

TEST(PeriodicTimer, StopFromInsideCallback) {
  Simulator s;
  int fires = 0;
  PeriodicTimer t(s, 10, [&] {
    if (++fires == 3) t.stop();
  });
  s.run_until(500);
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(t.running());
}

TEST(PeriodicTimer, DestructorCancels) {
  Simulator s;
  int fires = 0;
  {
    PeriodicTimer t(s, 10, [&] { ++fires; });
    s.run_until(15);
  }
  s.run_until(100);
  EXPECT_EQ(fires, 1);
}

TEST(PeriodicTimer, RejectsNonPositivePeriod) {
  Simulator s;
  EXPECT_THROW(PeriodicTimer(s, 0, [] {}), std::invalid_argument);
}

TEST(Simulator, LiveEventsStaysExactUnderCancel) {
  Simulator s;
  EXPECT_EQ(s.live_events(), 0u);
  EventId a = s.schedule_at(10, [] {});
  EventId b = s.schedule_at(20, [] {});
  EXPECT_EQ(s.live_events(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.live_events(), 1u);
  s.cancel(a);  // double cancel: no-op, no underflow
  EXPECT_EQ(s.live_events(), 1u);
  s.run();
  EXPECT_EQ(s.live_events(), 0u);
  s.cancel(b);               // cancel after fire: no-op
  s.cancel(0);               // reserved null handle
  s.cancel(0xdeadbeefULL);   // handle never issued
  EXPECT_EQ(s.live_events(), 0u);
  EXPECT_TRUE(s.empty());
  // The engine still works afterwards.
  bool fired = false;
  s.schedule_after(1, [&] { fired = true; });
  EXPECT_EQ(s.live_events(), 1u);
  s.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelledFiredAndUnknownIdsDoNotAccumulate) {
  // Seed bug: cancelling fired/unknown ids grew the tombstone set forever
  // and made live_events() (queue size minus tombstones) underflow.
  Simulator s;
  for (int round = 0; round < 1000; ++round) {
    EventId id = s.schedule_at(round, [] {});
    s.run();
    s.cancel(id);                                   // already fired
    s.cancel(make_unknown_id(round));               // never issued
    EXPECT_EQ(s.live_events(), 0u);
    EXPECT_TRUE(s.empty());
  }
  EXPECT_EQ(s.heap_size(), 0u);
  EXPECT_LE(s.slot_count(), 4u);  // arena tracks peak concurrency, not history
}

TEST(Simulator, MemoryBoundedUnderScheduleCancelChurn) {
  // 1M schedule/cancel cycles with a rolling window of pending events — the
  // heartbeat-timeout pattern of a 100k-node run. The seed's tombstone set
  // grew with every cancel; the slot arena and heap must stay proportional
  // to the window, not to the cycle count.
  Simulator s;
  constexpr std::size_t kWindow = 1024;
  std::vector<EventId> pending;
  pending.reserve(kWindow);
  for (std::size_t i = 0; i < 1'000'000; ++i) {
    if (pending.size() == kWindow) {
      s.cancel(pending[i % kWindow]);
      pending[i % kWindow] = s.schedule_at(static_cast<TimeMicros>(i + 1'000'000), [] {});
    } else {
      pending.push_back(s.schedule_at(static_cast<TimeMicros>(i + 1'000'000), [] {}));
    }
    ASSERT_LE(s.live_events(), kWindow);
    ASSERT_LE(s.slot_count(), 2 * kWindow);
    ASSERT_LE(s.heap_size(), 4 * kWindow);  // stale entries swept by compaction
  }
  EXPECT_EQ(s.live_events(), kWindow);
  for (EventId id : pending) s.cancel(id);
  EXPECT_EQ(s.live_events(), 0u);
  s.run();
  EXPECT_EQ(s.executed_events(), 0u);  // everything was cancelled in time
}

TEST(Simulator, SlotReuseDoesNotResurrectOldHandles) {
  Simulator s;
  bool first_fired = false;
  bool second_fired = false;
  EventId a = s.schedule_at(10, [&] { first_fired = true; });
  s.cancel(a);
  // The slot is recycled with a new generation; the old handle must not be
  // able to cancel the new occupant.
  EventId b = s.schedule_at(20, [&] { second_fired = true; });
  s.cancel(a);
  s.run();
  EXPECT_FALSE(first_fired);
  EXPECT_TRUE(second_fired);
  EXPECT_NE(a, b);
}

TEST(Simulator, CancelFromInsideEventHandler) {
  Simulator s;
  bool victim_fired = false;
  EventId victim = s.schedule_at(20, [&] { victim_fired = true; });
  s.schedule_at(10, [&] { s.cancel(victim); });
  s.run();
  EXPECT_FALSE(victim_fired);
  EXPECT_EQ(s.live_events(), 0u);
}

TEST(Simulator, RunUntilSkipsCancelledEvents) {
  Simulator s;
  std::vector<int> fired;
  s.schedule_at(10, [&] { fired.push_back(1); });
  EventId mid = s.schedule_at(20, [&] { fired.push_back(2); });
  s.schedule_at(30, [&] { fired.push_back(3); });
  s.cancel(mid);
  EXPECT_EQ(s.run_until(30), 2u);
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(Simulator, DeterministicInterleaving) {
  // Two identical runs produce identical event orders.
  auto run_once = [] {
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      s.schedule_at(i % 7, [&order, i] { order.push_back(i); });
    }
    s.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------------
// EventFn small-buffer storage
// ---------------------------------------------------------------------------

TEST(EventFn, DeliveryClosureStaysInline) {
  // The shape SimNetwork::send schedules per message: a network pointer
  // plus the Message (with its refcounted sliced Payload). This closure
  // defines EventFn::kInlineCapacity — if it ever spills to the heap the
  // per-message allocation the SBO exists to remove is back.
  net::SimNetwork* network = nullptr;
  net::Message m{1, 2, net::MsgType::kAppData, net::Payload(Bytes(256, 7))};
  EventFn fn([network, m = std::move(m)]() { (void)network; });
  EXPECT_TRUE(fn.stores_inline());
}

TEST(EventFn, InlineClosureDestroysCaptures) {
  auto token = std::make_shared<int>(1);
  {
    EventFn fn([token] {});
    EXPECT_TRUE(fn.stores_inline());
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);  // inline storage ran the destructor
}

TEST(EventFn, HeapFallbackForOversizedClosures) {
  auto token = std::make_shared<int>(42);
  std::array<std::uint64_t, 16> big{};
  int fired = 0;
  EventFn fn([token, big, &fired] {
    fired += static_cast<int>(big[0]) + 1;
  });
  EXPECT_TRUE(static_cast<bool>(fn));
  EXPECT_FALSE(fn.stores_inline());
  fn();
  EXPECT_EQ(fired, 1);
  fn = nullptr;  // releases the heap callable
  EXPECT_EQ(token.use_count(), 1);
}

TEST(EventFn, MoveTransfersOwnership) {
  int fired = 0;
  EventFn a([&fired] { ++fired; });
  EventFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT: moved-from state is empty
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(fired, 1);
}

TEST(EventFn, SharedPayloadClosureMovesWithoutCopyingTheBuffer) {
  net::Payload payload(Bytes(4096, 0xAB));
  EXPECT_EQ(payload.use_count(), 1);
  EventFn fn([p = payload]() { (void)p; });
  EXPECT_TRUE(fn.stores_inline());
  EXPECT_EQ(payload.use_count(), 2);  // one shared ref, not a 4 KiB copy
  EventFn moved = std::move(fn);
  EXPECT_EQ(payload.use_count(), 2);  // relocation moved the ref, not the buffer
  moved = nullptr;
  EXPECT_EQ(payload.use_count(), 1);
}

TEST(EventFn, EmptyInvocationThrowsLikeStdFunction) {
  EventFn fn;
  EXPECT_THROW(fn(), std::bad_function_call);
  EventFn null_fn(nullptr);
  EXPECT_THROW(null_fn(), std::bad_function_call);
}

TEST(Simulator, ThrowingHandlerDoesNotLeakTheSlot) {
  Simulator s;
  auto token = std::make_shared<int>(7);
  s.schedule_at(1, [token] { throw std::runtime_error("handler failure"); });
  EXPECT_THROW(s.step(), std::runtime_error);
  // The slot (and the closure's captures) must have been recycled despite
  // the exception; the simulator stays usable.
  EXPECT_EQ(token.use_count(), 1);
  bool fired = false;
  s.schedule_at(2, [&fired] { fired = true; });
  s.run();
  EXPECT_TRUE(fired);
  EXPECT_LE(s.slot_count(), 1u);  // the recycled slot was reused
}

TEST(Simulator, EventsScheduledFromInsideACallbackFire) {
  // Closures execute in place in the chunked arena; a callback scheduling
  // enough events to grow the arena must not invalidate itself.
  Simulator s;
  int fired = 0;
  s.schedule_at(1, [&] {
    for (int i = 0; i < 2000; ++i) {
      s.schedule_at(2, [&fired] { ++fired; });
    }
  });
  s.run();
  EXPECT_EQ(fired, 2000);
}

}  // namespace
}  // namespace atum::sim

