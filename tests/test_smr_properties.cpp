// Multi-seed property harness for the PBFT checkpoint window and the
// reconfiguration chain: every test is parameterized over 16 seeds, each
// seed driving a different randomized schedule of op bursts, replica
// isolations (never more than f at once), silent-fault windows and heal
// points, crossing many checkpoint boundaries. The invariants, not the
// schedules, are the spec:
//   * agreement  — ops common to two correct replicas' decide streams
//     appear in the same relative order, and no replica ever decides an op
//     twice (a checkpoint install may skip a middle segment, so streams are
//     gapped subsequences of one total order, not contiguous suffixes);
//   * accounting — skipped (reported by the install handler) + decided
//     converges to the same total at every replica: nothing decided is
//     lost, nothing is double-counted across state transfer;
//   * bounded memory — the executed history (the pinned-frame set) never
//     exceeds watermark_window at any replica, at any point we sample;
//   * chain agreement — under random membership churn (including joiners
//     resumed mid-chain from an EpochState, the snapshot path), all active
//     members end on the same epoch-hash chain head.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "crypto/keys.h"
#include "crypto/sha256.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "smr/pbft.h"
#include "smr/reconfig.h"

namespace atum::smr {
namespace {

Bytes op_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

constexpr int kSeeds = 16;

// Every proposed op carries a globally unique byte string, so decide
// streams can be compared as sequences of op ids. Common-op order check:
// ops present in both streams must appear in the same relative order.
void expect_same_relative_order(const std::vector<std::string>& a,
                                const std::vector<std::string>& b, const std::string& what) {
  std::map<std::string, std::size_t> pos_a;
  for (std::size_t i = 0; i < a.size(); ++i) pos_a[a[i]] = i;
  std::size_t last = 0;
  bool first = true;
  for (const auto& op : b) {
    auto it = pos_a.find(op);
    if (it == pos_a.end()) continue;
    if (!first) {
      ASSERT_GT(it->second, last) << what << ": common ops decided in different orders";
    }
    last = it->second;
    first = false;
  }
}

void expect_no_duplicates(const std::vector<std::string>& stream, const std::string& what) {
  std::map<std::string, int> counts;
  for (const auto& op : stream) ++counts[op];
  for (const auto& [op, c] : counts) {
    EXPECT_EQ(c, 1) << what << ": op '" << op << "' decided " << c << " times";
  }
}

// ---------------------------------------------------------------------------
// Suite 1: one PBFT instance under randomized faults and partitions.
// ---------------------------------------------------------------------------

struct PropertyGroup {
  sim::Simulator sim;
  net::SimNetwork net;
  crypto::KeyStore keys{101};
  GroupConfig cfg;
  std::vector<std::unique_ptr<PbftSmr>> replicas;
  // Per replica: decided op stream and ops skipped over by installs.
  std::map<NodeId, std::vector<std::string>> decided;
  std::map<NodeId, std::uint64_t> skipped;

  PropertyGroup(std::size_t g, std::uint64_t net_seed, PbftOptions opt)
      : net(sim, net::NetworkConfig::datacenter(), net_seed) {
    for (NodeId n = 0; n < g; ++n) cfg.members.push_back(n);
    for (NodeId n = 0; n < g; ++n) {
      auto r = std::make_unique<PbftSmr>(net::Transport(net, n), cfg, keys, opt,
                                         PbftFaultMode::kCorrect);
      r->set_decide_handler([this, n](std::uint64_t, NodeId, const net::Payload& op) {
        Bytes b = op.to_bytes();
        decided[n].push_back(std::string(b.begin(), b.end()));
      });
      r->set_install_handler([this, n](std::uint64_t, std::uint64_t, std::uint64_t from_ops,
                                       std::uint64_t to_ops) { skipped[n] += to_ops - from_ops; });
      replicas.push_back(std::move(r));
    }
  }

  PbftSmr& at(std::size_t i) { return *replicas[i]; }
  void run_for(DurationMicros d) { sim.run_until(sim.now() + d); }

  // skipped + decided: the number of group ops this replica accounts for.
  std::uint64_t accounted(NodeId n) { return skipped[n] + decided[n].size(); }

  void check_window_bound(std::uint64_t window, const char* when) {
    for (NodeId n = 0; n < replicas.size(); ++n) {
      ASSERT_LE(at(n).history_size(), window)
          << "replica " << n << " exceeded the head window " << when;
    }
  }
};

class PbftRandomSchedule : public ::testing::TestWithParam<int> {};

TEST_P(PbftRandomSchedule, InvariantsHoldAcrossChurnPartitionsAndCheckpoints) {
  Rng rng(0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(GetParam()));
  const std::size_t g = rng.chance(0.5) ? 4 : 7;
  const std::size_t f = async_max_faults(g);

  PbftOptions opt;
  opt.checkpoint_interval = 4;
  opt.watermark_window = 16;
  opt.batch_max_ops = rng.chance(0.5) ? 1 : 4;
  opt.view_change_timeout = millis(500);
  PropertyGroup grp(g, 1000 + static_cast<std::uint64_t>(GetParam()), opt);

  std::vector<NodeId> isolated;   // currently partitioned replicas
  std::vector<NodeId> silenced;   // currently silent-faulted replicas
  int proposed = 0;

  const int steps = 30;
  for (int step = 0; step < steps; ++step) {
    switch (rng.next_below(5)) {
      case 0:
      case 1: {  // op burst from random proposers
        int burst = static_cast<int>(rng.next_in(1, 8));
        for (int i = 0; i < burst; ++i) {
          auto proposer = static_cast<std::size_t>(rng.next_below(g));
          grp.at(proposer).propose(op_bytes("op" + std::to_string(proposed++)));
        }
        break;
      }
      case 2: {  // partition one more replica, staying within f total faults
        if (isolated.size() + silenced.size() < f) {
          auto victim = static_cast<NodeId>(rng.next_below(g));
          if (std::find(isolated.begin(), isolated.end(), victim) == isolated.end() &&
              std::find(silenced.begin(), silenced.end(), victim) == silenced.end()) {
            grp.net.isolate(victim, true);
            isolated.push_back(victim);
          }
        }
        break;
      }
      case 3: {  // silent-fault one more replica, staying within f
        if (isolated.size() + silenced.size() < f) {
          auto victim = static_cast<NodeId>(rng.next_below(g));
          if (std::find(isolated.begin(), isolated.end(), victim) == isolated.end() &&
              std::find(silenced.begin(), silenced.end(), victim) == silenced.end()) {
            grp.at(victim).set_fault(PbftFaultMode::kSilent);
            silenced.push_back(victim);
          }
        }
        break;
      }
      case 4: {  // heal everything
        for (NodeId n : isolated) grp.net.isolate(n, false);
        isolated.clear();
        for (NodeId n : silenced) grp.at(n).set_fault(PbftFaultMode::kCorrect);
        silenced.clear();
        break;
      }
    }
    grp.run_for(millis(static_cast<std::int64_t>(rng.next_in(50, 1500))));
    grp.check_window_bound(opt.watermark_window, "mid-schedule");
  }

  // Heal and settle. Convergence needs live traffic: a laggard only fetches
  // state when fresh checkpoint votes reveal its gap, so keep proposing
  // until every replica accounts for the same total (bounded rounds).
  for (NodeId n : isolated) grp.net.isolate(n, false);
  for (NodeId n : silenced) grp.at(n).set_fault(PbftFaultMode::kCorrect);

  // Drive the frontier across the acceptance floor first: with op batching,
  // a light schedule can decide all its ops in a handful of seqs, so the
  // soak would end without crossing the required checkpoint boundaries.
  for (int fill = 0; fill < 40; ++fill) {
    std::uint64_t best = 0;
    for (NodeId n = 0; n < g; ++n) best = std::max(best, grp.at(n).stable_seq());
    if (best >= 4 * opt.checkpoint_interval) break;
    grp.at(0).propose(op_bytes("fill" + std::to_string(fill)));
    grp.run_for(millis(500));
  }

  int settle = 0;
  for (int round = 0; round < 16; ++round) {
    grp.at(0).propose(op_bytes("settle" + std::to_string(settle++)));
    grp.run_for(seconds(10));
    bool converged = grp.accounted(0) > 0;
    for (NodeId n = 1; n < g; ++n) converged &= (grp.accounted(n) == grp.accounted(0));
    if (converged) break;
  }

  // Accounting: every replica converged on one total — no decided op lost
  // or double-counted across state transfer.
  for (NodeId n = 1; n < g; ++n) {
    EXPECT_EQ(grp.accounted(n), grp.accounted(0))
        << "replica " << n << " lost or duplicated ops (skipped " << grp.skipped[n]
        << ", decided " << grp.decided[n].size() << "; seed " << GetParam() << ")";
  }

  // Agreement: no duplicates within any stream; common ops in the same
  // relative order across every replica pair.
  for (NodeId n = 0; n < g; ++n) {
    expect_no_duplicates(grp.decided[n], "replica " + std::to_string(n));
  }
  for (NodeId a = 0; a < g; ++a) {
    for (NodeId b = a + 1; b < g; ++b) {
      expect_same_relative_order(grp.decided[a], grp.decided[b],
                                 "replicas " + std::to_string(a) + "/" + std::to_string(b) +
                                     " (seed " + std::to_string(GetParam()) + ")");
    }
  }

  grp.check_window_bound(opt.watermark_window, "after settle");
  // The schedule really crossed checkpoint boundaries (acceptance floor).
  std::uint64_t best_stable = 0;
  for (NodeId n = 0; n < g; ++n) best_stable = std::max(best_stable, grp.at(n).stable_seq());
  EXPECT_GE(best_stable, 4 * opt.checkpoint_interval)
      << "schedule too light to exercise checkpoints (seed " << GetParam() << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PbftRandomSchedule, ::testing::Range(0, kSeeds));

// ---------------------------------------------------------------------------
// Suite 2: reconfiguration churn — chain agreement across random epochs.
// ---------------------------------------------------------------------------

class ReconfigRandomChurn : public ::testing::TestWithParam<int> {};

TEST_P(ReconfigRandomChurn, MembersAgreeOnChainHeadAndDecisions) {
  Rng rng(0xc0ffee ^ (static_cast<std::uint64_t>(GetParam()) << 32));
  sim::Simulator sim;
  net::SimNetwork net(sim, net::NetworkConfig::datacenter(),
                      2000 + static_cast<std::uint64_t>(GetParam()));
  crypto::KeyStore keys{43};
  EngineOptions opt;
  opt.kind = EngineKind::kAsync;
  opt.pbft.view_change_timeout = millis(500);
  opt.pbft.checkpoint_interval = 4;
  opt.pbft.watermark_window = 16;

  // Pool of 7 node ids; the live config floats between 4 and 6 members.
  // A node outside the current config cannot track the chain (each epoch is
  // a fresh instance with a fresh tag), so joiners are created on demand,
  // resumed from a live member's EpochState — exactly what the join
  // snapshot does at the core layer.
  constexpr NodeId kPool = 7;
  GroupConfig cfg;
  cfg.members = {0, 1, 2, 3};
  std::map<NodeId, std::unique_ptr<ReconfigurableSmr>> nodes;
  std::map<NodeId, std::vector<std::string>> decided;
  auto spawn = [&](NodeId n, const GroupConfig& at_cfg, std::optional<EpochState> resume) {
    nodes[n] = std::make_unique<ReconfigurableSmr>(net, n, at_cfg, keys, opt, std::move(resume));
    nodes[n]->set_decide_handler([&decided, n](std::uint64_t, NodeId, const net::Payload& op) {
      Bytes b = op.to_bytes();
      decided[n].push_back(std::string(b.begin(), b.end()));
    });
  };
  for (NodeId n : cfg.members) spawn(n, cfg, std::nullopt);

  int proposed = 0;
  std::vector<NodeId> live = cfg.members;
  for (int step = 0; step < 10; ++step) {
    NodeId anchor = live[0];
    if (rng.chance(0.5) && live.size() < 6) {
      // Grow: pick an outside pool id, hand it the anchor's chain position
      // (the simulated join snapshot), then propose the config admitting it.
      std::vector<NodeId> outside;
      for (NodeId n = 0; n < kPool; ++n) {
        if (std::find(live.begin(), live.end(), n) == live.end()) outside.push_back(n);
      }
      NodeId add = outside[rng.next_below(outside.size())];
      live.push_back(add);
      std::sort(live.begin(), live.end());
      GroupConfig next;
      next.members = live;
      nodes[anchor]->propose_reconfig(next);
      sim.run_until(sim.now() + seconds(2));
      // The join snapshot is cut AFTER the switch (core/atum.cpp sends
      // state to newly admitted members once the config lands), so the
      // joiner starts as a member of the new instance, resumed at the new
      // chain position — never as a passive observer of the dying one.
      EpochState resume{nodes[anchor]->epoch(), nodes[anchor]->epoch_hash()};
      spawn(add, nodes[anchor]->config(), resume);
    } else if (live.size() > 4) {
      // Shrink: retire a random member; a survivor proposes.
      std::size_t idx = rng.next_below(live.size());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      GroupConfig next;
      next.members = live;
      nodes[live[0]]->propose_reconfig(next);
    }
    int burst = static_cast<int>(rng.next_in(0, 3));
    for (int i = 0; i < burst; ++i) {
      NodeId proposer = live[rng.next_below(live.size())];
      nodes[proposer]->propose(op_bytes("op" + std::to_string(proposed++)));
    }
    sim.run_until(sim.now() + seconds(5));
  }
  sim.run_until(sim.now() + seconds(15));

  // Chain agreement: every member of the final config is active and shares
  // the chain head, the epoch number, and the configuration.
  NodeId anchor = live[0];
  for (NodeId n : live) {
    ASSERT_TRUE(nodes[n]->active()) << "final member " << n << " inactive (seed "
                                    << GetParam() << ")";
    EXPECT_EQ(nodes[n]->epoch_hash(), nodes[anchor]->epoch_hash())
        << "node " << n << " forked the chain (seed " << GetParam() << ")";
    EXPECT_EQ(nodes[n]->epoch(), nodes[anchor]->epoch()) << "node " << n;
    EXPECT_EQ(nodes[n]->config().members, live) << "node " << n;
  }
  EXPECT_GE(nodes[anchor]->epoch(), 1u) << "schedule produced no reconfiguration";

  // Every node reconfigured out (and not re-admitted) must have learned of
  // its removal: no zombies among non-members.
  for (NodeId n = 0; n < kPool; ++n) {
    if (!nodes.count(n) || std::find(live.begin(), live.end(), n) != live.end()) continue;
    EXPECT_FALSE(nodes[n]->active()) << "removed node " << n << " is a zombie (seed "
                                     << GetParam() << ")";
  }

  // Decision agreement: unique op ids; no node decides an op twice, and
  // any two nodes decide common ops in the same relative order (joiners
  // and removed nodes see windows of the total order).
  for (NodeId n = 0; n < kPool; ++n) {
    if (!nodes.count(n)) continue;
    expect_no_duplicates(decided[n], "node " + std::to_string(n));
  }
  for (NodeId a = 0; a < kPool; ++a) {
    for (NodeId b = a + 1; b < kPool; ++b) {
      if (!nodes.count(a) || !nodes.count(b)) continue;
      expect_same_relative_order(decided[a], decided[b],
                                 "nodes " + std::to_string(a) + "/" + std::to_string(b) +
                                     " (seed " + std::to_string(GetParam()) + ")");
    }
  }

  // Liveness of the final configuration: fresh traffic decides everywhere.
  nodes[anchor]->propose(op_bytes("final-probe"));
  sim.run_until(sim.now() + seconds(5));
  for (NodeId n : live) {
    ASSERT_FALSE(decided[n].empty()) << "node " << n;
    EXPECT_EQ(decided[n].back(), "final-probe") << "node " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReconfigRandomChurn, ::testing::Range(0, kSeeds));

}  // namespace
}  // namespace atum::smr
