// Edge cases of PBFT request batching: deadline vs size-bound flushes, the
// byte bound splitting a burst, view changes that strand a buffered batch,
// an equivocating primary sending conflicting BATCHES, and state transfer
// of a batched exec history to a head-gap replica. The happy paths (order,
// faults, checkpoints) live in test_smr_async.cpp; this file pins down the
// seams batching added.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/serde.h"
#include "crypto/keys.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "smr/pbft.h"

namespace atum::smr {
namespace {

Bytes op_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

struct BatchGroup {
  sim::Simulator sim;
  net::SimNetwork net{sim, net::NetworkConfig::datacenter(), 4242};
  crypto::KeyStore keys{11};
  GroupConfig cfg;
  std::vector<std::unique_ptr<PbftSmr>> replicas;
  std::map<NodeId, std::vector<std::pair<NodeId, Bytes>>> decided;

  explicit BatchGroup(std::size_t g, PbftOptions opt = {},
                      std::vector<std::pair<std::size_t, PbftFaultMode>> faults = {}) {
    for (NodeId n = 0; n < g; ++n) cfg.members.push_back(n);
    for (NodeId n = 0; n < g; ++n) {
      PbftFaultMode mode = PbftFaultMode::kCorrect;
      for (auto [idx, m] : faults) {
        if (idx == n) mode = m;
      }
      auto r = std::make_unique<PbftSmr>(net::Transport(net, n), cfg, keys, opt, mode);
      r->set_decide_handler([this, n](std::uint64_t, NodeId origin, const net::Payload& op) {
        decided[n].emplace_back(origin, op.to_bytes());
      });
      replicas.push_back(std::move(r));
    }
  }

  PbftSmr& at(std::size_t i) { return *replicas[i]; }
  void run_for(DurationMicros d) { sim.run_until(sim.now() + d); }
};

// A partial batch (fewer ops than batch_max_ops) must not wait forever: the
// flush deadline fires and the whole buffer goes out as ONE sequence.
TEST(PbftBatching, DeadlineFlushesPartialBatchAsOneSeq) {
  PbftOptions opt;
  opt.batch_max_ops = 16;
  opt.batch_flush_delay = millis(5);
  BatchGroup g(4, opt);
  TimeMicros first_decide = -1;
  g.at(1).set_decide_handler([&](std::uint64_t, NodeId, const net::Payload&) {
    if (first_decide < 0) first_decide = g.sim.now();
  });
  const TimeMicros t0 = g.sim.now();
  for (int i = 0; i < 3; ++i) g.at(0).propose(op_bytes("op" + std::to_string(i)));
  g.run_for(seconds(1));
  ASSERT_EQ(g.decided[0].size(), 3u);
  // One seq for all three ops (quorum amortization actually happened)...
  EXPECT_EQ(g.at(0).batches_executed(), 1u);
  // ...and the flush waited for the deadline, not the full-batch trigger.
  ASSERT_GE(first_decide, 0);
  EXPECT_GE(first_decide - t0, opt.batch_flush_delay);
}

// A full batch flushes immediately — the deadline must not add latency when
// the size bound already tripped.
TEST(PbftBatching, FullBatchFlushesBeforeTheDeadline) {
  PbftOptions opt;
  opt.batch_max_ops = 16;
  opt.batch_flush_delay = millis(50);  // long enough to be visible if waited on
  BatchGroup g(4, opt);
  TimeMicros first_decide = -1;
  g.at(1).set_decide_handler([&](std::uint64_t, NodeId, const net::Payload&) {
    if (first_decide < 0) first_decide = g.sim.now();
  });
  const TimeMicros t0 = g.sim.now();
  for (int i = 0; i < 16; ++i) g.at(0).propose(op_bytes("op" + std::to_string(i)));
  g.run_for(seconds(1));
  ASSERT_EQ(g.decided[0].size(), 16u);
  EXPECT_EQ(g.at(0).batches_executed(), 1u);
  ASSERT_GE(first_decide, 0);
  EXPECT_LT(first_decide - t0, opt.batch_flush_delay);
}

// The byte bound splits a burst even when the op count fits: 64-byte ops
// under a 100-byte cap carve into two-op batches.
TEST(PbftBatching, ByteBoundSplitsBurstIntoMultipleSeqs) {
  PbftOptions opt;
  opt.batch_max_ops = 16;
  opt.batch_max_bytes = 100;
  BatchGroup g(4, opt);
  for (int i = 0; i < 4; ++i) {
    Bytes op(64, static_cast<std::uint8_t>(i));
    g.at(0).propose(std::move(op));
  }
  g.run_for(seconds(1));
  ASSERT_EQ(g.decided[0].size(), 4u);
  EXPECT_EQ(g.at(0).batches_executed(), 2u);
  for (NodeId n = 1; n < 4; ++n) EXPECT_EQ(g.decided[n], g.decided[0]);
}

// batch_max_ops = 1 is classic PBFT: every op its own sequence.
TEST(PbftBatching, BatchSizeOneDegeneratesToOneSeqPerOp) {
  PbftOptions opt;
  opt.batch_max_ops = 1;
  BatchGroup g(4, opt);
  for (int i = 0; i < 5; ++i) g.at(0).propose(op_bytes("op" + std::to_string(i)));
  g.run_for(seconds(2));
  ASSERT_EQ(g.decided[0].size(), 5u);
  EXPECT_EQ(g.at(0).batches_executed(), 5u);
}

// View change mid-batch: the primary buffers ops (deadline far away, size
// bound not reached) and then dies before flushing. The requests were
// broadcast, so the backups hold them in pending_, time out the primary,
// and the NEW primary re-proposes the stranded ops — nothing buffered is
// lost, nothing is duplicated.
TEST(PbftBatching, ViewChangeRescuesOpsStrandedInTheBatchBuffer) {
  PbftOptions opt;
  opt.batch_max_ops = 16;
  opt.batch_flush_delay = seconds(30.0);  // never fires inside the test
  opt.view_change_timeout = millis(500);
  BatchGroup g(4, opt);
  for (int i = 0; i < 3; ++i) g.at(0).propose(op_bytes("stranded" + std::to_string(i)));
  // The ops sit in replica 0's batch buffer; kill it before any flush.
  g.at(0).set_fault(PbftFaultMode::kSilent);
  g.run_for(seconds(10));
  for (NodeId n = 1; n < 4; ++n) {
    ASSERT_EQ(g.decided[n].size(), 3u) << "replica " << n;
    EXPECT_EQ(g.decided[n], g.decided[1]);
    EXPECT_GE(g.at(n).view(), 1u) << "view must have advanced past the dead primary";
  }
  // Exactly-once: each stranded op delivered a single time.
  for (int i = 0; i < 3; ++i) {
    const Bytes want = op_bytes("stranded" + std::to_string(i));
    int count = 0;
    for (const auto& [origin, op] : g.decided[1]) {
      EXPECT_EQ(origin, 0u);
      count += (op == want);
    }
    EXPECT_EQ(count, 1) << "op " << i;
  }
}

// An equivocating primary sends CONFLICTING BATCH frames for the same seq
// to different halves of the group. The batch digest covers the whole ops
// region, so the halves cannot both assemble a quorum; correct replicas
// either agree on one batch or view-change past the traitor — and never
// diverge or deliver a corrupted op.
TEST(PbftBatching, EquivocatingPrimaryCannotForkBatches) {
  PbftOptions opt;
  opt.batch_max_ops = 8;
  opt.view_change_timeout = millis(500);
  BatchGroup g(4, opt, {{0, PbftFaultMode::kEquivocatePrimary}});
  for (int i = 0; i < 6; ++i) g.at(1).propose(op_bytes("victim" + std::to_string(i)));
  g.run_for(seconds(15));
  // All correct replicas decided the same sequence...
  for (NodeId n = 2; n < 4; ++n) EXPECT_EQ(g.decided[n], g.decided[1]);
  // ...every op delivered from origin 1 is byte-exact and at most once.
  for (const auto& [origin, op] : g.decided[1]) {
    if (origin != 1) continue;
    bool known = false;
    for (int i = 0; i < 6; ++i) known |= (op == op_bytes("victim" + std::to_string(i)));
    EXPECT_TRUE(known) << "corrupted op delivered";
  }
  for (int i = 0; i < 6; ++i) {
    const Bytes want = op_bytes("victim" + std::to_string(i));
    int count = 0;
    for (const auto& [origin, op] : g.decided[1]) count += (origin == 1 && op == want);
    EXPECT_LE(count, 1) << "op " << i << " delivered twice";
  }
}

// State transfer of a BATCHED history: a replica isolated through several
// multi-op batches reconnects with a head gap and adopts the fetched
// history — per-op, in batch order, prefix-identical to the live replicas.
TEST(PbftBatching, BatchedExecHistoryTransfersToHeadGapReplica) {
  PbftOptions opt;
  opt.batch_max_ops = 4;
  opt.checkpoint_interval = 4;
  opt.watermark_window = 16;
  opt.view_change_timeout = millis(500);
  BatchGroup g(4, opt);

  g.net.isolate(3, true);
  for (int i = 0; i < 12; ++i) g.at(0).propose(op_bytes("op" + std::to_string(i)));
  g.run_for(seconds(10));
  ASSERT_EQ(g.decided[0].size(), 12u);
  // The history being transferred really is batched: 12 ops in ≤ 12/4·2
  // slots (burst arrival makes full batches; allow stragglers).
  EXPECT_LE(g.at(0).batches_executed(), 6u);
  EXPECT_TRUE(g.decided[3].empty());

  // The gap crosses the peers' stable checkpoint, so replica 3 installs the
  // checkpoint instead of replaying from seq 0: the skipped prefix is
  // reported through the install handler and the decided stream resumes as
  // a suffix of the group's.
  std::uint64_t skipped = 0;
  g.at(3).set_install_handler(
      [&](std::uint64_t, std::uint64_t, std::uint64_t from_ops, std::uint64_t to_ops) {
        skipped += to_ops - from_ops;
      });
  g.net.isolate(3, false);
  for (int i = 12; i < 24; ++i) g.at(0).propose(op_bytes("op" + std::to_string(i)));
  g.run_for(seconds(30));
  EXPECT_EQ(g.decided[0].size(), 24u);
  ASSERT_EQ(skipped + g.decided[3].size(), 24u)
      << "install gap + decided suffix must cover the full sequence";
  EXPECT_GT(g.decided[3].size(), 0u) << "replica 3 should decide the post-checkpoint suffix";
  for (std::size_t i = 0; i < g.decided[3].size(); ++i) {
    EXPECT_EQ(g.decided[3][i], g.decided[0][static_cast<std::size_t>(skipped) + i])
        << "divergence at " << i;
  }
}

// Batch boundaries are invisible to ordering: interleaved proposers, mixed
// batch fill levels, every replica delivers the identical op sequence.
TEST(PbftBatching, MixedProposersSameTotalOrderAcrossBatches) {
  PbftOptions opt;
  opt.batch_max_ops = 4;
  opt.batch_flush_delay = millis(2);
  BatchGroup g(7, opt);
  for (int i = 0; i < 30; ++i) {
    g.at(static_cast<std::size_t>(i % 7)).propose(op_bytes("op" + std::to_string(i)));
  }
  g.run_for(seconds(10));
  ASSERT_EQ(g.decided[0].size(), 30u);
  // Multiple ops really shared seqs.
  EXPECT_LT(g.at(0).batches_executed(), 30u);
  for (NodeId n = 1; n < 7; ++n) EXPECT_EQ(g.decided[n], g.decided[0]);
}

}  // namespace
}  // namespace atum::smr
