// Unit and property tests for the common substrate: RNG, serialization,
// statistics, and the binomial arithmetic behind the paper's §3.1 analysis.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/binomial.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/stats.h"
#include "common/types.h"

namespace atum {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng r(1);
  EXPECT_THROW(r.next_below(0), std::invalid_argument);
}

TEST(Rng, NextInRangeInclusive) {
  Rng r(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    auto v = r.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u) << "all values of a small range should appear";
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng r(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng r(19);
  std::vector<int> v(64);
  for (int i = 0; i < 64; ++i) v[static_cast<std::size_t>(i)] = i;
  auto orig = v;
  r.shuffle(v);
  EXPECT_NE(v, orig);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng r(23);
  for (int trial = 0; trial < 100; ++trial) {
    auto s = r.sample_indices(20, 7);
    EXPECT_EQ(s.size(), 7u);
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 7u);
    for (auto i : s) EXPECT_LT(i, 20u);
  }
}

TEST(Rng, SampleIndicesFullSet) {
  Rng r(29);
  auto s = r.sample_indices(5, 5);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(Rng, SampleIndicesRejectsOverdraw) {
  Rng r(31);
  EXPECT_THROW(r.sample_indices(3, 4), std::invalid_argument);
}

TEST(Rng, SampleIndicesUniform) {
  // Each of the 10 indices should be picked ~equally often when sampling 3.
  Rng r(37);
  std::vector<std::uint64_t> counts(10, 0);
  for (int trial = 0; trial < 30000; ++trial) {
    for (auto i : r.sample_indices(10, 3)) ++counts[i];
  }
  EXPECT_TRUE(passes_uniformity_test(counts, 0.99));
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(41);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

// ---------------------------------------------------------------------------
// Serde
// ---------------------------------------------------------------------------

TEST(Serde, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.14159);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.done());
}

TEST(Serde, VarintBoundaries) {
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
                          std::uint64_t{128}, std::uint64_t{16383}, std::uint64_t{16384},
                          std::uint64_t{0xFFFFFFFF}, UINT64_MAX}) {
    ByteWriter w;
    w.varint(v);
    ByteReader r(w.data());
    EXPECT_EQ(r.varint(), v);
  }
}

TEST(Serde, VarintCompactForSmallValues) {
  ByteWriter w;
  w.varint(5);
  EXPECT_EQ(w.size(), 1u);
}

TEST(Serde, BytesAndStringsRoundTrip) {
  ByteWriter w;
  w.bytes(Bytes{1, 2, 3});
  w.str("hello atum");
  w.bytes(Bytes{});
  w.str("");
  ByteReader r(w.data());
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "hello atum");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.str().empty());
  EXPECT_TRUE(r.done());
}

TEST(Serde, VectorRoundTrip) {
  std::vector<std::uint64_t> xs{9, 8, 7, 6};
  ByteWriter w;
  w.vec(xs, [](ByteWriter& bw, std::uint64_t x) { bw.u64(x); });
  ByteReader r(w.data());
  auto ys = r.vec<std::uint64_t>([](ByteReader& br) { return br.u64(); });
  EXPECT_EQ(xs, ys);
}

TEST(Serde, TruncatedReadThrows) {
  ByteWriter w;
  w.u64(1);
  Bytes data = w.take();
  data.resize(4);
  ByteReader r(data);
  EXPECT_THROW(r.u64(), SerdeError);
}

TEST(Serde, TruncatedBytesThrows) {
  ByteWriter w;
  w.varint(100);  // claims 100 bytes follow
  ByteReader r(w.data());
  EXPECT_THROW(r.bytes(), SerdeError);
}

TEST(Serde, MaliciousVectorLengthThrows) {
  // A Byzantine sender claims 2^60 elements; the reader must not allocate.
  ByteWriter w;
  w.varint(1ULL << 60);
  ByteReader r(w.data());
  EXPECT_THROW(r.vec<std::uint64_t>([](ByteReader& br) { return br.u64(); }), SerdeError);
}

TEST(Serde, ExpectDoneDetectsTrailingGarbage) {
  ByteWriter w;
  w.u8(1);
  w.u8(2);
  ByteReader r(w.data());
  r.u8();
  EXPECT_THROW(r.expect_done(), SerdeError);
}

TEST(Serde, VarintOverflowThrows) {
  Bytes evil(11, 0xFF);  // continuation forever
  ByteReader r(evil);
  EXPECT_THROW(r.varint(), SerdeError);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Samples, PercentilesOfKnownSet) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
}

TEST(Samples, CdfMonotone) {
  Samples s;
  Rng r(43);
  for (int i = 0; i < 1000; ++i) s.add(r.next_double());
  double prev = -1;
  for (auto [x, f] : s.cdf_points(32)) {
    EXPECT_GE(f, prev);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);
}

TEST(Samples, CdfAtExtremes) {
  Samples s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
}

TEST(ChiSquare, UniformCountsPass) {
  std::vector<std::uint64_t> counts(50, 1000);
  EXPECT_TRUE(passes_uniformity_test(counts, 0.99));
}

TEST(ChiSquare, SkewedCountsFail) {
  std::vector<std::uint64_t> counts(50, 1000);
  counts[0] = 5000;
  EXPECT_FALSE(passes_uniformity_test(counts, 0.99));
}

TEST(ChiSquare, RandomUniformSamplesPass) {
  Rng r(47);
  std::vector<std::uint64_t> counts(64, 0);
  for (int i = 0; i < 64000; ++i) ++counts[r.next_below(64)];
  EXPECT_TRUE(passes_uniformity_test(counts, 0.99));
}

TEST(ChiSquare, SfMatchesKnownValues) {
  // chi2 critical value for df=10 at p=0.05 is 18.307.
  EXPECT_NEAR(chi_square_sf(18.307, 10), 0.05, 0.001);
  // df=1 at p=0.05 is 3.841.
  EXPECT_NEAR(chi_square_sf(3.841, 1), 0.05, 0.001);
  EXPECT_NEAR(chi_square_sf(0.0, 5), 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Binomial (paper §3.1 arithmetic)
// ---------------------------------------------------------------------------

TEST(Binomial, PmfSumsToOne) {
  for (std::uint32_t n : {1u, 5u, 20u, 50u}) {
    double sum = 0;
    for (std::uint32_t k = 0; k <= n; ++k) sum += binomial_pmf(n, k, 0.3);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Binomial, PmfDegenerateCases) {
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 11, 0.5), 0.0);
}

TEST(Binomial, TailMonotoneInK) {
  double prev = 1.0;
  for (std::uint32_t k = 0; k <= 20; ++k) {
    double t = binomial_tail_geq(20, k, 0.2);
    EXPECT_LE(t, prev + 1e-12);
    prev = t;
  }
}

TEST(Binomial, PaperExampleSmallGroup) {
  // §3.1: g=4, failure prob 0.05, f=1 -> group fails with P[X>=2] ~= 0.014.
  double fail = binomial_tail_geq(4, 2, 0.05);
  EXPECT_NEAR(fail, 0.014, 0.0005);
}

TEST(Binomial, PaperExampleLargeGroup) {
  // §3.1: g=20, f=9 -> fails with P[X>=10] ~= 1.134e-8.
  double fail = binomial_tail_geq(20, 10, 0.05);
  EXPECT_NEAR(fail / 1.134e-8, 1.0, 0.01);
}

TEST(Binomial, FaultThresholdRules) {
  EXPECT_EQ(sync_fault_threshold(4), 1u);
  EXPECT_EQ(sync_fault_threshold(20), 9u);
  EXPECT_EQ(sync_fault_threshold(7), 3u);
  EXPECT_EQ(async_fault_threshold(4), 1u);
  EXPECT_EQ(async_fault_threshold(7), 2u);
  EXPECT_EQ(async_fault_threshold(10), 3u);
}

TEST(Binomial, PaperClaimKFourGivesThreeNines) {
  // §3.1: k=4, 6% faults -> P(all vgroups robust) ~= 0.999. The paper's
  // wording fixes a scale; at n=1000 the probability must be >= 0.999 and
  // within the same order elsewhere.
  double p = all_vgroups_robust_probability(1000, 4, 0.06, true);
  EXPECT_GT(p, 0.999);
}

TEST(Binomial, RobustnessImprovesWithK) {
  // A fault rate high enough that the probabilities are not all ~1.0 in
  // double precision; k's effect must be monotone.
  double p3 = all_vgroups_robust_probability(2000, 3, 0.25, true);
  double p5 = all_vgroups_robust_probability(2000, 5, 0.25, true);
  double p7 = all_vgroups_robust_probability(2000, 7, 0.25, true);
  EXPECT_LT(p3, p5);
  EXPECT_LT(p5, p7);
  EXPECT_LT(p7, 1.0);
}

TEST(Binomial, SyncToleratesMoreThanAsync) {
  double sync = all_vgroups_robust_probability(1000, 4, 0.08, true);
  double async = all_vgroups_robust_probability(1000, 4, 0.08, false);
  EXPECT_GT(sync, async);
}

TEST(Binomial, VgroupRobustProbabilityComplement) {
  double robust = vgroup_robust_probability(10, 4, 0.1);
  double fail = binomial_tail_geq(10, 5, 0.1);
  EXPECT_NEAR(robust + fail, 1.0, 1e-12);
}

// Monte-Carlo cross-check of the analytic tail.
TEST(Binomial, MonteCarloAgreesWithAnalytic) {
  Rng r(53);
  const int trials = 200000;
  int fails = 0;
  for (int t = 0; t < trials; ++t) {
    int faulty = 0;
    for (int i = 0; i < 8; ++i) faulty += r.chance(0.1);
    fails += (faulty >= 3);
  }
  double empirical = static_cast<double>(fails) / trials;
  double analytic = binomial_tail_geq(8, 3, 0.1);
  EXPECT_NEAR(empirical, analytic, 0.004);
}

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

TEST(Types, TimeConversions) {
  EXPECT_EQ(millis(1500), 1'500'000);
  EXPECT_EQ(seconds(1.5), 1'500'000);
  EXPECT_DOUBLE_EQ(to_seconds(2'500'000), 2.5);
}

TEST(Types, BroadcastIdEqualityAndHash) {
  BroadcastId a{1, 2}, b{1, 2}, c{1, 3};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(std::hash<BroadcastId>{}(a), std::hash<BroadcastId>{}(b));
  EXPECT_EQ(to_string(a), "1:2");
}

}  // namespace
}  // namespace atum
