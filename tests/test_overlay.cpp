// Tests for the overlay layer: H-graph structure, group-message acceptance
// (majority vouching + digest optimization), random walks (bulk RNG,
// certificate chains, uniformity), and gossip policies.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/stats.h"
#include "crypto/keys.h"
#include "net/network.h"
#include "overlay/gossip.h"
#include "overlay/group_message.h"
#include "overlay/hgraph.h"
#include "overlay/random_walk.h"
#include "sim/simulator.h"

namespace atum::overlay {
namespace {

// ---------------------------------------------------------------------------
// HGraph
// ---------------------------------------------------------------------------

TEST(HGraph, BootstrapSingleVertex) {
  HGraph g(3);
  g.add_first(7);
  EXPECT_EQ(g.size(), 1u);
  EXPECT_TRUE(g.contains(7));
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(g.successor(c, 7), 7u);
    EXPECT_EQ(g.predecessor(c, 7), 7u);
  }
  EXPECT_TRUE(g.validate());
  EXPECT_TRUE(g.neighbors(7).empty());
}

TEST(HGraph, InsertAfterMaintainsRing) {
  HGraph g(1);
  g.add_first(0);
  g.insert_after(0, 0, 1);
  g.insert_after(0, 1, 2);
  EXPECT_EQ(g.successor(0, 0), 1u);
  EXPECT_EQ(g.successor(0, 1), 2u);
  EXPECT_EQ(g.successor(0, 2), 0u);
  EXPECT_EQ(g.predecessor(0, 0), 2u);
  EXPECT_TRUE(g.validate());
}

TEST(HGraph, InsertRandomKeepsAllCyclesValid) {
  Rng rng(5);
  HGraph g(4);
  for (GroupId v = 0; v < 100; ++v) {
    if (v == 0) {
      g.add_first(v);
    } else {
      g.insert_random(v, rng);
    }
  }
  EXPECT_EQ(g.size(), 100u);
  EXPECT_TRUE(g.validate());
}

TEST(HGraph, RemoveBridgesTheGap) {
  Rng rng(6);
  HGraph g(2);
  for (GroupId v = 0; v < 10; ++v) {
    if (v == 0) {
      g.add_first(v);
    } else {
      g.insert_random(v, rng);
    }
  }
  GroupId pred = g.predecessor(0, 5), succ = g.successor(0, 5);
  g.remove(5);
  EXPECT_FALSE(g.contains(5));
  if (pred != 5 && succ != 5) {
    EXPECT_EQ(g.successor(0, pred), succ);
  }
  EXPECT_TRUE(g.validate());
}

TEST(HGraph, RemoveDownToOneVertex) {
  Rng rng(7);
  HGraph g(3);
  g.add_first(0);
  g.insert_random(1, rng);
  g.insert_random(2, rng);
  g.remove(1);
  g.remove(2);
  EXPECT_EQ(g.size(), 1u);
  EXPECT_EQ(g.successor(0, 0), 0u);
  EXPECT_TRUE(g.validate());
}

TEST(HGraph, ConstantDegree) {
  Rng rng(8);
  HGraph g(5);
  for (GroupId v = 0; v < 64; ++v) {
    if (v == 0) {
      g.add_first(v);
    } else {
      g.insert_random(v, rng);
    }
  }
  for (GroupId v = 0; v < 64; ++v) {
    EXPECT_EQ(g.links(v).size(), 10u);           // 2 per cycle
    EXPECT_LE(g.neighbors(v).size(), 10u);        // distinct neighbors
    EXPECT_GE(g.neighbors(v).size(), 1u);
  }
}

TEST(HGraph, ErrorsOnUnknownVertices) {
  HGraph g(2);
  g.add_first(1);
  EXPECT_THROW(g.successor(0, 99), std::invalid_argument);
  EXPECT_THROW(g.remove(99), std::invalid_argument);
  EXPECT_THROW(g.insert_after(0, 99, 5), std::invalid_argument);
  EXPECT_THROW(g.insert_after(0, 1, 1), std::invalid_argument);  // duplicate
}

TEST(HGraph, ZeroCyclesRejected) { EXPECT_THROW(HGraph(0), std::invalid_argument); }

// ---------------------------------------------------------------------------
// Group messages
// ---------------------------------------------------------------------------

struct GmFixture : ::testing::Test {
  sim::Simulator sim;
  net::SimNetwork net{sim, net::NetworkConfig::datacenter(), 77};
  Rng rng{11};
  std::vector<NodeId> group_a{1, 2, 3, 4, 5};  // sending vgroup
  NodeId receiver = 100;
  std::vector<std::pair<GroupMessageId, net::Payload>> delivered;
  std::unique_ptr<GroupMessageReceiver> rx;

  void make_receiver(std::size_t claimed_size = 5) {
    rx = std::make_unique<GroupMessageReceiver>(
        net::Transport(net, receiver),
        [this](const GroupMessageId& id, NodeId, net::Payload p) {
          delivered.emplace_back(id, std::move(p));
        });
    rx->set_group_size_fn([claimed_size](GroupId g) -> std::optional<std::size_t> {
      if (g == 50) return claimed_size;
      return std::nullopt;
    });
  }

  void send_from_all(const Bytes& payload, const std::vector<NodeId>& senders) {
    for (NodeId s : senders) {
      net::Transport t(net, s);
      send_group_message(t, group_a, GroupMessageId{50, 9}, {receiver}, payload, rng);
    }
  }
};

TEST_F(GmFixture, AcceptsWithAllSendersCorrect) {
  make_receiver();
  send_from_all(Bytes{0xAA}, group_a);
  sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].second, Bytes{0xAA});
  EXPECT_EQ(delivered[0].first.from_group, 50u);
}

TEST_F(GmFixture, AcceptsWithExactMajority) {
  make_receiver();
  send_from_all(Bytes{0xBB}, {1, 2, 3});  // 3 of 5 = majority
  sim.run();
  ASSERT_EQ(delivered.size(), 1u);
}

TEST_F(GmFixture, RejectsBelowMajority) {
  make_receiver();
  send_from_all(Bytes{0xCC}, {1, 2});  // 2 of 5 < majority
  sim.run();
  EXPECT_TRUE(delivered.empty());
}

TEST_F(GmFixture, DeliversExactlyOnceOnDuplicates) {
  make_receiver();
  send_from_all(Bytes{0xDD}, group_a);
  sim.run();
  send_from_all(Bytes{0xDD}, group_a);  // same id resent
  sim.run();
  EXPECT_EQ(delivered.size(), 1u);
}

// Regression: a duplicate arriving AFTER its tombstone expired used to mint
// a fresh Pending entry and deliver the same GroupMessageId a second time.
// The rolling delivered-id set (kept for ~8 TTLs past delivery) must drop it.
TEST_F(GmFixture, PostTtlDuplicateIsNotRedelivered) {
  make_receiver();
  rx->set_tombstone_ttl(seconds(1));
  send_from_all(Bytes{0xD7}, group_a);
  sim.run();
  ASSERT_EQ(delivered.size(), 1u);

  // Let the tombstone expire, then prove it is really gone: an unrelated
  // frame triggers the GC sweep and the pending table empties.
  sim.run_until(sim.now() + seconds(3));
  for (NodeId s : group_a) {
    net::Transport t(net, s);
    send_group_message(t, group_a, GroupMessageId{50, 10}, {receiver}, Bytes{0x11}, rng);
  }
  sim.run();
  ASSERT_EQ(delivered.size(), 2u);
  // Only the fresh id's tombstone remains; the expired one was collected.
  EXPECT_EQ(rx->pending_count(), 1u) << "expired tombstone should have been collected";

  // The replayed id is past its tombstone but inside the rolling window.
  send_from_all(Bytes{0xD7}, group_a);
  sim.run();
  EXPECT_EQ(delivered.size(), 2u) << "post-TTL duplicate was re-delivered";
}

TEST_F(GmFixture, DigestOptimizationOnlyMajoritySendsFull) {
  make_receiver();
  // Count wire message types: ranks 0..2 (of 5) send full, ranks 3..4 digest.
  std::uint64_t full = 0, digest = 0;
  net.attach(receiver, net::MsgType::kGroupMsgFull,
             [&](const net::Message&) { ++full; });
  net.attach(receiver, net::MsgType::kGroupMsgDigest,
             [&](const net::Message&) { ++digest; });
  send_from_all(Bytes{0xEE}, group_a);
  sim.run();
  EXPECT_EQ(full, 3u);
  EXPECT_EQ(digest, 2u);
}

TEST_F(GmFixture, ByzantineMinorityCannotForgeContent) {
  make_receiver();
  // Two Byzantine senders push a corrupted payload; three correct ones the
  // real payload. Only the real one is ever delivered.
  send_from_all(Bytes{0x01}, {1, 2});    // liars
  send_from_all(Bytes{0x02}, {3, 4, 5}); // truth-tellers (majority)
  sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].second, Bytes{0x02});
}

TEST_F(GmFixture, UnknownGroupBuffersUntilReevaluate) {
  make_receiver();
  std::size_t known_size = 0;  // group unknown initially
  rx->set_group_size_fn([&known_size](GroupId) -> std::optional<std::size_t> {
    if (known_size == 0) return std::nullopt;
    return known_size;
  });
  send_from_all(Bytes{0x77}, group_a);
  sim.run();
  EXPECT_TRUE(delivered.empty());
  EXPECT_GT(rx->pending_count(), 0u);
  known_size = 5;  // composition learned via a neighbor update
  rx->reevaluate();
  ASSERT_EQ(delivered.size(), 1u);
}

TEST_F(GmFixture, MembershipFilterDropsOutsiders) {
  make_receiver();
  rx->set_membership_fn([this](GroupId g, NodeId n) {
    return g == 50 && std::find(group_a.begin(), group_a.end(), n) != group_a.end();
  });
  // Five outsiders flood identical content; must not be accepted.
  send_from_all(Bytes{0x99}, {200, 201, 202, 203, 204});
  sim.run();
  EXPECT_TRUE(delivered.empty());
  // Genuine members still get through.
  send_from_all(Bytes{0x98}, group_a);
  sim.run();
  EXPECT_EQ(delivered.size(), 1u);
}

// ---------------------------------------------------------------------------
// Zero-copy delivery & tombstone GC
// ---------------------------------------------------------------------------

TEST_F(GmFixture, DeliveryIsZeroCopyFromTheWire) {
  make_receiver();
  // Hand-encode one full frame and send the SAME frozen Payload from a
  // majority of senders (exactly what PreparedGroupMessage does per
  // sender): the delivered payload must be a slice of that buffer, not a
  // copy of it.
  ByteWriter w;
  w.u64(50);
  w.u64(9);
  w.bytes(Bytes{0xAB, 0xCD, 0xEF});
  net::Payload wire(w.take());
  for (NodeId s : {1, 2, 3}) {
    net::Transport t(net, s);
    t.send(receiver, net::MsgType::kGroupMsgFull, wire);
  }
  sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  const net::Payload& p = delivered[0].second;
  EXPECT_EQ(p, (Bytes{0xAB, 0xCD, 0xEF}));
  EXPECT_GE(p.data(), wire.data());                            // inside...
  EXPECT_LE(p.data() + p.size(), wire.data() + wire.size());   // ...the frame
  EXPECT_EQ(p.use_count(), wire.use_count());                  // same buffer
}

TEST_F(GmFixture, FanOutSharesOneWireBufferAcrossReceivers) {
  // Two receivers, one PreparedGroupMessage per sender: every delivered
  // payload aliases its sender's single frozen frame — the fan-out
  // materializes one buffer per *sender*, not one per recipient.
  std::vector<net::Payload> got;
  auto rx2 = std::make_unique<GroupMessageReceiver>(
      net::Transport(net, 101),
      [&](const GroupMessageId&, NodeId, net::Payload p) { got.push_back(std::move(p)); });
  rx2->set_group_size_fn([](GroupId) -> std::optional<std::size_t> { return 5; });
  make_receiver();
  for (NodeId s : group_a) {
    net::Transport t(net, s);
    send_group_message(t, group_a, GroupMessageId{50, 9}, {receiver, 101},
                       net::Payload(Bytes(2048, 0x5A)), rng);
  }
  sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  ASSERT_EQ(got.size(), 1u);
  // Both receivers hold slices; each aliases one of the three full-sender
  // frames, so at most 3 distinct buffers back any number of receivers.
  EXPECT_EQ(delivered[0].second, got[0]);
}

// ---------------------------------------------------------------------------
// Send coalescing & envelopes
// ---------------------------------------------------------------------------

// Hand-encode one full group-message frame (what PreparedGroupMessage's
// full-rank senders put on the wire).
net::Payload full_frame(GroupMessageId id, const Bytes& body) {
  ByteWriter w;
  w.u64(id.from_group);
  w.u64(id.seq);
  w.bytes(body);
  return net::Payload(w.take());
}

TEST_F(GmFixture, CoalescerPassesALoneFrameThroughUnwrapped) {
  std::uint64_t full = 0, envelopes = 0;
  net.attach(receiver, net::MsgType::kGroupMsgFull, [&](const net::Message&) { ++full; });
  net.attach(receiver, net::MsgType::kGroupMsgEnvelope,
             [&](const net::Message&) { ++envelopes; });
  SendCoalescer c(net::Transport(net, 1), rng);
  c.enqueue(receiver, net::MsgType::kGroupMsgFull, full_frame({50, 1}, Bytes{0xAA}));
  sim.run();
  EXPECT_EQ(full, 1u);
  EXPECT_EQ(envelopes, 0u);
  EXPECT_EQ(c.messages_sent(), 1u);
  EXPECT_EQ(c.envelopes_sent(), 0u);
  EXPECT_EQ(c.messages_saved(), 0u);
}

TEST_F(GmFixture, CoalescerMergesSameTickFramesIntoOneEnvelope) {
  std::uint64_t singles = 0, envelopes = 0;
  net.attach(receiver, net::MsgType::kGroupMsgFull, [&](const net::Message&) { ++singles; });
  net.attach(receiver, net::MsgType::kGroupMsgEnvelope,
             [&](const net::Message&) { ++envelopes; });
  SendCoalescer c(net::Transport(net, 1), rng);
  for (std::uint64_t seq = 0; seq < 3; ++seq) {
    c.enqueue(receiver, net::MsgType::kGroupMsgFull, full_frame({50, seq}, Bytes{0xAB}));
  }
  EXPECT_EQ(c.queued(), 3u);
  sim.run();
  EXPECT_EQ(singles, 0u);
  EXPECT_EQ(envelopes, 1u);
  EXPECT_EQ(c.queued(), 0u);
  EXPECT_EQ(c.messages_sent(), 1u);
  EXPECT_EQ(c.messages_saved(), 2u);
}

TEST_F(GmFixture, CoalescerSuppressesDuplicateFramesPerDestination) {
  // The same frozen frame enqueued for the same node once per overlapping
  // neighbor group: one copy travels, and it travels unwrapped.
  std::uint64_t singles = 0, envelopes = 0;
  net.attach(receiver, net::MsgType::kGroupMsgFull, [&](const net::Message&) { ++singles; });
  net.attach(receiver, net::MsgType::kGroupMsgEnvelope,
             [&](const net::Message&) { ++envelopes; });
  SendCoalescer c(net::Transport(net, 1), rng);
  net::Payload frame = full_frame({50, 7}, Bytes{0xCD});
  for (int i = 0; i < 3; ++i) c.enqueue(receiver, net::MsgType::kGroupMsgFull, frame);
  sim.run();
  EXPECT_EQ(singles, 1u);
  EXPECT_EQ(envelopes, 0u);
  EXPECT_EQ(c.frames_enqueued(), 3u);
  EXPECT_EQ(c.messages_saved(), 2u);
}

TEST_F(GmFixture, CoalescerSplitsOversizedBatchesAtTheCap) {
  std::uint64_t singles = 0, envelopes = 0;
  net.attach(receiver, net::MsgType::kGroupMsgFull, [&](const net::Message&) { ++singles; });
  net.attach(receiver, net::MsgType::kGroupMsgEnvelope,
             [&](const net::Message&) { ++envelopes; });
  SendCoalescer c(net::Transport(net, 1), rng);
  for (std::uint64_t seq = 0; seq < SendCoalescer::kMaxFramesPerEnvelope + 1; ++seq) {
    c.enqueue(receiver, net::MsgType::kGroupMsgFull, full_frame({50, seq}, Bytes{0xEF}));
  }
  sim.run();
  // One full envelope plus the lone remainder travelling as itself.
  EXPECT_EQ(envelopes, 1u);
  EXPECT_EQ(singles, 1u);
}

TEST_F(GmFixture, CoalescerRejectsNonGroupMessageTypes) {
  SendCoalescer c(net::Transport(net, 1), rng);
  EXPECT_THROW(c.enqueue(receiver, net::MsgType::kHeartbeat, net::Payload(Bytes{1})),
               std::logic_error);
  EXPECT_THROW(
      c.enqueue(receiver, net::MsgType::kGroupMsgEnvelope, net::Payload(Bytes{1})),
      std::logic_error);
}

TEST_F(GmFixture, EnvelopeDeliversEveryInnerFrame) {
  // Majority of senders, each coalescing full frames of two distinct group
  // messages to one receiver in the same tick: both messages reach
  // acceptance out of one wire message per sender.
  make_receiver();
  std::vector<std::unique_ptr<SendCoalescer>> coalescers;
  for (NodeId s : {1, 2, 3}) {
    auto c = std::make_unique<SendCoalescer>(net::Transport(net, s), rng);
    c->enqueue(receiver, net::MsgType::kGroupMsgFull, full_frame({50, 1}, Bytes{0x01}));
    c->enqueue(receiver, net::MsgType::kGroupMsgFull, full_frame({50, 2}, Bytes{0x02}));
    coalescers.push_back(std::move(c));
  }
  sim.run();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0].second, Bytes{0x01});
  EXPECT_EQ(delivered[1].second, Bytes{0x02});
}

TEST_F(GmFixture, EnvelopeInnerFramesDeliverZeroCopy) {
  // A hand-built envelope sent from a majority: the delivered body must be
  // a slice of the envelope wire frame, not a copy.
  make_receiver();
  ByteWriter w;
  w.varint(1);
  w.u16(static_cast<std::uint16_t>(net::MsgType::kGroupMsgFull));
  net::Payload inner = full_frame({50, 9}, Bytes{0xAB, 0xCD, 0xEF});
  w.bytes(inner.data(), inner.size());
  net::Payload envelope(w.take());
  for (NodeId s : {1, 2, 3}) {
    net::Transport t(net, s);
    t.send(receiver, net::MsgType::kGroupMsgEnvelope, envelope);
  }
  sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  const net::Payload& p = delivered[0].second;
  EXPECT_EQ(p, (Bytes{0xAB, 0xCD, 0xEF}));
  EXPECT_GE(p.data(), envelope.data());
  EXPECT_LE(p.data() + p.size(), envelope.data() + envelope.size());
}

TEST_F(GmFixture, MalformedEnvelopesAreDropped) {
  make_receiver();
  net::Payload inner = full_frame({50, 9}, Bytes{0x55});
  auto send_all = [&](const net::Payload& wire) {
    for (NodeId s : {1, 2, 3}) {
      net::Transport t(net, s);
      t.send(receiver, net::MsgType::kGroupMsgEnvelope, wire);
    }
    sim.run();
  };

  {  // nested envelope type: rejected (envelopes do not recurse)
    ByteWriter w;
    w.varint(1);
    w.u16(static_cast<std::uint16_t>(net::MsgType::kGroupMsgEnvelope));
    w.bytes(inner.data(), inner.size());
    send_all(net::Payload(w.take()));
  }
  {  // zero frames: rejected
    ByteWriter w;
    w.varint(0);
    send_all(net::Payload(w.take()));
  }
  {  // frame count above the cap: rejected before decoding the frames
    ByteWriter w;
    w.varint(SendCoalescer::kMaxFramesPerEnvelope + 1);
    w.u16(static_cast<std::uint16_t>(net::MsgType::kGroupMsgFull));
    w.bytes(inner.data(), inner.size());
    send_all(net::Payload(w.take()));
  }
  {  // truncated tail: the whole envelope is suspect, nothing delivers
    ByteWriter w;
    w.varint(2);
    w.u16(static_cast<std::uint16_t>(net::MsgType::kGroupMsgFull));
    w.bytes(inner.data(), inner.size());
    send_all(net::Payload(w.take()));
  }
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(rx->pending_count(), 0u);
}

TEST_F(GmFixture, DeliveredTombstonesAreGarbageCollectedAfterTtl) {
  make_receiver();
  rx->set_tombstone_ttl(seconds(5.0));
  send_from_all(Bytes{0x11}, group_a);
  sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(rx->pending_count(), 1u);  // tombstone retained for dedup
  // Duplicates within the TTL are suppressed...
  send_from_all(Bytes{0x11}, group_a);
  sim.run();
  EXPECT_EQ(delivered.size(), 1u);
  EXPECT_EQ(rx->pending_count(), 1u);
  // ...and past the TTL the tombstone is swept on the next arrival.
  sim.run_until(sim.now() + seconds(6.0));
  net::Transport t(net, 1);
  send_group_message(t, group_a, GroupMessageId{50, 77}, {receiver}, net::Payload(Bytes{0x22}),
                     rng);
  sim.run();
  EXPECT_EQ(rx->pending_count(), 1u);  // only the new (undelivered) id remains
}

TEST_F(GmFixture, UndeliveredFloodFromByzantineSenderIsBounded) {
  make_receiver();
  rx->set_tombstone_ttl(seconds(2.0));
  // One Byzantine member of a known group mints a fresh id per tick and
  // sends digest-only frames that can never deliver (no full copy, no
  // majority). Undelivered buffering must expire like tombstones do —
  // otherwise this grows pending_ by one entry per id forever.
  net::Transport t(net, 1);
  for (std::uint64_t seq = 0; seq < 300; ++seq) {
    ByteWriter w;
    w.u64(50);
    w.u64(seq);
    crypto::Digest d = crypto::sha256(Bytes{static_cast<std::uint8_t>(seq)});
    w.raw(d.data(), d.size());
    t.send(receiver, net::MsgType::kGroupMsgDigest, w.take());
    sim.run_until(sim.now() + millis(100));
  }
  sim.run();
  EXPECT_TRUE(delivered.empty());
  // 2 s TTL at one fresh id per 100 ms: ~20 live entries, never 300.
  EXPECT_LT(rx->pending_count(), 40u);
}

TEST_F(GmFixture, PendingStaysBoundedUnderSustainedBroadcast) {
  make_receiver();
  rx->set_tombstone_ttl(seconds(2.0));
  constexpr std::uint64_t kRounds = 200;
  for (std::uint64_t seq = 0; seq < kRounds; ++seq) {
    for (NodeId s : group_a) {
      net::Transport t(net, s);
      send_group_message(t, group_a, GroupMessageId{50, seq}, {receiver},
                        net::Payload(Bytes{0x33}), rng);
    }
    sim.run_until(sim.now() + millis(100));
  }
  sim.run();
  EXPECT_EQ(delivered.size(), kRounds);
  // 2 s TTL at one delivery per 100 ms: ~20 live tombstones, never 200.
  EXPECT_LT(rx->pending_count(), 40u);
}

// ---------------------------------------------------------------------------
// Vouch-path digest caching: SHA-256 at most once per frame, regardless of
// how many receivers, relays, or digest-rank senders touch it.
// ---------------------------------------------------------------------------

TEST_F(GmFixture, SameFrameVouchedAtManyReceiversHashesOnce) {
  make_receiver();
  GroupMessageReceiver rx2(net::Transport(net, 101),
                           [&](const GroupMessageId&, NodeId, net::Payload) {});
  rx2.set_group_size_fn([](GroupId) -> std::optional<std::size_t> { return 5; });

  // Member 1 has rank 0 of 5: a full-payload sender. One frozen wire frame
  // fans out to both receivers.
  net::Payload payload(Bytes(512, 0xEE));
  PreparedGroupMessage msg(group_a, /*self=*/1, GroupMessageId{50, 9}, payload);
  net::Transport t(net, 1);
  const std::uint64_t base = crypto::sha256_digest_count();
  msg.send_to(t, {receiver, 101}, rng);
  sim.run();
  // Both receivers vouched for the SAME frame slice; the digest memo on
  // the frame's control block means exactly one SHA-256 ran.
  EXPECT_EQ(crypto::sha256_digest_count(), base + 1);
}

TEST_F(GmFixture, FullGroupSendHashesOncePerFrameAndOncePerSharedPayload) {
  make_receiver();
  std::vector<net::Payload> got2;
  GroupMessageReceiver rx2(net::Transport(net, 101),
                           [&](const GroupMessageId&, NodeId, net::Payload p) {
                             got2.push_back(std::move(p));
                           });
  rx2.set_group_size_fn([](GroupId) -> std::optional<std::size_t> { return 5; });

  // All five members send the same frozen payload to both receivers: ranks
  // 0-2 send full frames (one frozen frame each), ranks 3-4 send digests
  // derived from the SHARED payload buffer.
  net::Payload payload(Bytes(512, 0xEE));
  const std::uint64_t base = crypto::sha256_digest_count();
  for (NodeId s : group_a) {
    net::Transport t(net, s);
    PreparedGroupMessage(group_a, s, GroupMessageId{50, 9}, payload)
        .send_to(t, {receiver, 101}, rng);
  }
  sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  ASSERT_EQ(got2.size(), 1u);
  EXPECT_EQ(delivered[0].second, payload);
  // 3 full frames hashed once each (both receivers share each frame's
  // memo) + 1 digest for the shared payload reused by both digest-rank
  // senders. The uncached path would hash 3*2 (vouches) + 2 (senders) = 8.
  EXPECT_EQ(crypto::sha256_digest_count(), base + 4);
}

// ---------------------------------------------------------------------------
// Random walks
// ---------------------------------------------------------------------------

TEST(WalkState, StartMintsBulkRandomness) {
  Rng rng(3);
  auto w = WalkState::start(WalkId{5, 9}, WalkPurpose::kSample, 12, Bytes{1}, rng);
  EXPECT_EQ(w.randomness.size(), 12u);
  EXPECT_EQ(w.step, 0u);
  EXPECT_FALSE(w.done());
  EXPECT_EQ(w.path, std::vector<GroupId>{5});
}

TEST(WalkState, EncodeDecodeRoundTrip) {
  Rng rng(4);
  auto w = WalkState::start(WalkId{1, 2}, WalkPurpose::kJoinPlacement, 7, Bytes{9, 8}, rng);
  w.step = 3;
  w.path = {1, 4, 6};
  auto d = WalkState::decode(w.encode());
  EXPECT_EQ(d.id, w.id);
  EXPECT_EQ(d.purpose, WalkPurpose::kJoinPlacement);
  EXPECT_EQ(d.rwl, 7u);
  EXPECT_EQ(d.step, 3u);
  EXPECT_EQ(d.randomness, w.randomness);
  EXPECT_EQ(d.payload, w.payload);
  EXPECT_EQ(d.path, w.path);
}

TEST(WalkState, DecodeRejectsCorruptStates) {
  Rng rng(5);
  auto w = WalkState::start(WalkId{1, 2}, WalkPurpose::kSample, 5, {}, rng);
  Bytes wire = w.encode();
  wire.resize(wire.size() / 2);
  EXPECT_THROW(WalkState::decode(wire), SerdeError);
}

TEST(WalkState, PickLinkIsDeterministic) {
  Rng rng(6);
  auto w = WalkState::start(WalkId{1, 1}, WalkPurpose::kSample, 4, {}, rng);
  EXPECT_EQ(w.pick_link(10), w.pick_link(10));
  w.step = 1;
  // Different step uses a different pre-minted number (almost surely
  // different index for a large modulus).
  EXPECT_EQ(w.pick_link(1), 0u);
}

TEST(WalkState, ExhaustedWalkThrows) {
  Rng rng(7);
  auto w = WalkState::start(WalkId{1, 1}, WalkPurpose::kSample, 2, {}, rng);
  w.step = 2;
  EXPECT_TRUE(w.done());
  EXPECT_THROW(w.pick_link(3), std::logic_error);
}

struct CertFixture : ::testing::Test {
  crypto::KeyStore keys{42};
  WalkId id{10, 77};
  std::map<GroupId, std::vector<NodeId>> groups{
      {10, {1, 2, 3}}, {11, {4, 5, 6}}, {12, {7, 8, 9}}};

  HopCert make_cert(GroupId g, GroupId next, std::uint32_t step, std::size_t signer_count) {
    HopCert h;
    h.group = g;
    h.next_group = next;
    h.step = step;
    for (std::size_t i = 0; i < signer_count; ++i) {
      NodeId n = groups[g][i];
      h.sigs.emplace_back(n, sign_hop(id, step, g, next, keys.key_of(n)));
    }
    return h;
  }

  auto members_fn() {
    return [this](GroupId g) -> std::optional<std::vector<NodeId>> {
      auto it = groups.find(g);
      if (it == groups.end()) return std::nullopt;
      return it->second;
    };
  }
};

TEST_F(CertFixture, ValidChainVerifies) {
  CertChain c;
  c.hops.push_back(make_cert(10, 11, 0, 2));
  c.hops.push_back(make_cert(11, 12, 1, 2));
  auto selected = c.verify(id, 10, members_fn(), keys);
  ASSERT_TRUE(selected.has_value());
  EXPECT_EQ(*selected, 12u);
}

TEST_F(CertFixture, ChainRoundTripsThroughWire) {
  CertChain c;
  c.hops.push_back(make_cert(10, 11, 0, 2));
  auto decoded = CertChain::decode(c.encode());
  EXPECT_EQ(decoded.hops.size(), 1u);
  EXPECT_TRUE(decoded.verify(id, 10, members_fn(), keys).has_value());
}

TEST_F(CertFixture, RejectsInsufficientSigners) {
  CertChain c;
  c.hops.push_back(make_cert(10, 11, 0, 1));  // 1 of 3 < majority
  EXPECT_FALSE(c.verify(id, 10, members_fn(), keys).has_value());
}

TEST_F(CertFixture, RejectsBrokenLinkage) {
  CertChain c;
  c.hops.push_back(make_cert(10, 11, 0, 2));
  c.hops.push_back(make_cert(12, 11, 1, 2));  // hop from the wrong group
  EXPECT_FALSE(c.verify(id, 10, members_fn(), keys).has_value());
}

TEST_F(CertFixture, RejectsForgedSignature) {
  CertChain c;
  HopCert h = make_cert(10, 11, 0, 2);
  h.sigs[0].second[0] ^= 0x01;
  c.hops.push_back(h);
  EXPECT_FALSE(c.verify(id, 10, members_fn(), keys).has_value());
}

TEST_F(CertFixture, RejectsDuplicateSigners) {
  CertChain c;
  HopCert h = make_cert(10, 11, 0, 1);
  h.sigs.push_back(h.sigs[0]);  // same node twice
  c.hops.push_back(h);
  EXPECT_FALSE(c.verify(id, 10, members_fn(), keys).has_value());
}

TEST_F(CertFixture, RejectsWrongWalkId) {
  CertChain c;
  c.hops.push_back(make_cert(10, 11, 0, 2));
  WalkId other{10, 78};
  EXPECT_FALSE(c.verify(other, 10, members_fn(), keys).has_value());
}

TEST_F(CertFixture, VerificationCostGrowsWithChain) {
  CertChain c1, c3;
  c1.hops.push_back(make_cert(10, 11, 0, 2));
  c3.hops.push_back(make_cert(10, 11, 0, 2));
  c3.hops.push_back(make_cert(11, 12, 1, 2));
  c3.hops.push_back(make_cert(12, 10, 2, 2));
  EXPECT_LT(c1.verification_count(), c3.verification_count());
}

TEST(WalkUniformity, LongWalksPassChiSquare) {
  Rng rng(99);
  auto counts = simulate_walk_endpoints(32, 6, 12, 32000, rng);
  EXPECT_TRUE(passes_uniformity_test(counts, 0.99));
}

TEST(WalkUniformity, OneHopWalksAreNotUniform) {
  Rng rng(100);
  // A single hop can only reach direct neighbors: wildly non-uniform.
  auto counts = simulate_walk_endpoints(64, 3, 1, 64000, rng);
  EXPECT_FALSE(passes_uniformity_test(counts, 0.99));
}

TEST(WalkUniformity, OptimalLengthGrowsWithGroupCount) {
  Rng rng(101);
  std::size_t small = optimal_walk_length(8, 4, 0.99, 8000, 20, rng);
  std::size_t large = optimal_walk_length(512, 4, 0.99, 8000, 20, rng);
  EXPECT_LE(small, large);
  EXPECT_GE(large, 4u);
}

TEST(WalkUniformity, DenserGraphNeedsShorterWalks) {
  Rng rng(102);
  std::size_t sparse = optimal_walk_length(256, 2, 0.99, 8000, 25, rng);
  std::size_t dense = optimal_walk_length(256, 10, 0.99, 8000, 25, rng);
  EXPECT_LE(dense, sparse);
}

// ---------------------------------------------------------------------------
// Gossip policies
// ---------------------------------------------------------------------------

std::vector<NeighborRef> three_cycle_neighbors() {
  return {
      {100, 0, 0}, {101, 0, 1}, {102, 1, 0}, {103, 1, 1}, {104, 2, 0}, {105, 2, 1},
  };
}

TEST(Gossip, FloodRelaysEverywhere) {
  GossipState g(forward_flood());
  auto r = g.relays(BroadcastId{1, 1}, {}, three_cycle_neighbors());
  EXPECT_EQ(r.size(), 6u);
}

TEST(Gossip, CyclePolicyRestrictsButKeepsMandatoryLink) {
  GossipState g(forward_cycles({1}));
  auto r = g.relays(BroadcastId{1, 1}, {}, three_cycle_neighbors());
  // Cycle 1 both directions + the mandatory cycle-0 successor.
  ASSERT_EQ(r.size(), 3u);
  std::set<GroupId> targets;
  for (const auto& n : r) targets.insert(n.group);
  EXPECT_TRUE(targets.contains(100));  // mandatory deterministic link
  EXPECT_TRUE(targets.contains(102));
  EXPECT_TRUE(targets.contains(103));
}

TEST(Gossip, NonePolicyStillGuaranteesDelivery) {
  GossipState g(forward_none());
  auto r = g.relays(BroadcastId{1, 1}, {}, three_cycle_neighbors());
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].group, 100u);
  EXPECT_EQ(r[0].cycle, 0u);
  EXPECT_EQ(r[0].direction, 0);
}

TEST(Gossip, RandomPolicyIsDeterministicPerBroadcast) {
  auto f = forward_random(0.5, 7);
  auto g1 = GossipState(f), g2 = GossipState(f);
  auto n = three_cycle_neighbors();
  auto r1 = g1.relays(BroadcastId{3, 9}, {}, n);
  auto r2 = g2.relays(BroadcastId{3, 9}, {}, n);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) EXPECT_EQ(r1[i].group, r2[i].group);
}

TEST(Gossip, RandomPolicyVariesAcrossBroadcasts) {
  GossipState g(forward_random(0.5, 7));
  auto n = three_cycle_neighbors();
  std::set<std::size_t> sizes;
  for (std::uint64_t s = 0; s < 32; ++s) {
    sizes.insert(g.relays(BroadcastId{1, s}, {}, n).size());
  }
  EXPECT_GT(sizes.size(), 1u);
}

TEST(Gossip, FirstSightingDedups) {
  GossipState g(forward_flood());
  EXPECT_TRUE(g.first_sighting(BroadcastId{1, 1}));
  EXPECT_FALSE(g.first_sighting(BroadcastId{1, 1}));
  EXPECT_TRUE(g.first_sighting(BroadcastId{1, 2}));
  EXPECT_TRUE(g.seen(BroadcastId{1, 1}));
  EXPECT_FALSE(g.seen(BroadcastId{2, 1}));
}

}  // namespace
}  // namespace atum::overlay
