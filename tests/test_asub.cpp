// Tests for ASub: the pub/sub-to-group-communication mapping (§4.1).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "apps/asub/asub.h"

namespace atum::asub {
namespace {

core::Params fast_params() {
  core::Params p;
  p.hc = 3;
  p.rwl = 4;
  p.gmax = 8;
  p.gmin = 4;
  p.round_duration = millis(20);
  p.heartbeat_period = seconds(5);
  return p;
}

std::string text(const net::Payload& b) { return std::string(b.begin(), b.end()); }
Bytes event(const std::string& s) { return Bytes(s.begin(), s.end()); }

struct ASubFixture : ::testing::Test {
  ASubService svc{fast_params(), net::NetworkConfig::datacenter(), 313};
  std::map<NodeId, std::vector<std::string>> inbox;

  void watch(Topic& t, NodeId n) {
    t.set_event_handler(n, [this, n](NodeId, const net::Payload& e) { inbox[n].push_back(text(e)); });
  }
};

TEST_F(ASubFixture, CreateTopicBootstraps) {
  Topic& t = svc.create_topic("news", 1);
  EXPECT_TRUE(t.is_subscribed(1));
  EXPECT_TRUE(svc.has_topic("news"));
  EXPECT_EQ(svc.topic_count(), 1u);
}

TEST_F(ASubFixture, DuplicateTopicRejected) {
  svc.create_topic("news", 1);
  EXPECT_THROW(svc.create_topic("news", 2), std::invalid_argument);
}

TEST_F(ASubFixture, UnknownTopicRejected) {
  EXPECT_THROW(svc.topic("nope"), std::invalid_argument);
}

TEST_F(ASubFixture, SubscribersReceivePublishedEvents) {
  Topic& t = svc.create_topic("sports", 1);
  watch(t, 1);
  for (NodeId n = 2; n <= 5; ++n) {
    watch(t, n);
    t.subscribe(n);
    t.settle(seconds(40));
    ASSERT_TRUE(t.is_subscribed(n)) << "subscriber " << n;
  }
  t.publish(1, event("goal!"));
  t.settle(seconds(20));
  for (NodeId n = 1; n <= 5; ++n) {
    ASSERT_EQ(inbox[n].size(), 1u) << "subscriber " << n;
    EXPECT_EQ(inbox[n][0], "goal!");
  }
}

TEST_F(ASubFixture, AnySubscriberCanPublish) {
  Topic& t = svc.create_topic("chat", 1);
  watch(t, 1);
  watch(t, 2);
  t.subscribe(2);
  t.settle(seconds(40));
  t.publish(2, event("hi from 2"));
  t.settle(seconds(20));
  ASSERT_EQ(inbox[1].size(), 1u);
  EXPECT_EQ(inbox[1][0], "hi from 2");
}

TEST_F(ASubFixture, UnsubscribedNodeStopsReceiving) {
  Topic& t = svc.create_topic("spam", 1);
  watch(t, 1);
  watch(t, 2);
  watch(t, 3);
  t.subscribe(2);
  t.settle(seconds(40));
  t.subscribe(3);
  t.settle(seconds(40));
  t.unsubscribe(3);
  t.settle(seconds(30));
  t.publish(1, event("after-unsub"));
  t.settle(seconds(20));
  EXPECT_EQ(inbox[2].size(), 1u);
  EXPECT_TRUE(inbox[3].empty());
}

TEST_F(ASubFixture, TopicsAreIsolated) {
  Topic& a = svc.create_topic("alpha", 1);
  Topic& b = svc.create_topic("beta", 1);
  watch(a, 1);
  watch(b, 1);
  a.publish(1, event("only-alpha"));
  a.settle(seconds(10));
  b.settle(seconds(10));
  ASSERT_EQ(inbox[1].size(), 1u);
  EXPECT_EQ(inbox[1][0], "only-alpha");
}

TEST_F(ASubFixture, ManyEventsInOrderPerPublisher) {
  Topic& t = svc.create_topic("feed", 1);
  watch(t, 2);
  t.subscribe(2);
  t.settle(seconds(40));
  for (int i = 0; i < 5; ++i) {
    t.publish(1, event("e" + std::to_string(i)));
    t.settle(seconds(10));
  }
  ASSERT_EQ(inbox[2].size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(inbox[2][static_cast<std::size_t>(i)], "e" + std::to_string(i));
}

}  // namespace
}  // namespace atum::asub
