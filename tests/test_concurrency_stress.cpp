// Multithreaded stress tests for the concurrency primitives the parallel
// simulator and the real-socket transport will lean on: net::Payload's
// refcounted buffer sharing and the per-frame SHA-256 digest memo.
//
// The simulator itself is still single-threaded; these tests exist so the
// TSan CI job (ATUM_SANITIZE=thread) gates the primitives NOW — the
// sharded-simulator PR inherits a working race detector instead of
// bootstrapping one. They also run in the plain build, where they double
// as functional checks of cross-thread value consistency.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/serde.h"
#include "crypto/sha256.h"
#include "net/message.h"
#include "obs/registry.h"

namespace atum::net {
namespace {

Bytes pattern_bytes(std::size_t n) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(i * 31 + 7);
  return b;
}

// N threads copy, slice, and drop Payloads that all share one frame. The
// control block's refcount must stay exact under contention: the frame is
// freed exactly once and never while a slice is alive (ASan would flag a
// use-after-free; TSan a racy refcount).
TEST(ConcurrencyStress, PayloadRefcountSharedAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  const Bytes frame = pattern_bytes(1024);
  Payload root{frame};

  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> checks{0};
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&root, &checks, t] {
      for (int i = 0; i < kIters; ++i) {
        Payload copy = root;  // refcount ++ / -- across threads
        std::span<const std::uint8_t> view(copy.data() + (t % 7), 64 + (i % 128));
        Payload slice = copy.slice(view);
        // The slice keeps the frame alive even after the copy dies.
        copy = Payload{};
        if (slice.size() >= 1 && slice.data()[0] == view[0]) {
          checks.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(checks.load(), static_cast<std::uint64_t>(kThreads) * kIters);
  // All worker-held references are gone; only root remains.
  EXPECT_EQ(root.use_count(), 1);
  EXPECT_EQ(root, frame);
}

// N threads request the digest of the SAME range concurrently. The memo on
// the shared control block must be race-free and every thread must observe
// the one true digest (a torn memo write would surface as a mismatch, and
// TSan as a data race).
TEST(ConcurrencyStress, DigestMemoSameRangeAllThreadsAgree) {
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  Payload frame{pattern_bytes(4096)};
  const crypto::Digest expected = crypto::sha256(frame.data(), frame.size());

  std::vector<std::thread> workers;
  std::atomic<int> mismatches{0};
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&frame, &expected, &mismatches] {
      for (int i = 0; i < kIters; ++i) {
        if (frame.digest() != expected) mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Adversarial memo churn: threads alternate between TWO distinct ranges of
// one frame, so the memo set is continuously re-keyed from multiple
// threads. Every returned digest must still be the correct digest FOR THE
// RANGE ASKED — a stale or torn (offset, size, digest) triple would return
// range A's hash for range B.
TEST(ConcurrencyStress, DigestMemoRekeyingNeverServesWrongRange) {
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  Payload frame{pattern_bytes(4096)};
  Payload lo = frame.slice({frame.data(), 1000});
  Payload hi = frame.slice({frame.data() + 2000, 1500});
  const crypto::Digest lo_expected = crypto::sha256(lo.data(), lo.size());
  const crypto::Digest hi_expected = crypto::sha256(hi.data(), hi.size());

  std::vector<std::thread> workers;
  std::atomic<int> mismatches{0};
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const bool want_lo = (i + t) % 2 == 0;
        const Payload& p = want_lo ? lo : hi;
        const crypto::Digest& expected = want_lo ? lo_expected : hi_expected;
        if (p.digest() != expected) mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Eviction churn across the WHOLE memo set: more distinct ranges than
// kDigestMemoSlots, hammered from all threads, so the round-robin cursor
// and every slot are concurrently overwritten. Exercises the slot-scan /
// insert / evict paths under contention (the two-range test above fits in
// the set and stops evicting once warm). Correctness bar is the same:
// digest() always returns the digest of the range asked.
TEST(ConcurrencyStress, DigestMemoEvictionChurnNeverServesWrongRange) {
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  constexpr std::size_t kRanges = Payload::kDigestMemoSlots + 3;
  Payload frame{pattern_bytes(8192)};

  std::vector<Payload> ranges;
  std::vector<crypto::Digest> expected;
  for (std::size_t r = 0; r < kRanges; ++r) {
    Payload p = frame.slice({frame.data() + 100 * r, 512 + 64 * r});
    expected.push_back(crypto::sha256(p.data(), p.size()));
    ranges.push_back(std::move(p));
  }

  std::vector<std::thread> workers;
  std::atomic<int> mismatches{0};
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        // Each thread walks the ranges with a different stride so slots
        // are filled and evicted in conflicting orders.
        const std::size_t r = (static_cast<std::size_t>(i) * (t + 1) + t) % kRanges;
        if (ranges[r].digest() != expected[r]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// The checkpoint-install interleaving: a state-reply frame is shared by the
// vote counter, which digests the checkpoint BODY (memoizing the digest on
// the frame's control block — f+1 byte-identical votes match on it), and by
// the adopters, which slice ledger records out of the same body, digest
// them, and drop them while votes are still being counted. Model exactly
// that: memo hits on one hot range racing memo inserts/evictions for many
// record subranges plus refcount churn down to the last reference. TSan
// gates the races; the asserts gate value consistency either way.
TEST(ConcurrencyStress, CheckpointInstallBodyDigestVsRecordSliceChurn) {
  constexpr int kThreads = 8;
  constexpr int kIters = 300;
  Payload frame{pattern_bytes(16384)};
  Payload body = frame.slice({frame.data() + 64, 12000});
  const crypto::Digest body_expected = crypto::sha256(body.data(), body.size());

  std::vector<std::thread> workers;
  std::atomic<int> mismatches{0};
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        if (t % 2 == 0) {
          // Vote counter: the body digest must be stable however hard the
          // record slices churn the memo set around it.
          if (body.digest() != body_expected) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          // Adopter: carve a record out of the body, digest it, drop it.
          // Offsets vary per thread and iteration so the memo keeps
          // inserting and evicting while the body entry is being read.
          const std::size_t off = 64 + 128 * ((static_cast<std::size_t>(i) * (t + 1)) % 80);
          Payload record = frame.slice({frame.data() + off, 256 + (static_cast<std::size_t>(t) * 32)});
          const crypto::Digest direct = crypto::sha256(record.data(), record.size());
          if (record.digest() != direct) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(body.digest(), body_expected);
}

// The sha256_digest_count() instrumentation gauge must stay exact when
// digests are computed from worker threads (the scenario reports diff it
// across phases; a racy counter would both trip TSan and drift).
TEST(ConcurrencyStress, DigestCountExactUnderConcurrentHashing) {
  constexpr int kThreads = 4;
  constexpr int kIters = 250;
  const std::uint64_t before = crypto::sha256_digest_count();
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kIters; ++i) {
        Bytes b(64, static_cast<std::uint8_t>(t * 17 + i));
        (void)crypto::sha256(b);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(crypto::sha256_digest_count() - before,
            static_cast<std::uint64_t>(kThreads) * kIters);
}

// One obs::Registry hammered from N threads: half the threads bump cells
// they registered up front (the cached-pointer hot path), half keep
// re-registering the same names (the locked path) while a sampler thread
// snapshots continuously. Counter totals must come out exact and every
// re-registration must return the same stable cell address — a racy map
// rebuild or a moved cell would both trip TSan and break the totals.
TEST(ConcurrencyStress, ObsRegistryCountersExactUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  obs::Registry reg;
  obs::Counter& shared = reg.counter("stress.shared");
  obs::Histogram& hist = reg.histogram("stress.hist");

  std::vector<std::thread> workers;
  std::atomic<int> address_mismatches{0};
  workers.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      obs::Counter& mine =
          reg.counter("stress.per_thread", {{"t", std::to_string(t)}});
      for (int i = 0; i < kIters; ++i) {
        if (t % 2 == 0) {
          shared.inc();
          mine.inc();
        } else {
          // Locked path: re-registration must hand back the same cells.
          if (&reg.counter("stress.shared") != &shared ||
              &reg.counter("stress.per_thread", {{"t", std::to_string(t)}}) != &mine) {
            address_mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          shared.inc();
          mine.inc();
        }
        hist.record(static_cast<std::uint64_t>(i));
      }
    });
  }
  // Sampler thread: concurrent snapshots must never crash or deadlock;
  // values are monotone so any snapshot is internally consistent.
  workers.emplace_back([&reg] {
    for (int i = 0; i < 200; ++i) (void)reg.sample(i);
  });
  for (auto& w : workers) w.join();

  EXPECT_EQ(address_mismatches.load(), 0);
  EXPECT_EQ(reg.value("stress.shared"), static_cast<std::uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.value("stress.per_thread", {{"t", std::to_string(t)}}),
              static_cast<std::uint64_t>(kIters));
  }
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace atum::net
