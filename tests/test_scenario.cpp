// Scenario engine tests: spec validation, driver mechanics on small
// systems, determinism of the JSON report (byte-identical per seed), and
// the fault primitives' observable effects (partition -> delivery drop ->
// recovery at least to pre-partition levels after heal; flash crowds
// joining; correlated group kills sparing survivors; Byzantine conversion
// flipping live behavior).
#include <gtest/gtest.h>

#include <algorithm>

#include "scenario/driver.h"
#include "scenario/presets.h"
#include "scenario/report.h"
#include "scenario/spec.h"

using namespace atum;
using namespace atum::scenario;

namespace {

// A compact baseline spec that runs in well under a second: async engine,
// no signature verification, light broadcast load.
ScenarioSpec small_spec(std::size_t nodes = 60, std::uint64_t seed = 7) {
  ScenarioSpec s;
  s.name = "test";
  s.nodes = nodes;
  s.seed = seed;
  s.params.hc = 3;
  s.params.rwl = 4;
  s.params.gmin = 7;
  s.params.gmax = 14;
  s.params.engine = smr::EngineKind::kAsync;
  s.params.heartbeat_period = seconds(10.0);
  s.params.verify_signatures = false;
  s.relay_cycles = {0, 1};
  s.drain = seconds(10.0);
  return s;
}

Phase bcast_phase(const char* name, double per_second = 0.5,
                  DurationMicros duration = seconds(20.0)) {
  Phase p;
  p.name = name;
  p.duration = duration;
  p.broadcasts.per_second = per_second;
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// Spec validation
// ---------------------------------------------------------------------------

TEST(ScenarioSpecTest, ValidSpecPasses) {
  ScenarioSpec s = small_spec();
  s.phases = {bcast_phase("only")};
  EXPECT_NO_THROW(s.validate());
}

TEST(ScenarioSpecTest, RejectsNonsense) {
  ScenarioSpec s = small_spec();
  EXPECT_THROW(s.validate(), std::invalid_argument);  // no phases

  s.phases = {bcast_phase("a"), bcast_phase("a")};
  EXPECT_THROW(s.validate(), std::invalid_argument);  // duplicate names

  s.phases = {bcast_phase("a")};
  s.phases[0].duration = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);  // empty phase

  s.phases = {bcast_phase("a")};
  s.phases[0].churn.joins_per_minute = -1.0;
  EXPECT_THROW(s.validate(), std::invalid_argument);  // negative rate

  s.phases = {bcast_phase("a")};
  s.phases[0].broadcasts.payload_bytes = 8;  // smaller than the header
  EXPECT_THROW(s.validate(), std::invalid_argument);

  s.phases = {bcast_phase("a")};
  PartitionSplit split;
  split.minority_fraction = 1.5;
  s.phases[0].partition = split;
  EXPECT_THROW(s.validate(), std::invalid_argument);

  s.phases = {bcast_phase("a")};
  Expectation e;
  e.phase = "missing";
  s.expectations = {e};
  EXPECT_THROW(s.validate(), std::invalid_argument);  // unknown phase

  s.expectations.clear();
  s.relay_cycles = {99};
  EXPECT_THROW(s.validate(), std::invalid_argument);  // cycle out of range
}

TEST(ScenarioSpecTest, AllPresetsValidateAndAreListed) {
  auto presets = preset_list();
  ASSERT_GE(presets.size(), 5u);
  for (const auto& info : presets) {
    ScenarioSpec s = make_preset(info.name);
    EXPECT_EQ(s.name, info.name);
    EXPECT_NO_THROW(s.validate()) << info.name;
    EXPECT_GT(s.phases.size(), 0u) << info.name;
  }
  EXPECT_THROW(make_preset("no_such_preset"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Driver basics
// ---------------------------------------------------------------------------

TEST(ScenarioDriverTest, SteadyBroadcastDeliversEverywhere) {
  ScenarioSpec s = small_spec();
  s.phases = {bcast_phase("steady")};
  ScenarioDriver driver(s);
  ScenarioReport r = driver.run();
  ASSERT_EQ(r.phases.size(), 1u);
  const PhaseMetrics& p = r.phases[0];
  EXPECT_GT(p.broadcasts_sent, 0u);
  EXPECT_EQ(p.deliveries, p.deliveries_expected);
  EXPECT_EQ(p.broadcasts_fully_delivered, p.broadcasts_sent);
  EXPECT_EQ(p.latency_samples, p.deliveries);
  EXPECT_GT(p.latency_ms_p50, 0.0);
  EXPECT_GE(p.latency_ms_max, p.latency_ms_p50);
  EXPECT_EQ(p.joined_correct_end, s.nodes);
  EXPECT_EQ(p.correct_evicted_end, 0u);
  // The exact flow sweep ran: no more serialization entries than nodes.
  EXPECT_LE(p.flow_count_end, s.nodes);
  EXPECT_THROW(driver.run(), std::logic_error);  // single-shot
}

TEST(ScenarioDriverTest, RunTwiceSameSeedIsByteIdentical) {
  // The acceptance-criterion determinism pin, on a scaled-down
  // partition_heal: same preset + same seed => identical JSON bytes.
  ScenarioSpec a = make_preset("partition_heal", 90, 1234);
  ScenarioSpec b = make_preset("partition_heal", 90, 1234);
  // Shrink durations to keep the suite fast.
  for (auto* spec : {&a, &b}) {
    for (Phase& ph : spec->phases) ph.duration = seconds(15.0);
    spec->drain = seconds(10.0);
  }
  std::string ja = ScenarioDriver(a).run().to_json();
  std::string jb = ScenarioDriver(b).run().to_json();
  EXPECT_EQ(ja, jb);
  EXPECT_NE(ja.find("\"scenario\":\"partition_heal\""), std::string::npos);
}

TEST(ScenarioDriverTest, DifferentSeedsStillSatisfyInvariants) {
  for (std::uint64_t seed : {1ULL, 99ULL, 31337ULL}) {
    ScenarioSpec s = make_preset("partition_heal", 90, seed);
    for (Phase& ph : s.phases) ph.duration = seconds(20.0);
    s.drain = seconds(10.0);
    ScenarioDriver driver(s);
    ScenarioReport r = driver.run();
    // The partition must hurt and the heal must recover: the built-in
    // expectations (baseline floor + heal >= baseline) hold per seed.
    EXPECT_TRUE(ScenarioDriver::check(driver.spec(), r).empty())
        << "seed " << seed << ": " << ScenarioDriver::check(driver.spec(), r)[0];
    const PhaseMetrics* part = r.phase("partition");
    const PhaseMetrics* baseline = r.phase("baseline");
    ASSERT_NE(part, nullptr);
    ASSERT_NE(baseline, nullptr);
    EXPECT_LT(part->delivery_ratio(), baseline->delivery_ratio() - 0.2)
        << "seed " << seed << ": the partition did not visibly cut delivery";
  }
}

TEST(ScenarioDriverTest, FlashCrowdJoinsComplete) {
  ScenarioSpec s = small_spec(60, 11);
  Phase flash = bcast_phase("flash", 0.25, seconds(30.0));
  flash.flash_joiners = 12;  // +20%
  s.phases = {flash};
  s.drain = seconds(20.0);
  ScenarioReport r = ScenarioDriver(s).run();
  const PhaseMetrics& p = r.phases[0];
  EXPECT_EQ(p.joins_requested, 12u);
  EXPECT_EQ(p.joins_completed, 12u);
  EXPECT_EQ(p.joined_correct_end, 72u);
}

TEST(ScenarioDriverTest, ChurnJoinsAndLeavesComplete) {
  ScenarioSpec s = small_spec(60, 13);
  Phase churn = bcast_phase("churn", 0.25, seconds(30.0));
  churn.churn.joins_per_minute = 12.0;
  churn.churn.leaves_per_minute = 12.0;
  s.phases = {churn};
  s.drain = seconds(20.0);
  ScenarioReport r = ScenarioDriver(s).run();
  const PhaseMetrics& p = r.phases[0];
  EXPECT_GT(p.joins_requested, 0u);
  EXPECT_GT(p.leaves_requested, 0u);
  EXPECT_EQ(p.joins_completed, p.joins_requested);
  EXPECT_EQ(p.leaves_completed, p.leaves_requested);
}

TEST(ScenarioDriverTest, CorrelatedGroupKillSparesSurvivors) {
  ScenarioSpec s = small_spec(90, 17);
  Phase baseline = bcast_phase("baseline", 0.5, seconds(15.0));
  Phase failure = bcast_phase("failure", 0.5, seconds(20.0));
  failure.kill_groups = 2;
  s.phases = {baseline, failure};
  ScenarioReport r = ScenarioDriver(s).run();
  const PhaseMetrics* f = r.phase("failure");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->groups_killed, 2u);
  EXPECT_GT(f->nodes_killed, 0u);
  // Expected receivers shrank to the survivors and they all keep receiving.
  EXPECT_EQ(f->joined_correct_end, 90u - f->nodes_killed);
  EXPECT_GE(f->delivery_ratio(), 0.99);
}

TEST(ScenarioDriverTest, ByzantineConversionFlipsLiveBehaviorAndCountsIt) {
  ScenarioSpec s = small_spec(60, 19);
  Phase calm = bcast_phase("calm", 0.5, seconds(10.0));
  Phase storm = bcast_phase("storm", 0.5, seconds(20.0));
  MakeByzantine conv;
  conv.fraction = 0.10;
  conv.behavior = core::NodeBehavior::kByzantineEvictor;
  storm.byzantine = conv;
  s.phases = {calm, storm};
  ScenarioDriver driver(s);
  ScenarioReport r = driver.run();
  const PhaseMetrics* storm_m = r.phase("storm");
  ASSERT_NE(storm_m, nullptr);
  EXPECT_EQ(storm_m->byzantine_converted, 6u);  // 10% of 60
  EXPECT_EQ(storm_m->joined_correct_end, 54u);
  // The converted nodes really are Byzantine at the node level now.
  std::size_t byz = 0;
  for (NodeId id : driver.system().node_ids()) {
    if (driver.system().node(id).behavior() == core::NodeBehavior::kByzantineEvictor) ++byz;
  }
  EXPECT_EQ(byz, 6u);
  // Correct nodes keep delivering to each other despite the storm.
  EXPECT_GE(storm_m->delivery_ratio(), 0.80);
}

TEST(ScenarioDriverTest, StreamLoadDeliversChunksAndBoundsStores) {
  ScenarioSpec s = small_spec(60, 23);
  Phase stream = bcast_phase("stream", 0.25, seconds(30.0));
  stream.stream.chunks_per_second = 2.0;
  stream.stream.chunk_bytes = 512;
  stream.stream.store_window = 8;
  s.phases = {stream};
  s.drain = seconds(15.0);
  ScenarioReport r = ScenarioDriver(s).run();
  const PhaseMetrics& p = r.phases[0];
  EXPECT_GT(p.stream_chunks_sent, 20u);
  EXPECT_GE(p.stream_ratio(), 0.95);
}

// ---------------------------------------------------------------------------
// Telemetry (ISSUE 9): time_series sampling + tracing stay byte-deterministic
// ---------------------------------------------------------------------------

TEST(ScenarioTelemetryTest, TimeSeriesAndTraceAreByteIdenticalAcrossRuns) {
  auto make = [] {
    ScenarioSpec s = make_preset("partition_heal", 90, 4242);
    for (Phase& ph : s.phases) ph.duration = seconds(15.0);
    s.drain = seconds(10.0);
    s.metrics_interval = seconds(1.0);
    s.trace = true;
    s.trace_ring = 512;
    return s;
  };
  ScenarioDriver da(make());
  std::string ja = da.run().to_json();
  std::string ta = da.system().tracer().to_chrome_json();
  ScenarioDriver db(make());
  std::string jb = db.run().to_json();
  std::string tb = db.system().tracer().to_chrome_json();
  EXPECT_EQ(ja, jb);
  EXPECT_EQ(ta, tb);
  EXPECT_NE(ja.find("\"time_series\":["), std::string::npos);
  EXPECT_NE(ta.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(ta.find("\"atum_summary\""), std::string::npos);
}

TEST(ScenarioTelemetryTest, TimeSeriesShowsThePartitionDip) {
  ScenarioSpec s = make_preset("partition_heal", 90, 77);
  for (Phase& ph : s.phases) ph.duration = seconds(20.0);
  // The delivery ratio is smoothed over a trailing window of settled
  // broadcasts; the heal phase must outlast that window (8 broadcasts at
  // the preset send rate) so the final points are all post-heal.
  s.phases.back().duration = seconds(40.0);
  s.drain = seconds(10.0);
  s.metrics_interval = seconds(1.0);
  ScenarioDriver driver(s);
  ScenarioReport r = driver.run();
  ASSERT_FALSE(r.time_series.empty());
  // One point per interval across phases + drain.
  EXPECT_GE(r.time_series.size(), 60u);
  const PhaseMetrics* part = r.phase("partition");
  ASSERT_NE(part, nullptr);
  double min_baseline = 1.0;
  double min_partition = 1.0;
  double last = 0.0;
  for (const TimeSeriesPoint& p : r.time_series) {
    if (p.at <= part->start) min_baseline = std::min(min_baseline, p.delivery_ratio);
    if (p.at > part->start && p.at <= part->end) {
      min_partition = std::min(min_partition, p.delivery_ratio);
    }
    last = p.delivery_ratio;
  }
  EXPECT_GT(min_baseline, 0.95);       // level before the cut
  EXPECT_LT(min_partition, 0.85);      // visible dip during the partition
  EXPECT_GT(last, 0.95);               // recovered by the end of the drain
  // Gauges are populated, not zero-filled.
  EXPECT_GT(r.time_series.back().joined, 0u);
  EXPECT_GT(r.time_series.back().groups, 0u);
}

TEST(ScenarioTelemetryTest, TelemetryOffOmitsTheSectionAndFieldsStayEmpty) {
  ScenarioSpec s = small_spec(60, 29);
  s.phases = {bcast_phase("only")};
  ScenarioReport r = ScenarioDriver(s).run();
  EXPECT_TRUE(r.time_series.empty());
  EXPECT_EQ(r.to_json().find("time_series"), std::string::npos);
}

TEST(ScenarioReportTest, CheckFlagsViolations) {
  ScenarioReport r;
  PhaseMetrics p;
  p.name = "a";
  p.deliveries_expected = 100;
  p.deliveries = 50;
  r.phases.push_back(p);
  ScenarioSpec s;
  Expectation e;
  e.phase = "a";
  e.min_delivery_ratio = 0.9;
  s.expectations = {e};
  auto violations = ScenarioDriver::check(s, r);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("delivery ratio"), std::string::npos);
  Expectation missing;
  missing.phase = "nope";
  s.expectations = {missing};
  EXPECT_EQ(ScenarioDriver::check(s, r).size(), 1u);
}
