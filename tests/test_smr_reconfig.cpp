// Tests for epoch-based SMR reconfiguration: membership changes through the
// agreement path, op carry-over across epochs, and member retirement.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/keys.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "smr/reconfig.h"

namespace atum::smr {
namespace {

Bytes op_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

struct ReconfigHarness {
  sim::Simulator sim;
  net::SimNetwork net{sim, net::NetworkConfig::datacenter(), 31};
  crypto::KeyStore keys{13};
  EngineOptions opt;
  std::map<NodeId, std::unique_ptr<ReconfigurableSmr>> nodes;
  std::map<NodeId, std::vector<std::pair<NodeId, Bytes>>> decided;
  std::map<NodeId, std::vector<std::uint64_t>> epochs_seen;

  explicit ReconfigHarness(EngineKind kind) {
    opt.kind = kind;
    opt.ds.round_duration = millis(20);
    opt.pbft.view_change_timeout = millis(500);
  }

  void add_node(NodeId n, const GroupConfig& cfg,
                std::optional<EpochState> resume = std::nullopt) {
    auto r = std::make_unique<ReconfigurableSmr>(net, n, cfg, keys, opt, std::move(resume));
    r->set_decide_handler([this, n](std::uint64_t, NodeId origin, const net::Payload& op) {
      decided[n].emplace_back(origin, op.to_bytes());
    });
    r->set_config_handler(
        [this, n](std::uint64_t epoch, const GroupConfig&) { epochs_seen[n].push_back(epoch); });
    nodes[n] = std::move(r);
  }

  void run_for(DurationMicros d) { sim.run_until(sim.now() + d); }
};

GroupConfig members(std::initializer_list<NodeId> ns) {
  GroupConfig c;
  c.members = ns;
  c.normalize();
  return c;
}

class ReconfigBothEngines : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ReconfigBothEngines, AppOpsDecideNormally) {
  ReconfigHarness h(GetParam());
  auto cfg = members({0, 1, 2, 3});
  for (NodeId n : cfg.members) h.add_node(n, cfg);
  h.nodes[0]->propose(op_bytes("plain"));
  h.run_for(seconds(5));
  for (NodeId n : cfg.members) {
    ASSERT_EQ(h.decided[n].size(), 1u) << "node " << n;
    EXPECT_EQ(h.decided[n][0].second, op_bytes("plain"));
  }
}

TEST_P(ReconfigBothEngines, ReconfigSwitchesEpochAndMembership) {
  ReconfigHarness h(GetParam());
  auto cfg = members({0, 1, 2, 3});
  for (NodeId n : cfg.members) h.add_node(n, cfg);
  auto next = members({0, 1, 2, 4});
  h.nodes[1]->propose_reconfig(next);
  h.run_for(seconds(5));
  for (NodeId n : {0u, 1u, 2u}) {
    ASSERT_EQ(h.epochs_seen[n].size(), 1u) << "node " << n;
    EXPECT_EQ(h.epochs_seen[n][0], 1u);
    EXPECT_EQ(h.nodes[n]->config().members, next.members);
    EXPECT_TRUE(h.nodes[n]->active());
  }
}

TEST_P(ReconfigBothEngines, RemovedMemberBecomesInactive) {
  ReconfigHarness h(GetParam());
  auto cfg = members({0, 1, 2, 3});
  for (NodeId n : cfg.members) h.add_node(n, cfg);
  h.nodes[0]->propose_reconfig(members({0, 1, 2}));
  h.run_for(seconds(5));
  EXPECT_FALSE(h.nodes[3]->active());
  EXPECT_TRUE(h.nodes[0]->active());
}

TEST_P(ReconfigBothEngines, NewEpochKeepsDeciding) {
  ReconfigHarness h(GetParam());
  auto cfg = members({0, 1, 2, 3});
  for (NodeId n : cfg.members) h.add_node(n, cfg);
  h.nodes[0]->propose_reconfig(members({0, 1, 2}));
  h.run_for(seconds(5));
  ASSERT_EQ(h.nodes[0]->epoch(), 1u);
  h.nodes[1]->propose(op_bytes("after-epoch"));
  h.run_for(seconds(5));
  for (NodeId n : {0u, 1u, 2u}) {
    ASSERT_FALSE(h.decided[n].empty()) << "node " << n;
    EXPECT_EQ(h.decided[n].back().second, op_bytes("after-epoch"));
  }
}

TEST_P(ReconfigBothEngines, InFlightOpSurvivesReconfig) {
  // An op proposed around the same time as a reconfiguration must not be
  // lost: the wrapper re-proposes unacked ops into the new epoch.
  ReconfigHarness h(GetParam());
  auto cfg = members({0, 1, 2, 3});
  for (NodeId n : cfg.members) h.add_node(n, cfg);
  h.nodes[0]->propose_reconfig(members({0, 1, 2}));
  h.nodes[1]->propose(op_bytes("must-survive"));
  h.run_for(seconds(10));
  for (NodeId n : {0u, 1u, 2u}) {
    int count = 0;
    for (const auto& [origin, op] : h.decided[n]) count += (op == op_bytes("must-survive"));
    EXPECT_EQ(count, 1) << "node " << n << " lost or duplicated the in-flight op";
  }
}

TEST_P(ReconfigBothEngines, GrowingTheGroupActivatesNewMember) {
  ReconfigHarness h(GetParam());
  auto cfg = members({0, 1, 2});
  for (NodeId n : cfg.members) h.add_node(n, cfg);
  auto next = members({0, 1, 2, 5});
  h.nodes[2]->propose_reconfig(next);
  h.run_for(seconds(5));
  ASSERT_EQ(h.nodes[0]->config().members, next.members);
  // The group layer creates the new member's replica once the config lands,
  // handing it the chain position from the join snapshot — without it the
  // joiner's instance tag would not match the group's epoch-1 instance.
  h.add_node(5, next, EpochState{h.nodes[0]->epoch(), h.nodes[0]->epoch_hash()});
  h.nodes[5]->propose(op_bytes("from-new-member"));
  h.run_for(seconds(5));
  for (NodeId n : {0u, 1u, 2u, 5u}) {
    ASSERT_FALSE(h.decided[n].empty()) << "node " << n;
    EXPECT_EQ(h.decided[n].back().second, op_bytes("from-new-member"));
  }
}

TEST_P(ReconfigBothEngines, SequentialReconfigs) {
  ReconfigHarness h(GetParam());
  auto cfg = members({0, 1, 2, 3});
  for (NodeId n : cfg.members) h.add_node(n, cfg);
  h.nodes[0]->propose_reconfig(members({0, 1, 2}));
  h.run_for(seconds(5));
  ASSERT_EQ(h.nodes[0]->epoch(), 1u);
  h.nodes[0]->propose_reconfig(members({0, 1}));
  h.run_for(seconds(5));
  EXPECT_EQ(h.nodes[0]->epoch(), 2u);
  EXPECT_EQ(h.nodes[0]->config().members, members({0, 1}).members);
  EXPECT_FALSE(h.nodes[2]->active());
}

TEST_P(ReconfigBothEngines, EmptyReconfigRefused) {
  ReconfigHarness h(GetParam());
  auto cfg = members({0, 1, 2, 3});
  for (NodeId n : cfg.members) h.add_node(n, cfg);
  h.nodes[0]->propose_reconfig(GroupConfig{});
  h.run_for(seconds(5));
  EXPECT_EQ(h.nodes[0]->epoch(), 0u);
  EXPECT_TRUE(h.nodes[0]->active());
}

INSTANTIATE_TEST_SUITE_P(Engines, ReconfigBothEngines,
                         ::testing::Values(EngineKind::kSync, EngineKind::kAsync),
                         [](const ::testing::TestParamInfo<EngineKind>& info) {
                           return info.param == EngineKind::kSync ? "Sync" : "Async";
                         });

}  // namespace
}  // namespace atum::smr
