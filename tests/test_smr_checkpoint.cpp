// Regression tests for the PBFT checkpoint window and the config-history
// hash chain:
//  * the executed history stays bounded by watermark_window however long
//    the instance runs (the seed pinned every batch frame forever);
//  * a laggard whose gap crosses the peers' truncation point installs the
//    stable checkpoint and reports the skipped range through the install
//    handler, then converges on the suffix;
//  * non-adjacent epochs with identical membership (A -> B -> A) get
//    distinct epoch hashes and therefore distinct instance tags;
//  * a member removed while partitioned learns of its removal from f+1
//    byte-identical removal notices once the partition heals (the
//    leave-confirmation gap).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "crypto/keys.h"
#include "crypto/sha256.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "smr/pbft.h"
#include "smr/reconfig.h"

namespace atum::smr {
namespace {

Bytes op_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

struct CkptGroup {
  sim::Simulator sim;
  net::SimNetwork net{sim, net::NetworkConfig::datacenter(), 77};
  crypto::KeyStore keys{29};
  GroupConfig cfg;
  std::vector<std::unique_ptr<PbftSmr>> replicas;
  std::map<NodeId, std::vector<std::pair<NodeId, Bytes>>> decided;

  explicit CkptGroup(std::size_t g, PbftOptions opt) {
    for (NodeId n = 0; n < g; ++n) cfg.members.push_back(n);
    for (NodeId n = 0; n < g; ++n) {
      auto r = std::make_unique<PbftSmr>(net::Transport(net, n), cfg, keys, opt,
                                         PbftFaultMode::kCorrect);
      r->set_decide_handler([this, n](std::uint64_t, NodeId origin, const net::Payload& op) {
        decided[n].emplace_back(origin, op.to_bytes());
      });
      replicas.push_back(std::move(r));
    }
  }

  PbftSmr& at(std::size_t i) { return *replicas[i]; }
  void run_for(DurationMicros d) { sim.run_until(sim.now() + d); }
};

// The memory bound, asserted: 200 sequential ops with batch_max_ops=1 fill
// 200 log slots; with interval 4 / window 16 the retained history must
// never exceed the window and the base must have advanced far past zero.
// On the seed behavior (exec_history_ unbounded) history_size() would be
// 200 and history_base() 0 — this test fails there by two orders.
TEST(PbftCheckpoint, ExecutedHistoryStaysBoundedByWindow) {
  PbftOptions opt;
  opt.checkpoint_interval = 4;
  opt.watermark_window = 16;
  opt.batch_max_ops = 1;
  CkptGroup g(4, opt);

  for (int i = 0; i < 200; ++i) {
    g.at(static_cast<std::size_t>(i % 4)).propose(op_bytes("op" + std::to_string(i)));
    if (i % 10 == 9) g.run_for(millis(200));
  }
  g.run_for(seconds(10));

  ASSERT_EQ(g.decided[0].size(), 200u);
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(g.decided[n], g.decided[0]) << "replica " << n;
    EXPECT_LE(g.at(n).history_size(), opt.watermark_window)
        << "replica " << n << " pinned more than the head window";
    EXPECT_GT(g.at(n).history_base(), 150u)
        << "replica " << n << " never truncated (seed behavior)";
    EXPECT_GE(g.at(n).stable_seq(), 180u) << "replica " << n;
  }
}

// Checkpoints keep advancing across a view change (the new primary's
// instance continues the same digest chain).
TEST(PbftCheckpoint, WindowSurvivesViewChange) {
  PbftOptions opt;
  opt.checkpoint_interval = 4;
  opt.watermark_window = 16;
  opt.batch_max_ops = 1;
  opt.view_change_timeout = millis(500);
  CkptGroup g(4, opt);

  for (int i = 0; i < 20; ++i) g.at(1).propose(op_bytes("a" + std::to_string(i)));
  g.run_for(seconds(5));
  ASSERT_EQ(g.decided[1].size(), 20u);

  g.at(0).set_fault(PbftFaultMode::kSilent);  // primary of view 0 dies
  for (int i = 0; i < 20; ++i) g.at(1).propose(op_bytes("b" + std::to_string(i)));
  g.run_for(seconds(20));

  ASSERT_EQ(g.decided[1].size(), 40u);
  for (NodeId n = 1; n < 4; ++n) {
    EXPECT_EQ(g.decided[n], g.decided[1]) << "replica " << n;
    EXPECT_GE(g.at(n).view(), 1u);
    EXPECT_LE(g.at(n).history_size(), opt.watermark_window) << "replica " << n;
    EXPECT_GE(g.at(n).stable_seq(), 20u)
        << "replica " << n << ": checkpoints must keep stabilizing in the new view";
  }
}

// A laggard cut off across several checkpoint boundaries cannot replay the
// truncated prefix: it must install the peers' stable checkpoint, report
// the skipped ops through the install handler, and decide the suffix
// identically — no op lost, none duplicated, ordinals accounted for.
TEST(PbftCheckpoint, InstallCatchUpAccountsForSkippedOps) {
  PbftOptions opt;
  opt.checkpoint_interval = 4;
  opt.watermark_window = 16;
  opt.batch_max_ops = 1;
  CkptGroup g(4, opt);

  g.net.isolate(3, true);
  for (int i = 0; i < 60; ++i) {
    g.at(0).propose(op_bytes("op" + std::to_string(i)));
    if (i % 10 == 9) g.run_for(millis(200));
  }
  g.run_for(seconds(5));
  ASSERT_EQ(g.decided[0].size(), 60u);
  ASSERT_TRUE(g.decided[3].empty());
  // The servers really truncated past the laggard's position.
  ASSERT_GT(g.at(0).history_base(), 0u);

  std::uint64_t skipped = 0;
  std::uint64_t installs = 0;
  g.at(3).set_install_handler(
      [&](std::uint64_t from_seq, std::uint64_t to_seq, std::uint64_t from_ops,
          std::uint64_t to_ops) {
        EXPECT_LT(from_seq, to_seq);
        skipped += to_ops - from_ops;
        ++installs;
      });
  g.net.isolate(3, false);
  for (int i = 60; i < 72; ++i) g.at(0).propose(op_bytes("op" + std::to_string(i)));
  g.run_for(seconds(30));
  // Once installed, the replica takes part in agreement again: ops proposed
  // now must decide at replica 3 through the normal three-phase path.
  for (int i = 72; i < 74; ++i) g.at(0).propose(op_bytes("op" + std::to_string(i)));
  g.run_for(seconds(10));

  ASSERT_EQ(g.decided[0].size(), 74u);
  EXPECT_GE(installs, 1u);
  ASSERT_EQ(skipped + g.decided[3].size(), 74u) << "gap + suffix must cover the sequence";
  EXPECT_GT(g.decided[3].size(), 0u);
  for (std::size_t i = 0; i < g.decided[3].size(); ++i) {
    EXPECT_EQ(g.decided[3][i], g.decided[0][static_cast<std::size_t>(skipped) + i])
        << "divergence at suffix index " << i;
  }
  EXPECT_LE(g.at(3).history_size(), opt.watermark_window);
}

GroupConfig members(std::initializer_list<NodeId> ns) {
  GroupConfig c;
  c.members = ns;
  c.normalize();
  return c;
}

struct ChainHarness {
  sim::Simulator sim;
  net::SimNetwork net{sim, net::NetworkConfig::datacenter(), 53};
  crypto::KeyStore keys{17};
  EngineOptions opt;
  std::map<NodeId, std::unique_ptr<ReconfigurableSmr>> nodes;

  ChainHarness() {
    opt.kind = EngineKind::kAsync;
    opt.pbft.view_change_timeout = millis(500);
  }

  void add_node(NodeId n, const GroupConfig& cfg) {
    nodes[n] = std::make_unique<ReconfigurableSmr>(net, n, cfg, keys, opt);
  }
  void run_for(DurationMicros d) { sim.run_until(sim.now() + d); }
};

// A -> B -> A: the third epoch has the same membership as the first but a
// different chain hash, so the PBFT instance tag differs too — an
// old-instance laggard can never adopt the new instance's history.
TEST(EpochChain, IdenticalMembershipsNonAdjacentEpochsGetDistinctTags) {
  ChainHarness h;
  auto a = members({0, 1, 2, 3});
  for (NodeId n : {0u, 1u, 2u, 3u, 4u}) h.add_node(n, a);
  // Node 4 idles with config A but is not a member; it joins in epoch B.

  std::vector<crypto::Digest> hashes;
  std::vector<std::uint64_t> tags;
  auto record = [&](NodeId n) {
    hashes.push_back(h.nodes[n]->epoch_hash());
    tags.push_back(crypto::digest_prefix64(h.nodes[n]->epoch_hash()));
  };
  record(0);  // epoch 0 (A)

  h.nodes[0]->propose_reconfig(members({0, 1, 2, 3, 4}));
  h.run_for(seconds(5));
  ASSERT_EQ(h.nodes[0]->epoch(), 1u);
  record(0);  // epoch 1 (B)

  h.nodes[1]->propose_reconfig(a);
  h.run_for(seconds(5));
  ASSERT_EQ(h.nodes[0]->epoch(), 2u);
  record(0);  // epoch 2 (A again)

  EXPECT_NE(hashes[0], hashes[1]);
  EXPECT_NE(hashes[1], hashes[2]);
  EXPECT_NE(hashes[0], hashes[2]) << "A->B->A epochs must not share a chain hash";
  EXPECT_NE(tags[0], tags[2]) << "A->B->A epochs must not share an instance tag";

  // All members of the final config agree on the chain head.
  for (NodeId n : a.members) {
    EXPECT_EQ(h.nodes[n]->epoch_hash(), hashes[2]) << "node " << n;
    EXPECT_EQ(h.nodes[n]->epoch(), 2u) << "node " << n;
  }
}

// The leave-confirmation gap: node 3 is partitioned while the group decides
// its removal; the config op retired the instance that decided it, so node
// 3 can never learn the outcome from that instance. After the heal, the
// retried removal notices (f+1 byte-identical from members of its
// last-known config) close the gap at the protocol level.
TEST(EpochChain, PartitionedRemovedMemberLearnsRemovalFromNotices) {
  ChainHarness h;
  auto cfg = members({0, 1, 2, 3});
  for (NodeId n : cfg.members) h.add_node(n, cfg);

  std::vector<std::pair<std::uint64_t, bool>> node3_configs;  // (epoch, contains self)
  h.nodes[3]->set_config_handler([&](std::uint64_t epoch, const GroupConfig& c) {
    node3_configs.emplace_back(epoch, c.contains(3));
  });

  h.net.isolate(3, true);
  h.run_for(millis(100));
  h.nodes[0]->propose_reconfig(members({0, 1, 2}));
  h.run_for(seconds(2));
  ASSERT_EQ(h.nodes[0]->epoch(), 1u);
  ASSERT_TRUE(h.nodes[3]->active()) << "zombie: decided out but never told";
  ASSERT_TRUE(node3_configs.empty());

  h.net.isolate(3, false);
  h.run_for(seconds(10));  // covers the 1 s and 5 s notice retries

  ASSERT_EQ(node3_configs.size(), 1u) << "node 3 must learn of its removal exactly once";
  EXPECT_EQ(node3_configs[0].first, 1u);
  EXPECT_FALSE(node3_configs[0].second);
  EXPECT_FALSE(h.nodes[3]->active());
  EXPECT_EQ(h.nodes[3]->epoch_hash(), h.nodes[0]->epoch_hash())
      << "the notice carries the new chain head";
}

}  // namespace
}  // namespace atum::smr
