// Tests for the group layer: replicated vgroup state, op encodings, and the
// vgroup-granularity cluster simulator (growth, churn, shuffling, split,
// merge, exchange suppression, fault dispersal).
#include <gtest/gtest.h>

#include "group/cluster_sim.h"
#include "group/vgroup_state.h"
#include "sim/simulator.h"

namespace atum::group {
namespace {

// ---------------------------------------------------------------------------
// VGroupState
// ---------------------------------------------------------------------------

TEST(VGroupState, MembersSortedAndQueried) {
  VGroupState s(9, {5, 1, 3}, 2);
  EXPECT_EQ(s.members(), (std::vector<NodeId>{1, 3, 5}));
  EXPECT_TRUE(s.has_member(3));
  EXPECT_FALSE(s.has_member(4));
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.cycle_count(), 2u);
}

TEST(VGroupState, NeighborRefsSkipSelfAndDuplicates) {
  VGroupState s(1, {10}, 2);
  s.set_successor(0, GroupView{2, {20}});
  s.set_predecessor(0, GroupView{3, {30}});
  s.set_successor(1, GroupView{2, {20}});
  s.set_predecessor(1, GroupView{2, {20}});  // same group both directions
  auto refs = s.neighbor_refs();
  // cycle0: 2 and 3; cycle1: successor 2 only (pred==succ collapses).
  EXPECT_EQ(refs.size(), 3u);
}

TEST(VGroupState, SelfNeighborBootstrapHasNoRefs) {
  VGroupState s(1, {10}, 3);
  GroupView self{1, {10}};
  for (std::size_t c = 0; c < 3; ++c) {
    s.set_successor(c, self);
    s.set_predecessor(c, self);
  }
  EXPECT_TRUE(s.neighbor_refs().empty());
}

TEST(VGroupState, RefreshNeighborUpdatesAllSlots) {
  VGroupState s(1, {10}, 2);
  s.set_successor(0, GroupView{2, {20}});
  s.set_predecessor(1, GroupView{2, {20}});
  s.refresh_neighbor(GroupView{2, {20, 21}});
  EXPECT_EQ(s.cycle(0).successor.members.size(), 2u);
  EXPECT_EQ(s.cycle(1).predecessor.members.size(), 2u);
}

TEST(VGroupState, FindGroupSeesSelfAndNeighbors) {
  VGroupState s(1, {10, 11}, 1);
  s.set_successor(0, GroupView{2, {20}});
  s.set_predecessor(0, GroupView{3, {30}});
  EXPECT_TRUE(s.find_group(1).has_value());
  EXPECT_TRUE(s.find_group(2).has_value());
  EXPECT_TRUE(s.find_group(3).has_value());
  EXPECT_FALSE(s.find_group(99).has_value());
  EXPECT_EQ(s.known_groups().size(), 3u);
}

TEST(VGroupOps, BroadcastRoundTrip) {
  BroadcastOp op;
  op.bcast = BroadcastId{7, 3};
  op.payload = Bytes{1, 2, 3};
  auto d = decode_op(op.encode());
  EXPECT_EQ(d.kind, OpKind::kBroadcast);
  EXPECT_EQ(d.broadcast.bcast, (BroadcastId{7, 3}));
  EXPECT_EQ(d.broadcast.payload, (Bytes{1, 2, 3}));
}

TEST(VGroupOps, SuspectRoundTrip) {
  SuspectOp op;
  op.suspect = 42;
  auto d = decode_op(op.encode());
  EXPECT_EQ(d.kind, OpKind::kSuspect);
  EXPECT_EQ(d.suspect.suspect, 42u);
}

TEST(VGroupOps, StartWalkRoundTrip) {
  StartWalkOp op;
  op.purpose = 1;
  op.nonce = 99;
  op.payload = Bytes{5};
  auto d = decode_op(op.encode());
  EXPECT_EQ(d.kind, OpKind::kStartWalk);
  EXPECT_EQ(d.walk.nonce, 99u);
}

TEST(VGroupOps, GarbageRejected) {
  EXPECT_THROW(decode_op(Bytes{0xFF, 0x00}), SerdeError);
  EXPECT_THROW(decode_op(Bytes{}), SerdeError);
}

TEST(VGroupOps, BroadcastDecodeIsZeroCopySlice) {
  BroadcastOp op;
  op.bcast = BroadcastId{7, 9};
  op.payload = net::Payload(Bytes(100, 0xEE));
  net::Payload wire(op.encode());
  auto d = decode_op(wire);
  ASSERT_EQ(d.kind, OpKind::kBroadcast);
  EXPECT_EQ(d.broadcast.payload, op.payload);
  // The decoded payload points into the decided op's buffer — a refcounted
  // slice, not a copy.
  EXPECT_GE(d.broadcast.payload.data(), wire.data());
  EXPECT_LE(d.broadcast.payload.data() + d.broadcast.payload.size(),
            wire.data() + wire.size());
  EXPECT_EQ(d.broadcast.payload.use_count(), wire.use_count());
}

TEST(VGroupOps, BroadcastOpEncodingIsTheGossipFrame) {
  // The core layer relays a decided broadcast op verbatim as the kGmGossip
  // group-message body (atum.cpp static_asserts the tag equality); pin the
  // byte layout both sides rely on.
  BroadcastOp op;
  op.bcast = BroadcastId{0x1122, 0x3344};
  op.payload = net::Payload(Bytes{9, 8, 7});
  ByteWriter w;
  w.u8(1);  // kGmGossip == OpKind::kBroadcast
  w.u64(0x1122);
  w.u64(0x3344);
  w.bytes(Bytes{9, 8, 7});
  EXPECT_EQ(op.encode(), w.take());
}

// ---------------------------------------------------------------------------
// ClusterSim
// ---------------------------------------------------------------------------

ClusterSimConfig fast_config() {
  ClusterSimConfig c;
  c.hc = 3;
  c.rwl = 5;
  c.gmin = 4;
  c.gmax = 8;
  c.kind = smr::EngineKind::kSync;
  c.round_duration = millis(10);  // fast rounds keep tests quick
  return c;
}

struct SimFixture : ::testing::Test {
  sim::Simulator sim;

  // Grows a cluster to `n` nodes, driving joins in waves.
  std::unique_ptr<ClusterSim> grow(std::size_t n, ClusterSimConfig cfg) {
    auto cs = std::make_unique<ClusterSim>(sim, cfg);
    cs->bootstrap(0);
    for (NodeId node = 1; node < n; ++node) {
      cs->request_join(node);
      sim.run_until(sim.now() + millis(40));
    }
    sim.run_until(sim.now() + seconds(60));
    return cs;
  }
};

TEST_F(SimFixture, BootstrapSingleton) {
  ClusterSim cs(sim, fast_config());
  cs.bootstrap(7);
  EXPECT_EQ(cs.node_count(), 1u);
  EXPECT_EQ(cs.group_count(), 1u);
  EXPECT_EQ(cs.group_of(7), cs.graph().vertices()[0]);
  EXPECT_TRUE(cs.check_invariants());
}

TEST_F(SimFixture, JoinsGrowTheSystem) {
  auto cs = grow(30, fast_config());
  EXPECT_EQ(cs->node_count(), 30u);
  EXPECT_EQ(cs->stats().joins_completed, 29u);
  std::string why;
  EXPECT_TRUE(cs->check_invariants(&why)) << why;
}

TEST_F(SimFixture, GroupsSplitAsSystemGrows) {
  auto cs = grow(60, fast_config());
  EXPECT_GT(cs->group_count(), 1u);
  EXPECT_GT(cs->stats().splits, 0u);
  // Every group within bounds once the dust settles.
  for (GroupId g : cs->graph().vertices()) {
    auto m = cs->members_of(g);
    EXPECT_LE(m.size(), fast_config().gmax + 1);  // +1: a join may be settling
  }
}

TEST_F(SimFixture, LeavesShrinkAndMerge) {
  auto cs = grow(40, fast_config());
  std::size_t groups_before = cs->group_count();
  for (NodeId n = 1; n < 30; ++n) {
    if (cs->group_of(n).has_value()) {
      cs->request_leave(n);
      sim.run_until(sim.now() + millis(60));
    }
  }
  sim.run_until(sim.now() + seconds(120));
  EXPECT_LT(cs->node_count(), 40u - 25u + 5u);
  EXPECT_LE(cs->group_count(), groups_before);
  EXPECT_GT(cs->stats().merges, 0u);
  std::string why;
  EXPECT_TRUE(cs->check_invariants(&why)) << why;
}

TEST_F(SimFixture, ShufflingExchangesMembers) {
  auto cs = grow(40, fast_config());
  EXPECT_GT(cs->stats().exchanges_attempted, 0u);
  EXPECT_GT(cs->stats().exchanges_completed, 0u);
}

TEST_F(SimFixture, ShuffleDisabledMeansNoExchanges) {
  auto cfg = fast_config();
  cfg.shuffle_enabled = false;
  auto cs = grow(30, cfg);
  EXPECT_EQ(cs->stats().exchanges_attempted, 0u);
  EXPECT_EQ(cs->node_count(), 30u);
}

TEST_F(SimFixture, FasterJoinRateSuppressesMoreExchanges) {
  // Figure 13's effect: concurrent shuffles suppress exchanges.
  auto run_at_rate = [&](DurationMicros gap) {
    sim::Simulator local;
    ClusterSim cs(local, fast_config());
    cs.bootstrap(0);
    for (NodeId n = 1; n < 80; ++n) {
      cs.request_join(n);
      local.run_until(local.now() + gap);
    }
    local.run_until(local.now() + seconds(120));
    const auto& st = cs.stats();
    return st.exchanges_attempted == 0
               ? 0.0
               : static_cast<double>(st.exchanges_suppressed) /
                     static_cast<double>(st.exchanges_attempted);
  };
  double slow = run_at_rate(millis(200));
  double fast = run_at_rate(millis(5));
  EXPECT_GT(fast, slow);
}

TEST_F(SimFixture, ChurnPreservesInvariants) {
  auto cfg = fast_config();
  auto cs = grow(50, cfg);
  Rng rng(17);
  // 200 random churn events.
  NodeId next_id = 1000;
  for (int i = 0; i < 200; ++i) {
    if (rng.chance(0.5) && cs->node_count() > 20) {
      // leave a random live node
      auto ids = cs->graph().vertices();
      GroupId g = ids[static_cast<std::size_t>(rng.next_below(ids.size()))];
      auto members = cs->members_of(g);
      if (!members.empty()) {
        cs->request_leave(members[static_cast<std::size_t>(rng.next_below(members.size()))]);
      }
    } else {
      cs->request_join(next_id++);
    }
    sim.run_until(sim.now() + millis(30));
  }
  sim.run_until(sim.now() + seconds(300));
  std::string why;
  EXPECT_TRUE(cs->check_invariants(&why)) << why;
  EXPECT_GT(cs->node_count(), 20u);
}

TEST_F(SimFixture, ByzantineNodesStayDispersed) {
  auto cfg = fast_config();
  cfg.seed = 999;
  auto cs = std::make_unique<ClusterSim>(sim, cfg);
  cs->bootstrap(0);
  Rng rng(55);
  // 6% Byzantine joiners, as in §6.1.3.
  for (NodeId n = 1; n < 150; ++n) {
    cs->request_join(n);
    if (rng.chance(0.06)) cs->mark_byzantine(n);
    sim.run_until(sim.now() + millis(25));
  }
  sim.run_until(sim.now() + seconds(120));
  auto report = cs->robustness_report();
  std::size_t robust = 0;
  for (const auto& r : report) robust += r.robust();
  // Shuffling must keep virtually all vgroups robust.
  EXPECT_GE(static_cast<double>(robust) / static_cast<double>(report.size()), 0.9);
}

TEST_F(SimFixture, AsyncAgreementIsCheaperThanSync) {
  ClusterSimConfig sync_cfg = fast_config();
  ClusterSimConfig async_cfg = fast_config();
  async_cfg.kind = smr::EngineKind::kAsync;
  ClusterSim a(sim, sync_cfg), b(sim, async_cfg);
  EXPECT_GT(a.agreement_latency(10), b.agreement_latency(10));
  EXPECT_GT(a.hop_latency(), b.hop_latency());
}

TEST_F(SimFixture, AgreementLatencyGrowsWithGroupSizeInSync) {
  ClusterSim cs(sim, fast_config());
  EXPECT_LT(cs.agreement_latency(5), cs.agreement_latency(21));
}

TEST_F(SimFixture, InvalidConfigRejected) {
  auto cfg = fast_config();
  cfg.gmin = cfg.gmax;
  EXPECT_THROW(ClusterSim(sim, cfg), std::invalid_argument);
}

TEST_F(SimFixture, DoubleBootstrapRejected) {
  ClusterSim cs(sim, fast_config());
  cs.bootstrap(1);
  EXPECT_THROW(cs.bootstrap(2), std::logic_error);
}

TEST_F(SimFixture, DuplicateJoinRejected) {
  ClusterSim cs(sim, fast_config());
  cs.bootstrap(1);
  cs.request_join(2);
  sim.run_until(seconds(30));
  EXPECT_THROW(cs.request_join(2), std::invalid_argument);
}

TEST_F(SimFixture, UnknownLeaveRejected) {
  ClusterSim cs(sim, fast_config());
  cs.bootstrap(1);
  EXPECT_THROW(cs.request_leave(99), std::invalid_argument);
}

// Parameterized churn sweep across engine kinds and walk lengths.
struct ChurnParam {
  smr::EngineKind kind;
  std::size_t rwl;
};

class ClusterChurnSweep : public ::testing::TestWithParam<ChurnParam> {};

TEST_P(ClusterChurnSweep, SurvivesSustainedChurn) {
  auto p = GetParam();
  sim::Simulator sim;
  ClusterSimConfig cfg;
  cfg.hc = 4;
  cfg.rwl = p.rwl;
  cfg.gmin = 4;
  cfg.gmax = 8;
  cfg.kind = p.kind;
  cfg.round_duration = millis(10);
  cfg.net_rtt = millis(2);
  ClusterSim cs(sim, cfg);
  cs.bootstrap(0);
  for (NodeId n = 1; n < 40; ++n) {
    cs.request_join(n);
    sim.run_until(sim.now() + millis(30));
  }
  sim.run_until(sim.now() + seconds(60));

  NodeId next = 100;
  Rng rng(p.rwl * 31 + 7);
  for (int round = 0; round < 60; ++round) {
    auto verts = cs.graph().vertices();
    GroupId g = verts[static_cast<std::size_t>(rng.next_below(verts.size()))];
    auto members = cs.members_of(g);
    if (!members.empty() && cs.node_count() > 25) {
      cs.request_leave(members[0]);
    }
    cs.request_join(next++);
    sim.run_until(sim.now() + millis(50));
  }
  sim.run_until(sim.now() + seconds(300));
  std::string why;
  EXPECT_TRUE(cs.check_invariants(&why)) << why;
  EXPECT_GE(cs.node_count(), 30u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ClusterChurnSweep,
    ::testing::Values(ChurnParam{smr::EngineKind::kSync, 5},
                      ChurnParam{smr::EngineKind::kSync, 11},
                      ChurnParam{smr::EngineKind::kAsync, 5},
                      ChurnParam{smr::EngineKind::kAsync, 11}),
    [](const ::testing::TestParamInfo<ChurnParam>& info) {
      return std::string(info.param.kind == smr::EngineKind::kSync ? "Sync" : "Async") + "Rwl" +
             std::to_string(info.param.rwl);
    });

}  // namespace
}  // namespace atum::group
