// Tests for SHA-256 (against FIPS 180-4 / RFC test vectors), HMAC-SHA256
// (RFC 4231 vectors), and the signing-key registry.
#include <gtest/gtest.h>

#include "crypto/hmac.h"
#include "crypto/keys.h"
#include "crypto/sha256.h"

namespace atum::crypto {
namespace {

Bytes from_str(const std::string& s) { return Bytes(s.begin(), s.end()); }

// ---------------------------------------------------------------------------
// SHA-256 vectors
// ---------------------------------------------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes: exercises the path where padding spills to a second block.
  std::string s(64, 'x');
  EXPECT_EQ(to_hex(sha256(s)),
            "7ce100971f64e7001e8fe5a51973ecdfe1ced42befe7ee8d5fd6219506b5393c");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog, repeatedly";
  Sha256 h;
  for (char c : msg) h.update(std::string_view(&c, 1));
  EXPECT_EQ(to_hex(h.finish()), to_hex(sha256(msg)));
}

TEST(Sha256, SplitAtArbitraryOffsets) {
  std::string msg(300, '\0');
  for (std::size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<char>(i & 0xFF);
  Digest expect = sha256(msg);
  for (std::size_t split : {1u, 63u, 64u, 65u, 127u, 128u, 250u}) {
    Sha256 h;
    h.update(std::string_view(msg).substr(0, split));
    h.update(std::string_view(msg).substr(split));
    EXPECT_EQ(h.finish(), expect) << "split at " << split;
  }
}

TEST(Sha256, FinishTwiceThrows) {
  Sha256 h;
  h.update("x");
  h.finish();
  EXPECT_THROW(h.finish(), std::logic_error);
}

TEST(Sha256, UpdateAfterFinishThrows) {
  Sha256 h;
  h.finish();
  EXPECT_THROW(h.update("x"), std::logic_error);
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(sha256("a"), sha256("b"));
  EXPECT_NE(sha256(""), sha256(std::string(1, '\0')));
}

TEST(Sha256, DigestPrefixStable) {
  Digest d = sha256("abc");
  // First 8 bytes of the "abc" digest: ba7816bf8f01cfea.
  EXPECT_EQ(digest_prefix64(d), 0xba7816bf8f01cfeaULL);
}

// ---------------------------------------------------------------------------
// HMAC-SHA256 (RFC 4231)
// ---------------------------------------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, from_str("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(from_str("Jefe"), from_str("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes msg(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231LongKey) {
  // Case 6: 131-byte key forces the key-hashing path.
  Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(key, from_str("Test Using Larger Than Block-Size Key - "
                                             "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  Bytes m = from_str("message");
  EXPECT_NE(hmac_sha256(from_str("key1"), m), hmac_sha256(from_str("key2"), m));
}

TEST(Hmac, MessageSensitivity) {
  Bytes k = from_str("key");
  EXPECT_NE(hmac_sha256(k, from_str("m1")), hmac_sha256(k, from_str("m2")));
}

// ---------------------------------------------------------------------------
// Keys / signatures
// ---------------------------------------------------------------------------

TEST(Keys, SignVerifyRoundTrip) {
  KeyStore ks(1);
  Bytes msg = from_str("attack at dawn");
  Signature sig = ks.key_of(7).sign(msg);
  EXPECT_TRUE(ks.verify(7, msg, sig));
}

TEST(Keys, VerifyRejectsWrongSigner) {
  KeyStore ks(1);
  Bytes msg = from_str("attack at dawn");
  Signature sig = ks.key_of(7).sign(msg);
  EXPECT_FALSE(ks.verify(8, msg, sig));
}

TEST(Keys, VerifyRejectsTamperedMessage) {
  KeyStore ks(1);
  Bytes msg = from_str("attack at dawn");
  Signature sig = ks.key_of(7).sign(msg);
  Bytes tampered = from_str("attack at dusk");
  EXPECT_FALSE(ks.verify(7, tampered, sig));
}

TEST(Keys, VerifyRejectsTamperedSignature) {
  KeyStore ks(1);
  Bytes msg = from_str("payload");
  Signature sig = ks.key_of(3).sign(msg);
  sig[0] ^= 0x01;
  EXPECT_FALSE(ks.verify(3, msg, sig));
}

TEST(Keys, DifferentSeedsGiveDifferentKeys) {
  KeyStore a(1), b(2);
  Bytes msg = from_str("m");
  EXPECT_NE(a.key_of(1).sign(msg), b.key_of(1).sign(msg));
}

TEST(Keys, DeterministicAcrossStores) {
  KeyStore a(99), b(99);
  Bytes msg = from_str("m");
  EXPECT_EQ(a.key_of(5).sign(msg), b.key_of(5).sign(msg));
}

TEST(Keys, SigningIsStable) {
  KeyStore ks(4);
  Bytes msg = from_str("idempotent");
  EXPECT_EQ(ks.key_of(1).sign(msg), ks.key_of(1).sign(msg));
}

// ---------------------------------------------------------------------------
// Digest-count instrumentation (the hook the Payload-cache tests build on)
// ---------------------------------------------------------------------------

TEST(Sha256, DigestCountTracksEveryFinish) {
  const std::uint64_t base = sha256_digest_count();
  (void)sha256("one");
  EXPECT_EQ(sha256_digest_count(), base + 1);
  Sha256 h;
  h.update(from_str("two"));
  (void)h.finish();
  EXPECT_EQ(sha256_digest_count(), base + 2);
  // HMAC-SHA256 is two nested hashes per tag.
  (void)hmac_sha256(from_str("key"), from_str("msg"));
  EXPECT_EQ(sha256_digest_count(), base + 4);
}

}  // namespace
}  // namespace atum::crypto
