// Tests for the synchronous Dolev-Strong SMR engine: agreement, total
// order, fault tolerance up to f = floor((g-1)/2), equivocation handling,
// and latency bounds.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "crypto/keys.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "smr/dolev_strong.h"

namespace atum::smr {
namespace {

Bytes op_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

// A small harness running g Dolev-Strong replicas on one simulated network.
struct SyncGroup {
  sim::Simulator sim;
  net::SimNetwork net{sim, net::NetworkConfig::datacenter(), 99};
  crypto::KeyStore keys{7};
  GroupConfig cfg;
  std::vector<std::unique_ptr<DolevStrongSmr>> replicas;
  // decided[node] = ordered (origin, op) pairs.
  std::map<NodeId, std::vector<std::pair<NodeId, Bytes>>> decided;

  explicit SyncGroup(std::size_t g, DurationMicros round = millis(20),
                     std::vector<std::pair<std::size_t, DsFaultMode>> faults = {}) {
    for (NodeId n = 0; n < g; ++n) cfg.members.push_back(n);
    DolevStrongOptions opt;
    opt.round_duration = round;
    for (NodeId n = 0; n < g; ++n) {
      DsFaultMode mode = DsFaultMode::kCorrect;
      for (auto [idx, m] : faults) {
        if (idx == n) mode = m;
      }
      auto r = std::make_unique<DolevStrongSmr>(net::Transport(net, n), cfg, keys, opt, mode);
      r->set_decide_handler([this, n](std::uint64_t, NodeId origin, const net::Payload& op) {
        decided[n].emplace_back(origin, op.to_bytes());
      });
      replicas.push_back(std::move(r));
    }
  }

  DolevStrongSmr& at(std::size_t i) { return *replicas[i]; }

  void run_slots(int slots) {
    DurationMicros slot_len =
        static_cast<DurationMicros>(replicas[0]->rounds_per_slot()) * millis(20);
    sim.run_until(sim.now() + slots * slot_len + millis(25));
  }
};

TEST(DolevStrong, SingleProposerAllDecide) {
  SyncGroup g(4);
  g.at(0).propose(op_bytes("hello"));
  g.run_slots(2);
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_EQ(g.decided[n].size(), 1u) << "replica " << n;
    EXPECT_EQ(g.decided[n][0].first, 0u);
    EXPECT_EQ(g.decided[n][0].second, op_bytes("hello"));
  }
}

TEST(DolevStrong, AllProposeSameTotalOrder) {
  SyncGroup g(5);
  for (std::size_t i = 0; i < 5; ++i) g.at(i).propose(op_bytes("op" + std::to_string(i)));
  g.run_slots(2);
  ASSERT_EQ(g.decided[0].size(), 5u);
  for (NodeId n = 1; n < 5; ++n) {
    EXPECT_EQ(g.decided[n], g.decided[0]) << "replica " << n << " diverged";
  }
}

TEST(DolevStrong, DecidesExactlyOnce) {
  SyncGroup g(4);
  g.at(1).propose(op_bytes("once"));
  g.run_slots(4);  // extra slots must not re-decide
  for (NodeId n = 0; n < 4; ++n) EXPECT_EQ(g.decided[n].size(), 1u);
}

TEST(DolevStrong, ToleratesMaxSilentFaults) {
  // g=5 -> f=2 silent replicas; the remaining 3 still agree.
  SyncGroup g(5, millis(20), {{3, DsFaultMode::kSilent}, {4, DsFaultMode::kSilent}});
  g.at(0).propose(op_bytes("survives"));
  g.run_slots(2);
  for (NodeId n = 0; n < 3; ++n) {
    ASSERT_EQ(g.decided[n].size(), 1u) << "correct replica " << n;
    EXPECT_EQ(g.decided[n][0].second, op_bytes("survives"));
  }
  EXPECT_TRUE(g.decided[3].empty());
  EXPECT_TRUE(g.decided[4].empty());
}

TEST(DolevStrong, SilentReplicaOpsAreNotDecided) {
  SyncGroup g(4, millis(20), {{2, DsFaultMode::kSilent}});
  g.at(2).propose(op_bytes("ghost"));
  g.at(0).propose(op_bytes("real"));
  g.run_slots(2);
  for (NodeId n = 0; n < 2; ++n) {
    ASSERT_EQ(g.decided[n].size(), 1u);
    EXPECT_EQ(g.decided[n][0].second, op_bytes("real"));
  }
}

TEST(DolevStrong, EquivocatorIsVoided) {
  // The equivocating node sends conflicting values; correct replicas agree
  // on voiding it while still deciding each other's ops.
  SyncGroup g(5, millis(20), {{0, DsFaultMode::kEquivocate}});
  g.at(0).propose(op_bytes("evil"));
  g.at(1).propose(op_bytes("good"));
  g.run_slots(2);
  for (NodeId n = 1; n < 5; ++n) {
    ASSERT_EQ(g.decided[n].size(), 1u) << "replica " << n;
    EXPECT_EQ(g.decided[n][0].first, 1u);
    EXPECT_EQ(g.decided[n][0].second, op_bytes("good"));
  }
}

TEST(DolevStrong, OpsAcrossSlotsKeepOrder) {
  SyncGroup g(4);
  g.at(0).propose(op_bytes("first"));
  g.run_slots(2);
  g.at(1).propose(op_bytes("second"));
  g.run_slots(2);
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_EQ(g.decided[n].size(), 2u);
    EXPECT_EQ(g.decided[n][0].second, op_bytes("first"));
    EXPECT_EQ(g.decided[n][1].second, op_bytes("second"));
  }
}

TEST(DolevStrong, DeterministicOrderWithinSlot) {
  // Two ops proposed in the same slot decide in (origin, digest) order.
  SyncGroup g(4);
  g.at(2).propose(op_bytes("from2"));
  g.at(1).propose(op_bytes("from1"));
  g.run_slots(2);
  ASSERT_EQ(g.decided[0].size(), 2u);
  EXPECT_EQ(g.decided[0][0].first, 1u);
  EXPECT_EQ(g.decided[0][1].first, 2u);
}

TEST(DolevStrong, LatencyWithinSlotBound) {
  SyncGroup g(7);  // f=3, rounds_per_slot = 5
  TimeMicros start = g.sim.now();
  TimeMicros decided_at = -1;
  g.at(0).set_decide_handler([&](std::uint64_t, NodeId, const net::Payload&) {
    if (decided_at < 0) decided_at = g.sim.now();
  });
  g.at(0).propose(op_bytes("timed"));
  g.run_slots(3);
  ASSERT_GE(decided_at, 0);
  // Must decide within two slot lengths (proposal may just miss a slot).
  DurationMicros slot = g.at(0).expected_slot_latency();
  EXPECT_LE(decided_at - start, 2 * slot + millis(20));
}

TEST(DolevStrong, NonMemberMessagesIgnored) {
  SyncGroup g(4);
  // A non-member injects garbage of the right type.
  g.net.send(net::Message{77, 0, net::MsgType::kDsBroadcast, op_bytes("junk")});
  g.at(0).propose(op_bytes("ok"));
  g.run_slots(2);
  ASSERT_EQ(g.decided[0].size(), 1u);
  EXPECT_EQ(g.decided[0][0].second, op_bytes("ok"));
}

TEST(DolevStrong, MalformedPayloadIgnored) {
  SyncGroup g(4);
  g.net.send(net::Message{1, 0, net::MsgType::kDsBroadcast, Bytes{0xde, 0xad}});
  g.at(0).propose(op_bytes("ok"));
  g.run_slots(2);
  EXPECT_EQ(g.decided[0].size(), 1u);
}

TEST(DolevStrong, EmptyOpRoundTrips) {
  SyncGroup g(4);
  g.at(0).propose({});
  g.run_slots(2);
  ASSERT_EQ(g.decided[1].size(), 1u);
  EXPECT_TRUE(g.decided[1][0].second.empty());
}

TEST(DolevStrong, LargeOpRoundTrips) {
  SyncGroup g(4);
  Bytes big(10'000, 0xAB);
  g.at(0).propose(big);
  g.run_slots(2);
  ASSERT_EQ(g.decided[3].size(), 1u);
  EXPECT_EQ(g.decided[3][0].second, big);
}

TEST(DolevStrong, RoundsPerSlotMatchesFaultThreshold) {
  SyncGroup g3(3), g7(7), g9(9);
  EXPECT_EQ(g3.at(0).max_faults(), 1u);
  EXPECT_EQ(g3.at(0).rounds_per_slot(), 3u);
  EXPECT_EQ(g7.at(0).max_faults(), 3u);
  EXPECT_EQ(g7.at(0).rounds_per_slot(), 5u);
  EXPECT_EQ(g9.at(0).max_faults(), 4u);
  EXPECT_EQ(g9.at(0).rounds_per_slot(), 6u);
}

TEST(DolevStrong, StoppedReplicaStopsDeciding) {
  SyncGroup g(4);
  g.at(3).stop();
  g.at(0).propose(op_bytes("after-stop"));
  g.run_slots(2);
  EXPECT_TRUE(g.decided[3].empty());
  EXPECT_EQ(g.decided[0].size(), 1u);  // remaining 3 of 4 proceed (f=1)
}

// Property sweep: for every group size, with the maximum tolerable number
// of silent faults, all correct replicas decide identically.
class DolevStrongSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DolevStrongSweep, AgreementUnderMaxFaults) {
  std::size_t g = GetParam();
  std::size_t f = sync_max_faults(g);
  std::vector<std::pair<std::size_t, DsFaultMode>> faults;
  for (std::size_t i = 0; i < f; ++i) faults.emplace_back(g - 1 - i, DsFaultMode::kSilent);
  SyncGroup grp(g, millis(20), faults);
  for (std::size_t i = 0; i + f < g; ++i) grp.at(i).propose(op_bytes("op" + std::to_string(i)));
  grp.run_slots(2);

  std::size_t correct = g - f;
  ASSERT_EQ(grp.decided[0].size(), correct);
  for (NodeId n = 1; n < correct; ++n) {
    EXPECT_EQ(grp.decided[n], grp.decided[0]) << "replica " << n << " diverged (g=" << g << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, DolevStrongSweep,
                         ::testing::Values(3, 4, 5, 6, 7, 9, 11, 13));

}  // namespace
}  // namespace atum::smr
