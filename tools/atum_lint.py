#!/usr/bin/env python3
"""atum_lint: domain-specific determinism and safety linter for src/.

Atum's load-bearing properties — byte-deterministic scenario reports,
replayable experiments, zero-copy payload sharing, bounded arenas — are
invariants no off-the-shelf tool knows about. This linter makes violating
them un-mergeable. Rules (see ARCHITECTURE.md "Correctness tooling" for the
full rationale):

  nondeterminism   Wall clocks and unseeded entropy are banned in src/
                   outside common/rng.cpp: every draw must flow from a
                   seeded atum::Rng, every timestamp from sim::Simulator.
                   Tokens: std::rand/srand/time()/clock(), clock_gettime,
                   gettimeofday, system_clock, steady_clock,
                   high_resolution_clock, random_device, mt19937,
                   default_random_engine. This also enforces the src/obs/
                   wall-clock ban: observability samples are stamped with
                   caller-supplied sim-time only.

  banned-include   <random>, <ctime>, <chrono> in src/ (outside common/rng.*)
                   — the headers behind the tokens above. Sim time is
                   TimeMicros; randomness is atum::Rng.

  adhoc-counter    New `*_count_` members or `struct FooStats` declarations
                   in the obs-instrumented layers (src/{net,overlay,smr,
                   core,sim,group,apps}). Those layers expose their metrics
                   through the one obs::Registry surface (ISSUE 9); a fresh
                   ad-hoc counter silently forks it. Pre-registry counters
                   that the registry polls via probes carry:
                       // lint: adhoc-counter-ok(<how the registry sees it>)

  reinterpret-cast reinterpret_cast in src/ — strict-aliasing/alignment UB
                   bait; use std::memcpy or std::bit_cast. Byte-type puns
                   that are genuinely aliasing-exempt may be annotated:
                       // lint: reinterpret-cast-ok(<why well-defined>)

Legacy rules (--legacy): unordered-iter, std-function, naked-new started
here as token matchers and have been superseded by the AST-grounded
versions in tools/atum_analyze/ (libclang over compile_commands.json —
canonical types instead of declared-name matching, real call-graph
reachability instead of directory heuristics). The regex forms stay
available behind --legacy as the fallback for environments without a
usable libclang; `atum_analyze --probe` tells CMake which mode to wire in.

  unordered-iter   Iterating a declared std::unordered_{map,set} (range-for,
                   std::erase_if, .begin()) without
                       // lint: unordered-iter-ok(<why order cannot leak>)

  std-function     std::function in src/sim/ and src/net/ — the layers
                   whose per-event/per-message paths must stay
                   allocation-free. Override:
                       // lint: std-function-ok(<why not hot>)

  naked-new        `new`/`malloc`-family in src/ (placement new allowed).
                   Override:
                       // lint: naked-new-ok(<who owns it>)

Usage:
  atum_lint.py <dir-or-file>...     lint (exit 1 on findings)
  atum_lint.py --legacy <paths>     also run the superseded regex rules
  atum_lint.py --self-test          run the built-in fixture suite
  atum_lint.py --list-rules         print rule names and exit

Annotations are deliberately loud: each carries a mandatory parenthesized
reason, so `grep -rn "lint:" src/` is a reviewable audit trail.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------
# Source model: strip comments/strings but keep line structure, remember
# per-line annotations.
# --------------------------------------------------------------------------

ANNOTATION_RE = re.compile(r"//\s*lint:\s*([a-z-]+)-ok\(([^)]+)\)")


class SourceFile:
    """A C++ source file with comments/string-literals blanked out.

    Lint rules match against the blanked text so tokens in comments or
    string literals never fire, while `// lint: <rule>-ok(reason)`
    annotations are collected (from the raw text) before blanking.
    """

    def __init__(self, path: str, raw: str):
        self.path = path
        self.raw_lines = raw.splitlines()
        # line number (1-based) -> set of rule names annotated on that line
        self.annotations: dict[int, set[str]] = {}
        for i, line in enumerate(self.raw_lines, start=1):
            for m in ANNOTATION_RE.finditer(line):
                self.annotations.setdefault(i, set()).add(m.group(1))
        self.lines = _blank_comments_and_strings(raw).splitlines()

    def annotated(self, lineno: int, rule: str) -> bool:
        """True if `lineno` or the line above carries a `rule`-ok annotation."""
        for cand in (lineno, lineno - 1):
            if rule in self.annotations.get(cand, set()):
                return True
        return False


def _blank_comments_and_strings(text: str) -> str:
    """Replace comment and string-literal contents with spaces, preserving
    newlines so line numbers survive. Handles //, /* */, "..." and '...'
    with escapes; raw strings are treated as plain strings (good enough for
    this codebase, which has none)."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line_comment | block_comment | dq | sq
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "dq"
                out.append('"')
                i += 1
                continue
            if c == "'":
                mode = "sq"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif mode in ("dq", "sq"):
            quote = '"' if mode == "dq" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                mode = "code"
                out.append(quote)
            elif c == "\n":  # unterminated; bail to code to stay line-stable
                mode = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


# --------------------------------------------------------------------------
# Findings
# --------------------------------------------------------------------------


class Finding:
    def __init__(self, rule: str, path: str, lineno: int, message: str):
        self.rule = rule
        self.path = path
        self.lineno = lineno
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.lineno}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

NONDET_TOKENS = [
    (re.compile(r"\bstd::rand\b|[^:\w]rand\s*\(|\bsrand\s*\("), "C rand()"),
    (re.compile(r"[^:\w_]time\s*\(\s*(NULL|nullptr|0)?\s*\)"), "wall-clock time()"),
    (re.compile(r"\bclock\s*\(\s*\)"), "clock()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bsteady_clock\b"), "std::chrono::steady_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"), "std::chrono::high_resolution_clock"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(_64)?\b"), "std::mt19937"),
    (re.compile(r"\bdefault_random_engine\b"), "std::default_random_engine"),
]

BANNED_INCLUDE_RE = re.compile(r"^\s*#\s*include\s*<(random|ctime|chrono)>")

# Files exempt from the nondeterminism/banned-include rules: the one seeded
# entropy implementation.
RNG_EXEMPT = re.compile(r"(^|/)common/rng\.(cpp|h)$")

UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s+(\w+)\s*[;{=]"
)
ERASE_IF_RE = re.compile(r"\bstd\s*::\s*erase_if\s*\(\s*([\w.\->]+)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*\*?([\w.\->]+)\s*\)")
BEGIN_ITER_RE = re.compile(r"([\w.\->]+)\.(?:begin|cbegin)\s*\(\s*\)")

STD_FUNCTION_RE = re.compile(r"\bstd\s*::\s*function\s*<")
HOT_DIRS_RE = re.compile(r"(^|/)(sim|net)/")

# adhoc-counter: layers already migrated onto obs::Registry (ISSUE 9). A
# fresh `*_count_` member or `struct FooStats` there is a new metrics
# surface bypassing the registry.
INSTRUMENTED_DIRS_RE = re.compile(r"(^|/)(net|overlay|smr|core|sim|group|apps)/")
ADHOC_COUNTER_MEMBER_RE = re.compile(
    r"\b(?:std\s*::\s*)?(?:u?int(?:8|16|32|64)_t|size_t|unsigned|long|int)\s+"
    r"\w*counts?_\s*(?:=|;|\{)")
ADHOC_STATS_STRUCT_RE = re.compile(r"\bstruct\s+\w*Stats\b")

NAKED_NEW_RE = re.compile(r"(?<![:\w])new\b(?!\s*\()")  # `new T`, not placement `new (buf) T`
PLACEMENT_NEW_RE = re.compile(r"(?<![:\w])new\s*\(")
MALLOC_RE = re.compile(r"\b(malloc|calloc|realloc|aligned_alloc|free)\s*\(")
REINTERPRET_RE = re.compile(r"\breinterpret_cast\s*<")


# Rules superseded by the AST-grounded analyzer (tools/atum_analyze/); kept
# behind --legacy as the no-libclang fallback.
LEGACY_RULES = frozenset({"unordered-iter", "std-function", "naked-new"})


def lint_file(src: SourceFile, unordered_names: set[str],
              legacy: bool = False) -> list[Finding]:
    findings: list[Finding] = []
    path = src.path
    exempt_rng = bool(RNG_EXEMPT.search(path))
    hot_layer = bool(HOT_DIRS_RE.search(path))
    instrumented = bool(INSTRUMENTED_DIRS_RE.search(path))

    for lineno, line in enumerate(src.lines, start=1):
        if not exempt_rng:
            for pat, what in NONDET_TOKENS:
                if pat.search(line):
                    findings.append(Finding(
                        "nondeterminism", path, lineno,
                        f"{what} breaks replayability; all randomness/time must flow "
                        f"from seeded atum::Rng / sim::Simulator"))
            m = BANNED_INCLUDE_RE.match(line)
            if m:
                findings.append(Finding(
                    "banned-include", path, lineno,
                    f"<{m.group(1)}> is banned in src/ (sim time is TimeMicros, "
                    f"randomness is atum::Rng)"))

        if legacy:
            iter_names = set()
            for m in ERASE_IF_RE.finditer(line):
                iter_names.add(m.group(1))
            for m in RANGE_FOR_RE.finditer(line):
                iter_names.add(m.group(1))
            for m in BEGIN_ITER_RE.finditer(line):
                iter_names.add(m.group(1))
            for name in iter_names:
                base = name.split(".")[-1].split(">")[-1]  # x.y_, it->z_ -> last component
                if base in unordered_names and not src.annotated(lineno, "unordered-iter"):
                    findings.append(Finding(
                        "unordered-iter", path, lineno,
                        f"iteration over unordered container '{base}' leaks hash-bucket "
                        f"order; sort the output, use an ordered container, or annotate "
                        f"// lint: unordered-iter-ok(reason) after auditing"))

        if instrumented \
                and (ADHOC_COUNTER_MEMBER_RE.search(line) or ADHOC_STATS_STRUCT_RE.search(line)) \
                and not src.annotated(lineno, "adhoc-counter"):
            findings.append(Finding(
                "adhoc-counter", path, lineno,
                "new ad-hoc counter/stats surface in an obs-instrumented layer; "
                "register an obs::Registry counter/probe (src/obs/) so the one "
                "uniform metrics surface stays complete, or annotate "
                "// lint: adhoc-counter-ok(reason)"))

        if legacy and hot_layer and STD_FUNCTION_RE.search(line) \
                and not src.annotated(lineno, "std-function"):
            findings.append(Finding(
                "std-function", path, lineno,
                "std::function in a sim//net/ hot layer (heap-allocates closures; "
                "see sim::EventFn); annotate // lint: std-function-ok(reason) if "
                "this is genuinely off the hot path"))

        is_preprocessor = line.lstrip().startswith("#")
        if legacy and not is_preprocessor \
                and (NAKED_NEW_RE.search(line) or MALLOC_RE.search(line)) \
                and not src.annotated(lineno, "naked-new"):
            findings.append(Finding(
                "naked-new", path, lineno,
                "naked new/malloc in src/; use make_unique/make_shared/containers "
                "or annotate // lint: naked-new-ok(owner)"))

        if REINTERPRET_RE.search(line) and not src.annotated(lineno, "reinterpret-cast"):
            findings.append(Finding(
                "reinterpret-cast", path, lineno,
                "reinterpret_cast invites strict-aliasing/alignment UB; use "
                "std::memcpy or std::bit_cast, or annotate "
                "// lint: reinterpret-cast-ok(reason) with the aliasing argument"))

    return findings


def collect_unordered_names(sources: list[SourceFile]) -> set[str]:
    """Names of every variable/member declared with an unordered container
    anywhere in the linted set. Name-based matching is deliberately
    over-approximate (a same-named ordered local elsewhere also gets
    flagged) — the annotation is the escape hatch, and a false positive
    costs one audited comment."""
    names: set[str] = set()
    for src in sources:
        for line in src.lines:
            for m in UNORDERED_DECL_RE.finditer(line):
                names.add(m.group(1))
    return names


def lint_paths(paths: list[Path], legacy: bool = False) -> list[Finding]:
    files: list[SourceFile] = []
    for root in paths:
        if root.is_file():
            candidates = [root]
        else:
            candidates = sorted(p for p in root.rglob("*") if p.suffix in (".h", ".cpp", ".cc", ".hpp"))
        for p in candidates:
            files.append(SourceFile(str(p), p.read_text(encoding="utf-8")))
    unordered_names = collect_unordered_names(files)
    findings: list[Finding] = []
    for src in files:
        findings.extend(lint_file(src, unordered_names, legacy=legacy))
    return findings


# --------------------------------------------------------------------------
# Self-test fixtures: each rule has at least one must-fail and one must-pass
# fixture, so the linter itself is regression-tested (wired into ctest as
# atum_lint_selftest).
# --------------------------------------------------------------------------

FIXTURES = [
    # (name, path, code, expected rule or None)
    ("rand_fails", "src/x/a.cpp", "int x = std::rand();\n", "nondeterminism"),
    ("system_clock_fails", "src/x/a.cpp",
     "auto t = std::chrono::system_clock::now();\n", "nondeterminism"),
    ("random_device_fails", "src/x/a.cpp", "std::random_device rd;\n", "nondeterminism"),
    ("time_call_fails", "src/x/a.cpp", "auto t = time(nullptr);\n", "nondeterminism"),
    ("mt19937_fails", "src/x/a.cpp", "std::mt19937_64 g(7);\n", "nondeterminism"),
    ("rng_cpp_exempt", "src/common/rng.cpp",
     "#include <random>\nstd::random_device rd;\n", None),
    ("comment_mention_ok", "src/x/a.cpp",
     "// std::rand() and system_clock are banned here\nint x = 0;\n", None),
    ("string_mention_ok", "src/x/a.cpp",
     'const char* s = "std::rand() time(NULL)";\n', None),
    ("runtime_identifier_ok", "src/x/a.cpp",
     "int runtime_ = 0; int t = runtime_;\n", None),
    ("include_random_fails", "src/x/a.cpp", "#include <random>\n", "banned-include"),
    ("include_chrono_fails", "src/x/a.cpp", "#include <chrono>\n", "banned-include"),
    ("include_vector_ok", "src/x/a.cpp", "#include <vector>\n", None),

    ("unordered_range_for_fails", "src/x/a.cpp",
     "std::unordered_map<int, int> tbl_;\n"
     "void f() { for (const auto& [k, v] : tbl_) { report(k); } }\n",
     "unordered-iter"),
    ("unordered_erase_if_fails", "src/x/a.cpp",
     "std::unordered_set<int> seen_;\n"
     "void f() { std::erase_if(seen_, [](int) { return true; }); }\n",
     "unordered-iter"),
    ("unordered_member_iter_fails", "src/x/a.cpp",
     "struct S { std::unordered_map<int, int> next; };\n"
     "void f(S& s) { for (auto& [k, v] : s.next) { emit(k); } }\n",
     "unordered-iter"),
    ("unordered_begin_fails", "src/x/a.cpp",
     "std::unordered_map<int, int> tbl_;\n"
     "auto f() { return tbl_.begin(); }\n",
     "unordered-iter"),
    ("unordered_annotated_ok", "src/x/a.cpp",
     "std::unordered_map<int, int> tbl_;\n"
     "// lint: unordered-iter-ok(output is sorted below)\n"
     "void f() { for (const auto& [k, v] : tbl_) { out.push_back(k); } }\n",
     None),
    ("unordered_lookup_ok", "src/x/a.cpp",
     "std::unordered_map<int, int> tbl_;\n"
     "int f() { auto it = tbl_.find(3); return it == tbl_.end() ? 0 : it->second; }\n",
     None),
    ("ordered_map_iter_ok", "src/x/a.cpp",
     "std::map<int, int> sorted_;\n"
     "void f() { for (const auto& [k, v] : sorted_) { report(k); } }\n",
     None),

    ("clock_gettime_fails", "src/obs/a.cpp",
     "struct timespec ts; clock_gettime(CLOCK_MONOTONIC, &ts);\n", "nondeterminism"),
    ("gettimeofday_fails", "src/obs/a.cpp",
     "struct timeval tv; gettimeofday(&tv, nullptr);\n", "nondeterminism"),

    ("adhoc_count_member_fails", "src/overlay/a.h",
     "class C { std::uint64_t relay_count_ = 0; };\n", "adhoc-counter"),
    ("adhoc_stats_struct_fails", "src/smr/a.h",
     "struct ReplicaStats { std::uint64_t commits = 0; };\n", "adhoc-counter"),
    ("adhoc_annotated_ok", "src/net/a.h",
     "// lint: adhoc-counter-ok(polled by bind_metrics probes)\n"
     "struct LinkStats { std::uint64_t drops = 0; };\n", None),
    ("adhoc_outside_instrumented_ok", "src/scenario/a.h",
     "struct PhaseStats { std::uint64_t sent = 0; };\n", None),
    ("adhoc_plain_member_ok", "src/overlay/a.h",
     "class C { std::uint64_t next_seq_ = 0; };\n", None),

    ("std_function_in_sim_fails", "src/sim/a.h",
     "std::function<void()> cb_;\n", "std-function"),
    ("std_function_in_net_fails", "src/net/a.h",
     "using Handler = std::function<void(int)>;\n", "std-function"),
    ("std_function_annotated_ok", "src/net/a.h",
     "// lint: std-function-ok(bind-time registration, not per-message)\n"
     "using Handler = std::function<void(int)>;\n", None),
    ("std_function_in_apps_ok", "src/apps/a.h",
     "std::function<void()> cb_;\n", None),

    ("naked_new_fails", "src/x/a.cpp", "int* p = new int(3);\n", "naked-new"),
    ("malloc_fails", "src/x/a.cpp", "void* p = malloc(64);\n", "naked-new"),
    ("placement_new_ok", "src/x/a.cpp",
     "::new (static_cast<void*>(buf)) Fn(std::move(f));\n", None),
    ("make_unique_ok", "src/x/a.cpp",
     "auto p = std::make_unique<int>(3);\n", None),
    ("naked_new_annotated_ok", "src/x/a.cpp",
     "// lint: naked-new-ok(owned by ops_->destroy)\n"
     "int* p = new int(3);\n", None),
    ("include_new_header_ok", "src/x/a.cpp", "#include <new>\n", None),

    ("reinterpret_fails", "src/x/a.cpp",
     "auto* p = reinterpret_cast<const char*>(q);\n", "reinterpret-cast"),
    ("reinterpret_annotated_ok", "src/x/a.cpp",
     "// lint: reinterpret-cast-ok(char->uint8_t read, aliasing-exempt)\n"
     "auto* p = reinterpret_cast<const std::uint8_t*>(q);\n", None),
    ("static_cast_ok", "src/x/a.cpp",
     "auto v = static_cast<std::size_t>(n);\n", None),
]


def self_test() -> int:
    """Runs every fixture in both modes: legacy-rule fixtures must fire only
    under --legacy (the default run defers those rules to atum_analyze), all
    other expectations must hold in both modes."""
    failures = []
    for name, path, code, expected_rule in FIXTURES:
        src = SourceFile(path, code)
        unordered = collect_unordered_names([src])
        default_rules = {f.rule for f in lint_file(src, unordered)}
        legacy_rules = {f.rule for f in lint_file(src, unordered, legacy=True)}
        if default_rules & LEGACY_RULES:
            failures.append(
                f"{name}: legacy rule(s) {sorted(default_rules & LEGACY_RULES)} "
                f"fired without --legacy")
        if expected_rule is None:
            if legacy_rules:
                failures.append(f"{name}: expected clean, got {sorted(legacy_rules)}")
        elif expected_rule in LEGACY_RULES:
            if expected_rule not in legacy_rules:
                failures.append(
                    f"{name}: expected a {expected_rule} finding under --legacy, "
                    f"got {sorted(legacy_rules) or 'none'}")
        else:
            for mode, rules in (("default", default_rules), ("--legacy", legacy_rules)):
                if expected_rule not in rules:
                    failures.append(
                        f"{name}: expected a {expected_rule} finding in {mode} mode, "
                        f"got {sorted(rules) or 'none'}")
    if failures:
        print(f"atum_lint self-test: {len(failures)}/{len(FIXTURES)} fixtures FAILED")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"atum_lint self-test: {len(FIXTURES)} fixtures passed (default + --legacy modes)")
    return 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", help="files or directories to lint")
    ap.add_argument("--legacy", action="store_true",
                    help="also run the regex rules superseded by atum_analyze "
                         "(unordered-iter, std-function, naked-new); use when "
                         "no libclang is available")
    ap.add_argument("--self-test", action="store_true", help="run fixture suite")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        print("nondeterminism banned-include adhoc-counter reinterpret-cast")
        print("legacy (--legacy, superseded by atum_analyze): "
              "unordered-iter std-function naked-new")
        return 0
    if args.self_test:
        return self_test()
    if not args.paths:
        ap.error("no paths given (or use --self-test)")

    findings = lint_paths([Path(p) for p in args.paths], legacy=args.legacy)
    for f in findings:
        print(f)
    if findings:
        print(f"atum_lint: {len(findings)} finding(s)")
        return 1
    print("atum_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
