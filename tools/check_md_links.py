#!/usr/bin/env python3
"""Fail on dead intra-repo links in markdown docs.

Usage: tools/check_md_links.py [FILE.md ...]   (defaults to the three
top-level docs). A link is "intra-repo" when it is not an absolute URL;
the target path is resolved relative to the linking file and must exist.
Anchors (`#section`) are stripped before the existence check — section
renames are not detected, only missing files.

Run locally from the repo root; CI runs it in the `docs` job so a doc
rename that orphans a link fails the build instead of rotting quietly.
"""
import os
import re
import sys

DEFAULT_FILES = ["README.md", "ARCHITECTURE.md", "ROADMAP.md"]
# [text](target) — target up to the first ')' or whitespace.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def main(argv):
    files = argv or DEFAULT_FILES
    bad = []
    for path in files:
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as e:
            bad.append((path, f"<unreadable: {e}>"))
            continue
        base = os.path.dirname(os.path.abspath(path))
        for m in LINK.finditer(text):
            target = m.group(1)
            if target.startswith(EXTERNAL):
                continue
            local = target.split("#", 1)[0]
            if not local:  # pure in-page anchor
                continue
            if not os.path.exists(os.path.join(base, local)):
                bad.append((path, target))
    for src, target in bad:
        print(f"dead link: {src} -> {target}")
    print(f"checked {len(files)} file(s), {len(bad)} dead link(s)")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
