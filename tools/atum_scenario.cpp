// atum_scenario: CLI runner for the scenario engine (src/scenario/).
//
//   atum_scenario --list
//   atum_scenario <preset> [--nodes N] [--seed S] [--out FILE] [--assert]
//                 [--metrics-interval DUR] [--trace-out FILE]
//                 [--trace-sample N] [--trace-ring N]
//
// Runs a built-in preset against a real node-level AtumSystem and emits the
// deterministic JSON metrics report (stdout, or FILE with --out). With
// --assert, the preset's built-in expectations are evaluated and violations
// exit non-zero — CI smokes presets exactly this way. Same preset + same
// seed => byte-identical report.
//
// Telemetry (ISSUE 9): --metrics-interval samples the system's metrics
// registry every DUR of sim-time ("1s", "500ms", "250000us"; bare numbers
// are seconds) into the report's time_series section. --trace-out enables
// message-lifecycle tracing and writes Chrome trace-event JSON (load it in
// Perfetto / chrome://tracing); --trace-sample keeps one trace key in N and
// --trace-ring bounds the per-node event ring. Telemetry is deterministic:
// same preset + seed => byte-identical report AND trace. All flags accept
// both `--flag value` and `--flag=value`.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/trace.h"
#include "scenario/driver.h"
#include "scenario/presets.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --list\n"
               "       %s <preset> [--nodes N] [--seed S] [--out FILE] [--assert]\n"
               "          [--metrics-interval DUR] [--trace-out FILE]\n"
               "          [--trace-sample N] [--trace-ring N]\n",
               argv0, argv0);
  return 2;
}

// "1s" / "500ms" / "250000us" / bare seconds. Exits on nonsense.
atum::DurationMicros parse_duration(const std::string& s, const char* flag) {
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  std::string unit = end == nullptr ? "" : std::string(end);
  double scale = 0.0;
  if (unit.empty() || unit == "s") {
    scale = 1e6;
  } else if (unit == "ms") {
    scale = 1e3;
  } else if (unit == "us") {
    scale = 1.0;
  }
  if (end == s.c_str() || scale == 0.0 || v < 0.0) {
    std::fprintf(stderr, "%s: bad duration '%s' (want e.g. 1s, 500ms, 250000us)\n", flag,
                 s.c_str());
    std::exit(2);
  }
  return static_cast<atum::DurationMicros>(v * scale);
}

bool write_file(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace atum;

  if (argc < 2) return usage(argv[0]);
  if (std::strcmp(argv[1], "--list") == 0) {
    std::printf("%-26s %-8s %s\n", "preset", "nodes", "summary");
    for (const auto& p : scenario::preset_list()) {
      std::printf("%-26s %-8zu %s\n", p.name.c_str(), p.default_nodes, p.summary.c_str());
    }
    return 0;
  }

  std::string preset = argv[1];
  std::size_t nodes = 0;
  std::uint64_t seed = 0;
  std::string out_path;
  std::string trace_path;
  DurationMicros metrics_interval = 0;
  std::uint64_t trace_sample = 1;
  std::size_t trace_ring = 4096;
  bool check = false;
  for (int i = 2; i < argc; ++i) {
    // Both spellings: `--flag value` and `--flag=value`.
    std::string arg = argv[i];
    std::string flag = arg;
    std::string inline_val;
    bool has_inline = false;
    if (std::size_t eq = arg.find('='); eq != std::string::npos) {
      flag = arg.substr(0, eq);
      inline_val = arg.substr(eq + 1);
      has_inline = true;
    }
    auto value = [&]() -> std::string {
      if (has_inline) return inline_val;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--nodes") {
      nodes = static_cast<std::size_t>(std::strtoull(value().c_str(), nullptr, 10));
    } else if (flag == "--seed") {
      seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--out") {
      out_path = value();
    } else if (flag == "--metrics-interval") {
      metrics_interval = parse_duration(value(), "--metrics-interval");
    } else if (flag == "--trace-out") {
      trace_path = value();
    } else if (flag == "--trace-sample") {
      trace_sample = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--trace-ring") {
      trace_ring = static_cast<std::size_t>(std::strtoull(value().c_str(), nullptr, 10));
    } else if (flag == "--assert" && !has_inline) {
      check = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return usage(argv[0]);
    }
  }

  scenario::ScenarioSpec spec;
  try {
    spec = scenario::make_preset(preset, nodes, seed);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\nrun %s --list for the catalogue\n", e.what(), argv[0]);
    return 2;
  }
  spec.metrics_interval = metrics_interval;
  spec.trace = !trace_path.empty();
  spec.trace_sample = trace_sample;
  spec.trace_ring = trace_ring;

  std::fprintf(stderr, "scenario %s: %zu nodes, seed %llu, %zu phases\n", spec.name.c_str(),
               spec.nodes, static_cast<unsigned long long>(spec.seed), spec.phases.size());
  scenario::ScenarioDriver driver(std::move(spec));
  scenario::ScenarioReport report = driver.run();
  std::string json = report.to_json();

  if (out_path.empty()) {
    std::fwrite(json.data(), 1, json.size(), stdout);
  } else {
    if (!write_file(out_path, json)) return 1;
    std::fprintf(stderr, "report written to %s\n", out_path.c_str());
  }

  if (!trace_path.empty()) {
    const obs::Tracer& tracer = driver.system().tracer();
    if (!write_file(trace_path, tracer.to_chrome_json())) return 1;
    std::fprintf(stderr, "trace written to %s (%llu events recorded, %zu retained)\n",
                 trace_path.c_str(), static_cast<unsigned long long>(tracer.recorded()),
                 tracer.retained());
  }

  for (const auto& p : report.phases) {
    std::fprintf(stderr,
                 "phase %-12s delivery %6.4f (%llu/%llu) joins %llu/%llu p50 %.1fms\n",
                 p.name.c_str(), p.delivery_ratio(),
                 static_cast<unsigned long long>(p.deliveries),
                 static_cast<unsigned long long>(p.deliveries_expected),
                 static_cast<unsigned long long>(p.joins_completed),
                 static_cast<unsigned long long>(p.joins_requested), p.latency_ms_p50);
  }

  if (check) {
    auto violations = scenario::ScenarioDriver::check(driver.spec(), report);
    for (const std::string& v : violations) std::fprintf(stderr, "ASSERT FAILED: %s\n", v.c_str());
    if (!violations.empty()) return 1;
    std::fprintf(stderr, "all expectations hold\n");
  }
  return 0;
}
