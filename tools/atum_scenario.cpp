// atum_scenario: CLI runner for the scenario engine (src/scenario/).
//
//   atum_scenario --list
//   atum_scenario <preset> [--nodes N] [--seed S] [--out FILE] [--assert]
//
// Runs a built-in preset against a real node-level AtumSystem and emits the
// deterministic JSON metrics report (stdout, or FILE with --out). With
// --assert, the preset's built-in expectations are evaluated and violations
// exit non-zero — CI smokes presets exactly this way. Same preset + same
// seed => byte-identical report.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scenario/driver.h"
#include "scenario/presets.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --list\n"
               "       %s <preset> [--nodes N] [--seed S] [--out FILE] [--assert]\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace atum;

  if (argc < 2) return usage(argv[0]);
  if (std::strcmp(argv[1], "--list") == 0) {
    std::printf("%-26s %-8s %s\n", "preset", "nodes", "summary");
    for (const auto& p : scenario::preset_list()) {
      std::printf("%-26s %-8zu %s\n", p.name.c_str(), p.default_nodes, p.summary.c_str());
    }
    return 0;
  }

  std::string preset = argv[1];
  std::size_t nodes = 0;
  std::uint64_t seed = 0;
  std::string out_path;
  bool check = false;
  for (int i = 2; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--nodes") == 0) {
      nodes = static_cast<std::size_t>(std::strtoull(value("--nodes"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(value("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = value("--out");
    } else if (std::strcmp(argv[i], "--assert") == 0) {
      check = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return usage(argv[0]);
    }
  }

  scenario::ScenarioSpec spec;
  try {
    spec = scenario::make_preset(preset, nodes, seed);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\nrun %s --list for the catalogue\n", e.what(), argv[0]);
    return 2;
  }

  std::fprintf(stderr, "scenario %s: %zu nodes, seed %llu, %zu phases\n", spec.name.c_str(),
               spec.nodes, static_cast<unsigned long long>(spec.seed), spec.phases.size());
  scenario::ScenarioDriver driver(std::move(spec));
  scenario::ScenarioReport report = driver.run();
  std::string json = report.to_json();

  if (out_path.empty()) {
    std::fwrite(json.data(), 1, json.size(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "report written to %s\n", out_path.c_str());
  }

  for (const auto& p : report.phases) {
    std::fprintf(stderr,
                 "phase %-12s delivery %6.4f (%llu/%llu) joins %llu/%llu p50 %.1fms\n",
                 p.name.c_str(), p.delivery_ratio(),
                 static_cast<unsigned long long>(p.deliveries),
                 static_cast<unsigned long long>(p.deliveries_expected),
                 static_cast<unsigned long long>(p.joins_completed),
                 static_cast<unsigned long long>(p.joins_requested), p.latency_ms_p50);
  }

  if (check) {
    auto violations = scenario::ScenarioDriver::check(driver.spec(), report);
    for (const std::string& v : violations) std::fprintf(stderr, "ASSERT FAILED: %s\n", v.c_str());
    if (!violations.empty()) return 1;
    std::fprintf(stderr, "all expectations hold\n");
  }
  return 0;
}
