"""libclang front-end for atum_analyze.

Loads the exported compile_commands.json, parses each translation unit
with clang.cindex, and extracts a semantic model of the repository:

  * a call graph over every function/method/constructor defined in repo
    files, with each call site tagged by whether it is lexically dominated
    by a try block whose handlers catch SerdeError (or broader);
  * decode uses: calls to throwing ByteReader read methods, with the same
    guard tag;
  * allocation sites: non-placement `new`, make_unique/make_shared,
    std::function construction, Payload::to_bytes(), Bytes copy
    construction;
  * range-for statements with the *canonical* type of the iterated range
    (so `auto&`, typedefs and structured bindings cannot hide an
    unordered container);
  * payload-escape candidates: Payload::data()/bytes_view()-derived raw
    views stored into members, returned, or captured by scheduled
    callables;
  * unguarded wire-derived reserve/resize calls.

The rules in rules.py consume this model; they never touch libclang
directly, which keeps them unit-testable without a clang installation.

libclang discovery is defensive because the analyzer must degrade to a
SKIP (not a crash) on hosts without clang: see find_libclang().
"""

from __future__ import annotations

import glob
import json
import os
import shlex

# ---------------------------------------------------------------------------
# libclang discovery
# ---------------------------------------------------------------------------

# Env override for non-standard layouts; CI pins it to the apt-installed
# libclang-14 so the analyzer never silently floats to another version.
LIBCLANG_ENV = "ATUM_LIBCLANG"
# Test hook: force the "no libclang" path even on hosts that have it.
FORCE_NO_LIBCLANG_ENV = "ATUM_ANALYZE_FORCE_NO_LIBCLANG"


def find_libclang():
    """Returns (cindex_module, None) or (None, reason_string).

    Tries, in order: the ATUM_LIBCLANG env path, versioned system glob
    locations, then cindex's own default search. libclang-cpp (the C++
    interface library) is explicitly excluded — it does not export the C
    API the python bindings need.
    """
    if os.environ.get(FORCE_NO_LIBCLANG_ENV):
        return None, "libclang disabled via %s" % FORCE_NO_LIBCLANG_ENV
    try:
        import clang.cindex as cindex
    except ImportError:
        return None, "python clang bindings (clang.cindex) not importable"

    candidates = []
    env = os.environ.get(LIBCLANG_ENV)
    if env:
        candidates.append(env)
    for pattern in (
        "/usr/lib/llvm-*/lib/libclang.so*",
        "/usr/lib/llvm-*/lib/libclang-*.so*",
        "/usr/lib/*/libclang.so*",
        "/usr/lib/*/libclang-*.so*",
    ):
        candidates.extend(sorted(glob.glob(pattern)))
    candidates = [c for c in candidates if c and "libclang-cpp" not in c]

    for candidate in candidates:
        cindex.Config.library_file = candidate
        try:
            cindex.Index.create()
            return cindex, None
        except Exception:  # noqa: BLE001 - any load failure => next candidate
            continue
    # Last resort: let cindex search its default locations.
    cindex.Config.library_file = None
    try:
        cindex.Index.create()
        return cindex, None
    except Exception:  # noqa: BLE001
        return None, "no usable libclang shared library found"


# ---------------------------------------------------------------------------
# compile_commands.json
# ---------------------------------------------------------------------------

# Flags that take a separate argument and must be dropped with it.
_DROP_WITH_ARG = {"-o", "-MT", "-MF", "-MQ", "--output"}


def sanitize_args(argv, source_file):
    """Strips a compile command down to what libclang needs for parsing.

    Drops the compiler argv0, the source file itself, output/dep-file
    flags, and warning flags (gcc warning spellings clang does not know
    would otherwise become parse diagnostics).
    """
    out = []
    skip_next = False
    for i, arg in enumerate(argv):
        if i == 0:
            continue  # compiler binary
        if skip_next:
            skip_next = False
            continue
        if arg in _DROP_WITH_ARG:
            skip_next = True
            continue
        if arg in ("-c", "-MD", "-MMD", "-MP"):
            continue
        if arg.startswith(("-o", "-W")) and arg not in ("-o", "-W"):
            # -oFILE / -Wfoo forms (but keep bare "-o" handling above).
            if arg.startswith("-o") or arg.startswith("-W"):
                continue
        if arg.startswith("-fdiagnostics"):
            continue
        if os.path.basename(arg) == os.path.basename(source_file):
            continue
        out.append(arg)
    return out


def load_compile_commands(path):
    """Parses compile_commands.json into [(abs_source, args, directory)].

    Raises FileNotFoundError / ValueError with actionable messages; the
    CLI turns those into exit code 2.
    """
    if not os.path.isfile(path):
        raise FileNotFoundError(
            "compile_commands.json not found at %s "
            "(configure with cmake first: it exports compile commands)" % path
        )
    with open(path, encoding="utf-8") as fh:
        try:
            entries = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError("%s is not valid JSON: %s" % (path, exc)) from exc
    if not isinstance(entries, list):
        raise ValueError("%s: expected a JSON array of compile commands" % path)
    commands = []
    for entry in entries:
        directory = entry.get("directory", ".")
        source = entry.get("file", "")
        if not os.path.isabs(source):
            source = os.path.join(directory, source)
        source = os.path.normpath(source)
        if "arguments" in entry:
            argv = list(entry["arguments"])
        else:
            argv = shlex.split(entry.get("command", ""))
        commands.append((source, sanitize_args(argv, source), directory))
    return commands


# ---------------------------------------------------------------------------
# Semantic model
# ---------------------------------------------------------------------------


class CallSite:
    __slots__ = ("name", "usr", "file", "line", "col", "guarded")

    def __init__(self, name, usr, file, line, col, guarded):
        self.name = name
        self.usr = usr
        self.file = file
        self.line = line
        self.col = col
        self.guarded = guarded


class Fact:
    """A located fact: decode use, alloc, range-for, escape, reserve."""

    __slots__ = ("file", "line", "col", "desc", "guarded")

    def __init__(self, file, line, col, desc, guarded=False):
        self.file = file
        self.line = line
        self.col = col
        self.desc = desc
        self.guarded = guarded


class FunctionNode:
    __slots__ = (
        "usr",
        "qualname",
        "file",
        "line",
        "col",
        "calls",
        "decode_uses",
        "allocs",
        "serde_exempt",
    )

    def __init__(self, usr, qualname, file, line, col, serde_exempt):
        self.usr = usr
        self.qualname = qualname
        self.file = file
        self.line = line
        self.col = col
        self.calls = []
        self.decode_uses = []
        self.allocs = []
        # True for ByteReader/ByteWriter members: the serde layer's own
        # reads are the throwing primitive, not an unguarded consumer.
        self.serde_exempt = serde_exempt


class Model:
    def __init__(self):
        self.functions = {}  # usr -> FunctionNode
        self.name_index = {}  # simple name -> [usr, ...]
        self.range_iters = []  # Fact(desc=canonical range type)
        self.escapes = []  # Fact(desc=message)
        self.reserve_flags = []  # Fact(desc=message)
        self.parse_errors = []  # (file, message)
        self._seen_locs = set()

    def add_function(self, node):
        self.functions[node.usr] = node
        self.name_index.setdefault(node.qualname.rsplit("::", 1)[-1], []).append(node.usr)

    def add_once(self, bucket, fact, tag):
        key = (tag, fact.file, fact.line, fact.col, fact.desc)
        if key in self._seen_locs:
            return
        self._seen_locs.add(key)
        bucket.append(fact)


# Method names on ByteReader that can throw SerdeError.
READER_THROWING = {
    "u8",
    "u16",
    "u32",
    "u64",
    "i8",
    "i16",
    "i32",
    "i64",
    "varint",
    "bytes",
    "bytes_view",
    "raw",
    "str",
    "vec",
    "skip",
    "expect_done",
}

# Classes whose own members are exempt from payload-escape: they ARE the
# owning / viewing abstraction the rule protects callers of.
ESCAPE_EXEMPT_CLASSES = {"Payload", "Frame", "ByteReader", "ByteWriter"}

# Field types that count as "owner stored alongside": holding one of these
# in the same object keeps the viewed frame alive.
OWNER_FIELD_MARKERS = (
    "Payload",
    "Frame",
    "std::vector<unsigned char",
    "std::vector<std::uint8_t",
    "std::basic_string<char",
)

ALLOC_CALL_NAMES = {"make_unique", "make_shared", "malloc", "calloc", "realloc"}

SCHEDULE_CALL_NAMES = {"schedule_at", "schedule_after", "defer", "set_timer"}

BOUND_GUARD_CALL_NAMES = {"check", "min", "max", "clamp", "require", "ensure"}

CATCH_GUARD_MARKERS = ("SerdeError", "runtime_error", "exception")


class Extractor:
    """Walks translation units and fills a Model."""

    def __init__(self, cindex, repo_root, model):
        self.ci = cindex
        self.ck = cindex.CursorKind
        self.tk = cindex.TypeKind
        self.repo_root = os.path.realpath(repo_root) + os.sep
        self.model = model
        self._container_kinds = {
            self.ck.NAMESPACE,
            self.ck.CLASS_DECL,
            self.ck.STRUCT_DECL,
            self.ck.UNION_DECL,
            self.ck.CLASS_TEMPLATE,
            self.ck.CLASS_TEMPLATE_PARTIAL_SPECIALIZATION,
            self.ck.LINKAGE_SPEC,
            self.ck.UNEXPOSED_DECL,
        }
        self._function_kinds = {
            self.ck.FUNCTION_DECL,
            self.ck.CXX_METHOD,
            self.ck.CONSTRUCTOR,
            self.ck.DESTRUCTOR,
            self.ck.FUNCTION_TEMPLATE,
            self.ck.CONVERSION_FUNCTION,
        }

    # -- helpers ----------------------------------------------------------

    def in_repo(self, cursor):
        f = cursor.location.file
        if f is None:
            return False
        return os.path.realpath(f.name).startswith(self.repo_root)

    def loc(self, cursor):
        f = cursor.location.file
        return (
            os.path.realpath(f.name) if f else "<unknown>",
            cursor.location.line,
            cursor.location.column,
        )

    def qualified_name(self, cursor):
        parts = []
        c = cursor
        while c is not None and c.kind != self.ck.TRANSLATION_UNIT:
            if c.spelling:
                parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    def canonical_spelling(self, ctype):
        try:
            return ctype.get_canonical().spelling
        except Exception:  # noqa: BLE001 - dependent types can misbehave
            return ctype.spelling if ctype is not None else ""

    def is_viewish_type(self, ctype):
        if ctype is None:
            return False
        try:
            canonical = ctype.get_canonical()
        except Exception:  # noqa: BLE001
            return False
        if canonical.kind == self.tk.POINTER:
            pointee = self.canonical_spelling(canonical.get_pointee())
            # Only byte/char views matter here; SomeStruct* members are not
            # payload views.
            return any(t in pointee for t in ("char", "uint8_t", "std::byte"))
        spelling = canonical.spelling
        return "basic_string_view<" in spelling or "span<" in spelling

    def class_of(self, cursor):
        parent = cursor.semantic_parent
        if parent is not None and parent.kind in (
            self.ck.CLASS_DECL,
            self.ck.STRUCT_DECL,
            self.ck.CLASS_TEMPLATE,
            self.ck.CLASS_TEMPLATE_PARTIAL_SPECIALIZATION,
        ):
            return parent
        return None

    def class_has_owner_field(self, class_cursor):
        if class_cursor is None:
            return False
        for child in class_cursor.get_children():
            if child.kind == self.ck.FIELD_DECL:
                spelling = self.canonical_spelling(child.type)
                if any(marker in spelling for marker in OWNER_FIELD_MARKERS):
                    return True
        return False

    # -- view-source detection (payload-escape) ---------------------------

    def _member_call_base_type(self, call):
        kids = list(call.get_children())
        if not kids:
            return ""
        base = kids[0]
        if base.kind == self.ck.MEMBER_REF_EXPR:
            inner = list(base.get_children())
            if inner:
                return self.canonical_spelling(inner[0].type)
        return self.canonical_spelling(base.type)

    def is_view_source_call(self, cursor):
        """True for Payload::data()/begin()/end() and *::bytes_view()."""
        if cursor.kind != self.ck.CALL_EXPR:
            return False
        name = cursor.spelling
        if name not in ("data", "begin", "end", "bytes_view"):
            return False
        ref = cursor.referenced
        if ref is not None:
            owner = self.class_of(ref)
            if owner is not None:
                if name == "bytes_view":
                    return owner.spelling in ("ByteReader", "Payload")
                return owner.spelling == "Payload"
        base_type = self._member_call_base_type(cursor)
        if name == "bytes_view":
            return "ByteReader" in base_type or "Payload" in base_type
        return "Payload" in base_type

    def subtree_has_view_source(self, cursor):
        if self.is_view_source_call(cursor):
            return True
        return any(self.subtree_has_view_source(c) for c in cursor.get_children())

    def subtree_refs_any(self, cursor, usrs):
        if cursor.kind == self.ck.DECL_REF_EXPR:
            ref = cursor.referenced
            if ref is not None and ref.get_usr() in usrs:
                return True
        return any(self.subtree_refs_any(c, usrs) for c in cursor.get_children())

    # -- decode-use detection (handler-serde-safety) -----------------------

    def is_reader_read_call(self, cursor):
        if cursor.kind != self.ck.CALL_EXPR:
            return False
        name = cursor.spelling
        if name not in READER_THROWING:
            return False
        ref = cursor.referenced
        if ref is not None:
            owner = self.class_of(ref)
            if owner is not None:
                return owner.spelling == "ByteReader"
        return "ByteReader" in self._member_call_base_type(cursor)

    def subtree_has_reader_read(self, cursor):
        if self.is_reader_read_call(cursor):
            return True
        return any(self.subtree_has_reader_read(c) for c in cursor.get_children())

    def subtree_has_call_named(self, cursor, names):
        if cursor.kind == self.ck.CALL_EXPR and cursor.spelling in names:
            return True
        return any(self.subtree_has_call_named(c, names) for c in cursor.get_children())

    # -- TU traversal ------------------------------------------------------

    def visit_tu(self, tu):
        self._visit_container(tu.cursor)

    def _visit_container(self, cursor):
        for child in cursor.get_children():
            if not self.in_repo(child):
                continue
            if child.kind in self._function_kinds:
                if child.is_definition():
                    self.extract_function(child)
            elif child.kind in self._container_kinds:
                self._visit_container(child)

    # -- function extraction ----------------------------------------------

    def extract_function(self, cursor):
        usr = cursor.get_usr()
        if not usr or usr in self.model.functions:
            return
        owner = self.class_of(cursor)
        owner_name = owner.spelling if owner is not None else ""
        serde_exempt = owner_name in ("ByteReader", "ByteWriter")
        file, line, col = self.loc(cursor)
        node = FunctionNode(usr, self.qualified_name(cursor), file, line, col, serde_exempt)
        self.model.add_function(node)

        state = _FnState()
        state.escape_exempt = (
            owner_name in ESCAPE_EXEMPT_CLASSES or self.class_has_owner_field(owner)
        )
        try:
            result_type = cursor.type.get_result()
        except Exception:  # noqa: BLE001 - dependent signature
            result_type = None
        state.returns_view = self.is_viewish_type(result_type)

        if cursor.kind == self.ck.CONSTRUCTOR:
            self._extract_ctor_inits(cursor, node, state)
        for child in cursor.get_children():
            if child.kind.is_statement() or child.kind.is_expression():
                self._walk(child, node, state, guarded=False)

    def _extract_ctor_inits(self, cursor, node, state):
        """Member initializers: `Ctor() : field_(payload.data()) {}`.

        cindex exposes them as alternating MEMBER_REF / init-expression
        children preceding the body.
        """
        pending_field = None
        for child in cursor.get_children():
            if child.kind == self.ck.MEMBER_REF:
                pending_field = child.referenced
                continue
            if pending_field is not None and child.kind.is_expression():
                field = pending_field
                pending_field = None
                if (
                    field is not None
                    and self.is_viewish_type(field.type)
                    and self.subtree_has_view_source(child)
                    and not state.escape_exempt
                ):
                    file, line, col = self.loc(child)
                    self.model.add_once(
                        self.model.escapes,
                        Fact(
                            file,
                            line,
                            col,
                            "constructor stores a Payload-derived view into member '%s' "
                            "without an owning Payload/Bytes member alongside"
                            % field.spelling,
                        ),
                        "escape",
                    )

    # -- statement walk ----------------------------------------------------

    def _walk(self, cursor, node, state, guarded):
        kind = cursor.kind

        if kind == self.ck.CXX_TRY_STMT:
            kids = list(cursor.get_children())
            if kids:
                handlers = [k for k in kids[1:] if k.kind == self.ck.CXX_CATCH_STMT]
                body_guarded = guarded or any(
                    self._catch_covers_serde(h) for h in handlers
                )
                self._walk(kids[0], node, state, body_guarded)
                for handler in handlers:
                    self._walk(handler, node, state, guarded)
            return

        if kind == self.ck.IF_STMT or kind == self.ck.CONDITIONAL_OPERATOR:
            kids = list(cursor.get_children())
            if kids:
                self._note_bound_guards(kids[0], state)
            for child in kids:
                self._walk(child, node, state, guarded)
            return

        if kind == self.ck.CXX_FOR_RANGE_STMT:
            self._handle_range_for(cursor)
            for child in cursor.get_children():
                self._walk(child, node, state, guarded)
            return

        if kind == self.ck.VAR_DECL:
            self._handle_var_decl(cursor, node, state)
            for child in cursor.get_children():
                self._walk(child, node, state, guarded)
            return

        if kind == self.ck.CXX_NEW_EXPR:
            self._handle_new(cursor, node)
            for child in cursor.get_children():
                self._walk(child, node, state, guarded)
            return

        if kind == self.ck.RETURN_STMT:
            self._handle_return(cursor, node, state)
            for child in cursor.get_children():
                self._walk(child, node, state, guarded)
            return

        if kind == self.ck.BINARY_OPERATOR:
            self._handle_assignment(cursor, node, state)
            for child in cursor.get_children():
                self._walk(child, node, state, guarded)
            return

        if kind == self.ck.CALL_EXPR:
            self._handle_call(cursor, node, state, guarded)
            for child in cursor.get_children():
                self._walk(child, node, state, guarded)
            return

        for child in cursor.get_children():
            self._walk(child, node, state, guarded)

    def _catch_covers_serde(self, handler):
        kids = list(handler.get_children())
        decls = [k for k in kids if k.kind == self.ck.VAR_DECL]
        if not decls:
            return True  # catch (...)
        spelling = self.canonical_spelling(decls[0].type)
        return any(marker in spelling for marker in CATCH_GUARD_MARKERS)

    def _note_bound_guards(self, condition, state):
        """Any variable referenced in an if/ternary condition counts as
        bound-checked from here on (lexically)."""
        self._collect_decl_refs(condition, state.bound_checked)

    def _collect_decl_refs(self, cursor, out):
        if cursor.kind == self.ck.DECL_REF_EXPR:
            ref = cursor.referenced
            if ref is not None:
                usr = ref.get_usr()
                if usr:
                    out.add(usr)
        for child in cursor.get_children():
            self._collect_decl_refs(child, out)

    def _handle_range_for(self, cursor):
        range_expr = None
        for child in cursor.get_children():
            if child.kind.is_expression():
                range_expr = child
                break
        if range_expr is None:
            return
        spelling = self.canonical_spelling(range_expr.type)
        if "unordered_" in spelling:
            file, line, col = self.loc(cursor)
            self.model.add_once(
                self.model.range_iters, Fact(file, line, col, spelling), "range"
            )

    def _handle_var_decl(self, cursor, node, state):
        usr = cursor.get_usr()
        spelling = self.canonical_spelling(cursor.type)
        if "std::function<" in spelling:
            file, line, col = self.loc(cursor)
            node.allocs.append(
                Fact(file, line, col, "std::function construction (type-erased heap storage)")
            )
        init_children = [c for c in cursor.get_children() if c.kind.is_expression()]
        init = init_children[-1] if init_children else None
        if init is None or not usr:
            return
        if self.is_viewish_type(cursor.type) and self.subtree_has_view_source(init):
            state.view_vars.add(usr)
        if self.subtree_has_reader_read(init):
            state.wire_vars.add(usr)

    def _handle_new(self, cursor, node):
        # Placement new (`::new (addr) T(...)`) constructs into existing
        # storage; only allocating new counts. Detect placement by token
        # shape: 'new' immediately followed by '('.
        tokens = [t.spelling for t in cursor.get_tokens()]
        for i, tok in enumerate(tokens):
            if tok == "new":
                if i + 1 < len(tokens) and tokens[i + 1] == "(":
                    return
                break
        file, line, col = self.loc(cursor)
        node.allocs.append(Fact(file, line, col, "naked `new` heap allocation"))

    def _handle_return(self, cursor, node, state):
        if not state.returns_view or state.escape_exempt:
            return
        kids = list(cursor.get_children())
        if not kids:
            return
        expr = kids[0]
        if self.subtree_has_view_source(expr) or self.subtree_refs_any(
            expr, state.view_vars
        ):
            file, line, col = self.loc(cursor)
            self.model.add_once(
                self.model.escapes,
                Fact(
                    file,
                    line,
                    col,
                    "returns a Payload-derived view from a function whose class does "
                    "not own the backing Payload/Bytes",
                ),
                "escape",
            )

    def _handle_assignment(self, cursor, node, state):
        kids = list(cursor.get_children())
        if len(kids) != 2:
            return
        lhs, rhs = kids
        if lhs.kind != self.ck.MEMBER_REF_EXPR:
            return
        field = lhs.referenced
        if field is None or field.kind != self.ck.FIELD_DECL:
            return
        if not self.is_viewish_type(field.type):
            return
        # Only plain '=' matters; compound ops on a view type are arithmetic.
        if not self._is_plain_assign(cursor, lhs):
            return
        if not (
            self.subtree_has_view_source(rhs) or self.subtree_refs_any(rhs, state.view_vars)
        ):
            return
        owner_class = self.class_of(field)
        if owner_class is not None and (
            owner_class.spelling in ESCAPE_EXEMPT_CLASSES
            or self.class_has_owner_field(owner_class)
        ):
            return
        file, line, col = self.loc(cursor)
        self.model.add_once(
            self.model.escapes,
            Fact(
                file,
                line,
                col,
                "stores a Payload-derived view into member '%s' of a class with no "
                "owning Payload/Bytes member" % field.spelling,
            ),
            "escape",
        )

    def _is_plain_assign(self, binop, lhs):
        end = lhs.extent.end.offset
        for token in binop.get_tokens():
            if token.extent.start.offset >= end:
                return token.spelling == "="
        return False

    def _handle_call(self, cursor, node, state, guarded):
        name = cursor.spelling
        ref = cursor.referenced
        if not name and ref is not None:
            name = ref.spelling
        file, line, col = self.loc(cursor)

        usr = None
        if ref is not None:
            candidate = ref.get_usr()
            if candidate:
                usr = candidate
        node.calls.append(CallSite(name, usr, file, line, col, guarded))

        if name in BOUND_GUARD_CALL_NAMES:
            # check(n <= remaining())-style guards bless their arguments.
            self._collect_decl_refs(cursor, state.bound_checked)

        if not node.serde_exempt and self.is_reader_read_call(cursor):
            node.decode_uses.append(
                Fact(file, line, col, "ByteReader::%s()" % name, guarded)
            )

        if name in ALLOC_CALL_NAMES:
            node.allocs.append(Fact(file, line, col, "heap allocation via %s()" % name))
        elif name == "to_bytes" and "Payload" in self._member_call_base_type(cursor):
            node.allocs.append(
                Fact(file, line, col, "Payload::to_bytes() deep copy")
            )
        elif ref is not None and ref.kind == self.ck.CONSTRUCTOR:
            try:
                is_copy = ref.is_copy_constructor()
            except Exception:  # noqa: BLE001
                is_copy = False
            if is_copy:
                owner = self.class_of(ref)
                owner_spelling = (
                    self.canonical_spelling(owner.type) if owner is not None else ""
                )
                if "vector<unsigned char" in owner_spelling:
                    node.allocs.append(
                        Fact(file, line, col, "Bytes copy-construction")
                    )

        if name in ("reserve", "resize"):
            self._handle_reserve(cursor, state)

        if name in SCHEDULE_CALL_NAMES:
            self._handle_schedule(cursor, state)

    def _handle_reserve(self, cursor, state):
        kids = list(cursor.get_children())
        args = kids[1:] if kids else []
        for arg in args:
            direct_read = self.subtree_has_reader_read(arg)
            wire_ref = self.subtree_refs_any(arg, state.wire_vars)
            if not direct_read and not wire_ref:
                continue
            if self.subtree_has_call_named(arg, ("min", "clamp")):
                continue  # argument is clamped in place
            if wire_ref and not direct_read:
                refs = set()
                self._collect_decl_refs(arg, refs)
                if refs & state.wire_vars <= state.bound_checked:
                    continue  # every wire-derived input was bound-checked
            file, line, col = self.loc(cursor)
            self.model.add_once(
                self.model.reserve_flags,
                Fact(
                    file,
                    line,
                    col,
                    "%s() sized by wire-derived value without a preceding bound check"
                    % cursor.spelling,
                ),
                "reserve",
            )

    def _handle_schedule(self, cursor, state):
        if not state.view_vars:
            return
        for child in cursor.get_children():
            if self._lambda_captures_view(child, state.view_vars):
                file, line, col = self.loc(cursor)
                self.model.add_once(
                    self.model.escapes,
                    Fact(
                        file,
                        line,
                        col,
                        "scheduled callable captures a Payload-derived view; the "
                        "frame may be released before the event fires",
                    ),
                    "escape",
                )
                return

    def _lambda_captures_view(self, cursor, view_vars):
        if cursor.kind == self.ck.LAMBDA_EXPR:
            return self.subtree_refs_any(cursor, view_vars)
        return any(
            self._lambda_captures_view(c, view_vars) for c in cursor.get_children()
        )


class _FnState:
    __slots__ = ("view_vars", "wire_vars", "bound_checked", "returns_view", "escape_exempt")

    def __init__(self):
        self.view_vars = set()
        self.wire_vars = set()
        self.bound_checked = set()
        self.returns_view = False
        self.escape_exempt = False


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def build_model(cindex, commands, repo_root, path_filter=None):
    """Parses every matching TU and returns the populated Model."""
    model = Model()
    extractor = Extractor(cindex, repo_root, model)
    index = cindex.Index.create()
    for source, args, _directory in commands:
        if path_filter is not None and not path_filter(source):
            continue
        try:
            tu = index.parse(source, args=args)
        except cindex.TranslationUnitLoadError as exc:
            model.parse_errors.append((source, str(exc)))
            continue
        fatal = [
            d
            for d in tu.diagnostics
            if d.severity >= cindex.Diagnostic.Fatal
        ]
        if fatal:
            model.parse_errors.append((source, fatal[0].spelling))
            continue
        extractor.visit_tu(tu)
    return model
