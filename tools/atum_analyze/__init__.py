"""atum_analyze: libclang-based semantic analyzer for the Atum tree.

Run as `python3 tools/atum_analyze/__main__.py` (or `python3 -m
atum_analyze` from tools/). See __main__.py for the CLI and
ARCHITECTURE.md "Correctness tooling" for the rules.
"""
