"""Suppression annotations for atum_analyze.

Reuses the exact grammar of tools/atum_lint.py: a finding on line N is
suppressed by `// lint: <rule>-ok(<why>)` on line N or line N-1. The `why`
is mandatory by construction (the regex requires a non-empty parenthesized
reason), so every suppression in the tree documents why the invariant
holds at that site.
"""

from __future__ import annotations

import re

ANNOTATION_RE = re.compile(r"//\s*lint:\s*([a-z-]+)-ok\(([^)]+)\)")


class Suppressions:
    """Lazy per-file index of `// lint: <rule>-ok(<why>)` annotations."""

    def __init__(self) -> None:
        self._by_file: dict[str, dict[int, list[tuple[str, str]]]] = {}

    def _load(self, path: str) -> dict[int, list[tuple[str, str]]]:
        cached = self._by_file.get(path)
        if cached is not None:
            return cached
        entries: dict[int, list[tuple[str, str]]] = {}
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                for lineno, line in enumerate(fh, 1):
                    for m in ANNOTATION_RE.finditer(line):
                        entries.setdefault(lineno, []).append((m.group(1), m.group(2)))
        except OSError:
            pass
        self._by_file[path] = entries
        return entries

    def allows(self, path: str, line: int, rule: str) -> bool:
        entries = self._load(path)
        for candidate in (line, line - 1):
            for annotated_rule, _why in entries.get(candidate, ()):
                if annotated_rule == rule:
                    return True
        return False
