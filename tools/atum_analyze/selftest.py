"""Fixture-corpus self-test for atum_analyze.

Every fixtures/*.cpp marks its expected findings with `// expect: <rule>`
on the offending line; clean and suppressed fixtures carry no markers.
The self-test parses the whole corpus as one model (compile commands are
generated from the in-tree template) and demands an exact match in both
directions: every expectation produced, nothing unexpected produced —
including zero findings inside atum_mini.h itself.
"""

from __future__ import annotations

import json
import os
import re
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import engine  # noqa: E402
import rules as rules_mod  # noqa: E402
import suppress  # noqa: E402

EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z-]+)")

FIXTURES_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
TEMPLATE_PATH = os.path.join(FIXTURES_DIR, "compile_commands.json.in")
DIR_TOKEN = "@FIXTURES@"
MIN_FIXTURES = 24


def fixture_files():
    return sorted(
        f for f in os.listdir(FIXTURES_DIR) if f.endswith(".cpp")
    )


def template_json():
    """The in-tree mini compile_commands, with @FIXTURES@ placeholders."""
    entries = [
        {
            "directory": DIR_TOKEN,
            "file": "%s/%s" % (DIR_TOKEN, name),
            "command": "c++ -std=c++20 -I%s -c %s/%s" % (DIR_TOKEN, DIR_TOKEN, name),
        }
        for name in fixture_files()
    ]
    return json.dumps(entries, indent=2) + "\n"


def parse_expectations(path):
    """Returns {lineno: rule} for one fixture file."""
    out = {}
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            m = EXPECT_RE.search(line)
            if m:
                out[lineno] = m.group(1)
    return out


def run(cindex):
    files = fixture_files()
    failures = []
    if len(files) < MIN_FIXTURES:
        failures.append(
            "fixture corpus has %d files; the contract is >= %d"
            % (len(files), MIN_FIXTURES)
        )

    expected = set()
    for name in files:
        path = os.path.realpath(os.path.join(FIXTURES_DIR, name))
        for lineno, rule in parse_expectations(path).items():
            expected.add((path, lineno, rule))

    with tempfile.TemporaryDirectory(prefix="atum_analyze_selftest_") as tmp:
        cc_path = os.path.join(tmp, "compile_commands.json")
        with open(TEMPLATE_PATH, encoding="utf-8") as fh:
            rendered = fh.read().replace(DIR_TOKEN, FIXTURES_DIR)
        with open(cc_path, "w", encoding="utf-8") as fh:
            fh.write(rendered)
        commands = engine.load_compile_commands(cc_path)
        model = engine.build_model(cindex, commands, FIXTURES_DIR)

    for source, message in model.parse_errors:
        failures.append("fixture failed to parse: %s: %s" % (source, message))

    findings, suppressed = rules_mod.run_rules(model, suppress.Suppressions())
    actual = {(f.file, f.line, f.rule) for f in findings}

    for path, lineno, rule in sorted(expected - actual):
        failures.append(
            "MISSING expected finding %s at %s:%d"
            % (rule, os.path.basename(path), lineno)
        )
    for path, lineno, rule in sorted(actual - expected):
        failures.append(
            "UNEXPECTED finding %s at %s:%d" % (rule, os.path.basename(path), lineno)
        )

    if failures:
        for failure in failures:
            print("atum_analyze self-test: %s" % failure)
        print(
            "atum_analyze self-test: FAILED (%d fixture(s), %d expected finding(s), "
            "%d produced, %d suppressed)"
            % (len(files), len(expected), len(actual), suppressed)
        )
        return 1

    print(
        "atum_analyze self-test: OK (%d fixtures, %d expected findings matched, "
        "%d suppressed)" % (len(files), len(expected), suppressed)
    )
    return 0
