"""Unit tests for the libclang-free parts of atum_analyze.

These run on every host (ctest registers them unconditionally): the
suppression grammar, compile_commands loading and sanitization, the
fixture-expectation parser, template drift, the graceful-skip paths, and
the rule algorithms over hand-built models. Only the libclang extraction
itself needs clang — that is what the fixture self-test covers in CI.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import engine  # noqa: E402
import rules as rules_mod  # noqa: E402
import selftest  # noqa: E402
import suppress  # noqa: E402

# The CLI lives in __main__.py; import it by path so running this file as a
# script does not alias it to ourselves.
import importlib.util  # noqa: E402

_spec = importlib.util.spec_from_file_location(
    "atum_analyze_cli",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "__main__.py"),
)
cli = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(cli)


def write(path, content):
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(content)


class SuppressionTest(unittest.TestCase):
    def test_same_line_above_and_rule_match(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "x.cpp")
            write(
                path,
                "int a;\n"
                "for (auto& kv : m) {}  // lint: unordered-iter-ok(order-free sum)\n"
                "// lint: hot-path-alloc-ok(amortized arena growth)\n"
                "auto* p = new int(1);\n"
                "auto* q = new int(2);\n",
            )
            s = suppress.Suppressions()
            self.assertTrue(s.allows(path, 2, "unordered-iter"))
            self.assertFalse(s.allows(path, 2, "hot-path-alloc"))
            self.assertTrue(s.allows(path, 4, "hot-path-alloc"))  # line above
            self.assertFalse(s.allows(path, 5, "hot-path-alloc"))  # two above
            self.assertFalse(s.allows(os.path.join(tmp, "missing.cpp"), 1, "x"))


class CompileCommandsTest(unittest.TestCase):
    def test_missing_file_raises_with_hint(self):
        with self.assertRaises(FileNotFoundError) as ctx:
            engine.load_compile_commands("/nonexistent/compile_commands.json")
        self.assertIn("configure with cmake", str(ctx.exception))

    def test_invalid_json_raises(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "compile_commands.json")
            write(path, "not json")
            with self.assertRaises(ValueError):
                engine.load_compile_commands(path)

    def test_command_and_arguments_forms(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "compile_commands.json")
            write(
                path,
                json.dumps(
                    [
                        {
                            "directory": tmp,
                            "file": "a.cpp",
                            "command": "g++ -std=c++20 -Iinc -Wall -c a.cpp -o a.o",
                        },
                        {
                            "directory": tmp,
                            "file": os.path.join(tmp, "b.cpp"),
                            "arguments": ["g++", "-DFOO=1", "-c", "b.cpp", "-o", "b.o"],
                        },
                    ]
                ),
            )
            commands = engine.load_compile_commands(path)
            self.assertEqual(len(commands), 2)
            src_a, args_a, _ = commands[0]
            self.assertEqual(src_a, os.path.join(tmp, "a.cpp"))
            self.assertIn("-std=c++20", args_a)
            self.assertIn("-Iinc", args_a)
            self.assertNotIn("-Wall", args_a)  # warnings dropped
            self.assertNotIn("-c", args_a)
            self.assertNotIn("-o", args_a)
            self.assertNotIn("a.o", args_a)
            self.assertNotIn("a.cpp", args_a)  # source re-added by parse()
            _, args_b, _ = commands[1]
            self.assertEqual(args_b, ["-DFOO=1"])


class FixtureCorpusTest(unittest.TestCase):
    def test_expectation_parsing(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "f.cpp")
            write(
                path,
                "int a;\n"
                "head_ = p.data();  // expect: payload-escape\n"
                "last = r.u64();  // expect: handler-serde-safety\n",
            )
            self.assertEqual(
                selftest.parse_expectations(path),
                {2: "payload-escape", 3: "handler-serde-safety"},
            )

    def test_corpus_size_contract(self):
        self.assertGreaterEqual(len(selftest.fixture_files()), selftest.MIN_FIXTURES)

    def test_every_rule_has_flag_suppressed_and_clean_fixtures(self):
        prefixes = {
            "payload-escape": "pe_",
            "handler-serde-safety": "hs_",
            "hot-path-alloc": "hp_",
            "unordered-iter": "ui_",
        }
        files = selftest.fixture_files()
        for rule, prefix in prefixes.items():
            family = [f for f in files if f.startswith(prefix)]
            flagged = [
                f
                for f in family
                if selftest.parse_expectations(os.path.join(selftest.FIXTURES_DIR, f))
            ]
            self.assertTrue(flagged, "no expected-finding fixture for %s" % rule)
            self.assertIn("%ssuppressed.cpp" % prefix, family)
            self.assertTrue(
                any(f.endswith("_clean.cpp") for f in family),
                "no clean fixture for %s" % rule,
            )
            for f in flagged:
                expectations = selftest.parse_expectations(
                    os.path.join(selftest.FIXTURES_DIR, f)
                )
                self.assertTrue(
                    all(r == rule for r in expectations.values()),
                    "%s declares expectations for a foreign rule" % f,
                )

    def test_template_matches_fixture_listing(self):
        with open(selftest.TEMPLATE_PATH, encoding="utf-8") as fh:
            on_disk = fh.read()
        self.assertEqual(
            on_disk,
            selftest.template_json(),
            "fixtures/compile_commands.json.in is stale — regenerate it from "
            "selftest.template_json() after adding or removing fixtures",
        )


class GracefulSkipTest(unittest.TestCase):
    def setUp(self):
        os.environ[engine.FORCE_NO_LIBCLANG_ENV] = "1"

    def tearDown(self):
        os.environ.pop(engine.FORCE_NO_LIBCLANG_ENV, None)

    def test_find_libclang_honors_force_off(self):
        cindex, reason = engine.find_libclang()
        self.assertIsNone(cindex)
        self.assertIn(engine.FORCE_NO_LIBCLANG_ENV, reason)

    def test_probe_exits_skip(self):
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = cli.main(["--probe"])
        self.assertEqual(code, cli.EXIT_SKIP)
        self.assertIn(cli.SKIP_MARKER, out.getvalue())

    def test_analysis_run_skips_before_touching_compile_commands(self):
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = cli.main(["src", "--compile-commands", "/nonexistent.json"])
        self.assertEqual(code, cli.EXIT_SKIP)
        self.assertIn(cli.SKIP_MARKER, out.getvalue())

    def test_list_rules_never_needs_libclang(self):
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = cli.main(["--list-rules"])
        self.assertEqual(code, cli.EXIT_CLEAN)
        self.assertEqual(out.getvalue().split(), list(rules_mod.ALL_RULES))


class CliErrorTest(unittest.TestCase):
    def test_unknown_rule_is_a_usage_error(self):
        err = io.StringIO()
        with contextlib.redirect_stderr(err):
            code = cli.main(["--rules", "no-such-rule"])
        self.assertEqual(code, cli.EXIT_ERROR)
        self.assertIn("unknown rule", err.getvalue())


def make_model():
    return engine.Model()


def add_fn(model, usr, qualname, serde_exempt=False):
    node = engine.FunctionNode(usr, qualname, "/repo/%s.cpp" % usr, 1, 1, serde_exempt)
    model.add_function(node)
    return node


class RuleAlgorithmTest(unittest.TestCase):
    """rules.py over hand-built models — the graph logic, minus libclang."""

    def no_suppressions(self):
        s = suppress.Suppressions()
        s._by_file["/repo/h.cpp"] = {}
        return s

    def test_serde_guarded_edge_contains_the_subtree(self):
        model = make_model()
        handler = add_fn(model, "h", "app::Rx::on_message")
        helper = add_fn(model, "p", "app::parse")
        helper.decode_uses.append(engine.Fact("/repo/p.cpp", 10, 3, "ByteReader::u64()", False))
        # Guarded call edge: helper's unguarded reads are contained.
        handler.calls.append(engine.CallSite("parse", "p", "/repo/h.cpp", 5, 3, True))
        findings, _ = rules_mod.run_rules(
            model, suppress.Suppressions(), [rules_mod.RULE_HANDLER_SERDE]
        )
        self.assertEqual(findings, [])

    def test_serde_unguarded_transitive_path_flags(self):
        model = make_model()
        handler = add_fn(model, "h", "app::Rx::on_message")
        helper = add_fn(model, "p", "app::parse")
        helper.decode_uses.append(engine.Fact("/repo/p.cpp", 10, 3, "ByteReader::u64()", False))
        handler.calls.append(engine.CallSite("parse", "p", "/repo/h.cpp", 5, 3, False))
        findings, _ = rules_mod.run_rules(
            model, suppress.Suppressions(), [rules_mod.RULE_HANDLER_SERDE]
        )
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].rule, rules_mod.RULE_HANDLER_SERDE)
        self.assertEqual(findings[0].line, 10)

    def test_serde_unreachable_decode_is_clean(self):
        model = make_model()
        helper = add_fn(model, "p", "app::parse_trusted")
        helper.decode_uses.append(engine.Fact("/repo/p.cpp", 10, 3, "ByteReader::u64()", False))
        findings, _ = rules_mod.run_rules(
            model, suppress.Suppressions(), [rules_mod.RULE_HANDLER_SERDE]
        )
        self.assertEqual(findings, [])

    def test_hot_path_walks_unique_name_fallback(self):
        model = make_model()
        entry = add_fn(model, "s", "fx::sim::Simulator::step")
        helper = add_fn(model, "m", "fx::mix")
        helper.allocs.append(engine.Fact("/repo/m.cpp", 7, 3, "naked `new` heap allocation"))
        # Unresolved call (usr=None) resolves through the unique simple name.
        entry.calls.append(engine.CallSite("mix", None, "/repo/s.cpp", 4, 3, False))
        findings, _ = rules_mod.run_rules(
            model, suppress.Suppressions(), [rules_mod.RULE_HOT_PATH_ALLOC]
        )
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].line, 7)

    def test_hot_path_cold_alloc_is_clean(self):
        model = make_model()
        helper = add_fn(model, "m", "fx::bootstrap")
        helper.allocs.append(engine.Fact("/repo/m.cpp", 7, 3, "naked `new` heap allocation"))
        findings, _ = rules_mod.run_rules(
            model, suppress.Suppressions(), [rules_mod.RULE_HOT_PATH_ALLOC]
        )
        self.assertEqual(findings, [])

    def test_suppression_filters_and_counts(self):
        model = make_model()
        model.range_iters.append(engine.Fact("/tmp_fixture.cpp", 2, 3, "std::unordered_map<int, int>"))
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "f.cpp")
            write(path, "// lint: unordered-iter-ok(order-free)\nfor (auto& kv : m) {}\n")
            model.range_iters[0].file = path
            model.range_iters[0].line = 2
            findings, suppressed = rules_mod.run_rules(
                model, suppress.Suppressions(), [rules_mod.RULE_UNORDERED_ITER]
            )
        self.assertEqual(findings, [])
        self.assertEqual(suppressed, 1)

    def test_findings_render_location_rule_and_hint(self):
        finding = rules_mod.Finding(
            rules_mod.RULE_PAYLOAD_ESCAPE, "/repo/x.cpp", 3, 9, "stores a view"
        )
        text = finding.render()
        self.assertIn("/repo/x.cpp:3:9", text)
        self.assertIn("[payload-escape]", text)
        self.assertIn("hint:", text)


if __name__ == "__main__":
    unittest.main(verbosity=2)
