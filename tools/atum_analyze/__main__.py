"""atum_analyze CLI.

Usage:
  python3 tools/atum_analyze/__main__.py [paths...] [-p BUILD_DIR] [options]

  paths              Source prefixes to analyze (default: src). Matched
                     against the `file` entries of compile_commands.json.
  -p/--build-dir     Directory containing compile_commands.json
                     (default: build).
  --compile-commands Explicit path to a compile_commands.json.
  --rules R1,R2      Run a subset of rules (default: all four).
  --out FILE         Also write findings to FILE (CI uploads this as an
                     artifact on failure).
  --self-test        Run the fixture corpus instead of analyzing the repo.
  --probe            Exit 0 if libclang is usable, 3 otherwise (used by
                     CMake to decide whether atum_lint needs --legacy).
  --list-rules       Print the rule names and exit.

Exit codes: 0 clean, 1 findings, 2 usage/configuration error, 3 skipped
(no usable libclang — the printed marker ATUM_ANALYZE_SKIP lets ctest
turn this into a SKIPPED result rather than a failure).
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import engine  # noqa: E402
import rules as rules_mod  # noqa: E402
import suppress  # noqa: E402

SKIP_MARKER = "ATUM_ANALYZE_SKIP"

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2
EXIT_SKIP = 3


def repo_root():
    return os.path.realpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..")
    )


def parse_argv(argv):
    parser = argparse.ArgumentParser(
        prog="atum_analyze", description="libclang semantic analyzer for Atum"
    )
    parser.add_argument("paths", nargs="*", default=[], help="source path prefixes")
    parser.add_argument("-p", "--build-dir", default="build")
    parser.add_argument("--compile-commands", default=None)
    parser.add_argument("--rules", default=",".join(rules_mod.ALL_RULES))
    parser.add_argument("--out", default=None)
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--probe", action="store_true")
    parser.add_argument("--list-rules", action="store_true")
    return parser.parse_args(argv)


def resolve_rules(spec):
    requested = [r.strip() for r in spec.split(",") if r.strip()]
    unknown = [r for r in requested if r not in rules_mod.ALL_RULES]
    if unknown:
        raise ValueError(
            "unknown rule(s): %s (known: %s)"
            % (", ".join(unknown), ", ".join(rules_mod.ALL_RULES))
        )
    return requested


def main(argv=None):
    opts = parse_argv(sys.argv[1:] if argv is None else argv)

    if opts.list_rules:
        for rule in rules_mod.ALL_RULES:
            print(rule)
        return EXIT_CLEAN

    try:
        active_rules = resolve_rules(opts.rules)
    except ValueError as exc:
        print("atum_analyze: %s" % exc, file=sys.stderr)
        return EXIT_ERROR

    cindex, reason = engine.find_libclang()

    if opts.probe:
        if cindex is None:
            print("%s: %s" % (SKIP_MARKER, reason))
            return EXIT_SKIP
        print("libclang OK")
        return EXIT_CLEAN

    if cindex is None:
        print(
            "%s: %s — analyzer skipped (CI runs it with pinned libclang-14; "
            "atum_lint --legacy keeps the regex fallback active locally)"
            % (SKIP_MARKER, reason)
        )
        return EXIT_SKIP

    if opts.self_test:
        import selftest

        return selftest.run(cindex)

    root = repo_root()
    cc_path = opts.compile_commands or os.path.join(
        opts.build_dir, "compile_commands.json"
    )
    try:
        commands = engine.load_compile_commands(cc_path)
    except (FileNotFoundError, ValueError) as exc:
        print("atum_analyze: %s" % exc, file=sys.stderr)
        return EXIT_ERROR

    prefixes = [
        os.path.realpath(p if os.path.isabs(p) else os.path.join(root, p))
        for p in (opts.paths or ["src"])
    ]

    def path_filter(source):
        real = os.path.realpath(source)
        return any(real == p or real.startswith(p + os.sep) for p in prefixes)

    model = engine.build_model(cindex, commands, root, path_filter)
    findings, suppressed = rules_mod.run_rules(
        model, suppress.Suppressions(), active_rules
    )

    lines = [f.render() for f in findings]
    for source, message in model.parse_errors:
        lines.append("%s: [parse-error] %s" % (source, message))

    report = "\n".join(lines)
    if report:
        print(report)
    if opts.out:
        with open(opts.out, "w", encoding="utf-8") as fh:
            fh.write(report + ("\n" if report else ""))

    status = "clean" if not findings and not model.parse_errors else "FAILED"
    print(
        "atum_analyze: %d finding(s), %d suppressed, %d parse error(s), "
        "%d function(s) indexed — %s"
        % (
            len(findings),
            suppressed,
            len(model.parse_errors),
            len(model.functions),
            status,
        )
    )
    return EXIT_CLEAN if status == "clean" else EXIT_FINDINGS


if __name__ == "__main__":
    sys.exit(main())
