"""The four atum_analyze rules, computed over the semantic model.

Pure python over engine.Model — no libclang types cross this boundary,
so everything here is unit-testable on hosts without clang.

Rules (suppressions use `// lint: <rule>-ok(<why>)`):

  payload-escape         Payload::data()/bytes_view()-derived raw views
                         must not outlive their frame: no storing into
                         members without an owner alongside, no returning
                         from non-owning classes, no capture by scheduled
                         callables.
  handler-serde-safety   Every throwing ByteReader read reachable from a
                         network-facing handler must be dominated by a
                         SerdeError catch; wire-derived reserve/resize
                         arguments must pass a bound check first.
  hot-path-alloc         Functions transitively reachable from the
                         per-event/per-message entry points must not heap
                         allocate.
  unordered-iter         Range-for over a container whose *canonical* type
                         is unordered — catches auto&, typedefs and
                         structured bindings the regex rule could not see.
"""

from __future__ import annotations

import re

# Network-facing handler entry points (suffix-matched against qualified
# names, so fixture namespaces wrapping the same shapes also match). The
# repo convention routes every transport-registered lambda straight into a
# named on_* method; that convention is what makes this list sufficient,
# and it is documented in ARCHITECTURE.md "Correctness tooling".
SERDE_ENTRY_PATTERNS = [
    r"::on_message$",
    r"::on_direct$",
    r"::on_group_message$",
    r"::on_frame$",
    r"::on_deliver$",
    r"::on_stream_message$",
    r"::on_share_message$",
    r"::on_walk$",
    r"::on_removal_notice$",
    r"::on_smr_decide$",
]

# Per-event / per-message hot-path entry points: simulator event dispatch,
# simulated delivery, gossip relay and send coalescing.
HOT_ENTRY_PATTERNS = [
    r"sim::Simulator::step$",
    r"net::SimNetwork::send$",
    r"SendCoalescer::enqueue$",
    r"SendCoalescer::flush$",
    r"::relay_gossip$",
]

RULE_PAYLOAD_ESCAPE = "payload-escape"
RULE_HANDLER_SERDE = "handler-serde-safety"
RULE_HOT_PATH_ALLOC = "hot-path-alloc"
RULE_UNORDERED_ITER = "unordered-iter"

ALL_RULES = (
    RULE_PAYLOAD_ESCAPE,
    RULE_HANDLER_SERDE,
    RULE_HOT_PATH_ALLOC,
    RULE_UNORDERED_ITER,
)

RULE_HINTS = {
    RULE_PAYLOAD_ESCAPE: "store the owning Payload (or a slice) alongside the view, "
    "or materialize with to_bytes()",
    RULE_HANDLER_SERDE: "wrap the decode in try { ... } catch (const SerdeError&), or "
    "bound-check the wire-derived size before reserve/resize",
    RULE_HOT_PATH_ALLOC: "hoist the allocation out of the per-event path (reuse a "
    "buffer, use EventFn/Payload slices, or batch the work)",
    RULE_UNORDERED_ITER: "iterate a sorted copy, or annotate why the fold is "
    "order-independent",
}


class Finding:
    __slots__ = ("rule", "file", "line", "col", "message", "hint")

    def __init__(self, rule, file, line, col, message):
        self.rule = rule
        self.file = file
        self.line = line
        self.col = col
        self.message = message
        self.hint = RULE_HINTS[rule]

    def render(self):
        return "%s:%d:%d: [%s] %s\n    hint: %s" % (
            self.file,
            self.line,
            self.col,
            self.rule,
            self.message,
            self.hint,
        )

    def key(self):
        return (self.file, self.line, self.rule, self.message)


def _match_entries(model, patterns):
    regexes = [re.compile(p) for p in patterns]
    return [
        usr
        for usr, node in model.functions.items()
        if any(r.search(node.qualname) for r in regexes)
    ]


def _resolve_callee(model, call):
    """Maps a call site to a FunctionNode usr, if the target is in-repo.

    Unresolved calls (virtual dispatch through an interface, std::function
    invocation, dependent templates) fall back to a unique-simple-name
    match; ambiguity or a miss means the graph legitimately breaks there.
    """
    if call.usr is not None and call.usr in model.functions:
        return call.usr
    candidates = model.name_index.get(call.name, ())
    if len(candidates) == 1:
        return candidates[0]
    return None


def check_payload_escape(model):
    return [
        Finding(RULE_PAYLOAD_ESCAPE, f.file, f.line, f.col, f.desc)
        for f in model.escapes
    ]


def check_handler_serde(model):
    findings = []
    # Guard-state BFS: reach(usr, guarded). Reaching a function through at
    # least one unguarded path makes its own unguarded decode uses findings.
    seen = set()
    frontier = [(usr, False) for usr in _match_entries(model, SERDE_ENTRY_PATTERNS)]
    reached_unguarded = set()
    while frontier:
        usr, guarded = frontier.pop()
        if (usr, guarded) in seen:
            continue
        seen.add((usr, guarded))
        if not guarded:
            reached_unguarded.add(usr)
        node = model.functions[usr]
        for call in node.calls:
            callee = _resolve_callee(model, call)
            if callee is None:
                continue
            frontier.append((callee, guarded or call.guarded))

    for usr in sorted(reached_unguarded):
        node = model.functions[usr]
        for use in node.decode_uses:
            if not use.guarded:
                findings.append(
                    Finding(
                        RULE_HANDLER_SERDE,
                        use.file,
                        use.line,
                        use.col,
                        "%s reachable from a network handler without a dominating "
                        "SerdeError catch (in %s)" % (use.desc, node.qualname),
                    )
                )

    # Unchecked wire-derived reserve/resize: flagged wherever it occurs — a
    # reserve(2^60) throws std::length_error/bad_alloc, which no SerdeError
    # catch saves, so reachability does not gate this half of the rule.
    for fact in model.reserve_flags:
        findings.append(
            Finding(RULE_HANDLER_SERDE, fact.file, fact.line, fact.col, fact.desc)
        )
    return findings


def check_hot_path_alloc(model):
    findings = []
    seen = set()
    frontier = list(_match_entries(model, HOT_ENTRY_PATTERNS))
    while frontier:
        usr = frontier.pop()
        if usr in seen:
            continue
        seen.add(usr)
        node = model.functions[usr]
        for call in node.calls:
            callee = _resolve_callee(model, call)
            if callee is not None:
                frontier.append(callee)
    for usr in sorted(seen):
        node = model.functions[usr]
        for alloc in node.allocs:
            findings.append(
                Finding(
                    RULE_HOT_PATH_ALLOC,
                    alloc.file,
                    alloc.line,
                    alloc.col,
                    "%s on the per-event hot path (reachable in %s)"
                    % (alloc.desc, node.qualname),
                )
            )
    return findings


def check_unordered_iter(model):
    return [
        Finding(
            RULE_UNORDERED_ITER,
            f.file,
            f.line,
            f.col,
            "range-for over unordered container (canonical type: %s); iteration "
            "order feeds downstream state" % _short_type(f.desc),
        )
        for f in model.range_iters
    ]


def _short_type(spelling, limit=80):
    return spelling if len(spelling) <= limit else spelling[: limit - 3] + "..."


RULE_CHECKERS = {
    RULE_PAYLOAD_ESCAPE: check_payload_escape,
    RULE_HANDLER_SERDE: check_handler_serde,
    RULE_HOT_PATH_ALLOC: check_hot_path_alloc,
    RULE_UNORDERED_ITER: check_unordered_iter,
}


def run_rules(model, suppressions, rules=ALL_RULES):
    """Runs the requested rules; returns (findings, suppressed_count)."""
    findings = []
    suppressed = 0
    for rule in rules:
        for finding in RULE_CHECKERS[rule](model):
            if suppressions.allows(finding.file, finding.line, finding.rule):
                suppressed += 1
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.file, f.line, f.col, f.rule))
    # Dedup (headers seen in many TUs produce identical facts only once via
    # the model, but two rules can in principle hit one line).
    unique = []
    seen_keys = set()
    for f in findings:
        if f.key() in seen_keys:
            continue
        seen_keys.add(f.key())
        unique.append(f)
    return unique, suppressed
