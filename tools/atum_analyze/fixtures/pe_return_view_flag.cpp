// payload-escape: returning a Payload-derived pointer from a class that
// does not own the backing frame hands the caller a view with no lifetime.
#include "atum_mini.h"

namespace fx_pe_return_view {

struct Peeker {
  const std::uint8_t* grab(const atum::net::Payload& p) {
    return p.data();  // expect: payload-escape
  }
};

}  // namespace fx_pe_return_view
