// handler-serde-safety: a network-facing handler decodes wire bytes with
// no SerdeError catch anywhere above the read.
#include "atum_mini.h"

namespace fx_hs_unguarded {

struct Handler {
  std::uint64_t last = 0;
  void on_message(const atum::net::Message& msg) {
    atum::ByteReader r(msg.payload.data(), msg.payload.size());
    last = r.u64();  // expect: handler-serde-safety
  }
};

}  // namespace fx_hs_unguarded
