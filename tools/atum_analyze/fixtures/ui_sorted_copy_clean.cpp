// unordered-iter (clean): materializing an unordered container into a
// sorted vector before iterating — the regex rule false-positived on this
// exact shape because "unordered" appears on the source line.
#include "atum_mini.h"

#include <algorithm>

namespace fx_ui_sorted_copy {

std::vector<std::uint64_t> ordered_ids(const std::unordered_set<std::uint64_t>& live) {
  std::vector<std::uint64_t> ids(live.begin(), live.end());
  std::sort(ids.begin(), ids.end());
  std::uint64_t prev = 0;
  for (std::uint64_t id : ids) {
    prev = id;
  }
  (void)prev;
  return ids;
}

}  // namespace fx_ui_sorted_copy
