// unordered-iter (clean): std::map iterates in key order — deterministic
// by construction.
#include "atum_mini.h"

namespace fx_ui_ordered {

std::uint64_t first_key(const std::map<std::uint64_t, std::uint64_t>& m) {
  for (const auto& kv : m) {
    return kv.first;
  }
  return 0;
}

}  // namespace fx_ui_ordered
