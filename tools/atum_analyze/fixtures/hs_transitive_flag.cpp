// handler-serde-safety: the unguarded decode hides one call level below
// the handler — the call graph, not the handler body, decides reachability.
#include "atum_mini.h"

namespace fx_hs_transitive {

std::uint64_t fx11_parse_header(const atum::net::Message& msg) {
  atum::ByteReader r(msg.payload.data(), msg.payload.size());
  return r.u64();  // expect: handler-serde-safety
}

struct Handler {
  std::uint64_t last = 0;
  void on_message(const atum::net::Message& msg) { last = fx11_parse_header(msg); }
};

}  // namespace fx_hs_transitive
