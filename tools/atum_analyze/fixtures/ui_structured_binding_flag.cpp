// unordered-iter: structured bindings through an auto& alias — two layers
// of sugar the token rule could not see through.
#include "atum_mini.h"

namespace fx_ui_binding {

class Tracker {
 public:
  std::uint64_t tally() {
    auto& ref = seen_;
    std::uint64_t acc = 0;
    for (const auto& [id, count] : ref) {  // expect: unordered-iter
      acc += id * count;
    }
    return acc;
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> seen_;
};

}  // namespace fx_ui_binding
