// payload-escape: storing a Payload-derived raw pointer into a member of a
// class with no owning Payload/Bytes field dangles once the frame drops.
#include "atum_mini.h"

namespace fx_pe_member_store {

class Indexer {
 public:
  void set(const atum::net::Payload& p) {
    head_ = p.data();  // expect: payload-escape
  }

 private:
  const std::uint8_t* head_ = nullptr;
};

}  // namespace fx_pe_member_store
