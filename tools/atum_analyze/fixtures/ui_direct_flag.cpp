// unordered-iter: range-for straight over an unordered container —
// iteration order is hash-seed dependent and must not feed reports.
#include "atum_mini.h"

namespace fx_ui_direct {

std::uint64_t sum_ids(const std::unordered_map<std::uint64_t, std::uint64_t>& m) {
  std::uint64_t acc = 0;
  for (const auto& kv : m) {  // expect: unordered-iter
    acc ^= kv.first * 31 + kv.second;
  }
  return acc;
}

}  // namespace fx_ui_direct
