// payload-escape: constructor member-initializer stores a Payload-derived
// pointer with no owner alongside (the PR 3 dangling-ByteReader shape).
#include "atum_mini.h"

namespace fx_pe_ctor_store {

struct View {
  explicit View(const atum::net::Payload& pl) : p_(pl.data()) {}  // expect: payload-escape
  const std::uint8_t* p_;
};

}  // namespace fx_pe_ctor_store
