// hot-path-alloc (clean): allocation in cold control-plane code — nothing
// on the per-event graph reaches it, so it is sanctioned.
#include "atum_mini.h"

namespace fx_hp_unreachable {

std::uint64_t* fx25_bootstrap_table() {
  return new std::uint64_t[1024];
}

}  // namespace fx_hp_unreachable
