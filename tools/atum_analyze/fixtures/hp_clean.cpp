// hot-path-alloc (clean): per-event work over preallocated state — swaps,
// arithmetic, and in-place updates allocate nothing.
#include "atum_mini.h"

namespace fx_hp_clean {
namespace sim {

class Simulator {
 public:
  bool step() {
    if (cursor_ >= ring_.size()) cursor_ = 0;
    ring_[cursor_] += 1;
    ++cursor_;
    return true;
  }

 private:
  std::vector<std::uint64_t> ring_ = std::vector<std::uint64_t>(16, 0);
  std::size_t cursor_ = 0;
};

}  // namespace sim
}  // namespace fx_hp_clean
