// handler-serde-safety (clean): the helper's reads are unguarded locally,
// but every path into it goes through the handler's SerdeError catch, so
// the throw is contained.
#include "atum_mini.h"

namespace fx_hs_transitive_guarded {

std::uint64_t fx12_parse_header(const atum::net::Message& msg) {
  atum::ByteReader r(msg.payload.data(), msg.payload.size());
  return r.u64();
}

struct Handler {
  std::uint64_t last = 0;
  void on_message(const atum::net::Message& msg) {
    try {
      last = fx12_parse_header(msg);
    } catch (const atum::SerdeError&) {
    }
  }
};

}  // namespace fx_hs_transitive_guarded
