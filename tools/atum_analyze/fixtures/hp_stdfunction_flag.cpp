// hot-path-alloc: std::function construction on the per-event path — its
// small-object buffer spills the delivery closure onto the heap (the exact
// regression EventFn exists to prevent).
#include "atum_mini.h"

namespace fx_hp_stdfunction {
namespace sim {

class Simulator {
 public:
  bool step() {
    std::function<void()> cb = [] {};  // expect: hot-path-alloc
    cb();
    return true;
  }
};

}  // namespace sim
}  // namespace fx_hp_stdfunction
