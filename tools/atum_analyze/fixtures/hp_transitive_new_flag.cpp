// hot-path-alloc: the allocation hides one call below the entry point —
// the rule walks the real call graph, not the entry body.
#include "atum_mini.h"

namespace fx_hp_transitive {

std::uint64_t fx21_mix(std::uint64_t v) {
  auto* tmp = new std::uint64_t(v * 2654435761u);  // expect: hot-path-alloc
  std::uint64_t out = *tmp;
  delete tmp;
  return out;
}

namespace net {

class SimNetwork {
 public:
  std::uint64_t send(std::uint64_t seed) { return fx21_mix(seed); }
};

}  // namespace net
}  // namespace fx_hp_transitive
