// hot-path-alloc: make_unique is still a heap allocation, however tidy the
// ownership — the coalescer flush runs once per outgoing envelope.
#include "atum_mini.h"

namespace fx_hp_make_unique {

class SendCoalescer {
 public:
  void flush() {
    auto scratch = std::make_unique<std::uint64_t>(1);  // expect: hot-path-alloc
    sent_ += *scratch;
  }

 private:
  std::uint64_t sent_ = 0;
};

}  // namespace fx_hp_make_unique
