// payload-escape (suppressed): the annotation documents why the frame
// outlives the stored view at this site.
#include "atum_mini.h"

namespace fx_pe_suppressed {

class Indexer {
 public:
  void set(const atum::net::Payload& p) {
    // lint: payload-escape-ok(caller pins the frame for the whole epoch; indexer is rebuilt on swap)
    head_ = p.data();
  }

 private:
  const std::uint8_t* head_ = nullptr;
};

}  // namespace fx_pe_suppressed
