// payload-escape (clean): the view member is stored alongside the owning
// Payload, so the frame outlives the pointer.
#include "atum_mini.h"

namespace fx_pe_member_owner {

class Cache {
 public:
  void set(const atum::net::Payload& p) {
    owner_ = p;
    head_ = p.data();
  }

 private:
  atum::net::Payload owner_;
  const std::uint8_t* head_ = nullptr;
};

}  // namespace fx_pe_member_owner
