// payload-escape: a scheduled callable captures a Payload-derived pointer;
// the frame may be released before the event fires.
#include "atum_mini.h"

namespace fx_pe_capture_sched {

void later(atum::sim::Simulator& sim, const atum::net::Payload& p) {
  const std::uint8_t* head = p.data();
  sim.schedule_after(10, [head] { (void)head; });  // expect: payload-escape
}

}  // namespace fx_pe_capture_sched
