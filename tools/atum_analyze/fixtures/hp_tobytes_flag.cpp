// hot-path-alloc: Payload::to_bytes() deep-copies the whole frame; on the
// delivery path that re-introduces the copy Payload slicing exists to avoid.
#include "atum_mini.h"

namespace fx_hp_tobytes {
namespace net {

class SimNetwork {
 public:
  std::size_t send(const atum::net::Payload& p) {
    atum::Bytes copy = p.to_bytes();  // expect: hot-path-alloc
    return copy.size();
  }
};

}  // namespace net
}  // namespace fx_hp_tobytes
