// hot-path-alloc: naked `new` directly inside the simulator's per-event
// dispatch entry point.
#include "atum_mini.h"

namespace fx_hp_new {
namespace sim {

class Simulator {
 public:
  bool step() {
    auto* scratch = new std::uint64_t(7);  // expect: hot-path-alloc
    bool odd = (*scratch & 1) != 0;
    delete scratch;
    return odd;
  }
};

}  // namespace sim
}  // namespace fx_hp_new
