// payload-escape (clean): the callable captures the Payload itself (a
// refcounted frame share), not a raw view into it.
#include "atum_mini.h"

namespace fx_pe_capture_owner {

void later(atum::sim::Simulator& sim, const atum::net::Payload& p) {
  sim.schedule_after(10, [p] { (void)p.size(); });
}

}  // namespace fx_pe_capture_owner
