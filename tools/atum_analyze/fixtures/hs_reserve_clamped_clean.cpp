// handler-serde-safety (clean): clamping the wire-derived size in place is
// an acceptable bound — the attacker controls the request, not the cost.
#include "atum_mini.h"

#include <algorithm>

namespace fx_hs_reserve_clamped {

struct Handler {
  std::vector<std::uint64_t> ops;
  void on_message(const atum::net::Message& msg) {
    try {
      atum::ByteReader r(msg.payload.data(), msg.payload.size());
      std::uint64_t count = r.varint();
      ops.reserve(std::min<std::uint64_t>(count, 1024));
      for (std::uint64_t i = 0; i < count && i < 1024; ++i) ops.push_back(r.u64());
    } catch (const atum::SerdeError&) {
    }
  }
};

}  // namespace fx_hs_reserve_clamped
