// handler-serde-safety: reserve() sized straight from a wire-derived count.
// A SerdeError catch does not save this — reserve(2^60) throws
// std::length_error/bad_alloc (the PR 6 Byzantine parsing bug class).
#include "atum_mini.h"

namespace fx_hs_reserve_unchecked {

struct Handler {
  std::vector<std::uint64_t> ops;
  void on_message(const atum::net::Message& msg) {
    try {
      atum::ByteReader r(msg.payload.data(), msg.payload.size());
      std::uint64_t count = r.varint();
      ops.reserve(count);  // expect: handler-serde-safety
      for (std::uint64_t i = 0; i < count; ++i) ops.push_back(r.u64());
    } catch (const atum::SerdeError&) {
    }
  }
};

}  // namespace fx_hs_reserve_unchecked
