// payload-escape (clean): accessor of an owning class — the Payload member
// keeps the frame alive for as long as the object exists.
#include "atum_mini.h"

namespace fx_pe_return_owner {

class Holder {
 public:
  const std::uint8_t* head() const { return pl_.data(); }

 private:
  atum::net::Payload pl_;
};

}  // namespace fx_pe_return_owner
