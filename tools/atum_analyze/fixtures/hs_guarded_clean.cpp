// handler-serde-safety (clean): the decode is dominated by a SerdeError
// catch — malformed bytes mark the sender faulty instead of unwinding.
#include "atum_mini.h"

namespace fx_hs_guarded {

struct Handler {
  std::uint64_t last = 0;
  void on_message(const atum::net::Message& msg) {
    try {
      atum::ByteReader r(msg.payload.data(), msg.payload.size());
      last = r.u64();
      r.expect_done();
    } catch (const atum::SerdeError&) {
    }
  }
};

}  // namespace fx_hs_guarded
