// Miniature Atum API surface for the atum_analyze fixture corpus.
//
// Mirrors the canonical shapes the analyzer keys on — atum::net::Payload's
// zero-copy frame sharing, ByteReader's throwing reads, SerdeError, the
// simulator's schedule_* entry points — without pulling in the real tree,
// so each fixture is a one-file translation unit that parses in
// milliseconds. Class and method names must stay aligned with src/: the
// rules match on them (Payload::data(), ByteReader::u64(), ...).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace atum {

using Bytes = std::vector<std::uint8_t>;
using NodeId = std::uint64_t;

struct SerdeError : std::runtime_error {
  explicit SerdeError(const char* what) : std::runtime_error(what) {}
};

class ByteReader {
 public:
  explicit ByteReader(const Bytes& b) : p_(b.data()), end_(b.data() + b.size()) {}
  ByteReader(const std::uint8_t* p, std::size_t n) : p_(p), end_(p + n) {}

  std::uint8_t u8() {
    need(1);
    return *p_++;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | *p_++;
    return v;
  }
  std::uint64_t varint() { return u64(); }
  std::string_view bytes_view() {
    std::size_t n = static_cast<std::size_t>(u64());
    need(n);
    const char* s = reinterpret_cast<const char*>(p_);
    p_ += n;
    return {s, n};
  }
  void raw(std::uint8_t* out, std::size_t n) {
    need(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = *p_++;
  }
  void expect_done() const {
    if (p_ != end_) throw SerdeError("trailing bytes");
  }
  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) throw SerdeError("truncated");
  }
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u64(std::uint64_t v) {
    for (int i = 7; i >= 0; --i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  Bytes take() { return std::move(buf_); }
  const Bytes& data() const { return buf_; }

 private:
  Bytes buf_;
};

namespace net {

class Payload {
 public:
  Payload() = default;
  // lint: hot-path-alloc-ok(frame control block: one refcounted allocation per adopted buffer)
  Payload(Bytes b) : frame_(std::make_shared<Bytes>(std::move(b))) {}

  const std::uint8_t* data() const { return frame_ ? frame_->data() : nullptr; }
  const std::uint8_t* begin() const { return data(); }
  const std::uint8_t* end() const { return data() + size(); }
  std::size_t size() const { return frame_ ? frame_->size() : 0; }
  Payload slice(std::span<const std::uint8_t>) const { return *this; }
  Bytes to_bytes() const { return frame_ ? *frame_ : Bytes{}; }

 private:
  std::shared_ptr<Bytes> frame_;
};

struct Message {
  NodeId from = 0;
  std::uint16_t type = 0;
  Payload payload;
};

}  // namespace net

namespace sim {

using TimeMicros = std::int64_t;

class Simulator {
 public:
  template <typename F>
  std::uint64_t schedule_at(TimeMicros, F&&) {
    return 0;
  }
  template <typename F>
  std::uint64_t schedule_after(TimeMicros, F&&) {
    return 0;
  }
};

}  // namespace sim
}  // namespace atum
