// handler-serde-safety (clean): an unguarded decode in a function no
// network handler reaches — local tooling parsing trusted bytes is out of
// the rule's blast radius.
#include "atum_mini.h"

namespace fx_hs_unreachable {

std::uint64_t fx17_parse_trusted(const atum::Bytes& wire) {
  atum::ByteReader r(wire);
  return r.u64();
}

}  // namespace fx_hs_unreachable
