// unordered-iter (suppressed): an order-independent fold — the annotation
// carries the proof obligation.
#include "atum_mini.h"

namespace fx_ui_suppressed {

std::uint64_t count_live(const std::unordered_set<std::uint64_t>& live) {
  std::uint64_t n = 0;
  // lint: unordered-iter-ok(pure count; commutative over any visit order)
  for (std::uint64_t id : live) {
    n += (id != 0) ? 1 : 0;
  }
  return n;
}

}  // namespace fx_ui_suppressed
