// unordered-iter: a typedef hides the container from regex altitude; the
// canonical type still says unordered_map.
#include "atum_mini.h"

namespace fx_ui_typedef {

using PeerIndex = std::unordered_map<std::uint64_t, std::uint64_t>;

std::uint64_t fold(const PeerIndex& idx) {
  std::uint64_t acc = 0;
  for (const auto& kv : idx) {  // expect: unordered-iter
    acc += kv.second;
  }
  return acc;
}

}  // namespace fx_ui_typedef
