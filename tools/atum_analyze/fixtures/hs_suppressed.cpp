// handler-serde-safety (suppressed): a fixed-width prologue read gated by
// an explicit size check cannot throw; the annotation records that proof.
#include "atum_mini.h"

namespace fx_hs_suppressed {

struct Handler {
  std::uint64_t last = 0;
  void on_message(const atum::net::Message& msg) {
    if (msg.payload.size() < 8) return;
    atum::ByteReader r(msg.payload.data(), msg.payload.size());
    // lint: handler-serde-safety-ok(reads exactly 8 bytes gated by the size() < 8 early return)
    last = r.u64();
  }
};

}  // namespace fx_hs_suppressed
