// hot-path-alloc (suppressed): an amortized arena-growth allocation — the
// annotation documents why it does not count as per-event.
#include "atum_mini.h"

namespace fx_hp_suppressed {
namespace sim {

class Simulator {
 public:
  bool step() {
    if (arena_ == nullptr) {
      // lint: hot-path-alloc-ok(one-time arena bootstrap; every later event reuses the block)
      arena_ = new std::uint64_t[64];
    }
    arena_[0] += 1;
    return true;
  }

 private:
  std::uint64_t* arena_ = nullptr;
};

}  // namespace sim
}  // namespace fx_hp_suppressed
