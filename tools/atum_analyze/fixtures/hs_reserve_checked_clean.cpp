// handler-serde-safety (clean): the wire-derived count is bound-checked
// against what the buffer could possibly hold before sizing anything.
#include "atum_mini.h"

namespace fx_hs_reserve_checked {

struct Handler {
  std::vector<std::uint64_t> ops;
  void on_message(const atum::net::Message& msg) {
    try {
      atum::ByteReader r(msg.payload.data(), msg.payload.size());
      std::uint64_t count = r.varint();
      if (count > r.remaining()) throw atum::SerdeError("count exceeds buffer");
      ops.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) ops.push_back(r.u64());
    } catch (const atum::SerdeError&) {
    }
  }
};

}  // namespace fx_hs_reserve_checked
