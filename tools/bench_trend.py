#!/usr/bin/env python3
"""Benchmark trend gate: run a bench binary, compare against a committed
baseline, fail on regression.

The benches this tool drives report SIMULATED-time metrics: the discrete-
event simulator's cost model (per-message CPU, header overhead, bandwidth
serialization) is machine-independent, so the same binary at the same seed
produces the same numbers on every host. That is what makes a committed
baseline meaningful — a diff is a code-behavior change, never host noise.

Usage:
  # gate: run the bench and diff against the committed baseline
  tools/bench_trend.py --binary build/bench_smr_throughput \
      --baseline BENCH_smr_throughput.json

  # refresh the baseline after an intentional perf change
  tools/bench_trend.py --binary build/bench_smr_throughput \
      --baseline BENCH_smr_throughput.json --update

Bench JSON contract (stdout of the binary):
  {"bench": "<name>", "metrics": [
      {"name": "...", "value": <number>, "higher_is_better": true}, ...]}

Exit codes: 0 ok, 1 regression/missing metric/bench failure, 2 usage.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys


def load_metrics(doc: dict) -> dict[str, dict]:
    out = {}
    for m in doc.get("metrics", []):
        out[m["name"]] = m
    return out


def run_bench(binary: str, args: list[str]) -> dict:
    proc = subprocess.run(
        [binary] + args, stdout=subprocess.PIPE, stderr=sys.stderr, check=False
    )
    if proc.returncode != 0:
        print(f"bench_trend: {binary} exited {proc.returncode}", file=sys.stderr)
        sys.exit(1)
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        print(f"bench_trend: {binary} stdout is not JSON: {e}", file=sys.stderr)
        sys.exit(1)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--binary", required=True, help="bench executable to run")
    ap.add_argument(
        "--args", nargs="*", default=[], help="extra arguments for the bench binary"
    )
    ap.add_argument(
        "--baseline", required=True, help="committed baseline JSON to diff against"
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="max tolerated relative regression per metric (default 0.20)",
    )
    ap.add_argument(
        "--update",
        action="store_true",
        help="write the fresh run to the baseline file instead of diffing",
    )
    opts = ap.parse_args()

    fresh_doc = run_bench(opts.binary, opts.args)
    fresh = load_metrics(fresh_doc)
    if not fresh:
        print("bench_trend: bench reported no metrics", file=sys.stderr)
        return 1

    if opts.update:
        with open(opts.baseline, "w") as f:
            json.dump(fresh_doc, f, indent=2)
            f.write("\n")
        print(f"bench_trend: baseline {opts.baseline} updated ({len(fresh)} metrics)")
        return 0

    try:
        with open(opts.baseline) as f:
            base = load_metrics(json.load(f))
    except FileNotFoundError:
        print(
            f"bench_trend: baseline {opts.baseline} missing — run with --update "
            "to create it",
            file=sys.stderr,
        )
        return 1

    failures = []
    for name, bm in sorted(base.items()):
        fm = fresh.get(name)
        if fm is None:
            failures.append(f"{name}: metric missing from fresh run")
            continue
        base_v, fresh_v = float(bm["value"]), float(fm["value"])
        higher = bool(bm.get("higher_is_better", True))
        if base_v == 0.0:
            delta = 0.0 if fresh_v == 0.0 else float("inf")
        else:
            delta = (fresh_v - base_v) / abs(base_v)
        # Regression = movement against the metric's good direction.
        regression = -delta if higher else delta
        if delta == 0.0:
            arrow = "unchanged"
        elif regression < 0:
            arrow = "improved"
        else:
            arrow = "regressed"
        line = (
            f"{name}: {base_v:.4f} -> {fresh_v:.4f} "
            f"({abs(delta) * 100.0:.1f}% {arrow})"
        )
        print(line)
        if regression > opts.threshold:
            failures.append(line)

    for name in sorted(set(fresh) - set(base)):
        print(f"{name}: new metric (not in baseline) — refresh with --update")

    if failures:
        print(
            f"\nbench_trend: {len(failures)} metric(s) regressed past "
            f"{opts.threshold * 100.0:.0f}%:",
            file=sys.stderr,
        )
        for f_line in failures:
            print(f"  {f_line}", file=sys.stderr)
        return 1
    print(f"\nbench_trend: all {len(base)} baseline metrics within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
