// Node-level soak at 100k nodes: the 10x scale-up of bench_soak_atum_10k
// that the per-frame digest cache and the zero-copy PBFT/AShare tails were
// built to enable. It runs the REAL per-node runtime (AtumSystem/AtumNode)
// — SMR engines, heartbeat timers, group messages, gossip relays — one
// order of magnitude above the 10k soak and four above the unit tests.
// Phases:
//
//   deploy — instant deployment of N nodes into vgroups + H-graph;
//   beat   — two heartbeat periods across the whole population
//            (every node pings its vgroup peers; nobody may be evicted);
//   bcast  — broadcasts that must reach every node through SMR + gossip,
//            sharing frozen payload buffers AND cached per-frame digests
//            along the way;
//   churn  — node-level joins (full §3.3.2 protocol: contact, vgroup
//            agreement, placement walk, SMR reconfig, state sync) and
//            leaves.
//
// The bench FAILS (non-zero exit) if protocol guarantees or the memory /
// hashing bounds don't hold: every broadcast delivered everywhere, no
// spurious evictions, joins/leaves complete, simulator arena bounded by
// peak concurrency, network flow table bounded by active nodes, and — the
// PR 3 invariant — SHA-256 computations stay far below message count
// (without the per-frame digest memo every delivered full frame would be
// hashed again at every receiver).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/atum.h"
#include "core/params.h"
#include "crypto/sha256.h"
#include "net/network.h"

using namespace atum;
using core::AtumSystem;

namespace {

bool check(bool ok, const char* what) {
  if (!ok) std::printf("FAIL: %s\n", what);
  return ok;
}

std::size_t joined_count(AtumSystem& sys) {
  std::size_t n = 0;
  for (NodeId id : sys.node_ids()) {
    if (sys.node(id).joined()) ++n;
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  // Scaled-down runs for smoke testing (CI runs 20k): bench_soak_atum_100k [nodes].
  std::size_t target_nodes = 100'000;
  if (argc > 1) {
    char* end = nullptr;
    target_nodes = static_cast<std::size_t>(std::strtoull(argv[1], &end, 10));
    if (end == argv[1] || *end != '\0' || target_nodes < 200) {
      std::fprintf(stderr, "usage: %s [nodes >= 200]\n", argv[0]);
      return 2;
    }
  }
  bool ok = true;

  core::Params p;
  p.hc = 3;
  p.rwl = 6;
  p.gmax = 14;
  p.gmin = 7;
  p.engine = smr::EngineKind::kAsync;  // PBFT: quiescent between requests
  p.heartbeat_period = seconds(5.0);
  p.verify_signatures = false;  // soak the protocol paths, not HMAC
  AtumSystem sys(p, net::NetworkConfig::datacenter(), /*seed=*/0x100a);

  // ---------------------------------------------------------------- deploy
  std::vector<NodeId> ids;
  ids.reserve(target_nodes);
  for (NodeId i = 0; i < target_nodes; ++i) ids.push_back(i);
  std::uint64_t delivered_total = 0;
  sys.deploy(ids);
  for (NodeId i : ids) {
    sys.node(i).set_deliver(
        [&delivered_total](NodeId, const net::Payload&) { ++delivered_total; });
    // Relay along one cycle only: the deterministic ring plus one extra
    // direction keeps the soak about path coverage, not flood volume.
    sys.node(i).set_forward(overlay::forward_cycles({0}));
  }
  std::map<GroupId, std::vector<NodeId>> groups = sys.group_map();
  std::size_t covered = 0;
  for (const auto& [g, members] : groups) covered += members.size();
  std::printf("deploy: %zu nodes in %zu vgroups\n", covered, groups.size());
  ok &= check(covered == target_nodes, "deploy covered every node");

  // ------------------------------------------------------------------ beat
  sys.simulator().run_until(sys.simulator().now() + 2 * p.heartbeat_period);
  std::printf("beat:   2 heartbeat periods, %llu events, %llu msgs, flow table %zu\n",
              static_cast<unsigned long long>(sys.simulator().executed_events()),
              static_cast<unsigned long long>(sys.network().stats().messages_sent),
              sys.network().flow_count());
  ok &= check(joined_count(sys) == target_nodes, "beat: no spurious evictions");
  ok &= check(sys.network().flow_count() <= target_nodes + 1024,
              "beat: flow table bounded by active nodes");

  // ----------------------------------------------------------------- bcast
  constexpr std::size_t kBroadcasts = 3;
  const Bytes frame(128, 0x5a);
  const std::uint64_t msgs_before = sys.network().stats().messages_sent;
  const std::uint64_t hashes_before = crypto::sha256_digest_count();
  for (std::size_t b = 0; b < kBroadcasts; ++b) {
    NodeId origin = static_cast<NodeId>((b * 997) % target_nodes);
    sys.node(origin).broadcast(frame);
    sys.simulator().run_until(sys.simulator().now() + seconds(60.0));
  }
  const std::uint64_t bcast_msgs = sys.network().stats().messages_sent - msgs_before;
  const std::uint64_t bcast_hashes = crypto::sha256_digest_count() - hashes_before;
  std::printf("bcast:  %zu broadcasts, %llu deliveries (want %zu), %llu msgs, "
              "%llu sha256 (%.3f per msg), sim %.1fs\n",
              kBroadcasts, static_cast<unsigned long long>(delivered_total),
              kBroadcasts * target_nodes, static_cast<unsigned long long>(bcast_msgs),
              static_cast<unsigned long long>(bcast_hashes),
              static_cast<double>(bcast_hashes) / static_cast<double>(bcast_msgs),
              to_seconds(sys.simulator().now()));
  ok &= check(delivered_total == kBroadcasts * target_nodes,
              "bcast: every broadcast delivered at every node exactly once");
  // Per-frame digest caching: hashes must track FRAMES (one per relay
  // fan-out), not messages. Without the memo every full-frame delivery
  // would hash at the receiver and this ratio would sit near 1.
  ok &= check(bcast_hashes * 2 < bcast_msgs,
              "bcast: SHA-256 count stays below half the message count "
              "(per-frame digest cache active)");

  // ----------------------------------------------------------------- churn
  constexpr std::size_t kJoiners = 8;
  constexpr std::size_t kLeavers = 8;
  for (std::size_t j = 0; j < kJoiners; ++j) {
    NodeId fresh = static_cast<NodeId>(target_nodes + j);
    NodeId contact = static_cast<NodeId>((j * 101) % target_nodes);
    sys.add_node(fresh).join(contact);
    sys.simulator().run_until(sys.simulator().now() + seconds(45.0));
    if (!sys.node(fresh).joined()) {
      std::printf("join %zu via contact %llu did not complete\n", j,
                  static_cast<unsigned long long>(contact));
      ok = false;
    }
  }
  std::size_t before_leave = joined_count(sys);
  for (std::size_t l = 0; l < kLeavers; ++l) {
    sys.node(static_cast<NodeId>((l * 211 + 5) % target_nodes)).leave();
    sys.simulator().run_until(sys.simulator().now() + seconds(20.0));
  }
  std::size_t after_leave = joined_count(sys);
  std::printf("churn:  %zu joins, %zu leaves (joined %zu -> %zu), sim %.1fs\n", kJoiners,
              kLeavers, before_leave, after_leave, to_seconds(sys.simulator().now()));
  ok &= check(before_leave == target_nodes + kJoiners, "churn: all joins landed");
  ok &= check(after_leave == before_leave - kLeavers, "churn: all leaves completed");

  // ---------------------------------------------------------------- memory
  std::printf("memory: arena %zu slots, heap %zu entries, %llu events executed, "
              "flow table %zu\n",
              sys.simulator().slot_count(), sys.simulator().heap_size(),
              static_cast<unsigned long long>(sys.simulator().executed_events()),
              sys.network().flow_count());
  ok &= check(sys.simulator().slot_count() < sys.simulator().executed_events() / 4 + 4096,
              "memory: slot arena tracks peak concurrency, not history");
  ok &= check(sys.network().flow_count() <= target_nodes + kJoiners + 1024,
              "memory: flow table bounded");

  std::printf("%s\n", ok ? "soak PASSED" : "soak FAILED");
  return ok ? 0 : 1;
}
