// Ablation (§5.1): the two random-walk identity-establishment mechanisms.
//
//  * Certificate chains — no backward phase and no per-walk state at the
//    relaying vgroups, but the chain grows linearly in rwl and costs
//    O(rwl * majority) signature verifications (why the Sync implementation
//    avoided them: verification endangers round deadlines).
//  * Backward phase — constant message size, but the walk takes 2x rwl
//    hops of latency and relays must keep walk state.
//
// Measured: real encoded chain sizes and real HMAC verification cost, vs
// the modelled backward-phase latency for both engines.
#include <chrono>
#include <cstdio>

#include "core/params.h"
#include "crypto/keys.h"
#include "overlay/random_walk.h"

using namespace atum;
using namespace atum::overlay;

int main() {
  std::printf("=== Walk identity establishment: certificates vs backward phase ===\n\n");
  crypto::KeyStore keys(0xAB);
  const std::size_t g = 7;              // vgroup size
  const std::size_t majority = g / 2 + 1;
  WalkId id{1, 99};

  std::printf("%-6s %-14s %-12s %-16s %-18s %-18s\n", "rwl", "chain bytes", "verifies",
              "verify time(us)", "backward sync(s)", "backward async(ms)");
  for (std::size_t rwl : {4u, 6u, 8u, 10u, 12u, 15u}) {
    CertChain chain;
    for (std::size_t hop = 0; hop < rwl; ++hop) {
      HopCert h;
      h.group = hop + 1;
      h.next_group = hop + 2;
      h.step = static_cast<std::uint32_t>(hop);
      for (std::size_t m = 0; m < majority; ++m) {
        NodeId signer = (hop + 1) * 100 + m;
        h.sigs.emplace_back(signer,
                            sign_hop(id, h.step, h.group, h.next_group, keys.key_of(signer)));
      }
      chain.hops.push_back(std::move(h));
    }
    Bytes wire = chain.encode();

    auto members_of = [&](GroupId grp) -> std::optional<std::vector<NodeId>> {
      std::vector<NodeId> ms;
      for (std::size_t m = 0; m < g; ++m) ms.push_back(grp * 100 + m);
      return ms;
    };
    auto start = std::chrono::steady_clock::now();
    const int reps = 200;
    bool ok = true;
    for (int r = 0; r < reps; ++r) {
      ok &= chain.verify(id, 1, members_of, keys).has_value();
    }
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count() /
              reps;

    // Backward phase: the reply retraces rwl hops (one round / one RTT each).
    double back_sync = 2.0 * static_cast<double>(rwl) * 1.0;   // 1 s rounds
    double back_async = 2.0 * static_cast<double>(rwl) * 5.0;  // 5 ms hops

    std::printf("%-6zu %-14zu %-12zu %-16lld %-18.0f %-18.0f %s\n", rwl, wire.size(),
                chain.verification_count(), static_cast<long long>(us), back_sync, back_async,
                ok ? "" : "(verify FAILED)");
  }
  std::printf("\n(the Async implementation uses certificates — simpler, no relay state; the"
              "\n Sync implementation uses the backward phase — verification would threaten"
              "\n its round deadlines, exactly the §5.1 trade-off)\n");
  return 0;
}
