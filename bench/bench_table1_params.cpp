// Table 1: system parameters — prints the parameter space, the defaults,
// and the recommended configurations for a range of system sizes.
#include <cstdio>

#include "core/params.h"

using namespace atum;
using namespace atum::core;

int main() {
  std::printf("=== Table 1: Atum system parameters ===\n\n");
  std::printf("%-8s %-42s %s\n", "Param", "Description", "Typical values");
  std::printf("%-8s %-42s %s\n", "hc", "Number of H-graph cycles", "2, ..., 12");
  std::printf("%-8s %-42s %s\n", "rwl", "Length of random walks", "4, ..., 15");
  std::printf("%-8s %-42s %s\n", "gmax", "Maximum vgroup size", "8, 14, 20, ...");
  std::printf("%-8s %-42s %s\n", "gmin", "Minimum vgroup size", "0.5 * gmax");
  std::printf("%-8s %-42s %s\n", "k", "Robustness parameter", "3, ..., 7");

  std::printf("\nDefaults: %s\n", to_string(Params{}).c_str());

  std::printf("\nRecommended configurations (guideline of Fig. 4 + g = k*log2 N):\n");
  std::printf("%-10s %-8s %-6s %-6s %-6s %-6s\n", "N", "engine", "hc", "rwl", "gmin", "gmax");
  for (std::size_t n : {100u, 400u, 800u, 1400u, 5000u, 20000u}) {
    for (auto kind : {smr::EngineKind::kSync, smr::EngineKind::kAsync}) {
      Params p = Params::recommended(n, kind);
      std::printf("%-10zu %-8s %-6zu %-6zu %-6zu %-6zu\n", n,
                  kind == smr::EngineKind::kSync ? "sync" : "async", p.hc, p.rwl, p.gmin,
                  p.gmax);
    }
  }
  std::printf("\ntarget vgroup size g = k*log2(N), k=4: N=1000 -> %zu, N=10000 -> %zu\n",
              target_group_size(1000), target_group_size(10000));
  return 0;
}
