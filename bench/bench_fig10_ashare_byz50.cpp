// Figure 10: impact of Byzantine nodes on AShare read latency — 50 nodes,
// 7 Byzantine (corrupting every replica they store), rho=8, files of 10
// chunks; read latency per MB as a function of the file's replica count.
//
// Paper shape: with faulty replicas, moderately-replicated files (8-9
// replicas) pay up to ~3x (corrupt chunks are re-pulled); the penalty
// shrinks as replicas approach/exceed the chunk count.
#include "bench_ashare_byz_common.h"

int main() {
  atum::ashare_bench::run_byzantine_read_bench(
      "Figure 10", /*nodes=*/50, /*byzantine=*/7, /*files_per_point=*/8,
      /*chunk_bytes=*/128 * 1024, /*seed=*/0xF16'10ULL);
  return 0;
}
