// Figure 9: AShare read performance (latency per MB, normalized to file
// size) — NFS4 baseline vs "AShare simple" (one chunk, one holder) vs
// "AShare parallel" (10 chunks pulled from multiple holders in parallel).
//
// Network model: servers are egress-constrained relative to client ingress
// (EC2 micro burst behaviour), so parallel pull from several replicas can
// double throughput — the paper's "up to 100% over NFS4 for files over
// 512MB". Shape: latency/MB falls with file size as per-transfer setup
// amortizes; parallel wins at large sizes.
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/ashare/ashare.h"

using namespace atum;
using namespace atum::ashare;

namespace {

core::Params bench_params() {
  core::Params p;
  p.hc = 3;
  p.rwl = 4;
  p.gmax = 8;
  p.gmin = 4;
  p.round_duration = millis(100);
  p.heartbeat_period = seconds(120);
  return p;
}

net::NetworkConfig bench_net() {
  auto n = net::NetworkConfig::datacenter();
  n.egress_bytes_per_sec = 6e6;    // server-side cap: 6 MB/s
  n.ingress_bytes_per_sec = 12e6;  // client ingress: 12 MB/s
  n.jitter_mean = 200;
  return n;
}

// Raw single-server read over the same network: the NFS4 stand-in.
double nfs_latency_per_mb(std::size_t mb) {
  sim::Simulator sim;
  net::SimNetwork net(sim, bench_net(), 1);
  TimeMicros done = -1;
  net.attach(2, [&](const net::Message&) { done = sim.now(); });
  net.send(net::Message{1, 2, net::MsgType::kChunkReply, Bytes(mb * 1'000'000, 0x11)});
  sim.run();
  return to_seconds(done) / static_cast<double>(mb);
}

struct ShareHarness {
  std::unique_ptr<core::AtumSystem> sys;
  std::vector<std::unique_ptr<AShareNode>> nodes;

  ShareHarness() {
    sys = std::make_unique<core::AtumSystem>(bench_params(), bench_net(), 0xF16'9ULL);
    std::vector<NodeId> ids;
    for (NodeId i = 0; i < 8; ++i) {
      ids.push_back(i);
      sys->add_node(i);
    }
    sys->deploy(ids);
    for (NodeId i = 0; i < 8; ++i) {
      nodes.push_back(std::make_unique<AShareNode>(*sys, i, 3, 8));
      nodes.back()->set_auto_replication(false);
    }
  }

  void settle(DurationMicros d) { sys->simulator().run_until(sys->simulator().now() + d); }

  double measure_get(const FileKey& key, NodeId reader, std::size_t mb) {
    GetStats stats;
    nodes[reader]->get(key, [&](Bytes, const GetStats& s) { stats = s; });
    settle(seconds(3600));
    if (!stats.ok) return -1;
    return to_seconds(stats.elapsed) / static_cast<double>(mb);
  }
};

}  // namespace

int main(int argc, char** argv) {
  // Default caps at 128 MB to keep the full bench sweep quick; pass a
  // larger cap (e.g. "bench_fig9_ashare_read 512") for the full curve.
  std::size_t cap = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 128;
  std::vector<std::size_t> sizes_mb;
  for (std::size_t s : {2u, 8u, 32u, 128u, 512u}) {
    if (s <= cap) sizes_mb.push_back(s);
  }

  std::printf("=== Figure 9: AShare read performance (latency per MB, seconds) ===\n\n");
  std::printf("%-10s %-10s %-14s %-16s\n", "size(MB)", "NFS4", "AShare simple", "AShare parallel");

  for (std::size_t mb : sizes_mb) {
    double nfs = nfs_latency_per_mb(mb);

    // AShare simple: single chunk, single remote holder (fair vs NFS4).
    ShareHarness simple;
    simple.nodes[0]->put("f.bin", Bytes(mb * 1'000'000, 0x22), 1);
    simple.settle(seconds(60));
    double s_lat = simple.measure_get(FileKey{0, "f.bin"}, 5, mb);

    // AShare parallel: 10 chunks, two extra replicas -> 3 holders.
    ShareHarness parallel;
    parallel.nodes[0]->put("f.bin", Bytes(mb * 1'000'000, 0x22), 10);
    parallel.settle(seconds(60));
    parallel.nodes[1]->force_replicate(FileKey{0, "f.bin"});
    parallel.settle(seconds(3600));
    parallel.nodes[2]->force_replicate(FileKey{0, "f.bin"});
    parallel.settle(seconds(3600));
    double p_lat = parallel.measure_get(FileKey{0, "f.bin"}, 5, mb);

    std::printf("%-10zu %-10.3f %-14.3f %-16.3f\n", mb, nfs, s_lat, p_lat);
  }
  std::printf("\n(parallel < NFS4 at large sizes: multi-holder pull beats one egress-capped"
              " server)\n");
  return 0;
}
