// SMR throughput vs batch size, plus decided-ops/s under the node-level
// soak profile. Two phases:
//
//   pbft — one PBFT group at n = 4, 7, 13, a fixed backlog of small ops
//          proposed up front, drained under batch_max_ops = 1, 4, 16, 64.
//          Throughput is ops per SIMULATED second (the sim's cost model —
//          per-message CPU, header overhead, bandwidth serialization — is
//          machine-independent, so the numbers are deterministic and
//          byte-comparable across hosts; see tools/bench_trend.py).
//   soak — the bench_soak_atum_10k profile (kAsync vgroups, H-graph,
//          gossip), default 1500 nodes for CI (--soak-nodes 10000 for the
//          full-size run): a burst of broadcasts from scattered origins,
//          measured as broadcast deliveries per simulated second, plus the
//          fraction of group-message sends the coalescer saved.
//
// Output: machine-readable JSON on stdout (the committed baseline lives in
// BENCH_smr_throughput.json; the CI trend check diffs against it), human
// progress on stderr. Exits non-zero if protocol guarantees break or the
// batching speedup at n=7 falls below the 3x acceptance floor.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/serde.h"
#include "core/atum.h"
#include "core/params.h"
#include "crypto/keys.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "smr/pbft.h"

using namespace atum;

namespace {

struct Metric {
  std::string name;
  double value = 0.0;
  bool higher_is_better = true;
};

std::vector<Metric> g_metrics;
bool g_ok = true;

void record(std::string name, double value, bool higher_is_better = true) {
  g_metrics.push_back({std::move(name), value, higher_is_better});
}

bool check(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "FAIL: %s\n", what);
  return ok;
}

Bytes make_op(std::uint64_t i) {
  // 64-byte ops, distinct per index: big enough to look like a request,
  // small enough that message count (not payload bandwidth) dominates —
  // which is exactly the regime batching targets.
  ByteWriter w;
  w.u64(i);
  Bytes b = w.take();
  b.resize(64, static_cast<std::uint8_t>(i * 31 + 7));
  return b;
}

// One PBFT group of size n draining kOps ops under the given batch cap.
// Returns decided ops per simulated second (0 on failure).
double pbft_drain_ops_per_sec(std::size_t n, std::size_t batch_max_ops) {
  constexpr std::uint64_t kOps = 1024;
  sim::Simulator sim;
  net::SimNetwork net(sim, net::NetworkConfig::datacenter(), /*seed=*/0x5417);
  crypto::KeyStore keys(11);

  smr::GroupConfig cfg;
  for (NodeId i = 0; i < n; ++i) cfg.members.push_back(i);
  smr::PbftOptions opt;
  opt.batch_max_ops = batch_max_ops;
  // The backlog is drained under load, not under faults: keep the
  // view-change timer out of the measurement.
  opt.view_change_timeout = seconds(60.0);

  std::vector<std::unique_ptr<smr::PbftSmr>> replicas;
  std::vector<std::uint64_t> decided(n, 0);
  // Completion instant of the slowest replica, captured in the decide
  // handler itself so the measurement has event (not polling) granularity.
  TimeMicros done_at = 0;
  for (NodeId i = 0; i < n; ++i) {
    auto r = std::make_unique<smr::PbftSmr>(net::Transport(net, i), cfg, keys, opt);
    r->set_decide_handler(
        [&decided, &done_at, &sim, i](std::uint64_t, NodeId, const net::Payload&) {
          if (++decided[static_cast<std::size_t>(i)] == kOps) done_at = sim.now();
        });
    replicas.push_back(std::move(r));
  }

  // Whole backlog up front at the primary; the batch buffer and the
  // watermark window meter it out.
  const TimeMicros t0 = sim.now();
  for (std::uint64_t i = 0; i < kOps; ++i) replicas[0]->propose(make_op(i));

  auto all_done = [&] {
    for (std::uint64_t d : decided) {
      if (d < kOps) return false;
    }
    return true;
  };
  const TimeMicros deadline = t0 + seconds(120.0);
  while (!all_done() && sim.now() < deadline) {
    sim.run_until(sim.now() + millis(100));
  }
  if (!all_done()) {
    std::fprintf(stderr, "FAIL: pbft n=%zu batch=%zu: %" PRIu64 "/%" PRIu64
                         " ops decided within the time cap\n",
                 n, batch_max_ops, decided[0], kOps);
    g_ok = false;
    return 0.0;
  }
  const double elapsed = to_seconds(done_at - t0);
  const double ops_per_sec = static_cast<double>(kOps) / elapsed;
  std::fprintf(stderr,
               "pbft n=%2zu batch=%2zu: %" PRIu64 " ops in %6.3f sim-s "
               "(%8.1f ops/s, %" PRIu64 " seqs, %" PRIu64 " msgs)\n",
               n, batch_max_ops, kOps, elapsed, ops_per_sec,
               replicas[0]->batches_executed(), net.stats().messages_sent);
  for (std::size_t i = 0; i < n; ++i) replicas[i]->stop();
  return ops_per_sec;
}

// Soak-profile throughput: broadcast deliveries per simulated second at
// node scale, plus the coalescer's message savings.
void soak_phase(std::size_t target_nodes) {
  core::Params p;
  p.hc = 3;
  p.rwl = 6;
  p.gmax = 14;
  p.gmin = 7;
  p.engine = smr::EngineKind::kAsync;
  p.heartbeat_period = seconds(5.0);
  p.verify_signatures = false;
  core::AtumSystem sys(p, net::NetworkConfig::datacenter(), /*seed=*/0xa70a);

  std::vector<NodeId> ids;
  ids.reserve(target_nodes);
  for (NodeId i = 0; i < target_nodes; ++i) ids.push_back(i);
  std::uint64_t delivered_total = 0;
  sys.deploy(ids);
  for (NodeId i : ids) sys.node(i).set_forward(overlay::forward_cycles({0}));

  // Burst load: a few scattered origins each broadcast several messages at
  // once. The origin vgroup's SMR batches each burst into one frame, so
  // the burst's gossip relays co-travel — and keep co-travelling hop after
  // hop, because an arriving envelope is decoded, vouched, delivered, and
  // re-relayed within one event, which re-coalesces the frames for the
  // next hop. This is the load shape batching + coalescing target.
  constexpr std::size_t kOrigins = 5;
  constexpr std::size_t kPerOrigin = 8;
  constexpr std::size_t kBroadcasts = kOrigins * kPerOrigin;
  const std::uint64_t want = kBroadcasts * target_nodes;
  const Bytes frame(128, 0x5a);
  TimeMicros done_at = 0;
  for (NodeId i : ids) {
    sys.node(i).set_deliver([&delivered_total, &done_at, &sys, want](NodeId,
                                                                     const net::Payload&) {
      if (++delivered_total == want) done_at = sys.simulator().now();
    });
  }
  const TimeMicros t0 = sys.simulator().now();
  for (std::size_t o = 0; o < kOrigins; ++o) {
    NodeId origin = static_cast<NodeId>((o * 307) % target_nodes);
    for (std::size_t b = 0; b < kPerOrigin; ++b) sys.node(origin).broadcast(frame);
  }
  const TimeMicros deadline = t0 + seconds(600.0);
  while (delivered_total < want && sys.simulator().now() < deadline) {
    sys.simulator().run_until(sys.simulator().now() + seconds(5.0));
  }
  g_ok &= check(delivered_total == want, "soak: every broadcast delivered everywhere");
  const double elapsed = to_seconds((done_at > t0 ? done_at : sys.simulator().now()) - t0);
  const double deliveries_per_sec = static_cast<double>(delivered_total) / elapsed;

  std::uint64_t enq = 0, saved = 0;
  for (NodeId i : ids) {
    enq += sys.node(i).coalescer().frames_enqueued();
    saved += sys.node(i).coalescer().messages_saved();
  }
  const double saved_frac = enq == 0 ? 0.0 : static_cast<double>(saved) / static_cast<double>(enq);
  std::fprintf(stderr,
               "soak n=%zu: %" PRIu64 " deliveries in %5.1f sim-s (%9.1f /s), "
               "coalescer saved %" PRIu64 "/%" PRIu64 " sends (%.1f%%)\n",
               target_nodes, delivered_total, elapsed, deliveries_per_sec, saved, enq,
               100.0 * saved_frac);
  record("soak_deliveries_per_sec", deliveries_per_sec);
  record("soak_coalescer_saved_frac", saved_frac);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t soak_nodes = 1500;  // CI size; --soak-nodes 10000 for full scale
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--soak-nodes") == 0 && a + 1 < argc) {
      soak_nodes = static_cast<std::size_t>(std::strtoull(argv[++a], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: %s [--soak-nodes N]\n", argv[0]);
      return 2;
    }
  }

  // ------------------------------------------------------------------ pbft
  const std::size_t sizes[] = {4, 7, 13};
  const std::size_t batches[] = {1, 4, 16, 64};
  double n7_b1 = 0.0, n7_b16 = 0.0;
  for (std::size_t n : sizes) {
    for (std::size_t b : batches) {
      double thpt = pbft_drain_ops_per_sec(n, b);
      record("pbft_ops_per_sec_n" + std::to_string(n) + "_b" + std::to_string(b), thpt);
      if (n == 7 && b == 1) n7_b1 = thpt;
      if (n == 7 && b == 16) n7_b16 = thpt;
    }
  }
  const double speedup = n7_b1 > 0.0 ? n7_b16 / n7_b1 : 0.0;
  std::fprintf(stderr, "speedup n=7 batch 16 vs 1: %.2fx\n", speedup);
  record("speedup_n7_b16_vs_b1", speedup);
  g_ok &= check(speedup >= 3.0, "batching speedup >= 3x at n=7 (acceptance floor)");

  // ------------------------------------------------------------------ soak
  soak_phase(soak_nodes);

  // ------------------------------------------------------------------ json
  std::printf("{\n  \"bench\": \"smr_throughput\",\n  \"metrics\": [\n");
  for (std::size_t i = 0; i < g_metrics.size(); ++i) {
    const Metric& m = g_metrics[i];
    std::printf("    {\"name\": \"%s\", \"value\": %.4f, \"higher_is_better\": %s}%s\n",
                m.name.c_str(), m.value, m.higher_is_better ? "true" : "false",
                i + 1 < g_metrics.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  std::fprintf(stderr, "%s\n", g_ok ? "bench PASSED" : "bench FAILED");
  return g_ok ? 0 : 1;
}
