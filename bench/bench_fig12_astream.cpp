// Figure 12: AStream second-tier latency for a 1 MB/s stream, with the
// tier-1 forward callback restricted to a single H-graph cycle (throughput
// mode) or two cycles, at 20 and 50 nodes.
//
// Tier-2 latency is isolated per node and per chunk as (verified delivery
// time - digest arrival time): the time the lightweight multicast needs to
// hand over the data once Atum's metadata makes it verifiable. Paper shape:
// latency is a few hundred ms, grows with system size, and Double-cycle
// dissemination beats Single-cycle.
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "apps/astream/astream.h"
#include "common/stats.h"

using namespace atum;
using namespace atum::astream;

namespace {

core::Params bench_params() {
  core::Params p;
  p.hc = 3;
  p.rwl = 4;
  p.gmax = 8;
  p.gmin = 4;
  p.round_duration = seconds(1.0);  // §6.3: Sync rounds of 1 second
  p.heartbeat_period = seconds(300);
  return p;
}

double run_stream(std::size_t n, std::set<std::size_t> cycles) {
  // The cooperative-network scenario: nodes spread over the 8 WAN regions.
  core::AtumSystem sys(bench_params(), net::NetworkConfig::wide_area(),
                       0xF16'12ULL ^ n ^ cycles.size());
  std::vector<NodeId> ids;
  for (NodeId i = 0; i < n; ++i) {
    ids.push_back(i);
    sys.add_node(i).set_forward(overlay::forward_cycles(cycles));
  }
  sys.deploy(ids);

  std::vector<std::unique_ptr<AStreamNode>> nodes;
  // (node, seq) -> digest arrival time.
  std::map<std::pair<NodeId, std::uint64_t>, TimeMicros> digest_at;
  Samples tier2_ms;
  for (NodeId i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<AStreamNode>(sys, i, StreamConfig{}));
    nodes.back()->set_digest_handler([&digest_at, &sys, i](std::uint64_t seq) {
      digest_at[{i, seq}] = sys.simulator().now();
    });
    nodes.back()->set_chunk_handler([&, i](std::uint64_t seq, const net::Payload&) {
      if (i == 0) return;
      auto it = digest_at.find({i, seq});
      if (it == digest_at.end()) return;
      tier2_ms.add(to_seconds(sys.simulator().now() - it->second) * 1000.0);
    });
  }
  for (auto& nd : nodes) nd->join_stream(0);
  sys.simulator().run_until(sys.simulator().now() + seconds(10.0));

  // 1 MB/s: 4 x 250 KB chunks per second.
  const int kChunks = 16;
  for (int c = 0; c < kChunks; ++c) {
    nodes[0]->stream_chunk(Bytes(250'000, static_cast<std::uint8_t>(c)));
    sys.simulator().run_until(sys.simulator().now() + millis(250));
  }
  sys.simulator().run_until(sys.simulator().now() + seconds(300.0));
  return tier2_ms.empty() ? -1.0 : tier2_ms.percentile(0.95);
}

}  // namespace

int main() {
  std::printf("=== Figure 12: AStream second-tier latency, 1MB/s stream (WAN) ===\n\n");
  std::printf("%-12s %-14s %-14s\n", "system size", "cycles", "tier-2 p95 (ms)");
  for (std::size_t n : {20u, 50u}) {
    double single = run_stream(n, {0});
    double dbl = run_stream(n, {0, 1});
    std::printf("%-12zu %-14s %-14.0f\n", n, "Single", single);
    std::printf("%-12zu %-14s %-14.0f\n", n, "Double", dbl);
  }
  std::printf("\n(tier-2 = verified delivery minus digest arrival, per node per chunk; more"
              "\n tier-1 cycles give parents a head start, shrinking the pull wait)\n");
  return 0;
}
