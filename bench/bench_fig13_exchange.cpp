// Figure 13: exchange completion rate vs join rate while growing to N=400.
//
// Joining nodes at 8% / 20% / 24% of the current system size per minute
// generates concurrent shuffles; exchanges whose selected partner vgroup is
// already busy are suppressed. Paper shape: faster growth -> lower fraction
// of completed exchanges (flexibility bought at the cost of random vgroup
// composition quality), and the faster rates reach N=400 sooner.
#include <cstdio>
#include <vector>

#include "group/cluster_sim.h"

using namespace atum;
using namespace atum::group;

namespace {

void run_rate(double pct_per_minute) {
  sim::Simulator sim;
  ClusterSimConfig cfg;
  cfg.hc = 5;
  cfg.rwl = 10;
  cfg.gmin = 7;
  cfg.gmax = 14;
  cfg.kind = smr::EngineKind::kSync;
  cfg.round_duration = seconds(1.0);
  cfg.seed = 0xF16'13ULL ^ static_cast<std::uint64_t>(pct_per_minute * 100);
  ClusterSim cs(sim, cfg);
  cs.bootstrap(0);
  // Seed population so percentage rates are meaningful from the start.
  NodeId next = 1;
  std::uint64_t outstanding = 0;
  while (cs.node_count() < 40 && sim.now() < seconds(20000.0)) {
    while (outstanding < cs.group_count()) {
      ++outstanding;
      cs.request_join(next++, [&outstanding] { --outstanding; });
    }
    sim.run_until(sim.now() + seconds(1.0));
  }

  std::printf("--- join rate %.0f%% of system size per minute ---\n", pct_per_minute);
  std::printf("%-12s %-8s %-12s %-14s\n", "seconds", "nodes", "exch.compl.", "window compl.");

  double carry = 0.0;
  std::uint64_t last_completed = 0, last_attempted = 0;
  TimeMicros start = sim.now();
  TimeMicros next_report = sim.now();
  while (cs.node_count() < 400 && sim.now() < start + seconds(30000.0)) {
    carry += pct_per_minute / 100.0 * static_cast<double>(cs.node_count()) / 60.0;
    while (carry >= 1.0) {
      cs.request_join(next++);
      carry -= 1.0;
    }
    sim.run_until(sim.now() + seconds(1.0));
    if (sim.now() >= next_report) {
      const auto& st = cs.stats();
      double overall = st.exchanges_attempted == 0
                           ? 1.0
                           : static_cast<double>(st.exchanges_completed) /
                                 static_cast<double>(st.exchanges_attempted);
      std::uint64_t dc = st.exchanges_completed - last_completed;
      std::uint64_t da = st.exchanges_attempted - last_attempted;
      double window = da == 0 ? 1.0 : static_cast<double>(dc) / static_cast<double>(da);
      std::printf("%-12.0f %-8zu %-12.2f %-14.2f\n", to_seconds(sim.now() - start),
                  cs.node_count(), overall, window);
      last_completed = st.exchanges_completed;
      last_attempted = st.exchanges_attempted;
      next_report = sim.now() + seconds(250.0);
    }
  }
  const auto& st = cs.stats();
  double overall = st.exchanges_attempted == 0
                       ? 1.0
                       : static_cast<double>(st.exchanges_completed) /
                             static_cast<double>(st.exchanges_attempted);
  std::printf("reached N=%zu at t=%.0fs; overall exchange completion %.2f "
              "(completed=%llu suppressed=%llu)\n\n",
              cs.node_count(), to_seconds(sim.now() - start), overall,
              static_cast<unsigned long long>(st.exchanges_completed),
              static_cast<unsigned long long>(st.exchanges_suppressed));
}

}  // namespace

int main() {
  std::printf("=== Figure 13: exchange completion rate vs join rate (grow to N=400) ===\n\n");
  run_rate(8.0);
  run_rate(20.0);
  run_rate(24.0);
  return 0;
}
