// Figure 8: group communication latency — CDF comparison between Atum
// (Sync/Async, with and without Byzantine nodes), classic round-based
// gossip (S.Gossip), and whole-system synchronous SMR (S.SMR).
//
// Setup mirrors §6.1.3: 10-100 byte messages, Sync rounds of 1.5 s, small
// vgroups (expected phase-1 latency of 4 rounds), 850-node runs carry 50
// (5.8%) Byzantine nodes — heartbeat-only evict-proposers under Sync,
// silent under Async. Paper shape: Sync bounded by ~8 rounds (12 s) and
// UNCHANGED by the Byzantine nodes; Async much faster with a longer tail;
// S.Gossip ~4 rounds cheaper than Sync (the price of BFT); S.SMR needs
// f+1 = 51 rounds (~76.5 s).
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/stats.h"
#include "core/atum.h"

using namespace atum;
using namespace atum::core;

namespace {

constexpr int kBroadcasts = 25;
const std::vector<double> kTimeAxis{1, 2, 3, 4, 5, 6, 8, 10, 12, 75, 76, 77};

void print_cdf(const char* label, Samples& lat, std::size_t expected) {
  std::printf("%-22s", label);
  for (double t : kTimeAxis) {
    double frac = lat.count() == 0
                      ? 0.0
                      : lat.cdf_at(t) * static_cast<double>(lat.count()) /
                            static_cast<double>(expected);
    std::printf(" %5.2f", frac);
  }
  if (!lat.empty()) {
    std::printf("   p50=%.2fs p99=%.2fs max=%.2fs", lat.percentile(0.5), lat.percentile(0.99),
                lat.max());
  }
  std::printf("\n");
}

void run_atum(smr::EngineKind kind, std::size_t n, std::size_t byzantine) {
  Params p;
  p.engine = kind;
  p.hc = 4;
  p.rwl = 8;
  p.gmax = 8;  // small vgroups: f=2..3, phase-1 ~4 rounds as in the paper
  p.gmin = 4;
  p.round_duration = seconds(1.5);
  p.view_change_timeout = seconds(2.0);
  p.heartbeat_period = seconds(60.0);
  if (kind == smr::EngineKind::kAsync) {
    // §6.1.3: k=7 compensates the lower async fault threshold -> larger groups.
    p.gmax = 12;
    p.gmin = 6;
  }

  AtumSystem sys(p, net::NetworkConfig::datacenter(), 0xF16'8ULL ^ n ^ byzantine);
  Rng pick(42);
  std::vector<NodeId> ids;
  std::map<NodeId, TimeMicros> sent_at;
  Samples latencies;
  std::size_t correct = n - byzantine;

  // Byzantine nodes are scattered evenly across the id space — the
  // placement random walk shuffling maintains (§3.2); bunching them would
  // concentrate faults in a few vgroups, which is precisely what Atum's
  // shuffling prevents.
  std::set<NodeId> byz_ids;
  for (std::size_t b = 0; b < byzantine; ++b) {
    byz_ids.insert(static_cast<NodeId>(1 + b * n / byzantine));
  }
  for (NodeId i = 0; i < n; ++i) {
    ids.push_back(i);
    bool byz = byz_ids.contains(i) && i != 0;  // node 0 publishes
    NodeBehavior b = byz ? (kind == smr::EngineKind::kSync ? NodeBehavior::kByzantineEvictor
                                                           : NodeBehavior::kSilent)
                         : NodeBehavior::kCorrect;
    auto& node = sys.add_node(i, b);
    node.set_forward(overlay::forward_random(0.5, 99));  // default: random neighbors
  }
  sys.deploy(ids);
  // Deliver hook: record latency relative to each broadcast's send time.
  std::uint64_t delivered_current = 0;
  TimeMicros t0 = 0;
  for (NodeId i = 0; i < n; ++i) {
    sys.node(i).set_deliver([&](NodeId, const net::Payload&) {
      latencies.add(to_seconds(sys.simulator().now() - t0));
      ++delivered_current;
    });
  }

  DurationMicros spacing = kind == smr::EngineKind::kSync ? seconds(25.0) : seconds(4.0);
  for (int b = 0; b < kBroadcasts; ++b) {
    std::size_t len = 10 + static_cast<std::size_t>(pick.next_below(91));
    t0 = sys.simulator().now();
    delivered_current = 0;
    sys.node(0).broadcast(Bytes(len, static_cast<std::uint8_t>(b)));
    sys.simulator().run_until(t0 + spacing);
  }
  sys.simulator().run_until(sys.simulator().now() + seconds(30.0));

  char label[64];
  std::snprintf(label, sizeof(label), "%s N=%zu%s", kind == smr::EngineKind::kSync ? "SYNC" : "ASYNC",
                n, byzantine ? "*" : "");
  print_cdf(label, latencies, correct * kBroadcasts);
}

// S.Gossip baseline: classic round-based gossip with global membership and
// fanout equal to an Atum node's view size (§6.1.3), rounds of 1.5 s.
void run_gossip_baseline(std::size_t n) {
  const std::size_t fanout = 6 * (2 * 4 + 1);  // g * (2hc + 1) view entries
  const double round_s = 1.5;
  Rng rng(7);
  Samples latencies;
  for (int rep = 0; rep < kBroadcasts; ++rep) {
    std::vector<int> informed_at(n, -1);
    informed_at[0] = 0;
    std::size_t informed = 1;
    for (int round = 1; informed < n && round < 64; ++round) {
      std::vector<std::size_t> speakers;
      for (std::size_t i = 0; i < n; ++i) {
        if (informed_at[i] >= 0 && informed_at[i] < round) speakers.push_back(i);
      }
      for (std::size_t s : speakers) {
        (void)s;
        for (std::size_t k = 0; k < fanout; ++k) {
          std::size_t target = static_cast<std::size_t>(rng.next_below(n));
          if (informed_at[target] < 0) {
            informed_at[target] = round;
            ++informed;
          }
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (informed_at[i] >= 0) latencies.add(informed_at[i] * round_s);
    }
  }
  print_cdf("S.Gossip N=850", latencies, n * kBroadcasts);
}

// S.SMR baseline: the Sync agreement scaled to the whole system; latency is
// (f+1) rounds of 1.5 s with f = 50 tolerated faults (§6.1.3).
void run_smr_baseline(std::size_t n, std::size_t f) {
  Samples latencies;
  double latency = (static_cast<double>(f) + 1.0) * 1.5;
  for (int rep = 0; rep < kBroadcasts; ++rep) {
    for (std::size_t i = 0; i < n; ++i) latencies.add(latency);
  }
  print_cdf("S.SMR N=850*", latencies, n * kBroadcasts);
}

}  // namespace

int main() {
  std::printf("=== Figure 8: group communication latency CDFs ===\n\n");
  std::printf("%-22s", "fraction delivered by");
  for (double t : kTimeAxis) std::printf(" %4.0fs", t);
  std::printf("\n");

  run_atum(smr::EngineKind::kSync, 200, 0);
  run_atum(smr::EngineKind::kSync, 400, 0);
  run_atum(smr::EngineKind::kSync, 800, 0);
  run_atum(smr::EngineKind::kSync, 850, 50);
  run_atum(smr::EngineKind::kAsync, 200, 0);
  run_atum(smr::EngineKind::kAsync, 400, 0);
  run_atum(smr::EngineKind::kAsync, 800, 0);
  run_atum(smr::EngineKind::kAsync, 850, 50);
  run_gossip_baseline(850);
  run_smr_baseline(850, 50);

  std::printf("\n(* = 50 Byzantine nodes; Sync unaffected by them, S.SMR pays f+1 rounds)\n");
  return 0;
}
