// Figure 7: maximal tolerated churn rates for systems of 50..800 nodes.
//
// Continuous churn (leave + re-join) is applied at increasing rates; a rate
// is sustainable when at least 90% of the churn operations requested during
// the probe window complete within it. Paper shape: Sync sustains ~18% of
// nodes per minute (Async more), and the shorter walk length (rwl=6,hc=8)
// sustains a higher rate than (rwl=11,hc=5) because shuffles dominate churn
// cost; the hc increase matters less than the rwl decrease (§6.1.2).
#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "core/params.h"
#include "group/cluster_sim.h"

using namespace atum;
using namespace atum::group;

namespace {

struct Config {
  const char* label;
  smr::EngineKind kind;
  std::size_t rwl;
  std::size_t hc;
};

// Builds a cluster of `n` nodes (Table 1 sizing, as in §6).
std::unique_ptr<ClusterSim> build(sim::Simulator& sim, const Config& c, std::size_t n) {
  ClusterSimConfig cfg;
  cfg.hc = c.hc;
  cfg.rwl = c.rwl;
  cfg.gmin = 7;
  cfg.gmax = 14;
  cfg.kind = c.kind;
  cfg.round_duration = seconds(1.0);  // probe under the paper's 1 s rounds
  cfg.net_rtt = millis(150);
  cfg.seed = 0xF16'7ULL ^ n ^ (c.rwl << 8);
  auto cs = std::make_unique<ClusterSim>(sim, cfg);
  cs->bootstrap(0);
  auto outstanding = std::make_shared<std::uint64_t>(0);  // callbacks outlive this frame
  NodeId next = 1;
  while (cs->node_count() < n && sim.now() < seconds(100000.0)) {
    while (*outstanding < cs->group_count() && next < 6 * n) {
      ++*outstanding;
      cs->request_join(next++, [outstanding] { --*outstanding; });
    }
    sim.run_until(sim.now() + seconds(1.0));
  }
  return cs;
}

// Probes one churn rate (re-joins per minute); true if sustainable.
bool sustains(ClusterSim& cs, sim::Simulator& sim, std::uint64_t per_minute, NodeId& next_id) {
  if (per_minute == 0) return true;
  const DurationMicros window = seconds(180.0);
  DurationMicros gap = kMicrosPerMinute / static_cast<DurationMicros>(per_minute);
  std::uint64_t requested = 0;
  // Shared counter: completion callbacks may fire after this probe returns
  // (that is exactly what "not sustainable" means), so they must not
  // reference this frame.
  auto completed = std::make_shared<std::uint64_t>(0);
  std::set<NodeId> leaving;
  TimeMicros end = sim.now() + window;
  Rng rng(per_minute * 77 + 13);
  while (sim.now() < end) {
    // One churn event: a random node leaves and a fresh node joins.
    auto verts = cs.graph().vertices();
    GroupId g = verts[static_cast<std::size_t>(rng.next_below(verts.size()))];
    auto members = cs.members_of(g);
    std::erase_if(members, [&](NodeId m) { return leaving.contains(m); });
    if (!members.empty()) {
      ++requested;
      NodeId leaver = members[static_cast<std::size_t>(rng.next_below(members.size()))];
      leaving.insert(leaver);
      cs.request_leave(leaver, [completed] { ++*completed; });
    }
    ++requested;
    cs.request_join(next_id++, [completed] { ++*completed; });
    sim.run_until(sim.now() + gap);
  }
  // Drain for about one operation latency; sustainable = the system kept
  // up with the offered rate rather than accumulating backlog.
  sim.run_until(sim.now() + seconds(90.0));
  return *completed * 10 >= requested * 9;  // >= 90%
}

}  // namespace

int main() {
  std::printf("=== Figure 7: maximal tolerated churn (re-joins/min) ===\n\n");
  const std::vector<std::size_t> sizes{50, 100, 200, 400, 800};
  const std::vector<Config> configs{
      {"SYNC  (rwl=6,  hc=8)", smr::EngineKind::kSync, 6, 8},
      {"SYNC  (rwl=11, hc=5)", smr::EngineKind::kSync, 11, 5},
      {"ASYNC (guideline)   ", smr::EngineKind::kAsync, 8, 5},
  };

  std::printf("%-24s", "config \\ N");
  for (std::size_t n : sizes) std::printf(" %-8zu", n);
  std::printf("\n");

  for (const Config& c : configs) {
    std::printf("%-24s", c.label);
    for (std::size_t n : sizes) {
      sim::Simulator sim;
      auto cs = build(sim, c, n);
      NodeId next_id = 1'000'000;
      // Ramp the rate until the system stops keeping up (~3% of N steps).
      std::uint64_t step = std::max<std::uint64_t>(2, n * 3 / 100);
      std::uint64_t rate = step;
      std::uint64_t best = 0;
      while (rate < 4 * n) {
        if (!sustains(*cs, sim, rate, next_id)) break;
        best = rate;
        rate += step;
      }
      double pct = 100.0 * static_cast<double>(best) / static_cast<double>(n);
      std::printf(" %llu(%.0f%%)", static_cast<unsigned long long>(best), pct);
    }
    std::printf("\n");
  }
  std::printf("\n(values: sustainable re-joins/min and the same as %% of N per minute)\n");
  return 0;
}
