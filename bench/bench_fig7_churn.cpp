// Figure 7: maximal tolerated churn rates — ported to the scenario engine.
//
// Continuous churn (leave + re-join) is applied at increasing rates; a rate
// is sustainable when at least 90% of the churn operations requested during
// the probe window complete by the end of its drain (the same >=90%
// criterion the hand-coded ClusterSim version used). Where the original
// bench drove the vgroup-granularity ClusterSim, each probe here is a
// declarative scenario::churn_probe spec executed by ScenarioDriver against
// the REAL node-level runtime (§3.3.2 joins: contact, vgroup agreement,
// placement walk, SMR reconfiguration, state sync — and SMR-reconfig
// leaves), which is why the sizes are more modest than the paper's 800.
// Paper shape preserved: the shorter walk (rwl=6) sustains at least as much
// churn as the longer one (rwl=11) because walk hops dominate churn cost
// (§6.1.2); Async more than Sync because agreement is RTT-bound, not
// round-bound.
//
// Exits non-zero if any configuration fails to sustain even the first rate
// step at some size — the parity assertion for the scenario-engine port.
#include <cstdio>
#include <vector>

#include "scenario/driver.h"
#include "scenario/presets.h"

using namespace atum;

namespace {

struct Config {
  const char* label;
  smr::EngineKind kind;
  std::size_t rwl;
  std::size_t hc;
};

// Probes one churn rate (leave+rejoin pairs per minute) on a fresh
// deterministically-deployed system; true if >= 90% of the requested
// operations completed.
bool sustains(const Config& c, std::size_t n, std::uint64_t per_minute) {
  if (per_minute == 0) return true;
  scenario::ScenarioSpec spec = scenario::churn_probe(
      n, static_cast<double>(per_minute), c.kind, c.rwl, c.hc,
      /*window=*/seconds(120.0), /*seed=*/0xF167ULL ^ n ^ (c.rwl << 8) ^ per_minute);
  scenario::ScenarioDriver driver(std::move(spec));
  scenario::ScenarioReport report = driver.run();
  const scenario::PhaseMetrics& m = report.phases.front();
  std::uint64_t requested = m.joins_requested + m.leaves_requested;
  std::uint64_t completed = m.joins_completed + m.leaves_completed;
  return requested == 0 || completed * 10 >= requested * 9;  // >= 90%
}

}  // namespace

int main() {
  std::printf("=== Figure 7: maximal tolerated churn (re-joins/min), scenario engine ===\n\n");
  const std::vector<std::size_t> sizes{50, 100, 200};
  const std::vector<Config> configs{
      {"SYNC  (rwl=6,  hc=8)", smr::EngineKind::kSync, 6, 8},
      {"SYNC  (rwl=11, hc=5)", smr::EngineKind::kSync, 11, 5},
      {"ASYNC (guideline)   ", smr::EngineKind::kAsync, 8, 5},
  };

  std::printf("%-24s", "config \\ N");
  for (std::size_t n : sizes) std::printf(" %-10zu", n);
  std::printf("\n");

  bool ok = true;
  for (const Config& c : configs) {
    std::printf("%-24s", c.label);
    for (std::size_t n : sizes) {
      // Ramp the rate until the system stops keeping up (~6% of N steps:
      // coarser than the original's 3% to bound the node-level runtime).
      std::uint64_t step = std::max<std::uint64_t>(2, n * 6 / 100);
      std::uint64_t rate = step;
      std::uint64_t best = 0;
      while (rate <= 2 * n) {
        if (!sustains(c, n, rate)) break;
        best = rate;
        rate += step;
      }
      if (best == 0) ok = false;  // could not sustain even minimal churn
      double pct = 100.0 * static_cast<double>(best) / static_cast<double>(n);
      std::printf(" %llu(%.0f%%) ", static_cast<unsigned long long>(best), pct);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n(values: sustainable leave+rejoin pairs/min and the same as %% of N per"
              " minute;\n each probe is a scenario::churn_probe run on the node-level"
              " AtumSystem)\n");
  if (!ok) {
    std::printf("FAIL: some configuration sustained no churn at all\n");
    return 1;
  }
  return 0;
}
