// Figure 6: system growth speed. Joins are driven as fast as the system
// admits them (one outstanding join per free vgroup); the curve of system
// size over time shows the exponential growth rate the paper reports, with
// the larger-rwl (larger target size) configuration starting slower.
//
// Paper shape: exponential growth well beyond 1000 nodes; systems sized for
// 1400 nodes grow slightly slower early on than systems sized for 800.
#include <cstdio>
#include <memory>

#include "core/params.h"
#include "group/cluster_sim.h"

using namespace atum;
using namespace atum::group;

namespace {

void run_growth(const char* label, smr::EngineKind kind, std::size_t target_nodes) {
  sim::Simulator sim;
  // Table 1 sizing (gmax 8..20), as deployed in §6: e.g. 800 nodes in
  // "roughly 120 vgroups" means g ~ 7-10, not the k*log2(N) upper bound.
  ClusterSimConfig cfg;
  cfg.gmin = 7;
  cfg.gmax = 14;
  std::size_t expected_groups = target_nodes / 8;
  cfg.hc = 5;
  cfg.rwl = core::guideline_rwl(expected_groups, cfg.hc);
  cfg.kind = kind;
  cfg.round_duration = seconds(1.0);  // §6.1.1: rounds of 1 second
  cfg.net_rtt = millis(150);          // Async ran across 8 WAN regions
  cfg.seed = 0xF16'6ULL ^ target_nodes;
  ClusterSim cs(sim, cfg);
  cs.bootstrap(0);

  NodeId next = 1;
  std::uint64_t outstanding = 0;
  std::printf("--- %s, target N=%zu (hc=%zu rwl=%zu gmax=%zu) ---\n", label, target_nodes,
              cfg.hc, cfg.rwl, cfg.gmax);
  std::printf("%-12s %-10s %-10s\n", "seconds", "nodes", "vgroups");

  TimeMicros next_report = 0;
  while (cs.node_count() < target_nodes && sim.now() < seconds(40000.0)) {
    // Admission control: one outstanding join per vgroup keeps every group
    // saturated, which is the fastest the protocol can absorb members.
    while (outstanding < cs.group_count() && next <= target_nodes * 2) {
      ++outstanding;
      cs.request_join(next++, [&outstanding] { --outstanding; });
    }
    sim.run_until(sim.now() + seconds(1.0));
    if (sim.now() >= next_report) {
      std::printf("%-12.0f %-10zu %-10zu\n", to_seconds(sim.now()), cs.node_count(),
                  cs.group_count());
      next_report = sim.now() + seconds(300.0);
    }
  }
  std::printf("%-12.0f %-10zu %-10zu   <- reached target\n", to_seconds(sim.now()),
              cs.node_count(), cs.group_count());
  const auto& st = cs.stats();
  std::printf("joins=%llu splits=%llu exchanges(ok/suppressed)=%llu/%llu\n\n",
              static_cast<unsigned long long>(st.joins_completed),
              static_cast<unsigned long long>(st.splits),
              static_cast<unsigned long long>(st.exchanges_completed),
              static_cast<unsigned long long>(st.exchanges_suppressed));
}

}  // namespace

int main() {
  std::printf("=== Figure 6: growth speed for systems with up to 1400 nodes ===\n\n");
  run_growth("SYNC", smr::EngineKind::kSync, 800);
  run_growth("SYNC", smr::EngineKind::kSync, 1400);
  run_growth("ASYNC", smr::EngineKind::kAsync, 800);
  run_growth("ASYNC", smr::EngineKind::kAsync, 1400);
  return 0;
}
