// 100k-node soak: the event engine and message hot path at the ROADMAP's
// target scale. Three phases:
//
//   join   — grows the system to 100k nodes through the vgroup-granularity
//            cluster simulator (full join protocol cost model: walks,
//            agreements, shuffles, splits);
//   bcast  — every vgroup fans one 1 KiB frame out to all of its members
//            and its successor group over the simulated network, sharing
//            ONE frozen Payload buffer per group (the §3.1 send pattern);
//   churn  — 1M heartbeat-timeout cycles (schedule + cancel) across the
//            population, the pattern that made the seed's tombstone set
//            grow without bound.
//
// The bench FAILS (non-zero exit) if simulator memory is not bounded: the
// slot arena must track peak concurrency and the heap must stay within a
// small multiple of live events, regardless of how many events were ever
// scheduled or cancelled.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "group/cluster_sim.h"
#include "net/network.h"
#include "sim/simulator.h"

using namespace atum;

namespace {

bool check(bool ok, const char* what) {
  if (!ok) std::printf("FAIL: %s\n", what);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  // Scaled-down runs for smoke testing: bench_soak_100k [nodes].
  std::size_t target_nodes = 100'000;
  if (argc > 1) {
    char* end = nullptr;
    target_nodes = static_cast<std::size_t>(std::strtoull(argv[1], &end, 10));
    // Below ~2 vgroups the phase assertions are meaningless.
    if (end == argv[1] || *end != '\0' || target_nodes < 100) {
      std::fprintf(stderr, "usage: %s [nodes >= 100]\n", argv[0]);
      return 2;
    }
  }
  bool ok = true;

  // ------------------------------------------------------------------ join
  sim::Simulator sim;
  group::ClusterSimConfig cfg;
  cfg.gmin = 7;
  cfg.gmax = 14;
  cfg.hc = 3;
  cfg.rwl = 6;
  cfg.kind = smr::EngineKind::kAsync;
  cfg.shuffle_enabled = false;  // keep the growth phase about joins
  group::ClusterSim cluster(sim, cfg);
  cluster.bootstrap(0);

  std::size_t completed = 1;
  std::size_t next_node = 1;
  // One outstanding join per free vgroup, reissued as each completes.
  while (completed < target_nodes) {
    std::size_t batch = std::min<std::size_t>(cluster.group_count(), target_nodes - completed);
    for (std::size_t i = 0; i < batch; ++i) {
      cluster.request_join(next_node++, [&completed] { ++completed; });
    }
    sim.run();
  }
  std::printf("join:   %zu nodes in %zu vgroups, sim time %.1fs, %llu events, "
              "heap %zu entries / arena %zu slots\n",
              cluster.node_count(), cluster.group_count(), to_seconds(sim.now()),
              static_cast<unsigned long long>(sim.executed_events()), sim.heap_size(),
              sim.slot_count());
  ok &= check(cluster.node_count() == target_nodes, "all joins completed");
  ok &= check(sim.live_events() == 0, "join phase drained the queue");
  // Arena is bounded by peak concurrent events, far below total executed.
  ok &= check(sim.slot_count() < sim.executed_events() / 4 + 1024,
              "join: slot arena stayed far below event count");

  // ----------------------------------------------------------------- bcast
  net::SimNetwork net(sim, net::NetworkConfig::datacenter(), /*seed=*/7);
  std::uint64_t delivered = 0;
  for (NodeId n = 0; n < target_nodes; ++n) {
    net.attach(n, [&delivered](const net::Message&) { ++delivered; });
  }
  const Bytes frame(1024, 0x5a);
  std::uint64_t frames_sent = 0;
  long max_share = 0;
  for (NodeId n = 0; n < target_nodes; ++n) {
    auto gid = cluster.group_of(n);
    if (!gid) continue;
    std::vector<NodeId> members = cluster.members_of(*gid);
    if (members.empty() || members.front() != n) continue;  // one sender per group
    std::vector<NodeId> successor = cluster.members_of(cluster.graph().successor(0, *gid));
    // Freeze once; the whole group + successor fan-out shares the buffer.
    net::Payload payload(frame);
    for (NodeId to : members) {
      net.send(net::Message{n, to, net::MsgType::kAppData, payload});
    }
    for (NodeId to : successor) {
      net.send(net::Message{n, to, net::MsgType::kAppData, payload});
    }
    frames_sent += members.size() + successor.size();
    max_share = std::max(max_share, payload.use_count());
  }
  sim.run();
  std::printf("bcast:  %llu frames from %zu vgroups, %llu delivered, peak %ld-way "
              "buffer sharing, %.1f MB on the wire\n",
              static_cast<unsigned long long>(frames_sent), cluster.group_count(),
              static_cast<unsigned long long>(delivered), max_share,
              static_cast<double>(net.stats().bytes_sent) / 1e6);
  ok &= check(delivered == frames_sent, "every broadcast frame delivered");
  ok &= check(max_share > 10, "fan-out shared one payload buffer");

  // ----------------------------------------------------------------- churn
  // Heartbeat-timeout pattern: every armed timeout is cancelled and re-armed
  // when the next heartbeat lands. With the seed engine each of these 1M
  // cancels left a tombstone behind forever.
  constexpr std::size_t kCycles = 1'000'000;
  const std::size_t window = std::max<std::size_t>(target_nodes / 10, 1);
  // The arena tracks peak concurrency and never shrinks; the broadcast
  // phase above legitimately peaked it at one slot per in-flight frame.
  // Churn must not grow it beyond that high-water mark plus its own window.
  const std::size_t slots_before_churn = sim.slot_count();
  std::vector<sim::EventId> pending(window, 0);
  Rng rng(42);
  std::size_t peak_heap = 0, peak_slots = 0;
  std::uint64_t fired = 0;
  for (std::size_t i = 0; i < kCycles; ++i) {
    std::size_t slot = i % window;
    sim.cancel(pending[slot]);  // no-op for 0 / already-fired handles
    pending[slot] =
        sim.schedule_after(static_cast<DurationMicros>(1 + rng.next_u64() % 1000),
                           [&fired] { ++fired; });
    if ((i & 0xFF) == 0) sim.run_until(sim.now() + 10);  // let some timeouts fire
    peak_heap = std::max(peak_heap, sim.heap_size());
    peak_slots = std::max(peak_slots, sim.slot_count());
  }
  sim.run();
  std::printf("churn:  %zu schedule/cancel cycles, %llu timeouts fired, peak heap %zu "
              "entries, peak arena %zu slots (live window %zu, pre-churn arena %zu)\n",
              kCycles, static_cast<unsigned long long>(fired), peak_heap, peak_slots, window,
              slots_before_churn);
  ok &= check(peak_slots <= slots_before_churn + 2 * window + 1024,
              "churn: slot arena bounded by live window, not cycle count");
  ok &= check(peak_heap <= 4 * window + slots_before_churn + 1024,
              "churn: heap bounded (stale entries swept)");
  ok &= check(sim.live_events() == 0, "churn phase drained the queue");

  std::printf("%s\n", ok ? "soak PASSED" : "soak FAILED");
  return ok ? 0 : 1;
}
