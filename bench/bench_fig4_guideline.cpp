// Figure 4: configuration guideline — for each number of vgroups and each
// H-graph cycle count hc, the minimal random-walk length rwl whose endpoint
// distribution is indistinguishable from uniform (Pearson chi-square,
// confidence 0.99), exactly the simulation §3.2 describes.
//
// Paper shape: rwl grows with the number of vgroups and shrinks as hc
// increases (denser overlay mixes faster); e.g. 128 vgroups, hc=6 -> rwl~9.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/params.h"
#include "overlay/random_walk.h"

using namespace atum;

int main() {
  std::printf("=== Figure 4: optimal rwl vs hc (chi-square uniformity at 0.99) ===\n\n");
  const std::vector<std::size_t> group_counts{8, 32, 128, 512, 2048, 8192};
  const std::vector<std::size_t> cycle_counts{2, 4, 6, 8, 10, 12};

  std::printf("%-10s", "vgroups");
  for (std::size_t hc : cycle_counts) std::printf(" hc=%-4zu", hc);
  std::printf(" | guideline_rwl(hc=6)\n");

  Rng rng(0xF16'4ULL);
  for (std::size_t groups : group_counts) {
    std::printf("%-10zu", groups);
    // Enough walks for the chi-square expected count per bin to be sound.
    std::size_t walks = std::max<std::size_t>(20'000, groups * 10);
    for (std::size_t hc : cycle_counts) {
      std::size_t rwl = overlay::optimal_walk_length(groups, hc, 0.99, walks, 18, rng);
      std::printf(" %-7zu", rwl);
    }
    std::printf(" | %zu\n", core::guideline_rwl(groups, 6));
  }
  std::printf("\n(rows: more vgroups need longer walks; columns: more cycles need shorter"
              " walks)\n");
  return 0;
}
